// Online (streaming) softmax — the Milakov–Gimelshein recurrence that
// FlashAttention builds on.
//
// A row of scores arrives in blocks. The state keeps the running maximum m
// and running denominator l; absorbing a block rescales what was
// accumulated before by alpha = exp(m_old - m_new) and converts the block's
// scores to unnormalized probabilities exp(s - m_new) in place. The caller
// applies alpha to any output accumulator it carries (FlashAttention's O
// tile) and divides by l at the end.
//
// The exponential is pluggable so the same recurrence drives both the exact
// FlashAttention baseline (std::exp in FP32) and TurboAttention (SAS).
#pragma once

#include <cmath>
#include <limits>
#include <span>

#include "common/check.h"

namespace turbo {

template <typename ExpFn>
class OnlineSoftmaxRow {
 public:
  // `exp_fn(x)` must approximate e^x for x <= 0.
  explicit OnlineSoftmaxRow(ExpFn exp_fn) : exp_(exp_fn) {}

  void reset() {
    m_ = -std::numeric_limits<float>::infinity();
    l_ = 0.0f;
  }

  // Absorb one block of scores. On return `scores` holds the unnormalized
  // probabilities exp(s_i - m_new); the returned alpha is the factor by
  // which previously accumulated outputs must be rescaled.
  float absorb(std::span<float> scores) {
    float block_max = -std::numeric_limits<float>::infinity();
    for (float s : scores) block_max = std::max(block_max, s);
    const float m_new = std::max(m_, block_max);

    // alpha = exp(m_old - m_new); exp(-inf) on the first block -> 0, which
    // correctly discards the (empty) prior accumulation.
    const float alpha =
        std::isinf(m_) ? 0.0f : exp_(m_ - m_new);

    float block_sum = 0.0f;
    for (float& s : scores) {
      s = exp_(s - m_new);
      block_sum += s;
    }
    l_ = l_ * alpha + block_sum;
    m_ = m_new;
    return alpha;
  }

  float running_max() const { return m_; }
  float denominator() const { return l_; }

  // log-sum-exp of everything absorbed so far.
  float log_sum_exp() const { return m_ + std::log(l_); }

 private:
  ExpFn exp_;
  float m_ = -std::numeric_limits<float>::infinity();
  float l_ = 0.0f;
};

// Convenience: softmax of a full row computed in streaming blocks of
// `block` elements. Verifies the recurrence against the exact softmax in
// tests; also useful as a readable reference for the attention kernels.
template <typename ExpFn>
void streaming_softmax(std::span<const float> x, std::size_t block,
                       ExpFn exp_fn, std::span<float> out) {
  TURBO_CHECK(x.size() == out.size());
  TURBO_CHECK(block > 0);
  OnlineSoftmaxRow<ExpFn> state(exp_fn);
  state.reset();
  std::size_t begin = 0;
  while (begin < x.size()) {
    const std::size_t n = std::min(block, x.size() - begin);
    for (std::size_t i = 0; i < n; ++i) out[begin + i] = x[begin + i];
    const float alpha = state.absorb(out.subspan(begin, n));
    // Rescale the already-written prefix, as FlashAttention rescales O.
    for (std::size_t i = 0; i < begin; ++i) out[i] *= alpha;
    begin += n;
  }
  const float inv = 1.0f / state.denominator();
  for (float& v : out) v *= inv;
}

}  // namespace turbo
