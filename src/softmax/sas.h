// SAS — Sparse Activated Softmax (section 4 / Algorithm 3).
//
// FlashAttention performs exponentiation in FP32 because GPU tensor cores
// have no exp and FP16 exp overflows easily; SAS removes that FP32
// dependency. For x <= 0 (scores are always shifted by the row max first):
//
//   e^x = e^{-(x_int + x_dec)} ~= LUT[x_int] * POLY(x_dec)
//
// where x_int = floor(-x) indexes a tiny lookup table of e^{-n} and
// x_dec in [0,1) is handled by the degree-3 least-squares polynomial from
// the paper (Eq. 15):
//
//   POLY(t) = -0.1025 t^3 + 0.4626 t^2 - 0.9922 t + 0.9996
//
// Sparsification: inputs below the threshold n_r (default -6) return
// exactly 0, which keeps the LUT at |n_r|+1 entries and zeroes the long
// tail of attention scores (their true value is < e^-6 ~= 0.0025).
// All arithmetic optionally rounds through FP16 to model tensor-core
// execution.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.h"

namespace turbo {

struct SasConfig {
  // Sparsification threshold n_r: x < n_r maps to 0. Paper default -6.
  int threshold = -6;
  // Round POLY/LUT arithmetic through binary16, modeling FP16 tensor-core
  // execution (true in the paper's kernels). Setting false isolates the
  // approximation error from the precision error in ablations.
  bool fp16_arithmetic = true;
  // Bypass the approximation entirely: exp_neg computes FP32 std::exp with
  // no sparsification. Lets the TurboAttention kernels run the "FlashQ
  // only" ablation of Table 4 without a separate code path.
  bool exact_exp = false;
};

class Sas {
 public:
  explicit Sas(SasConfig config = {});

  const SasConfig& config() const { return config_; }

  // Degree-3 polynomial approximation of e^{-t} for t in [0, 1).
  static float poly(float t);

  // Same, with every intermediate rounded through FP16 (Horner's scheme as
  // an FP16 MAC chain).
  static float poly_fp16(float t);

  // Approximate e^x for x <= 0. Values below the threshold return 0.
  // (Inputs slightly above 0 can occur from FP16 rounding of the shifted
  // scores; they are clamped to 0.)
  float exp_neg(float x) const;

  // Apply exp_neg element-wise in place.
  void apply(std::span<float> values) const;

  // Full Algorithm 3: row-shift by max, sparsify, LUT x POLY, renormalize.
  MatrixF softmax(const MatrixF& scores) const;

  // LUT entry i holds e^{-i}; entries past the threshold are 0.
  std::span<const float> lut() const { return lut_; }

 private:
  SasConfig config_;
  std::vector<float> lut_;
};

}  // namespace turbo
