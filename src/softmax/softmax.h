// Exact (reference) softmax.
#pragma once

#include <span>

#include "common/matrix.h"

namespace turbo {

// Numerically stable softmax of one row: out_i = exp(x_i - max) / sum.
void softmax_row(std::span<const float> x, std::span<float> out);

// Row-wise softmax of a matrix.
MatrixF softmax_rows(const MatrixF& scores);

// Row-wise softmax that also returns the log-sum-exp of every row, the
// quantity FlashAttention carries for cross-tile renormalization.
MatrixF softmax_rows_with_lse(const MatrixF& scores,
                              std::span<float> lse_out);

}  // namespace turbo
