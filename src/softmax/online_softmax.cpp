// The online-softmax machinery is header-only (templated on the exp
// functor); this translation unit pins an explicit instantiation so misuse
// shows up as a normal compile error in the library build rather than only
// in client code.
#include "softmax/online_softmax.h"

namespace turbo {

namespace {
using StdExp = float (*)(float);
}  // namespace

template class OnlineSoftmaxRow<StdExp>;

}  // namespace turbo
