#include "softmax/sas.h"

#include <cmath>

#include "common/check.h"
#include "common/fp16.h"

namespace turbo {

namespace {
// Least-squares coefficients from Eq. 15 (highest degree first).
constexpr float kC3 = -0.1025f;
constexpr float kC2 = 0.4626f;
constexpr float kC1 = -0.9922f;
constexpr float kC0 = 0.9996f;
}  // namespace

Sas::Sas(SasConfig config) : config_(config) {
  TURBO_CHECK_MSG(config_.threshold < 0,
                  "SAS threshold must be negative, got "
                      << config_.threshold);
  // LUT[i] = e^{-i} for i = 0 .. |threshold|; one sentinel 0 entry past the
  // end so the sparsified bucket (Algorithm 3 sets X[X < n_r] = n_r + 1,
  // i.e. T[n_r + 1] = 0) needs no branch in the indexed path.
  const int n = -config_.threshold;
  lut_.resize(static_cast<std::size_t>(n) + 2);
  for (int i = 0; i <= n; ++i) {
    float v = std::exp(static_cast<float>(-i));
    if (config_.fp16_arithmetic) v = round_to_fp16(v);
    lut_[static_cast<std::size_t>(i)] = v;
  }
  lut_.back() = 0.0f;
}

float Sas::poly(float t) {
  // Horner's scheme.
  return ((kC3 * t + kC2) * t + kC1) * t + kC0;
}

float Sas::poly_fp16(float t) {
  // Each multiply-accumulate rounds through binary16, as an FP16 tensor-core
  // MAC chain would.
  const float t16 = round_to_fp16(t);
  float acc = round_to_fp16(kC3);
  acc = round_to_fp16(acc * t16);
  acc = round_to_fp16(acc + round_to_fp16(kC2));
  acc = round_to_fp16(acc * t16);
  acc = round_to_fp16(acc + round_to_fp16(kC1));
  acc = round_to_fp16(acc * t16);
  acc = round_to_fp16(acc + round_to_fp16(kC0));
  return acc;
}

float Sas::exp_neg(float x) const {
  if (x > 0.0f) x = 0.0f;  // FP16 rounding noise can push shifted scores > 0
  if (config_.exact_exp) return std::exp(x);
  if (x < static_cast<float>(config_.threshold)) return 0.0f;

  const float y = -x;  // y in (0, |threshold|]
  const int y_int = static_cast<int>(y);
  const float y_dec = y - static_cast<float>(y_int);

  const float lut_v = lut_[static_cast<std::size_t>(y_int)];
  const float poly_v =
      config_.fp16_arithmetic ? poly_fp16(y_dec) : poly(y_dec);
  const float prod = lut_v * poly_v;
  return config_.fp16_arithmetic ? round_to_fp16(prod) : prod;
}

void Sas::apply(std::span<float> values) const {
  for (float& v : values) v = exp_neg(v);
}

MatrixF Sas::softmax(const MatrixF& scores) const {
  MatrixF out(scores.rows(), scores.cols());
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    auto x = scores.row(r);
    auto o = out.row(r);
    float m = x[0];
    for (float v : x) m = std::max(m, v);
    float sum = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i) {
      o[i] = exp_neg(x[i] - m);
      sum += o[i];
    }
    // The row maximum itself always contributes ~1, so sum > 0.
    const float inv = 1.0f / sum;
    for (float& v : o) v *= inv;
  }
  return out;
}

}  // namespace turbo
