#include "softmax/softmax.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace turbo {

void softmax_row(std::span<const float> x, std::span<float> out) {
  TURBO_CHECK(x.size() == out.size());
  if (x.empty()) return;
  const float m = *std::max_element(x.begin(), x.end());
  float sum = 0.0f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = std::exp(x[i] - m);
    sum += out[i];
  }
  const float inv = 1.0f / sum;
  for (float& v : out) v *= inv;
}

MatrixF softmax_rows(const MatrixF& scores) {
  MatrixF out(scores.rows(), scores.cols());
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    softmax_row(scores.row(r), out.row(r));
  }
  return out;
}

MatrixF softmax_rows_with_lse(const MatrixF& scores,
                              std::span<float> lse_out) {
  TURBO_CHECK(lse_out.size() == scores.rows());
  MatrixF out(scores.rows(), scores.cols());
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    auto x = scores.row(r);
    auto o = out.row(r);
    const float m = *std::max_element(x.begin(), x.end());
    float sum = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i) {
      o[i] = std::exp(x[i] - m);
      sum += o[i];
    }
    const float inv = 1.0f / sum;
    for (float& v : o) v *= inv;
    lse_out[r] = m + std::log(sum);
  }
  return out;
}

}  // namespace turbo
