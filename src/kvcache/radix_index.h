// Radix (trie) index over token prefixes at page granularity.
//
// SGLang-style RadixAttention bookkeeping for the paged cache: each edge
// is one page worth of token ids, each node names the resident page that
// holds that chunk's compressed KV. Admission matches an incoming prompt
// against the tree to find the longest resident full-page prefix; the
// matched pages are then attached by refcount bump (the fork_sequence CoW
// path generalized to partial prefixes) and only the novel suffix is
// charged pages and chunk-prefilled. The index stores no KV data and owns
// no references — refcounts live with the cache/engine that feeds it, and
// the owner must erase pages here when they die.
//
// Children are kept in a std::map keyed by the token chunk, so every walk
// and cascade is deterministic (lint rule 8: no unordered iteration).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "kvcache/page_allocator.h"

namespace turbo {

class RadixIndex {
 public:
  explicit RadixIndex(std::size_t page_tokens);

  std::size_t page_tokens() const { return page_tokens_; }
  // Number of pages currently indexed.
  std::size_t size() const { return by_page_.size(); }

  // Longest indexed prefix of `tokens`, as the pages holding it in order.
  // Only whole page_tokens-sized chunks match; a partial tail never does.
  std::vector<PageId> match(std::span<const std::int32_t> tokens) const;

  // Index pages[i] under the i-th page-sized chunk of `tokens`
  // (tokens.size() must cover pages.size() whole chunks). Chunks already
  // indexed keep their original page — the first writer wins, so two
  // sequences that prefilled the same prefix privately do not fight over
  // the index. Returns how many pages were newly indexed.
  std::size_t insert(std::span<const std::int32_t> tokens,
                     std::span<const PageId> pages);

  bool has_page(PageId page) const { return by_page_.count(page) > 0; }

  // Remove the node holding `page` together with its whole subtree (the
  // descendants would be unreachable without their ancestor) and return
  // every page whose node was removed, `page` first. The caller decides
  // what removal means for each returned page (free it, keep it — the
  // index holds no references).
  std::vector<PageId> erase_page(PageId page);

 private:
  struct Node {
    std::map<std::vector<std::int32_t>, std::unique_ptr<Node>> children;
    Node* parent = nullptr;
    std::vector<std::int32_t> key;          // edge label from parent
    PageId page = kInvalidPage;             // kInvalidPage only at the root
  };

  void collect_pages(const Node& node, std::vector<PageId>& out) const;

  std::size_t page_tokens_;
  Node root_;
  // Reverse lookup only — never iterated (determinism is preserved).
  std::unordered_map<PageId, Node*> by_page_;
};

}  // namespace turbo
