#include "kvcache/serialization.h"

#include <cstring>
#include <fstream>

#include "common/check.h"
#include "common/numeric.h"

namespace turbo {

namespace {

constexpr std::uint32_t kMagic = 0x434b5654u;  // "TVKC" little-endian
constexpr std::uint32_t kVersion = 1;

// Little-endian byte-stream writer.
class Writer {
 public:
  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }
  void put_bytes(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    TURBO_CHECK_MSG(sizeof(T) <= bytes_.size() - pos_,
                    "truncated KV-cache stream");
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }
  // Stated subtraction-side: a length field near SIZE_MAX (corrupt or
  // hostile stream) must not wrap pos_ + n around and pass the bound.
  std::span<const std::uint8_t> get_bytes(std::size_t n) {
    TURBO_CHECK_MSG(n <= bytes_.size() - pos_, "truncated KV-cache stream");
    auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void write_progressive(Writer& w, const ProgressiveBlock& b) {
  w.put<std::uint32_t>(static_cast<std::uint32_t>(b.rows));
  w.put<std::uint32_t>(static_cast<std::uint32_t>(b.cols));
  w.put<std::uint8_t>(saturate_cast<std::uint8_t>(bit_count(b.bits)));
  w.put<float>(b.fp_scale);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(b.channels.size()));
  for (const ChannelParams& c : b.channels) {
    w.put<std::int8_t>(c.s_int);
    w.put<std::int8_t>(c.z_int);
  }
  w.put<std::uint64_t>(b.packed.size());
  w.put_bytes(b.packed);
}

ProgressiveBlock read_progressive(Reader& r) {
  ProgressiveBlock b;
  b.rows = r.get<std::uint32_t>();
  b.cols = r.get<std::uint32_t>();
  b.bits = bit_width_from_int(r.get<std::uint8_t>());
  b.fp_scale = r.get<float>();
  const std::uint32_t n_channels = r.get<std::uint32_t>();
  TURBO_CHECK_MSG(n_channels == b.cols, "corrupt channel table");
  b.channels.resize(n_channels);
  for (ChannelParams& c : b.channels) {
    c.s_int = r.get<std::int8_t>();
    c.z_int = r.get<std::int8_t>();
  }
  const std::uint64_t payload = r.get<std::uint64_t>();
  TURBO_CHECK_MSG(payload == packed_byte_count(b.rows * b.cols, b.bits),
                  "corrupt payload size");
  auto bytes = r.get_bytes(payload);
  b.packed.assign(bytes.begin(), bytes.end());
  return b;
}

void write_buffer(Writer& w, const DecodeBuffer& buf) {
  w.put<float>(buf.has_scale() ? buf.scale() : 0.0f);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(buf.size()));
  for (std::size_t t = 0; t < buf.size(); ++t) {
    auto row = buf.tokens().row(t);
    w.put_bytes({reinterpret_cast<const std::uint8_t*>(row.data()),
                 row.size()});
  }
}

}  // namespace

std::vector<std::uint8_t> serialize_cache(const QuantizedKvCache& cache) {
  Writer w;
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint32_t>(kVersion);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(cache.head_dim()));
  w.put<std::uint8_t>(saturate_cast<std::uint8_t>(bit_count(cache.bits())));
  w.put<std::uint32_t>(static_cast<std::uint32_t>(cache.block_tokens()));
  w.put<std::uint32_t>(
      static_cast<std::uint32_t>(cache.key_buffer().capacity()));
  w.put<std::uint32_t>(static_cast<std::uint32_t>(cache.block_count()));
  for (std::size_t j = 0; j < cache.block_count(); ++j) {
    write_progressive(w, cache.block(j).k);
    write_progressive(w, cache.block(j).v);
  }
  write_buffer(w, cache.key_buffer());
  write_buffer(w, cache.value_buffer());
  return w.take();
}

QuantizedKvCache deserialize_cache(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  TURBO_CHECK_MSG(r.get<std::uint32_t>() == kMagic,
                  "not a TurboAttention KV-cache stream");
  const std::uint32_t version = r.get<std::uint32_t>();
  TURBO_CHECK_MSG(version == kVersion,
                  "unsupported KV-cache version " << version);
  const std::uint32_t head_dim = r.get<std::uint32_t>();
  const BitWidth bits = bit_width_from_int(r.get<std::uint8_t>());
  const std::uint32_t block_tokens = r.get<std::uint32_t>();
  const std::uint32_t buffer_capacity = r.get<std::uint32_t>();
  const std::uint32_t n_blocks = r.get<std::uint32_t>();

  std::vector<KvBlock> blocks(n_blocks);
  for (KvBlock& b : blocks) {
    b.k = read_progressive(r);
    b.v = read_progressive(r);
  }

  auto read_buffer = [&](float& scale, MatrixI8& rows) {
    scale = r.get<float>();
    const std::uint32_t n = r.get<std::uint32_t>();
    rows = MatrixI8(0, head_dim);
    for (std::uint32_t t = 0; t < n; ++t) {
      auto raw = r.get_bytes(head_dim);
      std::vector<std::int8_t> row(head_dim);
      std::memcpy(row.data(), raw.data(), head_dim);
      rows.append_row(std::span<const std::int8_t>(row));
    }
  };
  float k_scale = 0.0f;
  float v_scale = 0.0f;
  MatrixI8 k_buf;
  MatrixI8 v_buf;
  read_buffer(k_scale, k_buf);
  read_buffer(v_scale, v_buf);
  TURBO_CHECK_MSG(r.exhausted(), "trailing bytes in KV-cache stream");

  return QuantizedKvCache::restore(head_dim, bits, block_tokens,
                                   buffer_capacity, std::move(blocks),
                                   k_scale, k_buf, v_scale, v_buf);
}

void save_cache(const QuantizedKvCache& cache, const std::string& path) {
  const std::vector<std::uint8_t> bytes = serialize_cache(cache);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  TURBO_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  TURBO_CHECK_MSG(out.good(), "short write to " << path);
}

QuantizedKvCache load_cache(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  TURBO_CHECK_MSG(in.good(), "cannot open " << path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  TURBO_CHECK_MSG(in.good(), "short read from " << path);
  return deserialize_cache(bytes);
}

}  // namespace turbo
