#include "kvcache/serialization.h"

#include <cstring>
#include <fstream>

#include "common/check.h"
#include "common/crc32.h"
#include "common/numeric.h"

namespace turbo {

namespace {

constexpr std::uint32_t kMagic = 0x434b5654u;     // "TVKC" little-endian
constexpr std::uint32_t kVersion = 2;             // 2: per-block CRC-32
constexpr std::uint32_t kSeqMagic = 0x534b5654u;  // "TVKS" little-endian
constexpr std::uint32_t kSeqVersion = 1;

// Little-endian byte-stream writer.
class Writer {
 public:
  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }
  void put_bytes(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  std::size_t size() const { return bytes_.size(); }
  // Append the CRC-32 of everything written since `begin` (the CRC bytes
  // themselves are excluded — they sit after the region they cover).
  void put_crc_since(std::size_t begin) {
    put<std::uint32_t>(crc32({bytes_.data() + begin, bytes_.size() - begin}));
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    TURBO_CHECK_MSG(sizeof(T) <= bytes_.size() - pos_,
                    "truncated KV-cache stream");
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }
  // Stated subtraction-side: a length field near SIZE_MAX (corrupt or
  // hostile stream) must not wrap pos_ + n around and pass the bound.
  std::span<const std::uint8_t> get_bytes(std::size_t n) {
    TURBO_CHECK_MSG(n <= bytes_.size() - pos_, "truncated KV-cache stream");
    auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::size_t pos() const { return pos_; }
  // Read a stored CRC-32 and compare it against the bytes in
  // [begin, current position). Throws IntegrityError on mismatch.
  void check_crc_since(std::size_t begin, const char* what) {
    const std::uint32_t expect =
        crc32(bytes_.subspan(begin, pos_ - begin));
    const std::uint32_t stored = get<std::uint32_t>();
    if (stored != expect) {
      std::ostringstream oss;
      oss << "KV-cache stream checksum mismatch in " << what << " (stored 0x"
          << std::hex << stored << ", computed 0x" << expect << ")";
      throw IntegrityError(oss.str());
    }
  }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void write_progressive(Writer& w, const ProgressiveBlock& b) {
  w.put<std::uint32_t>(static_cast<std::uint32_t>(b.rows));
  w.put<std::uint32_t>(static_cast<std::uint32_t>(b.cols));
  w.put<std::uint8_t>(saturate_cast<std::uint8_t>(bit_count(b.bits)));
  w.put<float>(b.fp_scale);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(b.channels.size()));
  for (const ChannelParams& c : b.channels) {
    w.put<std::int8_t>(c.s_int);
    w.put<std::int8_t>(c.z_int);
  }
  w.put<std::uint64_t>(b.packed.size());
  w.put_bytes(b.packed);
}

ProgressiveBlock read_progressive(Reader& r) {
  ProgressiveBlock b;
  b.rows = r.get<std::uint32_t>();
  b.cols = r.get<std::uint32_t>();
  b.bits = bit_width_from_int(r.get<std::uint8_t>());
  b.fp_scale = r.get<float>();
  const std::uint32_t n_channels = r.get<std::uint32_t>();
  TURBO_CHECK_MSG(n_channels == b.cols, "corrupt channel table");
  b.channels.resize(n_channels);
  for (ChannelParams& c : b.channels) {
    c.s_int = r.get<std::int8_t>();
    c.z_int = r.get<std::int8_t>();
  }
  const std::uint64_t payload = r.get<std::uint64_t>();
  TURBO_CHECK_MSG(payload == packed_byte_count(b.rows * b.cols, b.bits),
                  "corrupt payload size");
  auto bytes = r.get_bytes(payload);
  b.packed.assign(bytes.begin(), bytes.end());
  return b;
}

void write_buffer(Writer& w, const DecodeBuffer& buf) {
  w.put<float>(buf.has_scale() ? buf.scale() : 0.0f);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(buf.size()));
  for (std::size_t t = 0; t < buf.size(); ++t) {
    auto row = buf.tokens().row(t);
    w.put_bytes({reinterpret_cast<const std::uint8_t*>(row.data()),
                 row.size()});
  }
}

struct RawBuffer {
  float scale = 0.0f;
  MatrixI8 rows;
};

RawBuffer read_buffer(Reader& r, std::size_t head_dim) {
  RawBuffer out;
  out.scale = r.get<float>();
  const std::uint32_t n = r.get<std::uint32_t>();
  out.rows = MatrixI8(0, head_dim);
  for (std::uint32_t t = 0; t < n; ++t) {
    auto raw = r.get_bytes(head_dim);
    std::vector<std::int8_t> row(head_dim);
    std::memcpy(row.data(), raw.data(), head_dim);
    out.rows.append_row(std::span<const std::int8_t>(row));
  }
  return out;
}

// Apply the injector's stream-corruption fault: flip one byte at a
// seed-determined offset. Returns the (possibly corrupted) working copy.
std::vector<std::uint8_t> maybe_corrupt(std::span<const std::uint8_t> bytes,
                                        FaultInjector* fault) {
  std::vector<std::uint8_t> copy(bytes.begin(), bytes.end());
  if (fault != nullptr && fault->corrupt_stream() && !copy.empty()) {
    copy[fault->corruption_offset(copy.size())] ^= 0xa5u;
  }
  return copy;
}

}  // namespace

std::vector<std::uint8_t> serialize_cache(const QuantizedKvCache& cache) {
  Writer w;
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint32_t>(kVersion);
  const std::size_t header_begin = w.size();
  w.put<std::uint32_t>(static_cast<std::uint32_t>(cache.head_dim()));
  w.put<std::uint8_t>(saturate_cast<std::uint8_t>(bit_count(cache.bits())));
  w.put<std::uint32_t>(static_cast<std::uint32_t>(cache.block_tokens()));
  w.put<std::uint32_t>(
      static_cast<std::uint32_t>(cache.key_buffer().capacity()));
  w.put<std::uint32_t>(static_cast<std::uint32_t>(cache.block_count()));
  w.put_crc_since(header_begin);
  for (std::size_t j = 0; j < cache.block_count(); ++j) {
    const std::size_t block_begin = w.size();
    write_progressive(w, cache.block(j).k);
    write_progressive(w, cache.block(j).v);
    w.put_crc_since(block_begin);
  }
  const std::size_t buffers_begin = w.size();
  write_buffer(w, cache.key_buffer());
  write_buffer(w, cache.value_buffer());
  w.put_crc_since(buffers_begin);
  return w.take();
}

QuantizedKvCache deserialize_cache(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  TURBO_CHECK_MSG(r.get<std::uint32_t>() == kMagic,
                  "not a TurboAttention KV-cache stream");
  const std::uint32_t version = r.get<std::uint32_t>();
  TURBO_CHECK_MSG(version == kVersion,
                  "unsupported KV-cache version " << version);
  const std::size_t header_begin = r.pos();
  const std::uint32_t head_dim = r.get<std::uint32_t>();
  const BitWidth bits = bit_width_from_int(r.get<std::uint8_t>());
  const std::uint32_t block_tokens = r.get<std::uint32_t>();
  const std::uint32_t buffer_capacity = r.get<std::uint32_t>();
  const std::uint32_t n_blocks = r.get<std::uint32_t>();
  r.check_crc_since(header_begin, "header");

  std::vector<KvBlock> blocks(n_blocks);
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const std::size_t block_begin = r.pos();
    blocks[j].k = read_progressive(r);
    blocks[j].v = read_progressive(r);
    r.check_crc_since(block_begin, "block");
  }

  const std::size_t buffers_begin = r.pos();
  const RawBuffer k = read_buffer(r, head_dim);
  const RawBuffer v = read_buffer(r, head_dim);
  r.check_crc_since(buffers_begin, "tail buffers");
  TURBO_CHECK_MSG(r.exhausted(), "trailing bytes in KV-cache stream");

  return QuantizedKvCache::restore(head_dim, bits, block_tokens,
                                   buffer_capacity, std::move(blocks),
                                   k.scale, k.rows, v.scale, v.rows);
}

void save_cache(const QuantizedKvCache& cache, const std::string& path) {
  const std::vector<std::uint8_t> bytes = serialize_cache(cache);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  TURBO_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  TURBO_CHECK_MSG(out.good(), "short write to " << path);
}

QuantizedKvCache load_cache(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  TURBO_CHECK_MSG(in.good(), "cannot open " << path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  TURBO_CHECK_MSG(in.good(), "short read from " << path);
  return deserialize_cache(bytes);
}

std::vector<std::uint8_t> serialize_sequence(const PagedKvCache& cache,
                                             PagedKvCache::SeqId seq) {
  Writer w;
  w.put<std::uint32_t>(kSeqMagic);
  w.put<std::uint32_t>(kSeqVersion);
  const std::size_t header_begin = w.size();
  const std::vector<const KvBlock*> blocks = cache.blocks(seq);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(cache.head_dim()));
  w.put<std::uint8_t>(saturate_cast<std::uint8_t>(bit_count(cache.bits())));
  w.put<std::uint32_t>(static_cast<std::uint32_t>(cache.page_tokens()));
  w.put<std::uint32_t>(static_cast<std::uint32_t>(blocks.size()));
  w.put_crc_since(header_begin);
  for (const KvBlock* b : blocks) {
    const std::size_t block_begin = w.size();
    write_progressive(w, b->k);
    write_progressive(w, b->v);
    w.put_crc_since(block_begin);
  }
  const std::size_t buffers_begin = w.size();
  write_buffer(w, cache.key_buffer(seq));
  write_buffer(w, cache.value_buffer(seq));
  w.put_crc_since(buffers_begin);
  return w.take();
}

std::optional<PagedKvCache::SeqId> deserialize_sequence(
    PagedKvCache& cache, std::span<const std::uint8_t> bytes,
    FaultInjector* fault) {
  const std::vector<std::uint8_t> working = maybe_corrupt(bytes, fault);
  Reader r(working);
  TURBO_CHECK_MSG(r.get<std::uint32_t>() == kSeqMagic,
                  "not a TurboAttention KV-sequence stream");
  const std::uint32_t version = r.get<std::uint32_t>();
  TURBO_CHECK_MSG(version == kSeqVersion,
                  "unsupported KV-sequence version " << version);
  const std::size_t header_begin = r.pos();
  const std::uint32_t head_dim = r.get<std::uint32_t>();
  const BitWidth bits = bit_width_from_int(r.get<std::uint8_t>());
  const std::uint32_t page_tokens = r.get<std::uint32_t>();
  const std::uint32_t n_pages = r.get<std::uint32_t>();
  r.check_crc_since(header_begin, "sequence header");
  TURBO_CHECK_MSG(head_dim == cache.head_dim() && bits == cache.bits() &&
                      page_tokens == cache.page_tokens(),
                  "KV-sequence stream geometry does not match this cache");

  std::vector<KvBlock> blocks(n_pages);
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    const std::size_t block_begin = r.pos();
    blocks[j].k = read_progressive(r);
    blocks[j].v = read_progressive(r);
    r.check_crc_since(block_begin, "sequence block");
  }
  const std::size_t buffers_begin = r.pos();
  const RawBuffer k = read_buffer(r, head_dim);
  const RawBuffer v = read_buffer(r, head_dim);
  r.check_crc_since(buffers_begin, "sequence tail buffers");
  TURBO_CHECK_MSG(r.exhausted(), "trailing bytes in KV-sequence stream");

  return cache.adopt_sequence(std::move(blocks), k.scale, k.rows, v.scale,
                              v.rows);
}

}  // namespace turbo
