#include "kvcache/decode_buffer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/numeric.h"

namespace turbo {

DecodeBuffer::DecodeBuffer(std::size_t capacity, std::size_t dim)
    : capacity_(capacity), dim_(dim) {
  TURBO_CHECK(capacity_ > 0);
  TURBO_CHECK(dim_ > 0);
}

void DecodeBuffer::seed_scale(float max_abs) {
  if (has_scale()) return;
  TURBO_CHECK(max_abs >= 0.0f);
  scale_ = max_abs > 0.0f ? max_abs / kSymmetricHeadroom : 1.0f;
}

void DecodeBuffer::push(std::span<const float> token) {
  TURBO_CHECK(token.size() == dim_);
  TURBO_CHECK_MSG(!full(), "DecodeBuffer overflow: flush before pushing");
  if (!has_scale()) {
    float max_abs = 0.0f;
    for (float v : token) max_abs = std::max(max_abs, std::abs(v));
    seed_scale(max_abs);
  }
  std::vector<std::int8_t> q(dim_);
  bool clamped = false;
  const float inv = 1.0f / scale_;
  for (std::size_t i = 0; i < dim_; ++i) {
    const float scaled = std::nearbyint(token[i] * inv);
    if (scaled > 127.0f || scaled < -127.0f) clamped = true;
    q[i] = clamp_to_i8(scaled);
  }
  if (clamped) ++clamped_tokens_;
  tokens_.append_row(std::span<const std::int8_t>(q));
}

void DecodeBuffer::restore_scale(float scale) {
  TURBO_CHECK_MSG(!has_scale(), "restore_scale on a seeded buffer");
  TURBO_CHECK(scale > 0.0f);
  scale_ = scale;
}

void DecodeBuffer::push_quantized(std::span<const std::int8_t> row) {
  TURBO_CHECK(row.size() == dim_);
  TURBO_CHECK_MSG(!full(), "DecodeBuffer overflow: flush before pushing");
  TURBO_CHECK_MSG(has_scale(), "push_quantized requires a restored scale");
  tokens_.append_row(row);
}

MatrixI8 DecodeBuffer::take() {
  MatrixI8 out = std::move(tokens_);
  tokens_ = MatrixI8(0, dim_);
  // A 0-row matrix has no column count until the first append; re-anchor it.
  clamped_tokens_ = 0;
  return out;
}

}  // namespace turbo
