#include "kvcache/paged_cache.h"

#include "common/check.h"

namespace turbo {

PagedKvCache::PagedKvCache(std::size_t head_dim, BitWidth bits,
                           std::size_t page_tokens, std::size_t page_count)
    : head_dim_(head_dim),
      bits_(bits),
      page_tokens_(page_tokens),
      allocator_(page_count),
      page_data_(page_count),
      refcount_(page_count, 0),
      radix_(page_tokens) {
  TURBO_CHECK(head_dim_ > 0);
  TURBO_CHECK(page_tokens_ > 0);
}

PagedKvCache::SeqId PagedKvCache::create_sequence() {
  const SeqId id = next_seq_++;
  sequences_.emplace(
      id, Sequence{{},
                   DecodeBuffer(page_tokens_, head_dim_),
                   DecodeBuffer(page_tokens_, head_dim_)});
  return id;
}

PagedKvCache::SeqId PagedKvCache::fork_sequence(SeqId seq) {
  const Sequence& src = seq_ref(seq);
  const SeqId id = next_seq_++;
  Sequence copy = src;  // page table + buffers copied
  for (PageId p : copy.pages) {
    ++refcount_[p];
  }
  sequences_.emplace(id, std::move(copy));
  return id;
}

void PagedKvCache::release_sequence(SeqId seq) {
  Sequence& s = seq_ref(seq);
  for (PageId p : s.pages) {
    TURBO_DCHECK(refcount_[p] > 0);
    if (--refcount_[p] == 0) {
      // Dying pages leave the prefix index; descendants cascade out with
      // them (unreachable without their ancestor) but stay allocated —
      // erase_page returns index membership, not references.
      if (radix_.has_page(p)) radix_.erase_page(p);
      page_data_[p] = KvBlock{};
      allocator_.release(p);
    }
  }
  sequences_.erase(seq);
}

void PagedKvCache::register_prefix(SeqId seq,
                                   std::span<const std::int32_t> tokens) {
  const Sequence& s = seq_ref(seq);
  std::size_t n = tokens.size() / page_tokens_;
  if (n > s.pages.size()) n = s.pages.size();
  radix_.insert(tokens.first(n * page_tokens_),
                std::span<const PageId>(s.pages.data(), n));
}

PagedKvCache::PrefixAttach PagedKvCache::create_with_prefix(
    std::span<const std::int32_t> tokens) {
  const std::vector<PageId> matched = radix_.match(tokens);
  const SeqId id = create_sequence();
  Sequence& s = seq_ref(id);
  for (const PageId p : matched) {
    TURBO_DCHECK(refcount_[p] > 0);  // index never outlives its pages
    ++refcount_[p];
    s.pages.push_back(p);
  }
  return PrefixAttach{id, matched.size() * page_tokens_};
}

bool PagedKvCache::append_token(SeqId seq, std::span<const float> k,
                                std::span<const float> v) {
  Sequence& s = seq_ref(seq);
  // Lazy flush: a full buffer is drained only when the next token needs
  // the space, so page exhaustion surfaces exactly on the append it
  // blocks (and the blocked token is not lost).
  if (s.k_buffer.full()) {
    if (!flush_buffer(s)) return false;
  }
  s.k_buffer.push(k);
  s.v_buffer.push(v);
  return true;
}

bool PagedKvCache::append_prefill_block(SeqId seq, const Int8Tile& k_tile,
                                        const Int8Tile& v_tile) {
  Sequence& s = seq_ref(seq);
  TURBO_CHECK(k_tile.q.cols() == head_dim_);
  TURBO_CHECK(k_tile.q.rows() == v_tile.q.rows());
  // Same lazy flush-before-push contract as append_token: a full buffer
  // is drained only when the incoming tile needs the space, so page
  // exhaustion surfaces *before* any row is absorbed and a failed call
  // leaves the sequence untouched — an evict-and-retry caller replays
  // the tile with no token lost and none duplicated. (The old shape
  // pushed the ragged rows first and flushed after, so a failed flush
  // stranded them in the buffer for the retry to double-append.)
  if (s.k_buffer.full()) {
    if (!flush_buffer(s)) return false;
  }
  s.k_buffer.seed_scale(k_tile.scale * kSymmetricHeadroom);
  s.v_buffer.seed_scale(v_tile.scale * kSymmetricHeadroom);

  if (k_tile.q.rows() == page_tokens_) {
    TURBO_CHECK_MSG(s.k_buffer.empty(),
                    "page-sized prefill tile must not straddle buffered rows");
    const PageId page = allocator_.allocate();
    if (page == kInvalidPage) return false;
    page_data_[page].k =
        progressive_compress(k_tile.q, k_tile.scale, bits_);
    page_data_[page].v =
        progressive_compress(v_tile.q, v_tile.scale, bits_);
    refcount_[page] = 1;
    s.pages.push_back(page);
    return true;
  }
  // Ragged tile: route through the buffer (stays INT8 until enough tokens
  // arrive to fill a page). Ragged tiles may continue a partially-filled
  // buffer — suffix prefill after a prefix attach lands here — as long as
  // the rows fit; the next append drains a full buffer lazily.
  TURBO_CHECK(k_tile.q.rows() < page_tokens_);
  TURBO_CHECK_MSG(s.k_buffer.size() + k_tile.q.rows() <= page_tokens_,
                  "ragged prefill tile overflows the tail buffer");
  for (std::size_t r = 0; r < k_tile.q.rows(); ++r) {
    std::vector<float> kt(head_dim_);
    std::vector<float> vt(head_dim_);
    dequantize_symmetric_int8(k_tile.q.row(r), k_tile.scale, kt);
    dequantize_symmetric_int8(v_tile.q.row(r), v_tile.scale, vt);
    s.k_buffer.push(kt);
    s.v_buffer.push(vt);
  }
  return true;
}

bool PagedKvCache::flush_buffer(Sequence& s) {
  TURBO_CHECK(s.k_buffer.full());
  const PageId page = allocator_.allocate();
  if (page == kInvalidPage) return false;
  const float k_scale = s.k_buffer.scale();
  const float v_scale = s.v_buffer.scale();
  const MatrixI8 k_q1 = s.k_buffer.take();
  const MatrixI8 v_q1 = s.v_buffer.take();
  page_data_[page].k = progressive_compress(k_q1, k_scale, bits_);
  page_data_[page].v = progressive_compress(v_q1, v_scale, bits_);
  refcount_[page] = 1;
  s.pages.push_back(page);
  return true;
}

std::optional<PagedKvCache::SeqId> PagedKvCache::adopt_sequence(
    std::vector<KvBlock> blocks, float k_scale, const MatrixI8& k_rows,
    float v_scale, const MatrixI8& v_rows) {
  for (const KvBlock& b : blocks) {
    TURBO_CHECK_MSG(b.k.rows == page_tokens_ && b.v.rows == page_tokens_,
                    "adopted block is not page-sized");
    TURBO_CHECK_MSG(b.k.cols == head_dim_ && b.v.cols == head_dim_,
                    "adopted block head_dim mismatch");
    TURBO_CHECK_MSG(b.k.bits == bits_ && b.v.bits == bits_,
                    "adopted block bit-width mismatch");
  }
  TURBO_CHECK_MSG(k_rows.rows() == v_rows.rows(),
                  "adopted K/V tail buffers disagree on length");
  // Flushing is lazy, so a serialized sequence may carry an exactly-full
  // tail buffer (it is cut into a page only when the next token arrives).
  TURBO_CHECK_MSG(k_rows.rows() <= page_tokens_,
                  "adopted tail buffer larger than a page");
  TURBO_CHECK(k_rows.rows() == 0 || k_rows.cols() == head_dim_);
  TURBO_CHECK(v_rows.rows() == 0 || v_rows.cols() == head_dim_);
  TURBO_CHECK_MSG(k_rows.rows() == 0 || (k_scale > 0.0f && v_scale > 0.0f),
                  "adopted tail buffer has tokens but no universal scale");

  std::vector<PageId> pages;
  pages.reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const PageId page = allocator_.allocate();
    if (page == kInvalidPage) {
      for (const PageId p : pages) allocator_.release(p);  // rollback
      return std::nullopt;
    }
    pages.push_back(page);
  }
  Sequence s{{},
             DecodeBuffer(page_tokens_, head_dim_),
             DecodeBuffer(page_tokens_, head_dim_)};
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    page_data_[pages[i]] = std::move(blocks[i]);
    refcount_[pages[i]] = 1;
  }
  s.pages = std::move(pages);
  if (k_scale > 0.0f) s.k_buffer.restore_scale(k_scale);
  if (v_scale > 0.0f) s.v_buffer.restore_scale(v_scale);
  for (std::size_t t = 0; t < k_rows.rows(); ++t) {
    s.k_buffer.push_quantized(k_rows.row(t));
    s.v_buffer.push_quantized(v_rows.row(t));
  }
  const SeqId id = next_seq_++;
  sequences_.emplace(id, std::move(s));
  return id;
}

std::size_t PagedKvCache::token_count(SeqId seq) const {
  const Sequence& s = seq_ref(seq);
  return s.pages.size() * page_tokens_ + s.k_buffer.size();
}

std::vector<const KvBlock*> PagedKvCache::blocks(SeqId seq) const {
  const Sequence& s = seq_ref(seq);
  std::vector<const KvBlock*> out;
  out.reserve(s.pages.size());
  for (PageId p : s.pages) {
    out.push_back(&page_data_[p]);
  }
  return out;
}

const DecodeBuffer& PagedKvCache::key_buffer(SeqId seq) const {
  return seq_ref(seq).k_buffer;
}
const DecodeBuffer& PagedKvCache::value_buffer(SeqId seq) const {
  return seq_ref(seq).v_buffer;
}

std::size_t PagedKvCache::charged_pages(SeqId seq) const {
  const Sequence& s = seq_ref(seq);
  std::size_t n = 0;
  for (const PageId p : s.pages) {
    if (refcount_[p] == 1) ++n;
  }
  return n;
}

std::size_t PagedKvCache::shared_pages() const {
  std::size_t n = 0;
  for (std::uint32_t rc : refcount_) {
    if (rc > 1) ++n;
  }
  return n;
}

std::size_t PagedKvCache::memory_bytes() const {
  std::size_t bytes = 0;
  for (PageId p = 0; p < page_data_.size(); ++p) {
    if (refcount_[p] > 0) bytes += page_data_[p].memory_bytes();
  }
  for (const auto& [id, s] : sequences_) {
    bytes += s.k_buffer.memory_bytes() + s.v_buffer.memory_bytes();
  }
  return bytes;
}

PagedKvCache::Sequence& PagedKvCache::seq_ref(SeqId seq) {
  auto it = sequences_.find(seq);
  TURBO_CHECK_MSG(it != sequences_.end(), "unknown sequence " << seq);
  return it->second;
}
const PagedKvCache::Sequence& PagedKvCache::seq_ref(SeqId seq) const {
  auto it = sequences_.find(seq);
  TURBO_CHECK_MSG(it != sequences_.end(), "unknown sequence " << seq);
  return it->second;
}

}  // namespace turbo
