#include "kvcache/radix_index.h"

#include "common/check.h"

namespace turbo {

RadixIndex::RadixIndex(std::size_t page_tokens) : page_tokens_(page_tokens) {
  TURBO_CHECK(page_tokens_ > 0);
}

std::vector<PageId> RadixIndex::match(
    std::span<const std::int32_t> tokens) const {
  std::vector<PageId> out;
  const Node* node = &root_;
  std::size_t pos = 0;
  while (pos + page_tokens_ <= tokens.size()) {
    const std::vector<std::int32_t> chunk(
        tokens.begin() + static_cast<std::ptrdiff_t>(pos),
        tokens.begin() + static_cast<std::ptrdiff_t>(pos + page_tokens_));
    const auto it = node->children.find(chunk);
    if (it == node->children.end()) break;
    node = it->second.get();
    out.push_back(node->page);
    pos += page_tokens_;
  }
  return out;
}

std::size_t RadixIndex::insert(std::span<const std::int32_t> tokens,
                               std::span<const PageId> pages) {
  TURBO_CHECK_MSG(pages.size() * page_tokens_ <= tokens.size(),
                  "radix insert: fewer token chunks than pages");
  Node* node = &root_;
  std::size_t added = 0;
  for (std::size_t i = 0; i < pages.size(); ++i) {
    TURBO_CHECK(pages[i] != kInvalidPage);
    std::vector<std::int32_t> chunk(
        tokens.begin() + static_cast<std::ptrdiff_t>(i * page_tokens_),
        tokens.begin() + static_cast<std::ptrdiff_t>((i + 1) * page_tokens_));
    const auto it = node->children.find(chunk);
    if (it != node->children.end()) {
      node = it->second.get();  // first writer wins; keep the original page
      continue;
    }
    auto child = std::make_unique<Node>();
    child->parent = node;
    child->key = chunk;
    child->page = pages[i];
    Node* raw = child.get();
    TURBO_CHECK_MSG(by_page_.emplace(pages[i], raw).second,
                    "page " << pages[i] << " already indexed");
    node->children.emplace(std::move(chunk), std::move(child));
    node = raw;
    ++added;
  }
  return added;
}

void RadixIndex::collect_pages(const Node& node,
                               std::vector<PageId>& out) const {
  out.push_back(node.page);
  for (const auto& [key, child] : node.children) {
    collect_pages(*child, out);
  }
}

std::vector<PageId> RadixIndex::erase_page(PageId page) {
  const auto it = by_page_.find(page);
  TURBO_CHECK_MSG(it != by_page_.end(), "page " << page << " not indexed");
  Node* node = it->second;
  std::vector<PageId> removed;
  collect_pages(*node, removed);
  for (const PageId p : removed) {
    by_page_.erase(p);
  }
  Node* parent = node->parent;
  TURBO_CHECK(parent != nullptr);
  parent->children.erase(node->key);  // destroys the subtree
  return removed;
}

}  // namespace turbo
