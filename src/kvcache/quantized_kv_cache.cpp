#include "kvcache/quantized_kv_cache.h"

#include <algorithm>

#include "common/check.h"

namespace turbo {

QuantizedKvCache::QuantizedKvCache(std::size_t head_dim, BitWidth bits,
                                   std::size_t block_tokens,
                                   std::size_t buffer_capacity)
    : head_dim_(head_dim),
      bits_(bits),
      block_tokens_(block_tokens),
      k_buffer_(buffer_capacity, head_dim),
      v_buffer_(buffer_capacity, head_dim) {
  TURBO_CHECK(head_dim_ > 0);
  TURBO_CHECK(block_tokens_ > 0);
  TURBO_CHECK(bits == BitWidth::kInt2 || bits == BitWidth::kInt3 ||
              bits == BitWidth::kInt4);
}

void QuantizedKvCache::append_prefill_block(const Int8Tile& k_tile,
                                            const Int8Tile& v_tile) {
  TURBO_CHECK(k_tile.q.cols() == head_dim_);
  TURBO_CHECK(v_tile.q.cols() == head_dim_);
  TURBO_CHECK(k_tile.q.rows() == v_tile.q.rows());
  TURBO_CHECK_MSG(k_buffer_.empty() && v_buffer_.empty(),
                  "prefill blocks must precede decode tokens");
  KvBlock block;
  block.k = progressive_compress(k_tile.q, k_tile.scale, bits_);
  block.v = progressive_compress(v_tile.q, v_tile.scale, bits_);
  blocks_.push_back(std::move(block));
  // The universal decode-buffer scale covers the largest magnitude seen so
  // far: tile scale * headroom reconstructs the tile's max-abs.
  k_buffer_.seed_scale(k_tile.scale * kSymmetricHeadroom);
  v_buffer_.seed_scale(v_tile.scale * kSymmetricHeadroom);
}

void QuantizedKvCache::append_token(std::span<const float> k,
                                    std::span<const float> v) {
  k_buffer_.push(k);
  v_buffer_.push(v);
  if (k_buffer_.full()) flush_buffers_to_block();
}

void QuantizedKvCache::flush() {
  if (!k_buffer_.empty()) flush_buffers_to_block();
}

void QuantizedKvCache::flush_buffers_to_block() {
  TURBO_CHECK(k_buffer_.size() == v_buffer_.size());
  const float k_scale = k_buffer_.scale();
  const float v_scale = v_buffer_.scale();
  const MatrixI8 k_q1 = k_buffer_.take();
  const MatrixI8 v_q1 = v_buffer_.take();
  KvBlock block;
  block.k = progressive_compress(k_q1, k_scale, bits_);
  block.v = progressive_compress(v_q1, v_scale, bits_);
  blocks_.push_back(std::move(block));
}

std::size_t QuantizedKvCache::evict_blocks_before(
    std::size_t keep_last_tokens) {
  const std::size_t total = token_count();
  if (total <= keep_last_tokens) return 0;
  const std::size_t cut = total - keep_last_tokens;  // first kept position
  std::size_t dropped = 0;
  std::size_t pos = 0;
  while (dropped < blocks_.size() &&
         pos + blocks_[dropped].tokens() <= cut) {
    pos += blocks_[dropped].tokens();
    ++dropped;
  }
  blocks_.erase(blocks_.begin(),
                blocks_.begin() + static_cast<std::ptrdiff_t>(dropped));
  return dropped;
}

std::size_t QuantizedKvCache::token_count() const {
  std::size_t n = k_buffer_.size();
  for (const KvBlock& b : blocks_) n += b.tokens();
  return n;
}

const KvBlock& QuantizedKvCache::block(std::size_t i) const {
  TURBO_CHECK(i < blocks_.size());
  return blocks_[i];
}

std::size_t QuantizedKvCache::memory_bytes() const {
  std::size_t n = k_buffer_.memory_bytes() + v_buffer_.memory_bytes();
  for (const KvBlock& b : blocks_) n += b.memory_bytes();
  return n;
}

MatrixF QuantizedKvCache::reconstruct(bool keys) const {
  MatrixF out(0, head_dim_);
  for (const KvBlock& b : blocks_) {
    out.append_rows(progressive_decompress_float(keys ? b.k : b.v));
  }
  const DecodeBuffer& buf = keys ? k_buffer_ : v_buffer_;
  for (std::size_t r = 0; r < buf.size(); ++r) {
    auto q = buf.tokens().row(r);
    std::vector<float> row(head_dim_);
    for (std::size_t c = 0; c < head_dim_; ++c) {
      row[c] = static_cast<float>(q[c]) * buf.scale();
    }
    out.append_row(std::span<const float>(row));
  }
  return out;
}

QuantizedKvCache QuantizedKvCache::restore(
    std::size_t head_dim, BitWidth bits, std::size_t block_tokens,
    std::size_t buffer_capacity, std::vector<KvBlock> blocks, float k_scale,
    const MatrixI8& k_buf, float v_scale, const MatrixI8& v_buf) {
  QuantizedKvCache cache(head_dim, bits, block_tokens, buffer_capacity);
  for (KvBlock& b : blocks) {
    TURBO_CHECK(b.k.cols == head_dim && b.v.cols == head_dim);
    TURBO_CHECK(b.k.rows == b.v.rows);
  }
  cache.blocks_ = std::move(blocks);
  TURBO_CHECK(k_buf.rows() == v_buf.rows());
  TURBO_CHECK(k_buf.rows() <= buffer_capacity);
  if (k_scale > 0.0f) cache.k_buffer_.restore_scale(k_scale);
  if (v_scale > 0.0f) cache.v_buffer_.restore_scale(v_scale);
  for (std::size_t r = 0; r < k_buf.rows(); ++r) {
    cache.k_buffer_.push_quantized(k_buf.row(r));
    cache.v_buffer_.push_quantized(v_buf.row(r));
  }
  return cache;
}

MatrixF QuantizedKvCache::reconstruct_keys() const { return reconstruct(true); }
MatrixF QuantizedKvCache::reconstruct_values() const {
  return reconstruct(false);
}

}  // namespace turbo
