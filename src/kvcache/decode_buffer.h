// Enhanced KV-cache decode buffer (section 3.3).
//
// During decoding, newly generated key/value vectors land in an INT8 buffer
// of capacity n_b (paper default 64). The critical design point is the
// *universal scale*: the buffer's symmetric INT8 scale is fixed once (from
// prefill statistics, or from the first buffered token when there was no
// prefill) and later tokens whose magnitudes exceed the representable range
// are clamped instead of triggering a re-quantization of everything already
// buffered. This is what lets decode run integer attention over the buffer
// without the full-precision residual window KIVI and GEAR keep.
#pragma once

#include <cstdint>
#include <span>

#include "common/matrix.h"
#include "quant/symmetric.h"

namespace turbo {

class DecodeBuffer {
 public:
  DecodeBuffer(std::size_t capacity, std::size_t dim);

  std::size_t capacity() const { return capacity_; }
  std::size_t dim() const { return dim_; }
  std::size_t size() const { return tokens_.rows(); }
  bool empty() const { return size() == 0; }
  bool full() const { return size() >= capacity_; }

  // Fix the universal scale from a maximum-magnitude estimate (e.g. the
  // largest value seen during prefill). No-op once a scale is set.
  void seed_scale(float max_abs);
  bool has_scale() const { return scale_ > 0.0f; }
  float scale() const { return scale_; }

  // Quantize one token vector into the buffer (clamping outliers to the
  // INT8 range under the universal scale). Seeds the scale from this token
  // if none was established. Precondition: !full().
  void push(std::span<const float> token);

  // Buffered INT8 token rows, oldest first.
  const MatrixI8& tokens() const { return tokens_; }

  // Count of tokens that had at least one element clamped — the quality
  // cost of never recompressing (tracked for tests/ablations).
  std::size_t clamped_token_count() const { return clamped_tokens_; }

  // Move the buffered tokens out and reset to empty. The universal scale is
  // retained: it is universal across the whole generation. The clamp
  // counter is reset along with the tokens — callers that account clamped
  // tokens must read clamped_token_count() *before* take().
  MatrixI8 take();

  // --- Deserialization support (kvcache/serialization.h) -------------
  // Set the universal scale bit-exactly. Only valid before any scale is
  // established.
  void restore_scale(float scale);
  // Append one already-quantized INT8 row (no re-quantization).
  void push_quantized(std::span<const std::int8_t> row);

  // INT8 payload + one FP16 scale.
  std::size_t memory_bytes() const { return tokens_.size() + 2; }

 private:
  std::size_t capacity_;
  std::size_t dim_;
  float scale_ = 0.0f;
  MatrixI8 tokens_;
  std::size_t clamped_tokens_ = 0;
};

}  // namespace turbo
