// Fixed-size page allocator for the paged KV cache.
//
// Serving engines avoid per-sequence contiguous KV allocations (internal
// fragmentation, no sharing) by carving the cache into fixed-size pages
// and mapping sequences onto them through page tables — the vLLM design.
// This allocator owns the page pool; the paged cache maps sequences to
// pages and stores compressed KV payloads in them.
//
// An optional FaultInjector makes individual allocations fail
// deterministically even while pages remain free, so schedulers built on
// top (serving/engine.h) can be driven through their eviction/preemption
// paths under test.
#pragma once

#include <cstdint>
#include <vector>

#include "common/fault.h"

namespace turbo {

using PageId = std::uint32_t;
inline constexpr PageId kInvalidPage = 0xffffffffu;

class PageAllocator {
 public:
  explicit PageAllocator(std::size_t page_count);

  std::size_t capacity() const { return capacity_; }
  std::size_t free_pages() const { return free_list_.size(); }
  std::size_t used_pages() const { return capacity_ - free_pages(); }

  // Allocate one page; returns kInvalidPage when exhausted (or when the
  // fault injector fails this attempt).
  PageId allocate();

  // Return a page to the pool. Double-free is a checked error.
  void release(PageId page);

  bool is_allocated(PageId page) const;

  // Wire a fault injector (not owned; may be null to disable). Each
  // allocate() first asks it whether to fail this attempt.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // Allocations that failed because the injector fired (not exhaustion).
  std::size_t injected_failures() const { return injected_failures_; }

 private:
  std::size_t capacity_;
  std::vector<PageId> free_list_;
  std::vector<bool> allocated_;
  FaultInjector* injector_ = nullptr;
  std::size_t injected_failures_ = 0;
};

}  // namespace turbo
