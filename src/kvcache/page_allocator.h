// Fixed-size page allocator for the paged KV cache.
//
// Serving engines avoid per-sequence contiguous KV allocations (internal
// fragmentation, no sharing) by carving the cache into fixed-size pages
// and mapping sequences onto them through page tables — the vLLM design.
// This allocator owns the page pool; the paged cache maps sequences to
// pages and stores compressed KV payloads in them.
#pragma once

#include <cstdint>
#include <vector>

namespace turbo {

using PageId = std::uint32_t;
inline constexpr PageId kInvalidPage = 0xffffffffu;

class PageAllocator {
 public:
  explicit PageAllocator(std::size_t page_count);

  std::size_t capacity() const { return capacity_; }
  std::size_t free_pages() const { return free_list_.size(); }
  std::size_t used_pages() const { return capacity_ - free_pages(); }

  // Allocate one page; returns kInvalidPage when exhausted.
  PageId allocate();

  // Return a page to the pool. Double-free is a checked error.
  void release(PageId page);

  bool is_allocated(PageId page) const;

 private:
  std::size_t capacity_;
  std::vector<PageId> free_list_;
  std::vector<bool> allocated_;
};

}  // namespace turbo
