// Packed progressive KV cache for one attention head.
//
// Storage layout mirrors Figure 3: the bulk of the cache is a sequence of
// FlashAttention-sized token blocks, each holding K and V tiles compressed
// through blockwise progressive quantization (INT8 first stage with an FP
// per-block scale, then channel-wise asymmetric INT4/INT2 with integer
// scales/zero-points). The tail of the sequence lives in the enhanced INT8
// decode buffer until n_b tokens accumulate, at which point the buffer is
// flushed through the second quantization stage into a new packed block.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "kvcache/decode_buffer.h"
#include "quant/progressive.h"
#include "quant/symmetric.h"
#include "quant/types.h"

namespace turbo {

// One compressed token block of the cache.
struct KvBlock {
  ProgressiveBlock k;
  ProgressiveBlock v;

  std::size_t tokens() const { return k.rows; }
  std::size_t memory_bytes() const {
    return k.memory_bytes() + v.memory_bytes();
  }
};

class QuantizedKvCache {
 public:
  // `block_tokens` is Bc (tokens per packed block), `buffer_capacity` n_b.
  QuantizedKvCache(std::size_t head_dim, BitWidth bits,
                   std::size_t block_tokens, std::size_t buffer_capacity);

  std::size_t head_dim() const { return head_dim_; }
  BitWidth bits() const { return bits_; }
  std::size_t block_tokens() const { return block_tokens_; }

  // --- Prefill path -------------------------------------------------------
  // Absorb one already-INT8 K/V tile pair (the prefill kernel quantizes
  // tiles on chip; this applies the second stage and stores the result).
  // Also feeds the buffers' universal-scale statistics.
  void append_prefill_block(const Int8Tile& k_tile, const Int8Tile& v_tile);

  // --- Decode path --------------------------------------------------------
  // Append one generated token's key/value. Flushes the buffer into a
  // packed block when it reaches capacity.
  void append_token(std::span<const float> k, std::span<const float> v);

  // Force-compress whatever is buffered (e.g. at end of generation).
  void flush();

  // Sliding-window eviction: drop leading packed blocks that are entirely
  // outside the last `keep_last_tokens` positions. Returns the number of
  // blocks dropped (their memory is freed). With window attention this
  // bounds the cache at window + one block of slack.
  std::size_t evict_blocks_before(std::size_t keep_last_tokens);

  // --- Introspection ------------------------------------------------------
  std::size_t token_count() const;
  std::size_t block_count() const { return blocks_.size(); }
  const KvBlock& block(std::size_t i) const;
  const DecodeBuffer& key_buffer() const { return k_buffer_; }
  const DecodeBuffer& value_buffer() const { return v_buffer_; }

  // Total cache footprint in bytes (packed payloads + metadata + buffer).
  std::size_t memory_bytes() const;

  // Reconstruct the full K / V tensors in float (packed blocks dequantized
  // through both stages, buffered tokens through the universal scale).
  // For verification and error measurement, not on the decode fast path.
  MatrixF reconstruct_keys() const;
  MatrixF reconstruct_values() const;

  // Rebuild a cache from serialized state (kvcache/serialization.h).
  // Scales are restored bit-exactly; the blocks are adopted verbatim.
  static QuantizedKvCache restore(std::size_t head_dim, BitWidth bits,
                                  std::size_t block_tokens,
                                  std::size_t buffer_capacity,
                                  std::vector<KvBlock> blocks,
                                  float k_scale, const MatrixI8& k_buf,
                                  float v_scale, const MatrixI8& v_buf);

 private:
  void flush_buffers_to_block();
  MatrixF reconstruct(bool keys) const;

  std::size_t head_dim_;
  BitWidth bits_;
  std::size_t block_tokens_;
  std::vector<KvBlock> blocks_;
  DecodeBuffer k_buffer_;
  DecodeBuffer v_buffer_;
};

}  // namespace turbo
