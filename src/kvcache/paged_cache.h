// Paged, multi-sequence KV cache with copy-on-write prefix sharing.
//
// The serving-side memory manager: sequences map onto fixed-size pages
// (one page = one FlashAttention block of tokens, compressed through the
// FlashQ second stage) via per-sequence page tables. Because the cache is
// append-only, forked sequences (beam search, shared system prompts) can
// share full pages by reference counting with no copy ever needed; only
// the partial INT8 tail buffer is duplicated. This is the vLLM PagedAttention
// design specialized to TurboAttention's compressed page payloads.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "kvcache/decode_buffer.h"
#include "kvcache/page_allocator.h"
#include "kvcache/quantized_kv_cache.h"
#include "kvcache/radix_index.h"

namespace turbo {

class PagedKvCache {
 public:
  using SeqId = std::uint64_t;

  // `page_tokens` is the tokens-per-page (use the attention Bc);
  // `page_count` bounds total memory.
  PagedKvCache(std::size_t head_dim, BitWidth bits, std::size_t page_tokens,
               std::size_t page_count);

  std::size_t head_dim() const { return head_dim_; }
  std::size_t page_tokens() const { return page_tokens_; }
  BitWidth bits() const { return bits_; }

  // --- Sequence lifecycle -------------------------------------------------
  SeqId create_sequence();

  // Copy-on-write fork: full pages are shared (refcounted); only the
  // partial tail buffer is copied. Contract: forking NEVER fails and
  // NEVER consumes a page — it only increments refcounts — so the return
  // is an unconditional SeqId, not an optional. Page pressure surfaces
  // later, on the first append that needs a private page.
  SeqId fork_sequence(SeqId seq);

  void release_sequence(SeqId seq);
  bool has_sequence(SeqId seq) const { return sequences_.count(seq) > 0; }

  // --- Prefix sharing (kvcache/radix_index.h) -------------------------
  // Index `seq`'s full pages under its token ids so later prompts can
  // attach to them. Only whole pages are indexed (the tail buffer is
  // private by construction); chunks already indexed keep their original
  // page. Indexed pages stay shareable until their refcount drops to
  // zero — the index holds no reference of its own, so sharing is among
  // live sequences only.
  void register_prefix(SeqId seq, std::span<const std::int32_t> tokens);

  struct PrefixAttach {
    SeqId seq = 0;
    std::size_t matched_tokens = 0;  // whole-page prefix attached
  };
  // Create a sequence attached to the longest indexed prefix of `tokens`:
  // matched full pages join the new sequence by refcount bump — the
  // fork_sequence CoW path generalized to partial prefixes. Never fails
  // and never consumes a page; the caller prefills only the suffix past
  // `matched_tokens`.
  PrefixAttach create_with_prefix(std::span<const std::int32_t> tokens);

  // --- Data path ----------------------------------------------------------
  // Append one token's K/V to a sequence. Returns false when the cache is
  // out of pages (the token is NOT appended; caller may evict and retry).
  [[nodiscard]] bool append_token(SeqId seq, std::span<const float> k,
                                  std::span<const float> v);

  // Prefill fast path: absorb an INT8 tile pair (exactly page_tokens rows
  // except possibly the last tile, which lands in the tail buffer).
  // Returns false on page exhaustion.
  [[nodiscard]] bool append_prefill_block(SeqId seq, const Int8Tile& k_tile,
                                          const Int8Tile& v_tile);

  // --- Swap-in (kvcache/serialization.h) ------------------------------
  // Adopt a fully-materialized sequence: one page is allocated per block
  // and the tail buffers are restored bit-exactly. All-or-nothing: on
  // page exhaustion (or an injected allocation failure) every page
  // allocated so far is released and nullopt is returned — the cache is
  // left exactly as before the call. Blocks must match this cache's
  // head_dim / bits / page_tokens.
  std::optional<SeqId> adopt_sequence(std::vector<KvBlock> blocks,
                                      float k_scale, const MatrixI8& k_rows,
                                      float v_scale, const MatrixI8& v_rows);

  // Expose the allocator so callers can wire a FaultInjector
  // (common/fault.h) into the allocation path.
  PageAllocator& allocator() { return allocator_; }

  // --- Decode view ----------------------------------------------------
  std::size_t token_count(SeqId seq) const;
  std::vector<const KvBlock*> blocks(SeqId seq) const;
  const DecodeBuffer& key_buffer(SeqId seq) const;
  const DecodeBuffer& value_buffer(SeqId seq) const;

  // --- Introspection --------------------------------------------------
  std::size_t used_pages() const { return allocator_.used_pages(); }
  std::size_t free_pages() const { return allocator_.free_pages(); }
  std::size_t sequence_count() const { return sequences_.size(); }
  // Pages referenced by more than one sequence.
  std::size_t shared_pages() const;
  // Pages this sequence is charged for: only privately-referenced pages
  // (refcount == 1) count. Shared pages are charged to nobody — across
  // all sequences, sum(charged_pages) + shared_pages() == used_pages().
  // Schedulers enforcing per-class page shares must bill with this, not
  // the page-table length, or residents of a shared prefix are
  // overcharged for pages evicting them would not free.
  std::size_t charged_pages(SeqId seq) const;
  // Total compressed bytes held (pages + buffers).
  std::size_t memory_bytes() const;
  const RadixIndex& radix() const { return radix_; }

 private:
  struct Sequence {
    std::vector<PageId> pages;
    DecodeBuffer k_buffer;
    DecodeBuffer v_buffer;
  };

  Sequence& seq_ref(SeqId seq);
  const Sequence& seq_ref(SeqId seq) const;
  bool flush_buffer(Sequence& s);

  std::size_t head_dim_;
  BitWidth bits_;
  std::size_t page_tokens_;
  PageAllocator allocator_;
  std::vector<KvBlock> page_data_;       // indexed by PageId
  std::vector<std::uint32_t> refcount_;  // indexed by PageId
  RadixIndex radix_;
  std::unordered_map<SeqId, Sequence> sequences_;
  SeqId next_seq_ = 1;
};

}  // namespace turbo
