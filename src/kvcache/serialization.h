// Binary serialization of compressed KV caches.
//
// Serving systems persist prefilled system prompts / few-shot prefixes so
// later requests skip their prefill entirely (disk prefix caching). The
// compressed representation is the natural persistence format — 4-6x
// smaller than FP16 and exactly what decode consumes. Format: a tagged,
// versioned, little-endian stream; round trips are bit-exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kvcache/quantized_kv_cache.h"

namespace turbo {

// Serialize a cache (packed blocks + buffer + universal scales).
std::vector<std::uint8_t> serialize_cache(const QuantizedKvCache& cache);

// Reconstruct a cache from a stream produced by serialize_cache. Throws
// CheckError on magic/version mismatch or a truncated/corrupt stream.
QuantizedKvCache deserialize_cache(
    std::span<const std::uint8_t> bytes);

// File convenience wrappers.
void save_cache(const QuantizedKvCache& cache, const std::string& path);
QuantizedKvCache load_cache(const std::string& path);

}  // namespace turbo
