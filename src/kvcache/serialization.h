// Binary serialization of compressed KV caches.
//
// Serving systems persist prefilled system prompts / few-shot prefixes so
// later requests skip their prefill entirely (disk prefix caching), and
// swap preempted sequences out to host memory under KV pressure. The
// compressed representation is the natural persistence format — 4-6x
// smaller than FP16 and exactly what decode consumes.
//
// Format: a tagged, versioned, little-endian stream; round trips are
// bit-exact. Since version 2 every stream carries integrity metadata: a
// header CRC-32 plus one CRC-32 per compressed block and one over the
// tail buffers, so corruption is detected at the damaged block before any
// payload is adopted (see docs/ROBUSTNESS.md for the recovery contract).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/fault.h"
#include "kvcache/paged_cache.h"
#include "kvcache/quantized_kv_cache.h"

namespace turbo {

// Thrown when a stream is structurally parseable but a CRC-32 check
// fails: the payload was corrupted in transit or at rest. Distinct from
// plain CheckError (malformed / truncated stream) so swap-in paths can
// catch it and recover by recomputation.
class IntegrityError : public CheckError {
 public:
  explicit IntegrityError(const std::string& what) : CheckError(what) {}
};

// --- Whole-cache streams (QuantizedKvCache) -------------------------------

// Serialize a cache (packed blocks + buffer + universal scales).
std::vector<std::uint8_t> serialize_cache(const QuantizedKvCache& cache);

// Reconstruct a cache from a stream produced by serialize_cache. Throws
// CheckError on magic/version mismatch or a truncated/corrupt structure,
// IntegrityError when a checksum does not match its payload.
QuantizedKvCache deserialize_cache(std::span<const std::uint8_t> bytes);

// File convenience wrappers.
void save_cache(const QuantizedKvCache& cache, const std::string& path);
QuantizedKvCache load_cache(const std::string& path);

// --- Sequence swap streams (PagedKvCache) ---------------------------------

// Serialize one sequence of a paged cache: its full pages (shared pages
// are serialized by value — refcounts are a cache-local concern) plus the
// partial tail buffers. The stream is self-describing and checksummed
// like a cache stream.
std::vector<std::uint8_t> serialize_sequence(const PagedKvCache& cache,
                                             PagedKvCache::SeqId seq);

// Swap a serialized sequence back into `cache` as a NEW sequence.
//  - Throws IntegrityError when a block checksum fails (corrupt swap
//    stream), CheckError when the stream is malformed or its geometry
//    (head_dim / bits / page_tokens) does not match the cache.
//  - Returns nullopt when the cache has too few free pages; the cache is
//    left untouched (all-or-nothing, see PagedKvCache::adopt_sequence).
// If `fault` is non-null, its stream-corruption probe may deterministically
// flip one byte before parsing — the hook the fault-injection harness uses
// to drive the detect-and-recover path end to end.
std::optional<PagedKvCache::SeqId> deserialize_sequence(
    PagedKvCache& cache, std::span<const std::uint8_t> bytes,
    FaultInjector* fault = nullptr);

}  // namespace turbo
