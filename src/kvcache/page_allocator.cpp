#include "kvcache/page_allocator.h"

#include "common/check.h"

namespace turbo {

PageAllocator::PageAllocator(std::size_t page_count)
    : capacity_(page_count), allocated_(page_count, false) {
  TURBO_CHECK(page_count > 0);
  TURBO_CHECK(page_count < kInvalidPage);
  free_list_.reserve(page_count);
  // Hand out low page ids first (LIFO free list, reversed fill).
  for (std::size_t i = page_count; i > 0; --i) {
    free_list_.push_back(static_cast<PageId>(i - 1));
  }
}

PageId PageAllocator::allocate() {
  if (injector_ != nullptr && injector_->fail_page_alloc()) {
    ++injected_failures_;
    return kInvalidPage;
  }
  if (free_list_.empty()) return kInvalidPage;
  const PageId page = free_list_.back();
  free_list_.pop_back();
  allocated_[page] = true;
  return page;
}

void PageAllocator::release(PageId page) {
  TURBO_CHECK_MSG(page < capacity_, "release of out-of-range page " << page);
  TURBO_CHECK_MSG(allocated_[page], "double free of page " << page);
  allocated_[page] = false;
  free_list_.push_back(page);
}

bool PageAllocator::is_allocated(PageId page) const {
  TURBO_CHECK(page < capacity_);
  return allocated_[page];
}

}  // namespace turbo
