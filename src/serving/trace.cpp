#include "serving/trace.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace turbo::serving {

std::vector<Request> generate_trace(const TraceConfig& config) {
  TURBO_CHECK(config.arrival_rate > 0.0);
  TURBO_CHECK(config.duration_s > 0.0);
  double mix_sum = 0.0;
  for (const double share : config.class_mix) {
    TURBO_CHECK_MSG(share >= 0.0, "class_mix shares must be non-negative");
    mix_sum += share;
  }
  TURBO_CHECK_MSG(std::abs(mix_sum - 1.0) <= 1e-6,
                  "class_mix must sum to 1");
  // The pure-standard default is the pre-service-class trace; drawing a
  // class for it would shift every later sample, so it is skipped and the
  // RNG stream stays bit-identical to traces generated before classes
  // existed.
  const bool draw_class = config.class_mix[1] != 1.0;
  Rng rng(config.seed);

  std::vector<Request> trace;
  double t = 0.0;
  std::uint64_t id = 0;
  while (true) {
    // Poisson process: exponential inter-arrival times.
    double u;
    do {
      u = rng.uniform();
    } while (u <= 0.0);
    t += -std::log(u) / config.arrival_rate;
    if (t > config.duration_s) break;

    Request r;
    r.id = id++;
    r.arrival_s = t;
    const double p =
        std::exp(rng.normal(config.prompt_log_mean, config.prompt_log_std));
    const double g =
        std::exp(rng.normal(config.gen_log_mean, config.gen_log_std));
    r.prompt_tokens = std::clamp<std::size_t>(
        static_cast<std::size_t>(p), 16, config.max_prompt);
    r.max_new_tokens = std::clamp<std::size_t>(
        static_cast<std::size_t>(g), 1, config.max_gen);
    if (draw_class) {
      const double c = rng.uniform();
      if (c < config.class_mix[0]) {
        r.service_class = ServiceClass::kInteractive;
      } else if (c < config.class_mix[0] + config.class_mix[1]) {
        r.service_class = ServiceClass::kStandard;
      } else {
        r.service_class = ServiceClass::kBatch;
      }
    }
    const auto cls = static_cast<std::size_t>(r.service_class);
    r.ttft_deadline_s = config.ttft_deadline_s[cls];
    r.e2e_deadline_s = config.e2e_deadline_s[cls];
    trace.push_back(r);
  }
  return trace;
}

}  // namespace turbo::serving
