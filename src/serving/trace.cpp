#include "serving/trace.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace turbo::serving {

std::vector<Request> generate_trace(const TraceConfig& config) {
  TURBO_CHECK(config.arrival_rate > 0.0);
  TURBO_CHECK(config.duration_s > 0.0);
  double mix_sum = 0.0;
  for (const double share : config.class_mix) {
    TURBO_CHECK_MSG(share >= 0.0, "class_mix shares must be non-negative");
    mix_sum += share;
  }
  TURBO_CHECK_MSG(std::abs(mix_sum - 1.0) <= 1e-6,
                  "class_mix must sum to 1");
  TURBO_CHECK_MSG(config.session_turns >= 1, "session_turns must be >= 1");
  TURBO_CHECK(config.shared_prefix_fraction >= 0.0 &&
              config.shared_prefix_fraction <= 1.0);
  TURBO_CHECK(config.agentic_fraction >= 0.0 &&
              config.agentic_fraction <= 1.0);
  TURBO_CHECK(config.session_gap_s >= 0.0);
  // Any non-default session knob flips the generator into session mode;
  // the defaults draw no extra randomness (same guarantee as draw_class
  // below), so pre-session configs replay their exact legacy RNG stream.
  const bool sessions = config.shared_prefix_tokens > 0 ||
                        config.session_turns > 1 ||
                        config.agentic_fraction > 0.0;
  // The pure-standard default is the pre-service-class trace; drawing a
  // class for it would shift every later sample, so it is skipped and the
  // RNG stream stays bit-identical to traces generated before classes
  // existed.
  const bool draw_class = config.class_mix[1] != 1.0;
  Rng rng(config.seed);

  std::vector<Request> trace;
  double t = 0.0;
  std::uint64_t id = 0;
  // Session-mode token ids: ids [0, shared_prefix_tokens) are the shared
  // system prompt; every other token comes off this counter and is unique
  // across the whole trace, so prefix hits occur exactly where intended.
  std::int32_t next_token =
      static_cast<std::int32_t>(config.shared_prefix_tokens);
  const auto fresh_ids = [&next_token](std::vector<std::int32_t>& dst,
                                       std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) dst.push_back(next_token++);
  };
  while (true) {
    // Poisson process: exponential inter-arrival times.
    double u;
    do {
      u = rng.uniform();
    } while (u <= 0.0);
    t += -std::log(u) / config.arrival_rate;
    if (t > config.duration_s) break;

    Request r;
    r.id = id++;
    r.arrival_s = t;
    const double p =
        std::exp(rng.normal(config.prompt_log_mean, config.prompt_log_std));
    const double g =
        std::exp(rng.normal(config.gen_log_mean, config.gen_log_std));
    r.prompt_tokens = std::clamp<std::size_t>(
        static_cast<std::size_t>(p), 16, config.max_prompt);
    r.max_new_tokens = std::clamp<std::size_t>(
        static_cast<std::size_t>(g), 1, config.max_gen);
    if (draw_class) {
      const double c = rng.uniform();
      if (c < config.class_mix[0]) {
        r.service_class = ServiceClass::kInteractive;
      } else if (c < config.class_mix[0] + config.class_mix[1]) {
        r.service_class = ServiceClass::kStandard;
      } else {
        r.service_class = ServiceClass::kBatch;
      }
    }
    const auto cls = static_cast<std::size_t>(r.service_class);
    r.ttft_deadline_s = config.ttft_deadline_s[cls];
    r.e2e_deadline_s = config.e2e_deadline_s[cls];
    if (!sessions) {
      trace.push_back(r);
      continue;
    }

    // --- Session mode: stamp token ids and expand multi-turn chains. ---
    std::vector<std::int32_t> history;
    bool shared = false;
    if (config.shared_prefix_tokens > 0) {
      shared = config.shared_prefix_fraction >= 1.0 ||
               rng.uniform() < config.shared_prefix_fraction;
    }
    if (shared) {
      // A shared-prefix prompt must extend past the prefix (the engine
      // never indexes or matches a whole prompt, so give it a tail).
      if (r.prompt_tokens < config.shared_prefix_tokens + 16) {
        r.prompt_tokens = config.shared_prefix_tokens + 16;
      }
      history.reserve(r.prompt_tokens);
      for (std::size_t i = 0; i < config.shared_prefix_tokens; ++i) {
        history.push_back(static_cast<std::int32_t>(i));
      }
    }
    fresh_ids(history, r.prompt_tokens - history.size());
    r.prompt_ids = history;
    trace.push_back(r);

    if (config.session_turns > 1) {
      // Agentic loops are tool-call cycles: tiny fixed tool-result turns,
      // capped generations, full history re-submitted every time.
      const bool agentic = config.agentic_fraction > 0.0 &&
                           rng.uniform() < config.agentic_fraction;
      double turn_t = t;
      std::size_t prev_gen = r.max_new_tokens;
      for (std::size_t turn = 1; turn < config.session_turns; ++turn) {
        // The next turn re-submits everything said so far: the previous
        // prompt plus the tokens the model generated in reply.
        fresh_ids(history, prev_gen);
        std::size_t user_tokens;
        std::size_t gen_tokens;
        if (agentic) {
          user_tokens = 32;  // tool result
          gen_tokens = std::clamp<std::size_t>(prev_gen, 1, 64);
        } else {
          const double up = std::exp(
              rng.normal(config.prompt_log_mean - 2.0, config.prompt_log_std));
          user_tokens = std::clamp<std::size_t>(
              static_cast<std::size_t>(up), 16, 256);
          const double ug =
              std::exp(rng.normal(config.gen_log_mean, config.gen_log_std));
          gen_tokens = std::clamp<std::size_t>(
              static_cast<std::size_t>(ug), 1, config.max_gen);
        }
        if (history.size() + user_tokens > config.max_prompt) break;
        fresh_ids(history, user_tokens);
        turn_t += config.session_gap_s > 0.0
                      ? config.session_gap_s * (0.5 + rng.uniform())
                      : 1.0;
        Request follow = r;  // inherits class and deadlines
        follow.id = id++;
        follow.arrival_s = turn_t;
        follow.prompt_ids = history;
        follow.prompt_tokens = history.size();
        follow.max_new_tokens = gen_tokens;
        trace.push_back(follow);
        prev_gen = gen_tokens;
      }
    }
  }
  if (sessions) {
    // Follow-up turns arrive between later sessions' first turns; the
    // engine consumes traces in arrival order.
    std::stable_sort(trace.begin(), trace.end(),
                     [](const Request& a, const Request& b) {
                       if (a.arrival_s != b.arrival_s) {
                         return a.arrival_s < b.arrival_s;
                       }
                       return a.id < b.id;
                     });
  }
  return trace;
}

}  // namespace turbo::serving
