#include "serving/trace.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace turbo::serving {

std::vector<Request> generate_trace(const TraceConfig& config) {
  TURBO_CHECK(config.arrival_rate > 0.0);
  TURBO_CHECK(config.duration_s > 0.0);
  Rng rng(config.seed);

  std::vector<Request> trace;
  double t = 0.0;
  std::uint64_t id = 0;
  while (true) {
    // Poisson process: exponential inter-arrival times.
    double u;
    do {
      u = rng.uniform();
    } while (u <= 0.0);
    t += -std::log(u) / config.arrival_rate;
    if (t > config.duration_s) break;

    Request r;
    r.id = id++;
    r.arrival_s = t;
    const double p =
        std::exp(rng.normal(config.prompt_log_mean, config.prompt_log_std));
    const double g =
        std::exp(rng.normal(config.gen_log_mean, config.gen_log_std));
    r.prompt_tokens = std::clamp<std::size_t>(
        static_cast<std::size_t>(p), 16, config.max_prompt);
    r.max_new_tokens = std::clamp<std::size_t>(
        static_cast<std::size_t>(g), 1, config.max_gen);
    trace.push_back(r);
  }
  return trace;
}

}  // namespace turbo::serving
