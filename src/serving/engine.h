// Discrete-event serving engine with continuous (iteration-level)
// batching — the vLLM/Orca-style scheduler the paper's throughput numbers
// implicitly assume, built on the analytical cost model.
//
// The simulation loop alternates:
//   1. Deadline enforcement: requests that can no longer meet their TTFT
//      or e2e deadline are timed out (pages freed) wherever they are —
//      waiting, paused or running.
//   2. Overload control: a pressure controller watches page-pool
//      occupancy over a sliding window and escalates a degradation
//      ladder — first *downshift* the KV precision of newly (re)admitted
//      requests (the paper's head-wise 4/2-bit mix as a capacity knob),
//      relying on preemption as the standing backstop, then *shed*
//      batch-class admissions outright — and de-escalates when pressure
//      clears.
//   3. Re-admission: preempted requests whose backoff has expired rejoin
//      the batch first (swap-in over the PCIe link, or recompute via a
//      fresh prefill), then waiting requests are admitted — FIFO under
//      SchedPolicy::kFifo, or class-by-class (interactive first) under
//      kClassAware with per-class guaranteed page shares that are
//      work-conserving (idle guarantees are borrowable, unmet guarantees
//      of classes with queued demand are not).
//   4. Chunked prefill (Sarathi-style): up to `prefill_chunk_tokens`
//      prompt tokens are processed per iteration, FIFO across requests
//      still mid-prefill. Each request carries a prefill cursor; KV pages
//      are allocated as the cursor advances (not up-front), and a chunk's
//      cost is attention over (cached + chunk) with GEMMs over the chunk
//      only. prefill_chunk_tokens == 0 restores monolithic prefill.
//   5. One decode iteration: every running request whose prompt is fully
//      prefilled emits one token; the step latency comes from the
//      per-method decode model at the current batch size and maximum
//      context. Decode TPOT is therefore bounded by one chunk, not one
//      prompt.
//
// KV memory is managed as fixed-size pages through a real PageAllocator,
// so exhaustion (and injected allocation faults) surface exactly where
// they would in a paged serving system. Admission is optimistic — a
// request needs only its prompt's pages to start — and decode-time growth
// that cannot be backed by a free page triggers *preemption*: the victim
// is the lowest class (batch before standard before interactive), then
// the lowest Request::priority, then the latest arrival; its KV is either
// dropped for later recomputation or swapped to a host store at PCIe cost
// (see serving/swap.h). Preempted requests re-enter under bounded
// exponential backoff with deterministic seeded jitter (so equal-backoff
// victims don't stampede one re-admission round) and are pinned (never
// victimized again) after a per-class budget of evictions, so no request
// is starved; only a request that could never fit even alone is rejected
// outright. A FaultPlan (common/fault.h) deterministically injects
// allocation failures, swap-stream corruption (detected by checksum,
// recovered by recompute) and swap latency spikes.
//
// Prefix sharing (kvcache/radix_index.h): requests carrying prompt token
// ids are matched against a radix index over resident pages at admission.
// Matched whole pages attach by refcount bump — charged to nobody, not
// prefilled — and only the novel suffix allocates pages and runs through
// chunked prefill. Finished prompts register their full pages in the
// index; pages whose refcount drops to zero park in a retained pool
// (reclaimed LRU under genuine exhaustion) so a follow-up turn can
// re-attach them. Victim selection deprioritizes shared-page holders
// (evicting them frees little), swap-out serializes only private pages,
// and class page-share accounting bills only privately-referenced pages.
// Requests without prompt ids schedule bit-identically to the
// pre-prefix-sharing engine.
//
// Methods differ in exactly two inputs — decode-step latency and KV
// bytes/token — which is what turns the paper's kernel-level wins into
// fleet-level throughput and tail-latency wins.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/fault.h"
#include "serving/request.h"
#include "serving/snapshot.h"
#include "serving/swap.h"
#include "sim/e2e_model.h"

namespace turbo::serving {

// What to do with a preemption victim's KV cache.
enum class PreemptMode {
  kRecompute,  // drop the pages; re-prefill on re-admission
  kSwap,       // serialize to the host store; swap back in on re-admission
};

// Admission / victim-selection policy.
enum class SchedPolicy {
  kFifo,        // single queue, arrival order, class-blind victims
  kClassAware,  // per-class queues, guaranteed shares, class-aware victims
};

// Role of this engine in a disaggregated fleet (src/fleet). A prefill-only
// engine runs chunked prefill to the first token, then lifts the finished
// request — KV stream included — into a handoff queue the fleet router
// drains toward a decode replica (take_prefilled()). Requests it *adopts*
// mid-decode still decode locally (prompt_left == 0 never re-enters the
// prefill path), which is the liveness fallback when no decode replica is
// healthy: a dead role costs latency, never a hung request.
enum class EngineRole {
  kFull,         // symmetric: prefill and decode on one engine (default)
  kPrefillOnly,  // disaggregated prefill worker: hand off after first token
};

// Per-service-class scheduling policy (indexed by ServiceClass).
struct ClassPolicy {
  // Guaranteed fraction of the KV page pool. Work-conserving: an idle
  // class's share is borrowable, but a class cannot borrow past the unmet
  // guarantees of classes with queued demand. Shares must sum to <= 1.
  double page_share = 0.0;
  // Per-class preemption budget: evictions before the request is pinned.
  // 0 = inherit EngineConfig::pin_after_preemptions.
  std::size_t pin_after_preemptions = 0;
};

// Tiered swap-store configuration (PreemptMode::kSwap only). The engine
// builds a TieredSwapStore (serving/swap.h) with tier 0 = host DRAM at
// the device's PCIe bandwidth and, when `tiers == 2`, tier 1 = local
// disk at the device's disk_bandwidth. Capacities of 0 are unbounded;
// with the defaults the hierarchy degenerates to the legacy single-tier
// host store (same costs, same fault-draw sequence).
struct TieredSwapConfig {
  std::size_t tiers = 2;                  // 1 = host only, 2 = host + disk
  std::size_t host_capacity_bytes = 0;    // 0 = unbounded
  std::size_t disk_capacity_bytes = 0;    // 0 = unbounded
  TierHealthPolicy health;                // retry / blacklist policy
};

// Graceful-degradation ladder (pressure controller) configuration.
struct DegradeConfig {
  bool enabled = false;
  // Degraded KV precision, expressed as the paper's head-wise mix: the
  // fraction of KV heads downshifted from 4-bit to 2-bit. 1.0 => 2.0
  // average bits (every head 2-bit); 0.5 => the 3.0-bit 2/4 mix. The
  // resulting kv_bits is clamped to never exceed the configured precision.
  double two_bit_head_fraction = 1.0;
  // Sliding-window occupancy thresholds: mean occupancy above `high`
  // escalates one level (normal -> downshift -> shed), below `low`
  // de-escalates. The controller waits `window_iters` iterations between
  // level changes so one burst cannot ride the ladder end to end.
  double high_watermark = 0.85;
  double low_watermark = 0.60;
  std::size_t window_iters = 8;
  // At the shed level, at most this many waiting batch/standard-class
  // requests are dropped per iteration (interactive is never shed).
  std::size_t max_shed_per_iter = 2;
};

struct EngineConfig {
  sim::DeviceSpec device;
  sim::ModelGeometry geometry;
  sim::AttnMethod method = sim::AttnMethod::kFlashFp16;
  sim::AttnCostConfig attention;     // kv_bits etc.
  std::size_t max_batch = 256;       // scheduler cap
  double memory_headroom = 0.9;      // usable fraction of HBM
  double max_sim_time_s = 36000.0;   // safety stop

  // Scheduler quantum for chunked prefill: at most this many prompt
  // tokens are prefilled per engine iteration, so long prompts cannot
  // head-of-line block decode steps. 0 disables chunking (each admitted
  // prompt runs as one monolithic prefill, the pre-chunking behavior).
  std::size_t prefill_chunk_tokens = 512;

  // --- SLO / overload-control policy --------------------------------------
  SchedPolicy policy = SchedPolicy::kClassAware;
  // Indexed by ServiceClass (interactive, standard, batch). Defaults give
  // every tier a guaranteed share and pin interactive victims soonest.
  std::array<ClassPolicy, kServiceClassCount> classes = {{
      {0.35, 2},   // interactive
      {0.45, 4},   // standard
      {0.20, 6},   // batch
  }};
  // Enforce Request deadlines (time out requests that missed them). Off,
  // deadlines are carried but ignored — useful for measuring raw tails.
  bool enforce_deadlines = true;
  DegradeConfig degrade;

  // --- Pressure / robustness policy ---------------------------------------
  PreemptMode preempt_mode = PreemptMode::kSwap;
  std::size_t page_tokens = 64;      // scheduler page granularity
  // Fraction of the page pool fresh admissions must leave free for decode
  // growth (re-admissions of preempted requests ignore it).
  double admit_reserve = 0.1;
  double backoff_base_s = 0.25;      // first re-admission delay
  double backoff_cap_s = 8.0;        // exponential backoff ceiling
  // Deterministic re-admission jitter: the computed backoff is stretched
  // by up to this fraction, keyed by (jitter_seed, request id, eviction
  // count), so victims evicted together spread over distinct re-admission
  // rounds instead of stampeding the allocator. 0 disables jitter.
  double backoff_jitter = 0.25;
  std::uint64_t jitter_seed = 0x51C0;
  // Fallback preemption budget for classes whose ClassPolicy leaves
  // pin_after_preemptions at 0: after this many preemptions a request is
  // pinned — only ever victimized again if every running request is
  // pinned (forward-progress fallback), which bounds eviction churn.
  std::size_t pin_after_preemptions = 4;
  TieredSwapConfig swap;             // tier layout for PreemptMode::kSwap
  FaultPlan faults;                  // all-zero probabilities = no injection

  // Identity of this engine within a fleet (src/fleet). Swap-store stream
  // keys are namespaced by it (swap_stream_key), so two replicas parking
  // the same request-local id never alias. The default 0 is the identity
  // mapping: single-engine runs are bit-identical to the pre-fleet tree.
  std::size_t replica_id = 0;

  // Disaggregation role (src/fleet --disagg). kFull keeps the symmetric
  // behavior bit-identical to the pre-disaggregation engine.
  EngineRole role = EngineRole::kFull;
};

struct EngineResult {
  std::vector<Request> requests;  // with timestamps + outcomes filled in
  double makespan_s = 0.0;        // time the last request finished
  double busy_s = 0.0;            // time spent in prefill+decode steps
  std::size_t peak_batch = 0;
  double peak_kv_bytes = 0.0;
  std::size_t rejected = 0;       // requests that can never fit

  // --- SLO / overload counters --------------------------------------------
  std::size_t timed_out = 0;             // missed-deadline terminations
  std::size_t shed = 0;                  // dropped by overload control
  std::size_t ladder_escalations = 0;    // pressure-level increases
  std::size_t ladder_deescalations = 0;  // pressure-level decreases
  std::size_t degraded_iterations = 0;   // iterations at reduced precision
  std::size_t degraded_admissions = 0;   // (re)admissions written degraded
  double min_kv_bits = 0.0;              // lowest KV precision used
  double degrade_rmse_proxy = 0.0;       // quant-error proxy at that level

  // --- Robustness counters ------------------------------------------------
  std::size_t preemptions = 0;           // total eviction events
  std::size_t preempted_recompute = 0;   // victims that dropped their KV
  std::size_t preempted_swap = 0;        // victims swapped to host
  std::size_t swap_ins = 0;              // successful swap-backs
  double swap_out_bytes = 0.0;
  double swap_in_bytes = 0.0;
  double swap_stall_s = 0.0;             // wall-clock spent on PCIe transfers
  std::size_t checksum_failures = 0;     // corrupt swap-ins detected by CRC
  std::size_t recoveries = 0;            // checksum failures recovered
  std::size_t degraded_steps = 0;        // steps that lost >=1 request to an
                                         // injected allocation failure
  std::size_t injected_alloc_failures = 0;
  std::size_t max_preemptions_single_request = 0;
  // Total KV tokens re-derived by recompute (recompute-mode re-admissions
  // plus corrupt-swap recoveries); the sum of Request::recomputed_tokens.
  std::size_t recomputed_tokens = 0;
  bool hit_time_limit = false;           // max_sim_time_s safety stop fired

  // --- Prefix-sharing counters (kvcache/radix_index.h) --------------------
  // Prompt tokens served from resident shared-prefix pages at fresh
  // admission (sum of Request::prefix_hit_tokens)...
  std::size_t prefix_hit_tokens = 0;
  // ...across this many cache-hit requests.
  std::size_t prefix_hit_requests = 0;
  // Pages attached by refcount bump instead of allocation (fresh
  // admissions and re-admissions of preempted prefix holders).
  std::size_t prefix_pages_attached = 0;
  // Refcount-zero registered pages reclaimed from the retained pool
  // (LRU, under genuine page exhaustion or at drain).
  std::size_t retained_pages_reclaimed = 0;
  // Prompt tokens actually chunk-prefilled — with prefix hits this drops
  // below the sum of prompt lengths; the bench's headline reduction.
  std::size_t prefilled_tokens = 0;
  // Peak pages referenced by live sequences (used pages minus the
  // reclaimable retained pool) — occupancy that eviction cannot lower.
  std::size_t peak_referenced_pages = 0;

  // --- Disaggregation counters (src/fleet) --------------------------------
  // Requests this prefill-only engine finished prefilling and lifted into
  // the handoff queue (always 0 for EngineRole::kFull).
  std::size_t prefill_handoffs = 0;

  // --- Crash-recovery counters (src/serving/snapshot.h, src/fleet) -------
  // Crash-consistent snapshots this replica serialized into the
  // SnapshotStore, and their total serialized size.
  std::size_t snapshots_written = 0;
  std::size_t snapshot_bytes = 0;
  // Restarts that rehydrated from a CRC-valid snapshot...
  std::size_t snapshot_restores = 0;
  // ...and restore attempts whose blob failed its CRC (every entry then
  // recomputes from the prompt).
  std::size_t snapshot_corruptions = 0;
  // Requests re-admitted from a snapshot entry after a crash.
  std::size_t restored_requests = 0;
  // Tokens of post-snapshot progress lost to a crash and replayed (the
  // delta between crash-time and snapshot-time context; the full
  // crash-time context for requests the snapshot missed).
  std::size_t replayed_tokens = 0;
  // Crashed requests with no usable snapshot entry, recomputed from the
  // prompt.
  std::size_t crash_recomputes = 0;
  // Abrupt crashes this engine incarnation recovered from (1 on the
  // post-restart incarnation, 0 elsewhere).
  std::size_t replica_crashes = 0;
  // Snapshot entries dropped at restore because the request was already
  // terminal (or migrated away) before the crash — the dedupe that keeps
  // exactly-one-terminal-state through a restart.
  std::size_t dedupe_drops = 0;

  // --- Tiered-swap counters -----------------------------------------------
  std::size_t tier_demotions = 0;        // LRU demotions host -> disk
  std::size_t tier_promotions = 0;       // promote-on-blocked-readmission
  std::size_t tier_failovers = 0;        // tiers skipped during fetches
  std::size_t tier_blacklists = 0;       // tier blacklist events
  std::size_t tier_fetch_retries = 0;    // failed per-tier fetch attempts
  // Swapped victims that degraded to recompute because every tier holding
  // the stream was unreachable (failover exhausted)...
  std::size_t swap_unavailable_recomputes = 0;
  // ...or because no tier had room / was reachable at swap-out time.
  std::size_t swap_overflow_recomputes = 0;
  std::size_t swap_tiers_used = 0;       // tiers that held >= 1 stream
  double tier_retry_stall_s = 0.0;       // retry-backoff wall-clock
  // Per-tier store counters (stores/hits/demotions/failures/...), indexed
  // by tier position; tiers beyond swap.tiers stay zero.
  std::array<TieredSwapStore::TierCounters, kMaxSwapTiers> tier_stats = {};
};

// A request lifted out of a draining engine with enough scheduler state
// to resume on another replica: the prefill cursor, generation progress
// and — when the KV was parked in the swap store — the stream's byte
// count, which the fleet router (src/fleet) moves over the interconnect
// as the migration payload. A request with has_stream == false (or whose
// migration failed its CRC) is re-admitted through the recompute path:
// the destination re-prefills `context` tokens, so a dead replica costs
// latency, never liveness.
struct MigratableRequest {
  Request request;
  std::size_t context = 0;      // tokens whose KV existed at drain
  std::size_t remaining = 0;    // tokens still to generate
  std::size_t prompt_left = 0;  // prefill cursor (prompt tokens left)
  double kv_bits = 0.0;         // precision the KV was stored at
  bool has_stream = false;      // serialized KV bytes existed at drain
  double bytes = 0.0;           // stream size (0 when !has_stream)
  // Engine-local clock when the request left its source (drain instant,
  // or prefill completion for a handoff): the earliest time the transfer
  // can depart.
  double ready_s = 0.0;
};

class EngineImpl;

// The scheduler behind run_engine(), exposed as a steppable object so
// the fleet router (src/fleet) can interleave N replicas on one clock.
// run_engine() is exactly submit-everything + step-to-completion: a
// single-replica fleet is bit-identical to the standalone engine.
class Engine {
 public:
  explicit Engine(const EngineConfig& config);
  ~Engine();
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Hand the engine a request. Must be called in non-decreasing
  // arrival_s order; an arrival in the future sits in the pending queue
  // until the engine's clock reaches it. Requests that could never fit
  // are rejected immediately (terminal, never scheduled).
  void submit(const Request& r);

  // Adopt a request drained off another replica. `eligible_s` is the
  // earliest re-admission time (drain time + migration transfer);
  // `with_stream` parks the migrated KV bytes in this engine's swap
  // store so the normal class-aware re-admission/swap-in machinery
  // restores it. Without a stream (or when no tier has room) the request
  // re-enters through the recompute path.
  void adopt(const MigratableRequest& m, double eligible_s,
             bool with_stream);

  // Run one scheduler iteration. `horizon_s` bounds idle time-jumps: an
  // idle engine never advances its clock past the horizon (so the router
  // can inject an arrival or an outage there first). Pass +infinity for
  // standalone operation. Returns false when there is nothing running,
  // waiting, paused or pending — i.e. the engine is fully drained.
  bool step(double horizon_s);

  // Lift every non-terminal request out of the engine: running requests
  // release their pages, parked swap streams are erased, queues emptied
  // (the not-yet-collected handoff queue included). Asserts the replica
  // leaks nothing: zero used pages and zero parked streams afterwards.
  // Drained requests are excluded from this engine's finish() result —
  // exactly-one-terminal-state moves with them.
  std::vector<MigratableRequest> drain();

  // Serialize a crash-consistent snapshot of every non-terminal request
  // (running, paused, waiting, pending, queued handoffs) into `store`
  // under this engine's replica id, replacing the previous snapshot. One
  // snapshot-unavailability draw per attempt; a failed save leaves the
  // previous blob valid. Pure observation otherwise — scheduler state,
  // pages and the clock are untouched.
  void snapshot_to(SnapshotStore& store, FaultInjector* fault);

  // Warm-restart recovery after a crash, on a freshly constructed engine.
  // `lost` is what the crashed incarnation held in flight (its state died
  // with the process — the list is identity + replay accounting only);
  // `restart_s` is when this incarnation boots. The recovery ladder:
  // restore each lost request from the snapshot entry (KV stream and all)
  // when one exists, recompute from the prompt when the snapshot predates
  // it or the blob failed its CRC, and drop snapshot entries whose
  // request is not in `lost` (terminal or migrated away pre-crash) so no
  // request can reach two terminal states.
  void restore_from(SnapshotStore& store,
                    const std::vector<MigratableRequest>& lost,
                    double restart_s, FaultInjector* fault);

  // Collect requests a prefill-only engine finished prefilling since the
  // last call (EngineRole::kPrefillOnly). Each carries its KV stream and
  // ready_s; the fleet router hands them to a decode replica. Their pages
  // are already released here — accounting moved with them, exactly like
  // drain(). Always empty for EngineRole::kFull.
  std::vector<MigratableRequest> take_prefilled();

  // Finalize and return the result (makespan, counters, per-request
  // outcomes). Call once, after the last step()/drain().
  EngineResult finish();

  double now() const;
  bool done() const;                // every live request reached terminal
  bool has_work() const;            // !done(): something left to schedule
  std::size_t used_pages() const;   // routing signal (least-outstanding)
  std::size_t live() const;         // non-terminal requests on this engine
  std::size_t total_pages() const;  // KV page-pool capacity
  // Pages live sequences reference (used minus the reclaimable retained
  // pool): the occupancy signal behind the fleet's decode watermark —
  // retained prefix cache is reclaimable and must not exert backpressure.
  std::size_t referenced_pages() const;
  // Tokens of `r`'s prompt resident in this engine's radix prefix index
  // (whole pages only, capped below the full prompt). Pure lookup — no
  // RNG, no mutation — so affinity routing (src/fleet) can score every
  // replica without perturbing determinism.
  std::size_t prefix_match_tokens(const Request& r) const;
  // Move the idle clock forward (revival after an outage window). The
  // engine must hold no running work.
  void advance_to(double t);

 private:
  std::unique_ptr<EngineImpl> impl_;
};

// Run the trace until every request has reached a terminal state —
// completed, rejected, timed-out or shed (the max_sim_time_s safety stop
// is the only other exit, reported via hit_time_limit; requests it
// strands stay Outcome::kPending). Deterministic: identical config +
// trace (including the fault and jitter seeds) give identical results.
EngineResult run_engine(const EngineConfig& config,
                        std::vector<Request> trace);

}  // namespace turbo::serving
