// Discrete-event serving engine with continuous (iteration-level)
// batching — the vLLM/Orca-style scheduler the paper's throughput numbers
// implicitly assume, built on the analytical cost model.
//
// The simulation loop alternates:
//   1. Admission: waiting requests join the running batch whenever their
//      *worst-case* KV footprint (prompt + max_new tokens at the method's
//      bytes/token) fits in the KV budget and the batch is below the cap.
//      Admission triggers a prefill pass whose latency all running
//      requests wait out (no chunked prefill).
//   2. One decode iteration: every running request emits one token; the
//      step latency comes from the per-method decode model at the current
//      batch size and maximum context. Finished requests release memory.
//
// Methods differ in exactly two inputs — decode-step latency and KV
// bytes/token — which is what turns the paper's kernel-level wins into
// fleet-level throughput and tail-latency wins.
#pragma once

#include <cstddef>
#include <vector>

#include "serving/request.h"
#include "sim/e2e_model.h"

namespace turbo::serving {

struct EngineConfig {
  sim::DeviceSpec device;
  sim::ModelGeometry geometry;
  sim::AttnMethod method = sim::AttnMethod::kFlashFp16;
  sim::AttnCostConfig attention;     // kv_bits etc.
  std::size_t max_batch = 256;       // scheduler cap
  double memory_headroom = 0.9;      // usable fraction of HBM
  double max_sim_time_s = 36000.0;   // safety stop
};

struct EngineResult {
  std::vector<Request> requests;  // with timestamps filled in
  double makespan_s = 0.0;        // time the last request finished
  double busy_s = 0.0;            // time spent in prefill+decode steps
  std::size_t peak_batch = 0;
  double peak_kv_bytes = 0.0;
  std::size_t rejected = 0;       // requests that can never fit
};

// Run the trace to completion (every admissible request finishes).
EngineResult run_engine(const EngineConfig& config,
                        std::vector<Request> trace);

}  // namespace turbo::serving
