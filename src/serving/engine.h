// Discrete-event serving engine with continuous (iteration-level)
// batching — the vLLM/Orca-style scheduler the paper's throughput numbers
// implicitly assume, built on the analytical cost model.
//
// The simulation loop alternates:
//   1. Re-admission: preempted requests whose backoff has expired rejoin
//      the batch first (swap-in over the PCIe link, or recompute via a
//      fresh prefill), then waiting requests are admitted FIFO while KV
//      pages and the batch cap allow.
//   2. Chunked prefill (Sarathi-style): up to `prefill_chunk_tokens`
//      prompt tokens are processed per iteration, FIFO across requests
//      still mid-prefill. Each request carries a prefill cursor; KV pages
//      are allocated as the cursor advances (not up-front), and a chunk's
//      cost is attention over (cached + chunk) with GEMMs over the chunk
//      only. prefill_chunk_tokens == 0 restores monolithic prefill.
//   3. One decode iteration: every running request whose prompt is fully
//      prefilled emits one token; the step latency comes from the
//      per-method decode model at the current batch size and maximum
//      context. Decode TPOT is therefore bounded by one chunk, not one
//      prompt.
//
// KV memory is managed as fixed-size pages through a real PageAllocator,
// so exhaustion (and injected allocation faults) surface exactly where
// they would in a paged serving system. Admission is optimistic — a
// request needs only its prompt's pages to start — and decode-time growth
// that cannot be backed by a free page triggers *preemption*: the
// lowest-priority running request is evicted, either dropping its KV for
// later recomputation or swapping its pages to a host store at PCIe cost
// (see serving/swap.h). Preempted requests re-enter under bounded
// exponential backoff and are pinned (never victimized again) after
// repeated evictions, so no request is starved; only a request that could
// never fit even alone is rejected outright. A FaultPlan (common/fault.h)
// deterministically injects allocation failures, swap-stream corruption
// (detected by checksum, recovered by recompute) and swap latency spikes.
//
// Methods differ in exactly two inputs — decode-step latency and KV
// bytes/token — which is what turns the paper's kernel-level wins into
// fleet-level throughput and tail-latency wins.
#pragma once

#include <cstddef>
#include <vector>

#include "common/fault.h"
#include "serving/request.h"
#include "sim/e2e_model.h"

namespace turbo::serving {

// What to do with a preemption victim's KV cache.
enum class PreemptMode {
  kRecompute,  // drop the pages; re-prefill on re-admission
  kSwap,       // serialize to the host store; swap back in on re-admission
};

struct EngineConfig {
  sim::DeviceSpec device;
  sim::ModelGeometry geometry;
  sim::AttnMethod method = sim::AttnMethod::kFlashFp16;
  sim::AttnCostConfig attention;     // kv_bits etc.
  std::size_t max_batch = 256;       // scheduler cap
  double memory_headroom = 0.9;      // usable fraction of HBM
  double max_sim_time_s = 36000.0;   // safety stop

  // Scheduler quantum for chunked prefill: at most this many prompt
  // tokens are prefilled per engine iteration, so long prompts cannot
  // head-of-line block decode steps. 0 disables chunking (each admitted
  // prompt runs as one monolithic prefill, the pre-chunking behavior).
  std::size_t prefill_chunk_tokens = 512;

  // --- Pressure / robustness policy ---------------------------------------
  PreemptMode preempt_mode = PreemptMode::kSwap;
  std::size_t page_tokens = 64;      // scheduler page granularity
  // Fraction of the page pool fresh admissions must leave free for decode
  // growth (re-admissions of preempted requests ignore it).
  double admit_reserve = 0.1;
  double backoff_base_s = 0.25;      // first re-admission delay
  double backoff_cap_s = 8.0;        // exponential backoff ceiling
  // After this many preemptions a request is pinned: it is only ever
  // victimized again if every running request is pinned (forward-progress
  // fallback), which bounds per-request eviction churn.
  std::size_t pin_after_preemptions = 4;
  FaultPlan faults;                  // all-zero probabilities = no injection
};

struct EngineResult {
  std::vector<Request> requests;  // with timestamps filled in
  double makespan_s = 0.0;        // time the last request finished
  double busy_s = 0.0;            // time spent in prefill+decode steps
  std::size_t peak_batch = 0;
  double peak_kv_bytes = 0.0;
  std::size_t rejected = 0;       // requests that can never fit

  // --- Robustness counters ------------------------------------------------
  std::size_t preemptions = 0;           // total eviction events
  std::size_t preempted_recompute = 0;   // victims that dropped their KV
  std::size_t preempted_swap = 0;        // victims swapped to host
  std::size_t swap_ins = 0;              // successful swap-backs
  double swap_out_bytes = 0.0;
  double swap_in_bytes = 0.0;
  double swap_stall_s = 0.0;             // wall-clock spent on PCIe transfers
  std::size_t checksum_failures = 0;     // corrupt swap-ins detected by CRC
  std::size_t recoveries = 0;            // checksum failures recovered
  std::size_t degraded_steps = 0;        // steps that lost >=1 request to an
                                         // injected allocation failure
  std::size_t injected_alloc_failures = 0;
  std::size_t max_preemptions_single_request = 0;
  // Total KV tokens re-derived by recompute (recompute-mode re-admissions
  // plus corrupt-swap recoveries); the sum of Request::recomputed_tokens.
  std::size_t recomputed_tokens = 0;
  bool hit_time_limit = false;           // max_sim_time_s safety stop fired
};

// Run the trace until every request has completed or been rejected (the
// max_sim_time_s safety stop is the only other exit, reported via
// hit_time_limit). Deterministic: identical config + trace (including the
// fault seed) give identical results.
EngineResult run_engine(const EngineConfig& config,
                        std::vector<Request> trace);

}  // namespace turbo::serving
