#include "serving/snapshot.h"

#include <bit>

#include "common/check.h"
#include "common/crc32.h"
#include "kvcache/serialization.h"

namespace turbo::serving {

namespace {

// 'TSNP' + format version. Version 2 matches the stream-format-v2
// integrity contract: a trailing CRC-32 over the whole preceding stream,
// checked before any payload is adopted.
constexpr std::uint32_t kSnapshotMagic = 0x504e5354u;
constexpr std::uint32_t kSnapshotVersion = 2;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    // Little-endian byte extraction: the truncation is the point.
    out.push_back(
        static_cast<std::uint8_t>(v >> (8 * i)));  // turbo-lint: allow-narrowing
  }
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(
        static_cast<std::uint8_t>(v >> (8 * i)));  // turbo-lint: allow-narrowing
  }
}
void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  std::uint32_t u32() {
    TURBO_CHECK_MSG(pos + 4 <= bytes.size(), "truncated snapshot stream");
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[pos + i]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    TURBO_CHECK_MSG(pos + 8 <= bytes.size(), "truncated snapshot stream");
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes[pos + i]) << (8 * i);
    }
    pos += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
};

void put_request(std::vector<std::uint8_t>& out, const Request& r) {
  put_u64(out, r.id);
  put_f64(out, r.arrival_s);
  put_u64(out, r.prompt_tokens);
  put_u64(out, r.max_new_tokens);
  put_u64(out, r.prompt_ids.size());
  for (const std::int32_t t : r.prompt_ids) {
    put_u32(out, static_cast<std::uint32_t>(t));
  }
  put_i64(out, r.priority);
  put_u32(out, static_cast<std::uint32_t>(r.service_class));
  put_f64(out, r.ttft_deadline_s);
  put_f64(out, r.e2e_deadline_s);
  put_f64(out, r.prefill_start_s);
  put_f64(out, r.first_token_s);
  put_f64(out, r.finish_s);
  put_u64(out, r.generated);
  put_u64(out, r.prefix_hit_tokens);
  put_u64(out, r.preemptions);
  put_u64(out, r.recomputed_tokens);
  put_u64(out, r.tier_failovers);
  put_u64(out, r.replica_failovers);
  put_u32(out, static_cast<std::uint32_t>(r.outcome));
  put_f64(out, r.kv_bits_used);
}

Request read_request(Reader& in) {
  Request r;
  r.id = in.u64();
  r.arrival_s = in.f64();
  r.prompt_tokens = in.u64();
  r.max_new_tokens = in.u64();
  const std::uint64_t n_ids = in.u64();
  TURBO_CHECK_MSG(n_ids <= in.bytes.size(),
                  "snapshot prompt_ids length exceeds stream");
  r.prompt_ids.resize(n_ids);
  for (std::uint64_t i = 0; i < n_ids; ++i) {
    r.prompt_ids[i] = static_cast<std::int32_t>(in.u32());
  }
  r.priority = static_cast<int>(in.i64());
  r.service_class = static_cast<ServiceClass>(in.u32());
  r.ttft_deadline_s = in.f64();
  r.e2e_deadline_s = in.f64();
  r.prefill_start_s = in.f64();
  r.first_token_s = in.f64();
  r.finish_s = in.f64();
  r.generated = in.u64();
  r.prefix_hit_tokens = in.u64();
  r.preemptions = in.u64();
  r.recomputed_tokens = in.u64();
  r.tier_failovers = in.u64();
  r.replica_failovers = in.u64();
  r.outcome = static_cast<Outcome>(in.u32());
  r.kv_bits_used = in.f64();
  return r;
}

}  // namespace

std::vector<std::uint8_t> serialize_snapshot(const ReplicaSnapshot& snap) {
  std::vector<std::uint8_t> out;
  put_u32(out, kSnapshotMagic);
  put_u32(out, kSnapshotVersion);
  put_u64(out, snap.replica);
  put_f64(out, snap.taken_at_s);
  put_u64(out, snap.entries.size());
  for (const SnapshotEntry& e : snap.entries) {
    put_request(out, e.request);
    put_u64(out, e.context);
    put_u64(out, e.remaining);
    put_u64(out, e.prompt_left);
    put_f64(out, e.kv_bits);
    put_f64(out, e.bytes);
  }
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>(out.data(), out.size()));
  put_u32(out, crc);
  return out;
}

ReplicaSnapshot deserialize_snapshot(std::span<const std::uint8_t> bytes) {
  TURBO_CHECK_MSG(bytes.size() >= 4, "truncated snapshot stream");
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(bytes[bytes.size() - 4]) |
      static_cast<std::uint32_t>(bytes[bytes.size() - 3]) << 8 |
      static_cast<std::uint32_t>(bytes[bytes.size() - 2]) << 16 |
      static_cast<std::uint32_t>(bytes[bytes.size() - 1]) << 24;
  const std::uint32_t actual_crc =
      crc32(bytes.first(bytes.size() - 4));
  if (actual_crc != stored_crc) {
    throw IntegrityError("snapshot CRC-32 mismatch");
  }
  Reader in{bytes.first(bytes.size() - 4)};
  TURBO_CHECK_MSG(in.u32() == kSnapshotMagic, "bad snapshot magic");
  TURBO_CHECK_MSG(in.u32() == kSnapshotVersion,
                  "unsupported snapshot version");
  ReplicaSnapshot snap;
  snap.replica = in.u64();
  snap.taken_at_s = in.f64();
  const std::uint64_t n = in.u64();
  snap.entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    SnapshotEntry e;
    e.request = read_request(in);
    e.context = in.u64();
    e.remaining = in.u64();
    e.prompt_left = in.u64();
    e.kv_bits = in.f64();
    e.bytes = in.f64();
    snap.entries.push_back(std::move(e));
  }
  TURBO_CHECK_MSG(in.pos == in.bytes.size(),
                  "trailing bytes in snapshot stream");
  return snap;
}

SnapshotStore::SaveOutcome SnapshotStore::save(std::size_t replica,
                                               const ReplicaSnapshot& snap,
                                               FaultInjector* fault) {
  if (fault != nullptr && fault->snapshot_unavailable()) {
    return {};  // store unreachable; the previous blob stays valid
  }
  std::vector<std::uint8_t> blob = serialize_snapshot(snap);
  SaveOutcome out;
  out.stored = true;
  out.bytes = blob.size();
  blobs_[replica] = std::move(blob);
  return out;
}

SnapshotStore::RestoreOutcome SnapshotStore::restore(std::size_t replica,
                                                     FaultInjector* fault) {
  RestoreOutcome out;
  const auto it = blobs_.find(replica);
  if (it == blobs_.end()) return out;
  std::vector<std::uint8_t> blob = std::move(it->second);
  blobs_.erase(it);  // consumed: a restart never replays a stale snapshot
  if (fault != nullptr && fault->corrupt_snapshot() && !blob.empty()) {
    blob[fault->corruption_offset(blob.size())] ^= 0x01;
  }
  try {
    out.snapshot = deserialize_snapshot(
        std::span<const std::uint8_t>(blob.data(), blob.size()));
    out.status = RestoreStatus::kHit;
  } catch (const IntegrityError&) {
    out.status = RestoreStatus::kCorrupt;
  }
  return out;
}

}  // namespace turbo::serving
