// Host-memory swap store for preempted KV sequences.
//
// When the scheduler preempts a running request it can either drop its KV
// pages and re-prefill later (recompute) or move them to host memory and
// bring them back over the PCIe link (swap) — the vLLM preemption pair.
// This file provides both halves of the swap path:
//
//  - HostSwapStore: the simulated host-side store. It holds serialized
//    sequence streams (kvcache/serialization.h) keyed by request id, so a
//    swapped sequence really does round-trip through the checksummed
//    format rather than being parked as live pages.
//  - swap_out / swap_in: serialize-and-release / fetch-and-adopt with an
//    explicit status, including checksum-mismatch detection so callers
//    can fall back to recompute.
//  - swap_transfer_seconds: the PCIe-bandwidth cost model the serving
//    engine charges per transfer.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/fault.h"
#include "kvcache/paged_cache.h"
#include "sim/device.h"

namespace turbo::serving {

class HostSwapStore {
 public:
  // Store a serialized stream under `key` (overwrites any previous one).
  void store(std::uint64_t key, std::vector<std::uint8_t> stream);

  // Remove and return the stream stored under `key`; nullopt if absent.
  std::optional<std::vector<std::uint8_t>> fetch(std::uint64_t key);

  bool contains(std::uint64_t key) const {
    return streams_.count(key) > 0;
  }
  std::size_t count() const { return streams_.size(); }
  std::size_t stored_bytes() const { return bytes_; }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> streams_;
  std::size_t bytes_ = 0;
};

// Serialize `seq`, park the stream in the store under `key`, and release
// the sequence's pages. Returns the stream size in bytes (what the
// transfer cost model should charge).
std::size_t swap_out(PagedKvCache& cache, PagedKvCache::SeqId seq,
                     std::uint64_t key, HostSwapStore& store);

enum class SwapInStatus {
  kOk,                // sequence restored; `seq` is valid
  kChecksumMismatch,  // corruption detected; stream dropped — recompute
  kOutOfPages,        // cache cannot back the pages; stream kept in store
  kMissing,           // no stream under this key
};

struct SwapInResult {
  SwapInStatus status = SwapInStatus::kMissing;
  PagedKvCache::SeqId seq = 0;
};

// Fetch `key` from the store and adopt it into `cache`. A corrupt stream
// (CRC mismatch, or any structural damage) is consumed and reported as
// kChecksumMismatch; on kOutOfPages the stream is put back so the caller
// can retry after freeing pages. `fault` optionally injects corruption
// into the fetched stream (common/fault.h).
SwapInResult swap_in(PagedKvCache& cache, std::uint64_t key,
                     HostSwapStore& store, FaultInjector* fault = nullptr);

// Seconds to move `bytes` across the host link of `dev`, scaled by a
// spike multiplier (>= 1.0) from the fault injector.
double swap_transfer_seconds(double bytes, const sim::DeviceSpec& dev,
                             double spike_multiplier = 1.0);

}  // namespace turbo::serving
