// Swap stores for preempted KV sequences: single-tier host memory and a
// fault-tolerant multi-tier hierarchy.
//
// When the scheduler preempts a running request it can either drop its KV
// pages and re-prefill later (recompute) or move them off-device and
// bring them back later (swap) — the vLLM preemption pair. The paper's
// progressive KV compression is what makes the swapped streams small
// enough that a hierarchy deeper than host DRAM is plausible, so this
// file provides both:
//
//  - HostSwapStore: the original single-tier host store. Holds serialized
//    sequence streams (kvcache/serialization.h) keyed by request id, so a
//    swapped sequence really round-trips through the checksummed format.
//  - TieredSwapStore: an ordered list of tiers (host DRAM -> disk by
//    default), each with its own capacity, bandwidth and per-tier fault
//    profile (common/fault.h TierFaultPlan). Swap-out lands in the
//    fastest tier with room and demotes cold streams (LRU by last-touch
//    iteration) under pressure; swap-in probes tiers fastest-first with a
//    bounded retry/backoff budget, fails over on unavailability, and
//    reports kUnavailable when every tier holding the stream is dead so
//    the engine can degrade to recompute. Consecutive-failure
//    blacklisting with cooloff keeps a flapping tier from stalling the
//    admission loop; a blacklisted tier is skipped without stall until
//    its cooloff expires, then probed again (one failure re-blacklists).
//  - swap_out / swap_in overloads for both stores: serialize-and-release
//    / fetch-and-adopt with explicit status, including checksum-mismatch
//    detection so callers can fall back to recompute. The tiered fetch is
//    non-consuming: the parked stream is only erased once adoption
//    succeeds (or the stream is proven corrupt), so an out-of-pages retry
//    always sees pristine bytes.
//  - swap_transfer_seconds: the legacy single-link PCIe cost model.
//
// Every function here that stores or fetches a stream takes a
// FaultInjector* (turbo_lint rule `unfaultable-swap-io` enforces this),
// so no unfaultable I/O path can be added later. A null injector means
// "no faults" and draws nothing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fault.h"
#include "kvcache/paged_cache.h"
#include "sim/device.h"

namespace turbo::serving {

// Swap-store keys are engine-local request ids, which collide the moment
// two fleet replicas (src/fleet) park the same request-local id — e.g. a
// request migrated to a new replica while its stale stream is still being
// torn down on the old one. The fleet path therefore namespaces every key
// by replica id in the top byte. Replica 0 maps to the identity key, so
// single-engine runs (and the store's LRU victim ordering, which
// tie-breaks on key) stay bit-identical to the pre-fleet behavior.
inline std::uint64_t swap_stream_key(std::size_t replica, std::uint64_t id) {
  TURBO_CHECK_MSG(replica < kMaxReplicas,
                  "replica id out of swap-key namespace range");
  TURBO_CHECK_MSG(id < (std::uint64_t{1} << 56),
                  "request id overflows the replica-namespaced swap key");
  return (static_cast<std::uint64_t>(replica) << 56) | id;
}

class HostSwapStore {
 public:
  // Store a serialized stream under `key` (overwrites any previous one).
  // The injector parameter is part of the faultable-I/O contract; the
  // single-tier store itself never fails or draws.
  void store(std::uint64_t key, std::vector<std::uint8_t> stream,
             FaultInjector* fault = nullptr);

  // Remove and return the stream stored under `key`; nullopt if absent.
  std::optional<std::vector<std::uint8_t>> fetch(
      std::uint64_t key, FaultInjector* fault = nullptr);

  bool contains(std::uint64_t key) const {
    return streams_.count(key) > 0;
  }
  std::size_t count() const { return streams_.size(); }
  std::size_t stored_bytes() const { return bytes_; }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> streams_;
  std::size_t bytes_ = 0;
};

// One level of the swap hierarchy, fastest first.
struct SwapTier {
  std::string name;                // "host", "disk", ...
  std::size_t capacity_bytes = 0;  // 0 = unbounded
  double bandwidth = 0.0;          // bytes / second, must be > 0
};

// Retry / blacklist policy shared by every tier.
struct TierHealthPolicy {
  // Attempts per tier per fetch before failing over to the next tier.
  std::size_t retry_budget = 2;
  // Stall charged per failed attempt (the backoff between retries).
  double retry_backoff_s = 0.02;
  // Consecutive failed probes before the tier is blacklisted.
  std::size_t blacklist_after = 3;
  // Blacklist duration. After it expires the tier is probed again; a
  // single failed probe re-blacklists (probing re-admission), a single
  // success clears the failure streak.
  double cooloff_s = 5.0;

  void validate() const {
    TURBO_CHECK_MSG(retry_budget >= 1, "retry_budget must be >= 1");
    TURBO_CHECK_MSG(retry_backoff_s >= 0.0, "retry_backoff_s must be >= 0");
    TURBO_CHECK_MSG(blacklist_after >= 1, "blacklist_after must be >= 1");
    TURBO_CHECK_MSG(cooloff_s >= 0.0, "cooloff_s must be >= 0");
  }
};

// Ordered multi-tier store. Entries are either *real* (they carry the
// serialized stream, used by the byte-level swap path and its tests) or
// *phantom* (byte counts only, used by the serving engine's cost model);
// the placement, demotion, failover and health machinery is identical,
// so what the engine simulates is exactly what the byte path exercises.
class TieredSwapStore {
 public:
  struct TierCounters {
    std::size_t stores = 0;         // entries placed here by store()
    std::size_t hits = 0;           // fetches served from this tier
    std::size_t demotions_in = 0;   // entries demoted down into this tier
    std::size_t promotions_out = 0; // entries promoted up out of this tier
    std::size_t failures = 0;       // unavailable probes observed
    std::size_t blacklists = 0;     // times this tier was blacklisted
  };

  struct StoreOutcome {
    bool stored = false;     // false: every tier full or unavailable
    std::size_t tier = 0;    // tier the stream landed in
    std::size_t demotions = 0;  // LRU demotions performed to make room
    double transfer_s = 0.0;    // store + demotion transfer time
  };

  enum class FetchStatus {
    kHit,          // stream found and read; entry retained (erase() it)
    kMissing,      // no entry under this key anywhere
    kUnavailable,  // entry exists but its tier could not be reached
  };

  struct FetchOutcome {
    FetchStatus status = FetchStatus::kMissing;
    std::size_t tier = 0;       // tier that served the hit
    std::size_t bytes = 0;      // entry size (valid on kHit)
    bool corrupted = false;     // per-tier corruption fault fired
    std::size_t failovers = 0;  // tiers skipped (unavailable/blacklisted)
    std::size_t retries = 0;    // failed attempts across all tiers
    double transfer_s = 0.0;    // read transfer time (kHit only)
    double stall_s = 0.0;       // retry-backoff stall
  };

  explicit TieredSwapStore(std::vector<SwapTier> tiers,
                           TierHealthPolicy health = {});

  // Park a serialized stream / a phantom byte count under `key`
  // (overwriting any previous entry): fastest available tier with room
  // wins, demoting least-recently-touched entries one tier down when the
  // target is full. Returns stored == false when no tier can take the
  // entry — the caller must fall back (the engine recomputes).
  StoreOutcome store(std::uint64_t key, std::vector<std::uint8_t> stream,
                     std::size_t iteration, double now_s,
                     FaultInjector* fault);
  StoreOutcome store_phantom(std::uint64_t key, std::size_t bytes,
                             std::size_t iteration, double now_s,
                             FaultInjector* fault);

  // Probe tiers fastest-first for `key` with per-tier retry/backoff.
  // Non-consuming: a kHit leaves the entry in place (touching its LRU
  // stamp) so the caller can retry after an out-of-pages adoption; call
  // erase() once the stream is adopted or proven corrupt. A missing key
  // short-circuits with no probes, no stall and no RNG draws.
  FetchOutcome fetch(std::uint64_t key, std::size_t iteration, double now_s,
                     FaultInjector* fault);

  // Move `key` one or more tiers up if a faster tier has room (never
  // demotes anything to make that room). Returns true and adds the read
  // transfer time to *transfer_s on success. A no-op (entry already in
  // tier 0, no room above, or key absent) returns false without drawing.
  bool promote(std::uint64_t key, std::size_t iteration, double now_s,
               FaultInjector* fault, double* transfer_s);

  // Drop the entry under `key`; returns whether one existed.
  bool erase(std::uint64_t key);

  // Bytes of the real stream under `key`; nullptr for phantom or absent
  // entries. Read-only: does not touch LRU state or draw faults.
  const std::vector<std::uint8_t>* stream_of(std::uint64_t key) const;

  bool contains(std::uint64_t key) const {
    return entries_.count(key) > 0;
  }
  std::size_t count() const { return entries_.size(); }
  std::size_t tier_count() const { return tiers_.size(); }
  const SwapTier& tier(std::size_t t) const { return tiers_[t]; }
  std::size_t stored_bytes() const;
  std::size_t tier_stored_bytes(std::size_t t) const { return used_[t]; }
  // Tier currently holding `key` (nullopt when absent).
  std::optional<std::size_t> tier_of(std::uint64_t key) const;
  const TierCounters& counters(std::size_t t) const { return counters_[t]; }
  bool blacklisted(std::size_t t, double now_s) const {
    return now_s < blacklisted_until_[t];
  }

 private:
  struct Entry {
    std::vector<std::uint8_t> stream;  // empty for phantom entries
    std::size_t bytes = 0;
    std::size_t tier = 0;
    std::size_t last_touch = 0;  // iteration of last store/fetch
    bool phantom = false;
  };

  StoreOutcome store_impl(std::uint64_t key, std::vector<std::uint8_t> stream,
                          std::size_t bytes, bool phantom,
                          std::size_t iteration, double now_s,
                          FaultInjector* fault);
  bool fits(std::size_t t, std::size_t bytes) const;
  // Demote LRU entries from `t` into `t + 1` until `bytes` fit (or
  // nothing more can move). Demotions are internal background moves:
  // deterministic, no availability probe, charged at the destination
  // tier's bandwidth.
  void make_room(std::size_t t, std::size_t bytes, std::size_t iteration,
                 StoreOutcome& out);
  // Record a failed / successful availability probe, driving the
  // consecutive-failure blacklist.
  void note_failure(std::size_t t, double now_s);
  void note_success(std::size_t t);

  std::vector<SwapTier> tiers_;
  TierHealthPolicy health_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::vector<std::size_t> used_;               // bytes resident per tier
  std::vector<TierCounters> counters_;
  std::vector<std::size_t> consecutive_failures_;
  std::vector<double> blacklisted_until_;
};

// Serialize `seq`, park the stream in the store under `key`, and release
// the sequence's pages. Returns the stream size in bytes (what the
// transfer cost model should charge).
std::size_t swap_out(PagedKvCache& cache, PagedKvCache::SeqId seq,
                     std::uint64_t key, HostSwapStore& store,
                     FaultInjector* fault = nullptr);

// Tiered variant: the pages are released only when a tier accepted the
// stream (outcome->stored); on refusal the sequence is left intact so the
// caller can keep running or drop it for recompute. Returns the stream
// size when stored, 0 when refused.
std::size_t swap_out(PagedKvCache& cache, PagedKvCache::SeqId seq,
                     std::uint64_t key, TieredSwapStore& store,
                     std::size_t iteration, double now_s, FaultInjector* fault,
                     TieredSwapStore::StoreOutcome* outcome = nullptr);

enum class SwapInStatus {
  kOk,                // sequence restored; `seq` is valid
  kChecksumMismatch,  // corruption detected; stream dropped — recompute
  kOutOfPages,        // cache cannot back the pages; stream kept in store
  kMissing,           // no stream under this key
  kUnavailable,       // tiered only: every tier holding the stream is down
};

struct SwapInResult {
  SwapInStatus status = SwapInStatus::kMissing;
  PagedKvCache::SeqId seq = 0;
};

struct TieredSwapInResult {
  SwapInStatus status = SwapInStatus::kMissing;
  PagedKvCache::SeqId seq = 0;
  TieredSwapStore::FetchOutcome fetch;  // transfer/stall/failover detail
};

// Fetch `key` from the store and adopt it into `cache`. A corrupt stream
// (CRC mismatch, or any structural damage) is consumed and reported as
// kChecksumMismatch; on kOutOfPages the stream is parked back so the
// caller can retry after freeing pages — the parked copy is pristine
// (deserialization runs on a scratch copy), so a retry can never see
// injector-mutated bytes. `fault` optionally injects corruption into the
// fetched stream (common/fault.h).
SwapInResult swap_in(PagedKvCache& cache, std::uint64_t key,
                     HostSwapStore& store, FaultInjector* fault = nullptr);

// Tiered variant: probes tiers fastest-first (retry/backoff/failover per
// the store's TierHealthPolicy) and only erases the entry once the
// stream is adopted or proven corrupt; kOutOfPages and kUnavailable
// leave the pristine entry in place for a later retry.
TieredSwapInResult swap_in(PagedKvCache& cache, std::uint64_t key,
                           TieredSwapStore& store, std::size_t iteration,
                           double now_s, FaultInjector* fault);

// Seconds to move `bytes` across the host link of `dev`, scaled by a
// spike multiplier (>= 1.0) from the fault injector.
double swap_transfer_seconds(double bytes, const sim::DeviceSpec& dev,
                             double spike_multiplier = 1.0);

}  // namespace turbo::serving
