#include "serving/engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/check.h"
#include "kvcache/page_allocator.h"
#include "serving/swap.h"

namespace turbo::serving {

namespace {

struct Running {
  std::size_t trace_index;
  std::size_t context;        // tokens currently cached
  std::size_t remaining;      // tokens still to generate
  std::vector<PageId> pages;  // pages backing `context` (+ growth slack)
  bool pinned = false;        // protected from further victimization
};

// A preempted request waiting out its backoff before re-admission.
struct Paused {
  std::size_t trace_index;
  std::size_t context;    // tokens to restore (prompt + generated so far)
  std::size_t remaining;
  double eligible_s;      // earliest re-admission time
  bool swapped;           // true: pages parked in the host store
  double bytes;           // swapped stream size (0 for recompute)
};

}  // namespace

EngineResult run_engine(const EngineConfig& config,
                        std::vector<Request> trace) {
  std::sort(trace.begin(), trace.end(),
            [](const Request& a, const Request& b) {
              return a.arrival_s < b.arrival_s;
            });

  const double kv_per_token = sim::kv_cache_bytes_per_token(
      config.method, config.attention, config.geometry.kv_heads,
      config.geometry.head_dim) *
      static_cast<double>(config.geometry.layers);
  const double kv_budget =
      config.device.hbm_capacity * config.memory_headroom -
      config.geometry.weight_bytes_fp16();
  TURBO_CHECK_MSG(kv_budget > 0.0, "weights alone exceed device memory");
  TURBO_CHECK(config.page_tokens > 0);
  TURBO_CHECK(config.backoff_base_s > 0.0);
  TURBO_CHECK(config.backoff_cap_s >= config.backoff_base_s);
  TURBO_CHECK(config.admit_reserve >= 0.0 && config.admit_reserve < 1.0);

  // KV memory as fixed-size pages through a real allocator, so that page
  // exhaustion and injected allocation faults surface exactly where a
  // paged serving system would see them.
  const double page_bytes =
      static_cast<double>(config.page_tokens) * kv_per_token;
  const std::size_t page_count =
      static_cast<std::size_t>(kv_budget / page_bytes);
  TURBO_CHECK_MSG(page_count > 0, "KV budget smaller than one page");
  PageAllocator allocator(page_count);
  FaultInjector fault(config.faults);
  allocator.set_fault_injector(&fault);

  EngineResult result;
  result.requests = trace;

  const std::size_t pt = config.page_tokens;
  auto pages_needed = [pt](std::size_t tokens) {
    return (tokens + pt - 1) / pt;
  };

  // Reject requests that could never fit even with the machine to
  // themselves. Everything else is guaranteed schedulable.
  for (Request& r : result.requests) {
    if (pages_needed(r.prompt_tokens + r.max_new_tokens) > page_count) {
      r.finish_s = r.arrival_s;  // degenerate: immediately rejected
      ++result.rejected;
    }
  }

  const std::size_t total = result.requests.size();
  std::size_t finished = result.rejected;

  std::deque<std::size_t> waiting;  // indices into result.requests
  std::vector<Running> running;
  std::vector<Paused> paused;
  std::size_t next_arrival = 0;
  double now = 0.0;

  auto prefill_cost = [&](std::size_t tokens) {
    sim::InferenceConfig pcfg;
    pcfg.method = config.method;
    pcfg.attention = config.attention;
    pcfg.batch = 1;
    pcfg.prompt = tokens;
    return sim::prefill_breakdown(config.device, config.geometry, pcfg)
        .total();
  };

  // Allocate `n` pages or none (failed attempts roll back).
  auto try_alloc = [&](std::size_t n, std::vector<PageId>& out) {
    for (std::size_t i = 0; i < n; ++i) {
      const PageId p = allocator.allocate();
      if (p == kInvalidPage) {
        while (!out.empty()) {
          allocator.release(out.back());
          out.pop_back();
        }
        return false;
      }
      out.push_back(p);
    }
    return true;
  };

  auto release_all = [&](std::vector<PageId>& pages) {
    for (const PageId p : pages) allocator.release(p);
    pages.clear();
  };

  auto backoff_for = [&](std::size_t preempt_count) {
    const std::size_t exp =
        std::min<std::size_t>(preempt_count > 0 ? preempt_count - 1 : 0, 16);
    return std::min(config.backoff_cap_s,
                    config.backoff_base_s *
                        static_cast<double>(std::size_t{1} << exp));
  };

  // Evict running[j]: swap its pages to the host store (PCIe cost) or
  // drop them for recomputation. Returns the transfer stall incurred.
  auto preempt = [&](Running& victim) {
    Request& r = result.requests[victim.trace_index];
    ++result.preemptions;
    ++r.preemptions;
    result.max_preemptions_single_request =
        std::max(result.max_preemptions_single_request, r.preemptions);
    Paused p{victim.trace_index, victim.context, victim.remaining,
             now + backoff_for(r.preemptions), false, 0.0};
    double stall = 0.0;
    if (config.preempt_mode == PreemptMode::kSwap) {
      p.swapped = true;
      p.bytes = static_cast<double>(victim.pages.size()) * page_bytes;
      result.swap_out_bytes += p.bytes;
      ++result.preempted_swap;
      stall = swap_transfer_seconds(p.bytes, config.device,
                                    fault.swap_latency_multiplier());
    } else {
      ++result.preempted_recompute;
    }
    release_all(victim.pages);
    paused.push_back(p);
    return stall;
  };

  // Lowest-priority victim among alive running requests: non-pinned
  // first; then lowest Request::priority; then latest arrival. Returns
  // running.size() when nothing is eligible (running all dead).
  auto pick_victim = [&](const std::vector<char>& dead) {
    std::size_t best = running.size();
    bool best_pinned = true;
    for (std::size_t j = 0; j < running.size(); ++j) {
      if (dead[j] != 0) continue;
      const Request& r = result.requests[running[j].trace_index];
      if (best == running.size()) {
        best = j;
        best_pinned = running[j].pinned;
        continue;
      }
      const Request& b = result.requests[running[best].trace_index];
      const bool j_pinned = running[j].pinned;
      if (j_pinned != best_pinned) {
        if (!j_pinned) {
          best = j;
          best_pinned = false;
        }
        continue;
      }
      if (r.priority != b.priority) {
        if (r.priority < b.priority) best = j;
        continue;
      }
      if (r.arrival_s > b.arrival_s ||
          (r.arrival_s == b.arrival_s && r.id > b.id)) {
        best = j;
      }
    }
    return best;
  };

  while (finished < total && now < config.max_sim_time_s) {
    // Pull arrivals whose time has come.
    while (next_arrival < total &&
           result.requests[next_arrival].arrival_s <= now) {
      if (result.requests[next_arrival].finish_s < 0.0) {
        waiting.push_back(next_arrival);
      }
      ++next_arrival;
    }

    // --- Re-admission of preempted requests (before fresh arrivals) ---
    // Order: higher priority first, then earlier arrival. No overtaking:
    // the first re-admission that cannot get pages ends the pass, which
    // keeps the backoff queue fair.
    double admit_latency = 0.0;
    std::sort(paused.begin(), paused.end(),
              [&](const Paused& a, const Paused& b) {
                const Request& ra = result.requests[a.trace_index];
                const Request& rb = result.requests[b.trace_index];
                if (ra.priority != rb.priority) {
                  return ra.priority > rb.priority;
                }
                if (ra.arrival_s != rb.arrival_s) {
                  return ra.arrival_s < rb.arrival_s;
                }
                return ra.id < rb.id;
              });
    for (std::size_t pi = 0; pi < paused.size();) {
      Paused& p = paused[pi];
      if (p.eligible_s > now || running.size() >= config.max_batch) {
        ++pi;
        continue;
      }
      std::vector<PageId> pages;
      if (!try_alloc(pages_needed(p.context + 1), pages)) {
        p.eligible_s = now + config.backoff_base_s;  // retry tick
        break;                                       // no overtaking
      }
      Request& r = result.requests[p.trace_index];
      if (p.swapped) {
        const double dt = swap_transfer_seconds(
            p.bytes, config.device, fault.swap_latency_multiplier());
        admit_latency += dt;
        result.swap_stall_s += dt;
        result.swap_in_bytes += p.bytes;
        if (fault.corrupt_stream()) {
          // The swapped stream fails its CRC on the way back in. The
          // pages cannot be adopted — recover by recomputing them.
          ++result.checksum_failures;
          const double cost = prefill_cost(p.context);
          admit_latency += cost;
          result.busy_s += cost;
          ++result.recoveries;
        } else {
          ++result.swap_ins;
        }
      } else {
        const double cost = prefill_cost(p.context);
        admit_latency += cost;
        result.busy_s += cost;
      }
      running.push_back(
          {p.trace_index, p.context, p.remaining, std::move(pages),
           r.preemptions >= config.pin_after_preemptions});
      paused.erase(paused.begin() + static_cast<std::ptrdiff_t>(pi));
    }

    // --- Fresh admission: FIFO while pages and the batch cap allow ---
    // Optimistic: a request needs only its prompt (+ first token) pages
    // to start; decode growth is backed by preemption. Fresh admissions
    // leave `admit_reserve` of the pool free for that growth — except
    // when the batch is empty, where head-of-line blocking would stall
    // the engine outright.
    std::vector<std::size_t> admitted;
    std::vector<std::vector<PageId>> admitted_pages;
    const std::size_t reserve_pages = static_cast<std::size_t>(
        static_cast<double>(page_count) * config.admit_reserve);
    while (!waiting.empty() &&
           running.size() + admitted.size() < config.max_batch) {
      const std::size_t idx = waiting.front();
      const Request& r = result.requests[idx];
      const std::size_t needed = pages_needed(r.prompt_tokens + 1);
      const std::size_t reserve =
          (running.empty() && admitted.empty()) ? 0 : reserve_pages;
      if (allocator.free_pages() < needed + reserve) break;
      std::vector<PageId> pages;
      if (!try_alloc(needed, pages)) break;  // injected failure: retry later
      admitted.push_back(idx);
      admitted_pages.push_back(std::move(pages));
      waiting.pop_front();
    }

    if (!admitted.empty()) {
      // Chunked-style prefill: each admitted request's prompt is processed
      // at its own length (padding a batched prefill to the longest prompt
      // would penalize exactly the methods that can admit more requests).
      double prefill_latency = 0.0;
      for (std::size_t a = 0; a < admitted.size(); ++a) {
        const std::size_t idx = admitted[a];
        Request& r = result.requests[idx];
        prefill_latency += prefill_cost(r.prompt_tokens);
        r.prefill_start_s = now;
        running.push_back({idx, r.prompt_tokens, r.max_new_tokens,
                           std::move(admitted_pages[a]), false});
      }
      now += admit_latency + prefill_latency;
      admit_latency = 0.0;
      result.busy_s += prefill_latency;
      // The prompt's last-position output is the first generated token.
      const std::size_t first_new = running.size() - admitted.size();
      for (std::size_t i = first_new; i < running.size();) {
        Running& ru = running[i];
        Request& r = result.requests[ru.trace_index];
        r.first_token_s = now;
        if (ru.remaining > 0) {
          r.generated = 1;
          ru.remaining -= 1;
          ru.context += 1;
        }
        if (ru.remaining == 0) {
          r.finish_s = now;
          release_all(ru.pages);
          ++finished;
          running[i] = running.back();
          running.pop_back();
        } else {
          ++i;
        }
      }
    } else {
      now += admit_latency;
      admit_latency = 0.0;
    }
    result.peak_batch = std::max(result.peak_batch, running.size());

    if (running.empty()) {
      // Idle: jump to the next event (arrival or backoff expiry).
      double next_event = std::numeric_limits<double>::infinity();
      if (next_arrival < total) {
        next_event = result.requests[next_arrival].arrival_s;
      }
      for (const Paused& p : paused) {
        next_event = std::min(next_event, p.eligible_s);
      }
      if (std::isfinite(next_event)) {
        now = std::max(now, next_event);
        continue;
      }
      if (!waiting.empty()) {
        // Admission blocked with an empty machine: only injected
        // allocation faults can do this. Retry after a tick.
        now += config.backoff_base_s;
        continue;
      }
      break;  // nothing running, waiting, paused or arriving
    }

    // --- Decode-step page growth; preemption is the backstop ---
    // Each running request about to append token `context + 1` may need
    // one more page. Injected allocation faults evict the request they
    // hit (a degraded step); genuine exhaustion evicts the lowest-
    // priority victim and retries.
    {
      double stall = 0.0;
      bool degraded = false;
      std::vector<char> dead(running.size(), 0);
      for (std::size_t i = 0; i < running.size(); ++i) {
        if (dead[i] != 0) continue;
        Running& ru = running[i];
        if (ru.pages.size() * pt >= ru.context + 1) continue;
        for (;;) {
          const std::size_t injected_before = allocator.injected_failures();
          const PageId page = allocator.allocate();
          if (page != kInvalidPage) {
            ru.pages.push_back(page);
            break;
          }
          if (allocator.injected_failures() > injected_before) {
            // The fault hit this request's allocation: it is the victim.
            stall += preempt(ru);
            dead[i] = 1;
            degraded = true;
            break;
          }
          const std::size_t v = pick_victim(dead);
          TURBO_CHECK_MSG(v < running.size(),
                          "page exhaustion with no evictable request");
          stall += preempt(running[v]);
          dead[v] = 1;
          if (v == i) break;  // evicted itself; no page needed
        }
      }
      std::vector<Running> alive;
      alive.reserve(running.size());
      for (std::size_t i = 0; i < running.size(); ++i) {
        if (dead[i] == 0) alive.push_back(std::move(running[i]));
      }
      running.swap(alive);
      now += stall;
      result.swap_stall_s += stall;
      if (degraded) ++result.degraded_steps;
    }
    if (running.empty()) continue;  // everyone was evicted this step

    // One decode iteration across the running batch.
    std::size_t max_context = 0;
    for (const Running& ru : running) {
      max_context = std::max(max_context, ru.context);
    }
    sim::InferenceConfig dcfg;
    dcfg.method = config.method;
    dcfg.attention = config.attention;
    dcfg.batch = running.size();
    dcfg.prompt = max_context;
    const double step = sim::decode_step_breakdown(
                            config.device, config.geometry, dcfg,
                            max_context)
                            .total();
    now += step;
    result.busy_s += step;
    result.peak_batch = std::max(result.peak_batch, running.size());
    result.peak_kv_bytes =
        std::max(result.peak_kv_bytes,
                 static_cast<double>(allocator.used_pages()) * page_bytes);

    for (std::size_t i = 0; i < running.size();) {
      Running& ru = running[i];
      Request& r = result.requests[ru.trace_index];
      if (ru.remaining > 0) {
        ru.remaining -= 1;
        ru.context += 1;
        r.generated += 1;
      }
      if (ru.remaining == 0) {
        r.finish_s = now;
        release_all(ru.pages);
        ++finished;
        running[i] = running.back();
        running.pop_back();
      } else {
        ++i;
      }
    }
  }

  result.makespan_s = now;
  result.injected_alloc_failures = allocator.injected_failures();
  result.hit_time_limit = finished < total;
  return result;
}

}  // namespace turbo::serving
