#include "serving/engine.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace turbo::serving {

namespace {

struct Running {
  std::size_t trace_index;
  std::size_t context;    // tokens currently cached
  std::size_t remaining;  // tokens still to generate
};

}  // namespace

EngineResult run_engine(const EngineConfig& config,
                        std::vector<Request> trace) {
  std::sort(trace.begin(), trace.end(),
            [](const Request& a, const Request& b) {
              return a.arrival_s < b.arrival_s;
            });

  const double kv_per_token = sim::kv_cache_bytes_per_token(
      config.method, config.attention, config.geometry.kv_heads,
      config.geometry.head_dim) *
      static_cast<double>(config.geometry.layers);
  const double kv_budget =
      config.device.hbm_capacity * config.memory_headroom -
      config.geometry.weight_bytes_fp16();
  TURBO_CHECK_MSG(kv_budget > 0.0, "weights alone exceed device memory");

  EngineResult result;
  result.requests = trace;

  std::deque<std::size_t> waiting;  // indices into result.requests
  std::vector<Running> running;
  std::size_t next_arrival = 0;
  double now = 0.0;
  double kv_used = 0.0;

  auto footprint = [&](const Request& r) {
    return static_cast<double>(r.prompt_tokens + r.max_new_tokens) *
           kv_per_token;
  };

  // Reject requests that could never fit even alone.
  for (Request& r : result.requests) {
    if (footprint(r) > kv_budget) {
      r.finish_s = r.arrival_s;  // degenerate: immediately rejected
      ++result.rejected;
    }
  }

  const std::size_t total = result.requests.size();
  std::size_t finished = result.rejected;

  while (finished < total && now < config.max_sim_time_s) {
    // Pull arrivals whose time has come.
    while (next_arrival < total &&
           result.requests[next_arrival].arrival_s <= now) {
      if (result.requests[next_arrival].finish_s < 0.0) {
        waiting.push_back(next_arrival);
      }
      ++next_arrival;
    }

    // Admission: FIFO while memory and batch cap allow.
    std::vector<std::size_t> admitted;
    while (!waiting.empty() && running.size() + admitted.size() <
                                   config.max_batch) {
      const std::size_t idx = waiting.front();
      const Request& r = result.requests[idx];
      if (kv_used + footprint(r) > kv_budget) break;
      kv_used += footprint(r);
      admitted.push_back(idx);
      waiting.pop_front();
    }

    if (!admitted.empty()) {
      // Chunked-style prefill: each admitted request's prompt is processed
      // at its own length (padding a batched prefill to the longest prompt
      // would penalize exactly the methods that can admit more requests).
      double prefill_latency = 0.0;
      for (std::size_t idx : admitted) {
        sim::InferenceConfig pcfg;
        pcfg.method = config.method;
        pcfg.attention = config.attention;
        pcfg.batch = 1;
        pcfg.prompt = result.requests[idx].prompt_tokens;
        prefill_latency +=
            sim::prefill_breakdown(config.device, config.geometry, pcfg)
                .total();
      }
      const std::size_t first_new = running.size();
      for (std::size_t idx : admitted) {
        Request& r = result.requests[idx];
        r.prefill_start_s = now;
        running.push_back({idx, r.prompt_tokens, r.max_new_tokens});
      }
      now += prefill_latency;
      result.busy_s += prefill_latency;
      // The prompt's last-position output is the first generated token.
      for (std::size_t i = first_new; i < running.size();) {
        Running& ru = running[i];
        Request& r = result.requests[ru.trace_index];
        r.first_token_s = now;
        r.generated = 1;
        ru.remaining -= 1;
        ru.context += 1;
        if (ru.remaining == 0) {
          r.finish_s = now;
          kv_used -= footprint(r);
          ++finished;
          running[i] = running.back();
          running.pop_back();
        } else {
          ++i;
        }
      }
    }

    if (running.empty()) {
      // Idle: jump to the next arrival.
      if (next_arrival < total) {
        now = std::max(now, result.requests[next_arrival].arrival_s);
        continue;
      }
      break;  // nothing running, nothing arriving
    }

    // One decode iteration across the running batch.
    std::size_t max_context = 0;
    for (const Running& ru : running) {
      max_context = std::max(max_context, ru.context);
    }
    sim::InferenceConfig dcfg;
    dcfg.method = config.method;
    dcfg.attention = config.attention;
    dcfg.batch = running.size();
    dcfg.prompt = max_context;
    const double step = sim::decode_step_breakdown(
                            config.device, config.geometry, dcfg,
                            max_context)
                            .total();
    now += step;
    result.busy_s += step;
    result.peak_batch = std::max(result.peak_batch, running.size());
    result.peak_kv_bytes = std::max(result.peak_kv_bytes, kv_used);

    for (std::size_t i = 0; i < running.size();) {
      Running& ru = running[i];
      Request& r = result.requests[ru.trace_index];
      if (ru.remaining > 0) {
        ru.remaining -= 1;
        ru.context += 1;
        r.generated += 1;
      }
      if (ru.remaining == 0) {
        r.finish_s = now;
        kv_used -= footprint(r);
        ++finished;
        running[i] = running.back();
        running.pop_back();
      } else {
        ++i;
      }
    }
  }

  result.makespan_s = now;
  return result;
}

}  // namespace turbo::serving
