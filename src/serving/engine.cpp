#include "serving/engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <span>

#include "common/check.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "kvcache/page_allocator.h"
#include "kvcache/radix_index.h"
#include "quant/error.h"
#include "serving/swap.h"

namespace turbo::serving {

namespace {

struct Running {
  std::size_t trace_index;
  std::size_t context;        // tokens currently cached
  std::size_t remaining;      // tokens still to generate
  std::size_t prompt_left;    // prompt tokens not yet prefilled (cursor)
  std::vector<PageId> pages;  // pages backing `context` (+ growth slack)
  bool pinned = false;        // protected from further victimization
  double kv_bits = 0.0;       // precision this request's KV is stored at
};

// A preempted request waiting out its backoff before re-admission.
struct Paused {
  std::size_t trace_index;
  std::size_t context;      // tokens to restore (prefilled + generated)
  std::size_t remaining;
  std::size_t prompt_left;  // prefill cursor survives preemption
  double eligible_s;        // earliest re-admission time
  bool swapped;             // true: stream parked in the tiered store
  double bytes;             // swapped stream size (0 for recompute)
  double kv_bits;           // precision the parked KV is stored at
  bool promote_tried = false;  // one promote attempt per page-blocked wait
  // Leading tokens whose pages were shared/registered at eviction: they
  // were not serialized (other residents or the retained pool keep them),
  // so re-admission re-matches the radix index for them and recomputes
  // only the shortfall.
  std::size_t prefix_tokens = 0;
};

// Deadline comparisons use a slack so a token landing exactly on the
// deadline counts as met, and idle-time jumps that land on an expiry
// instant make progress.
constexpr double kDeadlineSlack = 1e-9;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Degradation ladder levels.
enum : std::size_t { kLevelNormal = 0, kLevelDownshift = 1, kLevelShed = 2 };

// Everything derivable from the config before the first request arrives.
// Validation runs here, in the same order the monolithic loop used to
// check it, so invalid configs fail with the same message.
struct DerivedConfig {
  double bits_normal = 0.0;
  double kv_per_token = 0.0;
  double bits_degraded = 0.0;
  std::size_t quantum = 0;
  double page_bytes = 0.0;
  std::size_t page_count = 0;
  std::size_t tpp_normal = 0;
  std::size_t tpp_degraded = 0;
  std::size_t reserve_pages = 0;
};

DerivedConfig derive_config(const EngineConfig& config) {
  DerivedConfig d;
  const sim::ModelGeometry& geom = config.geometry;
  // KV bytes/token at an arbitrary stored precision (the method decides
  // whether kv_bits matters at all — FP16 ignores it).
  auto kv_per_token_at = [&](double bits) {
    sim::AttnCostConfig a = config.attention;
    a.kv_bits = bits;
    return sim::kv_cache_bytes_per_token(config.method, a, geom.kv_heads,
                                         geom.head_dim) *
           static_cast<double>(geom.layers);
  };
  d.bits_normal = config.attention.kv_bits;
  d.kv_per_token = kv_per_token_at(d.bits_normal);
  const double kv_budget =
      config.device.hbm_capacity * config.memory_headroom -
      geom.weight_bytes_fp16();
  TURBO_CHECK_MSG(kv_budget > 0.0, "weights alone exceed device memory");
  TURBO_CHECK(config.page_tokens > 0);
  TURBO_CHECK(config.backoff_base_s > 0.0);
  TURBO_CHECK(config.backoff_cap_s >= config.backoff_base_s);
  TURBO_CHECK(config.admit_reserve >= 0.0 && config.admit_reserve < 1.0);
  TURBO_CHECK_MSG(config.backoff_jitter >= 0.0,
                  "backoff_jitter must be >= 0");
  {
    double share_sum = 0.0;
    for (const ClassPolicy& p : config.classes) {
      TURBO_CHECK_MSG(p.page_share >= 0.0 && p.page_share <= 1.0,
                      "class page_share outside [0, 1]");
      share_sum += p.page_share;
    }
    TURBO_CHECK_MSG(share_sum <= 1.0 + 1e-9,
                    "class page shares must sum to <= 1");
  }
  if (config.degrade.enabled) {
    TURBO_CHECK_MSG(config.degrade.low_watermark >= 0.0 &&
                        config.degrade.high_watermark <= 1.0 &&
                        config.degrade.low_watermark <
                            config.degrade.high_watermark,
                    "degrade watermarks must satisfy 0 <= low < high <= 1");
    TURBO_CHECK(config.degrade.window_iters > 0);
  }

  // Degraded KV precision: the head-wise 4/2-bit mix, never *above* the
  // configured precision (downshift only).
  d.bits_degraded =
      config.degrade.enabled
          ? std::min(d.bits_normal,
                     sim::headwise_mixed_kv_bits(
                         config.degrade.two_bit_head_fraction))
          : d.bits_normal;

  // Scheduler quantum: at most this many prompt tokens prefill per
  // iteration. 0 = monolithic (a whole prompt is one chunk).
  d.quantum = config.prefill_chunk_tokens == 0
                  ? std::numeric_limits<std::size_t>::max()
                  : config.prefill_chunk_tokens;

  // KV memory as fixed-size pages through a real allocator, so that page
  // exhaustion and injected allocation faults surface exactly where a
  // paged serving system would see them. A page is a fixed byte region
  // sized for `page_tokens` tokens at the *configured* precision; KV
  // written at a downshifted precision packs proportionally more tokens
  // into the same page.
  d.page_bytes = static_cast<double>(config.page_tokens) * d.kv_per_token;
  d.page_count = static_cast<std::size_t>(kv_budget / d.page_bytes);
  TURBO_CHECK_MSG(d.page_count > 0, "KV budget smaller than one page");

  auto tokens_per_page_at = [&](double bits) {
    const double ratio = d.kv_per_token / kv_per_token_at(bits);
    return std::max<std::size_t>(
        config.page_tokens,
        static_cast<std::size_t>(
            static_cast<double>(config.page_tokens) * ratio + 1e-9));
  };
  d.tpp_normal = config.page_tokens;
  d.tpp_degraded = tokens_per_page_at(d.bits_degraded);
  d.reserve_pages = static_cast<std::size_t>(
      static_cast<double>(d.page_count) * config.admit_reserve);
  return d;
}

}  // namespace

// The scheduler state behind Engine: every local of the old monolithic
// run_engine loop promoted to a member, with the loop body as step().
// The phase order inside step() is untouched — run_engine() through this
// class is bit-identical to the pre-refactor engine.
class EngineImpl {
 public:
  explicit EngineImpl(const EngineConfig& config)
      : config_(config),
        d_(derive_config(config)),
        allocator_(d_.page_count),
        radix_(config.page_tokens),
        page_ref_(d_.page_count, 0),
        fault_(config.faults),
        class_aware_(config.policy == SchedPolicy::kClassAware),
        iters_since_level_change_(config.degrade.window_iters) {
    allocator_.set_fault_injector(&fault_);
    // Swap mode parks preemption victims in a tiered store: tier 0 is
    // host DRAM behind the PCIe link, tier 1 (optional) local disk. The
    // engine runs the store in phantom mode — byte counts and placement
    // only; the byte-level serialize/adopt path shares the same
    // machinery in tests.
    if (config_.preempt_mode == PreemptMode::kSwap) {
      TURBO_CHECK_MSG(config_.swap.tiers >= 1 && config_.swap.tiers <= 2,
                      "engine supports 1 (host) or 2 (host+disk) swap tiers");
      std::vector<SwapTier> tiers;
      tiers.push_back({"host", config_.swap.host_capacity_bytes,
                       config_.device.pcie_bandwidth});
      if (config_.swap.tiers == 2) {
        TURBO_CHECK_MSG(config_.device.disk_bandwidth > 0.0,
                        "disk swap tier requires device disk_bandwidth > 0");
        tiers.push_back({"disk", config_.swap.disk_capacity_bytes,
                         config_.device.disk_bandwidth});
      }
      swap_store_.emplace(std::move(tiers), config_.swap.health);
    }
    result_.min_kv_bits = d_.bits_normal;
  }

  void submit(const Request& r) {
    TURBO_CHECK_MSG(
        pending_.empty() ||
            result_.requests[pending_.back()].arrival_s <= r.arrival_s,
        "submit() requires non-decreasing arrival order");
    const std::size_t idx = result_.requests.size();
    result_.requests.push_back(r);
    drained_.push_back(0);
    ++live_total_;
    Request& q = result_.requests.back();
    // Reject requests that could never fit even with the machine to
    // themselves. Everything else is guaranteed schedulable. Rejected
    // requests still ride the pending queue (skipped at arrival pull) so
    // idle-time jumps land on the same instants the monolithic loop used.
    if (pages_needed(q.prompt_tokens + q.max_new_tokens, d_.bits_normal) >
        d_.page_count) {
      q.finish_s = q.arrival_s;  // degenerate: immediately rejected
      q.outcome = Outcome::kRejected;
      ++result_.rejected;
      ++finished_;
    }
    pending_.push_back(idx);
  }

  void adopt(const MigratableRequest& m, double eligible_s,
             bool with_stream) {
    const std::size_t idx = result_.requests.size();
    result_.requests.push_back(m.request);
    drained_.push_back(0);
    ++live_total_;
    Request& r = result_.requests.back();
    TURBO_CHECK_MSG(r.outcome == Outcome::kPending,
                    "adopt() of a request already in a terminal state");
    if (m.context == 0) {
      // Nothing was cached at drain: a plain re-route. The request joins
      // the destination's waiting queue and admits class-aware like any
      // fresh arrival.
      waiting_[class_of(idx)].push_back(idx);
      return;
    }
    Paused p{idx,        m.context, m.remaining, m.prompt_left,
             eligible_s, false,     0.0,         m.kv_bits};
    if (with_stream && m.has_stream && swap_store_.has_value()) {
      // Park the migrated bytes in this replica's own tiered store so the
      // normal re-admission machinery (promote, fetch, CRC, recompute
      // fallback) restores them; the host-tier write cost is the landing
      // leg of the migration.
      const TieredSwapStore::StoreOutcome so = swap_store_->store_phantom(
          stream_key(r.id), static_cast<std::size_t>(m.bytes), iteration_,
          now_, &fault_);
      if (so.stored) {
        p.swapped = true;
        p.bytes = m.bytes;
        p.eligible_s += so.transfer_s;
        result_.tier_demotions += so.demotions;
      } else {
        // No tier had room: the migrated copy is dropped and the request
        // degrades to recompute, the same overflow fallback a preemption
        // victim takes.
        ++result_.swap_overflow_recomputes;
      }
    }
    paused_.push_back(p);
  }

  // One scheduler iteration — the body of the old while loop, verbatim.
  // Returns false at the old `break`: nothing running, waiting, paused
  // or pending.
  bool step(double horizon_s) {
    ++iteration_;
    // Pull arrivals whose time has come.
    while (!pending_.empty() &&
           result_.requests[pending_.front()].arrival_s <= now_) {
      const std::size_t idx = pending_.front();
      pending_.pop_front();
      if (result_.requests[idx].outcome == Outcome::kPending) {
        waiting_[class_of(idx)].push_back(idx);
      }
    }

    // --- Deadline enforcement: waiting, paused, then running ------------
    if (config_.enforce_deadlines) {
      for (auto& queue : waiting_) {
        for (std::size_t qi = 0; qi < queue.size();) {
          Request& r = result_.requests[queue[qi]];
          if (deadline_expired(r)) {
            time_out(r);
            queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(qi));
          } else {
            ++qi;
          }
        }
      }
      for (std::size_t pi = 0; pi < paused_.size();) {
        Request& r = result_.requests[paused_[pi].trace_index];
        if (deadline_expired(r)) {
          // Pages were released at eviction; a swapped victim also drops
          // its parked stream so the store cannot leak terminal state.
          if (paused_[pi].swapped) swap_store_->erase(stream_key(r.id));
          time_out(r);
          paused_.erase(paused_.begin() + static_cast<std::ptrdiff_t>(pi));
        } else {
          ++pi;
        }
      }
      {
        std::vector<char> dead(running_.size(), 0);
        bool any = false;
        for (std::size_t i = 0; i < running_.size(); ++i) {
          Request& r = result_.requests[running_[i].trace_index];
          if (!deadline_expired(r)) continue;
          time_out(r);
          release_all(running_[i].pages);
          dead[i] = 1;
          any = true;
        }
        if (any) compact_running(dead);
      }
    }

    // --- Pressure controller: sample occupancy, walk the ladder ---------
    if (config_.degrade.enabled) {
      // Retained pages are reclaimable on demand, so they are not
      // pressure; the ladder watches what live sequences reference.
      occupancy_window_.push_back(
          static_cast<double>(referenced_pages()) /
          static_cast<double>(d_.page_count));
      if (occupancy_window_.size() > config_.degrade.window_iters) {
        occupancy_window_.pop_front();
      }
      ++iters_since_level_change_;
      if (occupancy_window_.size() == config_.degrade.window_iters &&
          iters_since_level_change_ >= config_.degrade.window_iters) {
        double mean = 0.0;
        for (const double o : occupancy_window_) mean += o;
        mean /= static_cast<double>(occupancy_window_.size());
        if (mean > config_.degrade.high_watermark &&
            ladder_level_ < kLevelShed) {
          ++ladder_level_;
          ++result_.ladder_escalations;
          iters_since_level_change_ = 0;
        } else if (mean < config_.degrade.low_watermark &&
                   ladder_level_ > kLevelNormal) {
          --ladder_level_;
          ++result_.ladder_deescalations;
          iters_since_level_change_ = 0;
        }
      }
      if (ladder_level_ >= kLevelDownshift) ++result_.degraded_iterations;

      // Shed level: drop the newest waiting batch-class (then
      // standard-class) requests — admission control at the door.
      // Interactive is never shed.
      if (ladder_level_ >= kLevelShed) {
        std::size_t budget = config_.degrade.max_shed_per_iter;
        for (std::size_t c = kServiceClassCount; c-- > 1 && budget > 0;) {
          while (budget > 0 && !waiting_[c].empty()) {
            Request& r = result_.requests[waiting_[c].back()];
            waiting_[c].pop_back();
            r.finish_s = now_;
            r.outcome = Outcome::kShed;
            ++result_.shed;
            ++finished_;
            --budget;
          }
        }
      }
    }

    // --- Re-admission of preempted requests (before fresh arrivals) ---
    // Order: (class-aware) interactive first, then higher priority, then
    // earlier arrival. No overtaking: the first re-admission that cannot
    // get pages ends the pass, which keeps the backoff queue fair.
    double admit_latency = 0.0;
    std::sort(paused_.begin(), paused_.end(),
              [&](const Paused& a, const Paused& b) {
                const Request& ra = result_.requests[a.trace_index];
                const Request& rb = result_.requests[b.trace_index];
                if (class_aware_ && ra.service_class != rb.service_class) {
                  return static_cast<int>(ra.service_class) <
                         static_cast<int>(rb.service_class);
                }
                if (ra.priority != rb.priority) {
                  return ra.priority > rb.priority;
                }
                if (ra.arrival_s != rb.arrival_s) {
                  return ra.arrival_s < rb.arrival_s;
                }
                return ra.id < rb.id;
              });
    for (std::size_t pi = 0; pi < paused_.size();) {
      Paused& p = paused_[pi];
      if (p.eligible_s > now_ || running_.size() >= config_.max_batch) {
        ++pi;
        continue;
      }
      // Recompute-mode victims rebuild their KV from scratch, so they
      // re-admit at the *current* ladder precision; swapped victims keep
      // the precision their parked stream was written at.
      double bits = p.swapped ? p.kv_bits : current_bits();
      // Prefix pages were left resident at eviction (shared or retained);
      // whatever the index still holds is re-attached for free and only
      // the shortfall — pages reclaimed in the meantime — is recomputed.
      std::vector<PageId> matched;
      if (p.prefix_tokens > 0) {
        matched = radix_.match(std::span<const std::int32_t>(
            result_.requests[p.trace_index].prompt_ids.data(),
            std::min<std::size_t>(
                result_.requests[p.trace_index].prompt_ids.size(),
                bits == d_.bits_normal ? p.prefix_tokens : 0)));
      }
      std::size_t needed = pages_needed(p.context + 1, bits);
      needed -= std::min(needed, matched.size());
      std::vector<PageId> pages;
      if (!try_alloc(needed, pages)) {
        // Page-blocked: spend the wait staging the parked stream up the
        // hierarchy (once per wait), so when pages do free up the
        // swap-in reads at host-link speed instead of disk speed.
        if (p.swapped && !p.promote_tried) {
          double promote_s = 0.0;
          if (swap_store_->promote(
                  stream_key(result_.requests[p.trace_index].id),
                  iteration_, now_, &fault_, &promote_s)) {
            ++result_.tier_promotions;
            admit_latency += promote_s;
            result_.swap_stall_s += promote_s;
          }
          p.promote_tried = true;
        }
        p.eligible_s = now_ + config_.backoff_base_s;  // retry tick
        break;                                         // no overtaking
      }
      Request& r = result_.requests[p.trace_index];
      // Attach the surviving prefix (refcount bump, no allocation, no
      // prefill) and recompute only what the index lost since eviction.
      const std::size_t matched_tokens = matched.size() * d_.tpp_normal;
      for (const PageId pg : matched) attach_page(pg);
      pages.insert(pages.begin(), matched.begin(), matched.end());
      if (p.prefix_tokens > matched_tokens) {
        const std::size_t shortfall = p.prefix_tokens - matched_tokens;
        const double cost = prefill_cost(shortfall, bits);
        admit_latency += cost;
        result_.busy_s += cost;
        r.recomputed_tokens += shortfall;
        result_.recomputed_tokens += shortfall;
      }
      // Tokens the parked stream (or a recompute) must restore: the
      // prefix never left the machine.
      const std::size_t private_context = p.context - p.prefix_tokens;
      if (p.swapped) {
        const TieredSwapStore::FetchOutcome fo =
            swap_store_->fetch(stream_key(r.id), iteration_, now_, &fault_);
        TURBO_CHECK_MSG(fo.status != TieredSwapStore::FetchStatus::kMissing,
                        "swapped request lost its parked stream");
        admit_latency += fo.stall_s;
        result_.tier_retry_stall_s += fo.stall_s;
        result_.tier_failovers += fo.failovers;
        r.tier_failovers += fo.failovers;
        result_.tier_fetch_retries += fo.retries;
        if (fo.status == TieredSwapStore::FetchStatus::kUnavailable) {
          // Failover exhausted: every tier holding the stream is down.
          // The engine never hangs on a dead hierarchy — drop the parked
          // stream and recompute the KV (at the current ladder
          // precision, like any recompute). Not a checksum recovery.
          swap_store_->erase(stream_key(r.id));
          ++result_.swap_unavailable_recomputes;
          bits = current_bits();
          const double cost = prefill_cost(private_context, bits);
          admit_latency += cost;
          result_.busy_s += cost;
          r.recomputed_tokens += private_context;
          result_.recomputed_tokens += private_context;
        } else {
          admit_latency += fo.transfer_s;
          result_.swap_stall_s += fo.transfer_s;
          result_.swap_in_bytes += p.bytes;
          // Two corruption sources: the legacy in-transit stream fault
          // and the per-tier media fault. Either way the CRC catches it
          // on the way back in and the pages cannot be adopted —
          // recover by recomputing them.
          const bool transit_corrupt = fault_.corrupt_stream();
          if (transit_corrupt || fo.corrupted) {
            ++result_.checksum_failures;
            bits = current_bits();
            const double cost = prefill_cost(private_context, bits);
            admit_latency += cost;
            result_.busy_s += cost;
            r.recomputed_tokens += private_context;
            result_.recomputed_tokens += private_context;
            ++result_.recoveries;
          } else {
            ++result_.swap_ins;
          }
          swap_store_->erase(stream_key(r.id));
        }
      } else if (private_context > 0) {
        // Recompute mode: re-derive the evicted KV with a fresh prefill
        // over everything that was cached privately (attached prefix
        // pages never left the machine).
        const double cost = prefill_cost(private_context, bits);
        admit_latency += cost;
        result_.busy_s += cost;
        r.recomputed_tokens += private_context;
        result_.recomputed_tokens += private_context;
      }
      if (bits < d_.bits_normal) {
        ++result_.degraded_admissions;
        record_degrade_proxy();
      }
      r.kv_bits_used = bits;
      result_.min_kv_bits = std::min(result_.min_kv_bits, bits);
      // A partially-prefilled victim resumes from its cursor: the chunk
      // loop below continues with p.prompt_left tokens still to go.
      running_.push_back({p.trace_index, p.context, p.remaining,
                          p.prompt_left, std::move(pages),
                          r.preemptions >= pin_threshold(p.trace_index),
                          bits});
      paused_.erase(paused_.begin() + static_cast<std::ptrdiff_t>(pi));
    }
    now_ += admit_latency;

    // --- Fresh admission -------------------------------------------------
    // Optimistic and chunk-aware: a request needs only its first chunk's
    // pages to start (the prefill cursor allocates the rest as it
    // advances); decode growth is backed by preemption. Under kFifo the
    // queues drain in global arrival order behind one page check; under
    // kClassAware each class is tried in tier order against its quota —
    // a class inside its guaranteed share admits even while a higher
    // tier is page-blocked, but borrowing beyond the share must leave
    // the admit reserve and every demanding class's unmet guarantee
    // free. Admissions during a downshifted ladder level write their KV
    // at the degraded precision.
    {
      const double admit_bits = current_bits();
      double reclaim_stall = 0.0;
      // Guarantees are enforceable, not bookkeeping: a class admitting
      // within its guaranteed share may claw borrowed pages back from
      // classes running over their own share (lowest tier first, pinned
      // requests protected). Without this, a saturated pool would make
      // every guarantee worthless exactly when it matters.
      auto reclaim_for_guarantee = [&](std::size_t c, std::size_t needed) {
        while (effective_free() < needed) {
          std::size_t best = running_.size();
          for (std::size_t j = 0; j < running_.size(); ++j) {
            if (running_[j].pinned) continue;
            const std::size_t jc = class_of(running_[j].trace_index);
            if (jc == c) continue;
            if (class_used_pages(jc) <= guaranteed_pages(jc)) continue;
            if (best == running_.size()) {
              best = j;
              continue;
            }
            const Request& rj = result_.requests[running_[j].trace_index];
            const Request& rb =
                result_.requests[running_[best].trace_index];
            const std::size_t bc = class_of(running_[best].trace_index);
            if (jc != bc) {
              if (jc > bc) best = j;
              continue;
            }
            // Shared-prefix pages survive the eviction (another resident
            // still holds them), so a mostly-shared victim reclaims almost
            // nothing: prefer the one holding fewer shared pages.
            {
              const std::size_t sj = shared_page_count(running_[j]);
              const std::size_t sb = shared_page_count(running_[best]);
              if (sj != sb) {
                if (sj < sb) best = j;
                continue;
              }
            }
            if (rj.priority != rb.priority) {
              if (rj.priority < rb.priority) best = j;
              continue;
            }
            if (rj.arrival_s > rb.arrival_s ||
                (rj.arrival_s == rb.arrival_s && rj.id > rb.id)) {
              best = j;
            }
          }
          if (best == running_.size()) break;  // nothing reclaimable
          reclaim_stall += preempt(running_[best]);
          running_.erase(running_.begin() +
                         static_cast<std::ptrdiff_t>(best));
        }
      };
      auto admit_one = [&](std::size_t c) -> bool {
        const std::size_t idx = waiting_[c].front();
        const Request& r = result_.requests[idx];
        // Radix hit: resident prefix pages attach for free, so the
        // request is charged (and reclaims, and reserves) only its novel
        // suffix — a cache-hit prompt is cheap to admit.
        const std::vector<PageId> matched =
            match_prefix(r, admit_bits, r.prompt_tokens);
        const std::size_t matched_tokens = matched.size() * d_.tpp_normal;
        const std::size_t suffix = r.prompt_tokens - matched_tokens;
        const std::size_t first_chunk = std::min(suffix + 1, d_.quantum);
        const std::size_t needed = pages_needed(first_chunk, admit_bits);
        if (class_aware_ && effective_free() < needed &&
            class_used_pages(c) + needed <= guaranteed_pages(c)) {
          reclaim_for_guarantee(c, needed);
        }
        if (!admission_allowed(c, needed)) return false;
        std::vector<PageId> pages;
        if (!try_alloc(needed, pages)) return false;  // injected failure
        for (const PageId pg : matched) attach_page(pg);
        pages.insert(pages.begin(), matched.begin(), matched.end());
        Request& mut = result_.requests[idx];
        if (admit_bits < d_.bits_normal) {
          ++result_.degraded_admissions;
          record_degrade_proxy();
        }
        mut.kv_bits_used = admit_bits;
        result_.min_kv_bits = std::min(result_.min_kv_bits, admit_bits);
        mut.prefix_hit_tokens = matched_tokens;
        if (matched_tokens > 0) {
          ++result_.prefix_hit_requests;
          result_.prefix_hit_tokens += matched_tokens;
        }
        running_.push_back({idx, matched_tokens, r.max_new_tokens, suffix,
                            std::move(pages), false, admit_bits});
        waiting_[c].pop_front();
        return true;
      };
      if (class_aware_) {
        for (std::size_t c = 0; c < kServiceClassCount; ++c) {
          while (!waiting_[c].empty() &&
                 running_.size() < config_.max_batch) {
            if (!admit_one(c)) break;
          }
        }
      } else {
        while (!waiting_empty() && running_.size() < config_.max_batch) {
          // Global arrival order across the per-class queues.
          std::size_t best = kServiceClassCount;
          for (std::size_t c = 0; c < kServiceClassCount; ++c) {
            if (waiting_[c].empty()) continue;
            if (best == kServiceClassCount) {
              best = c;
              continue;
            }
            const Request& rc = result_.requests[waiting_[c].front()];
            const Request& rb = result_.requests[waiting_[best].front()];
            if (rc.arrival_s < rb.arrival_s ||
                (rc.arrival_s == rb.arrival_s && rc.id < rb.id)) {
              best = c;
            }
          }
          if (!admit_one(best)) break;
        }
      }
      now_ += reclaim_stall;
      result_.swap_stall_s += reclaim_stall;
    }
    result_.peak_batch = std::max(result_.peak_batch, running_.size());

    if (running_.empty()) {
      // Idle: jump to the next event (arrival, backoff expiry or — so
      // timeouts are stamped when they happen — a deadline expiry). The
      // caller's horizon caps the jump: arrivals the router has not
      // submitted yet live exactly at the horizon, so a fleet replica
      // idles to the same instants the standalone engine would.
      double next_event = std::numeric_limits<double>::infinity();
      if (!pending_.empty()) {
        next_event = result_.requests[pending_.front()].arrival_s;
      }
      for (const Paused& p : paused_) {
        next_event = std::min(next_event, p.eligible_s);
      }
      if (config_.enforce_deadlines) {
        auto expiry_of = [&](const Request& r) {
          double e = std::numeric_limits<double>::infinity();
          if (r.ttft_deadline_s > 0.0 && r.first_token_s < 0.0) {
            e = r.arrival_s + r.ttft_deadline_s;
          }
          if (r.e2e_deadline_s > 0.0) {
            e = std::min(e, r.arrival_s + r.e2e_deadline_s);
          }
          // Step just past the expiry instant so the strict comparison
          // in deadline_expired() fires and the loop makes progress.
          return e + 2.0 * kDeadlineSlack;
        };
        for (const auto& queue : waiting_) {
          for (const std::size_t idx : queue) {
            next_event =
                std::min(next_event, expiry_of(result_.requests[idx]));
          }
        }
        for (const Paused& p : paused_) {
          next_event = std::min(next_event,
                                expiry_of(result_.requests[p.trace_index]));
        }
      }
      if (horizon_s > now_ && horizon_s < next_event) {
        next_event = horizon_s;
      }
      if (std::isfinite(next_event) && next_event > now_) {
        now_ = next_event;
        return true;
      }
      if (!waiting_empty()) {
        // Admission blocked with an empty machine: only injected
        // allocation faults can do this. Retry after a tick.
        now_ += config_.backoff_base_s;
        return true;
      }
      if (!paused_.empty() || !pending_.empty()) {
        now_ += config_.backoff_base_s;
        return true;
      }
      return false;  // nothing running, waiting, paused or pending
    }

    // --- Chunked prefill: one scheduler quantum of prompt tokens ---
    // FIFO across requests still mid-prefill (admission order), so an
    // earlier prompt finishes before a later one starts — except that the
    // class-aware policy serves higher tiers' chunks first (stable within
    // a tier), so an interactive prompt's TTFT is not queued behind batch
    // prefills that happen to be mid-flight. Each request stamps its own
    // prefill_start_s when its first chunk runs and its own first_token_s
    // when its last chunk completes — timestamps are never shared across
    // an admission round.
    {
      double stall = 0.0;
      bool degraded = false;
      std::vector<char> dead(running_.size(), 0);
      std::vector<std::size_t> order(running_.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      if (class_aware_) {
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return class_of(running_[a].trace_index) <
                                  class_of(running_[b].trace_index);
                         });
      }
      std::size_t budget = d_.quantum;
      for (std::size_t oi = 0; oi < order.size() && budget > 0; ++oi) {
        const std::size_t i = order[oi];
        if (dead[i] != 0) continue;
        if (running_[i].prompt_left == 0) continue;
        const std::size_t chunk =
            std::min(running_[i].prompt_left, budget);
        const bool last = chunk == running_[i].prompt_left;
        // The last chunk also backs the first generated token's slot.
        const std::size_t target =
            running_[i].context + chunk + (last ? 1 : 0);
        if (!ensure_pages(i, target, dead, stall, degraded)) continue;
        Running& ru = running_[i];
        Request& r = result_.requests[ru.trace_index];
        if (r.prefill_start_s < 0.0) r.prefill_start_s = now_;
        const double cost = chunk_cost(chunk, ru.context, ru.kv_bits);
        now_ += cost;
        result_.busy_s += cost;
        ru.context += chunk;
        ru.prompt_left -= chunk;
        budget -= chunk;
        result_.prefilled_tokens += chunk;
        if (ru.prompt_left > 0) continue;
        // Prompt complete: publish its full pages in the prefix index so
        // later prompts (next session turn, same system prompt) attach
        // instead of re-prefilling. First writer wins on chunks another
        // request already registered; degraded-precision pages pack a
        // different token count and are never published.
        if (!r.prompt_ids.empty() && ru.kv_bits == d_.bits_normal) {
          const std::size_t n_full =
              std::min({r.prompt_tokens / d_.tpp_normal,
                        r.prompt_ids.size() / d_.tpp_normal,
                        ru.pages.size()});
          radix_.insert(
              std::span<const std::int32_t>(r.prompt_ids.data(),
                                            n_full * d_.tpp_normal),
              std::span<const PageId>(ru.pages.data(), n_full));
        }
        // The prompt's last-position output is the first generated token.
        if (r.generated == 0 && ru.remaining > 0) {
          r.first_token_s = now_;
          r.generated = 1;
          ru.remaining -= 1;
          ru.context += 1;
        }
        if (ru.remaining == 0) {
          r.finish_s = now_;
          r.outcome = Outcome::kCompleted;
          release_all(ru.pages);
          ++finished_;
          dead[i] = 1;
        } else if (config_.role == EngineRole::kPrefillOnly) {
          // Disaggregated handoff: the prompt (and its first token) is
          // done, so this prefill worker lifts the request — KV stream
          // included, exactly what a drain would serialize — into the
          // handoff queue for the fleet router to land on a decode
          // replica. Accounting moves with it (drained_ flag, live
          // count, pages released), so the zero-leak and exactly-one-
          // terminal-state invariants keep holding here.
          MigratableRequest m;
          m.request = r;
          m.context = ru.context;
          m.remaining = ru.remaining;
          m.prompt_left = 0;
          m.kv_bits = ru.kv_bits;
          if (config_.preempt_mode == PreemptMode::kSwap &&
              ru.context > 0) {
            m.bytes = static_cast<double>(ru.pages.size()) * d_.page_bytes;
            m.has_stream = true;
          }
          m.ready_s = now_;
          release_all(ru.pages);
          drained_[ru.trace_index] = 1;
          --live_total_;
          ++result_.prefill_handoffs;
          prefilled_.push_back(std::move(m));
          dead[i] = 1;
        }
      }
      compact_running(dead);
      now_ += stall;
      result_.swap_stall_s += stall;
      if (degraded) ++result_.degraded_steps;
      result_.peak_kv_bytes = std::max(
          result_.peak_kv_bytes,
          static_cast<double>(allocator_.used_pages()) * d_.page_bytes);
      result_.peak_referenced_pages =
          std::max(result_.peak_referenced_pages, referenced_pages());
    }
    if (running_.empty()) return true;  // everyone finished or was evicted

    // --- Decode-step page growth; preemption is the backstop ---
    // Each decoding request about to append token `context + 1` may need
    // one more page; requests still mid-prefill grow with their cursor
    // instead. Injected allocation faults evict the request they hit (a
    // degraded step); genuine exhaustion evicts the class-aware victim
    // and retries.
    {
      double stall = 0.0;
      bool degraded = false;
      std::vector<char> dead(running_.size(), 0);
      for (std::size_t i = 0; i < running_.size(); ++i) {
        if (dead[i] != 0) continue;
        if (running_[i].prompt_left > 0) continue;
        ensure_pages(i, running_[i].context + 1, dead, stall, degraded);
      }
      compact_running(dead);
      now_ += stall;
      result_.swap_stall_s += stall;
      if (degraded) ++result_.degraded_steps;
    }
    if (running_.empty()) return true;  // everyone was evicted this step

    // One decode iteration across the decoding portion of the batch
    // (requests mid-prefill hold their batch slot but do not decode).
    // With mixed per-request precision the step is costed at the
    // context-weighted average stored bits — the batch's aggregate KV
    // traffic — so downshifted requests speed the whole step up.
    std::size_t decoders = 0;
    std::size_t max_context = 0;
    double bits_weight = 0.0;
    double context_weight = 0.0;
    for (const Running& ru : running_) {
      if (ru.prompt_left > 0) continue;
      ++decoders;
      max_context = std::max(max_context, ru.context);
      bits_weight += static_cast<double>(ru.context) * ru.kv_bits;
      context_weight += static_cast<double>(ru.context);
    }
    if (decoders == 0) return true;  // pure-prefill iteration
    sim::InferenceConfig dcfg;
    dcfg.method = config_.method;
    dcfg.attention = config_.attention;
    if (context_weight > 0.0) {
      dcfg.attention.kv_bits = bits_weight / context_weight;
    }
    dcfg.batch = decoders;
    dcfg.prompt = max_context;
    const double step_s = sim::decode_step_breakdown(
                              config_.device, config_.geometry, dcfg,
                              max_context)
                              .total();
    now_ += step_s;
    result_.busy_s += step_s;
    result_.peak_kv_bytes = std::max(
        result_.peak_kv_bytes,
        static_cast<double>(allocator_.used_pages()) * d_.page_bytes);
    result_.peak_referenced_pages =
        std::max(result_.peak_referenced_pages, referenced_pages());

    for (std::size_t i = 0; i < running_.size();) {
      Running& ru = running_[i];
      if (ru.prompt_left > 0) {
        ++i;
        continue;
      }
      Request& r = result_.requests[ru.trace_index];
      if (ru.remaining > 0) {
        if (r.generated == 0 && r.first_token_s < 0.0) {
          r.first_token_s = now_;  // degenerate zero-length-prompt path
        }
        ru.remaining -= 1;
        ru.context += 1;
        r.generated += 1;
      }
      if (ru.remaining == 0) {
        r.finish_s = now_;
        r.outcome = Outcome::kCompleted;
        release_all(ru.pages);
        ++finished_;
        // Stable erase: the chunk scheduler above is FIFO over this
        // vector's order, so removals must not reorder survivors.
        running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    return true;
  }

  std::vector<MigratableRequest> drain() {
    std::vector<MigratableRequest> out;
    auto lift = [&](std::size_t idx, std::size_t context,
                    std::size_t remaining, std::size_t prompt_left,
                    double kv_bits, bool has_stream, double bytes) {
      MigratableRequest m;
      m.request = result_.requests[idx];
      m.context = context;
      m.remaining = remaining;
      m.prompt_left = prompt_left;
      m.kv_bits = kv_bits;
      m.has_stream = has_stream;
      m.bytes = bytes;
      m.ready_s = now_;
      drained_[idx] = 1;
      --live_total_;
      out.push_back(std::move(m));
    };
    // Running requests: their resident KV is the migration payload. The
    // drain serializes it (phantom: byte counts) straight onto the wire,
    // so has_stream mirrors what a preemption swap-out would have parked.
    for (Running& ru : running_) {
      double bytes = 0.0;
      bool has_stream = false;
      if (config_.preempt_mode == PreemptMode::kSwap && ru.context > 0) {
        bytes = static_cast<double>(ru.pages.size()) * d_.page_bytes;
        has_stream = true;
      }
      release_all(ru.pages);
      lift(ru.trace_index, ru.context, ru.remaining, ru.prompt_left,
           ru.kv_bits, has_stream, bytes);
    }
    running_.clear();
    // Paused requests: a parked stream leaves the store with them.
    for (const Paused& p : paused_) {
      if (p.swapped) {
        swap_store_->erase(stream_key(result_.requests[p.trace_index].id));
      }
      lift(p.trace_index, p.context, p.remaining, p.prompt_left, p.kv_bits,
           p.swapped, p.bytes);
    }
    paused_.clear();
    // Waiting and not-yet-arrived requests have no KV: plain re-routes.
    for (auto& queue : waiting_) {
      for (const std::size_t idx : queue) {
        const Request& r = result_.requests[idx];
        lift(idx, 0, r.max_new_tokens, r.prompt_tokens, 0.0, false, 0.0);
      }
      queue.clear();
    }
    for (const std::size_t idx : pending_) {
      const Request& r = result_.requests[idx];
      if (r.outcome != Outcome::kPending) continue;  // rejected: terminal
      lift(idx, 0, r.max_new_tokens, r.prompt_tokens, 0.0, false, 0.0);
    }
    pending_.clear();
    // Finished prefills the router has not collected yet leave with the
    // drain: their accounting (drained_ flag, live count, pages) already
    // moved when they were lifted, so they only ride along.
    for (MigratableRequest& m : prefilled_) out.push_back(std::move(m));
    prefilled_.clear();
    // Unreferenced retained prefix pages are cache, not state: drop them
    // so the zero-leak check below sees a genuinely empty allocator.
    flush_retained();
    // Zero-leak invariants: a drained replica holds no pages and no
    // parked streams — nothing to leak when the router tears it down.
    TURBO_CHECK_MSG(allocator_.used_pages() == 0,
                    "drained replica leaked KV pages");
    if (swap_store_.has_value()) {
      TURBO_CHECK_MSG(swap_store_->count() == 0,
                      "drained replica leaked parked swap streams");
    }
    return out;
  }

  EngineResult finish() {
    result_.makespan_s = now_;
    result_.injected_alloc_failures = allocator_.injected_failures();
    result_.hit_time_limit = finished_ < live_total_;
    if (swap_store_.has_value()) {
      // No-leak invariant: every request reached exactly one terminal
      // state, and every terminal path (swap-in, unavailable-recompute,
      // timeout, checksum drop) erased its parked stream. Only the
      // max_sim_time_s safety stop may strand entries.
      if (!result_.hit_time_limit) {
        TURBO_CHECK_MSG(
            swap_store_->count() == 0,
            "terminal run left streams parked in the swap store");
      }
      for (std::size_t t = 0; t < swap_store_->tier_count(); ++t) {
        const TieredSwapStore::TierCounters& tc = swap_store_->counters(t);
        result_.tier_stats[t] = tc;
        result_.tier_blacklists += tc.blacklists;
        if (tc.stores > 0 || tc.demotions_in > 0) ++result_.swap_tiers_used;
      }
    }
    // Requests drained to another replica reach their terminal state
    // there; dropping them here keeps exactly-one-terminal-state across
    // the fleet union.
    bool any_drained = false;
    for (const char dflag : drained_) {
      if (dflag != 0) any_drained = true;
    }
    if (any_drained) {
      std::vector<Request> kept;
      kept.reserve(result_.requests.size());
      for (std::size_t i = 0; i < result_.requests.size(); ++i) {
        if (drained_[i] == 0) kept.push_back(std::move(result_.requests[i]));
      }
      result_.requests.swap(kept);
    }
    return std::move(result_);
  }

  std::vector<MigratableRequest> take_prefilled() {
    std::vector<MigratableRequest> out;
    out.swap(prefilled_);
    return out;
  }

  // Serialize every non-terminal request into `store` under this
  // replica's id. Pure observation: the snapshot is what drain() *would*
  // lift right now, captured without touching pages, queues or the clock
  // — which is exactly what makes it crash-consistent.
  void snapshot_to(SnapshotStore& store, FaultInjector* fault) {
    ReplicaSnapshot snap;
    snap.replica = config_.replica_id;
    snap.taken_at_s = now_;
    auto add = [&](const Request& r, std::size_t context,
                   std::size_t remaining, std::size_t prompt_left,
                   double kv_bits, double bytes) {
      SnapshotEntry e;
      e.request = r;
      e.context = context;
      e.remaining = remaining;
      e.prompt_left = prompt_left;
      e.kv_bits = kv_bits;
      e.bytes = bytes;
      snap.entries.push_back(std::move(e));
    };
    for (const Running& ru : running_) {
      double bytes = 0.0;
      if (config_.preempt_mode == PreemptMode::kSwap && ru.context > 0) {
        bytes = static_cast<double>(ru.pages.size()) * d_.page_bytes;
      }
      add(result_.requests[ru.trace_index], ru.context, ru.remaining,
          ru.prompt_left, ru.kv_bits, bytes);
    }
    for (const Paused& p : paused_) {
      add(result_.requests[p.trace_index], p.context, p.remaining,
          p.prompt_left, p.kv_bits, p.swapped ? p.bytes : 0.0);
    }
    for (const auto& queue : waiting_) {
      for (const std::size_t idx : queue) {
        const Request& r = result_.requests[idx];
        add(r, 0, r.max_new_tokens, r.prompt_tokens, 0.0, 0.0);
      }
    }
    for (const std::size_t idx : pending_) {
      const Request& r = result_.requests[idx];
      if (r.outcome != Outcome::kPending) continue;  // rejected: terminal
      add(r, 0, r.max_new_tokens, r.prompt_tokens, 0.0, 0.0);
    }
    for (const MigratableRequest& m : prefilled_) {
      add(m.request, m.context, m.remaining, m.prompt_left, m.kv_bits,
          m.has_stream ? m.bytes : 0.0);
    }
    const SnapshotStore::SaveOutcome so =
        store.save(config_.replica_id, snap, fault);
    if (so.stored) {
      ++result_.snapshots_written;
      result_.snapshot_bytes += so.bytes;
    }
  }

  // Warm-restart recovery ladder on a freshly constructed incarnation:
  // snapshot entry -> adopt with its stream (replay only the
  // post-snapshot delta); no entry -> recompute the whole crash-time
  // context from the prompt; snapshot entry with no lost request ->
  // dropped (it reached a terminal state, or migrated away, before the
  // crash — re-running it would mint a second terminal state).
  void restore_from(SnapshotStore& store,
                    const std::vector<MigratableRequest>& lost,
                    double restart_s, FaultInjector* fault) {
    TURBO_CHECK_MSG(live_total_ == 0,
                    "restore_from() on an engine already holding work");
    result_.replica_crashes = 1;
    now_ = std::max(now_, restart_s);
    const SnapshotStore::RestoreOutcome ro =
        store.restore(config_.replica_id, fault);
    // Ordered map so recovery scans deterministically (lint rule 8).
    std::map<std::uint64_t, const SnapshotEntry*> by_id;
    if (ro.status == SnapshotStore::RestoreStatus::kHit) {
      ++result_.snapshot_restores;
      for (const SnapshotEntry& e : ro.snapshot.entries) {
        by_id.emplace(e.request.id, &e);
      }
    } else if (ro.status == SnapshotStore::RestoreStatus::kCorrupt) {
      ++result_.snapshot_corruptions;
    }
    std::size_t entries_used = 0;
    for (const MigratableRequest& m : lost) {
      const auto it = by_id.find(m.request.id);
      if (it != by_id.end()) {
        // Snapshot hit: resume from the persisted state (stream and
        // all); only the progress between snapshot and crash replays.
        const SnapshotEntry& e = *it->second;
        ++entries_used;
        MigratableRequest r;
        r.request = e.request;
        r.context = e.context;
        r.remaining = e.remaining;
        r.prompt_left = e.prompt_left;
        r.kv_bits = e.kv_bits;
        r.has_stream = e.bytes > 0.0;
        r.bytes = e.bytes;
        r.ready_s = restart_s;
        adopt(r, restart_s, r.has_stream);
        ++result_.restored_requests;
        if (m.context > e.context) {
          result_.replayed_tokens += m.context - e.context;
        }
      } else if (m.context > 0) {
        // The snapshot predates this request (or failed its CRC): the
        // whole crash-time context recomputes from the prompt.
        adopt(m, restart_s, /*with_stream=*/false);
        ++result_.crash_recomputes;
        result_.replayed_tokens += m.context;
      } else {
        // Nothing was cached at the crash: a plain re-queue.
        adopt(m, restart_s, /*with_stream=*/false);
      }
    }
    result_.dedupe_drops += ro.snapshot.entries.size() - entries_used;
  }

  double now() const { return now_; }
  bool done() const { return finished_ >= live_total_; }
  bool has_work() const { return finished_ < live_total_; }
  std::size_t used_pages() const { return allocator_.used_pages(); }
  std::size_t live() const { return live_total_ - finished_; }
  std::size_t total_pages() const { return d_.page_count; }
  // Pages live sequences actually reference (retained pages excluded):
  // the occupancy eviction cannot lower, which is what the pressure
  // controller, the bench's peak-occupancy claim and the fleet's decode
  // watermark must see.
  std::size_t referenced_pages() const {
    return allocator_.used_pages() - retained_.size();
  }
  std::size_t prefix_match_tokens(const Request& r) const {
    return match_prefix(r, d_.bits_normal, r.prompt_tokens).size() *
           d_.tpp_normal;
  }

  void advance_to(double t) {
    TURBO_CHECK_MSG(running_.empty(),
                    "advance_to() with work still running");
    now_ = std::max(now_, t);
  }

 private:
  std::uint64_t stream_key(std::uint64_t id) const {
    return swap_stream_key(config_.replica_id, id);
  }

  std::size_t pages_needed(std::size_t tokens, double bits) const {
    const std::size_t tpp =
        bits == d_.bits_normal ? d_.tpp_normal : d_.tpp_degraded;
    return (tokens + tpp - 1) / tpp;
  }

  std::size_t class_of(std::size_t idx) const {
    return static_cast<std::size_t>(result_.requests[idx].service_class);
  }

  bool waiting_empty() const {
    for (const auto& q : waiting_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  double current_bits() const {
    return ladder_level_ >= kLevelDownshift ? d_.bits_degraded
                                            : d_.bits_normal;
  }

  // Accuracy proxy for the downshifted precision: round-trip RMSE of the
  // two-stage progressive quantizer on a synthetic Gaussian KV block,
  // computed once on first downshift (src/quant/error.h).
  void record_degrade_proxy() {
    if (result_.degrade_rmse_proxy != 0.0) return;
    const int b =
        std::clamp(static_cast<int>(std::lround(d_.bits_degraded)), 2, 4);
    MatrixF sample(128,
                   std::max<std::size_t>(config_.geometry.head_dim, 16));
    Rng rng(0xACC);
    for (std::size_t r = 0; r < sample.rows(); ++r) {
      rng.fill_normal(sample.row(r), 0.0, 1.0);
    }
    result_.degrade_rmse_proxy =
        progressive_quant_rmse(sample, bit_width_from_int(b), 64);
  }

  // Cost of prefilling a `chunk`-token slice with `cached` tokens already
  // resident (stored at `bits`): attention spans cached + chunk, GEMMs
  // cover the chunk only.
  double chunk_cost(std::size_t chunk, std::size_t cached,
                    double bits) const {
    sim::InferenceConfig pcfg;
    pcfg.method = config_.method;
    pcfg.attention = config_.attention;
    pcfg.attention.kv_bits = bits;
    pcfg.batch = 1;
    pcfg.prompt = chunk;
    return sim::chunk_prefill_breakdown(config_.device, config_.geometry,
                                        pcfg, cached)
        .total();
  }
  // Monolithic prefill over `tokens` (recompute of evicted context).
  double prefill_cost(std::size_t tokens, double bits) const {
    return chunk_cost(tokens, 0, bits);
  }

  // Free pages plus the reclaimable retained pool — what admission and
  // guarantee reclaim may actually count on.
  std::size_t effective_free() const {
    return allocator_.free_pages() + retained_.size();
  }

  // Evict one retained page from the prefix index and free it, cascading
  // its now-unreachable radix subtree. Descendant pages still referenced
  // by live requests stay allocated (they merely become unindexed);
  // descendant pages that were themselves retained free with it.
  void reclaim_retained_page(PageId page) {
    for (const PageId q : radix_.erase_page(page)) {
      const auto it = retained_.find(q);
      if (it == retained_.end()) continue;
      retained_.erase(it);
      allocator_.release(q);
      ++result_.retained_pages_reclaimed;
    }
  }
  void flush_retained() {
    while (!retained_.empty()) {
      reclaim_retained_page(retained_.begin()->first);
    }
  }

  // Allocate one page (ref == 1). On genuine exhaustion the retained pool
  // is reclaimed least-recently-retained first and the allocation
  // retried; injected failures are returned to the caller unchanged (the
  // fault hit this attempt, retained pages notwithstanding). With an
  // empty pool this is exactly one allocator call — the legacy fault-draw
  // sequence.
  PageId alloc_page() {
    while (true) {
      const std::size_t injected_before = allocator_.injected_failures();
      const PageId p = allocator_.allocate();
      if (p != kInvalidPage) {
        page_ref_[p] = 1;
        return p;
      }
      if (allocator_.injected_failures() > injected_before) {
        return kInvalidPage;
      }
      if (retained_.empty()) return kInvalidPage;
      auto lru = retained_.begin();
      for (auto it = retained_.begin(); it != retained_.end(); ++it) {
        if (it->second < lru->second) lru = it;
      }
      reclaim_retained_page(lru->first);
    }
  }

  // Drop one reference. The last reference parks registered pages in the
  // retained pool (still attachable through the index) and frees
  // unregistered ones.
  void unref_page(PageId page) {
    TURBO_DCHECK(page_ref_[page] > 0);
    if (--page_ref_[page] > 0) return;
    if (radix_.has_page(page)) {
      retained_.emplace(page, retained_touch_++);
    } else {
      allocator_.release(page);
    }
  }

  // Attach an indexed page by refcount bump (the CoW fork path): retained
  // pages leave the pool, referenced pages gain a reference.
  void attach_page(PageId page) {
    if (page_ref_[page] == 0) retained_.erase(page);
    ++page_ref_[page];
    ++result_.prefix_pages_attached;
  }

  // Allocate `n` pages or none (failed attempts roll back).
  bool try_alloc(std::size_t n, std::vector<PageId>& out) {
    for (std::size_t i = 0; i < n; ++i) {
      const PageId p = alloc_page();
      if (p == kInvalidPage) {
        while (!out.empty()) {
          unref_page(out.back());
          out.pop_back();
        }
        return false;
      }
      out.push_back(p);
    }
    return true;
  }

  void release_all(std::vector<PageId>& pages) {
    for (const PageId p : pages) unref_page(p);
    pages.clear();
  }

  // Longest resident whole-page prefix of `r`'s prompt ids, capped so at
  // least one prompt token is always left to prefill (the last-chunk
  // path stamps first_token_s) and to `cap_tokens`. Empty for legacy
  // requests and away from the configured precision (pages pack
  // tpp_normal tokens; a degraded admission must not adopt them).
  std::vector<PageId> match_prefix(const Request& r, double bits,
                                   std::size_t cap_tokens) const {
    if (r.prompt_ids.empty() || bits != d_.bits_normal) return {};
    std::size_t limit = std::min(r.prompt_ids.size(), r.prompt_tokens);
    if (limit > 0) limit -= 1;  // never attach the whole prompt
    limit = std::min(limit, cap_tokens);
    std::vector<PageId> matched = radix_.match(
        std::span<const std::int32_t>(r.prompt_ids.data(), r.prompt_ids.size())
            .first(limit));
    return matched;
  }

  // Pages of `ru` referenced by somebody else too — evicting them frees
  // nothing.
  std::size_t shared_page_count(const Running& ru) const {
    std::size_t n = 0;
    for (const PageId p : ru.pages) {
      if (page_ref_[p] > 1) ++n;
    }
    return n;
  }

  // Bounded exponential backoff with deterministic seeded jitter: victims
  // evicted in the same round (equal backoff) get distinct re-admission
  // times keyed by (jitter_seed, request id, eviction count), so they do
  // not stampede one re-admission pass. Jitter stretches the delay by at
  // most `backoff_jitter`; it never shortens it, so the cap still bounds
  // the un-jittered wait.
  double backoff_for(const Request& r) const {
    const std::size_t n = r.preemptions;
    const std::size_t exp = std::min<std::size_t>(n > 0 ? n - 1 : 0, 16);
    double delay =
        std::min(config_.backoff_cap_s,
                 config_.backoff_base_s *
                     static_cast<double>(std::size_t{1} << exp));
    if (config_.backoff_jitter > 0.0) {
      const std::uint64_t h = splitmix64(
          config_.jitter_seed ^ splitmix64(r.id * 0x100000001b3ull + n));
      const double u =
          static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
      delay *= 1.0 + config_.backoff_jitter * u;
    }
    return delay;
  }

  // Evict `victim`: swap its pages to the host store (PCIe cost) or drop
  // them for recomputation. A victim with nothing cached yet (preempted
  // before its first chunk) has nothing to swap and is simply dropped.
  // Returns the transfer stall incurred.
  //
  // CoW safety: the leading run of shared/registered pages is neither
  // serialized nor freed — other residents (or the retained pool) keep
  // those pages, and re-admission re-attaches them through the index. A
  // swapped stream therefore covers only the victim's private tokens.
  double preempt(Running& victim) {
    Request& r = result_.requests[victim.trace_index];
    ++result_.preemptions;
    ++r.preemptions;
    result_.max_preemptions_single_request =
        std::max(result_.max_preemptions_single_request, r.preemptions);
    Paused p{victim.trace_index, victim.context,
             victim.remaining,   victim.prompt_left,
             now_ + backoff_for(r), false,
             0.0,                victim.kv_bits};
    // Leading indexed pages are the re-attachable prefix; everything
    // after the first unindexed page is this victim's private state.
    std::size_t kept = 0;
    while (kept < victim.pages.size() &&
           radix_.has_page(victim.pages[kept])) {
      ++kept;
    }
    const std::size_t private_pages = victim.pages.size() - kept;
    p.prefix_tokens = std::min(kept * d_.tpp_normal, victim.context);
    double stall = 0.0;
    if (config_.preempt_mode == PreemptMode::kSwap) {
      // A victim with nothing cached yet (evicted before its first
      // prefill chunk) — or whose whole cached state lives in shared
      // prefix pages — has no stream to move: zero-cost "swap".
      if (victim.context > p.prefix_tokens && private_pages > 0) {
        const double bytes =
            static_cast<double>(private_pages) * d_.page_bytes;
        const TieredSwapStore::StoreOutcome so = swap_store_->store_phantom(
            stream_key(r.id), static_cast<std::size_t>(bytes), iteration_,
            now_, &fault_);
        if (so.stored) {
          ++result_.preempted_swap;
          p.swapped = true;
          p.bytes = bytes;
          result_.swap_out_bytes += p.bytes;
          stall = so.transfer_s;
          result_.tier_demotions += so.demotions;
        } else {
          // Every tier full or unreachable: the stream has nowhere to
          // go, so this victim degrades to recompute-on-re-admission.
          ++result_.preempted_recompute;
          ++result_.swap_overflow_recomputes;
        }
      } else {
        ++result_.preempted_swap;
      }
    } else {
      ++result_.preempted_recompute;
    }
    release_all(victim.pages);
    paused_.push_back(p);
    return stall;
  }

  // Preemption victim among alive running requests: non-pinned first;
  // then (class-aware) the lowest service class — batch evicted before
  // standard before interactive; then lowest Request::priority; then
  // latest arrival. Returns running_.size() when nothing is eligible.
  std::size_t pick_victim(const std::vector<char>& dead) const {
    std::size_t best = running_.size();
    for (std::size_t j = 0; j < running_.size(); ++j) {
      if (dead[j] != 0) continue;
      if (best == running_.size()) {
        best = j;
        continue;
      }
      const Request& r = result_.requests[running_[j].trace_index];
      const Request& b = result_.requests[running_[best].trace_index];
      if (running_[j].pinned != running_[best].pinned) {
        if (!running_[j].pinned) best = j;
        continue;
      }
      if (class_aware_ && r.service_class != b.service_class) {
        if (static_cast<int>(r.service_class) >
            static_cast<int>(b.service_class)) {
          best = j;  // lower tier (higher enum value) evicted first
        }
        continue;
      }
      // Prefer victims holding fewer shared pages: evicting a request
      // whose state is mostly shared prefix frees almost nothing.
      {
        const std::size_t sj = shared_page_count(running_[j]);
        const std::size_t sb = shared_page_count(running_[best]);
        if (sj != sb) {
          if (sj < sb) best = j;
          continue;
        }
      }
      if (r.priority != b.priority) {
        if (r.priority < b.priority) best = j;
        continue;
      }
      if (r.arrival_s > b.arrival_s ||
          (r.arrival_s == b.arrival_s && r.id > b.id)) {
        best = j;
      }
    }
    return best;
  }

  // Grow running_[i]'s page list until it backs `target` tokens, evicting
  // victims on genuine exhaustion. An injected allocation fault evicts
  // running_[i] itself (a degraded step). Returns false when running_[i]
  // was evicted (its dead[] slot is set).
  bool ensure_pages(std::size_t i, std::size_t target,
                    std::vector<char>& dead, double& stall,
                    bool& degraded) {
    while (running_[i].pages.size() <
           pages_needed(target, running_[i].kv_bits)) {
      const std::size_t injected_before = allocator_.injected_failures();
      const PageId page = alloc_page();
      if (page != kInvalidPage) {
        running_[i].pages.push_back(page);
        continue;
      }
      if (allocator_.injected_failures() > injected_before) {
        // The fault hit this request's allocation: it is the victim.
        stall += preempt(running_[i]);
        dead[i] = 1;
        degraded = true;
        return false;
      }
      const std::size_t v = pick_victim(dead);
      TURBO_CHECK_MSG(v < running_.size(),
                      "page exhaustion with no evictable request");
      stall += preempt(running_[v]);
      dead[v] = 1;
      if (v == i) return false;  // evicted itself; no page needed
    }
    return true;
  }

  void compact_running(std::vector<char>& dead) {
    std::vector<Running> alive;
    alive.reserve(running_.size());
    for (std::size_t i = 0; i < running_.size(); ++i) {
      if (dead[i] == 0) alive.push_back(std::move(running_[i]));
    }
    running_.swap(alive);
  }

  // A request has irrecoverably missed a deadline: its TTFT deadline
  // passed with no first token, or its e2e deadline passed unfinished.
  bool deadline_expired(const Request& r) const {
    if (!config_.enforce_deadlines) return false;
    if (r.ttft_deadline_s > 0.0 && r.first_token_s < 0.0 &&
        now_ > r.arrival_s + r.ttft_deadline_s + kDeadlineSlack) {
      return true;
    }
    if (r.e2e_deadline_s > 0.0 &&
        now_ > r.arrival_s + r.e2e_deadline_s + kDeadlineSlack) {
      return true;
    }
    return false;
  }
  void time_out(Request& r) {
    r.finish_s = now_;
    r.outcome = Outcome::kTimedOut;
    ++result_.timed_out;
    ++finished_;
  }

  // Pin threshold for a request's class (0 in ClassPolicy = inherit the
  // engine-wide default).
  std::size_t pin_threshold(std::size_t idx) const {
    const std::size_t per_class =
        config_.classes[class_of(idx)].pin_after_preemptions;
    return per_class > 0 ? per_class : config_.pin_after_preemptions;
  }

  // Pages currently *charged* to running requests of a class (swapped-out
  // requests hold none). Only privately-referenced pages (ref == 1) are
  // billed: a shared prefix page is charged to nobody, because evicting
  // any single resident would not free it — billing it to each resident
  // would overcharge every one of them against the class share.
  std::size_t class_used_pages(std::size_t c) const {
    std::size_t used = 0;
    for (const Running& ru : running_) {
      if (class_of(ru.trace_index) != c) continue;
      for (const PageId p : ru.pages) {
        if (page_ref_[p] == 1) ++used;
      }
    }
    return used;
  }
  std::size_t guaranteed_pages(std::size_t c) const {
    return static_cast<std::size_t>(config_.classes[c].page_share *
                                    static_cast<double>(d_.page_count));
  }
  // A class has demand when it has waiting or paused requests — its
  // unmet guarantee is then protected from borrowing by other classes.
  bool class_has_demand(std::size_t c) const {
    if (!waiting_[c].empty()) return true;
    for (const Paused& p : paused_) {
      if (class_of(p.trace_index) == c) return true;
    }
    return false;
  }

  // Can a fresh request of class `c` take `needed` pages right now?
  // Within its guaranteed share a class bypasses the admit reserve;
  // borrowing beyond it must leave the reserve plus every other
  // demanding class's unmet guarantee free (work-conserving quotas).
  bool admission_allowed(std::size_t c, std::size_t needed) const {
    const std::size_t free = effective_free();
    const std::size_t reserve = running_.empty() ? 0 : d_.reserve_pages;
    if (!class_aware_) return free >= needed + reserve;
    if (class_used_pages(c) + needed <= guaranteed_pages(c)) {
      return free >= needed;
    }
    std::size_t protected_deficit = 0;
    for (std::size_t dc = 0; dc < kServiceClassCount; ++dc) {
      if (dc == c || !class_has_demand(dc)) continue;
      const std::size_t used = class_used_pages(dc);
      const std::size_t guaranteed = guaranteed_pages(dc);
      if (used < guaranteed) protected_deficit += guaranteed - used;
    }
    return free >= needed + reserve + protected_deficit;
  }

  EngineConfig config_;
  DerivedConfig d_;
  PageAllocator allocator_;
  // Prefix index over phantom pages (the engine tracks page *counts*, not
  // KV payloads; the byte-level twin of this machinery lives in
  // PagedKvCache). Pages indexed here are shareable across requests.
  RadixIndex radix_;
  // Uniform per-page reference counts, indexed by PageId. Every allocated
  // page has ref >= 1 except retained pages (ref == 0, parked below).
  std::vector<std::uint32_t> page_ref_;
  // Registered pages whose last reference died, parked for re-attachment
  // instead of freed: page -> retention order (the LRU clock). An ordered
  // map so reclaim scans deterministically (lint rule 8).
  std::map<PageId, std::size_t> retained_;
  std::size_t retained_touch_ = 0;
  FaultInjector fault_;
  std::optional<TieredSwapStore> swap_store_;
  EngineResult result_;
  // Per-request flags, parallel to result_.requests: 1 = drained to
  // another replica (excluded from finish()).
  std::vector<char> drained_;

  bool class_aware_ = false;
  // Per-class waiting queues (FIFO within a class). Under kFifo the three
  // queues are drained strictly in global arrival order.
  std::array<std::deque<std::size_t>, kServiceClassCount> waiting_;
  std::vector<Running> running_;
  std::vector<Paused> paused_;
  // Finished prefills awaiting router pickup (EngineRole::kPrefillOnly):
  // lifted out of the scheduler — pages released, accounting moved — but
  // not yet landed on a decode replica.
  std::vector<MigratableRequest> prefilled_;
  // Submitted requests whose arrival time is still in the future (plus
  // already-terminal rejected entries, kept so idle jumps land on the
  // same arrival instants as the monolithic loop).
  std::deque<std::size_t> pending_;
  std::size_t live_total_ = 0;   // submitted + adopted - drained
  std::size_t finished_ = 0;     // reached a terminal state here
  double now_ = 0.0;
  // Engine iteration counter: the LRU clock for the tiered swap store
  // (last-touch recency of parked streams).
  std::size_t iteration_ = 0;

  // --- Pressure controller (degradation ladder) state ---------------------
  std::size_t ladder_level_ = kLevelNormal;
  std::deque<double> occupancy_window_;
  std::size_t iters_since_level_change_ = 0;
};

Engine::Engine(const EngineConfig& config)
    : impl_(std::make_unique<EngineImpl>(config)) {}
Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

void Engine::submit(const Request& r) { impl_->submit(r); }
void Engine::adopt(const MigratableRequest& m, double eligible_s,
                   bool with_stream) {
  impl_->adopt(m, eligible_s, with_stream);
}
bool Engine::step(double horizon_s) { return impl_->step(horizon_s); }
std::vector<MigratableRequest> Engine::drain() { return impl_->drain(); }
std::vector<MigratableRequest> Engine::take_prefilled() {
  return impl_->take_prefilled();
}
void Engine::snapshot_to(SnapshotStore& store, FaultInjector* fault) {
  impl_->snapshot_to(store, fault);
}
void Engine::restore_from(SnapshotStore& store,
                          const std::vector<MigratableRequest>& lost,
                          double restart_s, FaultInjector* fault) {
  impl_->restore_from(store, lost, restart_s, fault);
}
EngineResult Engine::finish() { return impl_->finish(); }
double Engine::now() const { return impl_->now(); }
bool Engine::done() const { return impl_->done(); }
bool Engine::has_work() const { return impl_->has_work(); }
std::size_t Engine::used_pages() const { return impl_->used_pages(); }
std::size_t Engine::live() const { return impl_->live(); }
std::size_t Engine::total_pages() const { return impl_->total_pages(); }
std::size_t Engine::referenced_pages() const {
  return impl_->referenced_pages();
}
std::size_t Engine::prefix_match_tokens(const Request& r) const {
  return impl_->prefix_match_tokens(r);
}
void Engine::advance_to(double t) { impl_->advance_to(t); }

EngineResult run_engine(const EngineConfig& config,
                        std::vector<Request> trace) {
  std::sort(trace.begin(), trace.end(),
            [](const Request& a, const Request& b) {
              return a.arrival_s < b.arrival_s;
            });
  Engine engine(config);
  for (const Request& r : trace) engine.submit(r);
  while (!engine.done() && engine.now() < config.max_sim_time_s) {
    if (!engine.step(std::numeric_limits<double>::infinity())) break;
  }
  return engine.finish();
}

}  // namespace turbo::serving
