#include "serving/engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/check.h"
#include "kvcache/page_allocator.h"
#include "serving/swap.h"

namespace turbo::serving {

namespace {

struct Running {
  std::size_t trace_index;
  std::size_t context;        // tokens currently cached
  std::size_t remaining;      // tokens still to generate
  std::size_t prompt_left;    // prompt tokens not yet prefilled (cursor)
  std::vector<PageId> pages;  // pages backing `context` (+ growth slack)
  bool pinned = false;        // protected from further victimization
};

// A preempted request waiting out its backoff before re-admission.
struct Paused {
  std::size_t trace_index;
  std::size_t context;      // tokens to restore (prefilled + generated)
  std::size_t remaining;
  std::size_t prompt_left;  // prefill cursor survives preemption
  double eligible_s;        // earliest re-admission time
  bool swapped;             // true: pages parked in the host store
  double bytes;             // swapped stream size (0 for recompute)
};

}  // namespace

EngineResult run_engine(const EngineConfig& config,
                        std::vector<Request> trace) {
  std::sort(trace.begin(), trace.end(),
            [](const Request& a, const Request& b) {
              return a.arrival_s < b.arrival_s;
            });

  const double kv_per_token = sim::kv_cache_bytes_per_token(
      config.method, config.attention, config.geometry.kv_heads,
      config.geometry.head_dim) *
      static_cast<double>(config.geometry.layers);
  const double kv_budget =
      config.device.hbm_capacity * config.memory_headroom -
      config.geometry.weight_bytes_fp16();
  TURBO_CHECK_MSG(kv_budget > 0.0, "weights alone exceed device memory");
  TURBO_CHECK(config.page_tokens > 0);
  TURBO_CHECK(config.backoff_base_s > 0.0);
  TURBO_CHECK(config.backoff_cap_s >= config.backoff_base_s);
  TURBO_CHECK(config.admit_reserve >= 0.0 && config.admit_reserve < 1.0);

  // Scheduler quantum: at most this many prompt tokens prefill per
  // iteration. 0 = monolithic (a whole prompt is one chunk).
  const std::size_t quantum =
      config.prefill_chunk_tokens == 0
          ? std::numeric_limits<std::size_t>::max()
          : config.prefill_chunk_tokens;

  // KV memory as fixed-size pages through a real allocator, so that page
  // exhaustion and injected allocation faults surface exactly where a
  // paged serving system would see them.
  const double page_bytes =
      static_cast<double>(config.page_tokens) * kv_per_token;
  const std::size_t page_count =
      static_cast<std::size_t>(kv_budget / page_bytes);
  TURBO_CHECK_MSG(page_count > 0, "KV budget smaller than one page");
  PageAllocator allocator(page_count);
  FaultInjector fault(config.faults);
  allocator.set_fault_injector(&fault);

  EngineResult result;
  result.requests = trace;

  const std::size_t pt = config.page_tokens;
  auto pages_needed = [pt](std::size_t tokens) {
    return (tokens + pt - 1) / pt;
  };

  // Reject requests that could never fit even with the machine to
  // themselves. Everything else is guaranteed schedulable.
  for (Request& r : result.requests) {
    if (pages_needed(r.prompt_tokens + r.max_new_tokens) > page_count) {
      r.finish_s = r.arrival_s;  // degenerate: immediately rejected
      ++result.rejected;
    }
  }

  const std::size_t total = result.requests.size();
  std::size_t finished = result.rejected;

  std::deque<std::size_t> waiting;  // indices into result.requests
  std::vector<Running> running;
  std::vector<Paused> paused;
  std::size_t next_arrival = 0;
  double now = 0.0;

  // Cost of prefilling a `chunk`-token slice with `cached` tokens already
  // resident: attention spans cached + chunk, GEMMs cover the chunk only.
  auto chunk_cost = [&](std::size_t chunk, std::size_t cached) {
    sim::InferenceConfig pcfg;
    pcfg.method = config.method;
    pcfg.attention = config.attention;
    pcfg.batch = 1;
    pcfg.prompt = chunk;
    return sim::chunk_prefill_breakdown(config.device, config.geometry,
                                        pcfg, cached)
        .total();
  };
  // Monolithic prefill over `tokens` (recompute of evicted context).
  auto prefill_cost = [&](std::size_t tokens) {
    return chunk_cost(tokens, 0);
  };

  // Allocate `n` pages or none (failed attempts roll back).
  auto try_alloc = [&](std::size_t n, std::vector<PageId>& out) {
    for (std::size_t i = 0; i < n; ++i) {
      const PageId p = allocator.allocate();
      if (p == kInvalidPage) {
        while (!out.empty()) {
          allocator.release(out.back());
          out.pop_back();
        }
        return false;
      }
      out.push_back(p);
    }
    return true;
  };

  auto release_all = [&](std::vector<PageId>& pages) {
    for (const PageId p : pages) allocator.release(p);
    pages.clear();
  };

  auto backoff_for = [&](std::size_t preempt_count) {
    const std::size_t exp =
        std::min<std::size_t>(preempt_count > 0 ? preempt_count - 1 : 0, 16);
    return std::min(config.backoff_cap_s,
                    config.backoff_base_s *
                        static_cast<double>(std::size_t{1} << exp));
  };

  // Evict running[j]: swap its pages to the host store (PCIe cost) or
  // drop them for recomputation. A victim with nothing cached yet
  // (preempted before its first chunk) has nothing to swap and is simply
  // dropped. Returns the transfer stall incurred.
  auto preempt = [&](Running& victim) {
    Request& r = result.requests[victim.trace_index];
    ++result.preemptions;
    ++r.preemptions;
    result.max_preemptions_single_request =
        std::max(result.max_preemptions_single_request, r.preemptions);
    Paused p{victim.trace_index, victim.context,     victim.remaining,
             victim.prompt_left, now + backoff_for(r.preemptions),
             false,              0.0};
    double stall = 0.0;
    if (config.preempt_mode == PreemptMode::kSwap) {
      ++result.preempted_swap;
      // A victim with nothing cached yet (evicted before its first
      // prefill chunk) has no stream to move: zero-cost "swap".
      if (victim.context > 0) {
        p.swapped = true;
        p.bytes = static_cast<double>(victim.pages.size()) * page_bytes;
        result.swap_out_bytes += p.bytes;
        stall = swap_transfer_seconds(p.bytes, config.device,
                                      fault.swap_latency_multiplier());
      }
    } else {
      ++result.preempted_recompute;
    }
    release_all(victim.pages);
    paused.push_back(p);
    return stall;
  };

  // Lowest-priority victim among alive running requests: non-pinned
  // first; then lowest Request::priority; then latest arrival. Returns
  // running.size() when nothing is eligible (running all dead).
  auto pick_victim = [&](const std::vector<char>& dead) {
    std::size_t best = running.size();
    bool best_pinned = true;
    for (std::size_t j = 0; j < running.size(); ++j) {
      if (dead[j] != 0) continue;
      const Request& r = result.requests[running[j].trace_index];
      if (best == running.size()) {
        best = j;
        best_pinned = running[j].pinned;
        continue;
      }
      const Request& b = result.requests[running[best].trace_index];
      const bool j_pinned = running[j].pinned;
      if (j_pinned != best_pinned) {
        if (!j_pinned) {
          best = j;
          best_pinned = false;
        }
        continue;
      }
      if (r.priority != b.priority) {
        if (r.priority < b.priority) best = j;
        continue;
      }
      if (r.arrival_s > b.arrival_s ||
          (r.arrival_s == b.arrival_s && r.id > b.id)) {
        best = j;
      }
    }
    return best;
  };

  // Grow running[i]'s page list until it backs `target` tokens, evicting
  // victims on genuine exhaustion. An injected allocation fault evicts
  // running[i] itself (a degraded step). Returns false when running[i]
  // was evicted (its dead[] slot is set).
  auto ensure_pages = [&](std::size_t i, std::size_t target,
                          std::vector<char>& dead, double& stall,
                          bool& degraded) {
    while (running[i].pages.size() < pages_needed(target)) {
      const std::size_t injected_before = allocator.injected_failures();
      const PageId page = allocator.allocate();
      if (page != kInvalidPage) {
        running[i].pages.push_back(page);
        continue;
      }
      if (allocator.injected_failures() > injected_before) {
        // The fault hit this request's allocation: it is the victim.
        stall += preempt(running[i]);
        dead[i] = 1;
        degraded = true;
        return false;
      }
      const std::size_t v = pick_victim(dead);
      TURBO_CHECK_MSG(v < running.size(),
                      "page exhaustion with no evictable request");
      stall += preempt(running[v]);
      dead[v] = 1;
      if (v == i) return false;  // evicted itself; no page needed
    }
    return true;
  };

  auto compact_running = [&](std::vector<char>& dead) {
    std::vector<Running> alive;
    alive.reserve(running.size());
    for (std::size_t i = 0; i < running.size(); ++i) {
      if (dead[i] == 0) alive.push_back(std::move(running[i]));
    }
    running.swap(alive);
  };

  while (finished < total && now < config.max_sim_time_s) {
    // Pull arrivals whose time has come.
    while (next_arrival < total &&
           result.requests[next_arrival].arrival_s <= now) {
      if (result.requests[next_arrival].finish_s < 0.0) {
        waiting.push_back(next_arrival);
      }
      ++next_arrival;
    }

    // --- Re-admission of preempted requests (before fresh arrivals) ---
    // Order: higher priority first, then earlier arrival. No overtaking:
    // the first re-admission that cannot get pages ends the pass, which
    // keeps the backoff queue fair.
    double admit_latency = 0.0;
    std::sort(paused.begin(), paused.end(),
              [&](const Paused& a, const Paused& b) {
                const Request& ra = result.requests[a.trace_index];
                const Request& rb = result.requests[b.trace_index];
                if (ra.priority != rb.priority) {
                  return ra.priority > rb.priority;
                }
                if (ra.arrival_s != rb.arrival_s) {
                  return ra.arrival_s < rb.arrival_s;
                }
                return ra.id < rb.id;
              });
    for (std::size_t pi = 0; pi < paused.size();) {
      Paused& p = paused[pi];
      if (p.eligible_s > now || running.size() >= config.max_batch) {
        ++pi;
        continue;
      }
      std::vector<PageId> pages;
      if (!try_alloc(pages_needed(p.context + 1), pages)) {
        p.eligible_s = now + config.backoff_base_s;  // retry tick
        break;                                       // no overtaking
      }
      Request& r = result.requests[p.trace_index];
      if (p.swapped) {
        const double dt = swap_transfer_seconds(
            p.bytes, config.device, fault.swap_latency_multiplier());
        admit_latency += dt;
        result.swap_stall_s += dt;
        result.swap_in_bytes += p.bytes;
        if (fault.corrupt_stream()) {
          // The swapped stream fails its CRC on the way back in. The
          // pages cannot be adopted — recover by recomputing them.
          ++result.checksum_failures;
          const double cost = prefill_cost(p.context);
          admit_latency += cost;
          result.busy_s += cost;
          r.recomputed_tokens += p.context;
          result.recomputed_tokens += p.context;
          ++result.recoveries;
        } else {
          ++result.swap_ins;
        }
      } else if (p.context > 0) {
        // Recompute mode: re-derive the evicted KV with a fresh prefill
        // over everything that was cached (prompt prefix + generated).
        const double cost = prefill_cost(p.context);
        admit_latency += cost;
        result.busy_s += cost;
        r.recomputed_tokens += p.context;
        result.recomputed_tokens += p.context;
      }
      // A partially-prefilled victim resumes from its cursor: the chunk
      // loop below continues with p.prompt_left tokens still to go.
      running.push_back(
          {p.trace_index, p.context, p.remaining, p.prompt_left,
           std::move(pages), r.preemptions >= config.pin_after_preemptions});
      paused.erase(paused.begin() + static_cast<std::ptrdiff_t>(pi));
    }
    now += admit_latency;

    // --- Fresh admission: FIFO while pages and the batch cap allow ---
    // Optimistic and chunk-aware: a request needs only its first chunk's
    // pages to start (the prefill cursor allocates the rest as it
    // advances); decode growth is backed by preemption. Fresh admissions
    // leave `admit_reserve` of the pool free for that growth — except
    // when the batch is empty, where head-of-line blocking would stall
    // the engine outright.
    const std::size_t reserve_pages = static_cast<std::size_t>(
        static_cast<double>(page_count) * config.admit_reserve);
    while (!waiting.empty() && running.size() < config.max_batch) {
      const std::size_t idx = waiting.front();
      const Request& r = result.requests[idx];
      const std::size_t first_chunk =
          std::min(r.prompt_tokens + 1, quantum);
      const std::size_t needed = pages_needed(first_chunk);
      const std::size_t reserve = running.empty() ? 0 : reserve_pages;
      if (allocator.free_pages() < needed + reserve) break;
      std::vector<PageId> pages;
      if (!try_alloc(needed, pages)) break;  // injected failure: retry later
      running.push_back(
          {idx, 0, r.max_new_tokens, r.prompt_tokens, std::move(pages),
           false});
      waiting.pop_front();
    }
    result.peak_batch = std::max(result.peak_batch, running.size());

    if (running.empty()) {
      // Idle: jump to the next event (arrival or backoff expiry).
      double next_event = std::numeric_limits<double>::infinity();
      if (next_arrival < total) {
        next_event = result.requests[next_arrival].arrival_s;
      }
      for (const Paused& p : paused) {
        next_event = std::min(next_event, p.eligible_s);
      }
      if (std::isfinite(next_event)) {
        now = std::max(now, next_event);
        continue;
      }
      if (!waiting.empty()) {
        // Admission blocked with an empty machine: only injected
        // allocation faults can do this. Retry after a tick.
        now += config.backoff_base_s;
        continue;
      }
      break;  // nothing running, waiting, paused or arriving
    }

    // --- Chunked prefill: one scheduler quantum of prompt tokens ---
    // FIFO across requests still mid-prefill (admission order), so an
    // earlier prompt finishes before a later one starts. Each request
    // stamps its own prefill_start_s when its first chunk runs and its
    // own first_token_s when its last chunk completes — timestamps are
    // never shared across an admission round.
    {
      double stall = 0.0;
      bool degraded = false;
      std::vector<char> dead(running.size(), 0);
      std::size_t budget = quantum;
      for (std::size_t i = 0; i < running.size() && budget > 0; ++i) {
        if (dead[i] != 0) continue;
        if (running[i].prompt_left == 0) continue;
        const std::size_t chunk = std::min(running[i].prompt_left, budget);
        const bool last = chunk == running[i].prompt_left;
        // The last chunk also backs the first generated token's slot.
        const std::size_t target =
            running[i].context + chunk + (last ? 1 : 0);
        if (!ensure_pages(i, target, dead, stall, degraded)) continue;
        Running& ru = running[i];
        Request& r = result.requests[ru.trace_index];
        if (r.prefill_start_s < 0.0) r.prefill_start_s = now;
        const double cost = chunk_cost(chunk, ru.context);
        now += cost;
        result.busy_s += cost;
        ru.context += chunk;
        ru.prompt_left -= chunk;
        budget -= chunk;
        if (ru.prompt_left > 0) continue;
        // The prompt's last-position output is the first generated token.
        if (r.generated == 0 && ru.remaining > 0) {
          r.first_token_s = now;
          r.generated = 1;
          ru.remaining -= 1;
          ru.context += 1;
        }
        if (ru.remaining == 0) {
          r.finish_s = now;
          release_all(ru.pages);
          ++finished;
          dead[i] = 1;
        }
      }
      compact_running(dead);
      now += stall;
      result.swap_stall_s += stall;
      if (degraded) ++result.degraded_steps;
      result.peak_kv_bytes =
          std::max(result.peak_kv_bytes,
                   static_cast<double>(allocator.used_pages()) * page_bytes);
    }
    if (running.empty()) continue;  // everyone finished or was evicted

    // --- Decode-step page growth; preemption is the backstop ---
    // Each decoding request about to append token `context + 1` may need
    // one more page; requests still mid-prefill grow with their cursor
    // instead. Injected allocation faults evict the request they hit (a
    // degraded step); genuine exhaustion evicts the lowest-priority
    // victim and retries.
    {
      double stall = 0.0;
      bool degraded = false;
      std::vector<char> dead(running.size(), 0);
      for (std::size_t i = 0; i < running.size(); ++i) {
        if (dead[i] != 0) continue;
        if (running[i].prompt_left > 0) continue;
        ensure_pages(i, running[i].context + 1, dead, stall, degraded);
      }
      compact_running(dead);
      now += stall;
      result.swap_stall_s += stall;
      if (degraded) ++result.degraded_steps;
    }
    if (running.empty()) continue;  // everyone was evicted this step

    // One decode iteration across the decoding portion of the batch
    // (requests mid-prefill hold their batch slot but do not decode).
    std::size_t decoders = 0;
    std::size_t max_context = 0;
    for (const Running& ru : running) {
      if (ru.prompt_left > 0) continue;
      ++decoders;
      max_context = std::max(max_context, ru.context);
    }
    if (decoders == 0) continue;  // pure-prefill iteration
    sim::InferenceConfig dcfg;
    dcfg.method = config.method;
    dcfg.attention = config.attention;
    dcfg.batch = decoders;
    dcfg.prompt = max_context;
    const double step = sim::decode_step_breakdown(
                            config.device, config.geometry, dcfg,
                            max_context)
                            .total();
    now += step;
    result.busy_s += step;
    result.peak_kv_bytes =
        std::max(result.peak_kv_bytes,
                 static_cast<double>(allocator.used_pages()) * page_bytes);

    for (std::size_t i = 0; i < running.size();) {
      Running& ru = running[i];
      if (ru.prompt_left > 0) {
        ++i;
        continue;
      }
      Request& r = result.requests[ru.trace_index];
      if (ru.remaining > 0) {
        if (r.generated == 0 && r.first_token_s < 0.0) {
          r.first_token_s = now;  // degenerate zero-length-prompt path
        }
        ru.remaining -= 1;
        ru.context += 1;
        r.generated += 1;
      }
      if (ru.remaining == 0) {
        r.finish_s = now;
        release_all(ru.pages);
        ++finished;
        // Stable erase: the chunk scheduler above is FIFO over this
        // vector's order, so removals must not reorder survivors.
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  result.makespan_s = now;
  result.injected_alloc_failures = allocator.injected_failures();
  result.hit_time_limit = finished < total;
  return result;
}

}  // namespace turbo::serving
