#include "serving/engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>

#include "common/check.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "kvcache/page_allocator.h"
#include "quant/error.h"
#include "serving/swap.h"

namespace turbo::serving {

namespace {

struct Running {
  std::size_t trace_index;
  std::size_t context;        // tokens currently cached
  std::size_t remaining;      // tokens still to generate
  std::size_t prompt_left;    // prompt tokens not yet prefilled (cursor)
  std::vector<PageId> pages;  // pages backing `context` (+ growth slack)
  bool pinned = false;        // protected from further victimization
  double kv_bits = 0.0;       // precision this request's KV is stored at
};

// A preempted request waiting out its backoff before re-admission.
struct Paused {
  std::size_t trace_index;
  std::size_t context;      // tokens to restore (prefilled + generated)
  std::size_t remaining;
  std::size_t prompt_left;  // prefill cursor survives preemption
  double eligible_s;        // earliest re-admission time
  bool swapped;             // true: stream parked in the tiered store
  double bytes;             // swapped stream size (0 for recompute)
  double kv_bits;           // precision the parked KV is stored at
  bool promote_tried = false;  // one promote attempt per page-blocked wait
};

// Deadline comparisons use a slack so a token landing exactly on the
// deadline counts as met, and idle-time jumps that land on an expiry
// instant make progress.
constexpr double kDeadlineSlack = 1e-9;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Degradation ladder levels.
enum : std::size_t { kLevelNormal = 0, kLevelDownshift = 1, kLevelShed = 2 };

}  // namespace

EngineResult run_engine(const EngineConfig& config,
                        std::vector<Request> trace) {
  std::sort(trace.begin(), trace.end(),
            [](const Request& a, const Request& b) {
              return a.arrival_s < b.arrival_s;
            });

  const sim::ModelGeometry& geom = config.geometry;
  // KV bytes/token at an arbitrary stored precision (the method decides
  // whether kv_bits matters at all — FP16 ignores it).
  auto kv_per_token_at = [&](double bits) {
    sim::AttnCostConfig a = config.attention;
    a.kv_bits = bits;
    return sim::kv_cache_bytes_per_token(config.method, a, geom.kv_heads,
                                         geom.head_dim) *
           static_cast<double>(geom.layers);
  };
  const double bits_normal = config.attention.kv_bits;
  const double kv_per_token = kv_per_token_at(bits_normal);
  const double kv_budget =
      config.device.hbm_capacity * config.memory_headroom -
      geom.weight_bytes_fp16();
  TURBO_CHECK_MSG(kv_budget > 0.0, "weights alone exceed device memory");
  TURBO_CHECK(config.page_tokens > 0);
  TURBO_CHECK(config.backoff_base_s > 0.0);
  TURBO_CHECK(config.backoff_cap_s >= config.backoff_base_s);
  TURBO_CHECK(config.admit_reserve >= 0.0 && config.admit_reserve < 1.0);
  TURBO_CHECK_MSG(config.backoff_jitter >= 0.0,
                  "backoff_jitter must be >= 0");
  {
    double share_sum = 0.0;
    for (const ClassPolicy& p : config.classes) {
      TURBO_CHECK_MSG(p.page_share >= 0.0 && p.page_share <= 1.0,
                      "class page_share outside [0, 1]");
      share_sum += p.page_share;
    }
    TURBO_CHECK_MSG(share_sum <= 1.0 + 1e-9,
                    "class page shares must sum to <= 1");
  }
  if (config.degrade.enabled) {
    TURBO_CHECK_MSG(config.degrade.low_watermark >= 0.0 &&
                        config.degrade.high_watermark <= 1.0 &&
                        config.degrade.low_watermark <
                            config.degrade.high_watermark,
                    "degrade watermarks must satisfy 0 <= low < high <= 1");
    TURBO_CHECK(config.degrade.window_iters > 0);
  }

  // Degraded KV precision: the head-wise 4/2-bit mix, never *above* the
  // configured precision (downshift only).
  const double bits_degraded =
      config.degrade.enabled
          ? std::min(bits_normal, sim::headwise_mixed_kv_bits(
                                      config.degrade.two_bit_head_fraction))
          : bits_normal;

  // Scheduler quantum: at most this many prompt tokens prefill per
  // iteration. 0 = monolithic (a whole prompt is one chunk).
  const std::size_t quantum =
      config.prefill_chunk_tokens == 0
          ? std::numeric_limits<std::size_t>::max()
          : config.prefill_chunk_tokens;

  // KV memory as fixed-size pages through a real allocator, so that page
  // exhaustion and injected allocation faults surface exactly where a
  // paged serving system would see them. A page is a fixed byte region
  // sized for `page_tokens` tokens at the *configured* precision; KV
  // written at a downshifted precision packs proportionally more tokens
  // into the same page.
  const double page_bytes =
      static_cast<double>(config.page_tokens) * kv_per_token;
  const std::size_t page_count =
      static_cast<std::size_t>(kv_budget / page_bytes);
  TURBO_CHECK_MSG(page_count > 0, "KV budget smaller than one page");
  PageAllocator allocator(page_count);
  FaultInjector fault(config.faults);
  allocator.set_fault_injector(&fault);

  // Swap mode parks preemption victims in a tiered store: tier 0 is host
  // DRAM behind the PCIe link, tier 1 (optional) local disk. The engine
  // runs the store in phantom mode — byte counts and placement only; the
  // byte-level serialize/adopt path shares the same machinery in tests.
  std::optional<TieredSwapStore> swap_store;
  if (config.preempt_mode == PreemptMode::kSwap) {
    TURBO_CHECK_MSG(config.swap.tiers >= 1 && config.swap.tiers <= 2,
                    "engine supports 1 (host) or 2 (host+disk) swap tiers");
    std::vector<SwapTier> tiers;
    tiers.push_back(
        {"host", config.swap.host_capacity_bytes, config.device.pcie_bandwidth});
    if (config.swap.tiers == 2) {
      TURBO_CHECK_MSG(config.device.disk_bandwidth > 0.0,
                      "disk swap tier requires device disk_bandwidth > 0");
      tiers.push_back({"disk", config.swap.disk_capacity_bytes,
                       config.device.disk_bandwidth});
    }
    swap_store.emplace(std::move(tiers), config.swap.health);
  }

  EngineResult result;
  result.requests = trace;
  result.min_kv_bits = bits_normal;

  auto tokens_per_page_at = [&](double bits) {
    const double ratio = kv_per_token / kv_per_token_at(bits);
    return std::max<std::size_t>(
        config.page_tokens,
        static_cast<std::size_t>(
            static_cast<double>(config.page_tokens) * ratio + 1e-9));
  };
  const std::size_t tpp_normal = config.page_tokens;
  const std::size_t tpp_degraded = tokens_per_page_at(bits_degraded);
  auto pages_needed = [&](std::size_t tokens, double bits) {
    const std::size_t tpp =
        bits == bits_normal ? tpp_normal : tpp_degraded;
    return (tokens + tpp - 1) / tpp;
  };

  // Reject requests that could never fit even with the machine to
  // themselves. Everything else is guaranteed schedulable.
  for (Request& r : result.requests) {
    if (pages_needed(r.prompt_tokens + r.max_new_tokens, bits_normal) >
        page_count) {
      r.finish_s = r.arrival_s;  // degenerate: immediately rejected
      r.outcome = Outcome::kRejected;
      ++result.rejected;
    }
  }

  const std::size_t total = result.requests.size();
  std::size_t finished = result.rejected;

  auto class_of = [&](std::size_t idx) {
    return static_cast<std::size_t>(
        result.requests[idx].service_class);
  };
  const bool class_aware = config.policy == SchedPolicy::kClassAware;

  // Per-class waiting queues (FIFO within a class). Under kFifo the three
  // queues are drained strictly in global arrival order.
  std::array<std::deque<std::size_t>, kServiceClassCount> waiting;
  auto waiting_empty = [&] {
    for (const auto& q : waiting) {
      if (!q.empty()) return false;
    }
    return true;
  };
  std::vector<Running> running;
  std::vector<Paused> paused;
  std::size_t next_arrival = 0;
  double now = 0.0;
  // Engine iteration counter: the LRU clock for the tiered swap store
  // (last-touch recency of parked streams).
  std::size_t iteration = 0;

  // --- Pressure controller (degradation ladder) state ---------------------
  std::size_t ladder_level = kLevelNormal;
  std::deque<double> occupancy_window;
  std::size_t iters_since_level_change = config.degrade.window_iters;
  auto current_bits = [&] {
    return ladder_level >= kLevelDownshift ? bits_degraded : bits_normal;
  };
  // Accuracy proxy for the downshifted precision: round-trip RMSE of the
  // two-stage progressive quantizer on a synthetic Gaussian KV block,
  // computed once on first downshift (src/quant/error.h).
  auto record_degrade_proxy = [&] {
    if (result.degrade_rmse_proxy != 0.0) return;
    const int b = std::clamp(
        static_cast<int>(std::lround(bits_degraded)), 2, 4);
    MatrixF sample(128, std::max<std::size_t>(geom.head_dim, 16));
    Rng rng(0xACC);
    for (std::size_t r = 0; r < sample.rows(); ++r) {
      rng.fill_normal(sample.row(r), 0.0, 1.0);
    }
    result.degrade_rmse_proxy =
        progressive_quant_rmse(sample, bit_width_from_int(b), 64);
  };

  // Cost of prefilling a `chunk`-token slice with `cached` tokens already
  // resident (stored at `bits`): attention spans cached + chunk, GEMMs
  // cover the chunk only.
  auto chunk_cost = [&](std::size_t chunk, std::size_t cached,
                        double bits) {
    sim::InferenceConfig pcfg;
    pcfg.method = config.method;
    pcfg.attention = config.attention;
    pcfg.attention.kv_bits = bits;
    pcfg.batch = 1;
    pcfg.prompt = chunk;
    return sim::chunk_prefill_breakdown(config.device, geom, pcfg, cached)
        .total();
  };
  // Monolithic prefill over `tokens` (recompute of evicted context).
  auto prefill_cost = [&](std::size_t tokens, double bits) {
    return chunk_cost(tokens, 0, bits);
  };

  // Allocate `n` pages or none (failed attempts roll back).
  auto try_alloc = [&](std::size_t n, std::vector<PageId>& out) {
    for (std::size_t i = 0; i < n; ++i) {
      const PageId p = allocator.allocate();
      if (p == kInvalidPage) {
        while (!out.empty()) {
          allocator.release(out.back());
          out.pop_back();
        }
        return false;
      }
      out.push_back(p);
    }
    return true;
  };

  auto release_all = [&](std::vector<PageId>& pages) {
    for (const PageId p : pages) allocator.release(p);
    pages.clear();
  };

  // Bounded exponential backoff with deterministic seeded jitter: victims
  // evicted in the same round (equal backoff) get distinct re-admission
  // times keyed by (jitter_seed, request id, eviction count), so they do
  // not stampede one re-admission pass. Jitter stretches the delay by at
  // most `backoff_jitter`; it never shortens it, so the cap still bounds
  // the un-jittered wait.
  auto backoff_for = [&](const Request& r) {
    const std::size_t n = r.preemptions;
    const std::size_t exp = std::min<std::size_t>(n > 0 ? n - 1 : 0, 16);
    double delay = std::min(config.backoff_cap_s,
                            config.backoff_base_s *
                                static_cast<double>(std::size_t{1} << exp));
    if (config.backoff_jitter > 0.0) {
      const std::uint64_t h = splitmix64(
          config.jitter_seed ^ splitmix64(r.id * 0x100000001b3ull + n));
      const double u =
          static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
      delay *= 1.0 + config.backoff_jitter * u;
    }
    return delay;
  };

  // Evict running[j]: swap its pages to the host store (PCIe cost) or
  // drop them for recomputation. A victim with nothing cached yet
  // (preempted before its first chunk) has nothing to swap and is simply
  // dropped. Returns the transfer stall incurred.
  auto preempt = [&](Running& victim) {
    Request& r = result.requests[victim.trace_index];
    ++result.preemptions;
    ++r.preemptions;
    result.max_preemptions_single_request =
        std::max(result.max_preemptions_single_request, r.preemptions);
    Paused p{victim.trace_index, victim.context,  victim.remaining,
             victim.prompt_left, now + backoff_for(r), false,
             0.0,                victim.kv_bits};
    double stall = 0.0;
    if (config.preempt_mode == PreemptMode::kSwap) {
      // A victim with nothing cached yet (evicted before its first
      // prefill chunk) has no stream to move: zero-cost "swap".
      if (victim.context > 0) {
        const double bytes =
            static_cast<double>(victim.pages.size()) * page_bytes;
        const TieredSwapStore::StoreOutcome so = swap_store->store_phantom(
            r.id, static_cast<std::size_t>(bytes), iteration, now, &fault);
        if (so.stored) {
          ++result.preempted_swap;
          p.swapped = true;
          p.bytes = bytes;
          result.swap_out_bytes += p.bytes;
          stall = so.transfer_s;
          result.tier_demotions += so.demotions;
        } else {
          // Every tier full or unreachable: the stream has nowhere to
          // go, so this victim degrades to recompute-on-re-admission.
          ++result.preempted_recompute;
          ++result.swap_overflow_recomputes;
        }
      } else {
        ++result.preempted_swap;
      }
    } else {
      ++result.preempted_recompute;
    }
    release_all(victim.pages);
    paused.push_back(p);
    return stall;
  };

  // Preemption victim among alive running requests: non-pinned first;
  // then (class-aware) the lowest service class — batch evicted before
  // standard before interactive; then lowest Request::priority; then
  // latest arrival. Returns running.size() when nothing is eligible.
  auto pick_victim = [&](const std::vector<char>& dead) {
    std::size_t best = running.size();
    for (std::size_t j = 0; j < running.size(); ++j) {
      if (dead[j] != 0) continue;
      if (best == running.size()) {
        best = j;
        continue;
      }
      const Request& r = result.requests[running[j].trace_index];
      const Request& b = result.requests[running[best].trace_index];
      if (running[j].pinned != running[best].pinned) {
        if (!running[j].pinned) best = j;
        continue;
      }
      if (class_aware && r.service_class != b.service_class) {
        if (static_cast<int>(r.service_class) >
            static_cast<int>(b.service_class)) {
          best = j;  // lower tier (higher enum value) evicted first
        }
        continue;
      }
      if (r.priority != b.priority) {
        if (r.priority < b.priority) best = j;
        continue;
      }
      if (r.arrival_s > b.arrival_s ||
          (r.arrival_s == b.arrival_s && r.id > b.id)) {
        best = j;
      }
    }
    return best;
  };

  // Grow running[i]'s page list until it backs `target` tokens, evicting
  // victims on genuine exhaustion. An injected allocation fault evicts
  // running[i] itself (a degraded step). Returns false when running[i]
  // was evicted (its dead[] slot is set).
  auto ensure_pages = [&](std::size_t i, std::size_t target,
                          std::vector<char>& dead, double& stall,
                          bool& degraded) {
    while (running[i].pages.size() <
           pages_needed(target, running[i].kv_bits)) {
      const std::size_t injected_before = allocator.injected_failures();
      const PageId page = allocator.allocate();
      if (page != kInvalidPage) {
        running[i].pages.push_back(page);
        continue;
      }
      if (allocator.injected_failures() > injected_before) {
        // The fault hit this request's allocation: it is the victim.
        stall += preempt(running[i]);
        dead[i] = 1;
        degraded = true;
        return false;
      }
      const std::size_t v = pick_victim(dead);
      TURBO_CHECK_MSG(v < running.size(),
                      "page exhaustion with no evictable request");
      stall += preempt(running[v]);
      dead[v] = 1;
      if (v == i) return false;  // evicted itself; no page needed
    }
    return true;
  };

  auto compact_running = [&](std::vector<char>& dead) {
    std::vector<Running> alive;
    alive.reserve(running.size());
    for (std::size_t i = 0; i < running.size(); ++i) {
      if (dead[i] == 0) alive.push_back(std::move(running[i]));
    }
    running.swap(alive);
  };

  // A request has irrecoverably missed a deadline: its TTFT deadline
  // passed with no first token, or its e2e deadline passed unfinished.
  auto deadline_expired = [&](const Request& r) {
    if (!config.enforce_deadlines) return false;
    if (r.ttft_deadline_s > 0.0 && r.first_token_s < 0.0 &&
        now > r.arrival_s + r.ttft_deadline_s + kDeadlineSlack) {
      return true;
    }
    if (r.e2e_deadline_s > 0.0 &&
        now > r.arrival_s + r.e2e_deadline_s + kDeadlineSlack) {
      return true;
    }
    return false;
  };
  auto time_out = [&](Request& r) {
    r.finish_s = now;
    r.outcome = Outcome::kTimedOut;
    ++result.timed_out;
    ++finished;
  };

  // Pin threshold for a request's class (0 in ClassPolicy = inherit the
  // engine-wide default).
  auto pin_threshold = [&](std::size_t idx) {
    const std::size_t per_class =
        config.classes[class_of(idx)].pin_after_preemptions;
    return per_class > 0 ? per_class : config.pin_after_preemptions;
  };

  // Pages currently held by running requests of a class (swapped-out
  // requests hold none).
  auto class_used_pages = [&](std::size_t c) {
    std::size_t used = 0;
    for (const Running& ru : running) {
      if (class_of(ru.trace_index) == c) used += ru.pages.size();
    }
    return used;
  };
  auto guaranteed_pages = [&](std::size_t c) {
    return static_cast<std::size_t>(config.classes[c].page_share *
                                    static_cast<double>(page_count));
  };
  // A class has demand when it has waiting or paused requests — its
  // unmet guarantee is then protected from borrowing by other classes.
  auto class_has_demand = [&](std::size_t c) {
    if (!waiting[c].empty()) return true;
    for (const Paused& p : paused) {
      if (class_of(p.trace_index) == c) return true;
    }
    return false;
  };

  const std::size_t reserve_pages = static_cast<std::size_t>(
      static_cast<double>(page_count) * config.admit_reserve);

  // Can a fresh request of class `c` take `needed` pages right now?
  // Within its guaranteed share a class bypasses the admit reserve;
  // borrowing beyond it must leave the reserve plus every other
  // demanding class's unmet guarantee free (work-conserving quotas).
  auto admission_allowed = [&](std::size_t c, std::size_t needed) {
    const std::size_t free = allocator.free_pages();
    const std::size_t reserve = running.empty() ? 0 : reserve_pages;
    if (!class_aware) return free >= needed + reserve;
    if (class_used_pages(c) + needed <= guaranteed_pages(c)) {
      return free >= needed;
    }
    std::size_t protected_deficit = 0;
    for (std::size_t d = 0; d < kServiceClassCount; ++d) {
      if (d == c || !class_has_demand(d)) continue;
      const std::size_t used = class_used_pages(d);
      const std::size_t guaranteed = guaranteed_pages(d);
      if (used < guaranteed) protected_deficit += guaranteed - used;
    }
    return free >= needed + reserve + protected_deficit;
  };

  while (finished < total && now < config.max_sim_time_s) {
    ++iteration;
    // Pull arrivals whose time has come.
    while (next_arrival < total &&
           result.requests[next_arrival].arrival_s <= now) {
      if (result.requests[next_arrival].outcome == Outcome::kPending) {
        waiting[class_of(next_arrival)].push_back(next_arrival);
      }
      ++next_arrival;
    }

    // --- Deadline enforcement: waiting, paused, then running ------------
    if (config.enforce_deadlines) {
      for (auto& queue : waiting) {
        for (std::size_t qi = 0; qi < queue.size();) {
          Request& r = result.requests[queue[qi]];
          if (deadline_expired(r)) {
            time_out(r);
            queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(qi));
          } else {
            ++qi;
          }
        }
      }
      for (std::size_t pi = 0; pi < paused.size();) {
        Request& r = result.requests[paused[pi].trace_index];
        if (deadline_expired(r)) {
          // Pages were released at eviction; a swapped victim also drops
          // its parked stream so the store cannot leak terminal state.
          if (paused[pi].swapped) swap_store->erase(r.id);
          time_out(r);
          paused.erase(paused.begin() + static_cast<std::ptrdiff_t>(pi));
        } else {
          ++pi;
        }
      }
      {
        std::vector<char> dead(running.size(), 0);
        bool any = false;
        for (std::size_t i = 0; i < running.size(); ++i) {
          Request& r = result.requests[running[i].trace_index];
          if (!deadline_expired(r)) continue;
          time_out(r);
          release_all(running[i].pages);
          dead[i] = 1;
          any = true;
        }
        if (any) compact_running(dead);
      }
    }

    // --- Pressure controller: sample occupancy, walk the ladder ---------
    if (config.degrade.enabled) {
      occupancy_window.push_back(
          static_cast<double>(allocator.used_pages()) /
          static_cast<double>(page_count));
      if (occupancy_window.size() > config.degrade.window_iters) {
        occupancy_window.pop_front();
      }
      ++iters_since_level_change;
      if (occupancy_window.size() == config.degrade.window_iters &&
          iters_since_level_change >= config.degrade.window_iters) {
        double mean = 0.0;
        for (const double o : occupancy_window) mean += o;
        mean /= static_cast<double>(occupancy_window.size());
        if (mean > config.degrade.high_watermark &&
            ladder_level < kLevelShed) {
          ++ladder_level;
          ++result.ladder_escalations;
          iters_since_level_change = 0;
        } else if (mean < config.degrade.low_watermark &&
                   ladder_level > kLevelNormal) {
          --ladder_level;
          ++result.ladder_deescalations;
          iters_since_level_change = 0;
        }
      }
      if (ladder_level >= kLevelDownshift) ++result.degraded_iterations;

      // Shed level: drop the newest waiting batch-class (then
      // standard-class) requests — admission control at the door.
      // Interactive is never shed.
      if (ladder_level >= kLevelShed) {
        std::size_t budget = config.degrade.max_shed_per_iter;
        for (std::size_t c = kServiceClassCount; c-- > 1 && budget > 0;) {
          while (budget > 0 && !waiting[c].empty()) {
            Request& r = result.requests[waiting[c].back()];
            waiting[c].pop_back();
            r.finish_s = now;
            r.outcome = Outcome::kShed;
            ++result.shed;
            ++finished;
            --budget;
          }
        }
      }
    }

    // --- Re-admission of preempted requests (before fresh arrivals) ---
    // Order: (class-aware) interactive first, then higher priority, then
    // earlier arrival. No overtaking: the first re-admission that cannot
    // get pages ends the pass, which keeps the backoff queue fair.
    double admit_latency = 0.0;
    std::sort(paused.begin(), paused.end(),
              [&](const Paused& a, const Paused& b) {
                const Request& ra = result.requests[a.trace_index];
                const Request& rb = result.requests[b.trace_index];
                if (class_aware && ra.service_class != rb.service_class) {
                  return static_cast<int>(ra.service_class) <
                         static_cast<int>(rb.service_class);
                }
                if (ra.priority != rb.priority) {
                  return ra.priority > rb.priority;
                }
                if (ra.arrival_s != rb.arrival_s) {
                  return ra.arrival_s < rb.arrival_s;
                }
                return ra.id < rb.id;
              });
    for (std::size_t pi = 0; pi < paused.size();) {
      Paused& p = paused[pi];
      if (p.eligible_s > now || running.size() >= config.max_batch) {
        ++pi;
        continue;
      }
      // Recompute-mode victims rebuild their KV from scratch, so they
      // re-admit at the *current* ladder precision; swapped victims keep
      // the precision their parked stream was written at.
      double bits = p.swapped ? p.kv_bits : current_bits();
      std::vector<PageId> pages;
      if (!try_alloc(pages_needed(p.context + 1, bits), pages)) {
        // Page-blocked: spend the wait staging the parked stream up the
        // hierarchy (once per wait), so when pages do free up the
        // swap-in reads at host-link speed instead of disk speed.
        if (p.swapped && !p.promote_tried) {
          double promote_s = 0.0;
          if (swap_store->promote(result.requests[p.trace_index].id,
                                  iteration, now, &fault, &promote_s)) {
            ++result.tier_promotions;
            admit_latency += promote_s;
            result.swap_stall_s += promote_s;
          }
          p.promote_tried = true;
        }
        p.eligible_s = now + config.backoff_base_s;  // retry tick
        break;                                       // no overtaking
      }
      Request& r = result.requests[p.trace_index];
      if (p.swapped) {
        const TieredSwapStore::FetchOutcome fo =
            swap_store->fetch(r.id, iteration, now, &fault);
        TURBO_CHECK_MSG(fo.status != TieredSwapStore::FetchStatus::kMissing,
                        "swapped request lost its parked stream");
        admit_latency += fo.stall_s;
        result.tier_retry_stall_s += fo.stall_s;
        result.tier_failovers += fo.failovers;
        r.tier_failovers += fo.failovers;
        result.tier_fetch_retries += fo.retries;
        if (fo.status == TieredSwapStore::FetchStatus::kUnavailable) {
          // Failover exhausted: every tier holding the stream is down.
          // The engine never hangs on a dead hierarchy — drop the parked
          // stream and recompute the KV (at the current ladder
          // precision, like any recompute). Not a checksum recovery.
          swap_store->erase(r.id);
          ++result.swap_unavailable_recomputes;
          bits = current_bits();
          const double cost = prefill_cost(p.context, bits);
          admit_latency += cost;
          result.busy_s += cost;
          r.recomputed_tokens += p.context;
          result.recomputed_tokens += p.context;
        } else {
          admit_latency += fo.transfer_s;
          result.swap_stall_s += fo.transfer_s;
          result.swap_in_bytes += p.bytes;
          // Two corruption sources: the legacy in-transit stream fault
          // and the per-tier media fault. Either way the CRC catches it
          // on the way back in and the pages cannot be adopted —
          // recover by recomputing them.
          const bool transit_corrupt = fault.corrupt_stream();
          if (transit_corrupt || fo.corrupted) {
            ++result.checksum_failures;
            bits = current_bits();
            const double cost = prefill_cost(p.context, bits);
            admit_latency += cost;
            result.busy_s += cost;
            r.recomputed_tokens += p.context;
            result.recomputed_tokens += p.context;
            ++result.recoveries;
          } else {
            ++result.swap_ins;
          }
          swap_store->erase(r.id);
        }
      } else if (p.context > 0) {
        // Recompute mode: re-derive the evicted KV with a fresh prefill
        // over everything that was cached (prompt prefix + generated).
        const double cost = prefill_cost(p.context, bits);
        admit_latency += cost;
        result.busy_s += cost;
        r.recomputed_tokens += p.context;
        result.recomputed_tokens += p.context;
      }
      if (bits < bits_normal) {
        ++result.degraded_admissions;
        record_degrade_proxy();
      }
      r.kv_bits_used = bits;
      result.min_kv_bits = std::min(result.min_kv_bits, bits);
      // A partially-prefilled victim resumes from its cursor: the chunk
      // loop below continues with p.prompt_left tokens still to go.
      running.push_back({p.trace_index, p.context, p.remaining,
                         p.prompt_left, std::move(pages),
                         r.preemptions >= pin_threshold(p.trace_index),
                         bits});
      paused.erase(paused.begin() + static_cast<std::ptrdiff_t>(pi));
    }
    now += admit_latency;

    // --- Fresh admission ---------------------------------------------------
    // Optimistic and chunk-aware: a request needs only its first chunk's
    // pages to start (the prefill cursor allocates the rest as it
    // advances); decode growth is backed by preemption. Under kFifo the
    // queues drain in global arrival order behind one page check; under
    // kClassAware each class is tried in tier order against its quota —
    // a class inside its guaranteed share admits even while a higher
    // tier is page-blocked, but borrowing beyond the share must leave
    // the admit reserve and every demanding class's unmet guarantee
    // free. Admissions during a downshifted ladder level write their KV
    // at the degraded precision.
    {
      const double admit_bits = current_bits();
      double reclaim_stall = 0.0;
      // Guarantees are enforceable, not bookkeeping: a class admitting
      // within its guaranteed share may claw borrowed pages back from
      // classes running over their own share (lowest tier first, pinned
      // requests protected). Without this, a saturated pool would make
      // every guarantee worthless exactly when it matters.
      auto reclaim_for_guarantee = [&](std::size_t c, std::size_t needed) {
        while (allocator.free_pages() < needed) {
          std::size_t best = running.size();
          for (std::size_t j = 0; j < running.size(); ++j) {
            if (running[j].pinned) continue;
            const std::size_t jc = class_of(running[j].trace_index);
            if (jc == c) continue;
            if (class_used_pages(jc) <= guaranteed_pages(jc)) continue;
            if (best == running.size()) {
              best = j;
              continue;
            }
            const Request& rj = result.requests[running[j].trace_index];
            const Request& rb = result.requests[running[best].trace_index];
            const std::size_t bc = class_of(running[best].trace_index);
            if (jc != bc) {
              if (jc > bc) best = j;
              continue;
            }
            if (rj.priority != rb.priority) {
              if (rj.priority < rb.priority) best = j;
              continue;
            }
            if (rj.arrival_s > rb.arrival_s ||
                (rj.arrival_s == rb.arrival_s && rj.id > rb.id)) {
              best = j;
            }
          }
          if (best == running.size()) break;  // nothing reclaimable
          reclaim_stall += preempt(running[best]);
          running.erase(running.begin() +
                        static_cast<std::ptrdiff_t>(best));
        }
      };
      auto admit_one = [&](std::size_t c) -> bool {
        const std::size_t idx = waiting[c].front();
        const Request& r = result.requests[idx];
        const std::size_t first_chunk =
            std::min(r.prompt_tokens + 1, quantum);
        const std::size_t needed = pages_needed(first_chunk, admit_bits);
        if (class_aware && allocator.free_pages() < needed &&
            class_used_pages(c) + needed <= guaranteed_pages(c)) {
          reclaim_for_guarantee(c, needed);
        }
        if (!admission_allowed(c, needed)) return false;
        std::vector<PageId> pages;
        if (!try_alloc(needed, pages)) return false;  // injected failure
        Request& mut = result.requests[idx];
        if (admit_bits < bits_normal) {
          ++result.degraded_admissions;
          record_degrade_proxy();
        }
        mut.kv_bits_used = admit_bits;
        result.min_kv_bits = std::min(result.min_kv_bits, admit_bits);
        running.push_back({idx, 0, r.max_new_tokens, r.prompt_tokens,
                           std::move(pages), false, admit_bits});
        waiting[c].pop_front();
        return true;
      };
      if (class_aware) {
        for (std::size_t c = 0; c < kServiceClassCount; ++c) {
          while (!waiting[c].empty() &&
                 running.size() < config.max_batch) {
            if (!admit_one(c)) break;
          }
        }
      } else {
        while (!waiting_empty() && running.size() < config.max_batch) {
          // Global arrival order across the per-class queues.
          std::size_t best = kServiceClassCount;
          for (std::size_t c = 0; c < kServiceClassCount; ++c) {
            if (waiting[c].empty()) continue;
            if (best == kServiceClassCount) {
              best = c;
              continue;
            }
            const Request& rc = result.requests[waiting[c].front()];
            const Request& rb = result.requests[waiting[best].front()];
            if (rc.arrival_s < rb.arrival_s ||
                (rc.arrival_s == rb.arrival_s && rc.id < rb.id)) {
              best = c;
            }
          }
          if (!admit_one(best)) break;
        }
      }
      now += reclaim_stall;
      result.swap_stall_s += reclaim_stall;
    }
    result.peak_batch = std::max(result.peak_batch, running.size());

    if (running.empty()) {
      // Idle: jump to the next event (arrival, backoff expiry or — so
      // timeouts are stamped when they happen — a deadline expiry).
      double next_event = std::numeric_limits<double>::infinity();
      if (next_arrival < total) {
        next_event = result.requests[next_arrival].arrival_s;
      }
      for (const Paused& p : paused) {
        next_event = std::min(next_event, p.eligible_s);
      }
      if (config.enforce_deadlines) {
        auto expiry_of = [&](const Request& r) {
          double e = std::numeric_limits<double>::infinity();
          if (r.ttft_deadline_s > 0.0 && r.first_token_s < 0.0) {
            e = r.arrival_s + r.ttft_deadline_s;
          }
          if (r.e2e_deadline_s > 0.0) {
            e = std::min(e, r.arrival_s + r.e2e_deadline_s);
          }
          // Step just past the expiry instant so the strict comparison
          // in deadline_expired() fires and the loop makes progress.
          return e + 2.0 * kDeadlineSlack;
        };
        for (const auto& queue : waiting) {
          for (const std::size_t idx : queue) {
            next_event =
                std::min(next_event, expiry_of(result.requests[idx]));
          }
        }
        for (const Paused& p : paused) {
          next_event =
              std::min(next_event, expiry_of(result.requests[p.trace_index]));
        }
      }
      if (std::isfinite(next_event) && next_event > now) {
        now = next_event;
        continue;
      }
      if (!waiting_empty()) {
        // Admission blocked with an empty machine: only injected
        // allocation faults can do this. Retry after a tick.
        now += config.backoff_base_s;
        continue;
      }
      if (!paused.empty() || next_arrival < total) {
        now += config.backoff_base_s;
        continue;
      }
      break;  // nothing running, waiting, paused or arriving
    }

    // --- Chunked prefill: one scheduler quantum of prompt tokens ---
    // FIFO across requests still mid-prefill (admission order), so an
    // earlier prompt finishes before a later one starts — except that the
    // class-aware policy serves higher tiers' chunks first (stable within
    // a tier), so an interactive prompt's TTFT is not queued behind batch
    // prefills that happen to be mid-flight. Each request stamps its own
    // prefill_start_s when its first chunk runs and its own first_token_s
    // when its last chunk completes — timestamps are never shared across
    // an admission round.
    {
      double stall = 0.0;
      bool degraded = false;
      std::vector<char> dead(running.size(), 0);
      std::vector<std::size_t> order(running.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      if (class_aware) {
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return class_of(running[a].trace_index) <
                                  class_of(running[b].trace_index);
                         });
      }
      std::size_t budget = quantum;
      for (std::size_t oi = 0; oi < order.size() && budget > 0; ++oi) {
        const std::size_t i = order[oi];
        if (dead[i] != 0) continue;
        if (running[i].prompt_left == 0) continue;
        const std::size_t chunk = std::min(running[i].prompt_left, budget);
        const bool last = chunk == running[i].prompt_left;
        // The last chunk also backs the first generated token's slot.
        const std::size_t target =
            running[i].context + chunk + (last ? 1 : 0);
        if (!ensure_pages(i, target, dead, stall, degraded)) continue;
        Running& ru = running[i];
        Request& r = result.requests[ru.trace_index];
        if (r.prefill_start_s < 0.0) r.prefill_start_s = now;
        const double cost = chunk_cost(chunk, ru.context, ru.kv_bits);
        now += cost;
        result.busy_s += cost;
        ru.context += chunk;
        ru.prompt_left -= chunk;
        budget -= chunk;
        if (ru.prompt_left > 0) continue;
        // The prompt's last-position output is the first generated token.
        if (r.generated == 0 && ru.remaining > 0) {
          r.first_token_s = now;
          r.generated = 1;
          ru.remaining -= 1;
          ru.context += 1;
        }
        if (ru.remaining == 0) {
          r.finish_s = now;
          r.outcome = Outcome::kCompleted;
          release_all(ru.pages);
          ++finished;
          dead[i] = 1;
        }
      }
      compact_running(dead);
      now += stall;
      result.swap_stall_s += stall;
      if (degraded) ++result.degraded_steps;
      result.peak_kv_bytes =
          std::max(result.peak_kv_bytes,
                   static_cast<double>(allocator.used_pages()) * page_bytes);
    }
    if (running.empty()) continue;  // everyone finished or was evicted

    // --- Decode-step page growth; preemption is the backstop ---
    // Each decoding request about to append token `context + 1` may need
    // one more page; requests still mid-prefill grow with their cursor
    // instead. Injected allocation faults evict the request they hit (a
    // degraded step); genuine exhaustion evicts the class-aware victim
    // and retries.
    {
      double stall = 0.0;
      bool degraded = false;
      std::vector<char> dead(running.size(), 0);
      for (std::size_t i = 0; i < running.size(); ++i) {
        if (dead[i] != 0) continue;
        if (running[i].prompt_left > 0) continue;
        ensure_pages(i, running[i].context + 1, dead, stall, degraded);
      }
      compact_running(dead);
      now += stall;
      result.swap_stall_s += stall;
      if (degraded) ++result.degraded_steps;
    }
    if (running.empty()) continue;  // everyone was evicted this step

    // One decode iteration across the decoding portion of the batch
    // (requests mid-prefill hold their batch slot but do not decode).
    // With mixed per-request precision the step is costed at the
    // context-weighted average stored bits — the batch's aggregate KV
    // traffic — so downshifted requests speed the whole step up.
    std::size_t decoders = 0;
    std::size_t max_context = 0;
    double bits_weight = 0.0;
    double context_weight = 0.0;
    for (const Running& ru : running) {
      if (ru.prompt_left > 0) continue;
      ++decoders;
      max_context = std::max(max_context, ru.context);
      bits_weight += static_cast<double>(ru.context) * ru.kv_bits;
      context_weight += static_cast<double>(ru.context);
    }
    if (decoders == 0) continue;  // pure-prefill iteration
    sim::InferenceConfig dcfg;
    dcfg.method = config.method;
    dcfg.attention = config.attention;
    if (context_weight > 0.0) {
      dcfg.attention.kv_bits = bits_weight / context_weight;
    }
    dcfg.batch = decoders;
    dcfg.prompt = max_context;
    const double step = sim::decode_step_breakdown(
                            config.device, geom, dcfg, max_context)
                            .total();
    now += step;
    result.busy_s += step;
    result.peak_kv_bytes =
        std::max(result.peak_kv_bytes,
                 static_cast<double>(allocator.used_pages()) * page_bytes);

    for (std::size_t i = 0; i < running.size();) {
      Running& ru = running[i];
      if (ru.prompt_left > 0) {
        ++i;
        continue;
      }
      Request& r = result.requests[ru.trace_index];
      if (ru.remaining > 0) {
        if (r.generated == 0 && r.first_token_s < 0.0) {
          r.first_token_s = now;  // degenerate zero-length-prompt path
        }
        ru.remaining -= 1;
        ru.context += 1;
        r.generated += 1;
      }
      if (ru.remaining == 0) {
        r.finish_s = now;
        r.outcome = Outcome::kCompleted;
        release_all(ru.pages);
        ++finished;
        // Stable erase: the chunk scheduler above is FIFO over this
        // vector's order, so removals must not reorder survivors.
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  result.makespan_s = now;
  result.injected_alloc_failures = allocator.injected_failures();
  result.hit_time_limit = finished < total;
  if (swap_store.has_value()) {
    // No-leak invariant: every request reached exactly one terminal
    // state, and every terminal path (swap-in, unavailable-recompute,
    // timeout, checksum drop) erased its parked stream. Only the
    // max_sim_time_s safety stop may strand entries.
    if (!result.hit_time_limit) {
      TURBO_CHECK_MSG(swap_store->count() == 0,
                      "terminal run left streams parked in the swap store");
    }
    for (std::size_t t = 0; t < swap_store->tier_count(); ++t) {
      const TieredSwapStore::TierCounters& tc = swap_store->counters(t);
      result.tier_stats[t] = tc;
      result.tier_blacklists += tc.blacklists;
      if (tc.stores > 0 || tc.demotions_in > 0) ++result.swap_tiers_used;
    }
  }
  return result;
}

}  // namespace turbo::serving
