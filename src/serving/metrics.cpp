#include "serving/metrics.h"

#include "common/check.h"
#include "common/stats.h"

namespace turbo::serving {

ServingMetrics summarize(const EngineResult& result) {
  ServingMetrics m;
  m.rejected = result.rejected;
  m.peak_batch = result.peak_batch;
  m.peak_kv_gb = result.peak_kv_bytes / 1e9;
  m.utilization =
      result.makespan_s > 0.0 ? result.busy_s / result.makespan_s : 0.0;
  m.timed_out = result.timed_out;
  m.shed = result.shed;
  m.ladder_escalations = result.ladder_escalations;
  m.ladder_deescalations = result.ladder_deescalations;
  m.degraded_iterations = result.degraded_iterations;
  m.degraded_admissions = result.degraded_admissions;
  m.min_kv_bits = result.min_kv_bits;
  m.degrade_rmse_proxy = result.degrade_rmse_proxy;
  m.hit_time_limit = result.hit_time_limit;
  m.preemptions = result.preemptions;
  m.preempted_recompute = result.preempted_recompute;
  m.preempted_swap = result.preempted_swap;
  m.swap_ins = result.swap_ins;
  m.swap_out_gb = result.swap_out_bytes / 1e9;
  m.swap_in_gb = result.swap_in_bytes / 1e9;
  m.swap_stall_s = result.swap_stall_s;
  m.checksum_failures = result.checksum_failures;
  m.recoveries = result.recoveries;
  m.degraded_steps = result.degraded_steps;
  m.injected_alloc_failures = result.injected_alloc_failures;
  m.max_preemptions_single_request = result.max_preemptions_single_request;
  m.recomputed_tokens = result.recomputed_tokens;
  m.snapshots_written = result.snapshots_written;
  m.snapshot_bytes = result.snapshot_bytes;
  m.snapshot_restores = result.snapshot_restores;
  m.snapshot_corruptions = result.snapshot_corruptions;
  m.restored_requests = result.restored_requests;
  m.replayed_tokens = result.replayed_tokens;
  m.crash_recomputes = result.crash_recomputes;
  m.replica_crashes = result.replica_crashes;
  m.dedupe_drops = result.dedupe_drops;
  m.tier_demotions = result.tier_demotions;
  m.tier_promotions = result.tier_promotions;
  m.tier_failovers = result.tier_failovers;
  m.tier_blacklists = result.tier_blacklists;
  m.tier_fetch_retries = result.tier_fetch_retries;
  m.swap_unavailable_recomputes = result.swap_unavailable_recomputes;
  m.swap_overflow_recomputes = result.swap_overflow_recomputes;
  m.swap_tiers_used = result.swap_tiers_used;
  m.tier_retry_stall_s = result.tier_retry_stall_s;
  m.tier_stats = result.tier_stats;
  m.prefix_hit_tokens = result.prefix_hit_tokens;
  m.prefix_hit_requests = result.prefix_hit_requests;
  m.prefix_pages_attached = result.prefix_pages_attached;
  m.retained_pages_reclaimed = result.retained_pages_reclaimed;
  m.prefilled_tokens = result.prefilled_tokens;
  m.peak_referenced_pages = result.peak_referenced_pages;
  m.prefill_handoffs = result.prefill_handoffs;

  std::vector<float> ttft;
  std::vector<float> tpot;
  std::vector<float> e2e;
  std::array<std::vector<float>, kServiceClassCount> class_ttft;
  std::array<std::vector<float>, kServiceClassCount> class_e2e;
  double tokens = 0.0;
  for (const Request& r : result.requests) {
    ClassBreakdown& cb =
        m.by_class[static_cast<std::size_t>(r.service_class)];
    ++cb.requests;
    cb.preemptions += r.preemptions;
    if (r.ttft_deadline_s > 0.0) {
      ++cb.deadline_requests;
      if (r.met_ttft_deadline()) ++cb.deadline_met;
    }
    switch (r.outcome) {
      case Outcome::kPending:
        ++m.unfinished;
        continue;
      case Outcome::kRejected:
        ++cb.rejected;
        continue;
      case Outcome::kShed:
        ++cb.shed;
        continue;
      case Outcome::kTimedOut:
        ++cb.timed_out;
        // Tokens a timed-out request streamed before its deadline were
        // delivered; count them, but never its latency samples.
        tokens += static_cast<double>(r.generated);
        continue;
      case Outcome::kCompleted:
        break;
    }
    ++m.completed;
    ++cb.completed;
    tokens += static_cast<double>(r.generated);
    // Zero-generation requests complete without ever producing a token:
    // they have no first_token_s and no meaningful latency-per-output, so
    // they must not contribute TTFT or e2e samples.
    if (r.generated == 0) continue;
    const auto t = static_cast<float>(r.ttft());
    const auto e = static_cast<float>(r.e2e_latency());
    ttft.push_back(t);
    e2e.push_back(e);
    class_ttft[static_cast<std::size_t>(r.service_class)].push_back(t);
    class_e2e[static_cast<std::size_t>(r.service_class)].push_back(e);
    if (r.generated > 1) {
      tpot.push_back(static_cast<float>(r.tpot()));
    }
  }
  // A run truncated by the time limit is exactly a run with unfinished
  // requests — the two signals must agree.
  TURBO_CHECK(m.hit_time_limit == (m.unfinished > 0));
  if (result.makespan_s > 0.0) {
    m.output_tokens_per_s = tokens / result.makespan_s;
  }
  if (!ttft.empty()) {
    m.ttft_p50 = percentile(ttft, 50);
    m.ttft_p99 = percentile(ttft, 99);
    m.e2e_p50 = percentile(e2e, 50);
    m.e2e_p99 = percentile(e2e, 99);
  }
  if (!tpot.empty()) {
    m.tpot_p50 = percentile(tpot, 50);
    m.tpot_p99 = percentile(tpot, 99);
  }
  for (std::size_t c = 0; c < kServiceClassCount; ++c) {
    ClassBreakdown& cb = m.by_class[c];
    if (!class_ttft[c].empty()) {
      cb.ttft_p50 = percentile(class_ttft[c], 50);
      cb.ttft_p99 = percentile(class_ttft[c], 99);
      cb.e2e_p99 = percentile(class_e2e[c], 99);
    }
    if (cb.deadline_requests > 0) {
      cb.ttft_attainment = static_cast<double>(cb.deadline_met) /
                           static_cast<double>(cb.deadline_requests);
    }
  }
  return m;
}

}  // namespace turbo::serving
