#include "serving/metrics.h"

#include "common/stats.h"

namespace turbo::serving {

ServingMetrics summarize(const EngineResult& result) {
  ServingMetrics m;
  m.rejected = result.rejected;
  m.peak_batch = result.peak_batch;
  m.peak_kv_gb = result.peak_kv_bytes / 1e9;
  m.utilization =
      result.makespan_s > 0.0 ? result.busy_s / result.makespan_s : 0.0;
  m.preemptions = result.preemptions;
  m.preempted_recompute = result.preempted_recompute;
  m.preempted_swap = result.preempted_swap;
  m.swap_ins = result.swap_ins;
  m.swap_out_gb = result.swap_out_bytes / 1e9;
  m.swap_in_gb = result.swap_in_bytes / 1e9;
  m.swap_stall_s = result.swap_stall_s;
  m.checksum_failures = result.checksum_failures;
  m.recoveries = result.recoveries;
  m.degraded_steps = result.degraded_steps;
  m.injected_alloc_failures = result.injected_alloc_failures;
  m.max_preemptions_single_request = result.max_preemptions_single_request;
  m.recomputed_tokens = result.recomputed_tokens;

  std::vector<float> ttft;
  std::vector<float> tpot;
  std::vector<float> e2e;
  double tokens = 0.0;
  for (const Request& r : result.requests) {
    if (!r.finished() || !r.started()) continue;
    ++m.completed;
    tokens += static_cast<double>(r.generated);
    // Zero-generation requests complete without ever producing a token:
    // they have no first_token_s and no meaningful latency-per-output, so
    // they must not contribute TTFT or e2e samples.
    if (r.generated == 0) continue;
    ttft.push_back(static_cast<float>(r.ttft()));
    e2e.push_back(static_cast<float>(r.e2e_latency()));
    if (r.generated > 1) {
      tpot.push_back(static_cast<float>(r.tpot()));
    }
  }
  if (result.makespan_s > 0.0) {
    m.output_tokens_per_s = tokens / result.makespan_s;
  }
  if (!ttft.empty()) {
    m.ttft_p50 = percentile(ttft, 50);
    m.ttft_p99 = percentile(ttft, 99);
    m.e2e_p50 = percentile(e2e, 50);
    m.e2e_p99 = percentile(e2e, 99);
  }
  if (!tpot.empty()) {
    m.tpot_p50 = percentile(tpot, 50);
    m.tpot_p99 = percentile(tpot, 99);
  }
  return m;
}

}  // namespace turbo::serving
