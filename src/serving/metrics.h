// Serving-level metrics: throughput and latency percentiles.
#pragma once

#include <vector>

#include "serving/engine.h"

namespace turbo::serving {

struct ServingMetrics {
  std::size_t completed = 0;
  std::size_t rejected = 0;
  double output_tokens_per_s = 0.0;  // generated tokens / makespan
  double ttft_p50 = 0.0;             // time to first token
  double ttft_p99 = 0.0;
  double tpot_p50 = 0.0;             // per-token latency after the first
  double tpot_p99 = 0.0;
  double e2e_p50 = 0.0;
  double e2e_p99 = 0.0;
  double utilization = 0.0;          // busy / makespan
  std::size_t peak_batch = 0;
  double peak_kv_gb = 0.0;
};

ServingMetrics summarize(const EngineResult& result);

}  // namespace turbo::serving
