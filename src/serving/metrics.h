// Serving-level metrics: throughput and latency percentiles.
#pragma once

#include <vector>

#include "serving/engine.h"

namespace turbo::serving {

struct ServingMetrics {
  std::size_t completed = 0;
  std::size_t rejected = 0;
  double output_tokens_per_s = 0.0;  // generated tokens / makespan
  // Latency percentiles over requests that actually generated output;
  // zero-generation requests (max_new_tokens == 0) are excluded from the
  // TTFT and e2e vectors so they cannot drag the percentiles down.
  double ttft_p50 = 0.0;             // time to first token
  double ttft_p99 = 0.0;
  double tpot_p50 = 0.0;             // per-token latency after the first
  double tpot_p99 = 0.0;
  double e2e_p50 = 0.0;
  double e2e_p99 = 0.0;
  double utilization = 0.0;          // busy / makespan
  std::size_t peak_batch = 0;
  double peak_kv_gb = 0.0;

  // Robustness counters (copied from EngineResult; see serving/engine.h).
  std::size_t preemptions = 0;
  std::size_t preempted_recompute = 0;
  std::size_t preempted_swap = 0;
  std::size_t swap_ins = 0;
  double swap_out_gb = 0.0;
  double swap_in_gb = 0.0;
  double swap_stall_s = 0.0;
  std::size_t checksum_failures = 0;
  std::size_t recoveries = 0;
  std::size_t degraded_steps = 0;
  std::size_t injected_alloc_failures = 0;
  std::size_t max_preemptions_single_request = 0;
  std::size_t recomputed_tokens = 0;  // KV tokens re-derived after eviction
};

ServingMetrics summarize(const EngineResult& result);

}  // namespace turbo::serving
