// Serving-level metrics: throughput, latency percentiles, and per-class
// SLO attainment.
#pragma once

#include <array>
#include <vector>

#include "serving/engine.h"

namespace turbo::serving {

// Per-service-class slice of a run (indexed by ServiceClass).
struct ClassBreakdown {
  std::size_t requests = 0;       // trace requests in this class
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t timed_out = 0;
  std::size_t shed = 0;
  std::size_t preemptions = 0;    // eviction events charged to this class
  // Percentiles over this class's completed, token-producing requests.
  double ttft_p50 = 0.0;
  double ttft_p99 = 0.0;
  double e2e_p99 = 0.0;
  // TTFT-SLO attainment: of the requests that carried a TTFT deadline,
  // the fraction whose first token landed in time. 1.0 when none did.
  std::size_t deadline_requests = 0;
  std::size_t deadline_met = 0;
  double ttft_attainment = 1.0;
};

struct ServingMetrics {
  std::size_t completed = 0;
  std::size_t rejected = 0;
  // Requests in no terminal state when the run ended: nonzero if and only
  // if the max_sim_time_s safety stop fired (hit_time_limit), so a
  // truncated run can never masquerade as a clean one.
  std::size_t unfinished = 0;
  bool hit_time_limit = false;
  double output_tokens_per_s = 0.0;  // generated tokens / makespan
  // Latency percentiles over completed requests that actually generated
  // output; zero-generation requests (max_new_tokens == 0) are excluded
  // from the TTFT and e2e vectors so they cannot drag the percentiles
  // down, and timed-out requests never contribute samples.
  double ttft_p50 = 0.0;             // time to first token
  double ttft_p99 = 0.0;
  double tpot_p50 = 0.0;             // per-token latency after the first
  double tpot_p99 = 0.0;
  double e2e_p50 = 0.0;
  double e2e_p99 = 0.0;
  double utilization = 0.0;          // busy / makespan
  std::size_t peak_batch = 0;
  double peak_kv_gb = 0.0;

  // SLO / overload counters (copied from EngineResult).
  std::size_t timed_out = 0;
  std::size_t shed = 0;
  std::size_t ladder_escalations = 0;
  std::size_t ladder_deescalations = 0;
  std::size_t degraded_iterations = 0;
  std::size_t degraded_admissions = 0;
  double min_kv_bits = 0.0;
  double degrade_rmse_proxy = 0.0;
  std::array<ClassBreakdown, kServiceClassCount> by_class;

  // Robustness counters (copied from EngineResult; see serving/engine.h).
  std::size_t preemptions = 0;
  std::size_t preempted_recompute = 0;
  std::size_t preempted_swap = 0;
  std::size_t swap_ins = 0;
  double swap_out_gb = 0.0;
  double swap_in_gb = 0.0;
  double swap_stall_s = 0.0;
  std::size_t checksum_failures = 0;
  std::size_t recoveries = 0;
  std::size_t degraded_steps = 0;
  std::size_t injected_alloc_failures = 0;
  std::size_t max_preemptions_single_request = 0;
  std::size_t recomputed_tokens = 0;  // KV tokens re-derived after eviction

  // Crash-recovery counters (copied from EngineResult; see serving/engine.h).
  std::size_t snapshots_written = 0;
  std::size_t snapshot_bytes = 0;
  std::size_t snapshot_restores = 0;
  std::size_t snapshot_corruptions = 0;
  std::size_t restored_requests = 0;
  std::size_t replayed_tokens = 0;
  std::size_t crash_recomputes = 0;
  std::size_t replica_crashes = 0;
  std::size_t dedupe_drops = 0;

  // Tiered-swap counters (copied from EngineResult; see serving/engine.h).
  std::size_t tier_demotions = 0;
  std::size_t tier_promotions = 0;
  std::size_t tier_failovers = 0;
  std::size_t tier_blacklists = 0;
  std::size_t tier_fetch_retries = 0;
  std::size_t swap_unavailable_recomputes = 0;
  std::size_t swap_overflow_recomputes = 0;
  std::size_t swap_tiers_used = 0;
  double tier_retry_stall_s = 0.0;
  std::array<TieredSwapStore::TierCounters, kMaxSwapTiers> tier_stats = {};

  // Prefix-sharing counters (copied from EngineResult; see serving/engine.h).
  std::size_t prefix_hit_tokens = 0;
  std::size_t prefix_hit_requests = 0;
  std::size_t prefix_pages_attached = 0;
  std::size_t retained_pages_reclaimed = 0;
  std::size_t prefilled_tokens = 0;
  std::size_t peak_referenced_pages = 0;

  // Disaggregation counters (copied from EngineResult; see serving/engine.h).
  std::size_t prefill_handoffs = 0;
};

ServingMetrics summarize(const EngineResult& result);

}  // namespace turbo::serving
