// Crash-consistent replica snapshots.
//
// An outage is polite: the fleet router drains a replica before it goes
// dark, so nothing is lost. A crash is abrupt — in-flight scheduler and
// KV state is gone with the process. The SnapshotStore is what makes a
// crash cost latency instead of work: each replica periodically
// serializes its live scheduler state (requests, prefill cursors, parked
// byte counts) into a checksummed blob, and a restarted replica
// rehydrates from the last valid snapshot, recomputing from the prompt
// only what the snapshot predates or what a failed CRC invalidates.
//
// The store mirrors the TieredSwapStore contract: every function here
// that saves or restores a snapshot takes a FaultInjector* (turbo_lint
// rule `unfaultable-snapshot-io` enforces this), so snapshot-store
// unavailability and blob corruption stay injectable and
// seed-deterministic. Zero-probability plans draw no randomness: a
// snapshot-enabled run with an all-zero fault plan is bit-identical to
// the same run without the injector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/fault.h"
#include "serving/request.h"

namespace turbo::serving {

// One in-flight request as captured at snapshot time: the request record
// (timestamps, cumulative counters) plus its scheduler cursors and the
// size of its serialized KV stream. bytes == 0 means the KV was not
// resident (waiting / recompute-mode) and restore re-enters through the
// recompute path like any other stream-less re-admission.
struct SnapshotEntry {
  Request request;
  std::size_t context = 0;      // tokens cached when the snapshot ran
  std::size_t remaining = 0;    // tokens still to generate
  std::size_t prompt_left = 0;  // prefill cursor
  double kv_bits = 0.0;         // precision the KV was stored at
  double bytes = 0.0;           // serialized KV stream size (0 = none)
};

// Everything one replica persists per snapshot.
struct ReplicaSnapshot {
  std::size_t replica = 0;
  double taken_at_s = 0.0;
  std::vector<SnapshotEntry> entries;
};

// Binary round trip in the stream-format-v2 style (magic, version,
// little-endian payload, trailing CRC-32 over everything before it).
// deserialize_snapshot throws IntegrityError when the CRC does not match
// its payload and CheckError when the stream is malformed — exposed so
// tests can drive the detect-and-recover path byte by byte.
std::vector<std::uint8_t> serialize_snapshot(const ReplicaSnapshot& snap);
ReplicaSnapshot deserialize_snapshot(std::span<const std::uint8_t> bytes);

// Latest checksummed snapshot blob per replica. Replica crashes are
// independent events, so the store keeps exactly one blob per replica —
// a newer save replaces the older one atomically (a save that hits the
// injected-unavailability fault leaves the previous blob valid).
class SnapshotStore {
 public:
  struct SaveOutcome {
    bool stored = false;      // false: store unavailable, old blob kept
    std::size_t bytes = 0;    // serialized size when stored
  };

  enum class RestoreStatus : std::uint8_t {
    kHit,      // snapshot decoded and CRC-verified
    kMissing,  // replica never snapshotted (or blob was consumed)
    kCorrupt,  // blob failed its CRC — recompute from the prompt
  };

  struct RestoreOutcome {
    RestoreStatus status = RestoreStatus::kMissing;
    ReplicaSnapshot snapshot;  // valid only when status == kHit
  };

  // Serialize `snap` and replace `replica`'s blob. One
  // snapshot-unavailability Bernoulli draw per attempt.
  SaveOutcome save(std::size_t replica, const ReplicaSnapshot& snap,
                   FaultInjector* fault);

  // Decode `replica`'s blob. One snapshot-corruption Bernoulli draw per
  // stored blob (a corrupt draw flips one seed-determined byte before
  // parsing, and the CRC layer reports kCorrupt). The blob is consumed
  // either way: a restart never restores the same snapshot twice.
  RestoreOutcome restore(std::size_t replica, FaultInjector* fault);

  void erase(std::size_t replica) { blobs_.erase(replica); }
  std::size_t count() const { return blobs_.size(); }
  bool contains(std::size_t replica) const {
    return blobs_.find(replica) != blobs_.end();
  }

 private:
  // Ordered map so teardown scans deterministically (lint rule 8).
  std::map<std::size_t, std::vector<std::uint8_t>> blobs_;
};

}  // namespace turbo::serving
