// Request model for the serving simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace turbo::serving {

// Latency tier of a request. Lower enum values are more latency-sensitive:
// the class-aware scheduler admits, re-admits and protects interactive
// requests first and sheds batch requests first under sustained overload.
enum class ServiceClass : std::uint8_t {
  kInteractive = 0,
  kStandard = 1,
  kBatch = 2,
};

inline constexpr std::size_t kServiceClassCount = 3;

inline const char* service_class_name(ServiceClass c) {
  switch (c) {
    case ServiceClass::kInteractive:
      return "interactive";
    case ServiceClass::kStandard:
      return "standard";
    case ServiceClass::kBatch:
      return "batch";
  }
  return "?";
}

// Terminal state of a request. Every request ends in exactly one of the
// non-pending states (kShed is load-shedding — a rejection decided by the
// overload controller rather than by size); kPending after an engine run
// means the max_sim_time_s safety stop fired before the request resolved.
enum class Outcome : std::uint8_t {
  kPending = 0,
  kCompleted,
  kRejected,   // could never fit, refused at arrival
  kTimedOut,   // missed its TTFT or e2e deadline
  kShed,       // dropped by overload control before admission
};

inline const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kPending:
      return "pending";
    case Outcome::kCompleted:
      return "completed";
    case Outcome::kRejected:
      return "rejected";
    case Outcome::kTimedOut:
      return "timed-out";
    case Outcome::kShed:
      return "shed";
  }
  return "?";
}

struct Request {
  std::uint64_t id = 0;
  double arrival_s = 0.0;        // wall-clock arrival time
  std::size_t prompt_tokens = 0;
  std::size_t max_new_tokens = 0;
  // Prompt token ids, when the workload carries them (session traces:
  // shared system prompts, multi-turn history re-submission). Empty for
  // legacy length-only traces — the engine then schedules exactly as it
  // did before prefix sharing existed. When non-empty, size() matches
  // prompt_tokens and admission matches the ids against the radix index
  // to attach resident prefix pages instead of re-prefilling them.
  std::vector<std::int32_t> prompt_ids;
  // Scheduling priority: higher values are preempted last. Ties are
  // broken by arrival order (earlier arrivals are protected). Applied
  // *within* a service class; the class dominates.
  int priority = 0;
  ServiceClass service_class = ServiceClass::kStandard;

  // Optional SLO deadlines, relative to arrival (0 = none). A request
  // whose first token cannot land by arrival_s + ttft_deadline_s, or whose
  // completion cannot land by arrival_s + e2e_deadline_s, is timed out by
  // the engine (its pages are freed) instead of occupying the machine.
  double ttft_deadline_s = 0.0;
  double e2e_deadline_s = 0.0;

  // Filled by the engine. `prefill_start_s` is stamped when this request's
  // own first prefill chunk runs (not when its admission round begins) and
  // `first_token_s` when its own last chunk completes, so TTFT never
  // includes other requests admitted in the same round. Requests with
  // max_new_tokens == 0 never get a first_token_s (nothing is generated).
  double prefill_start_s = -1.0;
  double first_token_s = -1.0;   // time the first output token is ready
  double finish_s = -1.0;
  std::size_t generated = 0;
  // Prompt tokens served from resident shared-prefix pages at admission
  // (a radix-index hit): these were neither charged pages nor prefilled.
  std::size_t prefix_hit_tokens = 0;
  std::size_t preemptions = 0;   // times this request was evicted
  // Tokens whose KV was recomputed after a recompute-mode preemption (or a
  // corrupt swap-in recovered by recomputation). Distinguishes busy_s spent
  // on useful work from busy_s spent re-deriving evicted state.
  std::size_t recomputed_tokens = 0;
  // Swap tiers skipped (unavailable or blacklisted) while fetching this
  // request's parked KV stream back in (tiered swap store only).
  std::size_t tier_failovers = 0;
  // Times this request was drained off a dying replica and failed over to
  // another one (fleet router only; see src/fleet/router.h).
  std::size_t replica_failovers = 0;
  // How the request left the system (kPending = still in flight when the
  // simulation's safety stop fired).
  Outcome outcome = Outcome::kPending;
  // KV precision (average stored bits/element) this request's cache was
  // written at; 0 until first admitted. Below the configured kv_bits when
  // the degradation ladder downshifted this request.
  double kv_bits_used = 0.0;

  bool started() const { return prefill_start_s >= 0.0; }
  bool finished() const { return finish_s >= 0.0; }

  // Time to first token (from arrival). Valid once the first output token
  // exists (first_token_s >= 0; never true when max_new_tokens == 0).
  double ttft() const { return first_token_s - arrival_s; }
  // Mean time per output token after the first.
  double tpot() const {
    if (generated <= 1) return 0.0;
    return (finish_s - first_token_s) /
           static_cast<double>(generated - 1);
  }
  double e2e_latency() const { return finish_s - arrival_s; }

  // Whether the first token met the TTFT deadline (vacuously true without
  // one). Timed-out and never-started requests miss by definition.
  bool met_ttft_deadline() const {
    if (ttft_deadline_s <= 0.0) return true;
    return first_token_s >= 0.0 &&
           ttft() <= ttft_deadline_s + 1e-9;
  }
};

}  // namespace turbo::serving
