// Request model for the serving simulator.
#pragma once

#include <cstddef>
#include <cstdint>

namespace turbo::serving {

struct Request {
  std::uint64_t id = 0;
  double arrival_s = 0.0;        // wall-clock arrival time
  std::size_t prompt_tokens = 0;
  std::size_t max_new_tokens = 0;
  // Scheduling priority: higher values are preempted last. Ties are
  // broken by arrival order (earlier arrivals are protected).
  int priority = 0;

  // Filled by the engine. `prefill_start_s` is stamped when this request's
  // own first prefill chunk runs (not when its admission round begins) and
  // `first_token_s` when its own last chunk completes, so TTFT never
  // includes other requests admitted in the same round. Requests with
  // max_new_tokens == 0 never get a first_token_s (nothing is generated).
  double prefill_start_s = -1.0;
  double first_token_s = -1.0;   // time the first output token is ready
  double finish_s = -1.0;
  std::size_t generated = 0;
  std::size_t preemptions = 0;   // times this request was evicted
  // Tokens whose KV was recomputed after a recompute-mode preemption (or a
  // corrupt swap-in recovered by recomputation). Distinguishes busy_s spent
  // on useful work from busy_s spent re-deriving evicted state.
  std::size_t recomputed_tokens = 0;

  bool started() const { return prefill_start_s >= 0.0; }
  bool finished() const { return finish_s >= 0.0; }

  // Time to first token (from arrival). Valid once the first output token
  // exists (first_token_s >= 0; never true when max_new_tokens == 0).
  double ttft() const { return first_token_s - arrival_s; }
  // Mean time per output token after the first.
  double tpot() const {
    if (generated <= 1) return 0.0;
    return (finish_s - first_token_s) /
           static_cast<double>(generated - 1);
  }
  double e2e_latency() const { return finish_s - arrival_s; }
};

}  // namespace turbo::serving
