// Synthetic request traces.
//
// The paper's throughput experiments use fixed prompt/generation lengths;
// real serving sees a mix. The trace generator produces deterministic
// Poisson arrivals with log-normal prompt and generation lengths —
// the shape of public serving traces (ShareGPT-style) — so the simulator
// can evaluate methods under load rather than at a single batch point.
#pragma once

#include <cstdint>
#include <vector>

#include "serving/request.h"

namespace turbo::serving {

struct TraceConfig {
  double arrival_rate = 2.0;       // requests per second (Poisson)
  double duration_s = 120.0;       // trace length
  // Log-normal token-length parameters (of the underlying normal).
  double prompt_log_mean = 6.2;    // median ~ e^6.2 ~ 490 tokens
  double prompt_log_std = 0.8;
  double gen_log_mean = 4.8;       // median ~ 120 tokens
  double gen_log_std = 0.6;
  std::size_t max_prompt = 16384;  // truncation guards
  std::size_t max_gen = 2048;
  std::uint64_t seed = 42;
};

// Deterministic trace for a config.
std::vector<Request> generate_trace(const TraceConfig& config);

}  // namespace turbo::serving
