#include "serving/swap.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "kvcache/serialization.h"

namespace turbo::serving {

void HostSwapStore::store(std::uint64_t key, std::vector<std::uint8_t> stream,
                          FaultInjector* /*fault*/) {
  auto it = streams_.find(key);
  if (it != streams_.end()) {
    bytes_ -= it->second.size();
    streams_.erase(it);
  }
  bytes_ += stream.size();
  streams_.emplace(key, std::move(stream));
}

std::optional<std::vector<std::uint8_t>> HostSwapStore::fetch(
    std::uint64_t key, FaultInjector* /*fault*/) {
  auto it = streams_.find(key);
  if (it == streams_.end()) return std::nullopt;
  std::vector<std::uint8_t> out = std::move(it->second);
  bytes_ -= out.size();
  streams_.erase(it);
  return out;
}

// ---- TieredSwapStore -------------------------------------------------------

TieredSwapStore::TieredSwapStore(std::vector<SwapTier> tiers,
                                 TierHealthPolicy health)
    : tiers_(std::move(tiers)), health_(health) {
  TURBO_CHECK_MSG(!tiers_.empty(), "tiered store needs at least one tier");
  TURBO_CHECK_MSG(tiers_.size() <= kMaxSwapTiers,
                  "more tiers than kMaxSwapTiers fault profiles");
  for (const SwapTier& t : tiers_) {
    TURBO_CHECK_MSG(t.bandwidth > 0.0, "swap tier has no bandwidth");
  }
  health_.validate();
  used_.assign(tiers_.size(), 0);
  counters_.assign(tiers_.size(), TierCounters{});
  consecutive_failures_.assign(tiers_.size(), 0);
  blacklisted_until_.assign(tiers_.size(), 0.0);
}

bool TieredSwapStore::fits(std::size_t t, std::size_t bytes) const {
  return tiers_[t].capacity_bytes == 0 ||
         used_[t] + bytes <= tiers_[t].capacity_bytes;
}

void TieredSwapStore::note_failure(std::size_t t, double now_s) {
  ++counters_[t].failures;
  ++consecutive_failures_[t];
  if (consecutive_failures_[t] >= health_.blacklist_after) {
    blacklisted_until_[t] = now_s + health_.cooloff_s;
    ++counters_[t].blacklists;
    // Probing re-admission: when the cooloff expires the tier gets one
    // probe — a single failure re-blacklists, a single success clears.
    consecutive_failures_[t] = health_.blacklist_after - 1;
  }
}

void TieredSwapStore::note_success(std::size_t t) {
  consecutive_failures_[t] = 0;
}

void TieredSwapStore::make_room(std::size_t t, std::size_t bytes,
                                std::size_t iteration, StoreOutcome& out) {
  const std::size_t below = t + 1;
  if (below >= tiers_.size()) return;
  if (fits(t, bytes)) return;
  // Deterministic victim order: coldest first (smallest last-touch
  // iteration), ties broken by smallest stream key. The candidates are
  // snapshotted out of the unordered map and sorted so the stdlib's hash
  // layout can never leak into demotion order — the sorted-snapshot
  // idiom turbo_lint's `nondeterministic-iteration` rule requires.
  std::vector<std::pair<std::size_t, std::uint64_t>> victims;
  for (const auto& [key, e] : entries_) {
    if (e.tier == t) victims.emplace_back(e.last_touch, key);
  }
  std::sort(victims.begin(), victims.end());
  for (const auto& candidate : victims) {
    if (fits(t, bytes)) break;
    Entry& victim = entries_.at(candidate.second);
    if (!fits(below, victim.bytes)) return;
    used_[t] -= victim.bytes;
    used_[below] += victim.bytes;
    victim.tier = below;
    victim.last_touch = iteration;
    ++counters_[below].demotions_in;
    ++out.demotions;
    out.transfer_s +=
        static_cast<double>(victim.bytes) / tiers_[below].bandwidth;
  }
}

TieredSwapStore::StoreOutcome TieredSwapStore::store_impl(
    std::uint64_t key, std::vector<std::uint8_t> stream, std::size_t bytes,
    bool phantom, std::size_t iteration, double now_s, FaultInjector* fault) {
  erase(key);  // same-key overwrite: the old entry never double-counts
  StoreOutcome out;
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    if (blacklisted(t, now_s)) continue;  // skip without stall or draw
    if (fault != nullptr && fault->tier_unavailable(t, now_s)) {
      note_failure(t, now_s);
      continue;
    }
    note_success(t);
    if (!fits(t, bytes)) make_room(t, bytes, iteration, out);
    if (!fits(t, bytes)) continue;  // demotion could not clear enough
    Entry e;
    e.stream = std::move(stream);
    e.bytes = bytes;
    e.tier = t;
    e.last_touch = iteration;
    e.phantom = phantom;
    entries_.emplace(key, std::move(e));
    used_[t] += bytes;
    ++counters_[t].stores;
    // The legacy swap-spike knob models host-link contention and applies
    // to every store transfer (same draw position as the single-tier
    // engine had); the per-tier spike stacks on top.
    double mult = 1.0;
    if (fault != nullptr) {
      mult = fault->swap_latency_multiplier() *
             fault->tier_latency_multiplier(t);
    }
    out.transfer_s +=
        static_cast<double>(bytes) / tiers_[t].bandwidth * mult;
    out.stored = true;
    out.tier = t;
    return out;
  }
  return out;  // every tier full, blacklisted or unavailable
}

TieredSwapStore::StoreOutcome TieredSwapStore::store(
    std::uint64_t key, std::vector<std::uint8_t> stream,
    std::size_t iteration, double now_s, FaultInjector* fault) {
  const std::size_t bytes = stream.size();
  return store_impl(key, std::move(stream), bytes, false, iteration, now_s,
                    fault);
}

TieredSwapStore::StoreOutcome TieredSwapStore::store_phantom(
    std::uint64_t key, std::size_t bytes, std::size_t iteration, double now_s,
    FaultInjector* fault) {
  return store_impl(key, {}, bytes, true, iteration, now_s, fault);
}

TieredSwapStore::FetchOutcome TieredSwapStore::fetch(std::uint64_t key,
                                                     std::size_t iteration,
                                                     double now_s,
                                                     FaultInjector* fault) {
  FetchOutcome out;
  auto eit = entries_.find(key);
  if (eit == entries_.end()) return out;  // kMissing: no probes, no draws
  Entry& entry = eit->second;
  // Probe fastest-first, oblivious to where the entry actually lives:
  // what a real lookup over an opaque hierarchy does, and what makes
  // failover observable (a skipped tier is a tier that *would* have
  // been asked).
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    if (blacklisted(t, now_s)) {
      ++out.failovers;
      continue;
    }
    bool unavailable = false;
    for (std::size_t attempt = 0; attempt < health_.retry_budget; ++attempt) {
      unavailable = fault != nullptr && fault->tier_unavailable(t, now_s);
      if (!unavailable) break;
      note_failure(t, now_s);
      ++out.retries;
      out.stall_s += health_.retry_backoff_s;
      if (blacklisted(t, now_s)) break;  // budget cut short by blacklist
    }
    if (unavailable) {
      ++out.failovers;
      continue;
    }
    note_success(t);
    if (entry.tier != t) continue;  // responsive, but not the holder
    out.status = FetchStatus::kHit;
    out.tier = t;
    out.bytes = entry.bytes;
    double mult = 1.0;
    if (fault != nullptr) {
      mult = fault->swap_latency_multiplier() *
             fault->tier_latency_multiplier(t);
      out.corrupted = fault->tier_corrupt(t);
    }
    out.transfer_s =
        static_cast<double>(entry.bytes) / tiers_[t].bandwidth * mult;
    entry.last_touch = iteration;
    ++counters_[t].hits;
    return out;
  }
  // The holder tier (and everything faster) was unreachable: the entry
  // stays parked for a later attempt, the caller degrades to recompute.
  out.status = FetchStatus::kUnavailable;
  return out;
}

bool TieredSwapStore::promote(std::uint64_t key, std::size_t iteration,
                              double now_s, FaultInjector* fault,
                              double* transfer_s) {
  auto eit = entries_.find(key);
  if (eit == entries_.end()) return false;
  Entry& entry = eit->second;
  if (entry.tier == 0) return false;  // already fastest: no-op, no draws
  std::size_t target = tiers_.size();
  for (std::size_t t = 0; t < entry.tier; ++t) {
    if (blacklisted(t, now_s)) continue;
    if (fits(t, entry.bytes)) {
      target = t;
      break;
    }
  }
  if (target >= entry.tier) return false;  // no room above (never demote)
  if (fault != nullptr && fault->tier_unavailable(target, now_s)) {
    note_failure(target, now_s);
    return false;
  }
  note_success(target);
  const std::size_t src = entry.tier;
  used_[src] -= entry.bytes;
  used_[target] += entry.bytes;
  entry.tier = target;
  entry.last_touch = iteration;
  ++counters_[src].promotions_out;
  // Reading the stream up out of the slow tier dominates the move.
  if (transfer_s != nullptr) {
    *transfer_s += static_cast<double>(entry.bytes) / tiers_[src].bandwidth;
  }
  return true;
}

bool TieredSwapStore::erase(std::uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  used_[it->second.tier] -= it->second.bytes;
  entries_.erase(it);
  return true;
}

const std::vector<std::uint8_t>* TieredSwapStore::stream_of(
    std::uint64_t key) const {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.phantom) return nullptr;
  return &it->second.stream;
}

std::size_t TieredSwapStore::stored_bytes() const {
  std::size_t total = 0;
  for (const std::size_t u : used_) total += u;
  return total;
}

std::optional<std::size_t> TieredSwapStore::tier_of(std::uint64_t key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second.tier;
}

// ---- Byte-level swap paths -------------------------------------------------

std::size_t swap_out(PagedKvCache& cache, PagedKvCache::SeqId seq,
                     std::uint64_t key, HostSwapStore& store,
                     FaultInjector* fault) {
  std::vector<std::uint8_t> stream = serialize_sequence(cache, seq);
  const std::size_t bytes = stream.size();
  store.store(key, std::move(stream), fault);
  cache.release_sequence(seq);
  return bytes;
}

std::size_t swap_out(PagedKvCache& cache, PagedKvCache::SeqId seq,
                     std::uint64_t key, TieredSwapStore& store,
                     std::size_t iteration, double now_s, FaultInjector* fault,
                     TieredSwapStore::StoreOutcome* outcome) {
  std::vector<std::uint8_t> stream = serialize_sequence(cache, seq);
  const std::size_t bytes = stream.size();
  const TieredSwapStore::StoreOutcome out =
      store.store(key, std::move(stream), iteration, now_s, fault);
  if (outcome != nullptr) *outcome = out;
  if (!out.stored) return 0;  // refused: the sequence keeps its pages
  cache.release_sequence(seq);
  return bytes;
}

SwapInResult swap_in(PagedKvCache& cache, std::uint64_t key,
                     HostSwapStore& store, FaultInjector* fault) {
  std::optional<std::vector<std::uint8_t>> stream = store.fetch(key, fault);
  if (!stream.has_value()) return {SwapInStatus::kMissing, 0};
  // Deserialization runs with the fault injector and must never be able
  // to leak a mutated stream back into the store: keep a pristine copy
  // for the out-of-pages repark, so a later retry sees the exact bytes
  // that were swapped out.
  std::vector<std::uint8_t> pristine = *stream;
  try {
    const std::optional<PagedKvCache::SeqId> seq =
        deserialize_sequence(cache, *stream, fault);
    if (!seq.has_value()) {
      // Not corrupt, just no room: keep the stream for a later retry.
      store.store(key, std::move(pristine), fault);
      return {SwapInStatus::kOutOfPages, 0};
    }
    return {SwapInStatus::kOk, *seq};
  } catch (const CheckError&) {
    // IntegrityError (checksum) or structural damage: either way the
    // stream is unusable — drop it, the caller recomputes.
    return {SwapInStatus::kChecksumMismatch, 0};
  }
}

TieredSwapInResult swap_in(PagedKvCache& cache, std::uint64_t key,
                           TieredSwapStore& store, std::size_t iteration,
                           double now_s, FaultInjector* fault) {
  TieredSwapInResult r;
  r.fetch = store.fetch(key, iteration, now_s, fault);
  if (r.fetch.status == TieredSwapStore::FetchStatus::kMissing) {
    r.status = SwapInStatus::kMissing;
    return r;
  }
  if (r.fetch.status == TieredSwapStore::FetchStatus::kUnavailable) {
    r.status = SwapInStatus::kUnavailable;  // entry stays parked
    return r;
  }
  const std::vector<std::uint8_t>* parked = store.stream_of(key);
  TURBO_CHECK_MSG(parked != nullptr,
                  "tiered byte-level swap_in over a phantom entry");
  // Adopt from a scratch copy: the parked entry is only erased once the
  // stream is adopted or proven corrupt, and is never mutated, so an
  // out-of-pages retry always starts from pristine bytes.
  std::vector<std::uint8_t> scratch = *parked;
  if (r.fetch.corrupted && fault != nullptr && !scratch.empty()) {
    scratch[fault->corruption_offset(scratch.size())] ^= 0x01;
  }
  try {
    const std::optional<PagedKvCache::SeqId> seq =
        deserialize_sequence(cache, scratch, fault);
    if (!seq.has_value()) {
      r.status = SwapInStatus::kOutOfPages;  // entry retained, untouched
      return r;
    }
    store.erase(key);
    r.status = SwapInStatus::kOk;
    r.seq = *seq;
    return r;
  } catch (const CheckError&) {
    store.erase(key);
    r.status = SwapInStatus::kChecksumMismatch;
    return r;
  }
}

double swap_transfer_seconds(double bytes, const sim::DeviceSpec& dev,
                             double spike_multiplier) {
  TURBO_CHECK_MSG(dev.pcie_bandwidth > 0.0,
                  "device has no host-link bandwidth configured");
  TURBO_CHECK(spike_multiplier >= 1.0);
  return bytes / dev.pcie_bandwidth * spike_multiplier;
}

}  // namespace turbo::serving
