#include "serving/swap.h"

#include "common/check.h"
#include "kvcache/serialization.h"

namespace turbo::serving {

void HostSwapStore::store(std::uint64_t key,
                          std::vector<std::uint8_t> stream) {
  auto it = streams_.find(key);
  if (it != streams_.end()) {
    bytes_ -= it->second.size();
    streams_.erase(it);
  }
  bytes_ += stream.size();
  streams_.emplace(key, std::move(stream));
}

std::optional<std::vector<std::uint8_t>> HostSwapStore::fetch(
    std::uint64_t key) {
  auto it = streams_.find(key);
  if (it == streams_.end()) return std::nullopt;
  std::vector<std::uint8_t> out = std::move(it->second);
  bytes_ -= out.size();
  streams_.erase(it);
  return out;
}

std::size_t swap_out(PagedKvCache& cache, PagedKvCache::SeqId seq,
                     std::uint64_t key, HostSwapStore& store) {
  std::vector<std::uint8_t> stream = serialize_sequence(cache, seq);
  const std::size_t bytes = stream.size();
  store.store(key, std::move(stream));
  cache.release_sequence(seq);
  return bytes;
}

SwapInResult swap_in(PagedKvCache& cache, std::uint64_t key,
                     HostSwapStore& store, FaultInjector* fault) {
  std::optional<std::vector<std::uint8_t>> stream = store.fetch(key);
  if (!stream.has_value()) return {SwapInStatus::kMissing, 0};
  try {
    const std::optional<PagedKvCache::SeqId> seq =
        deserialize_sequence(cache, *stream, fault);
    if (!seq.has_value()) {
      // Not corrupt, just no room: keep the stream for a later retry.
      store.store(key, std::move(*stream));
      return {SwapInStatus::kOutOfPages, 0};
    }
    return {SwapInStatus::kOk, *seq};
  } catch (const CheckError&) {
    // IntegrityError (checksum) or structural damage: either way the
    // stream is unusable — drop it, the caller recomputes.
    return {SwapInStatus::kChecksumMismatch, 0};
  }
}

double swap_transfer_seconds(double bytes, const sim::DeviceSpec& dev,
                             double spike_multiplier) {
  TURBO_CHECK_MSG(dev.pcie_bandwidth > 0.0,
                  "device has no host-link bandwidth configured");
  TURBO_CHECK(spike_multiplier >= 1.0);
  return bytes / dev.pcie_bandwidth * spike_multiplier;
}

}  // namespace turbo::serving
