#include "model/profile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace turbo::model {

ModelProfile llama3_8b_profile() {
  ModelProfile p;
  p.name = "LLaMA3-8B-inst";
  p.heads = 8;
  p.head_dim = 32;
  p.outliers.qk_outlier_frac = 0.12;
  p.outliers.qk_outlier_scale = 2.5;
  p.outliers.v_outlier_frac = 0.05;
  p.outliers.v_outlier_scale = 2.5;
  p.outliers.head_variability = 0.6;
  return p;
}

ModelProfile qwen2_7b_profile() {
  ModelProfile p;
  p.name = "Qwen2-7B-inst";
  p.heads = 8;
  p.head_dim = 32;
  p.outliers.qk_outlier_frac = 0.12;
  p.outliers.qk_outlier_scale = 3.0;
  p.outliers.v_outlier_frac = 0.05;
  p.outliers.v_outlier_scale = 2.5;
  p.outliers.head_variability = 0.5;
  return p;
}

ModelProfile phi3_mini_profile() {
  ModelProfile p;
  p.name = "Phi3-3.8B-inst";
  p.heads = 8;
  p.head_dim = 32;
  // Phi-3's signature (Figs. 4 and 9): strong channel-wise value outliers.
  p.outliers.qk_outlier_frac = 0.12;
  p.outliers.qk_outlier_scale = 2.5;
  p.outliers.v_outlier_frac = 0.10;
  p.outliers.v_outlier_scale = 6.0;
  p.outliers.head_variability = 0.8;
  return p;
}

ModelProfile phi3_medium_profile() {
  ModelProfile p = phi3_mini_profile();
  p.name = "Phi3-medium-14B";
  p.heads = 10;
  p.outliers.head_variability = 0.7;
  return p;
}

std::vector<float> channel_scales(const ModelProfile& profile,
                                  std::size_t head, TensorKind kind,
                                  std::uint64_t seed) {
  TURBO_CHECK(head < profile.heads);
  const OutlierParams& o = profile.outliers;
  const double frac =
      kind == TensorKind::kQueryKey ? o.qk_outlier_frac : o.v_outlier_frac;
  const double scale =
      kind == TensorKind::kQueryKey ? o.qk_outlier_scale : o.v_outlier_scale;

  // Heads differ in outlier severity: head h's multiplier interpolates
  // between uniform (variability 0) and strongly ramped (variability 1).
  // Earlier heads end up "easy", later heads outlier-heavy — a stable,
  // deterministic structure the headwise selector can exploit. The
  // variability is applied to the *value* channels only: Q/K outliers are
  // a metric property shared by all heads (amplifying them per head would
  // collapse the key space's effective dimensionality), while the value
  // cache is where the per-head compression difficulty lives (Fig. 4:
  // "for value, there is no obvious outlier pattern" on easy heads, strong
  // channel outliers on hard ones — extreme on Phi-3).
  const double ramp =
      profile.heads <= 1
          ? 1.0
          : static_cast<double>(head) / static_cast<double>(profile.heads - 1);
  // Q/K severity varies mildly (±40% x variability): enough to rank heads
  // by key-quantization fragility without collapsing the key space's
  // effective dimension the way a full ramp would.
  const double severity =
      kind == TensorKind::kValue
          ? (1.0 - o.head_variability) + o.head_variability * 2.0 * ramp
          : 1.0 + o.head_variability * 0.4 * (2.0 * ramp - 1.0);

  Rng rng(seed ^ (0x9e3779b97f4a7c15ull * (head + 1)) ^
          (kind == TensorKind::kValue ? 0x5851f42d4c957f2dull : 0));
  std::vector<float> scales(profile.head_dim, 1.0f);
  for (float& s : scales) {
    if (rng.uniform() < frac * severity) {
      // Outlier magnitude varies channel to channel.
      s = static_cast<float>(scale * severity * rng.uniform(0.6, 1.4));
      s = std::max(s, 1.0f);
    }
  }
  return scales;
}

}  // namespace turbo::model
