// Multi-head fidelity pipeline: drives a KvAttention method across every
// head of a profile on generated Q/K/V and scores its outputs against the
// FP32 exact method. This is the numeric backbone for ablations that do
// not need the full proxy tasks (Table 5 composition, Fig. 10 adjacent
// sweeps) and for head-stats collection.
#pragma once

#include <cstdint>
#include <vector>

#include "attention/headwise.h"
#include "attention/method.h"
#include "model/generator.h"

namespace turbo::model {

struct PipelineConfig {
  std::size_t prefill_tokens = 256;
  std::size_t decode_steps = 32;
  std::uint64_t seed = 1;
  // Gaussian noise injected into every Q/K/V element before attention —
  // models upstream weight/activation quantization error (Table 5:
  // composition with LLM.int8() / QServe).
  double input_noise = 0.0;
};

struct MethodFidelity {
  double prefill_rel_err = 0;   // mean over heads vs exact
  double decode_rel_err = 0;    // mean over heads and steps vs exact
  double bytes_per_token = 0;   // measured KV-cache footprint
};

MethodFidelity measure_fidelity(const QkvGenerator& generator,
                                const KvAttentionFactory& factory,
                                const PipelineConfig& config);

// Per-head K/V statistics over a generated prefill (input to the headwise
// selector and the Figure 7b ablation).
std::vector<HeadStats> collect_head_stats(const QkvGenerator& generator,
                                          std::size_t tokens);

// Grouped-query attention fidelity: one KV cache (and method instance) per
// generated head serves `group_size` query heads — the group's first query
// drives decode() (appending the shared k/v), the rest attend(). This is
// the LLaMA-3/Qwen-2/Phi-3-medium cache layout; KV quantization error hits
// every query head of the group.
MethodFidelity measure_fidelity_gqa(const QkvGenerator& generator,
                                    const KvAttentionFactory& factory,
                                    const PipelineConfig& config,
                                    std::size_t group_size);

}  // namespace turbo::model
