#include "model/deep.h"

#include <cmath>

#include "baselines/fp16_method.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace turbo::model {

namespace {

// x [tokens x d_in] * p [d_in x d_out].
MatrixF project(const MatrixF& x, const MatrixF& p) {
  return matmul(x, p);
}

// RMS-normalize each row to unit RMS (keeps magnitudes from drifting
// across layers, like a pre-norm transformer).
void rms_normalize(MatrixF& x) {
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = x.row(r);
    double ms = 0.0;
    for (float v : row) ms += static_cast<double>(v) * static_cast<double>(v);
    ms /= static_cast<double>(row.size());
    const float inv = static_cast<float>(1.0 / std::sqrt(ms + 1e-9));
    for (float& v : row) v *= inv;
  }
}

struct LayerWeights {
  std::vector<MatrixF> p_q;  // per head [d_model x head_dim]
  std::vector<MatrixF> p_k;
  std::vector<MatrixF> p_v;
  MatrixF w_o;               // [d_model x d_model]
};

LayerWeights make_layer(const ModelProfile& profile, Rng& rng) {
  const std::size_t d_model = profile.heads * profile.head_dim;
  const double proj_std = 1.0 / std::sqrt(static_cast<double>(d_model));
  LayerWeights w;
  auto random_proj = [&] {
    MatrixF p(d_model, profile.head_dim);
    rng.fill_normal(p.flat(), 0.0, proj_std);
    return p;
  };
  for (std::size_t h = 0; h < profile.heads; ++h) {
    w.p_q.push_back(random_proj());
    w.p_k.push_back(random_proj());
    w.p_v.push_back(random_proj());
  }
  w.w_o = MatrixF(d_model, d_model);
  rng.fill_normal(w.w_o.flat(), 0.0, proj_std);
  return w;
}

// One layer forward for one stream, using a fresh method instance per
// head. The first half of the sequence is prefilled; the second half runs
// token-by-token through decode() — this is what actually reads each
// method's *compressed* cache (KIVI/GEAR prefill attention is exact; only
// their decode consumes the quantized representation).
MatrixF layer_forward(const MatrixF& x, const LayerWeights& w,
                      const ModelProfile& profile,
                      const KvAttentionFactory& factory,
                      std::span<const float> qk_scale_template) {
  const std::size_t tokens = x.rows();
  const std::size_t prefill = tokens / 2;
  const std::size_t d_model = profile.heads * profile.head_dim;
  MatrixF concat(tokens, d_model);
  for (std::size_t h = 0; h < profile.heads; ++h) {
    MatrixF q = project(x, w.p_q[h]);
    MatrixF k = project(x, w.p_k[h]);
    MatrixF v = project(x, w.p_v[h]);
    // Inject the profile's channel-outlier structure into the metric so
    // the quantization stress matches the single-layer experiments.
    for (std::size_t r = 0; r < tokens; ++r) {
      for (std::size_t c = 0; c < profile.head_dim; ++c) {
        q(r, c) *= qk_scale_template[c];
        k(r, c) *= qk_scale_template[c];
      }
    }
    auto method = factory(profile.head_dim);
    const MatrixF o = method->prefill(q.block_rows(0, prefill),
                                      k.block_rows(0, prefill),
                                      v.block_rows(0, prefill));
    for (std::size_t r = 0; r < prefill; ++r) {
      for (std::size_t c = 0; c < profile.head_dim; ++c) {
        concat(r, h * profile.head_dim + c) = o(r, c);
      }
    }
    for (std::size_t r = prefill; r < tokens; ++r) {
      const auto od = method->decode(q.row(r), k.row(r), v.row(r));
      for (std::size_t c = 0; c < profile.head_dim; ++c) {
        concat(r, h * profile.head_dim + c) = od[c];
      }
    }
  }
  MatrixF mixed = matmul(concat, w.w_o);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    mixed.flat()[i] += x.flat()[i];  // residual
  }
  rms_normalize(mixed);
  return mixed;
}

}  // namespace

DepthDivergence measure_depth_divergence(const ModelProfile& profile,
                                         const KvAttentionFactory& factory,
                                         const DeepConfig& config) {
  TURBO_CHECK(config.layers >= 1);
  const std::size_t d_model = profile.heads * profile.head_dim;
  Rng rng(config.seed);

  MatrixF x_method(config.tokens, d_model);
  rng.fill_normal(x_method.flat(), 0.0, 1.0);
  rms_normalize(x_method);
  MatrixF x_exact = x_method;

  const std::vector<float> qk_scales =
      channel_scales(profile, profile.heads / 2, TensorKind::kQueryKey,
                     config.seed);

  AttentionConfig exact_cfg;
  const auto exact_factory = make_exact_factory(exact_cfg);

  DepthDivergence out;
  for (std::size_t l = 0; l < config.layers; ++l) {
    const LayerWeights w = make_layer(profile, rng);
    x_method = layer_forward(x_method, w, profile, factory, qk_scales);
    x_exact = layer_forward(x_exact, w, profile, exact_factory, qk_scales);
    out.per_layer.push_back(relative_error(x_method, x_exact));
  }
  return out;
}

}  // namespace turbo::model
