// Model profiles: the distributional fingerprints of the evaluated LLMs.
//
// The accuracy experiments cannot run the real checkpoints (no weights, no
// GPU), so each model is represented by the property that actually drives
// the paper's accuracy story (Figure 4, Appendix D): the per-head,
// per-channel magnitude structure of Q/K/V. LLaMA-3 and Qwen-2 have
// moderate channel outliers in Q/K and mild value outliers; Phi-3's value
// cache has pronounced channel-wise outliers — which is why token-wise
// value quantizers (KIVI/GEAR) degrade on it while channel-wise FlashQ
// holds up.
//
// The geometry here is the *accuracy-sim* scale (heads x head_dim actually
// simulated on CPU); the full latency geometry lives in sim::ModelGeometry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace turbo::model {

struct OutlierParams {
  double qk_outlier_frac = 0.06;   // fraction of Q/K channels amplified
  double qk_outlier_scale = 5.0;   // amplification factor
  double v_outlier_frac = 0.03;    // fraction of V channels amplified
  double v_outlier_scale = 2.0;
  // How unevenly outlier structure is distributed across heads in [0, 1]:
  // 0 = every head identical; 1 = a few heads carry all the outliers.
  double head_variability = 0.6;
};

struct ModelProfile {
  std::string name;
  std::size_t heads = 8;      // heads simulated per layer
  std::size_t head_dim = 32;  // per-head dimension simulated
  OutlierParams outliers;
};

ModelProfile llama3_8b_profile();
ModelProfile qwen2_7b_profile();
ModelProfile phi3_mini_profile();
ModelProfile phi3_medium_profile();

// Deterministic per-(head, channel) magnitude multipliers for one tensor.
// `kind` selects the Q/K metric channels or the V channels.
enum class TensorKind { kQueryKey, kValue };

std::vector<float> channel_scales(const ModelProfile& profile,
                                  std::size_t head, TensorKind kind,
                                  std::uint64_t seed);

}  // namespace turbo::model
