// Deep-stack error propagation.
//
// Single-layer fidelity understates what matters in a 32-layer model: the
// approximation error of layer l perturbs the queries/keys/values of layer
// l+1, and the question is whether those perturbations compound or wash
// out. This pipeline runs a stack of attention layers twice — once with
// the method under test, once exactly — evolving the two hidden-state
// streams independently from the same initialization, and reports the
// relative divergence after every layer.
//
// Layer structure (transformer-like, with fixed random weights):
//   per head h:  q/k/v = x * P_{q,k,v}^{(l,h)}      (random projections)
//                o_h   = Attention(q, k, v)          (method or exact)
//   x' = RMSNorm(x + Concat(o_1..o_H) * W_o^{(l)})   (residual + mix)
#pragma once

#include <cstdint>
#include <vector>

#include "attention/method.h"
#include "model/profile.h"

namespace turbo::model {

struct DeepConfig {
  std::size_t layers = 6;
  std::size_t tokens = 128;  // prefill length (causal attention per layer)
  std::uint64_t seed = 1;
};

struct DepthDivergence {
  // Relative error ||x_method - x_exact|| / ||x_exact|| after each layer.
  std::vector<double> per_layer;
};

DepthDivergence measure_depth_divergence(const ModelProfile& profile,
                                         const KvAttentionFactory& factory,
                                         const DeepConfig& config);

}  // namespace turbo::model
