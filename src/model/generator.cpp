#include "model/generator.h"

#include "common/rng.h"

namespace turbo::model {

QkvGenerator::QkvGenerator(ModelProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), seed_(seed) {}

std::vector<float> QkvGenerator::qk_scales(std::size_t head) const {
  return channel_scales(profile_, head, TensorKind::kQueryKey, seed_);
}

std::vector<float> QkvGenerator::v_scales(std::size_t head) const {
  return channel_scales(profile_, head, TensorKind::kValue, seed_);
}

HeadTensors QkvGenerator::generate_head(std::size_t head,
                                        std::size_t tokens) const {
  const std::size_t d = profile_.head_dim;
  const std::vector<float> qk = qk_scales(head);
  const std::vector<float> vs = v_scales(head);

  Rng rng(seed_ + 0x1234u + head * 0x9e37u);
  HeadTensors t{MatrixF(tokens, d), MatrixF(tokens, d), MatrixF(tokens, d)};
  for (std::size_t r = 0; r < tokens; ++r) {
    // Occasional token-level spikes (attention-sink-like tokens) give the
    // token dimension a visible but weaker outlier structure (Figs. 8/9:
    // channel gaps dominate token gaps).
    const float token_spike =
        rng.uniform() < 0.02 ? static_cast<float>(rng.uniform(1.5, 2.5))
                             : 1.0f;
    for (std::size_t c = 0; c < d; ++c) {
      t.q(r, c) = static_cast<float>(rng.normal()) * qk[c] * token_spike;
      t.k(r, c) = static_cast<float>(rng.normal()) * qk[c] * token_spike;
      t.v(r, c) = static_cast<float>(rng.normal()) * vs[c] * token_spike;
    }
  }
  return t;
}

}  // namespace turbo::model
