#include "model/pipeline.h"

#include "baselines/fp16_method.h"
#include "common/rng.h"
#include "common/stats.h"

namespace turbo::model {

namespace {

void add_noise(MatrixF& m, Rng& rng, double stddev) {
  if (stddev <= 0.0) return;
  for (float& v : m.flat()) {
    v += static_cast<float>(rng.normal(0.0, stddev));
  }
}

}  // namespace

MethodFidelity measure_fidelity(const QkvGenerator& generator,
                                const KvAttentionFactory& factory,
                                const PipelineConfig& config) {
  const ModelProfile& profile = generator.profile();
  AttentionConfig exact_cfg;  // defaults: causal, 64x64

  MethodFidelity out;
  double prefill_err_sum = 0.0;
  double decode_err_sum = 0.0;
  std::size_t decode_count = 0;
  double bytes_sum = 0.0;

  for (std::size_t h = 0; h < profile.heads; ++h) {
    HeadTensors t =
        generator.generate_head(h, config.prefill_tokens + config.decode_steps);
    Rng noise_rng(config.seed + h * 77);
    add_noise(t.q, noise_rng, config.input_noise);
    add_noise(t.k, noise_rng, config.input_noise);
    add_noise(t.v, noise_rng, config.input_noise);

    const MatrixF q_pre = t.q.block_rows(0, config.prefill_tokens);
    const MatrixF k_pre = t.k.block_rows(0, config.prefill_tokens);
    const MatrixF v_pre = t.v.block_rows(0, config.prefill_tokens);

    auto method = factory(profile.head_dim);
    ExactAttention exact(profile.head_dim, exact_cfg);

    const MatrixF o = method->prefill(q_pre, k_pre, v_pre);
    const MatrixF o_ref = exact.prefill(q_pre, k_pre, v_pre);
    prefill_err_sum += relative_error(o, o_ref);

    for (std::size_t s = 0; s < config.decode_steps; ++s) {
      const std::size_t row = config.prefill_tokens + s;
      const auto od = method->decode(t.q.row(row), t.k.row(row), t.v.row(row));
      const auto od_ref =
          exact.decode(t.q.row(row), t.k.row(row), t.v.row(row));
      decode_err_sum += relative_error(od, od_ref);
      ++decode_count;
    }
    bytes_sum += static_cast<double>(method->kv_cache_bytes()) /
                 static_cast<double>(method->token_count());
  }

  out.prefill_rel_err = prefill_err_sum / static_cast<double>(profile.heads);
  out.decode_rel_err =
      decode_count == 0
          ? 0.0
          : decode_err_sum / static_cast<double>(decode_count);
  out.bytes_per_token = bytes_sum / static_cast<double>(profile.heads);
  return out;
}

MethodFidelity measure_fidelity_gqa(const QkvGenerator& generator,
                                    const KvAttentionFactory& factory,
                                    const PipelineConfig& config,
                                    std::size_t group_size) {
  TURBO_CHECK(group_size >= 1);
  const ModelProfile& profile = generator.profile();
  AttentionConfig exact_cfg;

  MethodFidelity out;
  double prefill_err_sum = 0.0;
  double decode_err_sum = 0.0;
  std::size_t decode_count = 0;
  double bytes_sum = 0.0;

  for (std::size_t h = 0; h < profile.heads; ++h) {
    HeadTensors t = generator.generate_head(
        h, config.prefill_tokens + config.decode_steps);
    // Per-query-head variations of the shared-KV queries: deterministic
    // perturbations of the base query stream.
    Rng q_rng(config.seed + 1000 + h);
    std::vector<MatrixF> group_q(group_size, t.q);
    for (std::size_t g = 1; g < group_size; ++g) {
      for (float& x : group_q[g].flat()) {
        x += static_cast<float>(q_rng.normal(0.0, 0.3));
      }
    }

    auto method = factory(profile.head_dim);
    ExactAttention exact(profile.head_dim, exact_cfg);
    const MatrixF k_pre = t.k.block_rows(0, config.prefill_tokens);
    const MatrixF v_pre = t.v.block_rows(0, config.prefill_tokens);

    // Prefill with the group-leader queries; other groups' prefill outputs
    // share the same cache state, so scoring the leader suffices for the
    // cache-quality signal.
    const MatrixF q_pre = group_q[0].block_rows(0, config.prefill_tokens);
    prefill_err_sum += relative_error(method->prefill(q_pre, k_pre, v_pre),
                                      exact.prefill(q_pre, k_pre, v_pre));

    for (std::size_t s = 0; s < config.decode_steps; ++s) {
      const std::size_t row = config.prefill_tokens + s;
      // Group leader appends the shared k/v.
      decode_err_sum += relative_error(
          method->decode(group_q[0].row(row), t.k.row(row), t.v.row(row)),
          exact.decode(group_q[0].row(row), t.k.row(row), t.v.row(row)));
      ++decode_count;
      // Remaining query heads attend the shared cache.
      for (std::size_t g = 1; g < group_size; ++g) {
        decode_err_sum += relative_error(method->attend(group_q[g].row(row)),
                                         exact.attend(group_q[g].row(row)));
        ++decode_count;
      }
    }
    bytes_sum += static_cast<double>(method->kv_cache_bytes()) /
                 static_cast<double>(method->token_count());
  }

  out.prefill_rel_err = prefill_err_sum / static_cast<double>(profile.heads);
  out.decode_rel_err =
      decode_count == 0 ? 0.0
                        : decode_err_sum / static_cast<double>(decode_count);
  out.bytes_per_token = bytes_sum / static_cast<double>(profile.heads);
  return out;
}

std::vector<HeadStats> collect_head_stats(const QkvGenerator& generator,
                                          std::size_t tokens) {
  const ModelProfile& profile = generator.profile();
  std::vector<HeadStats> stats(profile.heads);
  for (std::size_t h = 0; h < profile.heads; ++h) {
    const HeadTensors t = generator.generate_head(h, tokens);
    stats[h] = combine_head_stats(compute_head_stats(t.k),
                                  compute_head_stats(t.v));
  }
  return stats;
}

}  // namespace turbo::model
