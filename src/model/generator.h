// Synthetic Q/K/V generator reproducing the distributional structure of
// Figures 4, 8 and 9: per-head channel-magnitude outliers (strong in Q/K
// for all models, strong in V for Phi-3), mild token-wise spikes, and
// head-to-head variability.
#pragma once

#include <cstdint>

#include "common/matrix.h"
#include "model/profile.h"

namespace turbo::model {

struct HeadTensors {
  MatrixF q;
  MatrixF k;
  MatrixF v;
};

class QkvGenerator {
 public:
  QkvGenerator(ModelProfile profile, std::uint64_t seed);

  const ModelProfile& profile() const { return profile_; }

  // Generate one head's [tokens x head_dim] tensors. Deterministic in
  // (seed, head, tokens). Q and K share the head's metric channel scales,
  // so attention scores weight outlier channels the way real rotary
  // heads do; V gets its own (value) channel scales.
  HeadTensors generate_head(std::size_t head, std::size_t tokens) const;

  // The channel multipliers behind a head's tensors (for Figure 4-style
  // distribution plots and headwise-selection experiments).
  std::vector<float> qk_scales(std::size_t head) const;
  std::vector<float> v_scales(std::size_t head) const;

 private:
  ModelProfile profile_;
  std::uint64_t seed_;
};

}  // namespace turbo::model
