#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace turbo {

namespace {

// SplitMix64, used only to expand the seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TURBO_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  TURBO_CHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v > limit);
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller. u1 in (0,1] to avoid log(0).
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

void Rng::fill_normal(std::span<float> out, double mean, double stddev) {
  for (float& v : out) {
    v = static_cast<float>(normal(mean, stddev));
  }
}

}  // namespace turbo
