#include "common/check.h"

namespace turbo::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream oss;
  oss << "TURBO_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw CheckError(oss.str());
}

}  // namespace turbo::detail
