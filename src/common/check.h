// Error-checking primitives used across the library.
//
// TURBO_CHECK is an always-on precondition check that throws
// turbo::CheckError with a formatted message including the failing
// expression and source location. It is used at public API boundaries;
// internal hot loops use plain assert() semantics via TURBO_DCHECK, which
// compiles out in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace turbo {

// Exception thrown when a TURBO_CHECK fails.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace turbo

#define TURBO_CHECK(expr)                                            \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::turbo::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
    }                                                                \
  } while (false)

#define TURBO_CHECK_MSG(expr, msg)                                   \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream oss_;                                       \
      oss_ << msg;                                                   \
      ::turbo::detail::check_failed(#expr, __FILE__, __LINE__,      \
                                    oss_.str());                     \
    }                                                                \
  } while (false)

#ifdef NDEBUG
#define TURBO_DCHECK(expr) ((void)0)
#else
#define TURBO_DCHECK(expr) TURBO_CHECK(expr)
#endif
