#include "common/crc32.h"

#include <array>

namespace turbo {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t crc) {
  std::uint32_t c = ~crc;
  for (const std::uint8_t byte : data) {
    c = kCrcTable[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace turbo
