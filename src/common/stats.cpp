#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace turbo {

MinMax min_max(std::span<const float> values) {
  if (values.empty()) return {};
  MinMax mm{values[0], values[0]};
  for (float v : values) {
    mm.min = std::min(mm.min, v);
    mm.max = std::max(mm.max, v);
  }
  return mm;
}

double mean(std::span<const float> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (float v : values) sum += static_cast<double>(v);
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const float> values) {
  if (values.empty()) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (float v : values) {
    const double d = static_cast<double>(v) - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double percentile(std::span<const float> values, double p) {
  TURBO_CHECK(!values.empty());
  TURBO_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<float> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) +
         frac * (static_cast<double>(sorted[hi]) -
                 static_cast<double>(sorted[lo]));
}

double mse(std::span<const float> a, std::span<const float> b) {
  TURBO_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

double rmse(std::span<const float> a, std::span<const float> b) {
  return std::sqrt(mse(a, b));
}

double max_abs_error(std::span<const float> a, std::span<const float> b) {
  TURBO_CHECK(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) -
                             static_cast<double>(b[i])));
  }
  return m;
}

double relative_error(std::span<const float> a, std::span<const float> b) {
  TURBO_CHECK(a.size() == b.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    num += d * d;
    den += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : std::sqrt(num);
  return std::sqrt(num / den);
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  TURBO_CHECK(a.size() == b.size());
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    na += static_cast<double>(a[i]) * static_cast<double>(a[i]);
    nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  if (na == 0.0 && nb == 0.0) return 1.0;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double histogram_entropy(std::span<const float> values, std::size_t bins) {
  TURBO_CHECK(bins > 0);
  if (values.empty()) return 0.0;
  const MinMax mm = min_max(values);
  if (mm.gap() == 0.0f) return 0.0;
  std::vector<std::size_t> counts(bins, 0);
  const double width = static_cast<double>(mm.gap()) / static_cast<double>(bins);
  for (float v : values) {
    auto idx = static_cast<std::size_t>(static_cast<double>(v - mm.min) / width);
    counts[std::min(idx, bins - 1)]++;
  }
  double h = 0.0;
  const double n = static_cast<double>(values.size());
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log(p);
  }
  return h;
}

std::vector<MinMax> channel_min_max(const MatrixF& m) {
  std::vector<MinMax> out(m.cols());
  if (m.rows() == 0) return out;
  for (std::size_t c = 0; c < m.cols(); ++c) {
    out[c] = {m(0, c), m(0, c)};
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out[c].min = std::min(out[c].min, row[c]);
      out[c].max = std::max(out[c].max, row[c]);
    }
  }
  return out;
}

std::vector<MinMax> token_min_max(const MatrixF& m) {
  std::vector<MinMax> out(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    out[r] = min_max(m.row(r));
  }
  return out;
}

double rmse(const MatrixF& a, const MatrixF& b) {
  return rmse(a.flat(), b.flat());
}
double relative_error(const MatrixF& a, const MatrixF& b) {
  return relative_error(a.flat(), b.flat());
}
double max_abs_error(const MatrixF& a, const MatrixF& b) {
  return max_abs_error(a.flat(), b.flat());
}

}  // namespace turbo
