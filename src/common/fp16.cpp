#include "common/fp16.h"

#include <bit>
#include <cstring>

#include "common/check.h"

namespace turbo {

std::uint16_t float_to_half_bits(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7fffffffu;

  if (abs >= 0x7f800000u) {
    // Inf or NaN. Preserve NaN-ness by setting a mantissa bit.
    const std::uint32_t mantissa = (abs > 0x7f800000u) ? 0x0200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | mantissa);
  }
  if (abs >= 0x477ff000u) {
    // Rounds to a value >= 2^16 - 2^4: overflow to infinity.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x38800000u) {
    // Subnormal half (or zero). Shift the implicit bit into the mantissa.
    if (abs < 0x33000000u) {
      // Smaller than half the smallest subnormal: rounds to zero.
      return static_cast<std::uint16_t>(sign);
    }
    const std::uint32_t exp = abs >> 23;
    std::uint32_t mantissa = (abs & 0x007fffffu) | 0x00800000u;
    // The target subnormal code is round(value / 2^-24) = round(M * 2^(e-126))
    // with M the 24-bit mantissa, so drop (126 - e) bits, in [14, 24].
    const std::uint32_t dropped = 126u - exp;
    const std::uint32_t half_ulp = 1u << (dropped - 1);
    const std::uint32_t rem = mantissa & ((1u << dropped) - 1u);
    mantissa >>= dropped;
    if (rem > half_ulp || (rem == half_ulp && (mantissa & 1u))) {
      ++mantissa;
    }
    return static_cast<std::uint16_t>(sign | mantissa);
  }
  // Normal half. Re-bias the exponent (127 -> 15) and round the mantissa.
  std::uint32_t half = ((abs >> 13) & 0x3ffu) | (((abs >> 23) - 112u) << 10);
  const std::uint32_t rem = abs & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) {
    ++half;  // May carry into the exponent; that is correct rounding.
  }
  return static_cast<std::uint16_t>(sign | half);
}

float half_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mantissa = h & 0x3ffu;

  std::uint32_t out;
  if (exp == 0) {
    if (mantissa == 0) {
      out = sign;  // +-0
    } else {
      // Subnormal: normalize into a float.
      int e = -1;
      std::uint32_t m = mantissa;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      m &= 0x3ffu;
      out = sign | ((112u - static_cast<std::uint32_t>(e)) << 23) | (m << 13);
    }
  } else if (exp == 0x1fu) {
    out = sign | 0x7f800000u | (mantissa << 13);  // Inf / NaN
  } else {
    out = sign | ((exp + 112u) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(out);
}

void round_span_to_fp16(std::span<float> values) {
  for (float& v : values) {
    v = round_to_fp16(v);
  }
}

float fp16_dot_fp32_accumulate(std::span<const float> a,
                               std::span<const float> b) {
  TURBO_CHECK(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += round_to_fp16(a[i]) * round_to_fp16(b[i]);
  }
  return acc;
}

}  // namespace turbo
