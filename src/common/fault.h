// Deterministic, seed-driven fault injection.
//
// Robustness claims ("the engine degrades gracefully under page
// exhaustion", "corrupt swap streams are detected and recovered") are
// only testable if the failures can be produced on demand and *exactly*
// reproduced. A FaultPlan is a pure description of failure probabilities;
// a FaultInjector turns it into a deterministic Bernoulli stream from its
// own private RNG, so the same seed yields the same fault sequence in
// every build configuration. Probes with probability 0 consume no
// randomness: a plan with all-zero probabilities behaves bit-identically
// to no injector at all.
//
// Threaded through PageAllocator (allocation failure), the KV-stream
// deserializers (byte corruption) and the serving engine (swap latency
// spikes). All probes count how often they fired, so tests can assert the
// injected rate was actually exercised.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/check.h"
#include "common/rng.h"

namespace turbo {

struct FaultPlan {
  std::uint64_t seed = 0;

  // Probability an individual page allocation fails even though the pool
  // has free pages (models fragmentation / transient allocator pressure).
  double page_alloc_failure_prob = 0.0;

  // Probability a serialized KV stream is corrupted in transit (one byte
  // flipped at a seed-determined offset) per deserialize / swap-in.
  double stream_corruption_prob = 0.0;

  // Probability a swap transfer hits a latency spike, and its cost
  // multiplier (models PCIe contention).
  double swap_spike_prob = 0.0;
  double swap_spike_multiplier = 8.0;

  bool enabled() const {
    return page_alloc_failure_prob > 0.0 || stream_corruption_prob > 0.0 ||
           swap_spike_prob > 0.0;
  }

  // Probabilities must be in [0, 1] and the spike multiplier >= 1; a plan
  // outside that range is a configuration error, not a fault to inject.
  void validate() const {
    const auto is_prob = [](double p) { return p >= 0.0 && p <= 1.0; };
    TURBO_CHECK_MSG(is_prob(page_alloc_failure_prob),
                    "page_alloc_failure_prob outside [0, 1]");
    TURBO_CHECK_MSG(is_prob(stream_corruption_prob),
                    "stream_corruption_prob outside [0, 1]");
    TURBO_CHECK_MSG(is_prob(swap_spike_prob),
                    "swap_spike_prob outside [0, 1]");
    TURBO_CHECK_MSG(swap_spike_multiplier >= 1.0,
                    "swap_spike_multiplier must be >= 1");
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), rng_(plan.seed) {
    plan_.validate();
  }

  const FaultPlan& plan() const { return plan_; }

  // One Bernoulli draw per call; returns true when the fault fires.
  bool fail_page_alloc() {
    if (!probe(plan_.page_alloc_failure_prob)) return false;
    ++injected_alloc_failures_;
    return true;
  }
  bool corrupt_stream() {
    if (!probe(plan_.stream_corruption_prob)) return false;
    ++injected_corruptions_;
    return true;
  }
  // 1.0 normally; the spike multiplier when the spike fault fires.
  double swap_latency_multiplier() {
    if (!probe(plan_.swap_spike_prob)) return 1.0;
    ++injected_spikes_;
    return plan_.swap_spike_multiplier;
  }

  // Seed-determined byte offset for an injected corruption.
  std::size_t corruption_offset(std::size_t stream_size) {
    if (stream_size == 0) return 0;
    return static_cast<std::size_t>(rng_.uniform_index(stream_size));
  }

  std::size_t injected_alloc_failures() const {
    return injected_alloc_failures_;
  }
  std::size_t injected_corruptions() const { return injected_corruptions_; }
  std::size_t injected_spikes() const { return injected_spikes_; }

 private:
  bool probe(double prob) {
    if (prob <= 0.0) return false;  // no RNG draw: plan stays inert
    return rng_.uniform() < prob;
  }

  FaultPlan plan_;
  Rng rng_;
  std::size_t injected_alloc_failures_ = 0;
  std::size_t injected_corruptions_ = 0;
  std::size_t injected_spikes_ = 0;
};

}  // namespace turbo
