// Deterministic, seed-driven fault injection.
//
// Robustness claims ("the engine degrades gracefully under page
// exhaustion", "corrupt swap streams are detected and recovered") are
// only testable if the failures can be produced on demand and *exactly*
// reproduced. A FaultPlan is a pure description of failure probabilities;
// a FaultInjector turns it into a deterministic Bernoulli stream from its
// own private RNG, so the same seed yields the same fault sequence in
// every build configuration. Probes with probability 0 consume no
// randomness: a plan with all-zero probabilities behaves bit-identically
// to no injector at all.
//
// Threaded through PageAllocator (allocation failure), the KV-stream
// deserializers (byte corruption) and the serving engine (swap latency
// spikes). All probes count how often they fired, so tests can assert the
// injected rate was actually exercised.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace turbo {

// Maximum number of swap tiers a plan can describe (serving/swap.h builds
// host -> disk by default; the array leaves room for deeper hierarchies).
inline constexpr std::size_t kMaxSwapTiers = 4;

// Maximum number of data-parallel engine replicas a plan can describe
// (src/fleet routes over at most this many).
inline constexpr std::size_t kMaxReplicas = 8;

// One deterministic replica unavailability window [start_s, end_s).
struct OutageWindow {
  double start_s = 0.0;
  double end_s = 0.0;

  bool covers(double now_s) const {
    return end_s > start_s && now_s >= start_s && now_s < end_s;
  }
};

// Per-replica fault profile for the fleet router. Replica health is pure
// wall-clock arithmetic (NO RNG draw): a replica is down for every probe
// whose timestamp falls inside one of its outage windows — or, after a
// crash, inside [crash_at_s, crash_at_s + restart_delay_s) — so killing a
// replica cannot perturb the Bernoulli draw sequence of any other fault:
// a windowed fleet run stays bit-comparable to the same seed without the
// window everywhere outside it.
//
// An outage is polite (the router drains live KV before the replica goes
// dark); a crash is abrupt (in-flight state is lost and recovered from
// the last snapshot, or recomputed from the prompt).
struct ReplicaFaultPlan {
  // Deterministic outage windows, kept sorted and non-overlapping by
  // add_outage(). A replica can flap: down, back up, down again.
  std::vector<OutageWindow> outages;

  // Abrupt crash at crash_at_s (0 disables); the replica restarts — from
  // its last crash-consistent snapshot — restart_delay_s later.
  double crash_at_s = 0.0;
  double restart_delay_s = 0.0;

  void add_outage(double start_s, double end_s) {
    TURBO_CHECK_MSG(end_s > start_s,
                    "replica outage window must have end > start");
    auto it = outages.begin();
    while (it != outages.end() && it->start_s < start_s) ++it;
    outages.insert(it, OutageWindow{start_s, end_s});
  }

  bool crash_enabled() const { return crash_at_s > 0.0; }
  double restart_at_s() const { return crash_at_s + restart_delay_s; }

  bool enabled() const { return !outages.empty() || crash_enabled(); }

  bool down_at(double now_s) const {
    for (const OutageWindow& w : outages) {
      if (w.covers(now_s)) return true;
    }
    return crash_enabled() && now_s >= crash_at_s &&
           now_s < restart_at_s();
  }

  // End of the downtime covering `now_s` (now_s itself when healthy):
  // the instant the replica accepts work again.
  double down_until(double now_s) const {
    for (const OutageWindow& w : outages) {
      if (w.covers(now_s)) return w.end_s;
    }
    if (crash_enabled() && now_s >= crash_at_s && now_s < restart_at_s()) {
      return restart_at_s();
    }
    return now_s;
  }

  void validate() const {
    for (std::size_t i = 0; i < outages.size(); ++i) {
      TURBO_CHECK_MSG(outages[i].end_s > outages[i].start_s,
                      "replica outage window must have end > start");
      if (i > 0) {
        TURBO_CHECK_MSG(outages[i - 1].end_s <= outages[i].start_s,
                        "replica outage windows must not overlap");
      }
    }
    TURBO_CHECK_MSG(crash_at_s >= 0.0, "crash_at_s must be >= 0");
    TURBO_CHECK_MSG(restart_delay_s >= 0.0,
                    "restart_delay_s must be >= 0");
  }
};

// Per-tier fault profile for the tiered swap store. The probabilistic
// knobs are one Bernoulli draw per probe; the outage window is pure
// wall-clock arithmetic (NO RNG draw), so forcing a tier down for a fixed
// interval cannot perturb the draw sequence of every other fault — a
// windowed run stays bit-comparable to the same seed without the window
// everywhere outside it.
struct TierFaultPlan {
  // Probability a store/fetch probe finds the tier unavailable (models a
  // flapping disk, a busy host allocator, a dropped link).
  double unavailable_prob = 0.0;
  // Probability a stream fetched from this tier comes back corrupted
  // (detected downstream by the CRC layer, recovered by recompute).
  double corruption_prob = 0.0;
  // Probability a transfer touching this tier hits a latency spike.
  double spike_prob = 0.0;
  double spike_multiplier = 8.0;
  // Deterministic unavailability window [start, end): every probe whose
  // timestamp falls inside it fails. start == end disables the window.
  double outage_start_s = 0.0;
  double outage_end_s = 0.0;

  bool enabled() const {
    return unavailable_prob > 0.0 || corruption_prob > 0.0 ||
           spike_prob > 0.0 || outage_end_s > outage_start_s;
  }

  void validate() const {
    const auto is_prob = [](double p) { return p >= 0.0 && p <= 1.0; };
    TURBO_CHECK_MSG(is_prob(unavailable_prob),
                    "tier unavailable_prob outside [0, 1]");
    TURBO_CHECK_MSG(is_prob(corruption_prob),
                    "tier corruption_prob outside [0, 1]");
    TURBO_CHECK_MSG(is_prob(spike_prob), "tier spike_prob outside [0, 1]");
    TURBO_CHECK_MSG(spike_multiplier >= 1.0,
                    "tier spike_multiplier must be >= 1");
    TURBO_CHECK_MSG(outage_end_s >= outage_start_s,
                    "tier outage window must have end >= start");
  }
};

struct FaultPlan {
  std::uint64_t seed = 0;

  // Probability an individual page allocation fails even though the pool
  // has free pages (models fragmentation / transient allocator pressure).
  double page_alloc_failure_prob = 0.0;

  // Probability a serialized KV stream is corrupted in transit (one byte
  // flipped at a seed-determined offset) per deserialize / swap-in.
  double stream_corruption_prob = 0.0;

  // Probability a swap transfer hits a latency spike, and its cost
  // multiplier (models PCIe contention).
  double swap_spike_prob = 0.0;
  double swap_spike_multiplier = 8.0;

  // Probability a replica-to-replica KV migration (src/fleet) is corrupted
  // in transit — detected by the CRC layer on arrival, recovered by
  // recomputing the KV on the destination replica.
  double migration_corruption_prob = 0.0;

  // Probability a prefill->decode KV handoff send attempt (src/fleet
  // disaggregation) hits a transient interconnect fault before any bytes
  // move. The router retries with backoff up to its per-request handoff
  // budget; an exhausted budget degrades the handoff to recompute on the
  // destination — latency, never a lost request.
  double handoff_transient_prob = 0.0;

  // Probability a replica snapshot save attempt finds the snapshot store
  // unavailable (the previous snapshot, if any, stays valid), and the
  // probability a restored snapshot blob comes back corrupted — detected
  // by the CRC layer, recovered by recomputing from the prompt.
  double snapshot_unavailable_prob = 0.0;
  double snapshot_corruption_prob = 0.0;

  // Per-tier fault profiles, indexed by swap-tier position (0 = fastest).
  // All-zero profiles are inert: probes with probability 0 draw nothing.
  std::array<TierFaultPlan, kMaxSwapTiers> tiers = {};

  // Per-replica outage windows, indexed by fleet replica (src/fleet).
  // Deterministic: health probes never draw RNG.
  std::array<ReplicaFaultPlan, kMaxReplicas> replicas = {};

  bool enabled() const {
    if (page_alloc_failure_prob > 0.0 || stream_corruption_prob > 0.0 ||
        swap_spike_prob > 0.0 || migration_corruption_prob > 0.0 ||
        handoff_transient_prob > 0.0 || snapshot_unavailable_prob > 0.0 ||
        snapshot_corruption_prob > 0.0) {
      return true;
    }
    for (const TierFaultPlan& t : tiers) {
      if (t.enabled()) return true;
    }
    for (const ReplicaFaultPlan& r : replicas) {
      if (r.enabled()) return true;
    }
    return false;
  }

  // Probabilities must be in [0, 1] and the spike multiplier >= 1; a plan
  // outside that range is a configuration error, not a fault to inject.
  void validate() const {
    const auto is_prob = [](double p) { return p >= 0.0 && p <= 1.0; };
    TURBO_CHECK_MSG(is_prob(page_alloc_failure_prob),
                    "page_alloc_failure_prob outside [0, 1]");
    TURBO_CHECK_MSG(is_prob(stream_corruption_prob),
                    "stream_corruption_prob outside [0, 1]");
    TURBO_CHECK_MSG(is_prob(swap_spike_prob),
                    "swap_spike_prob outside [0, 1]");
    TURBO_CHECK_MSG(swap_spike_multiplier >= 1.0,
                    "swap_spike_multiplier must be >= 1");
    TURBO_CHECK_MSG(is_prob(migration_corruption_prob),
                    "migration_corruption_prob outside [0, 1]");
    TURBO_CHECK_MSG(is_prob(handoff_transient_prob),
                    "handoff_transient_prob outside [0, 1]");
    TURBO_CHECK_MSG(is_prob(snapshot_unavailable_prob),
                    "snapshot_unavailable_prob outside [0, 1]");
    TURBO_CHECK_MSG(is_prob(snapshot_corruption_prob),
                    "snapshot_corruption_prob outside [0, 1]");
    for (const TierFaultPlan& t : tiers) t.validate();
    for (const ReplicaFaultPlan& r : replicas) r.validate();
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), rng_(plan.seed) {
    plan_.validate();
  }

  const FaultPlan& plan() const { return plan_; }

  // One Bernoulli draw per call; returns true when the fault fires.
  bool fail_page_alloc() {
    if (!probe(plan_.page_alloc_failure_prob)) return false;
    ++injected_alloc_failures_;
    return true;
  }
  bool corrupt_stream() {
    if (!probe(plan_.stream_corruption_prob)) return false;
    ++injected_corruptions_;
    return true;
  }
  // 1.0 normally; the spike multiplier when the spike fault fires.
  double swap_latency_multiplier() {
    if (!probe(plan_.swap_spike_prob)) return 1.0;
    ++injected_spikes_;
    return plan_.swap_spike_multiplier;
  }

  // Per-tier probes for the tiered swap store (serving/swap.h). The
  // deterministic outage window is checked before the probabilistic probe
  // so a windowed outage never consumes a draw.
  bool tier_unavailable(std::size_t tier, double now_s) {
    TURBO_CHECK(tier < kMaxSwapTiers);
    const TierFaultPlan& t = plan_.tiers[tier];
    if (t.outage_end_s > t.outage_start_s && now_s >= t.outage_start_s &&
        now_s < t.outage_end_s) {
      ++injected_tier_unavailable_;
      return true;  // deterministic window: no RNG draw
    }
    if (!probe(t.unavailable_prob)) return false;
    ++injected_tier_unavailable_;
    return true;
  }
  bool tier_corrupt(std::size_t tier) {
    TURBO_CHECK(tier < kMaxSwapTiers);
    if (!probe(plan_.tiers[tier].corruption_prob)) return false;
    ++injected_tier_corruptions_;
    return true;
  }
  double tier_latency_multiplier(std::size_t tier) {
    TURBO_CHECK(tier < kMaxSwapTiers);
    const TierFaultPlan& t = plan_.tiers[tier];
    if (!probe(t.spike_prob)) return 1.0;
    ++injected_tier_spikes_;
    return t.spike_multiplier;
  }

  // Replica health probe for the fleet router (src/fleet). Pure window
  // check — never draws RNG — so the router's health model cannot perturb
  // any other fault stream.
  bool replica_down(std::size_t replica, double now_s) {
    TURBO_CHECK(replica < kMaxReplicas);
    if (!plan_.replicas[replica].down_at(now_s)) return false;
    ++injected_replica_down_;
    return true;  // deterministic window: no RNG draw
  }

  // Crash probe for the fleet router: has this replica's crash instant
  // passed? Pure wall-clock arithmetic — never draws RNG — so an abrupt
  // crash cannot perturb any other fault stream. The router fires it at
  // most once per crash event.
  bool replica_crashed(std::size_t replica, double now_s) {
    TURBO_CHECK(replica < kMaxReplicas);
    const ReplicaFaultPlan& r = plan_.replicas[replica];
    if (!r.crash_enabled() || now_s < r.crash_at_s) return false;
    ++injected_replica_crashes_;
    return true;  // deterministic instant: no RNG draw
  }

  // One Bernoulli draw per snapshot save attempt: the store was
  // unreachable, nothing was written (the previous snapshot survives).
  bool snapshot_unavailable() {
    if (!probe(plan_.snapshot_unavailable_prob)) return false;
    ++injected_snapshot_unavailable_;
    return true;
  }

  // One Bernoulli draw per snapshot restore: the blob comes back with a
  // byte flipped (caught by the CRC layer, recovered by recompute).
  bool corrupt_snapshot() {
    if (!probe(plan_.snapshot_corruption_prob)) return false;
    ++injected_snapshot_corruptions_;
    return true;
  }

  // One Bernoulli draw per replica-to-replica KV migration.
  bool corrupt_migration() {
    if (!probe(plan_.migration_corruption_prob)) return false;
    ++injected_migration_corruptions_;
    return true;
  }

  // One Bernoulli draw per prefill->decode handoff send attempt (before
  // any wire time is paid; the corruption draw happens only for attempts
  // that actually transfer).
  bool handoff_transient() {
    if (!probe(plan_.handoff_transient_prob)) return false;
    ++injected_handoff_transients_;
    return true;
  }

  // Seed-determined byte offset for an injected corruption.
  std::size_t corruption_offset(std::size_t stream_size) {
    if (stream_size == 0) return 0;
    return static_cast<std::size_t>(rng_.uniform_index(stream_size));
  }

  std::size_t injected_alloc_failures() const {
    return injected_alloc_failures_;
  }
  std::size_t injected_corruptions() const { return injected_corruptions_; }
  std::size_t injected_spikes() const { return injected_spikes_; }
  std::size_t injected_tier_unavailable() const {
    return injected_tier_unavailable_;
  }
  std::size_t injected_tier_corruptions() const {
    return injected_tier_corruptions_;
  }
  std::size_t injected_tier_spikes() const { return injected_tier_spikes_; }
  std::size_t injected_replica_down() const { return injected_replica_down_; }
  std::size_t injected_replica_crashes() const {
    return injected_replica_crashes_;
  }
  std::size_t injected_snapshot_unavailable() const {
    return injected_snapshot_unavailable_;
  }
  std::size_t injected_snapshot_corruptions() const {
    return injected_snapshot_corruptions_;
  }
  std::size_t injected_migration_corruptions() const {
    return injected_migration_corruptions_;
  }
  std::size_t injected_handoff_transients() const {
    return injected_handoff_transients_;
  }

 private:
  bool probe(double prob) {
    if (prob <= 0.0) return false;  // no RNG draw: plan stays inert
    return rng_.uniform() < prob;
  }

  FaultPlan plan_;
  Rng rng_;
  std::size_t injected_alloc_failures_ = 0;
  std::size_t injected_corruptions_ = 0;
  std::size_t injected_spikes_ = 0;
  std::size_t injected_tier_unavailable_ = 0;
  std::size_t injected_tier_corruptions_ = 0;
  std::size_t injected_tier_spikes_ = 0;
  std::size_t injected_replica_down_ = 0;
  std::size_t injected_replica_crashes_ = 0;
  std::size_t injected_snapshot_unavailable_ = 0;
  std::size_t injected_snapshot_corruptions_ = 0;
  std::size_t injected_migration_corruptions_ = 0;
  std::size_t injected_handoff_transients_ = 0;
};

}  // namespace turbo
