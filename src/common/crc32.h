// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Integrity tag for serialized KV-cache streams: a swapped-out sequence
// that comes back from a host store (or disk) must be detected as corrupt
// *before* its pages are adopted, so the scheduler can fall back to
// recompute instead of silently decoding garbage. Software table-driven;
// this is nowhere near a hot path (one pass per swap event).
#pragma once

#include <cstdint>
#include <span>

namespace turbo {

// Digest of `data`. Pass a previous digest as `crc` to extend it across
// chunks: crc32(b, crc32(a)) == crc32(ab).
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t crc = 0);

}  // namespace turbo
