// Deterministic random number generation.
//
// Every experiment in this repo is seeded so that tests, benches and the
// EXPERIMENTS.md numbers are exactly reproducible across runs. We use our
// own xoshiro256++ rather than std::mt19937 + std::normal_distribution
// because libstdc++ does not guarantee distribution output stability across
// versions; the Box–Muller transform here is fully specified by this file.
#pragma once

#include <cstdint>
#include <span>

namespace turbo {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform 64-bit value (xoshiro256++).
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  // Standard normal via Box–Muller (caches the second variate).
  double normal();

  // Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  // Fill a span with i.i.d. normals.
  void fill_normal(std::span<float> out, double mean, double stddev);

  // Fisher–Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace turbo
