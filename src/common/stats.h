// Descriptive statistics and error metrics.
//
// These are the measurement primitives for every accuracy experiment:
// quantization error (Fig. 10), channel gap distributions (Figs. 4/8/9),
// and attention-output fidelity used by the proxy tasks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.h"

namespace turbo {

struct MinMax {
  float min = 0.0f;
  float max = 0.0f;
  float gap() const { return max - min; }
};

// Min / max over a span. Empty input returns {0, 0}.
MinMax min_max(std::span<const float> values);

double mean(std::span<const float> values);
double stddev(std::span<const float> values);  // population stddev

// p in [0, 100]; linear interpolation between order statistics.
double percentile(std::span<const float> values, double p);

// Mean squared error between two equal-length spans.
double mse(std::span<const float> a, std::span<const float> b);

// sqrt(MSE).
double rmse(std::span<const float> a, std::span<const float> b);

// max_i |a_i - b_i|.
double max_abs_error(std::span<const float> a, std::span<const float> b);

// ||a - b|| / ||b||  (relative Frobenius error with b as reference).
double relative_error(std::span<const float> a, std::span<const float> b);

// Cosine similarity; returns 1 when either vector is all-zero and equal.
double cosine_similarity(std::span<const float> a, std::span<const float> b);

// Shannon entropy (nats) of |values| binned into `bins` equal-width buckets
// over [min, max]. Used by the "Entropy" head-selection baseline (Fig. 7b).
double histogram_entropy(std::span<const float> values, std::size_t bins);

// Per-column (channel) min/max of a [tokens x channels] matrix — the
// statistic behind Figure 4's channel min-max distributions.
std::vector<MinMax> channel_min_max(const MatrixF& m);

// Per-row (token) min/max — the token-wise counterpart used by Figs. 8/9.
std::vector<MinMax> token_min_max(const MatrixF& m);

// Matrix overloads of the error metrics (flattened).
double rmse(const MatrixF& a, const MatrixF& b);
double relative_error(const MatrixF& a, const MatrixF& b);
double max_abs_error(const MatrixF& a, const MatrixF& b);

}  // namespace turbo
