// Minimal dense row-major matrix used throughout the library.
//
// Attention tensors in this codebase are always handled per (batch, head)
// pair, so a 2-D [tokens x head_dim] container is the natural unit. The
// class owns its storage and exposes rows as std::span, which is how tiled
// kernels consume it. Kept deliberately small: no expression templates, no
// views with strides — tiling code slices explicitly via row spans.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"

namespace turbo {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    TURBO_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    TURBO_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<T> row(std::size_t r) {
    TURBO_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const T> row(std::size_t r) const {
    TURBO_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<T> flat() { return {data_.data(), data_.size()}; }
  std::span<const T> flat() const { return {data_.data(), data_.size()}; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(T value) { data_.assign(data_.size(), value); }

  // Copy a contiguous block of rows [row_begin, row_begin + n_rows) into a
  // new matrix. Tiling code uses this to materialize Q/K/V tiles.
  // The bound is stated subtraction-side so a huge n_rows cannot wrap
  // row_begin + n_rows around std::size_t and sneak past the check.
  Matrix block_rows(std::size_t row_begin, std::size_t n_rows) const {
    TURBO_CHECK(row_begin <= rows_ && n_rows <= rows_ - row_begin);
    Matrix out(n_rows, cols_);
    for (std::size_t r = 0; r < n_rows; ++r) {
      auto src = row(row_begin + r);
      auto dst = out.row(r);
      for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
    }
    return out;
  }

  // Append the rows of `other` (same column count) to this matrix.
  void append_rows(const Matrix& other) {
    TURBO_CHECK(cols_ == other.cols_ || rows_ == 0);
    if (rows_ == 0) cols_ = other.cols_;
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    rows_ += other.rows_;
  }

  void append_row(std::span<const T> values) {
    TURBO_CHECK(cols_ == values.size() || rows_ == 0);
    if (rows_ == 0) cols_ = values.size();
    data_.insert(data_.end(), values.begin(), values.end());
    ++rows_;
  }

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixI8 = Matrix<std::int8_t>;
using MatrixI32 = Matrix<std::int32_t>;

// C = A * B^T where A is [m x k] and B is [n x k]; the shape attention's
// QK^T takes (both operands stored token-major).
inline MatrixF matmul_transposed(const MatrixF& a, const MatrixF& b) {
  TURBO_CHECK(a.cols() == b.cols());
  MatrixF out(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto ra = a.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      auto rb = b.row(j);
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += ra[k] * rb[k];
      out(i, j) = acc;
    }
  }
  return out;
}

// C = A * B with A [m x k], B [k x n]; the shape of attention's P*V.
inline MatrixF matmul(const MatrixF& a, const MatrixF& b) {
  TURBO_CHECK(a.cols() == b.rows());
  MatrixF out(a.rows(), b.cols(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto ra = a.row(i);
    auto ro = out.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float av = ra[k];
      auto rb = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) ro[j] += av * rb[j];
    }
  }
  return out;
}

// Integer matmul with 32-bit accumulation: C = A * B^T for int8 operands.
// This is the arithmetic an INT8 tensor-core MMA performs and is the core
// primitive FlashQ's quantized execution relies on.
inline MatrixI32 matmul_transposed_i8(const MatrixI8& a, const MatrixI8& b) {
  TURBO_CHECK(a.cols() == b.cols());
  MatrixI32 out(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto ra = a.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      auto rb = b.row(j);
      std::int32_t acc = 0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<std::int32_t>(ra[k]) *
               static_cast<std::int32_t>(rb[k]);
      }
      out(i, j) = acc;
    }
  }
  return out;
}

// Integer matmul with 32-bit accumulation: C = A * B for int8 operands.
inline MatrixI32 matmul_i8(const MatrixI8& a, const MatrixI8& b) {
  TURBO_CHECK(a.cols() == b.rows());
  MatrixI32 out(a.rows(), b.cols(), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto ra = a.row(i);
    auto ro = out.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const std::int32_t av = ra[k];
      auto rb = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        ro[j] += av * static_cast<std::int32_t>(rb[j]);
      }
    }
  }
  return out;
}

}  // namespace turbo
