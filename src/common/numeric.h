// Checked numeric conversions for the quantization paths.
//
// TurboAttention's arithmetic lives in narrow integer types (INT8 tiles,
// INT4/INT2 codes, int8 scales and zero-points), where a bare
// static_cast<> silently truncates anything out of range. Every narrowing
// conversion in the library goes through the helpers here instead, so the
// clamp semantics are explicit and `tools/turbo_lint` can forbid unchecked
// casts everywhere else (rule: no `static_cast<std::int8_t>` outside this
// file — see docs/STATIC_ANALYSIS.md).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "common/check.h"

namespace turbo {

// Saturating conversion between arithmetic types: values outside the
// destination's representable range clamp to the nearest bound instead of
// wrapping (unsigned), truncating (signed narrowing, implementation-defined
// pre-C++20, silent always) or invoking UB (float -> int out of range).
template <typename To, typename From>
constexpr To saturate_cast(From value) {
  static_assert(std::is_arithmetic_v<To> && std::is_arithmetic_v<From>,
                "saturate_cast requires arithmetic types");
  if constexpr (std::is_floating_point_v<From> && std::is_integral_v<To>) {
    // Compare in the float domain; casting an out-of-range float to an
    // integer type is undefined behaviour, so clamp first. NaN (the only
    // value where v != v) maps to zero rather than UB.
    if (value != value) return To{0};
    const From lo = static_cast<From>(std::numeric_limits<To>::min());
    const From hi = static_cast<From>(std::numeric_limits<To>::max());
    if (value <= lo) return std::numeric_limits<To>::min();
    if (value >= hi) return std::numeric_limits<To>::max();
    return static_cast<To>(value);
  } else if constexpr (std::is_integral_v<From> && std::is_integral_v<To>) {
    using Wide = std::common_type_t<From, To, std::int64_t>;
    const Wide v = static_cast<Wide>(value);
    const Wide lo = static_cast<Wide>(std::numeric_limits<To>::min());
    const Wide hi = static_cast<Wide>(std::numeric_limits<To>::max());
    if constexpr (std::is_signed_v<From> && std::is_unsigned_v<To>) {
      if (value < From{0}) return To{0};
    }
    if constexpr (std::is_unsigned_v<From> && std::is_signed_v<To>) {
      if (static_cast<std::uint64_t>(value) >
          static_cast<std::uint64_t>(std::numeric_limits<To>::max())) {
        return std::numeric_limits<To>::max();
      }
      return static_cast<To>(value);
    }
    if (v < lo) return std::numeric_limits<To>::min();
    if (v > hi) return std::numeric_limits<To>::max();
    return static_cast<To>(value);
  } else {
    return static_cast<To>(value);
  }
}

// Deliberate modular truncation to one byte: keep the low 8 bits, discard
// the rest. This is for bit-packing code where the discarded high bits are
// intentionally routed to the next byte — NOT a range clamp. Anywhere a
// value is supposed to fit, use saturate_cast or clamp_to_i8 instead.
template <typename T>
constexpr std::uint8_t trunc_to_u8(T v) {
  static_assert(std::is_integral_v<T>, "trunc_to_u8 requires an integer");
  return static_cast<std::uint8_t>(
      static_cast<std::make_unsigned_t<T>>(v) & 0xFFu);
}

// Clamp an integer into the symmetric INT8 lattice [-127, 127] used by the
// first quantization stage (the -128 code is never produced; symmetric
// quantization keeps the grid sign-balanced).
constexpr std::int8_t clamp_to_i8(std::int32_t v) {
  if (v < -127) return static_cast<std::int8_t>(-127);
  if (v > 127) return static_cast<std::int8_t>(127);
  return static_cast<std::int8_t>(v);
}

// Round-to-nearest-even then clamp into [-127, 127]. This is the inner step
// of symmetric INT8 quantization: q = clamp(round(x / s)). NaN maps to 0 so
// a poisoned activation quantizes to the zero code instead of UB.
inline std::int8_t clamp_to_i8(float x) {
  if (std::isnan(x)) return static_cast<std::int8_t>(0);
  const float r = std::nearbyint(x);
  if (r <= -127.0f) return static_cast<std::int8_t>(-127);
  if (r >= 127.0f) return static_cast<std::int8_t>(127);
  return static_cast<std::int8_t>(r);
}

// Round-to-nearest-even then clamp into [lo, hi] (both within int8 range).
// Used where the valid code range is narrower than the full lattice, e.g.
// non-negative softmax probabilities quantized into [0, 127].
inline std::int8_t clamp_to_i8(float x, std::int32_t lo, std::int32_t hi) {
  TURBO_DCHECK(-128 <= lo && lo <= hi && hi <= 127);
  if (std::isnan(x)) return clamp_to_i8(lo > 0 ? lo : (hi < 0 ? hi : 0));
  const float r = std::nearbyint(x);
  if (r <= static_cast<float>(lo)) return clamp_to_i8(lo);
  if (r >= static_cast<float>(hi)) return clamp_to_i8(hi);
  return static_cast<std::int8_t>(r);
}

}  // namespace turbo

// Check that a floating-point expression is finite (not NaN / not ±inf).
// Scale computations divide by data-dependent maxima; a non-finite scale
// silently corrupts every code in the tile, so public quantization entry
// points assert finiteness at the boundary.
#define TURBO_CHECK_FINITE(x)                                         \
  TURBO_CHECK_MSG(std::isfinite(static_cast<double>(x)),              \
                  #x " must be finite, got " << (x))
