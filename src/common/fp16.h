// Software emulation of IEEE-754 binary16 ("half", FP16).
//
// TurboAttention's GPU kernels run matmuls in FP16 on tensor cores and, in
// the FlashAttention baseline, exponentiation in FP32 on CUDA cores. On a
// CPU-only substrate we reproduce the *numerics* of those choices by
// rounding values through binary16 at exactly the points where the GPU
// kernels would hold them in half precision. Fp16 stores the raw 16-bit
// pattern; arithmetic is performed by converting to float and rounding the
// result back (matching the behaviour of FP16 FMA units with FP32
// accumulate when used via fp16_accumulate() helpers).
#pragma once

#include <cstdint>
#include <span>

namespace turbo {

// Convert a float to the nearest binary16 bit pattern (round-to-nearest-even,
// with overflow to infinity and gradual underflow to subnormals).
std::uint16_t float_to_half_bits(float f);

// Convert a binary16 bit pattern back to float (exact).
float half_bits_to_float(std::uint16_t h);

// Round a float through binary16 precision: encode then decode.
inline float round_to_fp16(float f) {
  return half_bits_to_float(float_to_half_bits(f));
}

// Value type wrapping a binary16 bit pattern.
class Fp16 {
 public:
  Fp16() = default;
  explicit Fp16(float f) : bits_(float_to_half_bits(f)) {}

  static Fp16 from_bits(std::uint16_t bits) {
    Fp16 h;
    h.bits_ = bits;
    return h;
  }

  float to_float() const { return half_bits_to_float(bits_); }
  std::uint16_t bits() const { return bits_; }

  Fp16 operator+(Fp16 o) const { return Fp16(to_float() + o.to_float()); }
  Fp16 operator-(Fp16 o) const { return Fp16(to_float() - o.to_float()); }
  Fp16 operator*(Fp16 o) const { return Fp16(to_float() * o.to_float()); }
  Fp16 operator/(Fp16 o) const { return Fp16(to_float() / o.to_float()); }

  bool operator==(const Fp16&) const = default;

 private:
  std::uint16_t bits_ = 0;
};

// Round every element of a buffer through binary16 in place. Used to model
// tensors that a GPU kernel would store in half precision (e.g. Q/K/V tiles
// loaded into shared memory as FP16).
void round_span_to_fp16(std::span<float> values);

// Dot product computed the way an FP16 tensor-core MMA does: inputs rounded
// to binary16, products and accumulation carried in FP32.
float fp16_dot_fp32_accumulate(std::span<const float> a,
                               std::span<const float> b);

// Largest finite binary16 value.
inline constexpr float kFp16Max = 65504.0f;

}  // namespace turbo
