#include "attention/turbo_method.h"

#include <utility>

#include "attention/flash.h"
#include "common/check.h"
#include "common/fp16.h"

namespace turbo {

namespace {

SasConfig effective_sas(const TurboMethodConfig& config) {
  SasConfig sas = config.sas;
  if (!config.use_sas) sas.exact_exp = true;
  return sas;
}

}  // namespace

TurboKvAttention::TurboKvAttention(std::size_t head_dim,
                                   TurboMethodConfig config)
    : config_(config),
      sas_(effective_sas(config)),
      cache_(head_dim, config.kv_bits, config.attention.block_cols,
             config.buffer_capacity) {}

MatrixF TurboKvAttention::prefill(const MatrixF& q, const MatrixF& k,
                                  const MatrixF& v) {
  TURBO_CHECK_MSG(token_count() == 0, "prefill must be the first call");
  TURBO_CHECK(q.cols() == cache_.head_dim() && k.cols() == cache_.head_dim() &&
              v.cols() == cache_.head_dim());
  TURBO_CHECK(k.rows() == v.rows());
  if (!config_.use_flashq) {
    // SAS-only ablation: FP16 FlashAttention with the SAS exponential and
    // an FP16 (uncompressed) cache.
    FlashOptions options;
    options.exp_fn = [this](float x) { return sas_.exp_neg(x); };
    const FlashResult r = flash_attention(q, k, v, config_.attention, options);
    k_fp16_ = k;
    v_fp16_ = v;
    round_span_to_fp16(k_fp16_.flat());
    round_span_to_fp16(v_fp16_.flat());
    return r.o;
  }
  TurboPrefillResult r =
      turbo_attention_prefill(q, k, v, config_.attention, sas_, &cache_);
  return std::move(r.o);
}

std::vector<float> TurboKvAttention::decode(std::span<const float> q,
                                            std::span<const float> k,
                                            std::span<const float> v) {
  TURBO_CHECK(q.size() == cache_.head_dim() && k.size() == cache_.head_dim() &&
              v.size() == cache_.head_dim());
  if (!config_.use_flashq) {
    std::vector<float> k16(k.begin(), k.end());
    std::vector<float> v16(v.begin(), v.end());
    round_span_to_fp16(k16);
    round_span_to_fp16(v16);
    k_fp16_.append_row(std::span<const float>(k16));
    v_fp16_.append_row(std::span<const float>(v16));
    FlashOptions options;
    options.exp_fn = [this](float x) { return sas_.exp_neg(x); };
    options.kv_prerounded = true;  // rows were rounded on insertion
    return flash_decode(q, k_fp16_, v_fp16_, config_.attention, options);
  }
  cache_.append_token(k, v);
  return turbo_attention_decode(q, cache_, config_.attention, sas_);
}

std::vector<float> TurboKvAttention::attend(std::span<const float> q) {
  TURBO_CHECK(q.size() == cache_.head_dim());
  if (!config_.use_flashq) {
    FlashOptions options;
    options.exp_fn = [this](float x) { return sas_.exp_neg(x); };
    options.kv_prerounded = true;
    return flash_decode(q, k_fp16_, v_fp16_, config_.attention, options);
  }
  return turbo_attention_decode(q, cache_, config_.attention, sas_);
}

std::size_t TurboKvAttention::kv_cache_bytes() const {
  if (!config_.use_flashq) {
    return (k_fp16_.size() + v_fp16_.size()) * 2;  // FP16 payload
  }
  return cache_.memory_bytes();
}

std::size_t TurboKvAttention::token_count() const {
  if (!config_.use_flashq) return k_fp16_.rows();
  return cache_.token_count();
}

KvAttentionFactory make_turbo_factory(TurboMethodConfig config) {
  return [config](std::size_t head_dim) {
    return std::make_unique<TurboKvAttention>(head_dim, config);
  };
}

KvAttentionFactory make_turbo_mixed_factory(TurboMethodConfig config,
                                            std::vector<BitWidth> head_bits) {
  TURBO_CHECK(!head_bits.empty());
  auto next = std::make_shared<std::size_t>(0);
  auto bits = std::make_shared<std::vector<BitWidth>>(std::move(head_bits));
  return [config, next, bits](std::size_t head_dim) {
    TurboMethodConfig c = config;
    c.kv_bits = (*bits)[*next % bits->size()];
    ++*next;
    return std::make_unique<TurboKvAttention>(head_dim, c);
  };
}

}  // namespace turbo
