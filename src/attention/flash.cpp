#include "attention/flash.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/fp16.h"

namespace turbo {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

MatrixF maybe_round_fp16(const MatrixF& m, bool emulate) {
  MatrixF out = m;
  if (emulate) round_span_to_fp16(out.flat());
  return out;
}

}  // namespace

FlashResult flash_attention(const MatrixF& q, const MatrixF& k,
                            const MatrixF& v, const AttentionConfig& cfg,
                            const FlashOptions& options) {
  TURBO_CHECK(q.cols() == k.cols());
  TURBO_CHECK(k.rows() == v.rows());
  TURBO_CHECK(k.cols() == v.cols());
  TURBO_CHECK(!cfg.causal || q.rows() <= k.rows());
  TURBO_CHECK(cfg.block_rows > 0 && cfg.block_cols > 0);

  const std::size_t n_q = q.rows();
  const std::size_t n_k = k.rows();
  const std::size_t d = q.cols();
  const float scale = cfg.effective_scale(d);
  // Absolute position offset of query row 0 under causal alignment.
  const std::size_t q_offset = n_k - (cfg.causal ? n_q : n_k);

  const auto exp_fn = [&options](float x) {
    return options.exp_fn ? options.exp_fn(x) : std::exp(x);
  };

  const bool round_kv = options.emulate_fp16 && !options.kv_prerounded;
  const MatrixF qh = maybe_round_fp16(q, options.emulate_fp16);
  MatrixF k_rounded;
  MatrixF v_rounded;
  if (round_kv) {
    k_rounded = maybe_round_fp16(k, true);
    v_rounded = maybe_round_fp16(v, true);
  }
  const MatrixF& kh = round_kv ? k_rounded : k;
  const MatrixF& vh = round_kv ? v_rounded : v;

  FlashResult result;
  result.o = MatrixF(n_q, d, 0.0f);
  result.lse.assign(n_q, 0.0f);

  const std::size_t br = cfg.block_rows;
  const std::size_t bc = cfg.block_cols;

  std::vector<float> m_run(br);
  std::vector<float> l_run(br);
  MatrixF s_tile(br, bc);

  for (std::size_t qb = 0; qb < n_q; qb += br) {
    const std::size_t q_rows = std::min(br, n_q - qb);
    std::fill_n(m_run.begin(), q_rows, kNegInf);
    std::fill_n(l_run.begin(), q_rows, 0.0f);

    for (std::size_t kb = 0; kb < n_k; kb += bc) {
      const std::size_t k_rows = std::min(bc, n_k - kb);
      if (cfg.causal) {
        // Last query row of this tile sees keys up to its own position.
        const std::size_t last_visible = q_offset + qb + q_rows - 1;
        if (kb > last_visible) break;
      }

      // S = Q_i K_j^T * scale (FP16 operands, FP32 accumulate).
      for (std::size_t r = 0; r < q_rows; ++r) {
        auto qr = qh.row(qb + r);
        const std::size_t visible =
            cfg.causal ? q_offset + qb + r + 1 : n_k;
        const std::size_t win_start =
            cfg.window > 0 && visible > cfg.window ? visible - cfg.window
                                                   : 0;
        for (std::size_t c = 0; c < k_rows; ++c) {
          if (kb + c >= visible || kb + c < win_start) {
            s_tile(r, c) = kNegInf;
            continue;
          }
          auto kr = kh.row(kb + c);
          float acc = 0.0f;
          for (std::size_t x = 0; x < d; ++x) acc += qr[x] * kr[x];
          s_tile(r, c) = acc * scale;
        }
      }

      // Online-softmax update + output accumulation, FP32 exp.
      for (std::size_t r = 0; r < q_rows; ++r) {
        float block_max = kNegInf;
        for (std::size_t c = 0; c < k_rows; ++c) {
          block_max = std::max(block_max, s_tile(r, c));
        }
        if (block_max == kNegInf) continue;  // fully masked row in tile

        const float m_new = std::max(m_run[r], block_max);
        const float alpha =
            m_run[r] == kNegInf ? 0.0f : exp_fn(m_run[r] - m_new);

        float row_sum = 0.0f;
        auto orow = result.o.row(qb + r);
        if (alpha != 1.0f) {
          for (std::size_t x = 0; x < d; ++x) orow[x] *= alpha;
        }
        for (std::size_t c = 0; c < k_rows; ++c) {
          const float s = s_tile(r, c);
          if (s == kNegInf) continue;
          float p = exp_fn(s - m_new);
          row_sum += p;
          // P is cast to FP16 before the tensor-core P*V matmul.
          if (options.emulate_fp16) p = round_to_fp16(p);
          auto vr = vh.row(kb + c);
          for (std::size_t x = 0; x < d; ++x) orow[x] += p * vr[x];
        }
        l_run[r] = l_run[r] * alpha + row_sum;
        m_run[r] = m_new;
      }
    }

    for (std::size_t r = 0; r < q_rows; ++r) {
      TURBO_CHECK_MSG(l_run[r] > 0.0f,
                      "query row " << qb + r << " attended no keys");
      const float inv = 1.0f / l_run[r];
      auto orow = result.o.row(qb + r);
      for (std::size_t x = 0; x < d; ++x) orow[x] *= inv;
      result.lse[qb + r] = m_run[r] + std::log(l_run[r]);
    }
  }
  return result;
}

std::vector<float> flash_decode(std::span<const float> q, const MatrixF& k,
                                const MatrixF& v, const AttentionConfig& cfg,
                                const FlashOptions& options) {
  MatrixF qm(1, q.size());
  for (std::size_t i = 0; i < q.size(); ++i) qm(0, i) = q[i];
  AttentionConfig decode_cfg = cfg;
  decode_cfg.causal = false;
  const FlashResult r = flash_attention(qm, k, v, decode_cfg, options);
  return {r.o.row(0).begin(), r.o.row(0).end()};
}

}  // namespace turbo
