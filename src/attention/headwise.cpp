#include "attention/headwise.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/stats.h"

namespace turbo {

HeadStats compute_head_stats(const MatrixF& head) {
  HeadStats s;
  if (head.empty()) return s;
  const std::vector<MinMax> channels = channel_min_max(head);
  float lo = channels[0].min;
  float hi = channels[0].max;
  std::vector<float> gaps(channels.size());
  for (std::size_t c = 0; c < channels.size(); ++c) {
    lo = std::min(lo, channels[c].min);
    hi = std::max(hi, channels[c].max);
    gaps[c] = channels[c].gap();
  }
  s.gap = hi - lo;
  s.gap_std = static_cast<float>(stddev(gaps));
  s.entropy = static_cast<float>(histogram_entropy(head.flat(), 64));
  return s;
}

HeadStats combine_head_stats(const HeadStats& k, const HeadStats& v) {
  // A head is as hard to compress as its harder tensor. Taking the whole
  // (gap, std) pair from the higher-priority tensor keeps the two numbers
  // coherent — mixing K's gap with V's std would inflate heads that are
  // easy on both axes individually.
  HeadStats s = k.priority() >= v.priority() ? k : v;
  s.entropy = std::max(k.entropy, v.entropy);
  return s;
}

const char* head_selection_metric_name(HeadSelectionMetric m) {
  switch (m) {
    case HeadSelectionMetric::kPriority:
      return "priority";
    case HeadSelectionMetric::kEntropy:
      return "entropy";
    case HeadSelectionMetric::kMinMax:
      return "min-max";
    case HeadSelectionMetric::kVariation:
      return "variation";
  }
  return "unknown";
}

float head_selection_score(const HeadStats& stats, HeadSelectionMetric m) {
  switch (m) {
    case HeadSelectionMetric::kPriority:
      return stats.priority();
    case HeadSelectionMetric::kEntropy:
      return stats.entropy;
    case HeadSelectionMetric::kMinMax:
      return stats.gap;
    case HeadSelectionMetric::kVariation:
      return stats.gap_std;
  }
  return 0.0f;
}

std::vector<BitWidth> select_head_bits(std::span<const HeadStats> stats,
                                       std::size_t n_low,
                                       HeadSelectionMetric metric,
                                       BitWidth low_bits,
                                       BitWidth high_bits) {
  TURBO_CHECK(n_low <= stats.size());
  std::vector<std::size_t> order(stats.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return head_selection_score(stats[a], metric) <
                            head_selection_score(stats[b], metric);
                   });
  std::vector<BitWidth> bits(stats.size(), high_bits);
  for (std::size_t i = 0; i < n_low; ++i) bits[order[i]] = low_bits;
  return bits;
}

}  // namespace turbo
