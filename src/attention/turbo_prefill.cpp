#include <algorithm>
#include <cmath>
#include <limits>

#include "attention/turbo.h"
#include "common/check.h"
#include "common/numeric.h"
#include "quant/symmetric.h"

namespace turbo {

namespace {
constexpr float kNegInf = -std::numeric_limits<float>::infinity();
}  // namespace

TurboPrefillResult turbo_attention_prefill(const MatrixF& q, const MatrixF& k,
                                           const MatrixF& v,
                                           const AttentionConfig& cfg,
                                           const Sas& sas,
                                           QuantizedKvCache* cache) {
  TURBO_CHECK(q.cols() == k.cols());
  TURBO_CHECK(k.rows() == v.rows());
  TURBO_CHECK(k.cols() == v.cols());
  TURBO_CHECK(!cfg.causal || q.rows() <= k.rows());
  TURBO_CHECK(cfg.block_rows > 0 && cfg.block_cols > 0);
  if (cache != nullptr) {
    TURBO_CHECK_MSG(cache->block_tokens() == cfg.block_cols,
                    "cache block size must match Bc");
    TURBO_CHECK(cache->head_dim() == k.cols());
  }

  const std::size_t n_q = q.rows();
  const std::size_t n_k = k.rows();
  const std::size_t d = q.cols();
  const float attn_scale = cfg.effective_scale(d);
  const std::size_t q_offset = n_k - (cfg.causal ? n_q : n_k);
  const std::size_t br = cfg.block_rows;
  const std::size_t bc = cfg.block_cols;

  // Stage-1 quantization of all K/V tiles (per-block symmetric INT8).
  // Algorithm 1 performs this inside the (i, j) loop; the result depends
  // only on j, so we hoist it — identical numerics, one pass.
  const std::size_t n_kv_tiles = (n_k + bc - 1) / bc;
  std::vector<Int8Tile> k_tiles(n_kv_tiles);
  std::vector<Int8Tile> v_tiles(n_kv_tiles);
  for (std::size_t j = 0; j < n_kv_tiles; ++j) {
    const std::size_t kb = j * bc;
    const std::size_t rows = std::min(bc, n_k - kb);
    k_tiles[j] = quantize_tile_int8(k.block_rows(kb, rows));
    v_tiles[j] = quantize_tile_int8(v.block_rows(kb, rows));
  }

  TurboPrefillResult result;
  result.o = MatrixF(n_q, d, 0.0f);
  result.lse.assign(n_q, 0.0f);

  std::vector<float> m_run(br);
  std::vector<float> l_run(br);
  MatrixF s_tile(br, bc);
  MatrixF p_tile(br, bc);
  MatrixI8 p_q(br, bc);

  for (std::size_t qb = 0; qb < n_q; qb += br) {
    const std::size_t q_rows = std::min(br, n_q - qb);
    // Stage-1 quantization of the Q tile.
    const Int8Tile q_tile = quantize_tile_int8(q.block_rows(qb, q_rows));

    std::fill_n(m_run.begin(), q_rows, kNegInf);
    std::fill_n(l_run.begin(), q_rows, 0.0f);

    for (std::size_t j = 0; j < n_kv_tiles; ++j) {
      const std::size_t kb = j * bc;
      const std::size_t k_rows = std::min(bc, n_k - kb);
      if (cfg.causal) {
        const std::size_t last_visible = q_offset + qb + q_rows - 1;
        if (kb > last_visible) break;
      }

      // S = (s_q * s_k) * Q^q1 (K^q1)^T * attn_scale — integer matmul with
      // INT32 accumulation, one FP rescale per element.
      const float s_scale = q_tile.scale * k_tiles[j].scale * attn_scale;
      for (std::size_t r = 0; r < q_rows; ++r) {
        auto qr = q_tile.q.row(r);
        const std::size_t visible =
            cfg.causal ? q_offset + qb + r + 1 : n_k;
        const std::size_t win_start =
            cfg.window > 0 && visible > cfg.window ? visible - cfg.window
                                                   : 0;
        for (std::size_t c = 0; c < k_rows; ++c) {
          if (kb + c >= visible || kb + c < win_start) {
            s_tile(r, c) = kNegInf;
            continue;
          }
          auto kr = k_tiles[j].q.row(c);
          std::int32_t acc = 0;
          for (std::size_t x = 0; x < d; ++x) {
            acc += static_cast<std::int32_t>(qr[x]) *
                   static_cast<std::int32_t>(kr[x]);
          }
          s_tile(r, c) = static_cast<float>(acc) * s_scale;
        }
      }

      // Online softmax with SAS exponentials; P~ collected per row, then
      // the whole tile is symmetrically quantized to INT8 for the P~V
      // integer matmul.
      float p_max = 0.0f;
      for (std::size_t r = 0; r < q_rows; ++r) {
        float block_max = kNegInf;
        for (std::size_t c = 0; c < k_rows; ++c) {
          block_max = std::max(block_max, s_tile(r, c));
        }
        if (block_max == kNegInf) {
          // Fully masked row within this tile: contributes nothing.
          for (std::size_t c = 0; c < k_rows; ++c) p_tile(r, c) = 0.0f;
          continue;
        }
        const float m_new = std::max(m_run[r], block_max);
        const float alpha =
            m_run[r] == kNegInf ? 0.0f : sas.exp_neg(m_run[r] - m_new);

        float row_sum = 0.0f;
        for (std::size_t c = 0; c < k_rows; ++c) {
          const float s = s_tile(r, c);
          const float p = s == kNegInf ? 0.0f : sas.exp_neg(s - m_new);
          p_tile(r, c) = p;
          row_sum += p;
          p_max = std::max(p_max, p);
        }
        l_run[r] = l_run[r] * alpha + row_sum;
        m_run[r] = m_new;

        if (alpha != 1.0f) {
          auto orow = result.o.row(qb + r);
          for (std::size_t x = 0; x < d; ++x) orow[x] *= alpha;
        }
      }

      // Quantize P~ (values in [0, 1]) with one per-tile scale and run the
      // INT8 P~V matmul.
      const float p_scale =
          p_max > 0.0f ? p_max / kSymmetricHeadroom : 1.0f;
      const float inv_p_scale = 1.0f / p_scale;
      for (std::size_t r = 0; r < q_rows; ++r) {
        for (std::size_t c = 0; c < k_rows; ++c) {
          p_q(r, c) = clamp_to_i8(p_tile(r, c) * inv_p_scale, 0, 127);
        }
      }
      const float o_scale = p_scale * v_tiles[j].scale;
      for (std::size_t r = 0; r < q_rows; ++r) {
        auto orow = result.o.row(qb + r);
        for (std::size_t c = 0; c < k_rows; ++c) {
          const std::int32_t pv = p_q(r, c);
          if (pv == 0) continue;
          auto vr = v_tiles[j].q.row(c);
          for (std::size_t x = 0; x < d; ++x) {
            orow[x] += static_cast<float>(pv * vr[x]) * o_scale;
          }
        }
      }
    }

    for (std::size_t r = 0; r < q_rows; ++r) {
      TURBO_CHECK_MSG(l_run[r] > 0.0f,
                      "query row " << qb + r << " attended no keys");
      const float inv = 1.0f / l_run[r];
      auto orow = result.o.row(qb + r);
      for (std::size_t x = 0; x < d; ++x) orow[x] *= inv;
      result.lse[qb + r] = m_run[r] + std::log(l_run[r]);
    }
  }

  // Second-stage compression of the K/V tiles into the cache (Step 3 of
  // Figure 3's prefill flow).
  if (cache != nullptr) {
    for (std::size_t j = 0; j < n_kv_tiles; ++j) {
      cache->append_prefill_block(k_tiles[j], v_tiles[j]);
    }
  }
  return result;
}

}  // namespace turbo
