#include <algorithm>
#include <cmath>
#include <limits>

#include "attention/turbo.h"
#include "common/check.h"
#include "quant/symmetric.h"

namespace turbo {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

// Online-softmax state for the single decode query.
struct DecodeState {
  float m = kNegInf;
  float l = 0.0f;
  std::vector<float> o;  // unnormalized output accumulator

  explicit DecodeState(std::size_t d) : o(d, 0.0f) {}
};

// Absorb one INT8 KV chunk: K_q1/V_q1 are [tokens x d] INT8 with symmetric
// scales k_scale/v_scale. Implements the body of Algorithm 2's loop.
// `mask_before` excludes the chunk's first tokens (sliding-window start
// falling inside this chunk).
void absorb_chunk(DecodeState& state, std::span<const std::int8_t> q_q1,
                  float q_scale, const MatrixI8& k_q1, float k_scale,
                  const MatrixI8& v_q1, float v_scale, float attn_scale,
                  const Sas& sas, std::size_t mask_before = 0) {
  const std::size_t tokens = k_q1.rows();
  if (tokens == 0) return;
  const std::size_t d = k_q1.cols();
  TURBO_DCHECK(q_q1.size() == d);

  // S_j = s_q * s_k * q^q1 (K^q1)^T * attn_scale.
  std::vector<float> s(tokens);
  const float s_scale = q_scale * k_scale * attn_scale;
  for (std::size_t t = 0; t < tokens; ++t) {
    if (t < mask_before) {
      s[t] = kNegInf;  // outside the sliding window
      continue;
    }
    auto kr = k_q1.row(t);
    std::int32_t acc = 0;
    for (std::size_t x = 0; x < d; ++x) {
      acc += static_cast<std::int32_t>(q_q1[x]) *
             static_cast<std::int32_t>(kr[x]);
    }
    s[t] = static_cast<float>(acc) * s_scale;
  }

  float block_max = kNegInf;
  for (float v : s) block_max = std::max(block_max, v);
  const float m_new = std::max(state.m, block_max);
  const float alpha = state.m == kNegInf ? 0.0f : sas.exp_neg(state.m - m_new);

  // P~ via SAS; track the max for the per-chunk symmetric scale.
  float p_max = 0.0f;
  float row_sum = 0.0f;
  std::vector<float> p(tokens);
  for (std::size_t t = 0; t < tokens; ++t) {
    p[t] = sas.exp_neg(s[t] - m_new);
    row_sum += p[t];
    p_max = std::max(p_max, p[t]);
  }

  if (alpha != 1.0f) {
    for (float& v : state.o) v *= alpha;
  }
  state.l = state.l * alpha + row_sum;
  state.m = m_new;

  // Quantize P~ to INT8 and accumulate the integer P~V product.
  const float p_scale = p_max > 0.0f ? p_max / kSymmetricHeadroom : 1.0f;
  const float inv_p = 1.0f / p_scale;
  const float o_scale = p_scale * v_scale;
  for (std::size_t t = 0; t < tokens; ++t) {
    const float scaled = std::nearbyint(p[t] * inv_p);
    const std::int32_t pq =
        static_cast<std::int32_t>(std::clamp(scaled, 0.0f, 127.0f));
    if (pq == 0) continue;
    auto vr = v_q1.row(t);
    for (std::size_t x = 0; x < d; ++x) {
      state.o[x] += static_cast<float>(pq * static_cast<std::int32_t>(vr[x])) *
                    o_scale;
    }
  }
}

}  // namespace

std::vector<float> turbo_attention_decode(
    std::span<const float> q, std::span<const KvBlock* const> blocks,
    const DecodeBuffer& key_buffer, const DecodeBuffer& value_buffer,
    const AttentionConfig& cfg, const Sas& sas) {
  const std::size_t d = key_buffer.dim();
  TURBO_CHECK(q.size() == d);
  TURBO_CHECK_MSG(!blocks.empty() || !key_buffer.empty(),
                  "decode against an empty cache");
  const float attn_scale = cfg.effective_scale(d);

  // Stage-1 quantization of the query (Step 1 of the decode flow).
  const float q_scale = symmetric_scale_int8(q);
  std::vector<std::int8_t> q_q1(d);
  quantize_symmetric_int8(q, q_scale, q_q1);

  DecodeState state(d);

  // Sliding window: only the last cfg.window cached tokens participate.
  std::size_t total = key_buffer.size();
  for (const KvBlock* block : blocks) total += block->tokens();
  const std::size_t win_start =
      cfg.window > 0 && total > cfg.window ? total - cfg.window : 0;

  // Packed blocks: reverse only the second stage (INT -> INT8), then run
  // the integer attention chunk. Blocks fully outside the window are
  // skipped without touching their payload.
  std::size_t pos = 0;
  for (const KvBlock* block : blocks) {
    const std::size_t end = pos + block->tokens();
    if (end <= win_start) {
      pos = end;
      continue;
    }
    const MatrixI8 k_q1 = progressive_decompress_int8(block->k);
    const MatrixI8 v_q1 = progressive_decompress_int8(block->v);
    const std::size_t mask = win_start > pos ? win_start - pos : 0;
    absorb_chunk(state, q_q1, q_scale, k_q1, block->k.fp_scale, v_q1,
                 block->v.fp_scale, attn_scale, sas, mask);
    pos = end;
  }

  // Buffered tail: already INT8 under the universal scales.
  if (!key_buffer.empty()) {
    const std::size_t mask = win_start > pos ? win_start - pos : 0;
    absorb_chunk(state, q_q1, q_scale, key_buffer.tokens(),
                 key_buffer.scale(), value_buffer.tokens(),
                 value_buffer.scale(), attn_scale, sas, mask);
  }

  TURBO_CHECK_MSG(state.l > 0.0f, "decode query attended no keys");
  const float inv = 1.0f / state.l;
  for (float& v : state.o) v *= inv;
  return std::move(state.o);
}

std::vector<float> turbo_attention_decode(std::span<const float> q,
                                          const QuantizedKvCache& cache,
                                          const AttentionConfig& cfg,
                                          const Sas& sas) {
  TURBO_CHECK_MSG(cache.token_count() > 0, "decode against an empty cache");
  std::vector<const KvBlock*> blocks;
  blocks.reserve(cache.block_count());
  for (std::size_t j = 0; j < cache.block_count(); ++j) {
    blocks.push_back(&cache.block(j));
  }
  return turbo_attention_decode(q, blocks, cache.key_buffer(),
                                cache.value_buffer(), cfg, sas);
}

}  // namespace turbo
