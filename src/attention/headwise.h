// Head-wise mixed precision (section 3.2) and the selection-metric
// ablation of Figure 7b.
//
// Heads whose KV distributions are "easy" (small value range, uniform
// channel gaps) tolerate 2-bit compression; heads with wide, uneven channel
// ranges need 4 bits. The paper ranks heads by
//   priority(h) = gap(h) * std(h)
// where gap is the max-min over all channels of the head and std is the
// standard deviation of per-channel gaps; the n_h lowest-priority heads per
// layer are compressed to 2-bit. Baselines for the ablation rank by
// histogram entropy, plain min-max gap, or gap variation alone.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.h"
#include "quant/types.h"

namespace turbo {

struct HeadStats {
  float gap = 0.0f;      // max - min across the whole head
  float gap_std = 0.0f;  // std of channel-wise (max - min) gaps
  float entropy = 0.0f;  // histogram entropy of the head's values

  // Eq. 11.
  float priority() const { return gap * gap_std; }
};

// Statistics of one head's [tokens x head_dim] tensor.
HeadStats compute_head_stats(const MatrixF& head);

// Stats for a head's K and V jointly (element-wise worst case): the cache
// compresses both, so a head is only "easy" if both tensors are easy.
HeadStats combine_head_stats(const HeadStats& k, const HeadStats& v);

enum class HeadSelectionMetric {
  kPriority,   // gap * std (the paper's metric)
  kEntropy,    // histogram entropy
  kMinMax,     // gap alone
  kVariation,  // std of channel gaps alone
};

const char* head_selection_metric_name(HeadSelectionMetric m);

// Scalar ranking score under a metric (lower = compressed first).
float head_selection_score(const HeadStats& stats, HeadSelectionMetric m);

// Assign `low_bits` to the `n_low` lowest-scoring heads, `high_bits` to the
// rest. Ties broken by head index for determinism.
std::vector<BitWidth> select_head_bits(std::span<const HeadStats> stats,
                                       std::size_t n_low,
                                       HeadSelectionMetric metric,
                                       BitWidth low_bits = BitWidth::kInt2,
                                       BitWidth high_bits = BitWidth::kInt4);

}  // namespace turbo
