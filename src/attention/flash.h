// FlashAttention baseline (Dao et al. 2022) on the CPU substrate.
//
// Numerics follow the GPU kernel: Q/K/V tiles and the probability tile P
// are held in FP16 (emulated by rounding through binary16), matmuls
// accumulate in FP32, and exponentiation runs in FP32 — exactly the
// FP16/FP32 mix whose cost TurboAttention attacks. Tiling follows the
// standard Br x Bc online-softmax schedule, so outputs are
// bitwise-independent of tile size up to FP associativity.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "attention/config.h"
#include "common/matrix.h"

namespace turbo {

struct FlashOptions {
  // Round tile inputs/outputs through binary16 as the GPU kernel would.
  // Disable to get an FP32-exact tiled kernel (used by equivalence tests).
  bool emulate_fp16 = true;

  // Skip re-rounding K/V: the caller guarantees they already hold
  // FP16-representable values (every KvAttention cache stores rounded
  // rows). Avoids an O(n_k * d) copy + round on every decode step. Q is
  // still rounded.
  bool kv_prerounded = false;

  // Replacement exponential for the online softmax (must approximate e^x
  // for x <= 0). Empty means FP32 std::exp — the FlashAttention baseline.
  // Used by the "SAS only" ablation (Table 4), which keeps FP16 matmuls but
  // swaps the exponentiation for SAS.
  std::function<float(float)> exp_fn;
};

struct FlashResult {
  MatrixF o;               // [n_q x d]
  std::vector<float> lse;  // per-query log-sum-exp
};

// Tiled causal/non-causal attention. Q [n_q x d], K/V [n_k x d].
FlashResult flash_attention(const MatrixF& q, const MatrixF& k,
                            const MatrixF& v, const AttentionConfig& cfg,
                            const FlashOptions& options = {});

// Single-query decode step over a full cache (no mask).
std::vector<float> flash_decode(std::span<const float> q, const MatrixF& k,
                                const MatrixF& v, const AttentionConfig& cfg,
                                const FlashOptions& options = {});

}  // namespace turbo
