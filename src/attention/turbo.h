// TurboAttention kernels: FlashQ + SAS fused into the FlashAttention
// schedule (Algorithms 1 and 2 of the paper).
//
// Prefill quantizes every Q/K/V tile to INT8 symmetrically (per-block scale
// max|x|/119), runs QK^T and P~V as integer matmuls with FP32 accumulation
// of the scaled results, computes the exponentials with SAS instead of FP32
// exp, and writes the K/V tiles through the second (channel-wise, integer)
// quantization stage into the packed KV cache. Decode reverses only the
// second stage (INT4/2 -> INT8, integer arithmetic) and attends the query
// against the INT8 payloads plus the INT8 decode buffer.
#pragma once

#include <span>
#include <vector>

#include "attention/config.h"
#include "common/matrix.h"
#include "kvcache/quantized_kv_cache.h"
#include "softmax/sas.h"

namespace turbo {

struct TurboPrefillResult {
  MatrixF o;               // [n_q x d]
  std::vector<float> lse;  // per-query log-sum-exp
};

// Algorithm 1. Q/K/V are one head's [tokens x head_dim] tensors. When
// `cache` is non-null, the K/V tiles are progressively compressed into it
// (its block_tokens() must equal cfg.block_cols).
TurboPrefillResult turbo_attention_prefill(const MatrixF& q, const MatrixF& k,
                                           const MatrixF& v,
                                           const AttentionConfig& cfg,
                                           const Sas& sas,
                                           QuantizedKvCache* cache);

// Algorithm 2. One decode query against the compressed cache (packed
// blocks + INT8 buffer). The new token's k/v must already have been
// appended by the caller.
std::vector<float> turbo_attention_decode(std::span<const float> q,
                                          const QuantizedKvCache& cache,
                                          const AttentionConfig& cfg,
                                          const Sas& sas);

// Same kernel over an arbitrary block view — the entry point the paged
// multi-sequence cache uses (`PagedKvCache::blocks(seq)` + its buffers).
std::vector<float> turbo_attention_decode(
    std::span<const float> q, std::span<const KvBlock* const> blocks,
    const DecodeBuffer& key_buffer, const DecodeBuffer& value_buffer,
    const AttentionConfig& cfg, const Sas& sas);

}  // namespace turbo
