// Shared configuration for the tiled attention kernels.
#pragma once

#include <cmath>
#include <cstddef>

namespace turbo {

struct AttentionConfig {
  // FlashAttention tile sizes: Br query rows, Bc key/value rows per tile.
  // Paper default 64x64 (Table 3 sweeps 32..128).
  std::size_t block_rows = 64;
  std::size_t block_cols = 64;

  // Causal (autoregressive) masking for prefill.
  bool causal = true;

  // Sliding-window attention: each query attends at most the `window`
  // most recent visible keys (0 = unlimited). Phi-3-mini uses a 2047-token
  // window; combined with block eviction it bounds the KV cache.
  std::size_t window = 0;

  // Score scale; 0 means the conventional 1/sqrt(head_dim).
  float scale = 0.0f;

  float effective_scale(std::size_t head_dim) const {
    return scale != 0.0f
               ? scale
               : 1.0f / std::sqrt(static_cast<float>(head_dim));
  }
};

}  // namespace turbo
