// KvAttention adapter over the TurboAttention kernels.
#pragma once

#include "attention/method.h"
#include "attention/turbo.h"
#include "kvcache/quantized_kv_cache.h"
#include "quant/types.h"
#include "softmax/sas.h"

namespace turbo {

struct TurboMethodConfig {
  AttentionConfig attention;
  SasConfig sas;
  BitWidth kv_bits = BitWidth::kInt4;
  std::size_t buffer_capacity = 64;  // n_b
  // When false, softmax runs exact FP32 exp instead of SAS — the
  // "FlashQ only" ablation row of Table 4.
  bool use_sas = true;
  // When false, Q/K/V matmuls run in FP16 (no stage-1 INT8) — the
  // "SAS only" ablation row of Table 4.
  bool use_flashq = true;
};

class TurboKvAttention final : public KvAttention {
 public:
  TurboKvAttention(std::size_t head_dim, TurboMethodConfig config);

  std::string_view name() const override { return "TurboAttention"; }
  MatrixF prefill(const MatrixF& q, const MatrixF& k,
                  const MatrixF& v) override;
  std::vector<float> decode(std::span<const float> q,
                            std::span<const float> k,
                            std::span<const float> v) override;
  std::vector<float> attend(std::span<const float> q) override;
  std::size_t kv_cache_bytes() const override;
  std::size_t token_count() const override;

  const QuantizedKvCache& cache() const { return cache_; }

 private:
  TurboMethodConfig config_;
  Sas sas_;
  QuantizedKvCache cache_;
  // SAS-only ablation keeps an FP16 cache instead of the quantized one.
  MatrixF k_fp16_;
  MatrixF v_fp16_;
};

// Factory helper for the pipeline/tasks harness.
KvAttentionFactory make_turbo_factory(TurboMethodConfig config);

// Per-head factory where head h gets bits[h] (head-wise mixed precision).
// Consumes one entry per construction, cycling back to head 0 after the
// last entry — callers that rebuild the head set per task case get the
// same assignment every round.
KvAttentionFactory make_turbo_mixed_factory(TurboMethodConfig config,
                                            std::vector<BitWidth> head_bits);

}  // namespace turbo
