// Exact FP32 attention — the ground truth every approximation is measured
// against.
#pragma once

#include <span>
#include <vector>

#include "attention/config.h"
#include "common/matrix.h"

namespace turbo {

// O = softmax(Q K^T * scale) V, computed fully in FP32 with materialized
// score/probability matrices. Q is [n_q x d]; K, V are [n_k x d].
// With cfg.causal, query row i attends keys [0, n_k - n_q + i] (the usual
// prefill alignment where query i is token n_k - n_q + i).
MatrixF reference_attention(const MatrixF& q, const MatrixF& k,
                            const MatrixF& v, const AttentionConfig& cfg);

// Same, also writing each query row's log-sum-exp (for FlashAttention
// equivalence tests).
MatrixF reference_attention_with_lse(const MatrixF& q, const MatrixF& k,
                                     const MatrixF& v,
                                     const AttentionConfig& cfg,
                                     std::span<float> lse_out);

// Single-query decode-step attention over a full cache, FP32 exact.
std::vector<float> reference_decode(std::span<const float> q,
                                    const MatrixF& k, const MatrixF& v,
                                    const AttentionConfig& cfg);

}  // namespace turbo
