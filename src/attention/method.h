// Uniform per-head interface over attention/KV-cache methods.
//
// Every method under comparison — the FP16 FlashAttention baseline, KIVI,
// GEAR-L, and TurboAttention — is driven through this interface by the
// model pipeline and the proxy-task harness: one prefill over the prompt,
// then autoregressive decode steps that append the newly generated token's
// key/value before attending.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "attention/config.h"
#include "common/matrix.h"

namespace turbo {

class KvAttention {
 public:
  virtual ~KvAttention() = default;

  virtual std::string_view name() const = 0;

  // Causal attention over the prompt; primes the method's KV cache.
  // Q/K/V are one head's [tokens x head_dim]. Must be called first, once.
  virtual MatrixF prefill(const MatrixF& q, const MatrixF& k,
                          const MatrixF& v) = 0;

  // One decode step: append (k, v) to the cache, then attend q over every
  // cached token (including the new one). Returns the output vector.
  virtual std::vector<float> decode(std::span<const float> q,
                                    std::span<const float> k,
                                    std::span<const float> v) = 0;

  // Attend q over the current cache without appending anything. Under
  // grouped-query attention one KV cache serves a group of query heads:
  // the group's first query uses decode() (which appends the shared k/v),
  // the remaining queries use attend().
  virtual std::vector<float> attend(std::span<const float> q) = 0;

  // Current KV-cache footprint in bytes (payload + metadata + any
  // full-precision residual window the method keeps).
  virtual std::size_t kv_cache_bytes() const = 0;

  // Number of tokens currently cached.
  virtual std::size_t token_count() const = 0;
};

// Factory: builds one method instance per attention head.
using KvAttentionFactory =
    std::function<std::unique_ptr<KvAttention>(std::size_t head_dim)>;

}  // namespace turbo
