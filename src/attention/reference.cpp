#include "attention/reference.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "softmax/softmax.h"

namespace turbo {

namespace {

// Number of keys query row i may attend under causal alignment.
std::size_t causal_visible(std::size_t n_q, std::size_t n_k, std::size_t i) {
  // Query i is absolute token (n_k - n_q + i); it sees keys 0..itself.
  return n_k - n_q + i + 1;
}

}  // namespace

MatrixF reference_attention_with_lse(const MatrixF& q, const MatrixF& k,
                                     const MatrixF& v,
                                     const AttentionConfig& cfg,
                                     std::span<float> lse_out) {
  TURBO_CHECK(q.cols() == k.cols());
  TURBO_CHECK(k.rows() == v.rows());
  TURBO_CHECK(k.cols() == v.cols());
  TURBO_CHECK(lse_out.empty() || lse_out.size() == q.rows());
  TURBO_CHECK(!cfg.causal || q.rows() <= k.rows());

  const float scale = cfg.effective_scale(q.cols());
  MatrixF scores = matmul_transposed(q, k);
  for (float& s : scores.flat()) s *= scale;

  if (cfg.causal || cfg.window > 0) {
    for (std::size_t i = 0; i < scores.rows(); ++i) {
      const std::size_t visible =
          cfg.causal ? causal_visible(q.rows(), k.rows(), i) : k.rows();
      auto row = scores.row(i);
      for (std::size_t j = visible; j < row.size(); ++j) {
        row[j] = -std::numeric_limits<float>::infinity();
      }
      if (cfg.window > 0 && visible > cfg.window) {
        // Sliding window: only the `window` most recent visible keys.
        for (std::size_t j = 0; j < visible - cfg.window; ++j) {
          row[j] = -std::numeric_limits<float>::infinity();
        }
      }
    }
  }

  MatrixF probs;
  if (lse_out.empty()) {
    probs = softmax_rows(scores);
  } else {
    probs = softmax_rows_with_lse(scores, lse_out);
  }
  return matmul(probs, v);
}

MatrixF reference_attention(const MatrixF& q, const MatrixF& k,
                            const MatrixF& v, const AttentionConfig& cfg) {
  return reference_attention_with_lse(q, k, v, cfg, {});
}

std::vector<float> reference_decode(std::span<const float> q,
                                    const MatrixF& k, const MatrixF& v,
                                    const AttentionConfig& cfg) {
  MatrixF qm(1, q.size());
  for (std::size_t i = 0; i < q.size(); ++i) qm(0, i) = q[i];
  AttentionConfig decode_cfg = cfg;
  decode_cfg.causal = false;  // a decode query sees the entire cache
  const MatrixF o = reference_attention(qm, k, v, decode_cfg);
  return {o.row(0).begin(), o.row(0).end()};
}

}  // namespace turbo
