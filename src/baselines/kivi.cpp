#include "baselines/kivi.h"

#include "attention/flash.h"
#include "common/check.h"
#include "common/fp16.h"

namespace turbo {

KiviAttention::KiviAttention(std::size_t head_dim, KiviConfig config)
    : config_(config),
      head_dim_(head_dim),
      k_all_(0, head_dim),
      v_all_(0, head_dim) {
  TURBO_CHECK(config_.group > 0);
}

MatrixF KiviAttention::prefill(const MatrixF& q, const MatrixF& k,
                               const MatrixF& v) {
  TURBO_CHECK_MSG(k_all_.rows() == 0, "prefill must be the first call");
  TURBO_CHECK(q.cols() == head_dim_ && k.cols() == head_dim_ &&
              v.cols() == head_dim_);
  TURBO_CHECK(k.rows() == v.rows());
  // Prefill attention runs on the uncompressed K/V (the prompt is present
  // in full precision at prefill time); compression happens afterwards.
  const FlashResult r = flash_attention(q, k, v, config_.attention);
  k_all_ = k;
  v_all_ = v;
  round_span_to_fp16(k_all_.flat());
  round_span_to_fp16(v_all_.flat());
  compact();
  return r.o;
}

std::vector<float> KiviAttention::decode(std::span<const float> q,
                                         std::span<const float> k,
                                         std::span<const float> v) {
  TURBO_CHECK(q.size() == head_dim_ && k.size() == head_dim_ &&
              v.size() == head_dim_);
  std::vector<float> k16(k.begin(), k.end());
  std::vector<float> v16(v.begin(), v.end());
  round_span_to_fp16(k16);
  round_span_to_fp16(v16);
  k_all_.append_row(std::span<const float>(k16));
  v_all_.append_row(std::span<const float>(v16));
  compact();

  FlashOptions options;
  options.kv_prerounded = true;
  return flash_decode(q, k_all_, v_all_, config_.attention, options);
}

std::vector<float> KiviAttention::attend(std::span<const float> q) {
  TURBO_CHECK(q.size() == head_dim_);
  FlashOptions options;
  options.kv_prerounded = true;
  return flash_decode(q, k_all_, v_all_, config_.attention, options);
}

void KiviAttention::compact() {
  // A chunk leaves the window only when the n_b most recent tokens can
  // remain resident afterwards.
  while (k_all_.rows() - quantized_rows_ >= config_.residual + config_.group) {
    const std::size_t begin = quantized_rows_;
    const MatrixF k_chunk = k_all_.block_rows(begin, config_.group);
    const MatrixF v_chunk = v_all_.block_rows(begin, config_.group);

    // Keys per-channel: one group spans the chunk's g tokens of a channel.
    GroupQuantized kq = quantize_grouped(k_chunk, config_.bits,
                                         config_.group, QuantAxis::kChannel);
    // Values per-token: groups of g channels within each token row.
    GroupQuantized vq = quantize_grouped(v_chunk, config_.bits,
                                         config_.group, QuantAxis::kToken);

    // Replace the in-place rows with the reconstruction the attention
    // kernel will actually see (rounded to FP16, as the dequant kernel
    // materializes FP16 tiles).
    MatrixF k_back = dequantize_grouped(kq);
    MatrixF v_back = dequantize_grouped(vq);
    round_span_to_fp16(k_back.flat());
    round_span_to_fp16(v_back.flat());
    for (std::size_t r = 0; r < config_.group; ++r) {
      auto ks = k_back.row(r);
      auto kd = k_all_.row(begin + r);
      auto vs = v_back.row(r);
      auto vd = v_all_.row(begin + r);
      for (std::size_t c = 0; c < head_dim_; ++c) {
        kd[c] = ks[c];
        vd[c] = vs[c];
      }
    }
    k_chunks_.push_back(std::move(kq));
    v_chunks_.push_back(std::move(vq));
    quantized_rows_ += config_.group;
  }
}

std::size_t KiviAttention::kv_cache_bytes() const {
  std::size_t bytes = 0;
  for (const GroupQuantized& g : k_chunks_) bytes += g.memory_bytes();
  for (const GroupQuantized& g : v_chunks_) bytes += g.memory_bytes();
  // FP16 residual window.
  bytes += (k_all_.rows() - quantized_rows_) * head_dim_ * 2 * 2;
  return bytes;
}

KvAttentionFactory make_kivi_factory(KiviConfig config) {
  return [config](std::size_t head_dim) {
    return std::make_unique<KiviAttention>(head_dim, config);
  };
}

}  // namespace turbo
