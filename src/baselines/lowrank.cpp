#include "baselines/lowrank.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace turbo {

namespace {

// Orthonormalize the columns of `q` in place (modified Gram–Schmidt).
// Rank-deficient columns are replaced with zero vectors, which simply
// contribute nothing to the approximation.
void orthonormalize_columns(MatrixF& q) {
  const std::size_t m = q.rows();
  const std::size_t r = q.cols();
  for (std::size_t j = 0; j < r; ++j) {
    for (std::size_t prev = 0; prev < j; ++prev) {
      double dot = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        dot += static_cast<double>(q(i, j)) * static_cast<double>(q(i, prev));
      }
      for (std::size_t i = 0; i < m; ++i) {
        q(i, j) -= static_cast<float>(dot) * q(i, prev);
      }
    }
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      norm_sq += static_cast<double>(q(i, j)) * static_cast<double>(q(i, j));
    }
    const double norm = std::sqrt(norm_sq);
    if (norm < 1e-12) {
      for (std::size_t i = 0; i < m; ++i) q(i, j) = 0.0f;
      continue;
    }
    const float inv = static_cast<float>(1.0 / norm);
    for (std::size_t i = 0; i < m; ++i) q(i, j) *= inv;
  }
}

// B = A^T * Q where A is [m x n], Q is [m x r]: result [n x r].
MatrixF at_times(const MatrixF& a, const MatrixF& q) {
  MatrixF out(a.cols(), q.cols(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto ar = a.row(i);
    auto qr = q.row(i);
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const float av = ar[c];
      if (av == 0.0f) continue;
      auto orow = out.row(c);
      for (std::size_t j = 0; j < q.cols(); ++j) orow[j] += av * qr[j];
    }
  }
  return out;
}

// B = A * P where A is [m x n], P is [n x r]: result [m x r].
MatrixF a_times(const MatrixF& a, const MatrixF& p) {
  MatrixF out(a.rows(), p.cols(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto ar = a.row(i);
    auto orow = out.row(i);
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const float av = ar[c];
      if (av == 0.0f) continue;
      auto prow = p.row(c);
      for (std::size_t j = 0; j < p.cols(); ++j) orow[j] += av * prow[j];
    }
  }
  return out;
}

}  // namespace

LowRankFactors low_rank_approximate(const MatrixF& m, std::size_t rank,
                                    std::size_t iterations,
                                    std::uint64_t seed) {
  TURBO_CHECK(rank > 0);
  TURBO_CHECK(iterations > 0);
  const std::size_t r = std::min({rank, m.rows(), m.cols()});

  // Random start, then alternate Q <- orth(A P), P <- A^T Q.
  Rng rng(seed);
  MatrixF p(m.cols(), r);
  rng.fill_normal(p.flat(), 0.0, 1.0);

  MatrixF q;
  for (std::size_t it = 0; it < iterations; ++it) {
    q = a_times(m, p);
    orthonormalize_columns(q);
    p = at_times(m, q);
  }
  // Final factors: left = Q (orthonormal), right = P = A^T Q, so that
  // left * right^T = Q Q^T A — the projection of A onto the subspace.
  LowRankFactors f;
  f.left = std::move(q);
  f.right = std::move(p);
  return f;
}

MatrixF low_rank_reconstruct(const LowRankFactors& f) {
  MatrixF out(f.left.rows(), f.right.rows(), 0.0f);
  low_rank_add_to(f, out);
  return out;
}

void low_rank_add_to(const LowRankFactors& f, MatrixF& target) {
  TURBO_CHECK(target.rows() == f.left.rows());
  TURBO_CHECK(target.cols() == f.right.rows());
  for (std::size_t i = 0; i < target.rows(); ++i) {
    auto lrow = f.left.row(i);
    auto trow = target.row(i);
    for (std::size_t j = 0; j < target.cols(); ++j) {
      auto rrow = f.right.row(j);
      float acc = 0.0f;
      for (std::size_t x = 0; x < f.left.cols(); ++x) {
        acc += lrow[x] * rrow[x];
      }
      trow[j] += acc;
    }
  }
}

}  // namespace turbo
