// GEAR-L baseline (Kang et al. 2024): per-token KV quantization with a
// low-rank compensation of the quantization residual.
//
// Each chunk of tokens aging out of the FP16 residual window is quantized
// per token (uniform asymmetric), the quantization residual R = X - X^ is
// approximated with rank-r factors (r = 4 in the paper's GEAR-L setting),
// and the cache stores codes + factors. Reconstruction is X^ + L R^T,
// followed by FP16 FlashAttention — like KIVI, GEAR pays a decompression
// cost before attention, plus the extra low-rank matmul.
#pragma once

#include <vector>

#include "attention/config.h"
#include "attention/method.h"
#include "baselines/lowrank.h"
#include "quant/asymmetric.h"

namespace turbo {

struct GearConfig {
  AttentionConfig attention;
  BitWidth bits = BitWidth::kInt4;
  std::size_t rank = 4;          // low-rank compensation rank
  std::size_t residual = 64;     // n_b FP16 window
  std::size_t chunk = 64;        // tokens quantized per flush
  std::size_t lowrank_iters = 3; // subspace-iteration sweeps
  std::uint64_t seed = 0x6ea21e5;
};

class GearAttention final : public KvAttention {
 public:
  GearAttention(std::size_t head_dim, GearConfig config);

  std::string_view name() const override { return "GEAR-L"; }
  MatrixF prefill(const MatrixF& q, const MatrixF& k,
                  const MatrixF& v) override;
  std::vector<float> decode(std::span<const float> q,
                            std::span<const float> k,
                            std::span<const float> v) override;
  std::vector<float> attend(std::span<const float> q) override;
  std::size_t kv_cache_bytes() const override;
  std::size_t token_count() const override { return k_all_.rows(); }

  std::size_t residual_tokens() const {
    return k_all_.rows() - quantized_rows_;
  }

 private:
  void compact();

  GearConfig config_;
  std::size_t head_dim_;

  MatrixF k_all_;  // reconstruction for [0, quantized_rows_), FP16 tail
  MatrixF v_all_;
  std::size_t quantized_rows_ = 0;

  std::vector<GroupQuantized> k_chunks_;
  std::vector<GroupQuantized> v_chunks_;
  std::vector<LowRankFactors> k_factors_;
  std::vector<LowRankFactors> v_factors_;
};

KvAttentionFactory make_gear_factory(GearConfig config);

}  // namespace turbo
