// KIVI baseline (Liu et al. 2024): asymmetric KV-cache quantization with
// per-channel keys, per-token values, and a full-precision residual window.
//
// Keys are quantized per channel in groups of g tokens (a group is one
// channel's slice of a g-token chunk); values per token in groups of g
// channels. The most recent n_b tokens stay in FP16 ("residual") and
// tokens are quantized in g-sized chunks as they age out of the window.
// Attention itself is *not* quantized: the cache is dequantized back to
// FP16 and fed through FlashAttention — the decompression overhead the
// paper's latency figures charge KIVI for.
//
// Implementation note: quantized chunks are immutable, so their FP16
// dequantization is computed once and written back in place into the
// working K/V matrices the attention kernel reads; kv_cache_bytes() is
// accounted from the quantized representation the real system would hold.
#pragma once

#include <vector>

#include "attention/config.h"
#include "attention/method.h"
#include "quant/asymmetric.h"

namespace turbo {

struct KiviConfig {
  AttentionConfig attention;
  BitWidth bits = BitWidth::kInt4;
  std::size_t group = 64;     // g: quantization group size
  std::size_t residual = 64;  // n_b: FP16 residual window (token count)
};

class KiviAttention final : public KvAttention {
 public:
  KiviAttention(std::size_t head_dim, KiviConfig config);

  std::string_view name() const override { return "KIVI"; }
  MatrixF prefill(const MatrixF& q, const MatrixF& k,
                  const MatrixF& v) override;
  std::vector<float> decode(std::span<const float> q,
                            std::span<const float> k,
                            std::span<const float> v) override;
  std::vector<float> attend(std::span<const float> q) override;
  std::size_t kv_cache_bytes() const override;
  std::size_t token_count() const override { return k_all_.rows(); }

  std::size_t residual_tokens() const {
    return k_all_.rows() - quantized_rows_;
  }
  std::size_t quantized_chunk_count() const { return k_chunks_.size(); }

 private:
  // Quantize g-token chunks as they age out of the residual window.
  void compact();

  KiviConfig config_;
  std::size_t head_dim_;

  // Working tensors the attention kernel reads: rows [0, quantized_rows_)
  // hold the dequantized reconstruction, the tail holds FP16 residuals.
  MatrixF k_all_;
  MatrixF v_all_;
  std::size_t quantized_rows_ = 0;

  // The authoritative quantized storage (memory accounting + tests).
  std::vector<GroupQuantized> k_chunks_;
  std::vector<GroupQuantized> v_chunks_;
};

KvAttentionFactory make_kivi_factory(KiviConfig config);

}  // namespace turbo
