// Dense (uncompressed) attention baselines.
//
// Fp16FlashAttention is the paper's "FlashAttention" baseline: exact
// attention with FP16 storage/matmuls and FP32 exponentiation — the method
// every speedup/accuracy number is measured against. ExactAttention is the
// all-FP32 ground truth used to score approximation error.
#pragma once

#include "attention/config.h"
#include "attention/method.h"

namespace turbo {

class Fp16FlashAttention final : public KvAttention {
 public:
  Fp16FlashAttention(std::size_t head_dim, AttentionConfig config);

  std::string_view name() const override { return "FlashAttention-FP16"; }
  MatrixF prefill(const MatrixF& q, const MatrixF& k,
                  const MatrixF& v) override;
  std::vector<float> decode(std::span<const float> q,
                            std::span<const float> k,
                            std::span<const float> v) override;
  std::vector<float> attend(std::span<const float> q) override;
  std::size_t kv_cache_bytes() const override;
  std::size_t token_count() const override { return k_.rows(); }

 private:
  AttentionConfig config_;
  MatrixF k_;  // FP16-rounded rows
  MatrixF v_;
};

class ExactAttention final : public KvAttention {
 public:
  ExactAttention(std::size_t head_dim, AttentionConfig config);

  std::string_view name() const override { return "Exact-FP32"; }
  MatrixF prefill(const MatrixF& q, const MatrixF& k,
                  const MatrixF& v) override;
  std::vector<float> decode(std::span<const float> q,
                            std::span<const float> k,
                            std::span<const float> v) override;
  std::vector<float> attend(std::span<const float> q) override;
  std::size_t kv_cache_bytes() const override;
  std::size_t token_count() const override { return k_.rows(); }

 private:
  AttentionConfig config_;
  MatrixF k_;
  MatrixF v_;
};

KvAttentionFactory make_fp16_factory(AttentionConfig config);
KvAttentionFactory make_exact_factory(AttentionConfig config);

}  // namespace turbo
