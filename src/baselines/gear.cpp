#include "baselines/gear.h"

#include "attention/flash.h"
#include "common/check.h"
#include "common/fp16.h"

namespace turbo {

GearAttention::GearAttention(std::size_t head_dim, GearConfig config)
    : config_(config),
      head_dim_(head_dim),
      k_all_(0, head_dim),
      v_all_(0, head_dim) {
  TURBO_CHECK(config_.chunk > 0);
  TURBO_CHECK(config_.rank > 0);
}

MatrixF GearAttention::prefill(const MatrixF& q, const MatrixF& k,
                               const MatrixF& v) {
  TURBO_CHECK_MSG(k_all_.rows() == 0, "prefill must be the first call");
  TURBO_CHECK(q.cols() == head_dim_ && k.cols() == head_dim_ &&
              v.cols() == head_dim_);
  TURBO_CHECK(k.rows() == v.rows());
  const FlashResult r = flash_attention(q, k, v, config_.attention);
  k_all_ = k;
  v_all_ = v;
  round_span_to_fp16(k_all_.flat());
  round_span_to_fp16(v_all_.flat());
  compact();
  return r.o;
}

std::vector<float> GearAttention::decode(std::span<const float> q,
                                         std::span<const float> k,
                                         std::span<const float> v) {
  TURBO_CHECK(q.size() == head_dim_ && k.size() == head_dim_ &&
              v.size() == head_dim_);
  std::vector<float> k16(k.begin(), k.end());
  std::vector<float> v16(v.begin(), v.end());
  round_span_to_fp16(k16);
  round_span_to_fp16(v16);
  k_all_.append_row(std::span<const float>(k16));
  v_all_.append_row(std::span<const float>(v16));
  compact();

  FlashOptions options;
  options.kv_prerounded = true;
  return flash_decode(q, k_all_, v_all_, config_.attention, options);
}

std::vector<float> GearAttention::attend(std::span<const float> q) {
  TURBO_CHECK(q.size() == head_dim_);
  FlashOptions options;
  options.kv_prerounded = true;
  return flash_decode(q, k_all_, v_all_, config_.attention, options);
}

void GearAttention::compact() {
  while (k_all_.rows() - quantized_rows_ >=
         config_.residual + config_.chunk) {
    const std::size_t begin = quantized_rows_;
    const MatrixF k_chunk = k_all_.block_rows(begin, config_.chunk);
    const MatrixF v_chunk = v_all_.block_rows(begin, config_.chunk);

    // Per-token quantization: one asymmetric group per token row.
    GroupQuantized kq = quantize_grouped(k_chunk, config_.bits, head_dim_,
                                         QuantAxis::kToken);
    GroupQuantized vq = quantize_grouped(v_chunk, config_.bits, head_dim_,
                                         QuantAxis::kToken);
    MatrixF k_back = dequantize_grouped(kq);
    MatrixF v_back = dequantize_grouped(vq);

    // Rank-r compensation of the quantization residual.
    MatrixF k_res(config_.chunk, head_dim_);
    MatrixF v_res(config_.chunk, head_dim_);
    for (std::size_t i = 0; i < k_res.size(); ++i) {
      k_res.flat()[i] = k_chunk.flat()[i] - k_back.flat()[i];
      v_res.flat()[i] = v_chunk.flat()[i] - v_back.flat()[i];
    }
    const std::uint64_t chunk_seed = config_.seed + k_chunks_.size();
    LowRankFactors kf = low_rank_approximate(
        k_res, config_.rank, config_.lowrank_iters, chunk_seed);
    LowRankFactors vf = low_rank_approximate(
        v_res, config_.rank, config_.lowrank_iters, chunk_seed + 1);
    low_rank_add_to(kf, k_back);
    low_rank_add_to(vf, v_back);

    round_span_to_fp16(k_back.flat());
    round_span_to_fp16(v_back.flat());
    for (std::size_t r = 0; r < config_.chunk; ++r) {
      auto ks = k_back.row(r);
      auto kd = k_all_.row(begin + r);
      auto vs = v_back.row(r);
      auto vd = v_all_.row(begin + r);
      for (std::size_t c = 0; c < head_dim_; ++c) {
        kd[c] = ks[c];
        vd[c] = vs[c];
      }
    }
    k_chunks_.push_back(std::move(kq));
    v_chunks_.push_back(std::move(vq));
    k_factors_.push_back(std::move(kf));
    v_factors_.push_back(std::move(vf));
    quantized_rows_ += config_.chunk;
  }
}

std::size_t GearAttention::kv_cache_bytes() const {
  std::size_t bytes = 0;
  for (const GroupQuantized& g : k_chunks_) bytes += g.memory_bytes();
  for (const GroupQuantized& g : v_chunks_) bytes += g.memory_bytes();
  for (const LowRankFactors& f : k_factors_) bytes += f.memory_bytes();
  for (const LowRankFactors& f : v_factors_) bytes += f.memory_bytes();
  bytes += (k_all_.rows() - quantized_rows_) * head_dim_ * 2 * 2;
  return bytes;
}

KvAttentionFactory make_gear_factory(GearConfig config) {
  return [config](std::size_t head_dim) {
    return std::make_unique<GearAttention>(head_dim, config);
  };
}

}  // namespace turbo
