#include "baselines/fp16_method.h"

#include "attention/flash.h"
#include "attention/reference.h"
#include "common/check.h"
#include "common/fp16.h"

namespace turbo {

Fp16FlashAttention::Fp16FlashAttention(std::size_t head_dim,
                                       AttentionConfig config)
    : config_(config), k_(0, head_dim), v_(0, head_dim) {}

MatrixF Fp16FlashAttention::prefill(const MatrixF& q, const MatrixF& k,
                                    const MatrixF& v) {
  TURBO_CHECK_MSG(k_.rows() == 0, "prefill must be the first call");
  TURBO_CHECK(q.cols() == k_.cols() && k.cols() == k_.cols() &&
              v.cols() == k_.cols());
  TURBO_CHECK(k.rows() == v.rows());
  const FlashResult r = flash_attention(q, k, v, config_);
  k_ = k;
  v_ = v;
  round_span_to_fp16(k_.flat());
  round_span_to_fp16(v_.flat());
  return r.o;
}

std::vector<float> Fp16FlashAttention::decode(std::span<const float> q,
                                              std::span<const float> k,
                                              std::span<const float> v) {
  TURBO_CHECK(q.size() == k_.cols() && k.size() == k_.cols() &&
              v.size() == k_.cols());
  std::vector<float> k16(k.begin(), k.end());
  std::vector<float> v16(v.begin(), v.end());
  round_span_to_fp16(k16);
  round_span_to_fp16(v16);
  k_.append_row(std::span<const float>(k16));
  v_.append_row(std::span<const float>(v16));
  FlashOptions options;
  options.kv_prerounded = true;  // rows were rounded on insertion
  return flash_decode(q, k_, v_, config_, options);
}

std::vector<float> Fp16FlashAttention::attend(std::span<const float> q) {
  TURBO_CHECK(q.size() == k_.cols());
  FlashOptions options;
  options.kv_prerounded = true;
  return flash_decode(q, k_, v_, config_, options);
}

std::size_t Fp16FlashAttention::kv_cache_bytes() const {
  return (k_.size() + v_.size()) * 2;
}

ExactAttention::ExactAttention(std::size_t head_dim, AttentionConfig config)
    : config_(config), k_(0, head_dim), v_(0, head_dim) {}

MatrixF ExactAttention::prefill(const MatrixF& q, const MatrixF& k,
                                const MatrixF& v) {
  TURBO_CHECK_MSG(k_.rows() == 0, "prefill must be the first call");
  TURBO_CHECK(q.cols() == k_.cols() && k.cols() == k_.cols() &&
              v.cols() == k_.cols());
  TURBO_CHECK(k.rows() == v.rows());
  k_ = k;
  v_ = v;
  return reference_attention(q, k, v, config_);
}

std::vector<float> ExactAttention::decode(std::span<const float> q,
                                          std::span<const float> k,
                                          std::span<const float> v) {
  TURBO_CHECK(q.size() == k_.cols() && k.size() == k_.cols() &&
              v.size() == k_.cols());
  k_.append_row(k);
  v_.append_row(v);
  return reference_decode(q, k_, v_, config_);
}

std::vector<float> ExactAttention::attend(std::span<const float> q) {
  TURBO_CHECK(q.size() == k_.cols());
  return reference_decode(q, k_, v_, config_);
}

std::size_t ExactAttention::kv_cache_bytes() const {
  return (k_.size() + v_.size()) * 4;
}

KvAttentionFactory make_fp16_factory(AttentionConfig config) {
  return [config](std::size_t head_dim) {
    return std::make_unique<Fp16FlashAttention>(head_dim, config);
  };
}

KvAttentionFactory make_exact_factory(AttentionConfig config) {
  return [config](std::size_t head_dim) {
    return std::make_unique<ExactAttention>(head_dim, config);
  };
}

}  // namespace turbo
