// Truncated low-rank approximation via randomized subspace iteration.
//
// GEAR compensates KV quantization error with a rank-r approximation of the
// residual R = X - dequant(quant(X)). We compute the leading r-dimensional
// subspace with block power iteration on R^T R (a handful of sweeps suffice
// since quantization residuals have flat spectra and we only need the bulk
// of the energy, not exact singular vectors).
#pragma once

#include <cstdint>

#include "common/matrix.h"

namespace turbo {

struct LowRankFactors {
  MatrixF left;   // [m x rank]
  MatrixF right;  // [n x rank]

  // Approximation is left * right^T.
  std::size_t rank() const { return left.cols(); }
  // FP16 storage of both factors.
  std::size_t memory_bytes() const {
    return (left.size() + right.size()) * 2;
  }
};

// Rank-`rank` approximation of `m` using `iterations` subspace-iteration
// sweeps (3 is plenty for residual matrices). Deterministic via `seed`.
LowRankFactors low_rank_approximate(const MatrixF& m, std::size_t rank,
                                    std::size_t iterations,
                                    std::uint64_t seed);

MatrixF low_rank_reconstruct(const LowRankFactors& f);

// Adds left * right^T onto `target` in place (avoids materializing).
void low_rank_add_to(const LowRankFactors& f, MatrixF& target);

}  // namespace turbo
