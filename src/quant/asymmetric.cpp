#include "quant/asymmetric.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/numeric.h"
#include "common/stats.h"

namespace turbo {

AsymParams asym_params(std::span<const float> values, BitWidth bits) {
  const MinMax mm = min_max(values);
  TURBO_CHECK_FINITE(mm.min);
  TURBO_CHECK_FINITE(mm.max);
  AsymParams p;
  p.zero = mm.min;
  const float gap = mm.gap();
  p.scale = gap > 0.0f ? gap / static_cast<float>(max_code(bits)) : 1.0f;
  return p;
}

void quantize_asym(std::span<const float> values, const AsymParams& p,
                   BitWidth bits, std::span<std::uint8_t> out) {
  TURBO_CHECK(values.size() == out.size());
  TURBO_CHECK(p.scale > 0.0f);
  const float inv = 1.0f / p.scale;
  const float hi = static_cast<float>(max_code(bits));
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float q = std::nearbyint((values[i] - p.zero) * inv);
    out[i] = saturate_cast<std::uint8_t>(std::clamp(q, 0.0f, hi));
  }
}

void dequantize_asym(std::span<const std::uint8_t> codes,
                     const AsymParams& p, std::span<float> out) {
  TURBO_CHECK(codes.size() == out.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[i] = static_cast<float>(codes[i]) * p.scale + p.zero;
  }
}

std::size_t GroupQuantized::memory_bytes() const {
  // Codes + per-group (scale, zero) stored as two FP16 values.
  return packed.size() + params.size() * 4;
}

namespace {

// Gather one group's values. For kChannel the group runs down column `c`
// over rows [begin, end); for kToken it runs across row `r` over columns
// [begin, end).
void gather_group(const MatrixF& m, QuantAxis axis, std::size_t fixed,
                  std::size_t begin, std::size_t end,
                  std::vector<float>& buf) {
  buf.clear();
  if (axis == QuantAxis::kChannel) {
    for (std::size_t r = begin; r < end; ++r) buf.push_back(m(r, fixed));
  } else {
    for (std::size_t c = begin; c < end; ++c) buf.push_back(m(fixed, c));
  }
}

void scatter_group(MatrixF& m, QuantAxis axis, std::size_t fixed,
                   std::size_t begin, std::span<const float> buf) {
  if (axis == QuantAxis::kChannel) {
    for (std::size_t i = 0; i < buf.size(); ++i) m(begin + i, fixed) = buf[i];
  } else {
    for (std::size_t i = 0; i < buf.size(); ++i) m(fixed, begin + i) = buf[i];
  }
}

}  // namespace

GroupQuantized quantize_grouped(const MatrixF& m, BitWidth bits,
                                std::size_t group_size, QuantAxis axis) {
  TURBO_CHECK(group_size > 0);
  GroupQuantized g;
  g.rows = m.rows();
  g.cols = m.cols();
  g.bits = bits;
  g.axis = axis;
  g.group_size = group_size;

  const std::size_t n_fixed = axis == QuantAxis::kChannel ? m.cols() : m.rows();
  const std::size_t axis_len = axis == QuantAxis::kChannel ? m.rows() : m.cols();

  std::vector<std::uint8_t> codes;
  codes.reserve(m.size());
  std::vector<float> buf;
  std::vector<std::uint8_t> group_codes;
  for (std::size_t f = 0; f < n_fixed; ++f) {
    for (std::size_t begin = 0; begin < axis_len; begin += group_size) {
      const std::size_t end = std::min(begin + group_size, axis_len);
      gather_group(m, axis, f, begin, end, buf);
      const AsymParams p = asym_params(buf, bits);
      group_codes.resize(buf.size());
      quantize_asym(buf, p, bits, group_codes);
      codes.insert(codes.end(), group_codes.begin(), group_codes.end());
      g.params.push_back(p);
    }
  }
  g.packed = pack_codes(codes, bits);
  return g;
}

MatrixF dequantize_grouped(const GroupQuantized& g) {
  MatrixF out(g.rows, g.cols);
  const std::size_t n_fixed =
      g.axis == QuantAxis::kChannel ? g.cols : g.rows;
  const std::size_t axis_len =
      g.axis == QuantAxis::kChannel ? g.rows : g.cols;

  const std::vector<std::uint8_t> codes =
      unpack_codes(g.packed, g.bits, g.rows * g.cols);

  std::size_t code_pos = 0;
  std::size_t group_idx = 0;
  std::vector<float> buf;
  for (std::size_t f = 0; f < n_fixed; ++f) {
    for (std::size_t begin = 0; begin < axis_len; begin += g.group_size) {
      const std::size_t end = std::min(begin + g.group_size, axis_len);
      const std::size_t n = end - begin;
      buf.resize(n);
      dequantize_asym({codes.data() + code_pos, n}, g.params[group_idx], buf);
      scatter_group(out, g.axis, f, begin, buf);
      code_pos += n;
      ++group_idx;
    }
  }
  return out;
}

}  // namespace turbo
