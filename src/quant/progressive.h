// Second-stage (progressive) quantization: INT8 -> INT4/INT2, channel-wise,
// asymmetric, with *integer* scales and zero-points (Eq. 10 / Algorithm 1).
//
// This is what distinguishes FlashQ from float-domain KV quantizers: the
// payload stays in the integer domain end to end, so decode-time
// decompression is q1 = q2 * s_int + z_int — pure INT arithmetic that maps
// onto cheap integer instructions instead of the FP16 dequant kernels KIVI
// and GEAR require.
//
// Conventions (documented in DESIGN.md §6): per channel of an INT8 tile,
//   s_int = max(1, round((max - min) / (2^bits - 1)))  stored as int8
//   z_int = min                                        stored as int8
//   q2    = clamp(round((q1 - z_int) / s_int), 0, 2^bits - 1)
//   q1^   = clamp(q2 * s_int + z_int, -127, 127)
// When the gap is not divisible the channel's extreme values clip into the
// top code — cheaper on average than the uniform precision loss of a
// ceil() scale.
// The first-stage FP scale (s = max|x|/119) rides along so the block can be
// dequantized all the way to float when a reference value is needed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "quant/packing.h"
#include "quant/symmetric.h"
#include "quant/types.h"

namespace turbo {

// Integer quantization parameters for one channel of a block.
struct ChannelParams {
  std::int8_t s_int = 1;  // integer scale, >= 1
  std::int8_t z_int = 0;  // integer zero point (channel minimum)
};

// One KV tile compressed through both stages. `rows` is the token count of
// the tile (<= block size Bc), `cols` the head dimension.
struct ProgressiveBlock {
  std::size_t rows = 0;
  std::size_t cols = 0;
  BitWidth bits = BitWidth::kInt4;
  std::vector<std::uint8_t> packed;   // q2 codes, column-major per channel
  std::vector<ChannelParams> channels;  // one per column
  float fp_scale = 1.0f;              // first-stage symmetric scale

  std::size_t payload_bytes() const { return packed.size(); }
  // Per-channel (s_int, z_int) int8 pairs + one FP16 first-stage scale.
  std::size_t metadata_bytes() const { return channels.size() * 2 + 2; }
  std::size_t memory_bytes() const {
    return payload_bytes() + metadata_bytes();
  }
};

// Compress an INT8 tile (first-stage output) to the packed second-stage
// representation. Channel-wise: each column gets its own (s_int, z_int).
ProgressiveBlock progressive_compress(const MatrixI8& q1, float fp_scale,
                                      BitWidth bits);

// Decompress back to INT8 using integer arithmetic only. This is the decode
// path of Algorithm 2 (Step 2 in Figure 3's decode flow).
MatrixI8 progressive_decompress_int8(const ProgressiveBlock& block);

// Decompress all the way to float: (q2 * s_int + z_int) * fp_scale.
MatrixF progressive_decompress_float(const ProgressiveBlock& block);

// Convenience: both stages at once. Quantizes `tile` symmetrically to INT8
// (per-block scale) then progressively to `bits`.
ProgressiveBlock progressive_compress_from_float(const MatrixF& tile,
                                                 BitWidth bits);

// --- Ablation variant: float second-stage scales ------------------------
//
// The design alternative FlashQ rejects: keep the channel-wise second
// stage but store *float* scales/zero-points (like KIVI), so decode must
// dequantize INT4/2 -> FP16 instead of INT -> INT8. Slightly lower
// quantization error (no integer rounding of the scale), but it forfeits
// the integer decode path. Used by bench_ablation_design to quantify the
// accuracy price of integer scales.
struct FloatScaleChannel {
  float scale = 1.0f;
  float zero = 0.0f;
};

struct FloatScaleBlock {
  std::size_t rows = 0;
  std::size_t cols = 0;
  BitWidth bits = BitWidth::kInt4;
  std::vector<std::uint8_t> packed;  // column-major codes
  std::vector<FloatScaleChannel> channels;
  float fp_scale = 1.0f;

  // Payload + per-channel (scale, zero) as FP16 pairs + the block scale.
  std::size_t memory_bytes() const {
    return packed.size() + channels.size() * 4 + 2;
  }
};

FloatScaleBlock float_scale_compress(const MatrixI8& q1, float fp_scale,
                                     BitWidth bits);

MatrixF float_scale_decompress_float(const FloatScaleBlock& block);

}  // namespace turbo
