// turbo-lint: integer-kernel
//
// Second-stage decode, integer domain only (Algorithm 2, Step 2 of the
// Figure 3 decode flow): q1 = clamp(q2 * s_int + z_int, -127, 127).
//
// This translation unit is tagged `integer-kernel`: tools/turbo_lint
// rejects any floating-point arithmetic added here, because the whole
// point of FlashQ's progressive scheme is that the decode path never
// leaves integer registers. Keep FP (de)quantization in progressive.cpp.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/numeric.h"
#include "quant/packing.h"
#include "quant/progressive.h"

namespace turbo {

MatrixI8 progressive_decompress_int8(const ProgressiveBlock& block) {
  MatrixI8 out(block.rows, block.cols);
  const std::vector<std::uint8_t> codes =
      unpack_codes(block.packed, block.bits, block.rows * block.cols);
  for (std::size_t c = 0; c < block.cols; ++c) {
    const int s = block.channels[c].s_int;
    const int z = block.channels[c].z_int;
    for (std::size_t r = 0; r < block.rows; ++r) {
      const int q1 = static_cast<int>(codes[c * block.rows + r]) * s + z;
      out(r, c) = clamp_to_i8(q1);
    }
  }
  return out;
}

}  // namespace turbo
