// Shared quantization vocabulary.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace turbo {

// Bit-widths supported by the second (asymmetric) quantization stage and by
// the float-domain grouped quantizers. INT8 is the first-stage format.
enum class BitWidth : int {
  kInt2 = 2,
  kInt3 = 3,
  kInt4 = 4,
  kInt8 = 8,
};

inline int bit_count(BitWidth b) { return static_cast<int>(b); }

// Number of representable levels (2^bits).
inline int level_count(BitWidth b) { return 1 << bit_count(b); }

// Largest unsigned code for this width (2^bits - 1).
inline int max_code(BitWidth b) { return level_count(b) - 1; }

inline BitWidth bit_width_from_int(int bits) {
  switch (bits) {
    case 2:
      return BitWidth::kInt2;
    case 3:
      return BitWidth::kInt3;
    case 4:
      return BitWidth::kInt4;
    case 8:
      return BitWidth::kInt8;
    default:
      TURBO_CHECK_MSG(false, "unsupported bit width " << bits);
      return BitWidth::kInt8;  // unreachable: the check above throws
  }
}

// Axis along which grouped quantization parameters are shared.
enum class QuantAxis {
  kChannel,  // parameters shared down a column (per-channel): KIVI keys,
             // FlashQ second stage
  kToken,    // parameters shared across a row (per-token): KIVI values
};

inline const char* axis_name(QuantAxis a) {
  return a == QuantAxis::kChannel ? "channel" : "token";
}

}  // namespace turbo
