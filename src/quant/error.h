// Quantization-error measurement helpers (Fig. 10 and ablations).
#pragma once

#include "common/matrix.h"
#include "quant/types.h"

namespace turbo {

// Round-trip RMSE of grouped asymmetric quantization along an axis — the
// quantity Figure 10 compares channelwise vs tokenwise.
double grouped_quant_rmse(const MatrixF& m, BitWidth bits,
                          std::size_t group_size, QuantAxis axis);

// Round-trip RMSE of the full two-stage progressive pipeline applied
// block-wise with the given token block size.
double progressive_quant_rmse(const MatrixF& m, BitWidth bits,
                              std::size_t block_rows);

// Round-trip RMSE of plain symmetric INT8 (first stage only), block-wise.
double symmetric_int8_rmse(const MatrixF& m, std::size_t block_rows);

// Channel-normalized round-trip error: per-channel RMSE divided by that
// channel's standard deviation, averaged over channels. Plain RMSE is
// dominated by the (large) absolute errors on outlier channels under every
// scheme; this metric exposes where token-wise grouping actually loses —
// its step size is set by the row's outlier-dominated range, so *normal*
// channels are quantized far too coarsely relative to their scale.
double grouped_quant_normalized_error(const MatrixF& m, BitWidth bits,
                                      std::size_t group_size,
                                      QuantAxis axis);

// Same metric for the FlashQ two-stage pipeline.
double progressive_quant_normalized_error(const MatrixF& m, BitWidth bits,
                                          std::size_t block_rows);

}  // namespace turbo
