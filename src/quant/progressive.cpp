#include "quant/progressive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/numeric.h"

namespace turbo {

ProgressiveBlock progressive_compress(const MatrixI8& q1, float fp_scale,
                                      BitWidth bits) {
  TURBO_CHECK(bits == BitWidth::kInt2 || bits == BitWidth::kInt3 ||
              bits == BitWidth::kInt4);
  TURBO_CHECK(q1.rows() > 0 && q1.cols() > 0);
  TURBO_CHECK_FINITE(fp_scale);

  ProgressiveBlock block;
  block.rows = q1.rows();
  block.cols = q1.cols();
  block.bits = bits;
  block.fp_scale = fp_scale;
  block.channels.resize(q1.cols());

  const int codes_hi = max_code(bits);
  std::vector<std::uint8_t> codes(q1.rows() * q1.cols());

  for (std::size_t c = 0; c < q1.cols(); ++c) {
    int lo = 127;
    int hi = -127;
    for (std::size_t r = 0; r < q1.rows(); ++r) {
      const int v = q1(r, c);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const int gap = hi - lo;
    // Algorithm 1 rounds the integer scale to nearest; values past
    // max_code * s_int clip into the top code (rare, only the channel's
    // extreme when the gap isn't divisible), which beats the systematic
    // precision loss a ceil() scale would impose on every element.
    const int s_int = std::max(1, (2 * gap + codes_hi) / (2 * codes_hi));
    TURBO_DCHECK(s_int <= 127);
    block.channels[c].s_int = clamp_to_i8(s_int);
    block.channels[c].z_int = clamp_to_i8(lo);

    for (std::size_t r = 0; r < q1.rows(); ++r) {
      // Integer round-to-nearest of (q1 - z) / s: add s/2 before dividing.
      const int num = q1(r, c) - lo;
      const int q2 = std::clamp((num + s_int / 2) / s_int, 0, codes_hi);
      codes[c * q1.rows() + r] = saturate_cast<std::uint8_t>(q2);
    }
  }
  block.packed = pack_codes(codes, bits);
  return block;
}

// progressive_decompress_int8 lives in int_decode.cpp (tagged
// `integer-kernel` so turbo_lint keeps the decode path float-free).

MatrixF progressive_decompress_float(const ProgressiveBlock& block) {
  const MatrixI8 q1 = progressive_decompress_int8(block);
  MatrixF out(block.rows, block.cols);
  for (std::size_t i = 0; i < q1.size(); ++i) {
    out.flat()[i] = static_cast<float>(q1.flat()[i]) * block.fp_scale;
  }
  return out;
}

ProgressiveBlock progressive_compress_from_float(const MatrixF& tile,
                                                 BitWidth bits) {
  const Int8Tile stage1 = quantize_tile_int8(tile);
  return progressive_compress(stage1.q, stage1.scale, bits);
}

FloatScaleBlock float_scale_compress(const MatrixI8& q1, float fp_scale,
                                     BitWidth bits) {
  TURBO_CHECK(bits == BitWidth::kInt2 || bits == BitWidth::kInt3 ||
              bits == BitWidth::kInt4);
  TURBO_CHECK(q1.rows() > 0 && q1.cols() > 0);

  FloatScaleBlock block;
  block.rows = q1.rows();
  block.cols = q1.cols();
  block.bits = bits;
  block.fp_scale = fp_scale;
  block.channels.resize(q1.cols());

  const int codes_hi = max_code(bits);
  std::vector<std::uint8_t> codes(q1.rows() * q1.cols());
  for (std::size_t c = 0; c < q1.cols(); ++c) {
    int lo = 127;
    int hi = -127;
    for (std::size_t r = 0; r < q1.rows(); ++r) {
      lo = std::min<int>(lo, q1(r, c));
      hi = std::max<int>(hi, q1(r, c));
    }
    FloatScaleChannel& ch = block.channels[c];
    ch.zero = static_cast<float>(lo);
    ch.scale = hi > lo
                   ? static_cast<float>(hi - lo) / static_cast<float>(codes_hi)
                   : 1.0f;
    for (std::size_t r = 0; r < q1.rows(); ++r) {
      const float q = std::nearbyint(
          (static_cast<float>(q1(r, c)) - ch.zero) / ch.scale);
      codes[c * q1.rows() + r] = saturate_cast<std::uint8_t>(
          std::clamp(q, 0.0f, static_cast<float>(codes_hi)));
    }
  }
  block.packed = pack_codes(codes, bits);
  return block;
}

MatrixF float_scale_decompress_float(const FloatScaleBlock& block) {
  MatrixF out(block.rows, block.cols);
  const std::vector<std::uint8_t> codes =
      unpack_codes(block.packed, block.bits, block.rows * block.cols);
  for (std::size_t c = 0; c < block.cols; ++c) {
    const FloatScaleChannel& ch = block.channels[c];
    for (std::size_t r = 0; r < block.rows; ++r) {
      const float q1 =
          static_cast<float>(codes[c * block.rows + r]) * ch.scale + ch.zero;
      out(r, c) = q1 * block.fp_scale;
    }
  }
  return out;
}

}  // namespace turbo
