// turbo-lint: integer-kernel
#include "quant/packing.h"

#include "common/check.h"
#include "common/numeric.h"

namespace turbo {

std::size_t packed_byte_count(std::size_t count, BitWidth bits) {
  const std::size_t b = static_cast<std::size_t>(bit_count(bits));
  return (count * b + 7) / 8;
}

std::vector<std::uint8_t> pack_codes(std::span<const std::uint8_t> codes,
                                     BitWidth bits) {
  const int b = bit_count(bits);
  const std::uint8_t mask = trunc_to_u8((1u << static_cast<unsigned>(b)) - 1u);
  std::vector<std::uint8_t> out(packed_byte_count(codes.size(), bits), 0);
  std::size_t bitpos = 0;
  for (std::uint8_t code : codes) {
    TURBO_DCHECK((code & ~mask) == 0);
    const std::size_t byte = bitpos >> 3;
    const unsigned shift = bitpos & 7u;
    out[byte] |= trunc_to_u8((code & mask) << shift);
    // A code can straddle a byte boundary (3-bit case).
    if (shift + static_cast<unsigned>(b) > 8) {
      out[byte + 1] |= trunc_to_u8((code & mask) >> (8 - shift));
    }
    bitpos += static_cast<std::size_t>(b);
  }
  return out;
}

void unpack_codes(std::span<const std::uint8_t> packed, BitWidth bits,
                  std::size_t count, std::span<std::uint8_t> out) {
  TURBO_CHECK(out.size() >= count);
  TURBO_CHECK(packed.size() >= packed_byte_count(count, bits));
  const int b = bit_count(bits);
  const std::uint8_t mask = trunc_to_u8((1u << static_cast<unsigned>(b)) - 1u);
  std::size_t bitpos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t byte = bitpos >> 3;
    const unsigned shift = bitpos & 7u;
    unsigned v = static_cast<unsigned>(packed[byte]) >> shift;
    if (shift + static_cast<unsigned>(b) > 8) {
      v |= static_cast<unsigned>(packed[byte + 1]) << (8 - shift);
    }
    out[i] = trunc_to_u8(v & mask);
    bitpos += static_cast<std::size_t>(b);
  }
}

std::vector<std::uint8_t> unpack_codes(std::span<const std::uint8_t> packed,
                                       BitWidth bits, std::size_t count) {
  std::vector<std::uint8_t> out(count);
  unpack_codes(packed, bits, count, out);
  return out;
}

}  // namespace turbo
