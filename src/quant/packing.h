// Sub-byte bit packing for INT4 / INT2 (and INT3) payloads.
//
// The KV cache stores second-stage codes packed densely: two 4-bit codes or
// four 2-bit codes per byte (3-bit codes use a simple 8-codes-in-3-bytes
// layout). Codes are unsigned, already offset by the zero-point. Packing is
// little-endian within a byte: code i occupies the lowest free bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "quant/types.h"

namespace turbo {

// Bytes needed to store `count` codes of the given width.
std::size_t packed_byte_count(std::size_t count, BitWidth bits);

// Pack unsigned codes (each < 2^bits) into a dense byte vector.
std::vector<std::uint8_t> pack_codes(std::span<const std::uint8_t> codes,
                                     BitWidth bits);

// Unpack `count` codes from a packed buffer.
void unpack_codes(std::span<const std::uint8_t> packed, BitWidth bits,
                  std::size_t count, std::span<std::uint8_t> out);

std::vector<std::uint8_t> unpack_codes(std::span<const std::uint8_t> packed,
                                       BitWidth bits, std::size_t count);

}  // namespace turbo
