// First-stage symmetric INT8 quantization (Eq. 9 / Algorithm 1).
//
// TurboAttention quantizes every FlashAttention tile of Q, K and V with a
// single symmetric scale s = max|x| / 119 before the integer matmuls. The
// 119 denominator (instead of 127) leaves headroom so that decode-time
// values slightly larger than the tile maximum seen at scale-selection time
// can still be represented after clamping — this is what makes the
// "universal scale" decode buffer (section 3.3) work without recompression.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.h"

namespace turbo {

// Headroom denominator from Algorithm 1.
inline constexpr float kSymmetricHeadroom = 119.0f;

// Scale for symmetric INT8 quantization of `values`: max|x| / 119.
// Returns a strictly positive scale even for all-zero input so that
// quantize/dequantize round-trips are always defined.
float symmetric_scale_int8(std::span<const float> values,
                           float headroom = kSymmetricHeadroom);

// q = clamp(round(x / scale), -127, 127).
void quantize_symmetric_int8(std::span<const float> values, float scale,
                             std::span<std::int8_t> out);

// x^ = q * scale.
void dequantize_symmetric_int8(std::span<const std::int8_t> q, float scale,
                               std::span<float> out);

// An INT8-quantized tile together with its (FP) per-block scale — the unit
// FlashQ's blockwise progressive quantization operates on.
struct Int8Tile {
  MatrixI8 q;
  float scale = 1.0f;
};

// Quantize a whole tile with one per-block scale.
Int8Tile quantize_tile_int8(const MatrixF& tile,
                            float headroom = kSymmetricHeadroom);

// Quantize a tile against an externally chosen ("universal") scale,
// clamping outliers into [-127, 127]. Used by the enhanced KV-cache buffer.
Int8Tile quantize_tile_int8_with_scale(const MatrixF& tile, float scale);

MatrixF dequantize_tile(const Int8Tile& tile);

}  // namespace turbo
