#include "quant/symmetric.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/numeric.h"

namespace turbo {

float symmetric_scale_int8(std::span<const float> values, float headroom) {
  TURBO_CHECK(headroom > 0.0f);
  float amax = 0.0f;
  for (float v : values) amax = std::max(amax, std::abs(v));
  TURBO_CHECK_FINITE(amax);
  if (amax == 0.0f) return 1.0f;  // arbitrary positive scale for zero input
  return amax / headroom;
}

void quantize_symmetric_int8(std::span<const float> values, float scale,
                             std::span<std::int8_t> out) {
  TURBO_CHECK(values.size() == out.size());
  TURBO_CHECK(scale > 0.0f);
  TURBO_CHECK_FINITE(scale);
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = clamp_to_i8(values[i] * inv);
  }
}

void dequantize_symmetric_int8(std::span<const std::int8_t> q, float scale,
                               std::span<float> out) {
  TURBO_CHECK(q.size() == out.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    out[i] = static_cast<float>(q[i]) * scale;
  }
}

Int8Tile quantize_tile_int8(const MatrixF& tile, float headroom) {
  const float scale = symmetric_scale_int8(tile.flat(), headroom);
  return quantize_tile_int8_with_scale(tile, scale);
}

Int8Tile quantize_tile_int8_with_scale(const MatrixF& tile, float scale) {
  Int8Tile out;
  out.scale = scale;
  out.q = MatrixI8(tile.rows(), tile.cols());
  quantize_symmetric_int8(tile.flat(), scale, out.q.flat());
  return out;
}

MatrixF dequantize_tile(const Int8Tile& tile) {
  MatrixF out(tile.q.rows(), tile.q.cols());
  dequantize_symmetric_int8(tile.q.flat(), tile.scale, out.flat());
  return out;
}

}  // namespace turbo
