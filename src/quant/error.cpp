#include "quant/error.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "quant/asymmetric.h"
#include "quant/progressive.h"
#include "quant/symmetric.h"

namespace turbo {

double grouped_quant_rmse(const MatrixF& m, BitWidth bits,
                          std::size_t group_size, QuantAxis axis) {
  const GroupQuantized g = quantize_grouped(m, bits, group_size, axis);
  const MatrixF back = dequantize_grouped(g);
  return rmse(m, back);
}

double progressive_quant_rmse(const MatrixF& m, BitWidth bits,
                              std::size_t block_rows) {
  TURBO_CHECK(block_rows > 0);
  double sq_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t begin = 0; begin < m.rows(); begin += block_rows) {
    const std::size_t rows = std::min(block_rows, m.rows() - begin);
    const MatrixF tile = m.block_rows(begin, rows);
    const ProgressiveBlock block =
        progressive_compress_from_float(tile, bits);
    const MatrixF back = progressive_decompress_float(block);
    const double r = rmse(tile, back);
    sq_sum += r * r * static_cast<double>(tile.size());
    n += tile.size();
  }
  return n == 0 ? 0.0 : std::sqrt(sq_sum / static_cast<double>(n));
}

namespace {

// Mean over channels of (channel RMSE / channel stddev).
double channel_normalized_error(const MatrixF& original,
                                const MatrixF& reconstructed) {
  TURBO_CHECK(original.rows() == reconstructed.rows());
  TURBO_CHECK(original.cols() == reconstructed.cols());
  if (original.rows() == 0 || original.cols() == 0) return 0.0;
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t c = 0; c < original.cols(); ++c) {
    double err_sq = 0.0;
    double mean = 0.0;
    for (std::size_t r = 0; r < original.rows(); ++r) {
      mean += static_cast<double>(original(r, c));
    }
    mean /= static_cast<double>(original.rows());
    double var = 0.0;
    for (std::size_t r = 0; r < original.rows(); ++r) {
      const double d = original(r, c) - reconstructed(r, c);
      err_sq += d * d;
      const double dv = static_cast<double>(original(r, c)) - mean;
      var += dv * dv;
    }
    if (var <= 0.0) continue;  // constant channel: exactly representable
    sum += std::sqrt(err_sq / var);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace

double grouped_quant_normalized_error(const MatrixF& m, BitWidth bits,
                                      std::size_t group_size,
                                      QuantAxis axis) {
  const GroupQuantized g = quantize_grouped(m, bits, group_size, axis);
  return channel_normalized_error(m, dequantize_grouped(g));
}

double progressive_quant_normalized_error(const MatrixF& m, BitWidth bits,
                                          std::size_t block_rows) {
  TURBO_CHECK(block_rows > 0);
  MatrixF back(0, m.cols());
  for (std::size_t begin = 0; begin < m.rows(); begin += block_rows) {
    const std::size_t rows = std::min(block_rows, m.rows() - begin);
    const MatrixF tile = m.block_rows(begin, rows);
    back.append_rows(progressive_decompress_float(
        progressive_compress_from_float(tile, bits)));
  }
  return channel_normalized_error(m, back);
}

double symmetric_int8_rmse(const MatrixF& m, std::size_t block_rows) {
  TURBO_CHECK(block_rows > 0);
  double sq_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t begin = 0; begin < m.rows(); begin += block_rows) {
    const std::size_t rows = std::min(block_rows, m.rows() - begin);
    const MatrixF tile = m.block_rows(begin, rows);
    const Int8Tile t = quantize_tile_int8(tile);
    const MatrixF back = dequantize_tile(t);
    const double r = rmse(tile, back);
    sq_sum += r * r * static_cast<double>(tile.size());
    n += tile.size();
  }
  return n == 0 ? 0.0 : std::sqrt(sq_sum / static_cast<double>(n));
}

}  // namespace turbo
