// Float-domain asymmetric grouped quantization.
//
// This is the classic KV-cache quantizer used by the KIVI baseline and by
// the Figure 10 channelwise-vs-tokenwise error study: values in a group
// share a float scale and zero-point,
//   q = clamp(round((x - zero) / scale), 0, 2^bits - 1),
//   x^ = q * scale + zero.
// Groups run either down a column (per-channel) or across a row (per-token)
// with a group size g (KIVI uses g = 64).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "quant/packing.h"
#include "quant/types.h"

namespace turbo {

// Parameters of one quantization group.
struct AsymParams {
  float scale = 1.0f;
  float zero = 0.0f;
};

// Compute scale/zero for a group of values at the given width.
AsymParams asym_params(std::span<const float> values, BitWidth bits);

// Quantize a group with known parameters into unsigned codes.
void quantize_asym(std::span<const float> values, const AsymParams& p,
                   BitWidth bits, std::span<std::uint8_t> out);

void dequantize_asym(std::span<const std::uint8_t> codes,
                     const AsymParams& p, std::span<float> out);

// A matrix quantized group-wise along an axis, codes packed.
struct GroupQuantized {
  std::size_t rows = 0;
  std::size_t cols = 0;
  BitWidth bits = BitWidth::kInt4;
  QuantAxis axis = QuantAxis::kChannel;
  std::size_t group_size = 64;
  std::vector<std::uint8_t> packed;   // codes in axis-major group order
  std::vector<AsymParams> params;     // one per group

  // Payload + metadata footprint in bytes (params as 2 x FP16).
  std::size_t memory_bytes() const;
};

// Quantize `m` along `axis` with groups of `group_size` elements. The last
// group along the axis may be ragged.
GroupQuantized quantize_grouped(const MatrixF& m, BitWidth bits,
                                std::size_t group_size, QuantAxis axis);

MatrixF dequantize_grouped(const GroupQuantized& g);

}  // namespace turbo
