// GPU device model.
//
// The paper's latency/throughput results run on an NVIDIA A100-SXM-80GB.
// Our substrate is CPU-only, so latency experiments run on an analytical
// roofline model parameterized with datasheet numbers plus efficiency
// factors calibrated against the relationships the paper reports (e.g.
// softmax ~30% of FlashAttention time; FP32 CUDA throughput ~3% of FP16
// tensor-core throughput). Every constant is visible here, not buried in
// formulas, so the calibration is auditable.
#pragma once

#include <string>

namespace turbo::sim {

struct DeviceSpec {
  std::string name;

  // Peak arithmetic throughputs (operations per second, dense).
  double fp16_tensor_flops = 0;  // FP16 tensor core MMA
  double int8_tensor_ops = 0;    // INT8 tensor core MMA
  double fp32_cuda_flops = 0;    // FP32 CUDA cores
  double fp16_cuda_flops = 0;    // FP16 CUDA cores (2x FP32 rate)
  double int32_alu_ops = 0;      // integer ALU (dequant INT->INT8)

  // Effective FP32 exponentiation rate: SFU throughput derated by the
  // FP16<->FP32 conversion and range-reduction work FlashAttention's
  // exponentiation path performs (the bottleneck section 4 attacks).
  double fp32_exp_ops = 0;

  // Memory system.
  double hbm_bandwidth = 0;      // bytes / second
  double hbm_capacity = 0;       // bytes
  std::size_t sram_per_sm = 0;   // usable shared memory per SM, bytes
  std::size_t sm_count = 0;

  // Host link (device <-> host memory), bytes / second. Governs the cost
  // of swapping preempted KV sequences to a host store and back
  // (serving/swap.h). Datasheet PCIe rates; NVLink-C2C parts would just
  // raise this number.
  double pcie_bandwidth = 0;

  // Second swap tier (host DRAM -> local disk), bytes / second. Governs
  // the disk tier of the tiered swap store (serving/swap.h): sequential
  // NVMe rates for the node-local scratch volume a serving fleet would
  // spill cold KV streams to. 0 = no disk tier modeled.
  double disk_bandwidth = 0;

  // Achievable fractions of peak (calibration knobs).
  double mma_efficiency = 0.6;       // FP16 tensor-core utilization
  double int8_mma_efficiency = 0.45; // INT8 MMA runs at lower utilization
                                     // (per-tile scale handling, layout)
  double cuda_efficiency = 0.5;      // CUDA-core utilization
  double mem_efficiency = 0.85;      // achievable HBM fraction

  double kernel_launch_overhead = 5e-6;  // seconds per kernel

  // Derated rates.
  double eff_fp16_tensor() const { return fp16_tensor_flops * mma_efficiency; }
  double eff_int8_tensor() const {
    return int8_tensor_ops * int8_mma_efficiency;
  }
  double eff_fp32_cuda() const { return fp32_cuda_flops * cuda_efficiency; }
  double eff_fp16_cuda() const { return fp16_cuda_flops * cuda_efficiency; }
  double eff_int32_alu() const { return int32_alu_ops * cuda_efficiency; }
  double eff_exp() const { return fp32_exp_ops * cuda_efficiency; }
  double eff_bandwidth() const { return hbm_bandwidth * mem_efficiency; }
};

// NVIDIA A100-SXM4-80GB — the paper's evaluation platform.
DeviceSpec a100_sxm_80gb();

// NVIDIA H100-SXM5-80GB — for what-if extrapolation (not in the paper).
DeviceSpec h100_sxm_80gb();

// A bandwidth-starved PCIe part, useful for sensitivity studies.
DeviceSpec a100_pcie_40gb();

}  // namespace turbo::sim
