#include "sim/parallel.h"

#include <algorithm>

#include "common/check.h"

namespace turbo::sim {

namespace {

// Per-GPU shard of the model: heads, KV heads and FFN divide by G;
// d_model (the replicated hidden dimension) does not.
ModelGeometry shard_geometry(const ModelGeometry& geom,
                             const TensorParallelConfig& tp) {
  TURBO_CHECK(tp.gpus >= 1);
  TURBO_CHECK_MSG(geom.heads % tp.gpus == 0,
                  "head count must divide across " << tp.gpus << " GPUs");
  ModelGeometry s = geom;
  s.heads = geom.heads / tp.gpus;
  s.kv_heads = std::max<std::size_t>(1, geom.kv_heads / tp.gpus);
  s.d_ffn = geom.d_ffn / tp.gpus;
  // The LM head and embeddings shard by vocab.
  s.vocab = geom.vocab / tp.gpus;
  // d_model stays replicated: projections consume the full hidden state.
  return s;
}

E2EBreakdown add_collectives(E2EBreakdown b, double collective_s) {
  // Account the all-reduce under "linear" (it serializes with the
  // projection outputs it follows).
  b.linear += collective_s;
  return b;
}

}  // namespace

double allreduce_time(const DeviceSpec& dev, const ModelGeometry& geom,
                      const TensorParallelConfig& tp, double batch,
                      double tokens) {
  if (tp.gpus <= 1) return 0.0;
  (void)dev;
  const double payload =
      batch * tokens * static_cast<double>(geom.d_model) * 2.0;  // FP16
  const double g = static_cast<double>(tp.gpus);
  // Ring all-reduce: each GPU sends/receives 2 * (G-1)/G of the payload.
  const double per_collective =
      2.0 * (g - 1.0) / g * payload / tp.interconnect_bandwidth +
      tp.collective_latency;
  // Two collectives per layer (post-attention, post-FFN).
  return 2.0 * per_collective * static_cast<double>(geom.layers);
}

E2EBreakdown prefill_breakdown_tp(const DeviceSpec& dev,
                                  const ModelGeometry& geom,
                                  const InferenceConfig& cfg,
                                  const TensorParallelConfig& tp) {
  const ModelGeometry shard = shard_geometry(geom, tp);
  const E2EBreakdown b = prefill_breakdown(dev, shard, cfg);
  return add_collectives(
      b, allreduce_time(dev, geom, tp, static_cast<double>(cfg.batch),
                        static_cast<double>(cfg.prompt)));
}

E2EBreakdown decode_step_breakdown_tp(const DeviceSpec& dev,
                                      const ModelGeometry& geom,
                                      const InferenceConfig& cfg,
                                      std::size_t context,
                                      const TensorParallelConfig& tp) {
  const ModelGeometry shard = shard_geometry(geom, tp);
  const E2EBreakdown b = decode_step_breakdown(dev, shard, cfg, context);
  return add_collectives(
      b, allreduce_time(dev, geom, tp, static_cast<double>(cfg.batch),
                        1.0));
}

MemoryUse memory_use_tp(const DeviceSpec& dev, const ModelGeometry& geom,
                        const InferenceConfig& cfg,
                        const TensorParallelConfig& tp) {
  const ModelGeometry shard = shard_geometry(geom, tp);
  return memory_use(dev, shard, cfg);
}

std::size_t max_batch_tp(const DeviceSpec& dev, const ModelGeometry& geom,
                         InferenceConfig cfg,
                         const TensorParallelConfig& tp) {
  const ModelGeometry shard = shard_geometry(geom, tp);
  return max_batch(dev, shard, cfg);
}

double throughput_tokens_per_second_tp(const DeviceSpec& dev,
                                       const ModelGeometry& geom,
                                       const InferenceConfig& cfg,
                                       const TensorParallelConfig& tp) {
  if (!memory_use_tp(dev, geom, cfg, tp).fits) return 0.0;
  // Average decode step over the generation, sampled like
  // generation_latency does.
  const std::size_t steps = cfg.generate;
  if (steps == 0) return 0.0;
  const std::size_t samples = std::min<std::size_t>(steps, 8);
  double decode_sum = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t step = steps < 2 ? 0 : i * (steps - 1) / (samples - 1);
    decode_sum += decode_step_breakdown_tp(dev, geom, cfg,
                                           cfg.prompt + step + 1, tp)
                      .total();
  }
  const double decode =
      decode_sum / static_cast<double>(samples) * static_cast<double>(steps);
  return static_cast<double>(cfg.batch) * static_cast<double>(steps) /
         decode;
}

}  // namespace turbo::sim
