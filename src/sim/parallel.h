// Tensor-parallel extension of the inference model.
//
// Megatron-style sharding: attention heads and FFN columns split across G
// GPUs, with two all-reduces of the hidden states per layer (after the
// attention output projection and after the FFN). Weights and KV cache
// divide by G; the all-reduce traffic is new. Lets the model answer the
// deployment question the paper's single-GPU evaluation stops short of:
// does TurboAttention's advantage survive tensor parallelism, where
// per-GPU attention shrinks but the all-reduce does not?
#pragma once

#include "sim/e2e_model.h"

namespace turbo::sim {

struct TensorParallelConfig {
  std::size_t gpus = 1;
  // Per-GPU interconnect bandwidth available to collectives (NVLink3 on an
  // A100 HGX: ~300 GB/s effective per direction).
  double interconnect_bandwidth = 300e9;
  // Per-collective launch/synchronization latency.
  double collective_latency = 15e-6;
};

// Time of the per-layer collectives for processing `tokens` positions at
// the given batch (2 all-reduces of batch x tokens x d_model FP16, ring
// all-reduce moving 2 * (G-1)/G of the payload per GPU).
double allreduce_time(const DeviceSpec& dev, const ModelGeometry& geom,
                      const TensorParallelConfig& tp, double batch,
                      double tokens);

// Sharded counterparts of the e2e estimators. All return *wall-clock*
// times (the slowest shard; shards are symmetric here).
E2EBreakdown prefill_breakdown_tp(const DeviceSpec& dev,
                                  const ModelGeometry& geom,
                                  const InferenceConfig& cfg,
                                  const TensorParallelConfig& tp);

E2EBreakdown decode_step_breakdown_tp(const DeviceSpec& dev,
                                      const ModelGeometry& geom,
                                      const InferenceConfig& cfg,
                                      std::size_t context,
                                      const TensorParallelConfig& tp);

// Peak memory per GPU.
MemoryUse memory_use_tp(const DeviceSpec& dev, const ModelGeometry& geom,
                        const InferenceConfig& cfg,
                        const TensorParallelConfig& tp);

std::size_t max_batch_tp(const DeviceSpec& dev, const ModelGeometry& geom,
                         InferenceConfig cfg,
                         const TensorParallelConfig& tp);

// Decode-phase throughput under tensor parallelism (0 when OOM).
double throughput_tokens_per_second_tp(const DeviceSpec& dev,
                                       const ModelGeometry& geom,
                                       const InferenceConfig& cfg,
                                       const TensorParallelConfig& tp);

}  // namespace turbo::sim
