#include "sim/e2e_model.h"

#include <algorithm>

#include "common/check.h"
#include "sim/kernel_model.h"

namespace turbo::sim {

namespace {

constexpr double kFp16Bytes = 2.0;

// Linear-stack latency for processing `tokens` positions in one pass:
// roofline of (weight traffic, activation traffic) vs tensor-core FLOPs.
double linear_time(const DeviceSpec& dev, const ModelGeometry& g,
                   double batch, double tokens) {
  const double kv_dim =
      static_cast<double>(g.kv_heads) * static_cast<double>(g.head_dim);
  const double dm = static_cast<double>(g.d_model);
  const double per_layer_params =
      2.0 * dm * dm            // Q and O projections
      + 2.0 * dm * kv_dim      // K and V projections
      + 3.0 * dm * static_cast<double>(g.d_ffn);  // gated FFN
  const double layer_flops = 2.0 * batch * tokens * per_layer_params;
  const double lm_head_flops =
      2.0 * batch * dm * static_cast<double>(g.vocab);  // last token only

  const double flops =
      layer_flops * static_cast<double>(g.layers) + lm_head_flops;
  const double weight_bytes = g.weight_bytes_fp16();
  const double act_bytes = batch * tokens * dm * kFp16Bytes *
                           static_cast<double>(g.layers) * 4.0;
  const double compute = flops / dev.eff_fp16_tensor();
  const double memory = memory_time(dev, weight_bytes + act_bytes);
  const double launches = static_cast<double>(g.layers) * 7.0 *
                          dev.kernel_launch_overhead;
  return std::max(compute, memory) + launches;
}

E2EBreakdown combine(const DeviceSpec& dev, const ModelGeometry& g,
                     double linear, const PhaseBreakdown& attn) {
  E2EBreakdown b;
  const double layers = static_cast<double>(g.layers);
  b.linear = linear;
  b.attn_matmul = (attn.qk_matmul + attn.pv_matmul) * layers;
  b.attn_softmax = attn.softmax * layers;
  b.attn_dequant = (attn.dequant + attn.serialized) * layers;
  b.attn_kv_io = attn.kv_io * layers;
  b.attn_other = (attn.quantize + attn.launch) * layers;
  (void)dev;
  return b;
}

AttnShape shape_for(const ModelGeometry& g, const InferenceConfig& cfg,
                    std::size_t q_len, std::size_t kv_len) {
  AttnShape s;
  s.batch = cfg.batch;
  s.heads = g.heads;
  s.kv_heads = g.kv_heads;
  s.q_len = q_len;
  s.kv_len = kv_len;
  s.head_dim = g.head_dim;
  return s;
}

}  // namespace

double ModelGeometry::params() const {
  const double dm = static_cast<double>(d_model);
  const double kv_dim =
      static_cast<double>(kv_heads) * static_cast<double>(head_dim);
  const double per_layer = 2.0 * dm * dm + 2.0 * dm * kv_dim +
                           3.0 * dm * static_cast<double>(d_ffn);
  return per_layer * static_cast<double>(layers) +
         2.0 * dm * static_cast<double>(vocab);  // embed + head
}

ModelGeometry phi3_mini_geometry() {
  ModelGeometry g;
  g.name = "Phi3-mini-3.8B";
  g.layers = 32;
  g.heads = 32;
  g.kv_heads = 32;
  g.head_dim = 96;
  g.d_model = 3072;
  g.d_ffn = 8192;
  g.vocab = 32064;
  return g;
}

ModelGeometry phi3_medium_geometry() {
  ModelGeometry g;
  g.name = "Phi3-medium-14B";
  g.layers = 40;
  g.heads = 40;
  // The checkpoint uses 10-way GQA, but the paper's Figure 6/7a OOM points
  // (FP16 out of memory at 32k x batch-4 and before batch 64 at 1k) are
  // only consistent with a full MHA-width KV cache — the HuggingFace-based
  // harness they benchmark stores all 40 heads. We model what they
  // measured.
  g.kv_heads = 40;
  g.head_dim = 128;
  g.d_model = 5120;
  g.d_ffn = 17920;
  g.vocab = 32064;
  return g;
}

ModelGeometry llama3_8b_geometry() {
  ModelGeometry g;
  g.name = "LLaMA3-8B";
  g.layers = 32;
  g.heads = 32;
  g.kv_heads = 8;
  g.head_dim = 128;
  g.d_model = 4096;
  g.d_ffn = 14336;
  g.vocab = 128256;
  return g;
}

ModelGeometry qwen2_7b_geometry() {
  ModelGeometry g;
  g.name = "Qwen2-7B";
  g.layers = 28;
  g.heads = 28;
  g.kv_heads = 4;
  g.head_dim = 128;
  g.d_model = 3584;
  g.d_ffn = 18944;
  g.vocab = 152064;
  return g;
}

E2EBreakdown prefill_breakdown(const DeviceSpec& dev,
                               const ModelGeometry& geom,
                               const InferenceConfig& cfg) {
  const double linear =
      linear_time(dev, geom, static_cast<double>(cfg.batch),
                  static_cast<double>(cfg.prompt));
  const PhaseBreakdown attn = attention_prefill_cost(
      dev, cfg.method, shape_for(geom, cfg, cfg.prompt, cfg.prompt),
      cfg.attention);
  return combine(dev, geom, linear, attn);
}

E2EBreakdown chunk_prefill_breakdown(const DeviceSpec& dev,
                                     const ModelGeometry& geom,
                                     const InferenceConfig& cfg,
                                     std::size_t cached) {
  const double linear =
      linear_time(dev, geom, static_cast<double>(cfg.batch),
                  static_cast<double>(cfg.prompt));
  const PhaseBreakdown attn = attention_chunk_prefill_cost(
      dev, cfg.method,
      shape_for(geom, cfg, cfg.prompt, cached + cfg.prompt), cfg.attention);
  return combine(dev, geom, linear, attn);
}

E2EBreakdown decode_step_breakdown(const DeviceSpec& dev,
                                   const ModelGeometry& geom,
                                   const InferenceConfig& cfg,
                                   std::size_t context) {
  const double linear =
      linear_time(dev, geom, static_cast<double>(cfg.batch), 1.0);
  const PhaseBreakdown attn = attention_decode_cost(
      dev, cfg.method, shape_for(geom, cfg, 1, context), cfg.attention);
  return combine(dev, geom, linear, attn);
}

double generation_latency(const DeviceSpec& dev, const ModelGeometry& geom,
                          const InferenceConfig& cfg) {
  double t = prefill_breakdown(dev, geom, cfg).total();
  // Sample the decode sweep at a handful of context lengths (latency is
  // affine in context, so trapezoidal sampling is exact enough and keeps
  // 10k-step generations cheap to evaluate).
  const std::size_t steps = cfg.generate;
  if (steps == 0) return t;
  const std::size_t samples = std::min<std::size_t>(steps, 8);
  double decode_sum = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t step = steps < 2 ? 0 : i * (steps - 1) / (samples - 1);
    decode_sum +=
        decode_step_breakdown(dev, geom, cfg, cfg.prompt + step + 1).total();
  }
  t += decode_sum / static_cast<double>(samples) *
       static_cast<double>(steps);
  return t;
}

MemoryUse memory_use(const DeviceSpec& dev, const ModelGeometry& geom,
                     const InferenceConfig& cfg) {
  MemoryUse m;
  m.weights = geom.weight_bytes_fp16();
  const double tokens =
      static_cast<double>(cfg.prompt + cfg.generate) *
      static_cast<double>(cfg.batch);
  m.kv_cache = tokens *
               kv_cache_bytes_per_token(cfg.method, cfg.attention,
                                        geom.kv_heads, geom.head_dim) *
               static_cast<double>(geom.layers);
  // Activation working set: a few token-level buffers per layer pipeline
  // stage plus the prompt-length logits/hidden states during prefill.
  m.activations = static_cast<double>(cfg.batch) *
                  static_cast<double>(cfg.prompt + cfg.generate) *
                  static_cast<double>(geom.d_model) * kFp16Bytes * 6.0;
  m.fits = m.total() <= dev.hbm_capacity;
  return m;
}

std::size_t max_batch(const DeviceSpec& dev, const ModelGeometry& geom,
                      InferenceConfig cfg) {
  std::size_t lo = 0;
  std::size_t hi = 1;
  // Exponential probe then binary search on the memory fit.
  auto fits = [&](std::size_t b) {
    if (b == 0) return true;
    cfg.batch = b;
    return memory_use(dev, geom, cfg).fits;
  };
  if (!fits(1)) return 0;
  while (fits(hi)) {
    lo = hi;
    hi *= 2;
    if (hi > (1u << 20)) break;
  }
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (fits(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double throughput_tokens_per_second(const DeviceSpec& dev,
                                    const ModelGeometry& geom,
                                    const InferenceConfig& cfg) {
  if (!memory_use(dev, geom, cfg).fits) return 0.0;
  const double prefill = prefill_breakdown(dev, geom, cfg).total();
  const double decode = generation_latency(dev, geom, cfg) - prefill;
  if (decode <= 0.0) return 0.0;
  return static_cast<double>(cfg.batch) *
         static_cast<double>(cfg.generate) / decode;
}

double end_to_end_throughput(const DeviceSpec& dev,
                             const ModelGeometry& geom,
                             const InferenceConfig& cfg) {
  if (!memory_use(dev, geom, cfg).fits) return 0.0;
  const double latency = generation_latency(dev, geom, cfg);
  return static_cast<double>(cfg.batch) *
         static_cast<double>(cfg.generate) / latency;
}

}  // namespace turbo::sim
