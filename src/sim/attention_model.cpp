#include "sim/attention_model.h"

#include "common/check.h"
#include "sim/kernel_model.h"

namespace turbo::sim {

namespace {

constexpr double kFp16Bytes = 2.0;

double grid(const AttnShape& s) {
  return static_cast<double>(s.batch) * static_cast<double>(s.heads);
}
double kv_grid(const AttnShape& s) {
  return static_cast<double>(s.batch) * static_cast<double>(s.kv_heads);
}

// Per-layer-invocation quantized KV metadata bytes: one (scale, zero) pair
// per group for float-domain methods; per-channel int8 pairs + an FP16
// scale per block for Turbo. Both are ~payload/group in magnitude.
double quant_metadata_bytes(const AttnCostConfig& cfg, double tokens,
                            double kv_heads_x_batch, double head_dim) {
  const double groups =
      kv_heads_x_batch * 2.0 * tokens * head_dim /
      static_cast<double>(cfg.group_size);
  return groups * 4.0;
}

}  // namespace

double headwise_mixed_kv_bits(double two_bit_head_fraction) {
  TURBO_CHECK_MSG(
      two_bit_head_fraction >= 0.0 && two_bit_head_fraction <= 1.0,
      "two_bit_head_fraction outside [0, 1]");
  return 4.0 - 2.0 * two_bit_head_fraction;
}

std::string_view attn_method_name(AttnMethod m) {
  switch (m) {
    case AttnMethod::kFlashFp16:
      return "FlashAttention-FP16";
    case AttnMethod::kKiviFlash:
      return "KIVI+Flash";
    case AttnMethod::kGearFlash:
      return "GEAR-L+Flash";
    case AttnMethod::kTurbo:
      return "TurboAttention";
  }
  return "unknown";
}

double kv_cache_bytes_per_token(AttnMethod method, const AttnCostConfig& cfg,
                                std::size_t kv_heads, std::size_t head_dim) {
  const double elems =
      2.0 * static_cast<double>(kv_heads) * static_cast<double>(head_dim);
  if (method == AttnMethod::kFlashFp16) return elems * kFp16Bytes;
  const double payload = elems * cfg.kv_bits / 8.0;
  const double metadata = elems / static_cast<double>(cfg.group_size) * 4.0;
  double extra = 0.0;
  if (method == AttnMethod::kGearFlash) {
    // Rank-r factors amortized per token: ~2 * r * d * 2 bytes per chunk of
    // `group_size` tokens per tensor.
    extra = 2.0 * static_cast<double>(cfg.gear_rank) *
            static_cast<double>(head_dim) * kFp16Bytes *
            static_cast<double>(kv_heads) * 2.0 /
            static_cast<double>(cfg.group_size);
  }
  return payload + metadata + extra;
}

PhaseBreakdown attention_prefill_cost(const DeviceSpec& dev,
                                      AttnMethod method,
                                      const AttnShape& shape,
                                      const AttnCostConfig& cfg) {
  TURBO_CHECK(shape.q_len == shape.kv_len);
  const double n = grid(shape);
  const double nkv = kv_grid(shape);
  const double s = static_cast<double>(shape.q_len);
  const double d = static_cast<double>(shape.head_dim);
  const double causal_factor = cfg.causal ? 0.5 : 1.0;
  const double scores = n * s * s * causal_factor;

  // I/O common to all methods: read Q (+K/V), write O.
  const double io_common =
      n * s * d * kFp16Bytes        // Q
      + 2.0 * nkv * s * d * kFp16Bytes  // K, V
      + n * s * d * kFp16Bytes;     // O

  PhaseBreakdown b;
  switch (method) {
    case AttnMethod::kFlashFp16:
    case AttnMethod::kKiviFlash:
    case AttnMethod::kGearFlash: {
      // Prefill attention itself is the FP16 FlashAttention kernel; the
      // KV-quant methods bolt a compression pass on the end.
      b.qk_matmul = 2.0 * scores * d / dev.eff_fp16_tensor();
      b.pv_matmul = b.qk_matmul;
      b.softmax = exp_fp32_time(dev, scores) +
                  softmax_overhead_time(dev, scores, /*fp16=*/false);
      b.kv_io = memory_time(dev, io_common);
      b.launch = dev.kernel_launch_overhead;
      if (method != AttnMethod::kFlashFp16) {
        // Standalone compression kernel: re-read KV, quantize, write codes.
        const double elems = 2.0 * nkv * s * d;
        const double bytes = elems * kFp16Bytes  // read FP16 KV
                             + elems * cfg.kv_bits / 8.0 +
                             quant_metadata_bytes(cfg, s, nkv, d);
        double compress = std::max(quantize_int8_time(dev, elems),
                                   memory_time(dev, bytes)) +
                          dev.kernel_launch_overhead;
        if (method == AttnMethod::kGearFlash) {
          // Residual computation + low-rank factorization sweeps (a few
          // passes of [s x d] x [d x r] GEMMs per tensor).
          compress += 6.0 * gemm_time(dev, shape.kv_len, cfg.gear_rank,
                                      shape.head_dim,
                                      MatmulPrecision::kFp16Tensor) *
                      nkv;
        }
        b.serialized = compress;
        b.quantize = quantize_int8_time(dev, elems);
      }
      break;
    }
    case AttnMethod::kTurbo: {
      // Fused: INT8 tile quantization of Q/K/V, integer matmuls, SAS
      // softmax, P~ quantization, second-stage KV compression — one kernel.
      const double in_elems = (n + 2.0 * nkv) * s * d;
      b.quantize = quantize_int8_time(dev, in_elems)     // Q/K/V stage 1
                   + quantize_int8_time(dev, scores)     // P~ tiles
                   + dequant_to_int8_time(dev, 2.0 * nkv * s * d);  // stage 2
      b.qk_matmul = 2.0 * scores * d / dev.eff_int8_tensor();
      b.pv_matmul = b.qk_matmul;
      b.softmax = exp_sas_time(dev, scores) +
                  softmax_overhead_time(dev, scores, /*fp16=*/true);
      const double out_bytes = 2.0 * nkv * s * d * cfg.kv_bits / 8.0 +
                               quant_metadata_bytes(cfg, s, nkv, d);
      b.kv_io = memory_time(dev, io_common + out_bytes);
      b.launch = dev.kernel_launch_overhead;
      break;
    }
  }
  return b;
}

PhaseBreakdown attention_chunk_prefill_cost(const DeviceSpec& dev,
                                            AttnMethod method,
                                            const AttnShape& shape,
                                            const AttnCostConfig& cfg) {
  TURBO_CHECK(shape.kv_len >= shape.q_len);
  if (shape.kv_len == shape.q_len) {
    // First chunk (nothing cached) degenerates to the monolithic pass;
    // delegating keeps the two paths bit-identical.
    return attention_prefill_cost(dev, method, shape, cfg);
  }
  const double n = grid(shape);
  const double nkv = kv_grid(shape);
  const double c = static_cast<double>(shape.q_len);
  const double cached = static_cast<double>(shape.kv_len - shape.q_len);
  const double d = static_cast<double>(shape.head_dim);
  const double causal_factor = cfg.causal ? 0.5 : 1.0;
  // Full attention over the cached prefix + causal attention inside the
  // chunk: summed over all chunks this reproduces the monolithic
  // causal_factor * S^2 score count.
  const double scores = n * (c * cached + causal_factor * c * c);
  const double cached_elems = 2.0 * nkv * cached * d;
  const double chunk_elems = 2.0 * nkv * c * d;

  // I/O common to all methods: read the chunk's Q/K/V, write its O. The
  // cached prefix is read in the method's stored KV format below.
  const double io_common = n * c * d * kFp16Bytes        // Q
                           + chunk_elems * kFp16Bytes    // chunk K, V
                           + n * c * d * kFp16Bytes;     // O

  PhaseBreakdown b;
  switch (method) {
    case AttnMethod::kFlashFp16:
    case AttnMethod::kKiviFlash:
    case AttnMethod::kGearFlash: {
      b.qk_matmul = 2.0 * scores * d / dev.eff_fp16_tensor();
      b.pv_matmul = b.qk_matmul;
      b.softmax = exp_fp32_time(dev, scores) +
                  softmax_overhead_time(dev, scores, /*fp16=*/false);
      if (method == AttnMethod::kFlashFp16) {
        // Cached prefix is FP16 pages read straight into the kernel.
        b.kv_io = memory_time(dev, io_common + cached_elems * kFp16Bytes);
        b.launch = dev.kernel_launch_overhead;
      } else {
        // Pre-pass: decompress the cached prefix to an FP16 scratch cache
        // (read codes, write FP16), exactly like the decode-time pre-pass.
        const double cached_code_bytes =
            cached_elems * cfg.kv_bits / 8.0 +
            quant_metadata_bytes(cfg, cached, nkv, d);
        double pre_compute = dequant_to_fp16_time(dev, cached_elems);
        double pre_bytes = cached_code_bytes + cached_elems * kFp16Bytes;
        if (method == AttnMethod::kGearFlash) {
          pre_compute += 2.0 *
                         gemm_time(dev, shape.kv_len - shape.q_len,
                                   shape.head_dim, cfg.gear_rank,
                                   MatmulPrecision::kFp16Tensor) *
                         nkv;
          pre_bytes += 2.0 * nkv * (cached + d) *
                       static_cast<double>(cfg.gear_rank) * kFp16Bytes;
        }
        b.dequant = pre_compute;
        double serialized =
            std::max(pre_compute, memory_time(dev, pre_bytes)) +
            dev.kernel_launch_overhead;
        // The flash kernel then re-reads the materialized FP16 prefix.
        b.kv_io = memory_time(dev, io_common + cached_elems * kFp16Bytes);
        // Compression pass over the chunk's freshly produced KV.
        const double compress_bytes =
            chunk_elems * kFp16Bytes + chunk_elems * cfg.kv_bits / 8.0 +
            quant_metadata_bytes(cfg, c, nkv, d);
        double compress = std::max(quantize_int8_time(dev, chunk_elems),
                                   memory_time(dev, compress_bytes)) +
                          dev.kernel_launch_overhead;
        if (method == AttnMethod::kGearFlash) {
          compress += 6.0 * gemm_time(dev, shape.q_len, cfg.gear_rank,
                                      shape.head_dim,
                                      MatmulPrecision::kFp16Tensor) *
                      nkv;
        }
        b.serialized = serialized + compress;
        b.quantize = quantize_int8_time(dev, chunk_elems);
        b.launch = dev.kernel_launch_overhead;
      }
      break;
    }
    case AttnMethod::kTurbo: {
      // Fused: the cached prefix's codes are the only extra KV traffic;
      // second-stage reversal to INT8 happens in registers.
      const double in_elems = (n + 2.0 * nkv) * c * d;
      b.quantize = quantize_int8_time(dev, in_elems)    // chunk Q/K/V stage 1
                   + quantize_int8_time(dev, scores)    // P~ tiles
                   + dequant_to_int8_time(dev, cached_elems + chunk_elems);
      b.qk_matmul = 2.0 * scores * d / dev.eff_int8_tensor();
      b.pv_matmul = b.qk_matmul;
      b.softmax = exp_sas_time(dev, scores) +
                  softmax_overhead_time(dev, scores, /*fp16=*/true);
      const double cached_code_bytes =
          cached_elems * cfg.kv_bits / 8.0 +
          quant_metadata_bytes(cfg, cached, nkv, d);
      const double out_bytes = chunk_elems * cfg.kv_bits / 8.0 +
                               quant_metadata_bytes(cfg, c, nkv, d);
      b.kv_io = memory_time(dev, io_common + cached_code_bytes + out_bytes);
      b.launch = dev.kernel_launch_overhead;
      break;
    }
  }
  return b;
}

PhaseBreakdown attention_decode_cost(const DeviceSpec& dev,
                                     AttnMethod method,
                                     const AttnShape& shape,
                                     const AttnCostConfig& cfg) {
  TURBO_CHECK(shape.q_len == 1);
  const double n = grid(shape);
  const double nkv = kv_grid(shape);
  const double l = static_cast<double>(shape.kv_len);
  const double d = static_cast<double>(shape.head_dim);
  const double scores = n * l;
  const double kv_elems = 2.0 * nkv * l * d;

  PhaseBreakdown b;
  switch (method) {
    case AttnMethod::kFlashFp16: {
      b.qk_matmul = 2.0 * scores * d / dev.eff_fp16_tensor();
      b.pv_matmul = b.qk_matmul;
      b.softmax = exp_fp32_time(dev, scores) +
                  softmax_overhead_time(dev, scores, /*fp16=*/false);
      b.kv_io = memory_time(dev, kv_elems * kFp16Bytes);
      b.launch = dev.kernel_launch_overhead;
      break;
    }
    case AttnMethod::kKiviFlash:
    case AttnMethod::kGearFlash: {
      // Pre-pass: read codes, dequantize on CUDA cores, write FP16 cache.
      const double code_bytes = kv_elems * cfg.kv_bits / 8.0 +
                                quant_metadata_bytes(cfg, l, nkv, d);
      double pre_compute = dequant_to_fp16_time(dev, kv_elems);
      double pre_bytes = code_bytes + kv_elems * kFp16Bytes;  // write FP16
      if (method == AttnMethod::kGearFlash) {
        // Low-rank reconstruction: [l x r] * [r x d] per tensor per
        // (batch, kv head) + factor reads.
        pre_compute += 2.0 *
                       gemm_time(dev, shape.kv_len, shape.head_dim,
                                 cfg.gear_rank,
                                 MatmulPrecision::kFp16Tensor) *
                       nkv;
        pre_bytes += 2.0 * nkv *
                     (l + d) * static_cast<double>(cfg.gear_rank) *
                     kFp16Bytes;
      }
      b.dequant = pre_compute;
      b.serialized = std::max(pre_compute, memory_time(dev, pre_bytes)) +
                     dev.kernel_launch_overhead;
      // Then the ordinary FP16 FlashAttention kernel re-reads the cache.
      b.qk_matmul = 2.0 * scores * d / dev.eff_fp16_tensor();
      b.pv_matmul = b.qk_matmul;
      b.softmax = exp_fp32_time(dev, scores) +
                  softmax_overhead_time(dev, scores, /*fp16=*/false);
      b.kv_io = memory_time(dev, kv_elems * kFp16Bytes);
      b.launch = dev.kernel_launch_overhead;
      break;
    }
    case AttnMethod::kTurbo: {
      // One fused kernel: quantized payload is the only KV traffic;
      // second-stage reversal on the integer ALU feeds INT8 tensor cores.
      const double code_bytes = kv_elems * cfg.kv_bits / 8.0 +
                                quant_metadata_bytes(cfg, l, nkv, d);
      b.dequant = dequant_to_int8_time(dev, kv_elems);
      b.quantize = quantize_int8_time(dev, n * d)     // query stage 1
                   + quantize_int8_time(dev, scores);  // P~
      b.qk_matmul = 2.0 * scores * d / dev.eff_int8_tensor();
      b.pv_matmul = b.qk_matmul;
      b.softmax = exp_sas_time(dev, scores) +
                  softmax_overhead_time(dev, scores, /*fp16=*/true);
      b.kv_io = memory_time(dev, code_bytes);
      b.launch = dev.kernel_launch_overhead;
      break;
    }
  }
  return b;
}

}  // namespace turbo::sim
