#include "sim/kernel_model.h"

namespace turbo::sim {

double gemm_time(const DeviceSpec& d, std::size_t m, std::size_t n,
                 std::size_t k, MatmulPrecision precision) {
  const double ops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                     static_cast<double>(k);
  switch (precision) {
    case MatmulPrecision::kFp32Cuda:
      return ops / d.eff_fp32_cuda();
    case MatmulPrecision::kFp16Tensor:
      return ops / d.eff_fp16_tensor();
    case MatmulPrecision::kInt8Tensor:
      return ops / d.eff_int8_tensor();
  }
  return 0.0;
}

double memory_time(const DeviceSpec& d, double bytes) {
  return bytes / d.eff_bandwidth();
}

double exp_fp32_time(const DeviceSpec& d, double count) {
  return count / d.eff_exp();
}

double exp_sas_time(const DeviceSpec& d, double count) {
  // 3 MACs (6 flops) on FP16 tensor cores + LUT gather and final multiply
  // (~2 CUDA-core FP16 ops).
  const double tc = 6.0 * count / d.eff_fp16_tensor();
  const double cuda = 2.0 * count / d.eff_fp16_cuda();
  return tc + cuda;
}

double softmax_overhead_time(const DeviceSpec& d, double count, bool fp16) {
  const double rate = fp16 ? d.eff_fp16_cuda() : d.eff_fp32_cuda();
  return 4.0 * count / rate;
}

double quantize_int8_time(const DeviceSpec& d, double count) {
  // abs-max reduction share + scale + round: ~3 FP16 CUDA ops/element.
  return 3.0 * count / d.eff_fp16_cuda();
}

double dequant_to_fp16_time(const DeviceSpec& d, double count) {
  // shift/mask unpack + (code - zero) * scale + FP16 convert/pack:
  // ~8 FP16 CUDA ops/element in practice.
  return 8.0 * count / d.eff_fp16_cuda();
}

double dequant_to_int8_time(const DeviceSpec& d, double count) {
  // shift/mask unpack + integer MAC + clamp: ~6 INT32 ALU ops/element.
  // Comparable per-op cost to the float path, but fused in-register —
  // its advantage is avoiding the pre-pass memory round trip, not the ALU.
  return 6.0 * count / d.eff_int32_alu();
}

}  // namespace turbo::sim
