// Per-method attention kernel cost models (Figures 1b, 6).
//
// Four executions of the same attention math are modeled:
//  - FlashAttention-FP16: the paper's baseline. FP16 tensor-core matmuls,
//    FP32 exponentiation, FP16 KV cache.
//  - KIVI + Flash: 4/2-bit KV cache, but decompression runs as a separate
//    kernel that materializes an FP16 cache in HBM before FlashAttention
//    reads it back — saved bandwidth on the load is repaid threefold.
//  - GEAR + Flash: KIVI's pipeline plus the low-rank residual
//    reconstruction GEMM.
//  - TurboAttention: fused. Quantized payload is the only KV traffic,
//    second-stage reversal happens in registers on the integer ALU,
//    matmuls run on INT8 tensor cores, exponentiation through SAS.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string_view>

#include "sim/device.h"

namespace turbo::sim {

enum class AttnMethod {
  kFlashFp16,
  kKiviFlash,
  kGearFlash,
  kTurbo,
};

std::string_view attn_method_name(AttnMethod m);

struct AttnShape {
  std::size_t batch = 1;
  std::size_t heads = 32;     // query heads (compute)
  std::size_t kv_heads = 32;  // KV heads (cache traffic; < heads under GQA)
  std::size_t q_len = 1;
  std::size_t kv_len = 1;
  std::size_t head_dim = 128;
};

struct AttnCostConfig {
  // Average stored bits per KV element: 16 (FP16), 4, 3 (the 2/4 headwise
  // mix), or 2. Only quantized methods read it.
  double kv_bits = 16.0;
  std::size_t group_size = 64;   // quant group / block tokens (metadata)
  std::size_t gear_rank = 4;     // GEAR low-rank width
  bool causal = true;            // prefill causal factor (~0.5 of the S^2)
};

// Phase-level latency decomposition of one attention invocation across the
// whole (batch x heads) grid. All values in seconds.
struct PhaseBreakdown {
  double qk_matmul = 0;
  double softmax = 0;     // exponentiation + row bookkeeping
  double pv_matmul = 0;
  double kv_io = 0;       // KV-cache HBM traffic (+ activation I/O)
  double dequant = 0;     // decompression arithmetic (+ spill traffic)
  double quantize = 0;    // quantization arithmetic (Turbo, cache writes)
  double launch = 0;      // kernel launch overheads

  // Latency of standalone pre-pass kernels that serialize with the fused
  // attention kernel (KIVI/GEAR's decompression pass, including its own
  // memory round-trip and launch). Zero for fused methods.
  double serialized = 0;

  // Arithmetic that overlaps memory inside the fused kernel.
  double compute() const {
    return qk_matmul + softmax + pv_matmul + dequant + quantize;
  }
  // Fused kernel = max(compute, memory); pre-pass kernels serialize.
  double total() const { return std::max(compute(), kv_io) + serialized + launch; }
};

// Bytes of KV cache per token per layer (payload + metadata) for a method.
double kv_cache_bytes_per_token(AttnMethod method, const AttnCostConfig& cfg,
                                std::size_t kv_heads, std::size_t head_dim);

// Average stored bits per KV element for the paper's head-wise mixed
// precision: a `two_bit_head_fraction` of heads (selected by
// priority(h) = gap x std) stored at 2-bit, the rest at 4-bit. 0.5 gives
// the 3.0-bit 2/4 mix the paper evaluates; 1.0 is all-2-bit. This is the
// knob the serving engine's degradation ladder turns under overload.
double headwise_mixed_kv_bits(double two_bit_head_fraction);

// Cost of one prefill attention pass (q_len == kv_len == prompt length).
PhaseBreakdown attention_prefill_cost(const DeviceSpec& dev,
                                      AttnMethod method,
                                      const AttnShape& shape,
                                      const AttnCostConfig& cfg);

// Cost of one chunked-prefill attention pass: `q_len` new prompt tokens
// attending over `kv_len` total tokens, of which the first
// `kv_len - q_len` are already cached (stored in the method's KV format).
// Score work is full attention over the cached prefix plus causal
// attention within the chunk, so summing chunks over a prompt preserves
// the monolithic S^2 total. With kv_len == q_len this is exactly
// attention_prefill_cost.
PhaseBreakdown attention_chunk_prefill_cost(const DeviceSpec& dev,
                                            AttnMethod method,
                                            const AttnShape& shape,
                                            const AttnCostConfig& cfg);

// Cost of one decode-step attention pass (q_len == 1, kv_len == context).
PhaseBreakdown attention_decode_cost(const DeviceSpec& dev,
                                     AttnMethod method,
                                     const AttnShape& shape,
                                     const AttnCostConfig& cfg);

}  // namespace turbo::sim
