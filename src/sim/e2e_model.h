// End-to-end transformer inference model (Figures 1a, 1c, 6, 7a).
//
// Composes the linear-layer roofline (QKV/O projections, gated FFN) with
// the per-method attention models, tracks HBM occupancy (weights + KV cache
// + activation working set) for OOM detection, and derives maximum
// throughput as a function of batch size the way the paper's Figure 7a
// sweep does.
#pragma once

#include <cstddef>
#include <string>

#include "sim/attention_model.h"
#include "sim/device.h"

namespace turbo::sim {

// Transformer geometry. Matches the public configs of the evaluated
// models; `kv_heads < heads` models grouped-query attention.
struct ModelGeometry {
  std::string name;
  std::size_t layers = 0;
  std::size_t heads = 0;
  std::size_t kv_heads = 0;
  std::size_t head_dim = 0;
  std::size_t d_model = 0;
  std::size_t d_ffn = 0;
  std::size_t vocab = 32064;

  // Parameter count of the decoder stack + embeddings (gated FFN = 3
  // projection matrices, attention = Q/O at d_model x d_model and K/V at
  // d_model x kv_dim).
  double params() const;
  double weight_bytes_fp16() const { return params() * 2.0; }
};

ModelGeometry phi3_mini_geometry();    // 3.8B
ModelGeometry phi3_medium_geometry();  // 14B
ModelGeometry llama3_8b_geometry();
ModelGeometry qwen2_7b_geometry();

struct InferenceConfig {
  AttnMethod method = AttnMethod::kFlashFp16;
  AttnCostConfig attention;  // kv_bits etc.
  std::size_t batch = 1;
  std::size_t prompt = 1024;
  std::size_t generate = 128;
};

// Latency decomposition of one model pass (all layers), seconds.
struct E2EBreakdown {
  double linear = 0;        // projections + FFN + LM head
  double attn_matmul = 0;   // QK + PV inside attention
  double attn_softmax = 0;
  double attn_dequant = 0;  // decompression (arithmetic + serialized pass)
  double attn_kv_io = 0;    // KV-cache traffic
  double attn_other = 0;    // quantize + launch overheads

  double attention() const {
    return attn_matmul + attn_softmax + attn_dequant + attn_kv_io +
           attn_other;
  }
  double total() const { return linear + attention(); }
};

// One full prefill pass over `cfg.prompt` tokens.
E2EBreakdown prefill_breakdown(const DeviceSpec& dev,
                               const ModelGeometry& geom,
                               const InferenceConfig& cfg);

// One chunked-prefill pass: the linear stack (GEMMs) runs over the
// `cfg.prompt` *new* tokens only, while attention spans the `cached`
// tokens already resident in the KV cache plus the chunk. With
// cached == 0 this is exactly prefill_breakdown, so a monolithic prefill
// and a one-chunk "chunked" prefill cost the same.
E2EBreakdown chunk_prefill_breakdown(const DeviceSpec& dev,
                                     const ModelGeometry& geom,
                                     const InferenceConfig& cfg,
                                     std::size_t cached);

// One decode step at the given context length.
E2EBreakdown decode_step_breakdown(const DeviceSpec& dev,
                                   const ModelGeometry& geom,
                                   const InferenceConfig& cfg,
                                   std::size_t context);

// Whole-generation latency: prefill + `generate` decode steps with the
// context growing each step.
double generation_latency(const DeviceSpec& dev, const ModelGeometry& geom,
                          const InferenceConfig& cfg);

// HBM occupancy at peak context (prompt + generate tokens cached).
struct MemoryUse {
  double weights = 0;
  double kv_cache = 0;
  double activations = 0;
  double total() const { return weights + kv_cache + activations; }
  bool fits = true;
};

MemoryUse memory_use(const DeviceSpec& dev, const ModelGeometry& geom,
                     const InferenceConfig& cfg);

// Largest batch that still fits in HBM for this workload (0 if even batch
// 1 does not fit).
std::size_t max_batch(const DeviceSpec& dev, const ModelGeometry& geom,
                      InferenceConfig cfg);

// Decode-phase throughput: generated tokens per second over the decoding
// steps only (0 when OOM). This is the Figure 7a quantity — with an 8:1
// prompt:output ratio, including prefill would let the (method-agnostic)
// linear prefill FLOPs mask the attention effect entirely.
double throughput_tokens_per_second(const DeviceSpec& dev,
                                    const ModelGeometry& geom,
                                    const InferenceConfig& cfg);

// End-to-end throughput including prefill (for Figure 1a-style analyses).
double end_to_end_throughput(const DeviceSpec& dev,
                             const ModelGeometry& geom,
                             const InferenceConfig& cfg);

}  // namespace turbo::sim
