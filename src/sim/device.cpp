#include "sim/device.h"

namespace turbo::sim {

DeviceSpec a100_sxm_80gb() {
  DeviceSpec d;
  d.name = "A100-SXM4-80GB";
  d.fp16_tensor_flops = 312e12;
  d.int8_tensor_ops = 624e12;
  d.fp32_cuda_flops = 19.5e12;
  d.fp16_cuda_flops = 78e12;
  d.int32_alu_ops = 19.5e12;
  // Effective exp rate: SFU MUFU throughput (~2.4e12/s) derated by the
  // FP16->FP32->FP16 conversion chain and range reduction. Calibrated so
  // softmax lands at the paper's ~30% share of FlashAttention time.
  d.fp32_exp_ops = 2.0e12;
  d.hbm_bandwidth = 2.039e12;
  d.hbm_capacity = 80e9;
  d.sram_per_sm = 164 * 1024;
  d.sm_count = 108;
  d.pcie_bandwidth = 31.5e9;  // PCIe 4.0 x16 host link
  d.disk_bandwidth = 7e9;     // node-local NVMe (PCIe 4.0 x4 class)
  return d;
}

DeviceSpec h100_sxm_80gb() {
  DeviceSpec d;
  d.name = "H100-SXM5-80GB";
  d.fp16_tensor_flops = 989e12;
  d.int8_tensor_ops = 1979e12;
  d.fp32_cuda_flops = 67e12;
  d.fp16_cuda_flops = 134e12;
  d.int32_alu_ops = 67e12;
  d.fp32_exp_ops = 2.8e12;
  d.hbm_bandwidth = 3.35e12;
  d.hbm_capacity = 80e9;
  d.sram_per_sm = 228 * 1024;
  d.sm_count = 132;
  d.pcie_bandwidth = 63e9;   // PCIe 5.0 x16 host link
  d.disk_bandwidth = 12e9;   // node-local NVMe (PCIe 5.0 x4 class)
  return d;
}

DeviceSpec a100_pcie_40gb() {
  DeviceSpec d = a100_sxm_80gb();
  d.name = "A100-PCIe-40GB";
  d.hbm_bandwidth = 1.555e12;
  d.hbm_capacity = 40e9;
  d.pcie_bandwidth = 31.5e9;
  d.disk_bandwidth = 3.5e9;  // budget node: single NVMe, PCIe 3.0 x4 class
  return d;
}

}  // namespace turbo::sim
