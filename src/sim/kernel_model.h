// Primitive kernel-cost estimators (roofline style).
//
// Every estimator returns seconds. Composite kernels take the max of their
// compute and memory components (perfect overlap inside one fused kernel)
// and pay one launch overhead; separate kernels (e.g. KIVI's standalone
// dequantization pass) serialize and pay their own launch + full memory
// round-trip — the effect the paper's Figure 1b visualizes.
#pragma once

#include <cstddef>

#include "sim/device.h"

namespace turbo::sim {

enum class MatmulPrecision {
  kFp32Cuda,
  kFp16Tensor,
  kInt8Tensor,
};

// Time for a [m x k] * [k x n] matmul (2*m*n*k ops) at the given precision.
double gemm_time(const DeviceSpec& d, std::size_t m, std::size_t n,
                 std::size_t k, MatmulPrecision precision);

// Time to move `bytes` through HBM.
double memory_time(const DeviceSpec& d, double bytes);

// FlashAttention's FP32 exponentiation path: `count` exponentials with
// FP16<->FP32 conversions.
double exp_fp32_time(const DeviceSpec& d, double count);

// SAS exponentiation: degree-3 polynomial (3 FP16 MACs on tensor cores)
// plus a LUT gather and one multiply per element — no FP32 involvement.
double exp_sas_time(const DeviceSpec& d, double count);

// Softmax bookkeeping around the exponentials (row max, row sum, rescale):
// ~4 element-wise ops at the given CUDA-core precision.
double softmax_overhead_time(const DeviceSpec& d, double count, bool fp16);

// Symmetric INT8 quantization of `count` elements (scale + round), fused
// into a producer kernel: CUDA-core FP16 work.
double quantize_int8_time(const DeviceSpec& d, double count);

// Float-domain dequantization of `count` INT4/2 codes to FP16 (unpack,
// mul, add on FP16 CUDA cores) — KIVI / GEAR's decompression arithmetic.
double dequant_to_fp16_time(const DeviceSpec& d, double count);

// Integer-domain second-stage reversal (q2 * s_int + z_int on the integer
// ALU) — FlashQ's in-kernel decompression arithmetic.
double dequant_to_int8_time(const DeviceSpec& d, double count);

}  // namespace turbo::sim
