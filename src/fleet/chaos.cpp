#include "fleet/chaos.h"

#include <algorithm>
#include <cstddef>

#include "common/check.h"
#include "common/rng.h"

namespace turbo::fleet {

void apply_chaos(FleetConfig& config, std::uint64_t seed, double intensity,
                 double horizon_s) {
  TURBO_CHECK_MSG(intensity > 0.0 && intensity <= 1.0,
                  "chaos intensity must be in (0, 1]");
  TURBO_CHECK_MSG(horizon_s > 0.0, "chaos horizon must be > 0");
  // The schedule RNG is private to the generator and fully consumed
  // before the run starts: chaos drawing never touches the injector's
  // Bernoulli streams, so the produced config is as deterministic as a
  // hand-written one.
  Rng rng(seed);
  FaultPlan& plan = config.engine.faults;

  // Probabilistic background noise, scaled by intensity. Kept small:
  // chaos should stress recovery paths, not reduce the run to shed().
  plan.page_alloc_failure_prob = 0.01 * intensity;
  plan.stream_corruption_prob = 0.02 * intensity;
  plan.swap_spike_prob = 0.10 * intensity;
  plan.migration_corruption_prob = 0.20 * intensity;
  plan.handoff_transient_prob = 0.20 * intensity;
  plan.snapshot_unavailable_prob = 0.15 * intensity;
  plan.snapshot_corruption_prob = 0.15 * intensity;

  // Tier death: the slower swap tier flaps probabilistically and dies
  // outright for a window mid-run (inert unless the run swaps at all).
  plan.tiers[1].unavailable_prob = 0.05 * intensity;
  plan.tiers[1].corruption_prob = 0.05 * intensity;
  const double tier_death = rng.uniform(0.3, 0.6) * horizon_s;
  plan.tiers[1].outage_start_s = tier_death;
  plan.tiers[1].outage_end_s =
      tier_death + rng.uniform(0.05, 0.15) * horizon_s;

  // Crash-consistent snapshots on: every chaos run exercises the full
  // restore -> recompute -> dedupe ladder, not just raw recompute.
  config.snapshot_interval_s =
      std::max(0.02 * horizon_s, rng.uniform(0.04, 0.10) * horizon_s);

  // One replica is guaranteed to crash mid-run; the rest crash with an
  // intensity-scaled probability. Crashes land in the middle half of
  // the horizon so there is state worth losing and time to recover.
  const std::size_t n = config.replicas;
  const std::size_t victim = static_cast<std::size_t>(rng.uniform_index(n));
  for (std::size_t i = 0; i < n; ++i) {
    ReplicaFaultPlan& rp = plan.replicas[i];
    rp.outages.clear();
    rp.crash_at_s = 0.0;
    rp.restart_delay_s = 0.0;
    // Crash draw first, then outage draws: a fixed draw order keeps the
    // schedule stable as knobs evolve.
    const bool crashes =
        i == victim || rng.uniform() < 0.3 * intensity;
    if (crashes) {
      rp.crash_at_s = rng.uniform(0.25, 0.75) * horizon_s;
      rp.restart_delay_s = rng.uniform(0.02, 0.08) * horizon_s;
    }
    // Flapping outages: up to two polite drain windows per replica,
    // placed sequentially so they never overlap each other.
    double cursor = rng.uniform(0.05, 0.30) * horizon_s;
    const std::size_t windows =
        rng.uniform() < 0.6 * intensity ? 1 + rng.uniform_index(2) : 0;
    for (std::size_t w = 0; w < windows; ++w) {
      const double len = rng.uniform(0.03, 0.10) * horizon_s;
      rp.add_outage(cursor, cursor + len);
      cursor += len + rng.uniform(0.05, 0.20) * horizon_s;
    }
  }
  // Even a schedule that darkens every replica at once stays safe: the
  // router's blackout machinery (ensure_some_replica_up) revives the
  // earliest-recovering replica rather than losing the request.
  plan.validate();
}

namespace {

void fail(ChaosAudit& audit, std::string message) {
  audit.ok = false;
  audit.failures.push_back(std::move(message));
}

}  // namespace

ChaosAudit audit_fleet(const FleetResult& result, std::size_t trace_size) {
  ChaosAudit audit;

  // Exactly one terminal state per trace request.
  if (result.requests.size() != trace_size) {
    fail(audit, "terminal union holds " +
                    std::to_string(result.requests.size()) +
                    " requests, trace had " + std::to_string(trace_size));
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(result.requests.size());
  std::size_t pending = 0;
  for (const serving::Request& r : result.requests) {
    ids.push_back(r.id);
    if (r.outcome == serving::Outcome::kPending) ++pending;
  }
  std::sort(ids.begin(), ids.end());
  if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
    fail(audit, "a request id appears more than once in the terminal union");
  }
  if (!result.hit_time_limit && pending > 0) {
    fail(audit, std::to_string(pending) +
                    " request(s) ended the run without a terminal state");
  }

  // Every terminal request is accounted to exactly one engine
  // incarnation; arrivals stranded unrouted exist only under the safety
  // stop.
  if (result.replica_results.size() < result.replica_count) {
    fail(audit, "fewer replica results than replicas");
  }
  std::size_t accounted = 0;
  for (const serving::EngineResult& er : result.replica_results) {
    accounted += er.requests.size();
  }
  if (accounted > result.requests.size()) {
    fail(audit, "incarnations report more requests than the union holds");
  }
  if (!result.hit_time_limit && accounted != result.requests.size()) {
    fail(audit, "terminal union and per-incarnation accounting disagree: " +
                    std::to_string(accounted) + " vs " +
                    std::to_string(result.requests.size()));
  }

  // Crash / snapshot accounting. Each crash produces exactly one extra
  // incarnation result and exactly one replica_crashes tick (on the
  // replacement engine); a restore attempt resolves to exactly one of
  // {hit, corrupt, missing}, so hits + corruptions never exceed crashes.
  const std::size_t extra =
      result.replica_results.size() - result.replica_count;
  std::size_t crashes = 0;
  std::size_t restores = 0;
  std::size_t corruptions = 0;
  for (const serving::EngineResult& er : result.replica_results) {
    crashes += er.replica_crashes;
    restores += er.snapshot_restores;
    corruptions += er.snapshot_corruptions;
  }
  if (crashes != extra) {
    fail(audit, "replica_crashes (" + std::to_string(crashes) +
                    ") != crashed incarnations (" + std::to_string(extra) +
                    ")");
  }
  if (restores + corruptions > crashes) {
    fail(audit, "more snapshot restore outcomes than crashes");
  }
  return audit;
}

}  // namespace turbo::fleet
