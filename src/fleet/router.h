// Fleet serving: a health-checked router over N data-parallel engine
// replicas with outage drain and KV-migration failover.
//
// Each replica is a full serving stack (continuous-batching scheduler,
// paged KV, tiered swap store) behind the steppable Engine API. The
// router owns the fleet clock: it interleaves replica iterations in
// global time order, routes each arrival to a replica chosen by a
// pluggable policy, and drives a deterministic replica health model from
// the FaultPlan's per-replica outage windows (pure wall-clock checks —
// no RNG draws — so a seeded fleet run is bit-identical across build
// configurations and sanitizers).
//
// When a replica's clock enters one of its outage windows the router
// stops admitting to it, drains every in-flight request, and fails each
// one over: requests whose KV stream survives the drain are migrated
// over a modeled interconnect (CRC-checked; corrupt transfers are
// detected and recovered by recomputing the KV on the destination),
// subject to a per-request failover budget; everything else — and every
// request over budget — re-enters through the recompute-from-prompt
// path, the terminal fallback that turns a dead replica into latency,
// never lost requests. Windows can repeat: a flapping replica drains on
// every window it enters.
//
// A *crash* (ReplicaFaultPlan::crash_at_s) is the impolite failure: no
// drain, no migration — the replica's in-flight state dies with it. The
// router rebuilds the engine after restart_delay_s and rehydrates it
// from the last crash-consistent snapshot (SnapshotStore; each replica
// snapshots every snapshot_interval_s). The recovery ladder: restore
// from the snapshot entry when one exists, recompute from the prompt
// when the snapshot predates the request or failed its CRC, and drop
// snapshot entries whose request already reached a terminal state (or
// migrated away) pre-crash. Fleet invariants: every request reaches
// exactly one terminal state across the fleet — through crash and
// restart included — and a drained replica leaks no pages, no parked
// swap streams and no snapshots.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/fault.h"
#include "serving/engine.h"

namespace turbo::fleet {

// How the router spreads arrivals over healthy replicas.
enum class RoutePolicy : std::uint8_t {
  // Rotate a cursor over healthy replicas: perfectly fair, load-blind.
  kRoundRobin = 0,
  // Pick the healthy replica holding the fewest KV pages: tracks actual
  // memory pressure, so one long-context request does not queue others
  // behind it.
  kLeastOutstandingPages = 1,
  // Class-aware: interactive requests go least-outstanding-pages (their
  // TTFT pays directly for queueing), standard and batch each rotate
  // their own round-robin cursor so bulk traffic spreads evenly without
  // polluting the interactive placement signal.
  kClassAware = 2,
  // Cache-affinity: steer each arrival to the replica whose RadixIndex
  // holds the longest matching prefix of its prompt, so a session's
  // follow-up turns land where their history is already resident. Falls
  // back to least-outstanding-pages when no replica holds a prefix, or
  // when the affinity target is unhealthy or over the decode watermark
  // (a hot replica must not absorb every turn of a hot session).
  kAffinity = 3,
};

inline const char* route_policy_name(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kRoundRobin:
      return "round-robin";
    case RoutePolicy::kLeastOutstandingPages:
      return "least-pages";
    case RoutePolicy::kClassAware:
      return "class-aware";
    case RoutePolicy::kAffinity:
      return "affinity";
  }
  return "?";
}

struct FleetConfig {
  // Template for every replica. Per-replica copies differ only in
  // replica_id (namespaces swap-stream keys) and the fault seed: replica
  // i runs at seed + i, so replicas draw independent fault streams while
  // replica 0 keeps the base seed — a 1-replica fleet is bit-identical
  // to run_engine() on the same config.
  serving::EngineConfig engine;
  std::size_t replicas = 2;
  RoutePolicy route = RoutePolicy::kClassAware;
  // Modeled replica-to-replica interconnect (bytes/s) carrying migrated
  // KV streams. The default is NVLink-generation bandwidth.
  double interconnect_bandwidth = 64.0 * 1024.0 * 1024.0 * 1024.0;
  // Per-request failover budget: after this many replica failovers a
  // request's KV is no longer migrated — it re-enters through the
  // recompute path, bounding the interconnect traffic one unlucky
  // request can generate.
  std::size_t failover_budget = 2;

  // --- Prefill/decode disaggregation (Splitwise/DistServe-style) ----------
  // Replicas [0, prefill_replicas) run chunked prefill only and stream
  // finished KV to the decode replicas [prefill_replicas, replicas) over
  // the migration channel. 0 keeps the fleet symmetric (every replica
  // both prefills and decodes — the pre-disaggregation behavior,
  // bit-identical). When set, it must leave at least one decode replica.
  std::size_t prefill_replicas = 0;
  // Referenced-page fraction above which a decode replica counts as
  // saturated: when every healthy decode replica is over it, prefill
  // admission is deferred (backpressure) instead of over-committing the
  // decode pool; the affinity policy also falls back past a target over
  // this watermark. Retained prefix cache is reclaimable and exempt.
  double decode_watermark = 0.90;
  // Per-request handoff send budget: attempts (each may hit a transient
  // interconnect fault, FaultPlan::handoff_transient_prob) before the
  // stream is dropped and the decode side recomputes from the prompt.
  std::size_t handoff_retry_budget = 3;
  // Backoff added before the k-th retry of a handoff send (linear:
  // k * backoff), modeling interconnect congestion avoidance.
  double handoff_retry_backoff_s = 0.05;

  // --- Crash-consistent snapshots -----------------------------------------
  // Period between crash-consistent state snapshots per replica. Each
  // snapshot serializes the replica's scheduler + KV occupancy through
  // the CRC-framed stream format into the fleet SnapshotStore; after a
  // crash the replacement engine restores from the last one instead of
  // recomputing every in-flight request from its prompt. 0 disables
  // snapshotting (a crash then recovers purely through recompute).
  double snapshot_interval_s = 0.0;
};

// The modeled interconnect. Every migration entry point takes the fault
// injector so in-transit corruption is injectable and seed-deterministic
// (turbo_lint rule "unfaultable-replica-channel" enforces the shape).
class MigrationChannel {
 public:
  explicit MigrationChannel(double bandwidth_bytes_per_s)
      : bandwidth_(bandwidth_bytes_per_s) {
    TURBO_CHECK_MSG(bandwidth_ > 0.0,
                    "interconnect bandwidth must be > 0");
  }

  struct Outcome {
    bool corrupted = false;   // CRC mismatch detected on arrival
    double transfer_s = 0.0;  // wire time (paid even when corrupted)
  };

  // Move one serialized KV stream between replicas. A zero-byte stream
  // costs no wire time and consumes no corruption draw (RNG draw-order
  // parity: an empty transfer is indistinguishable from no transfer).
  Outcome migrate(std::size_t bytes, FaultInjector* fault);

 private:
  double bandwidth_;
};

struct FleetResult {
  // Union of every replica's per-request outcomes plus any arrivals
  // stranded unrouted by the time limit: exactly one entry per trace
  // request, each in exactly one terminal state (kPending only when
  // hit_time_limit).
  std::vector<serving::Request> requests;
  // Per-replica engine results. The first replica_count entries are the
  // final incarnations, indexed by replica id; results of crashed
  // incarnations (their pre-crash terminal requests and counters) are
  // appended after, in crash order.
  std::vector<serving::EngineResult> replica_results;
  double makespan_s = 0.0;  // max replica makespan

  std::size_t replica_count = 0;
  std::size_t prefill_replica_count = 0;  // 0 = symmetric fleet
  std::size_t routed = 0;             // arrivals placed on a replica
  std::size_t replica_outages = 0;    // outage windows that fired
  std::size_t failover_drains = 0;    // requests drained off dying replicas
  std::size_t rerouted_waiting = 0;   // drained with no KV: plain re-routes
  std::size_t migrations = 0;         // KV streams moved over the wire
  std::size_t migration_corruptions = 0;  // CRC-detected transfer faults
  // Failovers that landed through the recompute path: corrupted
  // migrations plus streams over budget or unparkable at the source.
  std::size_t migration_recomputes = 0;
  std::size_t migration_budget_exhausted = 0;  // over-budget stream drops

  // --- Prefill->decode handoff (disaggregated mode) -----------------------
  std::size_t handoffs = 0;               // finished prefills handed over
  std::size_t handoff_corruptions = 0;    // CRC-detected handoff faults
  std::size_t handoff_retries = 0;        // transient-fault send retries
  std::size_t handoff_budget_exhausted = 0;  // send budget ran out
  // Handoffs that landed through the recompute path: corrupted or
  // over-budget transfers plus streamless (recompute-mode) sources.
  std::size_t handoff_recomputes = 0;
  // Arrivals prefilled by a decode replica because no prefill replica was
  // healthy: the graceful degradation to symmetric mode.
  std::size_t role_fallback_prefills = 0;
  // Arrivals whose admission was deferred at least once because every
  // healthy decode replica sat over the decode watermark (backpressure
  // on prefill admission instead of over-committing the decode pool).
  std::size_t backpressure_deferrals = 0;

  // --- Affinity routing ----------------------------------------------------
  std::size_t affinity_hits = 0;    // routed to a prefix-holding replica
  std::size_t affinity_misses = 0;  // fell back to least-outstanding-pages
  bool hit_time_limit = false;  // any replica (or routing) hit the stop

  double migrated_bytes = 0.0;
  double migration_stall_s = 0.0;  // wire time across all migrations
  double handoff_bytes = 0.0;      // KV bytes moved by handoffs
  double handoff_stall_s = 0.0;    // wire time across all handoffs
};

// Routes one trace over a replicated fleet. Single-shot: construct, call
// run() once.
class Router {
 public:
  explicit Router(const FleetConfig& config);

  // Run the trace to completion (or the max_sim_time_s safety stop).
  // Deterministic: identical config + trace give identical results.
  FleetResult run(std::vector<serving::Request> trace);

 private:
  // Which replicas a placement may consider. kAny is the symmetric
  // fleet's view; the disaggregated router scopes arrivals to prefill
  // replicas and handoffs/mid-decode failovers to decode replicas, then
  // widens when the preferred role has no healthy member.
  enum class Scope : std::uint8_t { kAny, kPrefill, kDecode };

  // Pick the destination replica for a request at time t under the
  // configured policy. Only healthy replicas are eligible; a down
  // replica whose outage window has passed is revived first. When every
  // replica is down, the one whose outage ends first is revived at its
  // window end (the request waits out the blackout).
  std::size_t pick_replica(const serving::Request& r, double t);

  // Scoped pick with the full failure ladder: the preferred scope first,
  // then the opposite role (graceful degradation — a prefill placed on a
  // decode replica counts role_fallback_prefills), then the symmetric
  // blackout machinery (revive the earliest-recovering replica).
  std::size_t pick_with_fallback(const serving::Request& r, double t,
                                 Scope scope);

  // Fail one drained request over to a healthy replica at time t:
  // migrate its KV stream within budget, recompute otherwise. Role-aware
  // in disaggregated mode (unfinished prompts re-route to a sibling
  // prefill replica; mid-decode streams go to a decode replica).
  void failover(const serving::MigratableRequest& m, double t);

  // Land one finished prefill on a decode replica: retry transient
  // interconnect faults with backoff within the handoff budget, CRC-check
  // the transfer, degrade corrupt/over-budget/streamless handoffs to
  // recompute on the destination. Takes the fault injector so every
  // fault on the handoff path is injectable and seed-deterministic
  // (turbo_lint rule "unfaultable-replica-channel").
  void handoff(const serving::MigratableRequest& m, FaultInjector* fault);

  std::size_t pick_round_robin(std::size_t& cursor, double t, Scope scope);
  std::size_t pick_least_pages(double t, Scope scope);
  std::size_t pick_affinity(const serving::Request& r, double t,
                            Scope scope);
  // The configured policy over one scope (no widening). Returns
  // engines_.size() when the scope has no eligible replica.
  std::size_t pick_policy(const serving::Request& r, double t, Scope scope);
  bool eligible(std::size_t i, double t);
  bool in_scope(std::size_t i, Scope scope) const;
  bool is_prefill(std::size_t i) const {
    return config_.prefill_replicas > 0 && i < config_.prefill_replicas;
  }
  bool disagg() const { return config_.prefill_replicas > 0; }
  // Replica i's referenced pages sit at or above the decode watermark.
  bool over_watermark(std::size_t i) const;
  // Every healthy decode replica is over the watermark (and at least one
  // exists): admission must wait for decode to drain, not over-commit.
  bool decode_pool_saturated(double t);
  void ensure_some_replica_up(double t);
  std::size_t earliest_recovering(double t) const;
  // The per-replica engine config: replica_id = i, fault seed = base + i,
  // prefill-only role in disaggregated mode. Used at construction and to
  // rebuild a crashed replica's engine (same seed: the replacement draws
  // a fresh, deterministic fault stream).
  serving::EngineConfig replica_cfg(std::size_t i) const;
  // Kill replica i at time t: its in-flight state dies with the process
  // (nothing is migrated), the incarnation's result is stashed, and a
  // replacement engine is rebuilt and rehydrated from the last snapshot
  // (restore -> recompute -> dedupe ladder), coming up at restart time.
  void crash_restart(std::size_t i, double t);

  FleetConfig config_;
  FaultInjector fleet_fault_;  // health windows + migration/handoff faults
  MigrationChannel channel_;
  std::vector<serving::Engine> engines_;
  serving::SnapshotStore snapshots_;  // fleet-wide crash-consistent store
  std::vector<char> down_;  // inside an outage window or crash-restarting
  // Wall-clock time the current downtime ends (outage window end, or
  // crash restart time). Only meaningful while down_[i] is set.
  std::vector<double> down_until_;
  // Index of the next outage window that has not yet drained replica i
  // (windows fire in start order; a window fully eclipsed by other
  // downtime is skipped, never replayed).
  std::vector<std::size_t> next_window_;
  std::vector<char> crash_fired_;      // crash_at_s already detected
  std::vector<double> last_snapshot_;  // per-replica last snapshot clock
  // Results of crashed incarnations, appended to replica_results after
  // the final per-replica entries.
  std::vector<serving::EngineResult> crashed_results_;
  std::size_t rr_cursor_ = 0;
  std::size_t standard_cursor_ = 0;
  std::size_t batch_cursor_ = 0;
  // Last arrival index charged a backpressure deferral (each deferred
  // arrival counts once, however many iterations it waits).
  std::size_t backpressured_arrival_ = static_cast<std::size_t>(-1);
  FleetResult result_;
  bool ran_ = false;
};

// Convenience wrapper: construct a Router and run the trace.
FleetResult run_fleet(const FleetConfig& config,
                      std::vector<serving::Request> trace);

}  // namespace turbo::fleet
