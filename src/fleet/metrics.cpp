#include "fleet/metrics.h"

#include <algorithm>

namespace turbo::fleet {

namespace {

// Fold the per-replica engine results into one synthetic EngineResult so
// the serving-level summarize() — percentiles, SLO attainment, the
// hit_time_limit/unfinished consistency check — runs unchanged over the
// fleet union. Counters sum; precision floors take the min; peaks sum
// (replicas run concurrently, so fleet peak memory is the sum of replica
// peaks, a conservative upper bound).
serving::EngineResult aggregate(const FleetResult& result) {
  serving::EngineResult agg;
  agg.requests = result.requests;
  agg.makespan_s = result.makespan_s;
  agg.hit_time_limit = result.hit_time_limit;
  bool first = true;
  for (const serving::EngineResult& er : result.replica_results) {
    agg.busy_s += er.busy_s;
    agg.peak_batch += er.peak_batch;
    agg.peak_kv_bytes += er.peak_kv_bytes;
    agg.rejected += er.rejected;
    agg.timed_out += er.timed_out;
    agg.shed += er.shed;
    agg.ladder_escalations += er.ladder_escalations;
    agg.ladder_deescalations += er.ladder_deescalations;
    agg.degraded_iterations += er.degraded_iterations;
    agg.degraded_admissions += er.degraded_admissions;
    agg.min_kv_bits =
        first ? er.min_kv_bits : std::min(agg.min_kv_bits, er.min_kv_bits);
    agg.degrade_rmse_proxy =
        std::max(agg.degrade_rmse_proxy, er.degrade_rmse_proxy);
    agg.preemptions += er.preemptions;
    agg.preempted_recompute += er.preempted_recompute;
    agg.preempted_swap += er.preempted_swap;
    agg.swap_ins += er.swap_ins;
    agg.swap_out_bytes += er.swap_out_bytes;
    agg.swap_in_bytes += er.swap_in_bytes;
    agg.swap_stall_s += er.swap_stall_s;
    agg.checksum_failures += er.checksum_failures;
    agg.recoveries += er.recoveries;
    agg.degraded_steps += er.degraded_steps;
    agg.injected_alloc_failures += er.injected_alloc_failures;
    agg.max_preemptions_single_request =
        std::max(agg.max_preemptions_single_request,
                 er.max_preemptions_single_request);
    agg.recomputed_tokens += er.recomputed_tokens;
    agg.snapshots_written += er.snapshots_written;
    agg.snapshot_bytes += er.snapshot_bytes;
    agg.snapshot_restores += er.snapshot_restores;
    agg.snapshot_corruptions += er.snapshot_corruptions;
    agg.restored_requests += er.restored_requests;
    agg.replayed_tokens += er.replayed_tokens;
    agg.crash_recomputes += er.crash_recomputes;
    agg.replica_crashes += er.replica_crashes;
    agg.dedupe_drops += er.dedupe_drops;
    agg.tier_demotions += er.tier_demotions;
    agg.tier_promotions += er.tier_promotions;
    agg.tier_failovers += er.tier_failovers;
    agg.tier_blacklists += er.tier_blacklists;
    agg.tier_fetch_retries += er.tier_fetch_retries;
    agg.swap_unavailable_recomputes += er.swap_unavailable_recomputes;
    agg.swap_overflow_recomputes += er.swap_overflow_recomputes;
    agg.swap_tiers_used += er.swap_tiers_used;
    agg.tier_retry_stall_s += er.tier_retry_stall_s;
    agg.prefix_hit_tokens += er.prefix_hit_tokens;
    agg.prefix_hit_requests += er.prefix_hit_requests;
    agg.prefix_pages_attached += er.prefix_pages_attached;
    agg.retained_pages_reclaimed += er.retained_pages_reclaimed;
    agg.prefilled_tokens += er.prefilled_tokens;
    agg.peak_referenced_pages += er.peak_referenced_pages;
    agg.prefill_handoffs += er.prefill_handoffs;
    for (std::size_t t = 0; t < kMaxSwapTiers; ++t) {
      agg.tier_stats[t].stores += er.tier_stats[t].stores;
      agg.tier_stats[t].hits += er.tier_stats[t].hits;
      agg.tier_stats[t].demotions_in += er.tier_stats[t].demotions_in;
      agg.tier_stats[t].promotions_out += er.tier_stats[t].promotions_out;
      agg.tier_stats[t].failures += er.tier_stats[t].failures;
      agg.tier_stats[t].blacklists += er.tier_stats[t].blacklists;
    }
    first = false;
  }
  return agg;
}

}  // namespace

FleetMetrics summarize_fleet(const FleetResult& result) {
  FleetMetrics m;
  m.fleet = serving::summarize(aggregate(result));
  m.replicas.reserve(result.replica_results.size());
  for (const serving::EngineResult& er : result.replica_results) {
    m.replicas.push_back(serving::summarize(er));
  }
  m.replica_count = result.replica_count;
  m.routed = result.routed;
  m.replica_outages = result.replica_outages;
  m.failover_drains = result.failover_drains;
  m.rerouted_waiting = result.rerouted_waiting;
  m.migrations = result.migrations;
  m.migration_corruptions = result.migration_corruptions;
  m.migration_recomputes = result.migration_recomputes;
  m.migration_budget_exhausted = result.migration_budget_exhausted;
  m.hit_time_limit = result.hit_time_limit;
  m.prefill_replica_count = result.prefill_replica_count;
  m.handoffs = result.handoffs;
  m.handoff_corruptions = result.handoff_corruptions;
  m.handoff_retries = result.handoff_retries;
  m.handoff_budget_exhausted = result.handoff_budget_exhausted;
  m.handoff_recomputes = result.handoff_recomputes;
  m.role_fallback_prefills = result.role_fallback_prefills;
  m.backpressure_deferrals = result.backpressure_deferrals;
  m.affinity_hits = result.affinity_hits;
  m.affinity_misses = result.affinity_misses;
  m.migrated_gb = result.migrated_bytes / (1024.0 * 1024.0 * 1024.0);
  m.migration_stall_s = result.migration_stall_s;
  m.handoff_gb = result.handoff_bytes / (1024.0 * 1024.0 * 1024.0);
  m.handoff_stall_s = result.handoff_stall_s;
  return m;
}

}  // namespace turbo::fleet
