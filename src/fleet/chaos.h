// Seeded chaos harness for the fleet router.
//
// Chaos engineering, minus the flakiness: apply_chaos() expands one
// (seed, intensity) pair into a concrete, deterministic fault schedule —
// replica crashes with warm restarts, flapping outage windows, tier
// death, migration/handoff/snapshot corruption, allocation failures —
// written into a FleetConfig's FaultPlan. The schedule is drawn from a
// private RNG before the run starts, so the run itself stays
// bit-identical across build configurations and sanitizer lanes: the
// same chaos seed reproduces the same disaster, byte for byte.
//
// audit_fleet() is the post-run half: it re-checks the invariants the
// fleet exists to uphold (exactly one terminal state per trace request,
// every terminal request accounted to exactly one engine incarnation,
// crash/snapshot counter consistency) and reports every violation
// instead of stopping at the first, so a failing chaos run tells the
// whole story.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/router.h"

namespace turbo::fleet {

// Expand (seed, intensity) into a deterministic fault schedule over the
// config's replicas and write it into config.engine.faults (composing
// with — and overriding — any per-field knobs already set). intensity
// scales every probability and event count, in (0, 1]; horizon_s is the
// wall-clock span the schedule targets (crashes and outages land inside
// it — pass the trace duration). Always enables periodic snapshots and
// guarantees at least one replica crash, so every chaos run exercises
// the full recovery ladder.
void apply_chaos(FleetConfig& config, std::uint64_t seed, double intensity,
                 double horizon_s);

// Post-run invariant audit over a chaos (or any fleet) run.
struct ChaosAudit {
  bool ok = true;
  // One human-readable line per violated invariant; empty when ok.
  std::vector<std::string> failures;
};

// Audit a finished fleet run against the trace size it consumed. Checks
// the terminal-state union (exactly trace_size requests, unique ids,
// no kPending unless the safety stop fired), per-incarnation
// accounting (every terminal request appears in exactly one engine
// incarnation's result), and crash/snapshot counter consistency.
ChaosAudit audit_fleet(const FleetResult& result, std::size_t trace_size);

}  // namespace turbo::fleet
