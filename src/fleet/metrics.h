// Fleet-level metrics: per-replica serving rollups plus the fleet union.
//
// Mirroring contract (turbo_lint rule "unmirrored-engine-counter"): every
// std::size_t / bool counter in FleetResult has a FleetMetrics field of
// the same name, filled from it in metrics.cpp — a router counter that
// never reaches the report is a lint error, not a code-review hope.
#pragma once

#include <vector>

#include "fleet/router.h"
#include "serving/metrics.h"

namespace turbo::fleet {

struct FleetMetrics {
  // Union-level serving metrics: every trace request, whichever replica
  // finished it, summarized against the fleet makespan.
  serving::ServingMetrics fleet;
  // Per-replica serving metrics: the first replica_count entries are the
  // final incarnations, indexed by replica id; crashed incarnations
  // follow in crash order (mirroring FleetResult::replica_results). Sum
  // of the incarnations' counters equals the fleet rollup (drained
  // requests count only where they terminated).
  std::vector<serving::ServingMetrics> replicas;

  std::size_t replica_count = 0;
  std::size_t routed = 0;
  std::size_t replica_outages = 0;
  std::size_t failover_drains = 0;
  std::size_t rerouted_waiting = 0;
  std::size_t migrations = 0;
  std::size_t migration_corruptions = 0;
  std::size_t migration_recomputes = 0;
  std::size_t migration_budget_exhausted = 0;
  bool hit_time_limit = false;

  // Prefill/decode disaggregation (see fleet/router.h).
  std::size_t prefill_replica_count = 0;
  std::size_t handoffs = 0;
  std::size_t handoff_corruptions = 0;
  std::size_t handoff_retries = 0;
  std::size_t handoff_budget_exhausted = 0;
  std::size_t handoff_recomputes = 0;
  std::size_t role_fallback_prefills = 0;
  std::size_t backpressure_deferrals = 0;

  // Affinity routing.
  std::size_t affinity_hits = 0;
  std::size_t affinity_misses = 0;

  double migrated_gb = 0.0;
  double migration_stall_s = 0.0;
  double handoff_gb = 0.0;
  double handoff_stall_s = 0.0;
};

FleetMetrics summarize_fleet(const FleetResult& result);

}  // namespace turbo::fleet
