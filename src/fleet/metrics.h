// Fleet-level metrics: per-replica serving rollups plus the fleet union.
//
// Mirroring contract (turbo_lint rule "unmirrored-engine-counter"): every
// std::size_t / bool counter in FleetResult has a FleetMetrics field of
// the same name, filled from it in metrics.cpp — a router counter that
// never reaches the report is a lint error, not a code-review hope.
#pragma once

#include <vector>

#include "fleet/router.h"
#include "serving/metrics.h"

namespace turbo::fleet {

struct FleetMetrics {
  // Union-level serving metrics: every trace request, whichever replica
  // finished it, summarized against the fleet makespan.
  serving::ServingMetrics fleet;
  // Per-replica serving metrics, indexed by replica id. Sum of the
  // replicas' counters equals the fleet rollup (drained requests count
  // only where they terminated).
  std::vector<serving::ServingMetrics> replicas;

  std::size_t replica_count = 0;
  std::size_t routed = 0;
  std::size_t replica_outages = 0;
  std::size_t failover_drains = 0;
  std::size_t rerouted_waiting = 0;
  std::size_t migrations = 0;
  std::size_t migration_corruptions = 0;
  std::size_t migration_recomputes = 0;
  std::size_t migration_budget_exhausted = 0;
  bool hit_time_limit = false;

  double migrated_gb = 0.0;
  double migration_stall_s = 0.0;
};

FleetMetrics summarize_fleet(const FleetResult& result);

}  // namespace turbo::fleet
