#include "fleet/router.h"

#include <algorithm>
#include <limits>

namespace turbo::fleet {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

MigrationChannel::Outcome MigrationChannel::migrate(std::size_t bytes,
                                                    FaultInjector* fault) {
  Outcome out;
  out.transfer_s = static_cast<double>(bytes) / bandwidth_;
  // In-transit corruption is one seeded Bernoulli draw; the CRC layer on
  // the destination detects it, so a corrupt stream costs the wire time
  // plus a recompute — never silent corruption.
  out.corrupted = fault != nullptr && fault->corrupt_migration();
  return out;
}

Router::Router(const FleetConfig& config)
    : config_(config),
      fleet_fault_(config.engine.faults),
      channel_(config.interconnect_bandwidth) {
  TURBO_CHECK_MSG(config_.replicas >= 1 && config_.replicas <= kMaxReplicas,
                  "fleet size must be in [1, kMaxReplicas]");
  engines_.reserve(config_.replicas);
  for (std::size_t i = 0; i < config_.replicas; ++i) {
    serving::EngineConfig c = config_.engine;
    c.replica_id = i;
    // Derived per-replica fault seed: independent Bernoulli streams per
    // replica, replica 0 at the base seed so a 1-replica fleet draws the
    // exact sequence run_engine() would.
    c.faults.seed = config_.engine.faults.seed + i;
    engines_.emplace_back(c);
  }
  down_.assign(config_.replicas, 0);
  outage_fired_.assign(config_.replicas, 0);
}

bool Router::eligible(std::size_t i, double t) {
  if (down_[i] != 0) {
    // Lazy revival: the first routing decision after the outage window
    // closes brings the replica back (its clock idled through the
    // blackout).
    if (t >= config_.engine.faults.replicas[i].outage_end_s) {
      engines_[i].advance_to(t);
      down_[i] = 0;
      return true;
    }
    return false;
  }
  // A replica whose window covers t but whose own clock has not entered
  // it yet is already unroutable — admission stops the moment the
  // router's clock sees the outage; the drain fires when the replica's
  // clock catches up.
  return !fleet_fault_.replica_down(i, t);
}

std::size_t Router::pick_round_robin(std::size_t& cursor, double t) {
  const std::size_t n = engines_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (cursor + k) % n;
    if (eligible(i, t)) {
      cursor = (i + 1) % n;
      return i;
    }
  }
  return n;
}

std::size_t Router::pick_least_pages(double t) {
  const std::size_t n = engines_.size();
  std::size_t best = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (!eligible(i, t)) continue;
    if (best == n ||
        engines_[i].used_pages() < engines_[best].used_pages()) {
      best = i;  // ties keep the lowest index
    }
  }
  return best;
}

void Router::ensure_some_replica_up(double t) {
  // Every replica is down: revive the one whose outage ends first, at
  // its window end — the request waits out the blackout rather than
  // being lost.
  const std::size_t n = engines_.size();
  std::size_t best = n;
  double best_end = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    if (down_[i] == 0) continue;
    const double end = config_.engine.faults.replicas[i].outage_end_s;
    if (end < best_end) {
      best = i;
      best_end = end;
    }
  }
  if (best == n) return;
  engines_[best].advance_to(std::max(t, best_end));
  down_[best] = 0;
}

std::size_t Router::pick_replica(const serving::Request& r, double t) {
  const std::size_t n = engines_.size();
  for (int pass = 0; pass < 2; ++pass) {
    std::size_t pick = n;
    switch (config_.route) {
      case RoutePolicy::kRoundRobin:
        pick = pick_round_robin(rr_cursor_, t);
        break;
      case RoutePolicy::kLeastOutstandingPages:
        pick = pick_least_pages(t);
        break;
      case RoutePolicy::kClassAware:
        if (r.service_class == serving::ServiceClass::kInteractive) {
          pick = pick_least_pages(t);
        } else if (r.service_class == serving::ServiceClass::kStandard) {
          pick = pick_round_robin(standard_cursor_, t);
        } else {
          pick = pick_round_robin(batch_cursor_, t);
        }
        break;
    }
    if (pick < n) return pick;
    ensure_some_replica_up(t);
  }
  // Every replica's window covers t and none has drained yet (their
  // clocks lag the router's). Place on the one that recovers first; its
  // own outage will drain and fail the request over.
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (config_.engine.faults.replicas[i].outage_end_s <
        config_.engine.faults.replicas[best].outage_end_s) {
      best = i;
    }
  }
  return best;
}

void Router::failover(const serving::MigratableRequest& m, double t) {
  serving::MigratableRequest moved = m;
  ++moved.request.replica_failovers;
  const std::size_t dst = pick_replica(moved.request, t);
  if (moved.context == 0) {
    // Nothing cached at drain: a plain re-route, no bytes on the wire.
    ++result_.rerouted_waiting;
    engines_[dst].adopt(moved, t, false);
    return;
  }
  const bool within_budget =
      moved.request.replica_failovers <= config_.failover_budget;
  if (moved.has_stream && within_budget) {
    const MigrationChannel::Outcome out = channel_.migrate(
        static_cast<std::size_t>(moved.bytes), &fleet_fault_);
    ++result_.migrations;
    result_.migrated_bytes += moved.bytes;
    result_.migration_stall_s += out.transfer_s;
    if (out.corrupted) {
      // CRC caught the transfer fault on arrival: the wire time was
      // paid, the payload is unusable, the destination recomputes.
      ++result_.migration_corruptions;
      ++result_.migration_recomputes;
      engines_[dst].adopt(moved, t + out.transfer_s, false);
    } else {
      engines_[dst].adopt(moved, t + out.transfer_s, true);
    }
    return;
  }
  // Over the failover budget (or the source had no parked stream): the
  // terminal fallback — recompute the KV from the prompt on the
  // destination. Costs latency, never liveness.
  if (moved.has_stream && !within_budget) {
    ++result_.migration_budget_exhausted;
  }
  ++result_.migration_recomputes;
  engines_[dst].adopt(moved, t, false);
}

FleetResult Router::run(std::vector<serving::Request> trace) {
  TURBO_CHECK_MSG(!ran_, "Router::run() is single-shot");
  ran_ = true;
  std::sort(trace.begin(), trace.end(),
            [](const serving::Request& a, const serving::Request& b) {
              return a.arrival_s < b.arrival_s;
            });
  const double limit = config_.engine.max_sim_time_s;
  const std::size_t n = engines_.size();
  std::size_t next = 0;  // next unrouted arrival

  while (true) {
    // Outage transitions: a replica whose own clock entered its window
    // stops admitting, drains, and fails everything over. One drain per
    // window (outage_fired_); the health probe is a pure wall-clock
    // check, so detecting an outage never perturbs any fault RNG stream.
    for (std::size_t i = 0; i < n; ++i) {
      if (down_[i] != 0 || outage_fired_[i] != 0) continue;
      if (!fleet_fault_.replica_down(i, engines_[i].now())) continue;
      down_[i] = 1;
      outage_fired_[i] = 1;
      ++result_.replica_outages;
      const double t = engines_[i].now();
      const std::vector<serving::MigratableRequest> drained =
          engines_[i].drain();
      result_.failover_drains += drained.size();
      for (const serving::MigratableRequest& m : drained) {
        failover(m, t);
      }
    }

    // The fleet frontier: the healthy replica with work furthest behind
    // in time runs next, so replica iterations interleave in global time
    // order (ties go to the lowest index).
    double tmin = kInf;
    std::size_t who = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (down_[i] != 0 || !engines_[i].has_work()) continue;
      if (engines_[i].now() < tmin) {
        tmin = engines_[i].now();
        who = i;
      }
    }
    const double ta = next < trace.size() ? trace[next].arrival_s : kInf;

    if (who == n && next >= trace.size()) break;  // fleet fully drained

    if (ta <= tmin) {
      // The next fleet event is an arrival: route it before any replica
      // steps past it.
      const std::size_t dst = pick_replica(trace[next], ta);
      engines_[dst].submit(trace[next]);
      ++result_.routed;
      ++next;
      continue;
    }

    // Mirrors run_engine's `now < max_sim_time_s` loop condition: once
    // every replica with work is at or past the stop, in-flight requests
    // strand as kPending.
    if (tmin >= limit) break;

    // Step the frontier replica one iteration. The horizon caps its idle
    // jumps at the next unrouted arrival (which it cannot see in its own
    // pending queue) and at its own not-yet-fired outage start, so the
    // loop-top health probe lands exactly on the window edge.
    double horizon = ta;
    if (outage_fired_[who] == 0) {
      const ReplicaFaultPlan& w = config_.engine.faults.replicas[who];
      if (w.enabled() && w.outage_start_s > engines_[who].now()) {
        horizon = std::min(horizon, w.outage_start_s);
      }
    }
    engines_[who].step(horizon);
  }

  // Finalize: per-replica results, the fleet union, and the invariants
  // the whole subsystem exists to uphold.
  result_.replica_count = n;
  bool any_limit = next < trace.size();
  result_.replica_results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    serving::EngineResult er = engines_[i].finish();
    result_.makespan_s = std::max(result_.makespan_s, er.makespan_s);
    any_limit = any_limit || er.hit_time_limit;
    for (const serving::Request& r : er.requests) {
      result_.requests.push_back(r);
    }
    result_.replica_results.push_back(std::move(er));
  }
  // Arrivals the safety stop stranded before routing: still accounted
  // for, still kPending.
  for (; next < trace.size(); ++next) {
    result_.requests.push_back(trace[next]);
  }
  result_.hit_time_limit = any_limit;

  // Exactly-one-terminal-state across the fleet: every trace request
  // appears exactly once in the union (drained requests moved — not
  // copied — between replicas), and each is terminal unless the safety
  // stop fired. Requires unique request ids, which the swap-stream key
  // namespace already demands.
  TURBO_CHECK_MSG(result_.requests.size() == trace.size(),
                  "fleet lost or duplicated a request");
  std::vector<std::uint64_t> ids;
  ids.reserve(result_.requests.size());
  for (const serving::Request& r : result_.requests) ids.push_back(r.id);
  std::sort(ids.begin(), ids.end());
  TURBO_CHECK_MSG(std::adjacent_find(ids.begin(), ids.end()) == ids.end(),
                  "a request reached more than one terminal state");
  if (!result_.hit_time_limit) {
    for (const serving::Request& r : result_.requests) {
      TURBO_CHECK_MSG(r.outcome != serving::Outcome::kPending,
                      "a request finished the run without a terminal state");
    }
  }
  return std::move(result_);
}

FleetResult run_fleet(const FleetConfig& config,
                      std::vector<serving::Request> trace) {
  Router router(config);
  return router.run(std::move(trace));
}

}  // namespace turbo::fleet
