#include "fleet/router.h"

#include <algorithm>
#include <limits>

namespace turbo::fleet {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

MigrationChannel::Outcome MigrationChannel::migrate(std::size_t bytes,
                                                    FaultInjector* fault) {
  Outcome out;
  // A zero-byte stream never touches the wire: no transfer time and —
  // critically for RNG draw-order parity — no corruption Bernoulli draw,
  // so a run that migrates an empty stream stays bit-identical to one
  // that skips the call entirely.
  if (bytes == 0) return out;
  out.transfer_s = static_cast<double>(bytes) / bandwidth_;
  // In-transit corruption is one seeded Bernoulli draw; the CRC layer on
  // the destination detects it, so a corrupt stream costs the wire time
  // plus a recompute — never silent corruption.
  out.corrupted = fault != nullptr && fault->corrupt_migration();
  return out;
}

Router::Router(const FleetConfig& config)
    : config_(config),
      fleet_fault_(config.engine.faults),
      channel_(config.interconnect_bandwidth) {
  TURBO_CHECK_MSG(config_.replicas >= 1 && config_.replicas <= kMaxReplicas,
                  "fleet size must be in [1, kMaxReplicas]");
  TURBO_CHECK_MSG(config_.prefill_replicas < config_.replicas,
                  "disaggregation must leave at least one decode replica");
  TURBO_CHECK_MSG(config_.decode_watermark > 0.0 &&
                      config_.decode_watermark <= 1.0,
                  "decode_watermark must be in (0, 1]");
  TURBO_CHECK_MSG(config_.handoff_retry_budget >= 1,
                  "handoff_retry_budget must allow at least one attempt");
  TURBO_CHECK_MSG(config_.handoff_retry_backoff_s >= 0.0,
                  "handoff_retry_backoff_s must be >= 0");
  TURBO_CHECK_MSG(config_.snapshot_interval_s >= 0.0,
                  "snapshot_interval_s must be >= 0");
  engines_.reserve(config_.replicas);
  for (std::size_t i = 0; i < config_.replicas; ++i) {
    engines_.emplace_back(replica_cfg(i));
  }
  down_.assign(config_.replicas, 0);
  down_until_.assign(config_.replicas, 0.0);
  next_window_.assign(config_.replicas, 0);
  crash_fired_.assign(config_.replicas, 0);
  last_snapshot_.assign(config_.replicas, 0.0);
}

serving::EngineConfig Router::replica_cfg(std::size_t i) const {
  serving::EngineConfig c = config_.engine;
  c.replica_id = i;
  // Derived per-replica fault seed: independent Bernoulli streams per
  // replica, replica 0 at the base seed so a 1-replica fleet draws the
  // exact sequence run_engine() would. A crashed replica's replacement
  // reuses the same seed: it draws a fresh, deterministic stream.
  c.faults.seed = config_.engine.faults.seed + i;
  // Role split: replicas [0, P) prefill and hand off; the rest decode
  // (and self-prefill only when the prefill pool is dark).
  c.role = is_prefill(i) ? serving::EngineRole::kPrefillOnly
                         : serving::EngineRole::kFull;
  return c;
}

bool Router::eligible(std::size_t i, double t) {
  if (down_[i] != 0) {
    // Lazy revival: the first routing decision after the downtime ends
    // (outage window close, or crash restart) brings the replica back —
    // its clock idled through the blackout.
    if (t >= down_until_[i]) {
      engines_[i].advance_to(t);
      down_[i] = 0;
      return true;
    }
    return false;
  }
  // A replica whose window covers t but whose own clock has not entered
  // it yet is already unroutable — admission stops the moment the
  // router's clock sees the outage; the drain fires when the replica's
  // clock catches up.
  return !fleet_fault_.replica_down(i, t);
}

bool Router::in_scope(std::size_t i, Scope scope) const {
  switch (scope) {
    case Scope::kAny:
      return true;
    case Scope::kPrefill:
      return is_prefill(i);
    case Scope::kDecode:
      return !is_prefill(i);
  }
  return true;
}

bool Router::over_watermark(std::size_t i) const {
  return static_cast<double>(engines_[i].referenced_pages()) >=
         config_.decode_watermark *
             static_cast<double>(engines_[i].total_pages());
}

bool Router::decode_pool_saturated(double t) {
  bool any = false;
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (!in_scope(i, Scope::kDecode) || !eligible(i, t)) continue;
    any = true;
    if (!over_watermark(i)) return false;
  }
  return any;
}

std::size_t Router::pick_round_robin(std::size_t& cursor, double t,
                                     Scope scope) {
  const std::size_t n = engines_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (cursor + k) % n;
    if (!in_scope(i, scope)) continue;
    if (eligible(i, t)) {
      cursor = (i + 1) % n;
      return i;
    }
  }
  return n;
}

std::size_t Router::pick_least_pages(double t, Scope scope) {
  const std::size_t n = engines_.size();
  std::size_t best = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (!in_scope(i, scope) || !eligible(i, t)) continue;
    if (best == n ||
        engines_[i].used_pages() < engines_[best].used_pages()) {
      best = i;  // ties keep the lowest index
    }
  }
  return best;
}

std::size_t Router::pick_affinity(const serving::Request& r, double t,
                                  Scope scope) {
  // Longest resident prefix wins (ties keep the lowest index — every
  // lane scans in the same order, so the pick is deterministic). A
  // target over the decode watermark is skipped at scoring time: cache
  // affinity must not funnel a hot session onto a saturated replica.
  const std::size_t n = engines_.size();
  std::size_t best = n;
  std::size_t best_tokens = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!in_scope(i, scope) || !eligible(i, t)) continue;
    if (over_watermark(i)) continue;
    const std::size_t tokens = engines_[i].prefix_match_tokens(r);
    if (tokens > best_tokens) {
      best = i;
      best_tokens = tokens;
    }
  }
  if (best < n) {
    ++result_.affinity_hits;
    return best;
  }
  // No healthy under-watermark replica holds any prefix: fall back to
  // the memory-pressure signal.
  ++result_.affinity_misses;
  return pick_least_pages(t, scope);
}

void Router::ensure_some_replica_up(double t) {
  // Every replica is down: revive the one whose downtime ends first, at
  // that end — the request waits out the blackout rather than being
  // lost.
  const std::size_t n = engines_.size();
  std::size_t best = n;
  double best_end = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    if (down_[i] == 0) continue;
    const double end = down_until_[i];
    if (end < best_end) {
      best = i;
      best_end = end;
    }
  }
  if (best == n) return;
  engines_[best].advance_to(std::max(t, best_end));
  down_[best] = 0;
}

std::size_t Router::pick_policy(const serving::Request& r, double t,
                                Scope scope) {
  switch (config_.route) {
    case RoutePolicy::kRoundRobin:
      return pick_round_robin(rr_cursor_, t, scope);
    case RoutePolicy::kLeastOutstandingPages:
      return pick_least_pages(t, scope);
    case RoutePolicy::kClassAware:
      if (r.service_class == serving::ServiceClass::kInteractive) {
        return pick_least_pages(t, scope);
      } else if (r.service_class == serving::ServiceClass::kStandard) {
        return pick_round_robin(standard_cursor_, t, scope);
      } else {
        return pick_round_robin(batch_cursor_, t, scope);
      }
    case RoutePolicy::kAffinity:
      return pick_affinity(r, t, scope);
  }
  return engines_.size();
}

std::size_t Router::earliest_recovering(double t) const {
  // Every replica is dark at t — already marked down, or its plan covers
  // t before its own clock drained it. Place on the one whose downtime
  // ends first; its own outage/crash will drain or recover the request.
  const std::size_t n = engines_.size();
  std::size_t best = 0;
  double best_end = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    const double end = down_[i] != 0
                           ? down_until_[i]
                           : config_.engine.faults.replicas[i].down_until(t);
    if (end < best_end) {
      best = i;
      best_end = end;
    }
  }
  return best;
}

std::size_t Router::pick_with_fallback(const serving::Request& r, double t,
                                       Scope scope) {
  const std::size_t n = engines_.size();
  if (scope != Scope::kAny) {
    // Failure ladder, rung 1: the preferred role.
    std::size_t pick = pick_policy(r, t, scope);
    if (pick < n) return pick;
    // Rung 2: the opposite role — graceful degradation to symmetric
    // mode. A prompt landing on a decode replica self-prefills there
    // (role_fallback_prefills); decode work landing on a prefill
    // replica decodes there (adopted mid-decode work never re-enters
    // the prefill path). A dead role costs latency, never liveness.
    const Scope other =
        scope == Scope::kPrefill ? Scope::kDecode : Scope::kPrefill;
    pick = pick_policy(r, t, other);
    if (pick < n) {
      if (scope == Scope::kPrefill) ++result_.role_fallback_prefills;
      return pick;
    }
  }
  // Rung 3: the symmetric blackout machinery — revive the earliest-
  // recovering down replica and retry, then wait out the blackout on
  // the replica that recovers first.
  for (int pass = 0; pass < 2; ++pass) {
    const std::size_t pick = pick_policy(r, t, Scope::kAny);
    if (pick < n) return pick;
    ensure_some_replica_up(t);
  }
  return earliest_recovering(t);
}

std::size_t Router::pick_replica(const serving::Request& r, double t) {
  // Arrivals carry a prompt: in disaggregated mode they prefer the
  // prefill pool; symmetric fleets consider everyone (bit-identical to
  // the pre-disaggregation router).
  return pick_with_fallback(r, t, disagg() ? Scope::kPrefill : Scope::kAny);
}

void Router::failover(const serving::MigratableRequest& m, double t) {
  serving::MigratableRequest moved = m;
  ++moved.request.replica_failovers;
  Scope scope = Scope::kAny;
  if (disagg()) {
    // Role-aware failover: work still in (or before) prefill re-routes
    // to a sibling prefill replica; mid-decode work stays in the decode
    // pool. Either pool being dark degrades to the other inside
    // pick_with_fallback — a dead role costs latency, never liveness.
    scope = (moved.prompt_left > 0 || moved.context == 0) ? Scope::kPrefill
                                                          : Scope::kDecode;
  }
  const std::size_t dst = pick_with_fallback(moved.request, t, scope);
  if (moved.context == 0) {
    // Nothing cached at drain: a plain re-route, no bytes on the wire.
    ++result_.rerouted_waiting;
    engines_[dst].adopt(moved, t, false);
    return;
  }
  const bool within_budget =
      moved.request.replica_failovers <= config_.failover_budget;
  if (moved.has_stream && within_budget) {
    const MigrationChannel::Outcome out = channel_.migrate(
        static_cast<std::size_t>(moved.bytes), &fleet_fault_);
    ++result_.migrations;
    result_.migrated_bytes += moved.bytes;
    result_.migration_stall_s += out.transfer_s;
    if (out.corrupted) {
      // CRC caught the transfer fault on arrival: the wire time was
      // paid, the payload is unusable, the destination recomputes.
      ++result_.migration_corruptions;
      ++result_.migration_recomputes;
      engines_[dst].adopt(moved, t + out.transfer_s, false);
    } else {
      engines_[dst].adopt(moved, t + out.transfer_s, true);
    }
    return;
  }
  // Over the failover budget (or the source had no parked stream): the
  // terminal fallback — recompute the KV from the prompt on the
  // destination. Costs latency, never liveness.
  if (moved.has_stream && !within_budget) {
    ++result_.migration_budget_exhausted;
  }
  ++result_.migration_recomputes;
  engines_[dst].adopt(moved, t, false);
}

void Router::handoff(const serving::MigratableRequest& m,
                     FaultInjector* fault) {
  serving::MigratableRequest moved = m;
  const double t = moved.ready_s;
  ++result_.handoffs;
  // Destination ladder: least-loaded decode replica; whole decode pool
  // dark → any healthy replica (a prefill sibling can decode adopted
  // work — its handoff trigger only fires at prompt completion, which
  // adopted mid-decode work never revisits); everyone dark → revive the
  // earliest-recovering replica and wait out the blackout.
  const std::size_t n = engines_.size();
  std::size_t dst = pick_least_pages(t, Scope::kDecode);
  if (dst == n) dst = pick_least_pages(t, Scope::kAny);
  if (dst == n) {
    ensure_some_replica_up(t);
    dst = pick_least_pages(t, Scope::kAny);
  }
  if (dst == n) dst = earliest_recovering(t);
  if (!moved.has_stream) {
    // Recompute preemption mode parks no stream: the decode side
    // re-derives the KV from the prompt. No wire traffic, no draws.
    ++result_.handoff_recomputes;
    engines_[dst].adopt(moved, t, false);
    return;
  }
  // Stream the KV across the interconnect, retrying transient faults
  // with linear backoff inside a per-request attempt budget.
  double arrive = t;
  bool sent = false;
  bool corrupted = false;
  for (std::size_t attempt = 0; attempt < config_.handoff_retry_budget;
       ++attempt) {
    if (fault != nullptr && fault->handoff_transient()) {
      // Transient interconnect fault before the payload moved: back off
      // (linearly in the attempt number) and retry.
      ++result_.handoff_retries;
      arrive +=
          static_cast<double>(attempt + 1) * config_.handoff_retry_backoff_s;
      continue;
    }
    const MigrationChannel::Outcome out =
        channel_.migrate(static_cast<std::size_t>(moved.bytes), fault);
    result_.handoff_bytes += moved.bytes;
    result_.handoff_stall_s += out.transfer_s;
    arrive += out.transfer_s;
    sent = true;
    corrupted = out.corrupted;
    break;
  }
  if (sent && !corrupted) {
    engines_[dst].adopt(moved, arrive, true);
    return;
  }
  if (corrupted) {
    // CRC caught the in-transit fault on arrival: the wire time was
    // paid, the payload is unusable, the decode side recomputes.
    ++result_.handoff_corruptions;
  } else {
    ++result_.handoff_budget_exhausted;
  }
  ++result_.handoff_recomputes;
  engines_[dst].adopt(moved, arrive, false);
}

void Router::crash_restart(std::size_t i, double t) {
  const ReplicaFaultPlan& plan = config_.engine.faults.replicas[i];
  // The process dies with its state: nothing is migrated. drain() is
  // reused only as the mechanical enumerator of what was in flight — the
  // lost list tells recovery what it must bring back, and drain() draws
  // no RNG, so crash detection never perturbs a fault stream.
  const std::vector<serving::MigratableRequest> lost = engines_[i].drain();
  // The dead incarnation's terminal requests (and its counters, snapshot
  // traffic included) survive in its result, appended to replica_results
  // after the final per-replica entries.
  crashed_results_.push_back(engines_[i].finish());
  const double restart = std::max(t, plan.restart_at_s());
  // Rebuild the engine from the same per-replica config and rehydrate it
  // through the recovery ladder: snapshot entry → recompute from the
  // prompt → dedupe (entries whose request already finished or migrated
  // away pre-crash are dropped, never re-run).
  engines_[i] = serving::Engine(replica_cfg(i));
  engines_[i].restore_from(snapshots_, lost, restart, &fleet_fault_);
  down_[i] = 1;
  down_until_[i] = restart;
  last_snapshot_[i] = restart;
}

FleetResult Router::run(std::vector<serving::Request> trace) {
  TURBO_CHECK_MSG(!ran_, "Router::run() is single-shot");
  ran_ = true;
  std::sort(trace.begin(), trace.end(),
            [](const serving::Request& a, const serving::Request& b) {
              return a.arrival_s < b.arrival_s;
            });
  const double limit = config_.engine.max_sim_time_s;
  const std::size_t n = engines_.size();
  std::size_t next = 0;  // next unrouted arrival

  while (true) {
    // Fault transitions: crashes and outage windows, both pure
    // wall-clock checks against the replica's own clock — detecting
    // either never perturbs any fault RNG stream.
    for (std::size_t i = 0; i < n; ++i) {
      if (down_[i] != 0) continue;
      const double now_i = engines_[i].now();
      const ReplicaFaultPlan& plan = config_.engine.faults.replicas[i];
      // A clock that jumped past the whole crash blackout (revived from
      // an overlapping outage after restart_at_s) slept through it: the
      // replica held nothing while "crashed", so there is nothing to
      // lose or recover — retire the crash instead of firing it late.
      if (crash_fired_[i] == 0 && plan.crash_enabled() &&
          now_i >= plan.restart_at_s()) {
        crash_fired_[i] = 1;
      }
      // Crash first: the abrupt failure beats the polite drain when both
      // cover the same instant. One crash per replica per run.
      if (crash_fired_[i] == 0 && fleet_fault_.replica_crashed(i, now_i)) {
        crash_fired_[i] = 1;
        crash_restart(i, now_i);
        continue;
      }
      // Outage windows fire in start order, one drain per window (a
      // flapping replica drains on every window it enters). Windows the
      // replica's clock skipped entirely — eclipsed by a crash blackout
      // or a busy step that overshot them — are dropped, never replayed.
      while (next_window_[i] < plan.outages.size() &&
             plan.outages[next_window_[i]].end_s <= now_i) {
        ++next_window_[i];
      }
      if (next_window_[i] >= plan.outages.size() ||
          !plan.outages[next_window_[i]].covers(now_i)) {
        continue;
      }
      down_[i] = 1;
      down_until_[i] = plan.outages[next_window_[i]].end_s;
      ++next_window_[i];
      ++result_.replica_outages;
      const std::vector<serving::MigratableRequest> drained =
          engines_[i].drain();
      result_.failover_drains += drained.size();
      for (const serving::MigratableRequest& m : drained) {
        failover(m, now_i);
      }
    }

    // Prefill→decode handoffs: collect finished prefills from healthy
    // prefill replicas and stream each across the interconnect. (Member
    // call via this-> — the channel entry point itself carries the
    // FaultInjector* parameter the static analyzer demands.)
    if (disagg()) {
      for (std::size_t i = 0; i < config_.prefill_replicas; ++i) {
        if (down_[i] != 0) continue;
        for (const serving::MigratableRequest& m :
             engines_[i].take_prefilled()) {
          this->handoff(m, &fleet_fault_);
        }
      }
    }

    // The fleet frontier: the replica with work furthest behind in time
    // runs next, so replica iterations interleave in global time order
    // (ties go to the lowest index). A down replica holds work only
    // while crash-restarting (outage drains empty the replica; adoption
    // targets only healthy replicas) — its restored requests make it a
    // frontier candidate at its restart time, so recovered work can
    // never strand inside a rebooting replica.
    double tmin = kInf;
    std::size_t who = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!engines_[i].has_work()) continue;
      double t_i = engines_[i].now();
      if (down_[i] != 0) t_i = std::max(t_i, down_until_[i]);
      if (t_i < tmin) {
        tmin = t_i;
        who = i;
      }
    }
    const double ta = next < trace.size() ? trace[next].arrival_s : kInf;

    if (who == n && next >= trace.size()) break;  // fleet fully drained

    if (ta <= tmin) {
      // Decode-pool backpressure: when every healthy decode replica sits
      // at or over the watermark, hold prefill admission and let the
      // fleet drain an iteration first. Only defers while some replica
      // has work to step — an idle fleet always admits, so backpressure
      // can stall an arrival but never strand it (liveness backstop).
      const bool defer = disagg() && who != n && decode_pool_saturated(ta);
      if (!defer) {
        // The next fleet event is an arrival: route it before any
        // replica steps past it.
        const std::size_t dst = pick_replica(trace[next], ta);
        engines_[dst].submit(trace[next]);
        ++result_.routed;
        ++next;
        continue;
      }
      if (backpressured_arrival_ != next) {
        // Count each arrival's deferral once, however many iterations
        // it waits.
        backpressured_arrival_ = next;
        ++result_.backpressure_deferrals;
      }
    }

    // Mirrors run_engine's `now < max_sim_time_s` loop condition: once
    // every replica with work is at or past the stop, in-flight requests
    // strand as kPending.
    if (tmin >= limit) break;

    // A down frontier winner is a crash-restarting replica whose
    // restored work is now the oldest in the fleet: bring it up at its
    // restart time before stepping it.
    if (down_[who] != 0) {
      engines_[who].advance_to(std::max(engines_[who].now(),
                                        down_until_[who]));
      down_[who] = 0;
    }

    // Step the frontier replica one iteration. The horizon caps its idle
    // jumps at the next unrouted arrival (which it cannot see in its own
    // pending queue), at its own next not-yet-fired outage start, and at
    // its not-yet-fired crash instant, so the loop-top fault probes land
    // exactly on the window/crash edge.
    double horizon = ta;
    const ReplicaFaultPlan& w = config_.engine.faults.replicas[who];
    if (next_window_[who] < w.outages.size() &&
        w.outages[next_window_[who]].start_s > engines_[who].now()) {
      horizon = std::min(horizon, w.outages[next_window_[who]].start_s);
    }
    if (crash_fired_[who] == 0 && w.crash_enabled() &&
        w.crash_at_s > engines_[who].now()) {
      horizon = std::min(horizon, w.crash_at_s);
    }
    engines_[who].step(horizon);

    // Periodic crash-consistent snapshot: once the replica's clock
    // passes the per-replica cadence, serialize its scheduler + KV state
    // into the fleet store (fault-injectable save — the store may drop
    // it, leaving the previous snapshot in place).
    if (config_.snapshot_interval_s > 0.0 &&
        engines_[who].now() >=
            last_snapshot_[who] + config_.snapshot_interval_s) {
      engines_[who].snapshot_to(snapshots_, &fleet_fault_);
      last_snapshot_[who] = engines_[who].now();
    }
  }

  // The loop-top handoff poll runs before every break, down replicas
  // lift their queues inside drain(), and no engine steps between the
  // poll and a break — so no finished prefill can be stranded in a
  // handoff queue at exit.
  for (std::size_t i = 0; i < n; ++i) {
    TURBO_CHECK_MSG(engines_[i].take_prefilled().empty(),
                    "a finished prefill was stranded at shutdown");
  }

  // Teardown leaves no recovery state behind: snapshots are operational
  // scratch, not results, so the store must drain to empty with them.
  for (std::size_t i = 0; i < n; ++i) snapshots_.erase(i);
  TURBO_CHECK_MSG(snapshots_.count() == 0,
                  "fleet teardown left snapshots behind");

  // Finalize: per-replica results, the fleet union, and the invariants
  // the whole subsystem exists to uphold. Crashed incarnations
  // contribute their pre-crash terminal requests to the union; their
  // in-flight work moved into the replacement engine at restore time.
  result_.replica_count = n;
  result_.prefill_replica_count = config_.prefill_replicas;
  bool any_limit = next < trace.size();
  result_.replica_results.reserve(n + crashed_results_.size());
  for (std::size_t i = 0; i < n; ++i) {
    serving::EngineResult er = engines_[i].finish();
    result_.makespan_s = std::max(result_.makespan_s, er.makespan_s);
    any_limit = any_limit || er.hit_time_limit;
    for (const serving::Request& r : er.requests) {
      result_.requests.push_back(r);
    }
    result_.replica_results.push_back(std::move(er));
  }
  for (serving::EngineResult& er : crashed_results_) {
    any_limit = any_limit || er.hit_time_limit;
    for (const serving::Request& r : er.requests) {
      result_.requests.push_back(r);
    }
    result_.replica_results.push_back(std::move(er));
  }
  crashed_results_.clear();
  // Arrivals the safety stop stranded before routing: still accounted
  // for, still kPending.
  for (; next < trace.size(); ++next) {
    result_.requests.push_back(trace[next]);
  }
  result_.hit_time_limit = any_limit;

  // Exactly-one-terminal-state across the fleet: every trace request
  // appears exactly once in the union (drained requests moved — not
  // copied — between replicas), and each is terminal unless the safety
  // stop fired. Requires unique request ids, which the swap-stream key
  // namespace already demands.
  TURBO_CHECK_MSG(result_.requests.size() == trace.size(),
                  "fleet lost or duplicated a request");
  std::vector<std::uint64_t> ids;
  ids.reserve(result_.requests.size());
  for (const serving::Request& r : result_.requests) ids.push_back(r.id);
  std::sort(ids.begin(), ids.end());
  TURBO_CHECK_MSG(std::adjacent_find(ids.begin(), ids.end()) == ids.end(),
                  "a request reached more than one terminal state");
  if (!result_.hit_time_limit) {
    for (const serving::Request& r : result_.requests) {
      TURBO_CHECK_MSG(r.outcome != serving::Outcome::kPending,
                      "a request finished the run without a terminal state");
    }
  }
  return std::move(result_);
}

FleetResult run_fleet(const FleetConfig& config,
                      std::vector<serving::Request> trace) {
  Router router(config);
  return router.run(std::move(trace));
}

}  // namespace turbo::fleet
