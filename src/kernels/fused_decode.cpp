#include "kernels/fused_decode.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "quant/packing.h"
#include "quant/symmetric.h"

namespace turbo {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

struct State {
  float m = kNegInf;
  float l = 0.0f;
  std::vector<float> o;
  explicit State(std::size_t d) : o(d, 0.0f) {}
};

// Shared online-softmax tail once the scores s[] of a chunk are known:
// computes P~, rescales the accumulator, and returns the INT8-quantized
// P~ with its scale through the out-parameters.
void softmax_update(State& state, std::span<float> s, const Sas& sas,
                    std::vector<std::int32_t>& p_q, float& o_scale,
                    float v_scale) {
  float block_max = kNegInf;
  for (float v : s) block_max = std::max(block_max, v);
  const float m_new = std::max(state.m, block_max);
  const float alpha = state.m == kNegInf ? 0.0f : sas.exp_neg(state.m - m_new);

  float p_max = 0.0f;
  float row_sum = 0.0f;
  for (float& v : s) {
    v = sas.exp_neg(v - m_new);
    row_sum += v;
    p_max = std::max(p_max, v);
  }
  if (alpha != 1.0f) {
    for (float& v : state.o) v *= alpha;
  }
  state.l = state.l * alpha + row_sum;
  state.m = m_new;

  const float p_scale = p_max > 0.0f ? p_max / kSymmetricHeadroom : 1.0f;
  const float inv_p = 1.0f / p_scale;
  p_q.resize(s.size());
  for (std::size_t t = 0; t < s.size(); ++t) {
    const float scaled = std::nearbyint(s[t] * inv_p);
    p_q[t] = static_cast<std::int32_t>(std::clamp(scaled, 0.0f, 127.0f));
  }
  o_scale = p_scale * v_scale;
}

// One packed block, consumed channel-by-channel without materializing the
// INT8 K/V. Channel-major accumulation is integer for S (order-invariant)
// and matches the reference path's per-channel float add order for O, so
// results are bit-identical to the reference kernel.
void absorb_packed(State& state, std::span<const std::int8_t> q_q1,
                   float q_scale, const KvBlock& block, float attn_scale,
                   const Sas& sas, std::vector<std::uint8_t>& code_buf,
                   std::vector<std::int32_t>& acc,
                   std::vector<float>& s, std::vector<std::int32_t>& p_q,
                   std::size_t mask_before) {
  const std::size_t tokens = block.k.rows;
  const std::size_t d = block.k.cols;
  TURBO_DCHECK(q_q1.size() == d);

  // --- S = s_q * s_k * q^q1 K^q1T -----------------------------------------
  // One unpack pass per tensor (codes stay uint8; no INT8 K/V matrix, no
  // separate dequantization pass); the second stage is applied in
  // registers as each code is consumed.
  acc.assign(tokens, 0);
  code_buf.resize(tokens * d);
  unpack_codes(block.k.packed, block.k.bits, tokens * d, code_buf);
  for (std::size_t c = 0; c < d; ++c) {
    const std::int32_t qx = q_q1[c];
    if (qx == 0) continue;
    const std::uint8_t* codes = code_buf.data() + c * tokens;
    const std::int32_t sc = block.k.channels[c].s_int;
    const std::int32_t z = block.k.channels[c].z_int;
    for (std::size_t t = 0; t < tokens; ++t) {
      const std::int32_t k_q1 = std::clamp<std::int32_t>(
          static_cast<std::int32_t>(codes[t]) * sc + z, -127, 127);
      acc[t] += qx * k_q1;
    }
  }
  const float s_scale = q_scale * block.k.fp_scale * attn_scale;
  s.resize(tokens);
  for (std::size_t t = 0; t < tokens; ++t) {
    s[t] = t < mask_before ? kNegInf
                           : static_cast<float>(acc[t]) * s_scale;
  }

  float o_scale = 1.0f;
  softmax_update(state, s, sas, p_q, o_scale, block.v.fp_scale);

  // --- O += o_scale * P~ V^q1 ---------------------------------------------
  unpack_codes(block.v.packed, block.v.bits, tokens * d, code_buf);
  for (std::size_t c = 0; c < d; ++c) {
    const std::uint8_t* codes = code_buf.data() + c * tokens;
    const std::int32_t sc = block.v.channels[c].s_int;
    const std::int32_t z = block.v.channels[c].z_int;
    float out = state.o[c];
    for (std::size_t t = 0; t < tokens; ++t) {
      const std::int32_t pv = p_q[t];
      if (pv == 0) continue;
      const std::int32_t v_q1 = std::clamp<std::int32_t>(
          static_cast<std::int32_t>(codes[t]) * sc + z, -127, 127);
      out += static_cast<float>(pv * v_q1) * o_scale;
    }
    state.o[c] = out;
  }
}

// Buffered tail: INT8 rows under the universal scales (row-major already).
void absorb_buffer(State& state, std::span<const std::int8_t> q_q1,
                   float q_scale, const DecodeBuffer& kb,
                   const DecodeBuffer& vb, float attn_scale, const Sas& sas,
                   std::vector<float>& s, std::vector<std::int32_t>& p_q,
                   std::size_t mask_before) {
  const std::size_t tokens = kb.size();
  const std::size_t d = kb.dim();
  s.resize(tokens);
  const float s_scale = q_scale * kb.scale() * attn_scale;
  for (std::size_t t = 0; t < tokens; ++t) {
    if (t < mask_before) {
      s[t] = kNegInf;
      continue;
    }
    auto kr = kb.tokens().row(t);
    std::int32_t acc = 0;
    for (std::size_t x = 0; x < d; ++x) {
      acc += static_cast<std::int32_t>(q_q1[x]) *
             static_cast<std::int32_t>(kr[x]);
    }
    s[t] = static_cast<float>(acc) * s_scale;
  }
  float o_scale = 1.0f;
  softmax_update(state, s, sas, p_q, o_scale, vb.scale());
  for (std::size_t t = 0; t < tokens; ++t) {
    const std::int32_t pv = p_q[t];
    if (pv == 0) continue;
    auto vr = vb.tokens().row(t);
    for (std::size_t x = 0; x < d; ++x) {
      state.o[x] += static_cast<float>(
                        pv * static_cast<std::int32_t>(vr[x])) *
                    o_scale;
    }
  }
}

}  // namespace

std::vector<float> fused_turbo_decode(
    std::span<const float> q, std::span<const KvBlock* const> blocks,
    const DecodeBuffer& key_buffer, const DecodeBuffer& value_buffer,
    const AttentionConfig& cfg, const Sas& sas) {
  const std::size_t d = key_buffer.dim();
  TURBO_CHECK(q.size() == d);
  TURBO_CHECK_MSG(!blocks.empty() || !key_buffer.empty(),
                  "decode against an empty cache");
  const float attn_scale = cfg.effective_scale(d);

  const float q_scale = symmetric_scale_int8(q);
  std::vector<std::int8_t> q_q1(d);
  quantize_symmetric_int8(q, q_scale, q_q1);

  State state(d);
  std::vector<std::uint8_t> code_buf;
  std::vector<std::int32_t> acc;
  std::vector<float> s;
  std::vector<std::int32_t> p_q;

  // Sliding window: skip blocks fully outside, mask the boundary block.
  std::size_t total = key_buffer.size();
  for (const KvBlock* block : blocks) total += block->tokens();
  const std::size_t win_start =
      cfg.window > 0 && total > cfg.window ? total - cfg.window : 0;

  std::size_t pos = 0;
  for (const KvBlock* block : blocks) {
    const std::size_t end = pos + block->tokens();
    if (end <= win_start) {
      pos = end;
      continue;
    }
    const std::size_t mask = win_start > pos ? win_start - pos : 0;
    absorb_packed(state, q_q1, q_scale, *block, attn_scale, sas, code_buf,
                  acc, s, p_q, mask);
    pos = end;
  }
  if (!key_buffer.empty()) {
    const std::size_t mask = win_start > pos ? win_start - pos : 0;
    absorb_buffer(state, q_q1, q_scale, key_buffer, value_buffer, attn_scale,
                  sas, s, p_q, mask);
  }

  TURBO_CHECK_MSG(state.l > 0.0f, "decode query attended no keys");
  const float inv = 1.0f / state.l;
  for (float& v : state.o) v *= inv;
  return std::move(state.o);
}

std::vector<float> fused_turbo_decode(std::span<const float> q,
                                      const QuantizedKvCache& cache,
                                      const AttentionConfig& cfg,
                                      const Sas& sas) {
  TURBO_CHECK_MSG(cache.token_count() > 0, "decode against an empty cache");
  std::vector<const KvBlock*> blocks;
  blocks.reserve(cache.block_count());
  for (std::size_t j = 0; j < cache.block_count(); ++j) {
    blocks.push_back(&cache.block(j));
  }
  return fused_turbo_decode(q, blocks, cache.key_buffer(),
                            cache.value_buffer(), cfg, sas);
}

}  // namespace turbo
