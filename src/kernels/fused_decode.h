// Fused TurboAttention decode kernel.
//
// The reference decode path (attention/turbo_decode.cpp) materializes each
// block's INT8 K/V before the integer matmuls — clear, but it spends its
// time writing and re-reading a scratch matrix. The GPU kernel never does
// that: codes are unpacked in registers and consumed immediately. This is
// the CPU analogue: one pass per block that
//
//   * unpacks INT4/2 codes channel by channel,
//   * applies the integer second stage (q2 * s_int + z_int) in registers,
//   * accumulates the q.K dot products and the P~.V products directly,
//
// producing bit-identical results to the reference path (same arithmetic,
// same order) at a fraction of the memory traffic. bench_kernels measures
// the speedup; the equivalence test pins the exactness.
#pragma once

#include <span>
#include <vector>

#include "attention/config.h"
#include "kvcache/decode_buffer.h"
#include "kvcache/quantized_kv_cache.h"
#include "softmax/sas.h"

namespace turbo {

// Drop-in equivalent of turbo_attention_decode (block-view overload).
std::vector<float> fused_turbo_decode(
    std::span<const float> q, std::span<const KvBlock* const> blocks,
    const DecodeBuffer& key_buffer, const DecodeBuffer& value_buffer,
    const AttentionConfig& cfg, const Sas& sas);

// Convenience over a monolithic cache.
std::vector<float> fused_turbo_decode(std::span<const float> q,
                                      const QuantizedKvCache& cache,
                                      const AttentionConfig& cfg,
                                      const Sas& sas);

}  // namespace turbo
