#include "tasks/retrieval.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "model/generator.h"
#include "tasks/codebook.h"

namespace turbo::tasks {

namespace {

// Draw a unit vector in the head's *scaled* space: a Gaussian direction
// with the channel multipliers applied, then normalized. Outlier channels
// thus carry most of the vector's energy, as they do in real K/Q tensors.
std::vector<float> scaled_unit(Rng& rng, std::span<const float> scales) {
  std::vector<float> v(scales.size());
  double norm_sq = 0.0;
  for (std::size_t c = 0; c < v.size(); ++c) {
    v[c] = static_cast<float>(rng.normal()) * scales[c];
    norm_sq += static_cast<double>(v[c]) * static_cast<double>(v[c]);
  }
  const float inv = static_cast<float>(1.0 / std::sqrt(std::max(norm_sq, 1e-30)));
  for (float& x : v) x *= inv;
  return v;
}

std::vector<float> mix_directions(std::span<const float> a, double wa,
                                  std::span<const float> b, double wb) {
  std::vector<float> v(a.size());
  double norm_sq = 0.0;
  for (std::size_t c = 0; c < a.size(); ++c) {
    v[c] = static_cast<float>(wa * static_cast<double>(a[c]) +
                              wb * static_cast<double>(b[c]));
    norm_sq += static_cast<double>(v[c]) * static_cast<double>(v[c]);
  }
  const float inv = static_cast<float>(1.0 / std::sqrt(std::max(norm_sq, 1e-30)));
  for (float& x : v) x *= inv;
  return v;
}

// Per-head task materials for one case.
struct HeadCase {
  MatrixF k;                              // [context x d]
  MatrixF v;                              // [context x d]
  std::vector<std::vector<float>> pair_dir;  // target key direction per pair
};

struct CaseData {
  std::vector<HeadCase> heads;
  std::vector<std::size_t> perm;  // the chain: symbol s -> perm[s]
  std::size_t start = 0;
};

CaseData build_case(const RetrievalConfig& cfg,
                    const std::vector<std::vector<float>>& qk_scales,
                    const std::vector<std::vector<float>>& v_scales,
                    const std::vector<Codebook>& codebooks,
                    std::uint64_t case_seed) {
  const std::size_t n_heads = cfg.profile.heads;
  const std::size_t d = cfg.profile.head_dim;
  const std::size_t context = cfg.context_tokens();
  const float kappa = static_cast<float>(
      std::sqrt(cfg.key_sharpness) * std::pow(static_cast<double>(d), 0.25));

  Rng rng(case_seed);

  CaseData data;
  data.perm.resize(cfg.n_pairs);
  std::iota(data.perm.begin(), data.perm.end(), 0);
  rng.shuffle(std::span<std::size_t>(data.perm));
  data.start = rng.uniform_index(cfg.n_pairs);

  // Token order is shared across heads (positions are a property of the
  // prompt, not of a head). Facts occupy the leading region; the trailing
  // `tail_filler` positions hold boilerplate.
  std::vector<std::size_t> order(cfg.fact_tokens());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<std::size_t>(order));

  // A token has one identity: the decoy symbol carried by each hard
  // negative is decided once and shared across heads. This is what makes
  // per-head retrieval errors *correlated* — when quantization noise
  // promotes a decoy, every head that misfires leans toward the same wrong
  // answer, exactly like a real model misreading a token.
  std::vector<std::vector<std::size_t>> decoy_symbols(cfg.n_pairs);
  for (std::size_t pair = 0; pair < cfg.n_pairs; ++pair) {
    decoy_symbols[pair].resize(cfg.hard_negatives);
    for (std::size_t neg = 0; neg < cfg.hard_negatives; ++neg) {
      std::size_t decoy = rng.uniform_index(cfg.n_pairs);
      if (decoy == data.perm[pair]) decoy = (decoy + 1) % cfg.n_pairs;
      decoy_symbols[pair][neg] = decoy;
    }
  }

  data.heads.resize(n_heads);
  for (std::size_t h = 0; h < n_heads; ++h) {
    HeadCase& hc = data.heads[h];
    hc.k = MatrixF(context, d);
    hc.v = MatrixF(context, d);
    hc.pair_dir.resize(cfg.n_pairs);

    const auto& qs = qk_scales[h];
    const auto& vs = v_scales[h];
    const Codebook& cb = codebooks[h];

    std::size_t slot = 0;
    for (std::size_t pair = 0; pair < cfg.n_pairs; ++pair) {
      hc.pair_dir[pair] = scaled_unit(rng, qs);
      const std::size_t answer = data.perm[pair];

      // Target token.
      {
        const std::size_t pos = order[slot++];
        auto krow = hc.k.row(pos);
        auto vrow = hc.v.row(pos);
        auto emb = cb.embedding(answer);
        for (std::size_t c = 0; c < d; ++c) {
          krow[c] = hc.pair_dir[pair][c] * kappa;
          vrow[c] = emb[c] * vs[c];
        }
      }
      // Hard negatives: similar keys, different values.
      const double sim = cfg.negative_similarity;
      const double orth = std::sqrt(std::max(0.0, 1.0 - sim * sim));
      for (std::size_t neg = 0; neg < cfg.hard_negatives; ++neg) {
        const std::size_t pos = order[slot++];
        const std::vector<float> r = scaled_unit(rng, qs);
        const std::vector<float> dir =
            mix_directions(hc.pair_dir[pair], sim, r, orth);
        const std::size_t decoy = decoy_symbols[pair][neg];
        auto krow = hc.k.row(pos);
        auto vrow = hc.v.row(pos);
        auto emb = cb.embedding(decoy);
        for (std::size_t c = 0; c < d; ++c) {
          krow[c] = dir[c] * kappa;
          vrow[c] = emb[c] * vs[c];
        }
      }
    }
    TURBO_CHECK(slot == cfg.fact_tokens());

    // Boilerplate tail: filler-strength keys, near-zero values.
    for (std::size_t pos = cfg.fact_tokens(); pos < context; ++pos) {
      const std::vector<float> dir = scaled_unit(rng, qs);
      auto krow = hc.k.row(pos);
      auto vrow = hc.v.row(pos);
      for (std::size_t c = 0; c < d; ++c) {
        krow[c] = dir[c] * kappa * 0.7f;
        vrow[c] = static_cast<float>(rng.normal(0.0, 0.05));
      }
    }

    if (cfg.input_noise > 0.0) {
      // Upstream quantization noise: perturb the cached K/V the way W8A8 /
      // W4A8 linear quantization perturbs projection outputs.
      const double noise_kappa = std::sqrt(cfg.key_sharpness) *
                                 std::pow(static_cast<double>(d), 0.25);
      for (float& x : hc.k.flat()) {
        x += static_cast<float>(rng.normal(
            0.0, cfg.input_noise * noise_kappa /
                     std::sqrt(static_cast<double>(d))));
      }
      for (float& x : hc.v.flat()) {
        x += static_cast<float>(rng.normal(0.0, cfg.input_noise));
      }
    }
  }
  return data;
}

}  // namespace

TaskResult run_retrieval(const RetrievalConfig& config,
                         const KvAttentionFactory& factory) {
  TURBO_CHECK(config.n_pairs > 1);
  TURBO_CHECK(config.hops >= 1);
  const std::size_t n_heads = config.profile.heads;
  const std::size_t d = config.profile.head_dim;
  const float kappa = static_cast<float>(
      std::sqrt(config.key_sharpness) *
      std::pow(static_cast<double>(d), 0.25));

  // Head-level materials shared across cases.
  std::vector<std::vector<float>> qk_scales(n_heads);
  std::vector<std::vector<float>> v_scales(n_heads);
  std::vector<Codebook> codebooks;
  codebooks.reserve(n_heads);
  for (std::size_t h = 0; h < n_heads; ++h) {
    qk_scales[h] =
        model::channel_scales(config.profile, h,
                              model::TensorKind::kQueryKey, config.seed);
    v_scales[h] = model::channel_scales(config.profile, h,
                                        model::TensorKind::kValue,
                                        config.seed);
    codebooks.emplace_back(config.n_pairs, d, config.seed + 31 * h);
  }

  TaskResult result;
  result.cases = config.n_cases;
  std::size_t correct = 0;
  double bytes_sum = 0.0;
  std::size_t bytes_samples = 0;

  for (std::size_t case_idx = 0; case_idx < config.n_cases; ++case_idx) {
    const std::uint64_t case_seed = config.seed * 1000003 + case_idx;
    const CaseData data =
        build_case(config, qk_scales, v_scales, codebooks, case_seed);

    // Fresh method instance per head.
    std::vector<std::unique_ptr<KvAttention>> methods;
    methods.reserve(n_heads);
    for (std::size_t h = 0; h < n_heads; ++h) {
      methods.push_back(factory(d));
      // Prefill queries are irrelevant to the task: reuse the keys so the
      // magnitudes are realistic.
      methods[h]->prefill(data.heads[h].k, data.heads[h].k,
                          data.heads[h].v);
    }

    Rng rng(case_seed ^ 0xfeedfaceull);
    std::size_t current = data.start;
    for (std::size_t hop = 0; hop < config.hops; ++hop) {
      // "Thinking" tokens between retrievals.
      for (std::size_t f = 0; f < config.filler_per_hop; ++f) {
        for (std::size_t h = 0; h < n_heads; ++h) {
          std::vector<float> fk = scaled_unit(rng, qk_scales[h]);
          for (float& x : fk) x *= kappa * 0.7f;
          std::vector<float> fv(d);
          for (float& x : fv) x = static_cast<float>(rng.normal(0.0, 0.05));
          std::vector<float> fq = scaled_unit(rng, qk_scales[h]);
          for (float& x : fq) x *= kappa * 0.7f;
          methods[h]->decode(fq, fk, fv);
        }
      }

      // The retrieval query for the current pair. A small *reader set*
      // carries this hop's retrieval (cycling across hops and cases):
      // real models route each reasoning step through specific retrieval
      // heads rather than a full-width vote, so accuracy stays sensitive
      // to per-head cache damage while retaining partial redundancy.
      const std::size_t n_readers =
          std::min<std::size_t>(std::max<std::size_t>(1,
                                                      config.reading_heads),
                                n_heads);
      const std::size_t reader_base =
          (case_idx * config.hops + hop) * n_readers;
      std::vector<bool> is_reader(n_heads, false);
      for (std::size_t r = 0; r < n_readers; ++r) {
        is_reader[(reader_base + r) % n_heads] = true;
      }
      std::vector<double> symbol_score(config.n_pairs, 0.0);
      for (std::size_t h = 0; h < n_heads; ++h) {
        const std::vector<float> noise = scaled_unit(rng, qk_scales[h]);
        std::vector<float> q = mix_directions(
            data.heads[h].pair_dir[current], 1.0, noise, config.query_noise);
        for (float& x : q) x *= kappa;
        // The query token itself joins the cache like any generated token.
        std::vector<float> qv(d);
        for (float& x : qv) x = static_cast<float>(rng.normal(0.0, 0.05));
        const std::vector<float> o = methods[h]->decode(q, q, qv);
        if (!is_reader[h]) continue;  // cache stays in sync regardless
        // Decode in a half-normalized embedding space (divide by the
        // square root of the channel scale — the partial re-equalization a
        // LayerNorm + learned output projection applies). Two effects stay
        // alive simultaneously: token-wise value quantization error (set
        // by the row's outlier-dominated range) is amplified on normal
        // channels — the Fig. 10 / Appendix D mechanism — and heads with
        // large-magnitude value channels still inject more absolute error,
        // the fragility signal priority-based head selection exploits.
        std::vector<float> o_dec(d);
        std::vector<float> dec_scale(d);
        for (std::size_t c = 0; c < d; ++c) {
          const float root = std::sqrt(v_scales[h][c]);
          o_dec[c] = o[c] / root;
          dec_scale[c] = root;  // embeddings compared at sqrt(scale)
        }
        for (std::size_t s = 0; s < config.n_pairs; ++s) {
          symbol_score[s] += codebooks[h].distance_sq(o_dec, s, dec_scale);
        }
      }
      // Joint decode: lowest total distance across heads.
      std::size_t decoded = 0;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < config.n_pairs; ++s) {
        if (symbol_score[s] < best) {
          best = symbol_score[s];
          decoded = s;
        }
      }
      current = decoded;  // follow the (possibly wrong) chain
    }

    // Ground truth: perm applied `hops` times to the start.
    std::size_t truth = data.start;
    for (std::size_t hop = 0; hop < config.hops; ++hop) {
      truth = data.perm[truth];
    }
    if (current == truth) ++correct;

    for (const auto& m : methods) {
      bytes_sum += static_cast<double>(m->kv_cache_bytes()) /
                   static_cast<double>(m->token_count());
      ++bytes_samples;
    }
  }

  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(config.n_cases);
  result.kv_bytes_per_token =
      bytes_samples == 0 ? 0.0 : bytes_sum / static_cast<double>(bytes_samples);
  return result;
}

std::vector<HeadStats> retrieval_head_stats(const RetrievalConfig& config) {
  const std::size_t n_heads = config.profile.heads;
  std::vector<std::vector<float>> qk_scales(n_heads);
  std::vector<std::vector<float>> v_scales(n_heads);
  std::vector<Codebook> codebooks;
  for (std::size_t h = 0; h < n_heads; ++h) {
    qk_scales[h] =
        model::channel_scales(config.profile, h,
                              model::TensorKind::kQueryKey, config.seed);
    v_scales[h] = model::channel_scales(config.profile, h,
                                        model::TensorKind::kValue,
                                        config.seed);
    codebooks.emplace_back(config.n_pairs, config.profile.head_dim,
                           config.seed + 31 * h);
  }
  const CaseData data = build_case(config, qk_scales, v_scales, codebooks,
                                   config.seed * 1000003);
  std::vector<HeadStats> stats(n_heads);
  for (std::size_t h = 0; h < n_heads; ++h) {
    stats[h] = combine_head_stats(compute_head_stats(data.heads[h].k),
                                  compute_head_stats(data.heads[h].v));
  }
  return stats;
}

RetrievalConfig gsm8k_proxy(model::ModelProfile profile) {
  RetrievalConfig c;
  c.name = "GSM8k-proxy";
  c.profile = std::move(profile);
  c.n_pairs = 32;
  c.hard_negatives = 3;
  c.negative_similarity = 0.86;
  c.hops = 4;               // multi-step arithmetic chains
  c.filler_per_hop = 16;
  c.n_cases = 32;
  c.query_noise = 0.15;
  c.key_sharpness = 8.0;
  c.seed = 811;
  return c;
}

RetrievalConfig aqua_proxy(model::ModelProfile profile) {
  RetrievalConfig c;
  c.name = "AQuA-proxy";
  c.profile = std::move(profile);
  c.n_pairs = 24;
  c.hard_negatives = 4;     // more confusable options
  c.negative_similarity = 0.86;
  c.hops = 3;
  c.filler_per_hop = 16;
  c.n_cases = 32;
  c.query_noise = 0.15;
  c.key_sharpness = 8.0;
  c.seed = 812;
  return c;
}

RetrievalConfig bbh_proxy(model::ModelProfile profile) {
  RetrievalConfig c;
  c.name = "BBH-proxy";
  c.profile = std::move(profile);
  c.n_pairs = 24;
  c.hard_negatives = 5;     // symbolic matching over many decoys
  c.negative_similarity = 0.89;
  c.hops = 1;
  c.filler_per_hop = 8;
  c.n_cases = 32;
  c.query_noise = 0.12;
  c.key_sharpness = 8.0;
  c.seed = 813;
  return c;
}

}  // namespace turbo::tasks
