// Symbol codebook: the "vocabulary" of the proxy tasks.
//
// Each symbol is a random near-orthogonal unit vector per head. Attention
// outputs are decoded back to symbols by nearest-neighbor search — the
// stand-in for the LM head's argmax in a real model. Decoding fails
// exactly when attention-output error exceeds half the codeword distance,
// which is what makes proxy-task accuracy a faithful probe of attention
// fidelity.
#pragma once

#include <cstdint>
#include <span>

#include "common/matrix.h"

namespace turbo::tasks {

class Codebook {
 public:
  Codebook(std::size_t n_symbols, std::size_t dim, std::uint64_t seed);

  std::size_t size() const { return embeddings_.rows(); }
  std::size_t dim() const { return embeddings_.cols(); }

  std::span<const float> embedding(std::size_t symbol) const;

  // Symbol whose embedding is closest (L2) to `v`.
  std::size_t nearest(std::span<const float> v) const;

  // Squared L2 distance from `v` to a symbol's embedding, optionally with
  // per-channel scaling of the embedding (values are stored channel-scaled
  // in the cache, so decode compares in the scaled space).
  double distance_sq(std::span<const float> v, std::size_t symbol,
                     std::span<const float> channel_scale = {}) const;

 private:
  MatrixF embeddings_;  // [n_symbols x dim], unit rows
};

}  // namespace turbo::tasks
