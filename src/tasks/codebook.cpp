#include "tasks/codebook.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"

namespace turbo::tasks {

Codebook::Codebook(std::size_t n_symbols, std::size_t dim,
                   std::uint64_t seed)
    : embeddings_(n_symbols, dim) {
  TURBO_CHECK(n_symbols > 0 && dim > 0);
  Rng rng(seed);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    auto row = embeddings_.row(s);
    double norm_sq = 0.0;
    for (float& v : row) {
      v = static_cast<float>(rng.normal());
      norm_sq += static_cast<double>(v) * static_cast<double>(v);
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (float& v : row) v *= inv;
  }
}

std::span<const float> Codebook::embedding(std::size_t symbol) const {
  TURBO_CHECK(symbol < size());
  return embeddings_.row(symbol);
}

double Codebook::distance_sq(std::span<const float> v, std::size_t symbol,
                             std::span<const float> channel_scale) const {
  TURBO_CHECK(v.size() == dim());
  auto e = embeddings_.row(symbol);
  double acc = 0.0;
  for (std::size_t c = 0; c < v.size(); ++c) {
    const double scaled = channel_scale.empty()
                              ? static_cast<double>(e[c])
                              : static_cast<double>(e[c] * channel_scale[c]);
    const double d = static_cast<double>(v[c]) - scaled;
    acc += d * d;
  }
  return acc;
}

std::size_t Codebook::nearest(std::span<const float> v) const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < size(); ++s) {
    const double d = distance_sq(v, s);
    if (d < best_d) {
      best_d = d;
      best = s;
    }
  }
  return best;
}

}  // namespace turbo::tasks
