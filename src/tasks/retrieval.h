// Multi-hop retrieval: the proxy for the paper's generative CoT benchmarks.
//
// Why this task: GSM8k/AQuA/BBH accuracy in the paper is a generative
// exact-match score whose failure mode under KV quantization is attention
// misreading the context — retrieving the wrong intermediate fact, with
// errors compounding across reasoning steps. This engine distills exactly
// that mechanism:
//
//   * The prompt is a set of (key, value) pairs per attention head, with
//     hard negatives (keys at cosine `negative_similarity` to a target,
//     carrying different values) and the profile's channel-outlier
//     structure on K/Q and V.
//   * Answering requires `hops` chained retrievals: the value decoded at
//     hop i names the pair to query at hop i+1 (a permutation walk). One
//     misretrieval anywhere corrupts the final answer — the CoT
//     error-compounding property.
//   * Between hops the model "thinks": `filler_per_hop` decode tokens are
//     appended, exercising the decode buffer / cache-growth machinery the
//     way 256-token CoT generations do.
//   * Decoding is a joint nearest-neighbor over all heads' outputs, so
//     per-head quantization damage degrades accuracy gracefully and
//     head-wise mixed precision has the trade-off surface of Fig. 7b.
//
// GSM8k / AQuA / BBH map to parameter presets (hops, negatives, context
// size) documented in DESIGN.md; absolute accuracies are not comparable to
// the paper's, but the ordering and gaps across methods probe the same
// mechanism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attention/headwise.h"
#include "attention/method.h"
#include "model/profile.h"

namespace turbo::tasks {

struct RetrievalConfig {
  std::string name = "retrieval";
  model::ModelProfile profile;  // heads, head_dim, outlier structure

  std::size_t n_pairs = 48;          // retrievable facts in the context
  std::size_t hard_negatives = 3;    // decoy keys per fact
  // Trailing boilerplate tokens after the facts (the question/instruction
  // tail of a CoT prompt). Keeps the facts out of the float-residual
  // window that KIVI/GEAR hold over the most recent tokens — in the paper
  // that window is ~6% of a 1k prompt; without a tail it would cover half
  // of our scaled-down contexts.
  std::size_t tail_filler = 96;
  double negative_similarity = 0.8;  // cosine of decoys to their target
  std::size_t hops = 4;              // chained retrievals per case
  // Heads whose outputs decode each hop's answer (cycling subset). Real
  // retrieval rides on a few heads per step, not a full-width vote: a
  // small reader set keeps accuracy sensitive to per-head cache damage
  // while leaving the partial redundancy that makes half-the-heads-2-bit
  // survivable (Table 2's mixed row).
  std::size_t reading_heads = 3;
  std::size_t filler_per_hop = 16;   // decode "thinking" tokens per hop
  std::size_t n_cases = 24;
  double query_noise = 0.12;         // perturbation of hop queries
  double key_sharpness = 8.0;        // target raw attention score
  // Gaussian noise on every K/V element (relative to kappa for keys,
  // absolute for unit-scale values): models upstream weight/activation
  // quantization (LLM.int8(), QServe) for the Table 5 composition study.
  double input_noise = 0.0;
  std::uint64_t seed = 1;

  std::size_t fact_tokens() const { return n_pairs * (1 + hard_negatives); }
  std::size_t context_tokens() const { return fact_tokens() + tail_filler; }
};

struct TaskResult {
  double accuracy = 0;            // exact-match over cases
  double kv_bytes_per_token = 0;  // measured on the method's cache
  std::size_t cases = 0;
};

// Run the task with one KvAttention instance per head built from `factory`
// (a fresh set per case).
TaskResult run_retrieval(const RetrievalConfig& config,
                         const KvAttentionFactory& factory);

// Per-head K/V statistics of this task's generated context (for the
// head-wise selection experiments). Deterministic in config.seed.
std::vector<HeadStats> retrieval_head_stats(const RetrievalConfig& config);

// Proxy presets. The model profile supplies the distributional structure;
// the task parameters mirror the benchmark character: multi-step math
// (GSM8k: long chains), harder multi-step with more confusable options
// (AQuA), single-step symbolic matching over many choices (BBH).
RetrievalConfig gsm8k_proxy(model::ModelProfile profile);
RetrievalConfig aqua_proxy(model::ModelProfile profile);
RetrievalConfig bbh_proxy(model::ModelProfile profile);

}  // namespace turbo::tasks
