#include "linear/quantized_linear.h"

#include <cmath>

#include "common/check.h"
#include "quant/symmetric.h"

namespace turbo::linear {

QuantizedLinear::QuantizedLinear(const MatrixF& weights, WeightScheme scheme)
    : in_features_(weights.cols()),
      out_features_(weights.rows()),
      scheme_(scheme),
      w_q_(weights.rows(), weights.cols()),
      row_scales_(weights.rows()) {
  TURBO_CHECK(weights.rows() > 0 && weights.cols() > 0);

  // Stage 1: symmetric INT8 per output channel.
  for (std::size_t r = 0; r < out_features_; ++r) {
    const float scale = symmetric_scale_int8(weights.row(r));
    row_scales_[r] = scale;
    quantize_symmetric_int8(weights.row(r), scale, w_q_.row(r));
  }
  packed_payload_bytes_ = out_features_ * in_features_;  // 1 B / weight

  if (scheme_ == WeightScheme::kW4) {
    // Stage 2: progressive INT8 -> INT4 (per output channel: the weight
    // rows play the role the KV channels play in FlashQ), then keep the
    // INT8 reconstruction for the forward pass.
    // Transpose so rows become "channels" of the progressive compressor.
    MatrixI8 wt(in_features_, out_features_);
    for (std::size_t r = 0; r < out_features_; ++r) {
      for (std::size_t c = 0; c < in_features_; ++c) {
        wt(c, r) = w_q_(r, c);
      }
    }
    const ProgressiveBlock block =
        progressive_compress(wt, 1.0f, BitWidth::kInt4);
    const MatrixI8 back = progressive_decompress_int8(block);
    for (std::size_t r = 0; r < out_features_; ++r) {
      for (std::size_t c = 0; c < in_features_; ++c) {
        w_q_(r, c) = back(c, r);
      }
    }
    packed_payload_bytes_ = block.payload_bytes() + block.metadata_bytes();
  }
}

MatrixF QuantizedLinear::forward(const MatrixF& x) const {
  TURBO_CHECK(x.cols() == in_features_);
  MatrixF out(x.rows(), out_features_);
  std::vector<std::int8_t> x_q(in_features_);
  for (std::size_t t = 0; t < x.rows(); ++t) {
    // Per-token symmetric INT8 activations (the A8 in W8A8/W4A8).
    const float x_scale = symmetric_scale_int8(x.row(t));
    quantize_symmetric_int8(x.row(t), x_scale, x_q);
    for (std::size_t r = 0; r < out_features_; ++r) {
      auto wr = w_q_.row(r);
      std::int32_t acc = 0;
      for (std::size_t c = 0; c < in_features_; ++c) {
        acc += static_cast<std::int32_t>(x_q[c]) *
               static_cast<std::int32_t>(wr[c]);
      }
      out(t, r) = static_cast<float>(acc) * x_scale * row_scales_[r];
    }
  }
  return out;
}

MatrixF QuantizedLinear::forward_dequantized(const MatrixF& x) const {
  return matmul_transposed(x, dequantized_weights());
}

MatrixF QuantizedLinear::dequantized_weights() const {
  MatrixF w(out_features_, in_features_);
  for (std::size_t r = 0; r < out_features_; ++r) {
    dequantize_symmetric_int8(w_q_.row(r), row_scales_[r], w.row(r));
  }
  return w;
}

std::size_t QuantizedLinear::memory_bytes() const {
  return packed_payload_bytes_ + row_scales_.size() * 2;  // FP16 scales
}

}  // namespace turbo::linear
