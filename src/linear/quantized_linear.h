// Quantized linear layers: the W8A8 / W4A8 projection substrate that
// LLM.int8() and QServe provide in the paper's Table 5 composition study.
//
// Weights are quantized per output channel (symmetric INT8, or QServe-style
// progressive INT4 with INT8 intermediates); activations per token
// (symmetric INT8). The forward pass is an integer matmul with one
// per-(token, channel) rescale — the standard W8A8 kernel. Having the real
// thing (instead of a noise model) lets the Table 5 reproduction measure
// the upstream error it composes with TurboAttention.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "quant/progressive.h"
#include "quant/types.h"

namespace turbo::linear {

enum class WeightScheme {
  kW8,  // LLM.int8()-style: symmetric INT8 per output channel
  kW4,  // QServe-style: progressive INT8 -> INT4 per output channel
};

// A quantized weight matrix for y = x W^T (W stored [out x in]).
class QuantizedLinear {
 public:
  // Quantize FP32 weights. For kW4 the second stage uses the same integer
  // scales/zero-points machinery as the KV cache.
  QuantizedLinear(const MatrixF& weights, WeightScheme scheme);

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }
  WeightScheme scheme() const { return scheme_; }

  // Quantized forward: per-token symmetric INT8 activation quantization,
  // INT8 integer matmul with INT32 accumulation, FP32 rescale.
  MatrixF forward(const MatrixF& x) const;

  // FP32 forward against the dequantized weights (for error attribution).
  MatrixF forward_dequantized(const MatrixF& x) const;

  // The effective (dequantized) weights.
  MatrixF dequantized_weights() const;

  // Stored bytes (payload + scales).
  std::size_t memory_bytes() const;

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  WeightScheme scheme_;
  // INT8 weight rows (for kW4 these are reconstructed at load; we keep the
  // reconstruction since CPU "registers" are free — memory accounting uses
  // the packed size).
  MatrixI8 w_q_;
  std::vector<float> row_scales_;     // per output channel
  std::size_t packed_payload_bytes_;  // what the device would store
};

}  // namespace turbo::linear
