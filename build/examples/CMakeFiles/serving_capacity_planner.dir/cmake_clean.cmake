file(REMOVE_RECURSE
  "CMakeFiles/serving_capacity_planner.dir/serving_capacity_planner.cpp.o"
  "CMakeFiles/serving_capacity_planner.dir/serving_capacity_planner.cpp.o.d"
  "serving_capacity_planner"
  "serving_capacity_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_capacity_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
