file(REMOVE_RECURSE
  "CMakeFiles/long_context_chat.dir/long_context_chat.cpp.o"
  "CMakeFiles/long_context_chat.dir/long_context_chat.cpp.o.d"
  "long_context_chat"
  "long_context_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_context_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
