# Empty dependencies file for long_context_chat.
# This may be replaced when dependencies are built.
