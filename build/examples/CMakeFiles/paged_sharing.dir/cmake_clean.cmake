file(REMOVE_RECURSE
  "CMakeFiles/paged_sharing.dir/paged_sharing.cpp.o"
  "CMakeFiles/paged_sharing.dir/paged_sharing.cpp.o.d"
  "paged_sharing"
  "paged_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paged_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
