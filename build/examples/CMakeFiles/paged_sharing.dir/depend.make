# Empty dependencies file for paged_sharing.
# This may be replaced when dependencies are built.
