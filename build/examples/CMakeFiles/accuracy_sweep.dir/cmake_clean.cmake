file(REMOVE_RECURSE
  "CMakeFiles/accuracy_sweep.dir/accuracy_sweep.cpp.o"
  "CMakeFiles/accuracy_sweep.dir/accuracy_sweep.cpp.o.d"
  "accuracy_sweep"
  "accuracy_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
