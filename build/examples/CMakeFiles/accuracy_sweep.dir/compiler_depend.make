# Empty compiler generated dependencies file for accuracy_sweep.
# This may be replaced when dependencies are built.
