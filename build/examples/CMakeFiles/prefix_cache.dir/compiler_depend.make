# Empty compiler generated dependencies file for prefix_cache.
# This may be replaced when dependencies are built.
