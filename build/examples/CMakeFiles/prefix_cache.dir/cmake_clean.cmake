file(REMOVE_RECURSE
  "CMakeFiles/prefix_cache.dir/prefix_cache.cpp.o"
  "CMakeFiles/prefix_cache.dir/prefix_cache.cpp.o.d"
  "prefix_cache"
  "prefix_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
