file(REMOVE_RECURSE
  "CMakeFiles/turbo_cli.dir/turbo_cli.cpp.o"
  "CMakeFiles/turbo_cli.dir/turbo_cli.cpp.o.d"
  "turbo_cli"
  "turbo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
