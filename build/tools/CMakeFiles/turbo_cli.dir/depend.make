# Empty dependencies file for turbo_cli.
# This may be replaced when dependencies are built.
