file(REMOVE_RECURSE
  "libturbo_kernels.a"
)
