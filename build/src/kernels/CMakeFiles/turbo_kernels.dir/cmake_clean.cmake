file(REMOVE_RECURSE
  "CMakeFiles/turbo_kernels.dir/fused_decode.cpp.o"
  "CMakeFiles/turbo_kernels.dir/fused_decode.cpp.o.d"
  "libturbo_kernels.a"
  "libturbo_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
