# Empty compiler generated dependencies file for turbo_kernels.
# This may be replaced when dependencies are built.
