# Empty dependencies file for turbo_baselines.
# This may be replaced when dependencies are built.
