
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/fp16_method.cpp" "src/baselines/CMakeFiles/turbo_baselines.dir/fp16_method.cpp.o" "gcc" "src/baselines/CMakeFiles/turbo_baselines.dir/fp16_method.cpp.o.d"
  "/root/repo/src/baselines/gear.cpp" "src/baselines/CMakeFiles/turbo_baselines.dir/gear.cpp.o" "gcc" "src/baselines/CMakeFiles/turbo_baselines.dir/gear.cpp.o.d"
  "/root/repo/src/baselines/kivi.cpp" "src/baselines/CMakeFiles/turbo_baselines.dir/kivi.cpp.o" "gcc" "src/baselines/CMakeFiles/turbo_baselines.dir/kivi.cpp.o.d"
  "/root/repo/src/baselines/lowrank.cpp" "src/baselines/CMakeFiles/turbo_baselines.dir/lowrank.cpp.o" "gcc" "src/baselines/CMakeFiles/turbo_baselines.dir/lowrank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/turbo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/turbo_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/attention/CMakeFiles/turbo_attention.dir/DependInfo.cmake"
  "/root/repo/build/src/softmax/CMakeFiles/turbo_softmax.dir/DependInfo.cmake"
  "/root/repo/build/src/kvcache/CMakeFiles/turbo_kvcache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
