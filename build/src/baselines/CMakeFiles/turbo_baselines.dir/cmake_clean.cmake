file(REMOVE_RECURSE
  "CMakeFiles/turbo_baselines.dir/fp16_method.cpp.o"
  "CMakeFiles/turbo_baselines.dir/fp16_method.cpp.o.d"
  "CMakeFiles/turbo_baselines.dir/gear.cpp.o"
  "CMakeFiles/turbo_baselines.dir/gear.cpp.o.d"
  "CMakeFiles/turbo_baselines.dir/kivi.cpp.o"
  "CMakeFiles/turbo_baselines.dir/kivi.cpp.o.d"
  "CMakeFiles/turbo_baselines.dir/lowrank.cpp.o"
  "CMakeFiles/turbo_baselines.dir/lowrank.cpp.o.d"
  "libturbo_baselines.a"
  "libturbo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
