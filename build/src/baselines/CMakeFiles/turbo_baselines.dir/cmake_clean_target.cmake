file(REMOVE_RECURSE
  "libturbo_baselines.a"
)
