
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/attention_model.cpp" "src/sim/CMakeFiles/turbo_sim.dir/attention_model.cpp.o" "gcc" "src/sim/CMakeFiles/turbo_sim.dir/attention_model.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/turbo_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/turbo_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/e2e_model.cpp" "src/sim/CMakeFiles/turbo_sim.dir/e2e_model.cpp.o" "gcc" "src/sim/CMakeFiles/turbo_sim.dir/e2e_model.cpp.o.d"
  "/root/repo/src/sim/kernel_model.cpp" "src/sim/CMakeFiles/turbo_sim.dir/kernel_model.cpp.o" "gcc" "src/sim/CMakeFiles/turbo_sim.dir/kernel_model.cpp.o.d"
  "/root/repo/src/sim/parallel.cpp" "src/sim/CMakeFiles/turbo_sim.dir/parallel.cpp.o" "gcc" "src/sim/CMakeFiles/turbo_sim.dir/parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/turbo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/turbo_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
