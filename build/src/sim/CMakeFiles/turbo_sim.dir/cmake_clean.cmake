file(REMOVE_RECURSE
  "CMakeFiles/turbo_sim.dir/attention_model.cpp.o"
  "CMakeFiles/turbo_sim.dir/attention_model.cpp.o.d"
  "CMakeFiles/turbo_sim.dir/device.cpp.o"
  "CMakeFiles/turbo_sim.dir/device.cpp.o.d"
  "CMakeFiles/turbo_sim.dir/e2e_model.cpp.o"
  "CMakeFiles/turbo_sim.dir/e2e_model.cpp.o.d"
  "CMakeFiles/turbo_sim.dir/kernel_model.cpp.o"
  "CMakeFiles/turbo_sim.dir/kernel_model.cpp.o.d"
  "CMakeFiles/turbo_sim.dir/parallel.cpp.o"
  "CMakeFiles/turbo_sim.dir/parallel.cpp.o.d"
  "libturbo_sim.a"
  "libturbo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
