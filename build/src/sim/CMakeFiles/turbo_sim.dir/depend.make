# Empty dependencies file for turbo_sim.
# This may be replaced when dependencies are built.
