file(REMOVE_RECURSE
  "libturbo_sim.a"
)
