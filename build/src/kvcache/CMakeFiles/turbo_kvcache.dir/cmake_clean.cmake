file(REMOVE_RECURSE
  "CMakeFiles/turbo_kvcache.dir/decode_buffer.cpp.o"
  "CMakeFiles/turbo_kvcache.dir/decode_buffer.cpp.o.d"
  "CMakeFiles/turbo_kvcache.dir/page_allocator.cpp.o"
  "CMakeFiles/turbo_kvcache.dir/page_allocator.cpp.o.d"
  "CMakeFiles/turbo_kvcache.dir/paged_cache.cpp.o"
  "CMakeFiles/turbo_kvcache.dir/paged_cache.cpp.o.d"
  "CMakeFiles/turbo_kvcache.dir/quantized_kv_cache.cpp.o"
  "CMakeFiles/turbo_kvcache.dir/quantized_kv_cache.cpp.o.d"
  "CMakeFiles/turbo_kvcache.dir/serialization.cpp.o"
  "CMakeFiles/turbo_kvcache.dir/serialization.cpp.o.d"
  "libturbo_kvcache.a"
  "libturbo_kvcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_kvcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
