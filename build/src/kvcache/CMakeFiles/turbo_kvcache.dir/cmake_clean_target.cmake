file(REMOVE_RECURSE
  "libturbo_kvcache.a"
)
