
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvcache/decode_buffer.cpp" "src/kvcache/CMakeFiles/turbo_kvcache.dir/decode_buffer.cpp.o" "gcc" "src/kvcache/CMakeFiles/turbo_kvcache.dir/decode_buffer.cpp.o.d"
  "/root/repo/src/kvcache/page_allocator.cpp" "src/kvcache/CMakeFiles/turbo_kvcache.dir/page_allocator.cpp.o" "gcc" "src/kvcache/CMakeFiles/turbo_kvcache.dir/page_allocator.cpp.o.d"
  "/root/repo/src/kvcache/paged_cache.cpp" "src/kvcache/CMakeFiles/turbo_kvcache.dir/paged_cache.cpp.o" "gcc" "src/kvcache/CMakeFiles/turbo_kvcache.dir/paged_cache.cpp.o.d"
  "/root/repo/src/kvcache/quantized_kv_cache.cpp" "src/kvcache/CMakeFiles/turbo_kvcache.dir/quantized_kv_cache.cpp.o" "gcc" "src/kvcache/CMakeFiles/turbo_kvcache.dir/quantized_kv_cache.cpp.o.d"
  "/root/repo/src/kvcache/serialization.cpp" "src/kvcache/CMakeFiles/turbo_kvcache.dir/serialization.cpp.o" "gcc" "src/kvcache/CMakeFiles/turbo_kvcache.dir/serialization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/turbo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/turbo_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
