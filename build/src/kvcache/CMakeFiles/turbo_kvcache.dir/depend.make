# Empty dependencies file for turbo_kvcache.
# This may be replaced when dependencies are built.
