file(REMOVE_RECURSE
  "CMakeFiles/turbo_linear.dir/quantized_linear.cpp.o"
  "CMakeFiles/turbo_linear.dir/quantized_linear.cpp.o.d"
  "libturbo_linear.a"
  "libturbo_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
