# Empty compiler generated dependencies file for turbo_linear.
# This may be replaced when dependencies are built.
