file(REMOVE_RECURSE
  "libturbo_linear.a"
)
