# CMake generated Testfile for 
# Source directory: /root/repo/src/linear
# Build directory: /root/repo/build/src/linear
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
