file(REMOVE_RECURSE
  "libturbo_common.a"
)
