# Empty compiler generated dependencies file for turbo_common.
# This may be replaced when dependencies are built.
