file(REMOVE_RECURSE
  "CMakeFiles/turbo_common.dir/check.cpp.o"
  "CMakeFiles/turbo_common.dir/check.cpp.o.d"
  "CMakeFiles/turbo_common.dir/fp16.cpp.o"
  "CMakeFiles/turbo_common.dir/fp16.cpp.o.d"
  "CMakeFiles/turbo_common.dir/rng.cpp.o"
  "CMakeFiles/turbo_common.dir/rng.cpp.o.d"
  "CMakeFiles/turbo_common.dir/stats.cpp.o"
  "CMakeFiles/turbo_common.dir/stats.cpp.o.d"
  "libturbo_common.a"
  "libturbo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
