
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/check.cpp" "src/common/CMakeFiles/turbo_common.dir/check.cpp.o" "gcc" "src/common/CMakeFiles/turbo_common.dir/check.cpp.o.d"
  "/root/repo/src/common/fp16.cpp" "src/common/CMakeFiles/turbo_common.dir/fp16.cpp.o" "gcc" "src/common/CMakeFiles/turbo_common.dir/fp16.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/common/CMakeFiles/turbo_common.dir/rng.cpp.o" "gcc" "src/common/CMakeFiles/turbo_common.dir/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/turbo_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/turbo_common.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
