# CMake generated Testfile for 
# Source directory: /root/repo/src/serving
# Build directory: /root/repo/build/src/serving
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
