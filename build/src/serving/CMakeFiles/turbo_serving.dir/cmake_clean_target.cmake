file(REMOVE_RECURSE
  "libturbo_serving.a"
)
