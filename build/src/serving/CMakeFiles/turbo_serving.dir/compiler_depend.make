# Empty compiler generated dependencies file for turbo_serving.
# This may be replaced when dependencies are built.
