file(REMOVE_RECURSE
  "CMakeFiles/turbo_serving.dir/engine.cpp.o"
  "CMakeFiles/turbo_serving.dir/engine.cpp.o.d"
  "CMakeFiles/turbo_serving.dir/metrics.cpp.o"
  "CMakeFiles/turbo_serving.dir/metrics.cpp.o.d"
  "CMakeFiles/turbo_serving.dir/trace.cpp.o"
  "CMakeFiles/turbo_serving.dir/trace.cpp.o.d"
  "libturbo_serving.a"
  "libturbo_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
