# Empty compiler generated dependencies file for turbo_softmax.
# This may be replaced when dependencies are built.
