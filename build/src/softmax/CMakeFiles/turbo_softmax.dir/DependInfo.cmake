
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/softmax/online_softmax.cpp" "src/softmax/CMakeFiles/turbo_softmax.dir/online_softmax.cpp.o" "gcc" "src/softmax/CMakeFiles/turbo_softmax.dir/online_softmax.cpp.o.d"
  "/root/repo/src/softmax/sas.cpp" "src/softmax/CMakeFiles/turbo_softmax.dir/sas.cpp.o" "gcc" "src/softmax/CMakeFiles/turbo_softmax.dir/sas.cpp.o.d"
  "/root/repo/src/softmax/softmax.cpp" "src/softmax/CMakeFiles/turbo_softmax.dir/softmax.cpp.o" "gcc" "src/softmax/CMakeFiles/turbo_softmax.dir/softmax.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/turbo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
