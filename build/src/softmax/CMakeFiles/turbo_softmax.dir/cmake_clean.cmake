file(REMOVE_RECURSE
  "CMakeFiles/turbo_softmax.dir/online_softmax.cpp.o"
  "CMakeFiles/turbo_softmax.dir/online_softmax.cpp.o.d"
  "CMakeFiles/turbo_softmax.dir/sas.cpp.o"
  "CMakeFiles/turbo_softmax.dir/sas.cpp.o.d"
  "CMakeFiles/turbo_softmax.dir/softmax.cpp.o"
  "CMakeFiles/turbo_softmax.dir/softmax.cpp.o.d"
  "libturbo_softmax.a"
  "libturbo_softmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_softmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
