file(REMOVE_RECURSE
  "libturbo_softmax.a"
)
