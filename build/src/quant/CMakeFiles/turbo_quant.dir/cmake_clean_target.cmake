file(REMOVE_RECURSE
  "libturbo_quant.a"
)
