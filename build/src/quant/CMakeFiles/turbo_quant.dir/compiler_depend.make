# Empty compiler generated dependencies file for turbo_quant.
# This may be replaced when dependencies are built.
