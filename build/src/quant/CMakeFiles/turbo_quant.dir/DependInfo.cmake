
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/asymmetric.cpp" "src/quant/CMakeFiles/turbo_quant.dir/asymmetric.cpp.o" "gcc" "src/quant/CMakeFiles/turbo_quant.dir/asymmetric.cpp.o.d"
  "/root/repo/src/quant/error.cpp" "src/quant/CMakeFiles/turbo_quant.dir/error.cpp.o" "gcc" "src/quant/CMakeFiles/turbo_quant.dir/error.cpp.o.d"
  "/root/repo/src/quant/packing.cpp" "src/quant/CMakeFiles/turbo_quant.dir/packing.cpp.o" "gcc" "src/quant/CMakeFiles/turbo_quant.dir/packing.cpp.o.d"
  "/root/repo/src/quant/progressive.cpp" "src/quant/CMakeFiles/turbo_quant.dir/progressive.cpp.o" "gcc" "src/quant/CMakeFiles/turbo_quant.dir/progressive.cpp.o.d"
  "/root/repo/src/quant/symmetric.cpp" "src/quant/CMakeFiles/turbo_quant.dir/symmetric.cpp.o" "gcc" "src/quant/CMakeFiles/turbo_quant.dir/symmetric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/turbo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
