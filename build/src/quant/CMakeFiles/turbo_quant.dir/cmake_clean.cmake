file(REMOVE_RECURSE
  "CMakeFiles/turbo_quant.dir/asymmetric.cpp.o"
  "CMakeFiles/turbo_quant.dir/asymmetric.cpp.o.d"
  "CMakeFiles/turbo_quant.dir/error.cpp.o"
  "CMakeFiles/turbo_quant.dir/error.cpp.o.d"
  "CMakeFiles/turbo_quant.dir/packing.cpp.o"
  "CMakeFiles/turbo_quant.dir/packing.cpp.o.d"
  "CMakeFiles/turbo_quant.dir/progressive.cpp.o"
  "CMakeFiles/turbo_quant.dir/progressive.cpp.o.d"
  "CMakeFiles/turbo_quant.dir/symmetric.cpp.o"
  "CMakeFiles/turbo_quant.dir/symmetric.cpp.o.d"
  "libturbo_quant.a"
  "libturbo_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
