file(REMOVE_RECURSE
  "CMakeFiles/turbo_model.dir/deep.cpp.o"
  "CMakeFiles/turbo_model.dir/deep.cpp.o.d"
  "CMakeFiles/turbo_model.dir/generator.cpp.o"
  "CMakeFiles/turbo_model.dir/generator.cpp.o.d"
  "CMakeFiles/turbo_model.dir/pipeline.cpp.o"
  "CMakeFiles/turbo_model.dir/pipeline.cpp.o.d"
  "CMakeFiles/turbo_model.dir/profile.cpp.o"
  "CMakeFiles/turbo_model.dir/profile.cpp.o.d"
  "libturbo_model.a"
  "libturbo_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
