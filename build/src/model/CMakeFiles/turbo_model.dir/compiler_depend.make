# Empty compiler generated dependencies file for turbo_model.
# This may be replaced when dependencies are built.
