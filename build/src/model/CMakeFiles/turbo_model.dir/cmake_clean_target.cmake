file(REMOVE_RECURSE
  "libturbo_model.a"
)
