
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/deep.cpp" "src/model/CMakeFiles/turbo_model.dir/deep.cpp.o" "gcc" "src/model/CMakeFiles/turbo_model.dir/deep.cpp.o.d"
  "/root/repo/src/model/generator.cpp" "src/model/CMakeFiles/turbo_model.dir/generator.cpp.o" "gcc" "src/model/CMakeFiles/turbo_model.dir/generator.cpp.o.d"
  "/root/repo/src/model/pipeline.cpp" "src/model/CMakeFiles/turbo_model.dir/pipeline.cpp.o" "gcc" "src/model/CMakeFiles/turbo_model.dir/pipeline.cpp.o.d"
  "/root/repo/src/model/profile.cpp" "src/model/CMakeFiles/turbo_model.dir/profile.cpp.o" "gcc" "src/model/CMakeFiles/turbo_model.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/turbo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/attention/CMakeFiles/turbo_attention.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/turbo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/softmax/CMakeFiles/turbo_softmax.dir/DependInfo.cmake"
  "/root/repo/build/src/kvcache/CMakeFiles/turbo_kvcache.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/turbo_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
