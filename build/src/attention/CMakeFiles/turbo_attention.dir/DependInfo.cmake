
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attention/flash.cpp" "src/attention/CMakeFiles/turbo_attention.dir/flash.cpp.o" "gcc" "src/attention/CMakeFiles/turbo_attention.dir/flash.cpp.o.d"
  "/root/repo/src/attention/headwise.cpp" "src/attention/CMakeFiles/turbo_attention.dir/headwise.cpp.o" "gcc" "src/attention/CMakeFiles/turbo_attention.dir/headwise.cpp.o.d"
  "/root/repo/src/attention/reference.cpp" "src/attention/CMakeFiles/turbo_attention.dir/reference.cpp.o" "gcc" "src/attention/CMakeFiles/turbo_attention.dir/reference.cpp.o.d"
  "/root/repo/src/attention/turbo_decode.cpp" "src/attention/CMakeFiles/turbo_attention.dir/turbo_decode.cpp.o" "gcc" "src/attention/CMakeFiles/turbo_attention.dir/turbo_decode.cpp.o.d"
  "/root/repo/src/attention/turbo_method.cpp" "src/attention/CMakeFiles/turbo_attention.dir/turbo_method.cpp.o" "gcc" "src/attention/CMakeFiles/turbo_attention.dir/turbo_method.cpp.o.d"
  "/root/repo/src/attention/turbo_prefill.cpp" "src/attention/CMakeFiles/turbo_attention.dir/turbo_prefill.cpp.o" "gcc" "src/attention/CMakeFiles/turbo_attention.dir/turbo_prefill.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/turbo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/turbo_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/softmax/CMakeFiles/turbo_softmax.dir/DependInfo.cmake"
  "/root/repo/build/src/kvcache/CMakeFiles/turbo_kvcache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
