# Empty compiler generated dependencies file for turbo_attention.
# This may be replaced when dependencies are built.
