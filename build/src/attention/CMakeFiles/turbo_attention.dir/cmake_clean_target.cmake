file(REMOVE_RECURSE
  "libturbo_attention.a"
)
