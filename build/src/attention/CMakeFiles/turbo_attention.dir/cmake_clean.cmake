file(REMOVE_RECURSE
  "CMakeFiles/turbo_attention.dir/flash.cpp.o"
  "CMakeFiles/turbo_attention.dir/flash.cpp.o.d"
  "CMakeFiles/turbo_attention.dir/headwise.cpp.o"
  "CMakeFiles/turbo_attention.dir/headwise.cpp.o.d"
  "CMakeFiles/turbo_attention.dir/reference.cpp.o"
  "CMakeFiles/turbo_attention.dir/reference.cpp.o.d"
  "CMakeFiles/turbo_attention.dir/turbo_decode.cpp.o"
  "CMakeFiles/turbo_attention.dir/turbo_decode.cpp.o.d"
  "CMakeFiles/turbo_attention.dir/turbo_method.cpp.o"
  "CMakeFiles/turbo_attention.dir/turbo_method.cpp.o.d"
  "CMakeFiles/turbo_attention.dir/turbo_prefill.cpp.o"
  "CMakeFiles/turbo_attention.dir/turbo_prefill.cpp.o.d"
  "libturbo_attention.a"
  "libturbo_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
