file(REMOVE_RECURSE
  "libturbo_tasks.a"
)
