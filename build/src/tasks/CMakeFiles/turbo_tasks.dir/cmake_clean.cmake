file(REMOVE_RECURSE
  "CMakeFiles/turbo_tasks.dir/codebook.cpp.o"
  "CMakeFiles/turbo_tasks.dir/codebook.cpp.o.d"
  "CMakeFiles/turbo_tasks.dir/retrieval.cpp.o"
  "CMakeFiles/turbo_tasks.dir/retrieval.cpp.o.d"
  "libturbo_tasks.a"
  "libturbo_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
