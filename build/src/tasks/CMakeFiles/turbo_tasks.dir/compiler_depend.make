# Empty compiler generated dependencies file for turbo_tasks.
# This may be replaced when dependencies are built.
