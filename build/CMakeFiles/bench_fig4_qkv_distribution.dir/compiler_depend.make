# Empty compiler generated dependencies file for bench_fig4_qkv_distribution.
# This may be replaced when dependencies are built.
