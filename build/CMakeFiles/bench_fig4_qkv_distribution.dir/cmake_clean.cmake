file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_qkv_distribution.dir/bench/bench_fig4_qkv_distribution.cpp.o"
  "CMakeFiles/bench_fig4_qkv_distribution.dir/bench/bench_fig4_qkv_distribution.cpp.o.d"
  "bench/bench_fig4_qkv_distribution"
  "bench/bench_fig4_qkv_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_qkv_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
