file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_design.dir/bench/bench_ablation_design.cpp.o"
  "CMakeFiles/bench_ablation_design.dir/bench/bench_ablation_design.cpp.o.d"
  "bench/bench_ablation_design"
  "bench/bench_ablation_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
