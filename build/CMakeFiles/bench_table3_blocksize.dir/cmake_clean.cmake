file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_blocksize.dir/bench/bench_table3_blocksize.cpp.o"
  "CMakeFiles/bench_table3_blocksize.dir/bench/bench_table3_blocksize.cpp.o.d"
  "bench/bench_table3_blocksize"
  "bench/bench_table3_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
