# Empty dependencies file for bench_whatif_hardware.
# This may be replaced when dependencies are built.
