file(REMOVE_RECURSE
  "CMakeFiles/bench_whatif_hardware.dir/bench/bench_whatif_hardware.cpp.o"
  "CMakeFiles/bench_whatif_hardware.dir/bench/bench_whatif_hardware.cpp.o.d"
  "bench/bench_whatif_hardware"
  "bench/bench_whatif_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
