# Empty dependencies file for bench_fig10_quant_error.
# This may be replaced when dependencies are built.
