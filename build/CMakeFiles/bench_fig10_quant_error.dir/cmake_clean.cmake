file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_quant_error.dir/bench/bench_fig10_quant_error.cpp.o"
  "CMakeFiles/bench_fig10_quant_error.dir/bench/bench_fig10_quant_error.cpp.o.d"
  "bench/bench_fig10_quant_error"
  "bench/bench_fig10_quant_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_quant_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
