# Empty dependencies file for bench_table5_integration.
# This may be replaced when dependencies are built.
