file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_integration.dir/bench/bench_table5_integration.cpp.o"
  "CMakeFiles/bench_table5_integration.dir/bench/bench_table5_integration.cpp.o.d"
  "bench/bench_table5_integration"
  "bench/bench_table5_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
