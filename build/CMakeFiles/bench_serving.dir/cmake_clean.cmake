file(REMOVE_RECURSE
  "CMakeFiles/bench_serving.dir/bench/bench_serving.cpp.o"
  "CMakeFiles/bench_serving.dir/bench/bench_serving.cpp.o.d"
  "bench/bench_serving"
  "bench/bench_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
