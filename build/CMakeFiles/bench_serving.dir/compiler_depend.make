# Empty compiler generated dependencies file for bench_serving.
# This may be replaced when dependencies are built.
