# Empty compiler generated dependencies file for bench_fig5_sas_fit.
# This may be replaced when dependencies are built.
