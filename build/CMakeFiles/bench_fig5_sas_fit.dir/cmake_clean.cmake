file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_sas_fit.dir/bench/bench_fig5_sas_fit.cpp.o"
  "CMakeFiles/bench_fig5_sas_fit.dir/bench/bench_fig5_sas_fit.cpp.o.d"
  "bench/bench_fig5_sas_fit"
  "bench/bench_fig5_sas_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_sas_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
