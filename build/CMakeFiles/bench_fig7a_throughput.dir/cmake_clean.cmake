file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_throughput.dir/bench/bench_fig7a_throughput.cpp.o"
  "CMakeFiles/bench_fig7a_throughput.dir/bench/bench_fig7a_throughput.cpp.o.d"
  "bench/bench_fig7a_throughput"
  "bench/bench_fig7a_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
