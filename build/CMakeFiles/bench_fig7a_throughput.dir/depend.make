# Empty dependencies file for bench_fig7a_throughput.
# This may be replaced when dependencies are built.
