file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_9_value_gaps.dir/bench/bench_fig8_9_value_gaps.cpp.o"
  "CMakeFiles/bench_fig8_9_value_gaps.dir/bench/bench_fig8_9_value_gaps.cpp.o.d"
  "bench/bench_fig8_9_value_gaps"
  "bench/bench_fig8_9_value_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_9_value_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
