# Empty dependencies file for bench_fig8_9_value_gaps.
# This may be replaced when dependencies are built.
