file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_head_selection.dir/bench/bench_fig7b_head_selection.cpp.o"
  "CMakeFiles/bench_fig7b_head_selection.dir/bench/bench_fig7b_head_selection.cpp.o.d"
  "bench/bench_fig7b_head_selection"
  "bench/bench_fig7b_head_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_head_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
