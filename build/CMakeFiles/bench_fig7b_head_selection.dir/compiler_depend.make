# Empty compiler generated dependencies file for bench_fig7b_head_selection.
# This may be replaced when dependencies are built.
