file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_speedup.dir/bench/bench_fig6_speedup.cpp.o"
  "CMakeFiles/bench_fig6_speedup.dir/bench/bench_fig6_speedup.cpp.o.d"
  "bench/bench_fig6_speedup"
  "bench/bench_fig6_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
