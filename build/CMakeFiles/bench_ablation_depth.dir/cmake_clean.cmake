file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_depth.dir/bench/bench_ablation_depth.cpp.o"
  "CMakeFiles/bench_ablation_depth.dir/bench/bench_ablation_depth.cpp.o.d"
  "bench/bench_ablation_depth"
  "bench/bench_ablation_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
