# Empty dependencies file for bench_fig1_latency_profile.
# This may be replaced when dependencies are built.
