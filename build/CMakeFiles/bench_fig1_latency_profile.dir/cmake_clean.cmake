file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_latency_profile.dir/bench/bench_fig1_latency_profile.cpp.o"
  "CMakeFiles/bench_fig1_latency_profile.dir/bench/bench_fig1_latency_profile.cpp.o.d"
  "bench/bench_fig1_latency_profile"
  "bench/bench_fig1_latency_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_latency_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
