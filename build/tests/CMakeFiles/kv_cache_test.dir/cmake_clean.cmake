file(REMOVE_RECURSE
  "CMakeFiles/kv_cache_test.dir/kv_cache_test.cpp.o"
  "CMakeFiles/kv_cache_test.dir/kv_cache_test.cpp.o.d"
  "kv_cache_test"
  "kv_cache_test.pdb"
  "kv_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
