# Empty dependencies file for kv_cache_test.
# This may be replaced when dependencies are built.
