# Empty compiler generated dependencies file for model_test.
# This may be replaced when dependencies are built.
