# Empty dependencies file for deep_test.
# This may be replaced when dependencies are built.
