file(REMOVE_RECURSE
  "CMakeFiles/deep_test.dir/deep_test.cpp.o"
  "CMakeFiles/deep_test.dir/deep_test.cpp.o.d"
  "deep_test"
  "deep_test.pdb"
  "deep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
