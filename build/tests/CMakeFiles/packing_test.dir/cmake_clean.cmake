file(REMOVE_RECURSE
  "CMakeFiles/packing_test.dir/packing_test.cpp.o"
  "CMakeFiles/packing_test.dir/packing_test.cpp.o.d"
  "packing_test"
  "packing_test.pdb"
  "packing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
