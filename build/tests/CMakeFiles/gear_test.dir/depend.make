# Empty dependencies file for gear_test.
# This may be replaced when dependencies are built.
