file(REMOVE_RECURSE
  "CMakeFiles/gear_test.dir/gear_test.cpp.o"
  "CMakeFiles/gear_test.dir/gear_test.cpp.o.d"
  "gear_test"
  "gear_test.pdb"
  "gear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
