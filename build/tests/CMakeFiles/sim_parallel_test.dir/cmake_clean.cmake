file(REMOVE_RECURSE
  "CMakeFiles/sim_parallel_test.dir/sim_parallel_test.cpp.o"
  "CMakeFiles/sim_parallel_test.dir/sim_parallel_test.cpp.o.d"
  "sim_parallel_test"
  "sim_parallel_test.pdb"
  "sim_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
