# Empty dependencies file for online_softmax_test.
# This may be replaced when dependencies are built.
