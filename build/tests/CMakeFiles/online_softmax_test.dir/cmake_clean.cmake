file(REMOVE_RECURSE
  "CMakeFiles/online_softmax_test.dir/online_softmax_test.cpp.o"
  "CMakeFiles/online_softmax_test.dir/online_softmax_test.cpp.o.d"
  "online_softmax_test"
  "online_softmax_test.pdb"
  "online_softmax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_softmax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
