# Empty dependencies file for serialization_test.
# This may be replaced when dependencies are built.
