# Empty compiler generated dependencies file for headwise_test.
# This may be replaced when dependencies are built.
