file(REMOVE_RECURSE
  "CMakeFiles/headwise_test.dir/headwise_test.cpp.o"
  "CMakeFiles/headwise_test.dir/headwise_test.cpp.o.d"
  "headwise_test"
  "headwise_test.pdb"
  "headwise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headwise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
