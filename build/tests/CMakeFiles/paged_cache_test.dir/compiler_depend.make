# Empty compiler generated dependencies file for paged_cache_test.
# This may be replaced when dependencies are built.
