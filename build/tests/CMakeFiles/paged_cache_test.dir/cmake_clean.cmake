file(REMOVE_RECURSE
  "CMakeFiles/paged_cache_test.dir/paged_cache_test.cpp.o"
  "CMakeFiles/paged_cache_test.dir/paged_cache_test.cpp.o.d"
  "paged_cache_test"
  "paged_cache_test.pdb"
  "paged_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paged_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
