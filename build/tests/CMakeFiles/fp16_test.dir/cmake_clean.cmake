file(REMOVE_RECURSE
  "CMakeFiles/fp16_test.dir/fp16_test.cpp.o"
  "CMakeFiles/fp16_test.dir/fp16_test.cpp.o.d"
  "fp16_test"
  "fp16_test.pdb"
  "fp16_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp16_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
