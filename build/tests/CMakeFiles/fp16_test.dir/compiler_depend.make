# Empty compiler generated dependencies file for fp16_test.
# This may be replaced when dependencies are built.
