file(REMOVE_RECURSE
  "CMakeFiles/attention_property_test.dir/attention_property_test.cpp.o"
  "CMakeFiles/attention_property_test.dir/attention_property_test.cpp.o.d"
  "attention_property_test"
  "attention_property_test.pdb"
  "attention_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
