# Empty dependencies file for attention_property_test.
# This may be replaced when dependencies are built.
