# Empty dependencies file for asymmetric_quant_test.
# This may be replaced when dependencies are built.
