file(REMOVE_RECURSE
  "CMakeFiles/asymmetric_quant_test.dir/asymmetric_quant_test.cpp.o"
  "CMakeFiles/asymmetric_quant_test.dir/asymmetric_quant_test.cpp.o.d"
  "asymmetric_quant_test"
  "asymmetric_quant_test.pdb"
  "asymmetric_quant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asymmetric_quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
