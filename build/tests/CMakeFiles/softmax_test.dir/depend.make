# Empty dependencies file for softmax_test.
# This may be replaced when dependencies are built.
