file(REMOVE_RECURSE
  "CMakeFiles/softmax_test.dir/softmax_test.cpp.o"
  "CMakeFiles/softmax_test.dir/softmax_test.cpp.o.d"
  "softmax_test"
  "softmax_test.pdb"
  "softmax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softmax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
