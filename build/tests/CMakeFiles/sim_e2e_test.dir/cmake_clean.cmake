file(REMOVE_RECURSE
  "CMakeFiles/sim_e2e_test.dir/sim_e2e_test.cpp.o"
  "CMakeFiles/sim_e2e_test.dir/sim_e2e_test.cpp.o.d"
  "sim_e2e_test"
  "sim_e2e_test.pdb"
  "sim_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
