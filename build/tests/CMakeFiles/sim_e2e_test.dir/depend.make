# Empty dependencies file for sim_e2e_test.
# This may be replaced when dependencies are built.
