file(REMOVE_RECURSE
  "CMakeFiles/lowrank_test.dir/lowrank_test.cpp.o"
  "CMakeFiles/lowrank_test.dir/lowrank_test.cpp.o.d"
  "lowrank_test"
  "lowrank_test.pdb"
  "lowrank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowrank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
