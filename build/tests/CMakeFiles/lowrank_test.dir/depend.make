# Empty dependencies file for lowrank_test.
# This may be replaced when dependencies are built.
