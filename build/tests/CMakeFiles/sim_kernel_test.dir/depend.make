# Empty dependencies file for sim_kernel_test.
# This may be replaced when dependencies are built.
