file(REMOVE_RECURSE
  "CMakeFiles/sim_kernel_test.dir/sim_kernel_test.cpp.o"
  "CMakeFiles/sim_kernel_test.dir/sim_kernel_test.cpp.o.d"
  "sim_kernel_test"
  "sim_kernel_test.pdb"
  "sim_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
