file(REMOVE_RECURSE
  "CMakeFiles/linear_test.dir/linear_test.cpp.o"
  "CMakeFiles/linear_test.dir/linear_test.cpp.o.d"
  "linear_test"
  "linear_test.pdb"
  "linear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
