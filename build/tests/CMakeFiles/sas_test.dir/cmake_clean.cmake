file(REMOVE_RECURSE
  "CMakeFiles/sas_test.dir/sas_test.cpp.o"
  "CMakeFiles/sas_test.dir/sas_test.cpp.o.d"
  "sas_test"
  "sas_test.pdb"
  "sas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
