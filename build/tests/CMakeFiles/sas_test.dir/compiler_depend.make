# Empty compiler generated dependencies file for sas_test.
# This may be replaced when dependencies are built.
