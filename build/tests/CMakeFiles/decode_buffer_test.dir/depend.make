# Empty dependencies file for decode_buffer_test.
# This may be replaced when dependencies are built.
