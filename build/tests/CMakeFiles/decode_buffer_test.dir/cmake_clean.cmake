file(REMOVE_RECURSE
  "CMakeFiles/decode_buffer_test.dir/decode_buffer_test.cpp.o"
  "CMakeFiles/decode_buffer_test.dir/decode_buffer_test.cpp.o.d"
  "decode_buffer_test"
  "decode_buffer_test.pdb"
  "decode_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decode_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
