file(REMOVE_RECURSE
  "CMakeFiles/method_integration_test.dir/method_integration_test.cpp.o"
  "CMakeFiles/method_integration_test.dir/method_integration_test.cpp.o.d"
  "method_integration_test"
  "method_integration_test.pdb"
  "method_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
