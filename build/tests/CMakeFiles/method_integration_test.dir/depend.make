# Empty dependencies file for method_integration_test.
# This may be replaced when dependencies are built.
