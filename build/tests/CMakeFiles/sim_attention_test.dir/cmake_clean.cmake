file(REMOVE_RECURSE
  "CMakeFiles/sim_attention_test.dir/sim_attention_test.cpp.o"
  "CMakeFiles/sim_attention_test.dir/sim_attention_test.cpp.o.d"
  "sim_attention_test"
  "sim_attention_test.pdb"
  "sim_attention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_attention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
