# Empty compiler generated dependencies file for sim_attention_test.
# This may be replaced when dependencies are built.
