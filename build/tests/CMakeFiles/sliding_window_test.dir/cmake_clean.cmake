file(REMOVE_RECURSE
  "CMakeFiles/sliding_window_test.dir/sliding_window_test.cpp.o"
  "CMakeFiles/sliding_window_test.dir/sliding_window_test.cpp.o.d"
  "sliding_window_test"
  "sliding_window_test.pdb"
  "sliding_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliding_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
