file(REMOVE_RECURSE
  "CMakeFiles/reference_attention_test.dir/reference_attention_test.cpp.o"
  "CMakeFiles/reference_attention_test.dir/reference_attention_test.cpp.o.d"
  "reference_attention_test"
  "reference_attention_test.pdb"
  "reference_attention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_attention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
