# Empty compiler generated dependencies file for reference_attention_test.
# This may be replaced when dependencies are built.
