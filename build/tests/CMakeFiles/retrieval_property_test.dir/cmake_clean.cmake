file(REMOVE_RECURSE
  "CMakeFiles/retrieval_property_test.dir/retrieval_property_test.cpp.o"
  "CMakeFiles/retrieval_property_test.dir/retrieval_property_test.cpp.o.d"
  "retrieval_property_test"
  "retrieval_property_test.pdb"
  "retrieval_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retrieval_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
