file(REMOVE_RECURSE
  "CMakeFiles/progressive_quant_test.dir/progressive_quant_test.cpp.o"
  "CMakeFiles/progressive_quant_test.dir/progressive_quant_test.cpp.o.d"
  "progressive_quant_test"
  "progressive_quant_test.pdb"
  "progressive_quant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progressive_quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
