file(REMOVE_RECURSE
  "CMakeFiles/kivi_test.dir/kivi_test.cpp.o"
  "CMakeFiles/kivi_test.dir/kivi_test.cpp.o.d"
  "kivi_test"
  "kivi_test.pdb"
  "kivi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kivi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
