# Empty compiler generated dependencies file for kivi_test.
# This may be replaced when dependencies are built.
