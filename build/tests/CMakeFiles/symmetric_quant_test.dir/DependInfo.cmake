
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/symmetric_quant_test.cpp" "tests/CMakeFiles/symmetric_quant_test.dir/symmetric_quant_test.cpp.o" "gcc" "tests/CMakeFiles/symmetric_quant_test.dir/symmetric_quant_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/turbo_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/linear/CMakeFiles/turbo_linear.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/turbo_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/turbo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/turbo_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/turbo_model.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/turbo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/attention/CMakeFiles/turbo_attention.dir/DependInfo.cmake"
  "/root/repo/build/src/softmax/CMakeFiles/turbo_softmax.dir/DependInfo.cmake"
  "/root/repo/build/src/kvcache/CMakeFiles/turbo_kvcache.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/turbo_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/turbo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
