# Empty compiler generated dependencies file for symmetric_quant_test.
# This may be replaced when dependencies are built.
