file(REMOVE_RECURSE
  "CMakeFiles/symmetric_quant_test.dir/symmetric_quant_test.cpp.o"
  "CMakeFiles/symmetric_quant_test.dir/symmetric_quant_test.cpp.o.d"
  "symmetric_quant_test"
  "symmetric_quant_test.pdb"
  "symmetric_quant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetric_quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
