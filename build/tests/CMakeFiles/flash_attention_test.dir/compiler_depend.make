# Empty compiler generated dependencies file for flash_attention_test.
# This may be replaced when dependencies are built.
