file(REMOVE_RECURSE
  "CMakeFiles/flash_attention_test.dir/flash_attention_test.cpp.o"
  "CMakeFiles/flash_attention_test.dir/flash_attention_test.cpp.o.d"
  "flash_attention_test"
  "flash_attention_test.pdb"
  "flash_attention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_attention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
