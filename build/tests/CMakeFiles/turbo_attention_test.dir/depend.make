# Empty dependencies file for turbo_attention_test.
# This may be replaced when dependencies are built.
