file(REMOVE_RECURSE
  "CMakeFiles/turbo_attention_test.dir/turbo_attention_test.cpp.o"
  "CMakeFiles/turbo_attention_test.dir/turbo_attention_test.cpp.o.d"
  "turbo_attention_test"
  "turbo_attention_test.pdb"
  "turbo_attention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_attention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
