file(REMOVE_RECURSE
  "CMakeFiles/fused_decode_test.dir/fused_decode_test.cpp.o"
  "CMakeFiles/fused_decode_test.dir/fused_decode_test.cpp.o.d"
  "fused_decode_test"
  "fused_decode_test.pdb"
  "fused_decode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fused_decode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
