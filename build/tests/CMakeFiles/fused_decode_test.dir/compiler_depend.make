# Empty compiler generated dependencies file for fused_decode_test.
# This may be replaced when dependencies are built.
