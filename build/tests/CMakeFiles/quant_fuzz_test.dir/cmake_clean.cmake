file(REMOVE_RECURSE
  "CMakeFiles/quant_fuzz_test.dir/quant_fuzz_test.cpp.o"
  "CMakeFiles/quant_fuzz_test.dir/quant_fuzz_test.cpp.o.d"
  "quant_fuzz_test"
  "quant_fuzz_test.pdb"
  "quant_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
