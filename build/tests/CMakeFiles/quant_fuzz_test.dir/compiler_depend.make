# Empty compiler generated dependencies file for quant_fuzz_test.
# This may be replaced when dependencies are built.
