// Proxy-task engine invariants beyond the basic behaviours in tasks_test.
#include <gtest/gtest.h>

#include "attention/turbo_method.h"
#include "baselines/fp16_method.h"
#include "model/profile.h"
#include "tasks/retrieval.h"

namespace turbo::tasks {
namespace {

RetrievalConfig base_task() {
  RetrievalConfig c;
  c.profile = model::llama3_8b_profile();
  c.profile.heads = 4;
  c.n_pairs = 16;
  c.hard_negatives = 2;
  c.negative_similarity = 0.8;
  c.hops = 2;
  c.filler_per_hop = 4;
  c.tail_filler = 32;
  c.n_cases = 16;
  c.seed = 500;
  return c;
}

TEST(RetrievalPropertyTest, HarderNegativesNeverHelp) {
  RetrievalConfig easy = base_task();
  easy.negative_similarity = 0.5;
  RetrievalConfig hard = base_task();
  hard.negative_similarity = 0.95;
  const double a =
      run_retrieval(easy, make_fp16_factory({})).accuracy;
  const double b =
      run_retrieval(hard, make_fp16_factory({})).accuracy;
  EXPECT_GE(a + 1e-9, b);
}

TEST(RetrievalPropertyTest, MoreQueryNoiseNeverHelpsMuch) {
  RetrievalConfig clean = base_task();
  clean.query_noise = 0.02;
  RetrievalConfig noisy = base_task();
  noisy.query_noise = 0.6;
  const double a = run_retrieval(clean, make_fp16_factory({})).accuracy;
  const double b = run_retrieval(noisy, make_fp16_factory({})).accuracy;
  EXPECT_GE(a + 0.1, b);  // allow one-case noise
}

TEST(RetrievalPropertyTest, InputNoiseDegradesAccuracy) {
  RetrievalConfig clean = base_task();
  RetrievalConfig noisy = base_task();
  noisy.input_noise = 0.5;  // extreme upstream quantization noise
  const double a = run_retrieval(clean, make_fp16_factory({})).accuracy;
  const double b = run_retrieval(noisy, make_fp16_factory({})).accuracy;
  EXPECT_GT(a, b);
}

TEST(RetrievalPropertyTest, SeedChangesCasesNotDifficulty) {
  RetrievalConfig t1 = base_task();
  RetrievalConfig t2 = base_task();
  t2.seed = 501;
  t1.n_cases = 48;
  t2.n_cases = 48;
  const double a = run_retrieval(t1, make_fp16_factory({})).accuracy;
  const double b = run_retrieval(t2, make_fp16_factory({})).accuracy;
  EXPECT_NEAR(a, b, 0.25);  // same distribution, different draws
}

TEST(RetrievalPropertyTest, HeadStatsDeterministicAndSized) {
  const RetrievalConfig t = base_task();
  const auto a = retrieval_head_stats(t);
  const auto b = retrieval_head_stats(t);
  ASSERT_EQ(a.size(), t.profile.heads);
  for (std::size_t h = 0; h < a.size(); ++h) {
    EXPECT_EQ(a[h].gap, b[h].gap);
    EXPECT_EQ(a[h].gap_std, b[h].gap_std);
    EXPECT_GT(a[h].gap, 0.0f);
  }
}

TEST(RetrievalPropertyTest, ContextTokensAccounting) {
  RetrievalConfig t = base_task();
  EXPECT_EQ(t.fact_tokens(), 16u * 3u);
  EXPECT_EQ(t.context_tokens(), 16u * 3u + 32u);
}

TEST(RetrievalPropertyTest, ReadingHeadCountBoundedByHeads) {
  // reading_heads > heads must clamp, not crash.
  RetrievalConfig t = base_task();
  t.reading_heads = 100;
  const TaskResult r = run_retrieval(t, make_fp16_factory({}));
  EXPECT_GT(r.accuracy, 0.0);
}

TEST(RetrievalPropertyTest, SingleReaderStillWorks) {
  RetrievalConfig t = base_task();
  t.reading_heads = 1;
  const TaskResult r = run_retrieval(t, make_fp16_factory({}));
  EXPECT_GT(r.accuracy, 0.3);  // single-head decode is harder but sane
}

TEST(RetrievalPropertyTest, KvBytesOrderedAcrossMethods) {
  const RetrievalConfig t = base_task();
  const double fp16 =
      run_retrieval(t, make_fp16_factory({})).kv_bytes_per_token;
  TurboMethodConfig t4;
  t4.buffer_capacity = 16;
  const double turbo =
      run_retrieval(t, make_turbo_factory(t4)).kv_bytes_per_token;
  EXPECT_GT(fp16 / turbo, 3.0);
}

TEST(RetrievalPropertyTest, MixedPrecisionBetweenPureWidths) {
  RetrievalConfig t = base_task();
  t.n_cases = 24;
  TurboMethodConfig c4;
  c4.buffer_capacity = 16;
  TurboMethodConfig c2 = c4;
  c2.kv_bits = BitWidth::kInt2;
  const double b4 =
      run_retrieval(t, make_turbo_factory(c4)).kv_bytes_per_token;
  const double b2 =
      run_retrieval(t, make_turbo_factory(c2)).kv_bytes_per_token;
  const auto stats = retrieval_head_stats(t);
  const auto bits =
      select_head_bits(stats, t.profile.heads / 2,
                       HeadSelectionMetric::kPriority);
  const double bm =
      run_retrieval(t, make_turbo_mixed_factory(c4, bits))
          .kv_bytes_per_token;
  EXPECT_LT(b2, bm);
  EXPECT_LT(bm, b4);
}

}  // namespace
}  // namespace turbo::tasks
