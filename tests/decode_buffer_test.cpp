#include "kvcache/decode_buffer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace turbo {
namespace {

std::vector<float> token(std::initializer_list<float> vals) { return vals; }

TEST(DecodeBufferTest, StartsEmpty) {
  DecodeBuffer buf(4, 2);
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(buf.full());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_FALSE(buf.has_scale());
}

TEST(DecodeBufferTest, SeedScaleFixesUniversalScale) {
  DecodeBuffer buf(4, 2);
  buf.seed_scale(119.0f);
  EXPECT_FLOAT_EQ(buf.scale(), 1.0f);
  // Second seed is a no-op: the scale is universal.
  buf.seed_scale(1000.0f);
  EXPECT_FLOAT_EQ(buf.scale(), 1.0f);
}

TEST(DecodeBufferTest, FirstPushSeedsScaleWhenUnseeded) {
  DecodeBuffer buf(4, 2);
  buf.push(token({119.0f, -59.5f}));
  EXPECT_TRUE(buf.has_scale());
  EXPECT_FLOAT_EQ(buf.scale(), 1.0f);
  EXPECT_EQ(buf.tokens()(0, 0), 119);
  EXPECT_EQ(buf.tokens()(0, 1), -60);  // nearbyint(-59.5) == -60
}

TEST(DecodeBufferTest, OutliersClampWithoutRecompression) {
  DecodeBuffer buf(4, 2);
  buf.seed_scale(119.0f);  // scale 1.0, representable range [-127, 127]
  buf.push(token({100.0f, -100.0f}));
  buf.push(token({500.0f, -500.0f}));  // outlier: clamps, not re-scales
  EXPECT_FLOAT_EQ(buf.scale(), 1.0f);  // unchanged
  EXPECT_EQ(buf.tokens()(0, 0), 100);  // earlier token untouched
  EXPECT_EQ(buf.tokens()(1, 0), 127);
  EXPECT_EQ(buf.tokens()(1, 1), -127);
  EXPECT_EQ(buf.clamped_token_count(), 1u);
}

TEST(DecodeBufferTest, FullAfterCapacityPushes) {
  DecodeBuffer buf(3, 1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(buf.full());
    buf.push(token({1.0f}));
  }
  EXPECT_TRUE(buf.full());
  EXPECT_THROW(buf.push(token({1.0f})), CheckError);
}

TEST(DecodeBufferTest, TakeDrainsButKeepsScale) {
  DecodeBuffer buf(4, 2);
  buf.push(token({10.0f, 20.0f}));
  buf.push(token({30.0f, 40.0f}));
  const float scale = buf.scale();
  const MatrixI8 out = buf.take();
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_TRUE(buf.empty());
  EXPECT_FLOAT_EQ(buf.scale(), scale);  // universal across flushes
  // Post-take pushes still work with the retained scale.
  buf.push(token({5.0f, 5.0f}));
  EXPECT_EQ(buf.size(), 1u);
}

TEST(DecodeBufferTest, TakeResetsClampCounter) {
  // take() flushes tokens AND the clamp counter; callers accounting
  // clamped tokens (e.g. quality ablations) must read it before take().
  DecodeBuffer buf(4, 2);
  buf.seed_scale(1.0f);
  buf.push(token({500.0f, -500.0f}));  // clamps under the 1.0 scale
  buf.push(token({0.5f, -0.5f}));      // in range
  buf.push(token({300.0f, 0.0f}));     // clamps
  EXPECT_EQ(buf.clamped_token_count(), 2u);
  (void)buf.take();
  EXPECT_EQ(buf.clamped_token_count(), 0u);
  // The retained universal scale still clamps fresh outliers, counted
  // from zero for the new flush window.
  buf.push(token({-700.0f, 700.0f}));
  EXPECT_EQ(buf.clamped_token_count(), 1u);
}

TEST(DecodeBufferTest, RoundTripErrorWithinHalfScale) {
  DecodeBuffer buf(16, 8);
  Rng rng(1);
  std::vector<std::vector<float>> originals;
  buf.seed_scale(4.0f);  // generous range so nothing clamps
  for (int t = 0; t < 16; ++t) {
    std::vector<float> v(8);
    rng.fill_normal(v, 0.0, 1.0);
    buf.push(v);
    originals.push_back(std::move(v));
  }
  for (int t = 0; t < 16; ++t) {
    for (std::size_t c = 0; c < 8; ++c) {
      const float back =
          static_cast<float>(buf.tokens()(static_cast<std::size_t>(t), c)) *
          buf.scale();
      EXPECT_NEAR(back, originals[static_cast<std::size_t>(t)][c],
                  buf.scale() / 2.0f + 1e-6f);
    }
  }
}

TEST(DecodeBufferTest, DimensionMismatchThrows) {
  DecodeBuffer buf(4, 3);
  EXPECT_THROW(buf.push(token({1.0f, 2.0f})), CheckError);
}

TEST(DecodeBufferTest, ZeroCapacityThrows) {
  EXPECT_THROW(DecodeBuffer(0, 4), CheckError);
  EXPECT_THROW(DecodeBuffer(4, 0), CheckError);
}

TEST(DecodeBufferTest, MemoryBytesCountsInt8Payload) {
  DecodeBuffer buf(8, 4);
  buf.push(token({1.0f, 2.0f, 3.0f, 4.0f}));
  buf.push(token({1.0f, 2.0f, 3.0f, 4.0f}));
  EXPECT_EQ(buf.memory_bytes(), 8u + 2u);  // 2 tokens x 4 dims + fp16 scale
}

}  // namespace
}  // namespace turbo
