#include "quant/asymmetric.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "quant/error.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

TEST(AsymmetricQuantTest, ParamsSpanTheRange) {
  std::vector<float> v{-2.0f, 0.0f, 6.0f};
  const AsymParams p = asym_params(v, BitWidth::kInt4);
  EXPECT_FLOAT_EQ(p.zero, -2.0f);
  EXPECT_FLOAT_EQ(p.scale, 8.0f / 15.0f);
}

TEST(AsymmetricQuantTest, ConstantGroupIsExact) {
  std::vector<float> v(16, 3.25f);
  const AsymParams p = asym_params(v, BitWidth::kInt2);
  std::vector<std::uint8_t> q(v.size());
  quantize_asym(v, p, BitWidth::kInt2, q);
  std::vector<float> back(v.size());
  dequantize_asym(q, p, back);
  for (float x : back) EXPECT_FLOAT_EQ(x, 3.25f);
}

TEST(AsymmetricQuantTest, EndpointsAreExact) {
  // Min and max of a group are always representable exactly.
  std::vector<float> v{-5.0f, 1.0f, 2.0f, 11.0f};
  const AsymParams p = asym_params(v, BitWidth::kInt4);
  std::vector<std::uint8_t> q(v.size());
  quantize_asym(v, p, BitWidth::kInt4, q);
  std::vector<float> back(v.size());
  dequantize_asym(q, p, back);
  EXPECT_FLOAT_EQ(back[0], -5.0f);
  EXPECT_FLOAT_EQ(back[3], 11.0f);
}

TEST(AsymmetricQuantTest, ErrorBoundedByHalfScale) {
  const MatrixF m = test::random_matrix(16, 16, 3);
  for (BitWidth bits :
       {BitWidth::kInt2, BitWidth::kInt3, BitWidth::kInt4}) {
    const GroupQuantized g = quantize_grouped(m, bits, 16, QuantAxis::kToken);
    const MatrixF back = dequantize_grouped(g);
    double max_scale = 0.0;
    for (const AsymParams& p : g.params) {
      max_scale = std::max(max_scale, static_cast<double>(p.scale));
    }
    EXPECT_LE(max_abs_error(m, back), max_scale / 2.0 + 1e-6)
        << "bits " << bit_count(bits);
  }
}

TEST(AsymmetricQuantTest, GroupedRoundTripShapes) {
  const MatrixF m = test::random_matrix(48, 32, 11);
  const GroupQuantized g =
      quantize_grouped(m, BitWidth::kInt4, 16, QuantAxis::kChannel);
  EXPECT_EQ(g.rows, 48u);
  EXPECT_EQ(g.cols, 32u);
  // 48 rows / 16 per group = 3 groups per channel, 32 channels.
  EXPECT_EQ(g.params.size(), 96u);
  const MatrixF back = dequantize_grouped(g);
  EXPECT_EQ(back.rows(), 48u);
  EXPECT_EQ(back.cols(), 32u);
  EXPECT_LT(relative_error(m, back), 0.08);
}

TEST(AsymmetricQuantTest, RaggedLastGroup) {
  const MatrixF m = test::random_matrix(10, 6, 13);
  const GroupQuantized g =
      quantize_grouped(m, BitWidth::kInt4, 4, QuantAxis::kChannel);
  // ceil(10/4) = 3 groups per channel.
  EXPECT_EQ(g.params.size(), 18u);
  const MatrixF back = dequantize_grouped(g);
  EXPECT_LT(relative_error(m, back), 0.1);
}

TEST(AsymmetricQuantTest, MemoryAccounting) {
  const MatrixF m = test::random_matrix(64, 64, 17);
  const GroupQuantized g =
      quantize_grouped(m, BitWidth::kInt4, 64, QuantAxis::kChannel);
  // 64*64 codes at 4 bits = 2048 bytes payload; 64 groups * 4 bytes params.
  EXPECT_EQ(g.memory_bytes(), 2048u + 256u);
}

// The Figure 10 property: when outliers concentrate in channels,
// channelwise grouping has strictly lower error than tokenwise grouping.
TEST(AsymmetricQuantTest, ChannelwiseBeatsTokenwiseOnChannelOutliers) {
  const MatrixF m = test::random_outlier_matrix(256, 64, 23, 12.0, 6);
  for (BitWidth bits : {BitWidth::kInt2, BitWidth::kInt4}) {
    const double ch = grouped_quant_rmse(m, bits, 64, QuantAxis::kChannel);
    const double tok = grouped_quant_rmse(m, bits, 64, QuantAxis::kToken);
    EXPECT_LT(ch, tok) << "bits " << bit_count(bits);
  }
}

// More bits must never increase error (monotonicity property).
class AsymBitsMonotonicity
    : public ::testing::TestWithParam<QuantAxis> {};

TEST_P(AsymBitsMonotonicity, ErrorDecreasesWithBits) {
  const QuantAxis axis = GetParam();
  const MatrixF m = test::random_outlier_matrix(128, 64, 31);
  const double e2 = grouped_quant_rmse(m, BitWidth::kInt2, 64, axis);
  const double e3 = grouped_quant_rmse(m, BitWidth::kInt3, 64, axis);
  const double e4 = grouped_quant_rmse(m, BitWidth::kInt4, 64, axis);
  const double e8 = grouped_quant_rmse(m, BitWidth::kInt8, 64, axis);
  EXPECT_GT(e2, e3);
  EXPECT_GT(e3, e4);
  EXPECT_GT(e4, e8);
}

INSTANTIATE_TEST_SUITE_P(BothAxes, AsymBitsMonotonicity,
                         ::testing::Values(QuantAxis::kChannel,
                                           QuantAxis::kToken));

// Smaller groups adapt better: error decreases (weakly) as groups shrink.
TEST(AsymmetricQuantTest, SmallerGroupsReduceError) {
  const MatrixF m = test::random_outlier_matrix(256, 64, 37);
  const double g256 =
      grouped_quant_rmse(m, BitWidth::kInt4, 256, QuantAxis::kChannel);
  const double g64 =
      grouped_quant_rmse(m, BitWidth::kInt4, 64, QuantAxis::kChannel);
  const double g16 =
      grouped_quant_rmse(m, BitWidth::kInt4, 16, QuantAxis::kChannel);
  EXPECT_LE(g64, g256 * 1.001);
  EXPECT_LE(g16, g64 * 1.001);
}

}  // namespace
}  // namespace turbo
