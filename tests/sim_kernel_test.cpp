#include "sim/kernel_model.h"

#include <gtest/gtest.h>

#include "sim/device.h"

namespace turbo::sim {
namespace {

TEST(DeviceTest, A100DatasheetNumbers) {
  const DeviceSpec d = a100_sxm_80gb();
  EXPECT_DOUBLE_EQ(d.fp16_tensor_flops, 312e12);
  EXPECT_DOUBLE_EQ(d.int8_tensor_ops, 624e12);
  EXPECT_DOUBLE_EQ(d.hbm_capacity, 80e9);
  // The paper's observation: FP32 CUDA throughput is ~3-6% of FP16 TC.
  EXPECT_LT(d.fp32_cuda_flops / d.fp16_tensor_flops, 0.07);
}

TEST(DeviceTest, EffectiveRatesAreDerated) {
  const DeviceSpec d = a100_sxm_80gb();
  EXPECT_LT(d.eff_fp16_tensor(), d.fp16_tensor_flops);
  EXPECT_LT(d.eff_bandwidth(), d.hbm_bandwidth);
  EXPECT_GT(d.eff_fp16_tensor(), 0.0);
}

TEST(DeviceTest, VariantsDiffer) {
  EXPECT_GT(h100_sxm_80gb().fp16_tensor_flops,
            a100_sxm_80gb().fp16_tensor_flops);
  EXPECT_LT(a100_pcie_40gb().hbm_bandwidth, a100_sxm_80gb().hbm_bandwidth);
}

TEST(KernelModelTest, GemmScalesLinearlyInEachDim) {
  const DeviceSpec d = a100_sxm_80gb();
  const double t1 = gemm_time(d, 128, 128, 128, MatmulPrecision::kFp16Tensor);
  const double t2 = gemm_time(d, 256, 128, 128, MatmulPrecision::kFp16Tensor);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(KernelModelTest, Int8TensorFasterThanFp16) {
  // Peak INT8 is 2x FP16, but INT8 MMA runs at lower utilization (per-tile
  // scale handling); effective advantage lands between 1.2x and 2x.
  const DeviceSpec d = a100_sxm_80gb();
  const double fp16 = gemm_time(d, 512, 512, 512, MatmulPrecision::kFp16Tensor);
  const double int8 = gemm_time(d, 512, 512, 512, MatmulPrecision::kInt8Tensor);
  EXPECT_GT(fp16 / int8, 1.2);
  EXPECT_LE(fp16 / int8, 2.0);
}

TEST(KernelModelTest, Fp32CudaMuchSlowerThanTensor) {
  const DeviceSpec d = a100_sxm_80gb();
  const double cuda = gemm_time(d, 256, 256, 256, MatmulPrecision::kFp32Cuda);
  const double tc = gemm_time(d, 256, 256, 256, MatmulPrecision::kFp16Tensor);
  EXPECT_GT(cuda / tc, 10.0);
}

TEST(KernelModelTest, SasExpFarCheaperThanFp32Exp) {
  // The core SAS claim: exponentiation on tensor cores in FP16 beats the
  // FP32 CUDA-core path by a large factor.
  const DeviceSpec d = a100_sxm_80gb();
  const double count = 1e9;
  EXPECT_GT(exp_fp32_time(d, count) / exp_sas_time(d, count), 5.0);
}

TEST(KernelModelTest, DequantArithmeticComparableAcrossDomains) {
  // FlashQ's integer dequantization is not cheaper per ALU op — its win is
  // staying fused (no pre-pass memory round trip). The arithmetic costs
  // must be the same order of magnitude.
  const DeviceSpec d = a100_sxm_80gb();
  const double count = 1e9;
  const double ratio =
      dequant_to_int8_time(d, count) / dequant_to_fp16_time(d, count);
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 5.0);
}

TEST(KernelModelTest, MemoryTimeMatchesBandwidth) {
  const DeviceSpec d = a100_sxm_80gb();
  const double t = memory_time(d, d.eff_bandwidth());
  EXPECT_NEAR(t, 1.0, 1e-9);
}

TEST(KernelModelTest, SoftmaxOverheadFp16Faster) {
  const DeviceSpec d = a100_sxm_80gb();
  EXPECT_LT(softmax_overhead_time(d, 1e9, true),
            softmax_overhead_time(d, 1e9, false));
}

}  // namespace
}  // namespace turbo::sim
