#include "baselines/gear.h"

#include <gtest/gtest.h>

#include "attention/reference.h"
#include "baselines/kivi.h"
#include "common/stats.h"
#include "quant/asymmetric.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

GearConfig small_config() {
  GearConfig cfg;
  cfg.attention.block_rows = 32;
  cfg.attention.block_cols = 32;
  cfg.chunk = 16;
  cfg.residual = 16;
  cfg.rank = 4;
  return cfg;
}

TEST(GearTest, PrefillMatchesFlashBaseline) {
  const MatrixF q = test::random_matrix(64, 16, 1);
  const MatrixF k = test::random_matrix(64, 16, 2);
  const MatrixF v = test::random_matrix(64, 16, 3);
  GearAttention gear(16, small_config());
  const MatrixF o = gear.prefill(q, k, v);
  const MatrixF ref =
      reference_attention(q, k, v, small_config().attention);
  EXPECT_LT(relative_error(o, ref), 5e-3);
}

TEST(GearTest, LowRankCompensationReducesError) {
  // Reconstruction with rank-4 compensation must beat plain per-token
  // quantization of the same chunks (GEAR's core claim).
  const std::size_t d = 32;
  const MatrixF kv = test::random_outlier_matrix(128, d, 4, 6.0, 4);

  GearConfig cfg = small_config();
  cfg.residual = 0;
  cfg.chunk = 32;
  GearAttention gear(d, cfg);
  const MatrixF q = test::random_matrix(128, d, 5);
  gear.prefill(q, kv, kv);

  // Probe reconstruction quality through decode against a known query.
  Rng rng(6);
  std::vector<float> qt(d);
  rng.fill_normal(qt, 0.0, 1.0);
  std::vector<float> kt(d, 0.0f);
  std::vector<float> vt(d, 0.0f);
  const auto o_gear = gear.decode(qt, kt, vt);

  // Plain per-token 4-bit baseline on the same data.
  MatrixF k_plain = kv;
  const GroupQuantized gq =
      quantize_grouped(kv, cfg.bits, d, QuantAxis::kToken);
  k_plain = dequantize_grouped(gq);
  MatrixF k_full = k_plain;
  k_full.append_row(std::span<const float>(kt));
  MatrixF v_full = k_plain;
  v_full.append_row(std::span<const float>(vt));

  MatrixF k_exact = kv;
  k_exact.append_row(std::span<const float>(kt));
  MatrixF v_exact = kv;
  v_exact.append_row(std::span<const float>(vt));

  const auto ref = reference_decode(qt, k_exact, v_exact, cfg.attention);
  const auto plain = reference_decode(qt, k_full, v_full, cfg.attention);
  EXPECT_LT(relative_error(o_gear, ref), relative_error(plain, ref) + 0.02);
}

TEST(GearTest, DecodeStaysCloseToExact) {
  GearAttention gear(16, small_config());
  const MatrixF q = test::random_matrix(80, 16, 7);
  MatrixF k = test::random_matrix(80, 16, 8);
  MatrixF v = test::random_matrix(80, 16, 9);
  gear.prefill(q, k, v);

  Rng rng(10);
  const AttentionConfig cfg = small_config().attention;
  for (int t = 0; t < 20; ++t) {
    std::vector<float> qt(16);
    std::vector<float> kt(16);
    std::vector<float> vt(16);
    rng.fill_normal(qt, 0.0, 1.0);
    rng.fill_normal(kt, 0.0, 1.0);
    rng.fill_normal(vt, 0.0, 1.0);
    const auto o = gear.decode(qt, kt, vt);
    k.append_row(std::span<const float>(kt));
    v.append_row(std::span<const float>(vt));
    const auto ref = reference_decode(qt, k, v, cfg);
    EXPECT_LT(relative_error(o, ref), 0.15) << "step " << t;
  }
}

TEST(GearTest, ResidualWindowBounds) {
  GearConfig cfg = small_config();
  GearAttention gear(8, cfg);
  const MatrixF m = test::random_matrix(100, 8, 11);
  gear.prefill(m, m, m);
  EXPECT_GE(gear.residual_tokens(), cfg.residual);
  EXPECT_LT(gear.residual_tokens(), cfg.residual + cfg.chunk);
}

TEST(GearTest, MemoryIncludesLowRankFactors) {
  GearConfig cfg = small_config();
  cfg.residual = 0;
  cfg.chunk = 64;
  GearAttention gear(32, cfg);
  const MatrixF m = test::random_matrix(64, 32, 12);
  gear.prefill(m, m, m);
  // One chunk each for K and V: codes + params + 2 factor pairs.
  const std::size_t factor_bytes = 2 * ((64 * 4 + 32 * 4) * 2);
  EXPECT_GE(gear.kv_cache_bytes(), factor_bytes);
  // Still far below FP16.
  EXPECT_LT(gear.kv_cache_bytes(), 2u * 64u * 32u * 2u);
}

TEST(GearTest, DeterministicAcrossRuns) {
  const MatrixF m = test::random_matrix(64, 16, 13);
  GearConfig cfg = small_config();
  GearAttention a(16, cfg);
  GearAttention b(16, cfg);
  const MatrixF q = test::random_matrix(64, 16, 14);
  const MatrixF oa = a.prefill(q, m, m);
  const MatrixF ob = b.prefill(q, m, m);
  EXPECT_EQ(oa, ob);
  std::vector<float> qt(16, 0.5f);
  std::vector<float> t(16, 0.1f);
  EXPECT_EQ(a.decode(qt, t, t), b.decode(qt, t, t));
}

TEST(GearTest, FactoryProducesWorkingInstances) {
  const auto factory = make_gear_factory(small_config());
  auto method = factory(16);
  EXPECT_EQ(method->name(), "GEAR-L");
  const MatrixF m = test::random_matrix(32, 16, 15);
  method->prefill(m, m, m);
  EXPECT_EQ(method->token_count(), 32u);
}

}  // namespace
}  // namespace turbo
