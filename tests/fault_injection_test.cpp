// Deterministic fault-injection suite (ctest label: fault).
//
// Drives the robustness contract end to end (docs/ROBUSTNESS.md):
//  - under injected page-allocation failures, swap-stream corruption and
//    PCIe latency spikes, the serving engine still terminates with every
//    request either completed or explicitly rejected — no hang, no silent
//    loss;
//  - corrupted swap-ins are detected by checksum and recovered by
//    recomputation;
//  - identical fault seeds give bit-identical results (the suite runs
//    under both Release and ASan+UBSan in CI, so this is a cross-build
//    determinism check, not just a same-process one);
//  - the real byte-level swap path (PagedKvCache -> serialize ->
//    HostSwapStore -> deserialize/adopt) survives corruption and page
//    exhaustion with all-or-nothing semantics.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/fault.h"
#include "common/rng.h"
#include "kvcache/page_allocator.h"
#include "kvcache/paged_cache.h"
#include "kvcache/serialization.h"
#include "serving/engine.h"
#include "serving/metrics.h"
#include "serving/swap.h"
#include "serving/trace.h"

namespace turbo {
namespace {

// ---- Bit-exact digest over an engine result ------------------------------

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t digest(const serving::EngineResult& r) {
  std::uint64_t h = 0;
  auto mix_d = [&](double d) {
    h = mix(h, std::bit_cast<std::uint64_t>(d));
  };
  for (const serving::Request& q : r.requests) {
    mix_d(q.prefill_start_s);
    mix_d(q.first_token_s);
    mix_d(q.finish_s);
    h = mix(h, q.generated);
    h = mix(h, q.preemptions);
    h = mix(h, q.recomputed_tokens);
  }
  mix_d(r.makespan_s);
  mix_d(r.busy_s);
  mix_d(r.swap_out_bytes);
  mix_d(r.swap_in_bytes);
  mix_d(r.swap_stall_s);
  h = mix(h, r.preemptions);
  h = mix(h, r.swap_ins);
  h = mix(h, r.checksum_failures);
  h = mix(h, r.recoveries);
  h = mix(h, r.degraded_steps);
  h = mix(h, r.injected_alloc_failures);
  h = mix(h, r.recomputed_tokens);
  h = mix(h, r.timed_out);
  h = mix(h, r.shed);
  h = mix(h, static_cast<std::uint64_t>(r.hit_time_limit));
  mix_d(r.tier_retry_stall_s);
  h = mix(h, r.tier_demotions);
  h = mix(h, r.tier_promotions);
  h = mix(h, r.tier_failovers);
  h = mix(h, r.tier_blacklists);
  h = mix(h, r.tier_fetch_retries);
  h = mix(h, r.swap_unavailable_recomputes);
  h = mix(h, r.swap_overflow_recomputes);
  return h;
}

// A trace and engine sized so KV pressure is real: Phi3-mini on a 40 GB
// card with low headroom leaves a page pool far smaller than the trace's
// aggregate working set, so preemption must carry the overload.
std::vector<serving::Request> overload_trace() {
  serving::TraceConfig t;
  t.arrival_rate = 24.0;
  t.duration_s = 15.0;
  t.prompt_log_mean = 5.5;  // median ~245 tokens
  t.prompt_log_std = 0.5;
  t.gen_log_mean = 5.5;     // long generations grow the KV during decode
  t.gen_log_std = 0.5;
  t.seed = 11;
  return serving::generate_trace(t);
}

serving::EngineConfig pressured_engine(std::uint64_t fault_seed) {
  serving::EngineConfig c;
  c.device = sim::a100_pcie_40gb();
  c.geometry = sim::phi3_mini_geometry();
  c.method = sim::AttnMethod::kTurbo;
  c.attention.kv_bits = 3.0;
  c.memory_headroom = 0.25;  // ~2.4 GB of KV: forces heavy preemption
  c.faults.seed = fault_seed;
  c.faults.page_alloc_failure_prob = 0.05;
  c.faults.stream_corruption_prob = 0.05;
  c.faults.swap_spike_prob = 0.05;
  return c;
}

void expect_full_accounting(const serving::EngineResult& r,
                            std::size_t trace_size) {
  EXPECT_FALSE(r.hit_time_limit);
  const serving::ServingMetrics m = serving::summarize(r);
  EXPECT_EQ(m.completed + m.rejected, trace_size);
  for (const serving::Request& q : r.requests) {
    ASSERT_TRUE(q.finished());
    if (q.started()) {
      EXPECT_EQ(q.generated, q.max_new_tokens);
      EXPECT_GE(q.first_token_s, q.arrival_s);
      EXPECT_GE(q.finish_s, q.first_token_s);
    } else {
      EXPECT_EQ(q.generated, 0u);  // rejected, and explicitly so
    }
  }
}

TEST(FaultMatrixTest, EngineSurvivesFaultsAcrossSeeds) {
  const auto trace = overload_trace();
  bool saw_checksum_failure = false;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const serving::EngineResult r =
        run_engine(pressured_engine(seed), trace);
    expect_full_accounting(r, trace.size());
    // The plan must have actually been exercised.
    EXPECT_GT(r.preemptions, 0u);
    EXPECT_GT(r.preempted_swap, 0u);
    EXPECT_GT(r.swap_ins, 0u);
    EXPECT_GT(r.injected_alloc_failures, 0u);
    EXPECT_GT(r.degraded_steps, 0u);
    EXPECT_GT(r.swap_out_bytes, 0.0);
    EXPECT_GT(r.swap_stall_s, 0.0);
    // Every detected corruption was recovered, never dropped.
    EXPECT_EQ(r.checksum_failures, r.recoveries);
    saw_checksum_failure |= r.checksum_failures > 0;
  }
  EXPECT_TRUE(saw_checksum_failure);
}

TEST(FaultMatrixTest, IdenticalSeedsBitIdenticalResults) {
  const auto trace = overload_trace();
  const serving::EngineConfig cfg = pressured_engine(2);
  const serving::EngineResult a = run_engine(cfg, trace);
  const serving::EngineResult b = run_engine(cfg, trace);
  EXPECT_EQ(digest(a), digest(b));
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.checksum_failures, b.checksum_failures);
}

TEST(FaultMatrixTest, ChunkedPrefillBitIdenticalUnderFaults) {
  // Chunked prefill interacts with every pressure path (mid-prompt
  // eviction, partial-page allocation, swap of partially-prefilled KV);
  // the result must stay bit-reproducible per seed, and the chunk size
  // must actually change the schedule.
  const auto trace = overload_trace();
  serving::EngineConfig cfg = pressured_engine(3);
  cfg.prefill_chunk_tokens = 128;
  const serving::EngineResult a = run_engine(cfg, trace);
  const serving::EngineResult b = run_engine(cfg, trace);
  EXPECT_EQ(digest(a), digest(b));
  expect_full_accounting(a, trace.size());

  serving::EngineConfig monolithic = pressured_engine(3);
  monolithic.prefill_chunk_tokens = 0;
  const serving::EngineResult c = run_engine(monolithic, trace);
  expect_full_accounting(c, trace.size());
  EXPECT_NE(digest(a), digest(c));
}

TEST(FaultMatrixTest, DifferentSeedsDifferentFaultStreams) {
  const auto trace = overload_trace();
  const serving::EngineResult a = run_engine(pressured_engine(1), trace);
  const serving::EngineResult b = run_engine(pressured_engine(2), trace);
  EXPECT_NE(digest(a), digest(b));
}

TEST(FaultMatrixTest, BackoffJitterDeterministicAndSeedSensitive) {
  // Re-admission jitter is keyed by (jitter_seed, request id, eviction
  // count), never by a shared RNG stream: same seed must be bit-identical
  // run to run, a different seed must change the schedule, and disabling
  // jitter must be its own (deterministic) schedule. None of this may
  // touch the fault stream's determinism.
  const auto trace = overload_trace();
  const serving::EngineConfig base = pressured_engine(2);
  const serving::EngineResult a = run_engine(base, trace);
  const serving::EngineResult b = run_engine(base, trace);
  EXPECT_EQ(digest(a), digest(b));

  serving::EngineConfig reseeded = pressured_engine(2);
  reseeded.jitter_seed = 0xFEED;
  const serving::EngineResult c = run_engine(reseeded, trace);
  const serving::EngineResult d = run_engine(reseeded, trace);
  EXPECT_EQ(digest(c), digest(d));
  ASSERT_GT(a.preemptions, 0u);  // jitter can only matter under eviction
  EXPECT_NE(digest(a), digest(c));

  serving::EngineConfig no_jitter = pressured_engine(2);
  no_jitter.backoff_jitter = 0.0;
  const serving::EngineResult e = run_engine(no_jitter, trace);
  const serving::EngineResult f = run_engine(no_jitter, trace);
  EXPECT_EQ(digest(e), digest(f));
  EXPECT_NE(digest(a), digest(e));
  expect_full_accounting(e, trace.size());
}

TEST(FaultMatrixTest, ZeroProbabilityPlanIsInert) {
  // A plan with a seed but all-zero probabilities must behave exactly
  // like no plan at all (probes consume no randomness).
  const auto trace = overload_trace();
  serving::EngineConfig with_seed = pressured_engine(5);
  with_seed.faults = FaultPlan{};
  with_seed.faults.seed = 5;
  serving::EngineConfig no_plan = pressured_engine(5);
  no_plan.faults = FaultPlan{};
  const serving::EngineResult a = run_engine(with_seed, trace);
  const serving::EngineResult b = run_engine(no_plan, trace);
  EXPECT_EQ(digest(a), digest(b));
  EXPECT_EQ(a.injected_alloc_failures, 0u);
  EXPECT_EQ(a.checksum_failures, 0u);
}

TEST(FaultMatrixTest, TierFaultSeedsBitIdentical) {
  // Per-tier faults (unavailability, media corruption, latency spikes)
  // ride the same deterministic Bernoulli stream as every other fault:
  // a seeded plan must replay bit-identically, and the digest — which
  // folds in every tier counter — must agree across build flavors (this
  // test runs under both the Release and ASan+UBSan CI matrices).
  const auto trace = overload_trace();
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE("tier fault seed " + std::to_string(seed));
    serving::EngineConfig cfg = pressured_engine(seed);
    cfg.swap.host_capacity_bytes = 64ull << 20;  // keep the disk tier hot
    for (std::size_t t = 0; t < 2; ++t) {
      cfg.faults.tiers[t].unavailable_prob = 0.05;
      cfg.faults.tiers[t].corruption_prob = 0.02;
      cfg.faults.tiers[t].spike_prob = 0.05;
    }
    const serving::EngineResult a = run_engine(cfg, trace);
    const serving::EngineResult b = run_engine(cfg, trace);
    EXPECT_EQ(digest(a), digest(b));
    expect_full_accounting(a, trace.size());
    EXPECT_EQ(a.checksum_failures, a.recoveries);
  }
}

TEST(FaultMatrixTest, AllTiersDeadRecomputeStorm) {
  // Both tiers permanently unavailable: every swap-out attempt is
  // refused and every victim must fall back to recompute. The engine
  // must absorb the storm — full accounting, no swap traffic, nothing
  // parked — and stay bit-reproducible.
  const auto trace = overload_trace();
  serving::EngineConfig cfg = pressured_engine(7);
  cfg.faults.tiers[0].unavailable_prob = 1.0;
  cfg.faults.tiers[1].unavailable_prob = 1.0;
  const serving::EngineResult r = run_engine(cfg, trace);
  expect_full_accounting(r, trace.size());
  EXPECT_GT(r.preemptions, 0u);
  EXPECT_GT(r.swap_overflow_recomputes, 0u);  // refused stores recomputed
  EXPECT_EQ(r.swap_ins, 0u);                  // nothing ever parked...
  EXPECT_EQ(r.swap_out_bytes, 0.0);           // ...so no bytes moved
  EXPECT_EQ(r.swap_in_bytes, 0.0);
  EXPECT_GT(r.tier_blacklists, 0u);  // the health tracker saw the storm
  const serving::EngineResult again = run_engine(cfg, trace);
  EXPECT_EQ(digest(r), digest(again));
}

// ---- PageAllocator injection ---------------------------------------------

TEST(FaultInjectionTest, PageAllocatorInjectedFailuresAreDeterministic) {
  FaultPlan plan;
  plan.seed = 42;
  plan.page_alloc_failure_prob = 0.3;
  std::vector<bool> first_run;
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector(plan);
    PageAllocator alloc(256);
    alloc.set_fault_injector(&injector);
    std::vector<bool> outcomes;
    std::size_t failures = 0;
    for (int i = 0; i < 128; ++i) {
      const bool ok = alloc.allocate() != kInvalidPage;
      outcomes.push_back(ok);
      if (!ok) ++failures;
    }
    EXPECT_EQ(failures, alloc.injected_failures());
    EXPECT_EQ(failures, injector.injected_alloc_failures());
    EXPECT_GT(failures, 0u);
    EXPECT_LT(failures, 128u);
    if (run == 0) {
      first_run = outcomes;
    } else {
      EXPECT_EQ(outcomes, first_run);
    }
  }
}

// ---- Real byte-level swap path -------------------------------------------

constexpr std::size_t kDim = 16;
constexpr std::size_t kPageTokens = 8;

std::vector<float> random_vec(Rng& rng) {
  std::vector<float> v(kDim);
  rng.fill_normal(v, 0.0, 1.0);
  return v;
}

PagedKvCache::SeqId fill_sequence(PagedKvCache& cache, std::size_t tokens,
                                  std::uint64_t seed) {
  const auto seq = cache.create_sequence();
  Rng rng(seed);
  for (std::size_t t = 0; t < tokens; ++t) {
    const auto k = random_vec(rng);
    const auto v = random_vec(rng);
    TURBO_CHECK(cache.append_token(seq, k, v));
  }
  return seq;
}

TEST(SwapStoreTest, RoundTripRestoresSequenceBitExact) {
  PagedKvCache cache(kDim, BitWidth::kInt4, kPageTokens, 32);
  const auto seq = fill_sequence(cache, kPageTokens * 2 + 3, 9);
  const auto blocks_before = cache.blocks(seq);
  std::vector<std::vector<std::uint8_t>> k_payloads;
  for (const KvBlock* b : blocks_before) {
    k_payloads.push_back(b->k.packed);
  }
  const std::size_t tokens = cache.token_count(seq);
  const std::size_t tail = cache.key_buffer(seq).size();

  serving::HostSwapStore store;
  const std::size_t bytes = serving::swap_out(cache, seq, 77, store);
  EXPECT_GT(bytes, 0u);
  EXPECT_TRUE(store.contains(77));
  EXPECT_EQ(store.stored_bytes(), bytes);
  EXPECT_FALSE(cache.has_sequence(seq));
  EXPECT_EQ(cache.used_pages(), 0u);  // pages really were released

  const serving::SwapInResult in = serving::swap_in(cache, 77, store);
  ASSERT_EQ(in.status, serving::SwapInStatus::kOk);
  EXPECT_FALSE(store.contains(77));
  EXPECT_EQ(cache.token_count(in.seq), tokens);
  EXPECT_EQ(cache.key_buffer(in.seq).size(), tail);
  const auto blocks_after = cache.blocks(in.seq);
  ASSERT_EQ(blocks_after.size(), k_payloads.size());
  for (std::size_t i = 0; i < blocks_after.size(); ++i) {
    EXPECT_EQ(blocks_after[i]->k.packed, k_payloads[i]);
  }
}

TEST(SwapStoreTest, SwapOutOfForkLeavesParentIntact) {
  // Shared (refcounted) pages are serialized by value; swapping the fork
  // out and back must neither disturb the parent nor share pages with it
  // afterwards.
  PagedKvCache cache(kDim, BitWidth::kInt4, kPageTokens, 32);
  const auto parent = fill_sequence(cache, kPageTokens * 2 + 2, 13);
  const auto fork = cache.fork_sequence(parent);
  EXPECT_EQ(cache.shared_pages(), 2u);
  const std::size_t parent_tokens = cache.token_count(parent);
  const std::size_t fork_tokens = cache.token_count(fork);

  serving::HostSwapStore store;
  serving::swap_out(cache, fork, 1, store);
  EXPECT_EQ(cache.shared_pages(), 0u);
  EXPECT_EQ(cache.token_count(parent), parent_tokens);

  const serving::SwapInResult in = serving::swap_in(cache, 1, store);
  ASSERT_EQ(in.status, serving::SwapInStatus::kOk);
  EXPECT_EQ(cache.token_count(in.seq), fork_tokens);
  EXPECT_EQ(cache.shared_pages(), 0u);  // restored pages are private
  EXPECT_EQ(cache.token_count(parent), parent_tokens);
}

TEST(SwapStoreTest, CorruptedStreamDetectedAndDropped) {
  PagedKvCache cache(kDim, BitWidth::kInt4, kPageTokens, 32);
  const auto seq = fill_sequence(cache, kPageTokens * 3, 21);
  serving::HostSwapStore store;
  const std::size_t bytes = serving::swap_out(cache, seq, 5, store);

  auto stream = store.fetch(5);
  ASSERT_TRUE(stream.has_value());
  (*stream)[bytes / 2] ^= 0x10;  // flip one payload bit
  store.store(5, std::move(*stream));

  const std::size_t used_before = cache.used_pages();
  const serving::SwapInResult in = serving::swap_in(cache, 5, store);
  EXPECT_EQ(in.status, serving::SwapInStatus::kChecksumMismatch);
  EXPECT_FALSE(store.contains(5));           // corrupt stream is consumed
  EXPECT_EQ(cache.used_pages(), used_before);  // nothing adopted
}

TEST(SwapStoreTest, InjectedCorruptionTriggersChecksumPath) {
  PagedKvCache cache(kDim, BitWidth::kInt4, kPageTokens, 32);
  const auto seq = fill_sequence(cache, kPageTokens * 2, 33);
  serving::HostSwapStore store;
  serving::swap_out(cache, seq, 8, store);

  FaultPlan plan;
  plan.seed = 3;
  plan.stream_corruption_prob = 1.0;  // always corrupt
  FaultInjector injector(plan);
  const serving::SwapInResult in =
      serving::swap_in(cache, 8, store, &injector);
  EXPECT_EQ(in.status, serving::SwapInStatus::kChecksumMismatch);
  EXPECT_EQ(injector.injected_corruptions(), 1u);
}

TEST(SwapStoreTest, OutOfPagesKeepsStreamForRetry) {
  PagedKvCache cache(kDim, BitWidth::kInt4, kPageTokens, 4);
  const auto seq = fill_sequence(cache, kPageTokens * 3 + 1, 17);  // 3 pages + tail
  serving::HostSwapStore store;
  serving::swap_out(cache, seq, 2, store);

  // Occupy the pool so the swap-in cannot be backed.
  const auto hog = fill_sequence(cache, kPageTokens * 2 + 1, 18);
  const serving::SwapInResult blocked = serving::swap_in(cache, 2, store);
  EXPECT_EQ(blocked.status, serving::SwapInStatus::kOutOfPages);
  EXPECT_TRUE(store.contains(2));  // all-or-nothing: stream kept

  cache.release_sequence(hog);
  const serving::SwapInResult retry = serving::swap_in(cache, 2, store);
  ASSERT_EQ(retry.status, serving::SwapInStatus::kOk);
  EXPECT_EQ(cache.token_count(retry.seq), kPageTokens * 3 + 1);
}

TEST(SwapStoreTest, MissingKeyReported) {
  PagedKvCache cache(kDim, BitWidth::kInt4, kPageTokens, 4);
  serving::HostSwapStore store;
  EXPECT_EQ(serving::swap_in(cache, 99, store).status,
            serving::SwapInStatus::kMissing);
}

}  // namespace
}  // namespace turbo
