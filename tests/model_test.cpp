#include <gtest/gtest.h>

#include "attention/turbo_method.h"
#include "baselines/fp16_method.h"
#include "baselines/kivi.h"
#include "common/stats.h"
#include "model/generator.h"
#include "model/pipeline.h"
#include "model/profile.h"
#include "quant/error.h"

namespace turbo::model {
namespace {

TEST(ProfileTest, NamedProfilesDistinct) {
  EXPECT_NE(llama3_8b_profile().name, phi3_mini_profile().name);
  // Phi-3's signature: stronger value-channel outliers than LLaMA-3.
  EXPECT_GT(phi3_mini_profile().outliers.v_outlier_scale,
            llama3_8b_profile().outliers.v_outlier_scale);
}

TEST(ProfileTest, ChannelScalesDeterministic) {
  const ModelProfile p = llama3_8b_profile();
  const auto a = channel_scales(p, 3, TensorKind::kQueryKey, 42);
  const auto b = channel_scales(p, 3, TensorKind::kQueryKey, 42);
  EXPECT_EQ(a, b);
  const auto c = channel_scales(p, 4, TensorKind::kQueryKey, 42);
  EXPECT_NE(a, c);
}

TEST(ProfileTest, ScalesAtLeastOne) {
  const ModelProfile p = phi3_mini_profile();
  for (std::size_t h = 0; h < p.heads; ++h) {
    for (TensorKind k : {TensorKind::kQueryKey, TensorKind::kValue}) {
      for (float s : channel_scales(p, h, k, 7)) {
        EXPECT_GE(s, 1.0f);
      }
    }
  }
}

TEST(ProfileTest, LaterHeadsCarryMoreOutliers) {
  // head_variability ramps severity with head index — the structure the
  // headwise selector exploits.
  const ModelProfile p = phi3_mini_profile();
  auto total_outlier_mass = [&](std::size_t head) {
    double mass = 0.0;
    for (float s : channel_scales(p, head, TensorKind::kQueryKey, 11)) {
      mass += s - 1.0f;
    }
    return mass;
  };
  EXPECT_LT(total_outlier_mass(0), total_outlier_mass(p.heads - 1));
}

TEST(GeneratorTest, ShapesAndDeterminism) {
  QkvGenerator gen(llama3_8b_profile(), 5);
  const HeadTensors a = gen.generate_head(2, 100);
  EXPECT_EQ(a.q.rows(), 100u);
  EXPECT_EQ(a.q.cols(), 32u);
  const HeadTensors b = gen.generate_head(2, 100);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.v, b.v);
}

TEST(GeneratorTest, ChannelGapsDominateTokenGaps) {
  // The Figs. 8/9 property: channel-wise min-max gaps have much heavier
  // tails than token-wise gaps.
  QkvGenerator gen(phi3_mini_profile(), 7);
  const HeadTensors t = gen.generate_head(7, 512);  // outlier-heavy head
  const auto ch = channel_min_max(t.v);
  const auto tok = token_min_max(t.v);
  std::vector<float> ch_gaps;
  std::vector<float> tok_gaps;
  for (const auto& mm : ch) ch_gaps.push_back(mm.gap());
  for (const auto& mm : tok) tok_gaps.push_back(mm.gap());
  EXPECT_GT(percentile(ch_gaps, 95), percentile(tok_gaps, 95));
}

TEST(GeneratorTest, Phi3ValueOutliersStrongerThanLlama) {
  QkvGenerator phi(phi3_mini_profile(), 9);
  QkvGenerator llama(llama3_8b_profile(), 9);
  auto max_channel_gap = [](const MatrixF& m) {
    float g = 0.0f;
    for (const auto& mm : channel_min_max(m)) g = std::max(g, mm.gap());
    return g;
  };
  // Compare the most outlier-heavy head of each profile.
  const float phi_gap =
      max_channel_gap(phi.generate_head(7, 512).v);
  const float llama_gap =
      max_channel_gap(llama.generate_head(7, 512).v);
  EXPECT_GT(phi_gap, llama_gap);
}

TEST(GeneratorTest, ChannelwiseQuantBeatsTokenwiseOnGenerated) {
  // Figure 10 on generated data: channel groups adapt to the outlier
  // channels; token groups smear them across the whole row.
  QkvGenerator gen(phi3_mini_profile(), 13);
  const HeadTensors t = gen.generate_head(6, 256);
  const double ch =
      grouped_quant_rmse(t.v, BitWidth::kInt4, 64, QuantAxis::kChannel);
  const double tok =
      grouped_quant_rmse(t.v, BitWidth::kInt4, 64, QuantAxis::kToken);
  EXPECT_LT(ch, tok);
}

TEST(PipelineTest, ExactMethodHasZeroError) {
  QkvGenerator gen(llama3_8b_profile(), 3);
  PipelineConfig cfg;
  cfg.prefill_tokens = 96;
  cfg.decode_steps = 8;
  const MethodFidelity f =
      measure_fidelity(gen, make_exact_factory({}), cfg);
  EXPECT_EQ(f.prefill_rel_err, 0.0);
  EXPECT_EQ(f.decode_rel_err, 0.0);
}

TEST(PipelineTest, TurboErrorSmallAndBytesLow) {
  QkvGenerator gen(llama3_8b_profile(), 3);
  PipelineConfig cfg;
  cfg.prefill_tokens = 128;
  cfg.decode_steps = 8;
  TurboMethodConfig tm;
  const MethodFidelity f =
      measure_fidelity(gen, make_turbo_factory(tm), cfg);
  EXPECT_LT(f.prefill_rel_err, 0.05);
  EXPECT_LT(f.decode_rel_err, 0.25);
  EXPECT_LT(f.bytes_per_token, 2.0 * 32 * 2 / 3.0);  // well under FP16
}

TEST(PipelineTest, InputNoiseRaisesError) {
  // Table 5's mechanism: upstream weight-quantization noise composes with
  // attention approximation error.
  QkvGenerator gen(llama3_8b_profile(), 3);
  PipelineConfig clean;
  clean.prefill_tokens = 96;
  clean.decode_steps = 4;
  PipelineConfig noisy = clean;
  noisy.input_noise = 0.05;
  TurboMethodConfig tm;
  const MethodFidelity a = measure_fidelity(gen, make_turbo_factory(tm), clean);
  const MethodFidelity b = measure_fidelity(gen, make_turbo_factory(tm), noisy);
  // Noise is injected into the inputs of *both* the method and the exact
  // reference, so fidelity stays comparable; the composition must at
  // minimum keep errors bounded.
  EXPECT_LT(b.prefill_rel_err, 0.08);
  (void)a;
}

TEST(PipelineTest, HeadStatsRankOutlierHeads) {
  QkvGenerator gen(phi3_mini_profile(), 21);
  const auto stats = collect_head_stats(gen, 256);
  ASSERT_EQ(stats.size(), gen.profile().heads);
  // The ramped severity must be visible in the priority metric.
  EXPECT_GT(stats.back().priority(), stats.front().priority());
}

}  // namespace
}  // namespace turbo::model
