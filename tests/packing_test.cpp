#include "quant/packing.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace turbo {
namespace {

TEST(PackingTest, ByteCounts) {
  EXPECT_EQ(packed_byte_count(8, BitWidth::kInt2), 2u);
  EXPECT_EQ(packed_byte_count(8, BitWidth::kInt4), 4u);
  EXPECT_EQ(packed_byte_count(8, BitWidth::kInt3), 3u);
  EXPECT_EQ(packed_byte_count(3, BitWidth::kInt4), 2u);  // rounds up
  EXPECT_EQ(packed_byte_count(0, BitWidth::kInt2), 0u);
}

TEST(PackingTest, Int4KnownLayout) {
  std::vector<std::uint8_t> codes{0x1, 0xf};
  const auto packed = pack_codes(codes, BitWidth::kInt4);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0], 0xf1);  // little-endian within the byte
}

TEST(PackingTest, Int2KnownLayout) {
  std::vector<std::uint8_t> codes{0x3, 0x0, 0x1, 0x2};
  const auto packed = pack_codes(codes, BitWidth::kInt2);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0], 0b10010011);
}

class PackingRoundTrip
    : public ::testing::TestWithParam<std::tuple<BitWidth, std::size_t>> {};

TEST_P(PackingRoundTrip, RoundTripsExactly) {
  const auto [bits, count] = GetParam();
  Rng rng(static_cast<std::uint64_t>(count) * 31 +
          static_cast<std::uint64_t>(bit_count(bits)));
  std::vector<std::uint8_t> codes(count);
  for (auto& c : codes) {
    c = static_cast<std::uint8_t>(rng.uniform_index(level_count(bits)));
  }
  const auto packed = pack_codes(codes, bits);
  EXPECT_EQ(packed.size(), packed_byte_count(count, bits));
  const auto back = unpack_codes(packed, bits, count);
  EXPECT_EQ(back, codes);
}

INSTANTIATE_TEST_SUITE_P(
    AllWidthsAndSizes, PackingRoundTrip,
    ::testing::Combine(::testing::Values(BitWidth::kInt2, BitWidth::kInt3,
                                         BitWidth::kInt4),
                       ::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{8}, std::size_t{64},
                                         std::size_t{1000})));

TEST(PackingTest, StraddlingByteBoundaries) {
  // 3-bit codes straddle byte boundaries; all-max codes stress the carry.
  std::vector<std::uint8_t> codes(17, 0x7);
  const auto packed = pack_codes(codes, BitWidth::kInt3);
  const auto back = unpack_codes(packed, BitWidth::kInt3, codes.size());
  EXPECT_EQ(back, codes);
}

TEST(PackingTest, CompressionRatioInt2) {
  std::vector<std::uint8_t> codes(256, 0x2);
  const auto packed = pack_codes(codes, BitWidth::kInt2);
  EXPECT_EQ(packed.size(), 64u);  // 4x over one-byte-per-code
}

}  // namespace
}  // namespace turbo
