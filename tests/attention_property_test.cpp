// Cross-kernel property sweeps: invariants every attention implementation
// must satisfy, parameterized over shapes, bit-widths and windows.
#include <cmath>

#include <gtest/gtest.h>

#include "attention/flash.h"
#include "attention/reference.h"
#include "attention/turbo.h"
#include "common/stats.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

// --- Turbo prefill error scales with head_dim and bits -------------------

class TurboShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, BitWidth>> {};

TEST_P(TurboShapeSweep, PrefillWithinBudgetAndCacheConsistent) {
  const auto [head_dim, bits] = GetParam();
  const std::size_t tokens = 96;
  const MatrixF q = test::random_matrix(tokens, head_dim, 1);
  const MatrixF k = test::random_matrix(tokens, head_dim, 2);
  const MatrixF v = test::random_matrix(tokens, head_dim, 3);
  AttentionConfig cfg;
  cfg.block_rows = 32;
  cfg.block_cols = 32;
  const Sas sas;
  QuantizedKvCache cache(head_dim, bits, 32, 32);
  const TurboPrefillResult r =
      turbo_attention_prefill(q, k, v, cfg, sas, &cache);

  // Output error independent of head_dim, bounded by the INT8+SAS budget
  // (prefill never reads the INT4/2 cache).
  const MatrixF ref = reference_attention(q, k, v, cfg);
  EXPECT_LT(relative_error(r.o, ref), 0.05)
      << "d=" << head_dim << " bits=" << bit_count(bits);

  // Cache holds every token; reconstruction error ordered by bits.
  EXPECT_EQ(cache.token_count(), tokens);
  const double k_err = relative_error(cache.reconstruct_keys(), k);
  const double budget = bits == BitWidth::kInt4
                            ? 0.15
                            : (bits == BitWidth::kInt3 ? 0.3 : 0.6);
  EXPECT_LT(k_err, budget);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TurboShapeSweep,
    ::testing::Combine(::testing::Values(std::size_t{16}, std::size_t{64},
                                         std::size_t{128}),
                       ::testing::Values(BitWidth::kInt2, BitWidth::kInt3,
                                         BitWidth::kInt4)));

// --- Window x causal combinations across kernels --------------------------

class WindowCausalSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(WindowCausalSweep, FlashTracksReference) {
  const auto [window, causal] = GetParam();
  const MatrixF q = test::random_matrix(45, 16, 4);
  const MatrixF k = test::random_matrix(45, 16, 5);
  const MatrixF v = test::random_matrix(45, 16, 6);
  AttentionConfig cfg;
  cfg.window = window;
  cfg.causal = causal;
  cfg.block_rows = 16;
  cfg.block_cols = 16;
  FlashOptions options;
  options.emulate_fp16 = false;
  const FlashResult r = flash_attention(q, k, v, cfg, options);
  const MatrixF ref = reference_attention(q, k, v, cfg);
  EXPECT_LT(max_abs_error(r.o, ref), 1e-4)
      << "window=" << window << " causal=" << causal;
}

INSTANTIATE_TEST_SUITE_P(
    Windows, WindowCausalSweep,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{9}, std::size_t{45},
                                         std::size_t{100}),
                       ::testing::Bool()));

// --- Attention-defining invariants ----------------------------------------

TEST(AttentionPropertyTest, PermutingKvPairsLeavesOutputUnchanged) {
  // Non-causal attention is a set operation over (k, v) pairs.
  const MatrixF q = test::random_matrix(4, 8, 7);
  MatrixF k = test::random_matrix(12, 8, 8);
  MatrixF v = test::random_matrix(12, 8, 9);
  AttentionConfig cfg;
  cfg.causal = false;
  const MatrixF before = reference_attention(q, k, v, cfg);

  // Swap rows 2 and 9 of both K and V.
  for (std::size_t c = 0; c < 8; ++c) {
    std::swap(k(2, c), k(9, c));
    std::swap(v(2, c), v(9, c));
  }
  const MatrixF after = reference_attention(q, k, v, cfg);
  EXPECT_LT(max_abs_error(before, after), 1e-5);
}

TEST(AttentionPropertyTest, DuplicatedKeyGetsDoubleWeight) {
  // Appending an exact copy of key j is equivalent to doubling exp(s_j).
  MatrixF q(1, 4, 0.5f);
  MatrixF k(2, 4);
  MatrixF v(2, 4);
  Rng rng(10);
  rng.fill_normal(k.flat(), 0.0, 1.0);
  rng.fill_normal(v.flat(), 0.0, 1.0);
  AttentionConfig cfg;
  cfg.causal = false;

  MatrixF k3 = k;
  MatrixF v3 = v;
  k3.append_row(k.row(1));
  v3.append_row(v.row(1));
  const MatrixF o3 = reference_attention(q, k3, v3, cfg);

  // Manual: weights w0, 2*w1 normalized.
  const float scale = cfg.effective_scale(4);
  float s0 = 0.0f;
  float s1 = 0.0f;
  for (std::size_t c = 0; c < 4; ++c) {
    s0 += q(0, c) * k(0, c);
    s1 += q(0, c) * k(1, c);
  }
  const double w0 = std::exp(static_cast<double>(s0 * scale));
  const double w1 = 2.0 * std::exp(static_cast<double>(s1 * scale));
  for (std::size_t c = 0; c < 4; ++c) {
    const double expect = (w0 * v(0, c) + w1 * v(1, c)) / (w0 + w1);
    EXPECT_NEAR(o3(0, c), expect, 1e-5);
  }
}

TEST(AttentionPropertyTest, ValueScalingIsLinear) {
  // Attention output is linear in V.
  const MatrixF q = test::random_matrix(4, 8, 11);
  const MatrixF k = test::random_matrix(16, 8, 12);
  MatrixF v = test::random_matrix(16, 8, 13);
  AttentionConfig cfg;
  cfg.causal = false;
  const MatrixF o1 = reference_attention(q, k, v, cfg);
  for (float& x : v.flat()) x *= 3.0f;
  const MatrixF o3 = reference_attention(q, k, v, cfg);
  for (std::size_t i = 0; i < o1.size(); ++i) {
    EXPECT_NEAR(o3.flat()[i], 3.0f * o1.flat()[i], 1e-4f);
  }
}

TEST(AttentionPropertyTest, TurboDecodeInvariantToBlockBoundaries) {
  // The same token stream compressed under different Bc gives only
  // quantization-grain differences, not structural ones.
  const std::size_t d = 16;
  const MatrixF k = test::random_matrix(96, d, 14);
  const MatrixF v = test::random_matrix(96, d, 15);
  const MatrixF qp = test::random_matrix(96, d, 16);
  const Sas sas;
  std::vector<float> q(d, 0.3f);

  std::vector<std::vector<float>> outs;
  for (std::size_t bc : {16u, 32u, 48u}) {
    AttentionConfig cfg;
    cfg.block_rows = bc;
    cfg.block_cols = bc;
    QuantizedKvCache cache(d, BitWidth::kInt4, bc, bc);
    turbo_attention_prefill(qp, k, v, cfg, sas, &cache);
    outs.push_back(turbo_attention_decode(q, cache, cfg, sas));
  }
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_LT(relative_error(outs[i], outs[0]), 0.15) << "variant " << i;
  }
}

TEST(AttentionPropertyTest, LseConsistentAcrossKernels) {
  const MatrixF q = test::random_matrix(24, 16, 17);
  const MatrixF k = test::random_matrix(24, 16, 18);
  const MatrixF v = test::random_matrix(24, 16, 19);
  AttentionConfig cfg;
  const Sas sas;
  std::vector<float> ref_lse(24);
  reference_attention_with_lse(q, k, v, cfg, ref_lse);
  const FlashResult f = flash_attention(q, k, v, cfg);
  const TurboPrefillResult t =
      turbo_attention_prefill(q, k, v, cfg, sas, nullptr);
  for (std::size_t i = 0; i < 24; ++i) {
    EXPECT_NEAR(f.lse[i], ref_lse[i], 0.02f);
    EXPECT_NEAR(t.lse[i], ref_lse[i], 0.2f);
  }
}

}  // namespace
}  // namespace turbo
