// Boundary-value tests for the checked-conversion helpers and the
// invariants the correctness-tooling layer enforces: INT8 headroom
// quantization at exactly +-119, progressive INT4/INT2 zero-point
// boundaries, empty / zero-row Matrix slicing, TURBO_CHECK failure
// messages, and rejection of corrupt serialized KV-cache streams.
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/matrix.h"
#include "common/numeric.h"
#include "common/rng.h"
#include "kvcache/serialization.h"
#include "quant/progressive.h"
#include "quant/symmetric.h"

namespace turbo {
namespace {

// ---- saturate_cast ------------------------------------------------------

TEST(SaturateCast, FloatToIntClampsOutOfRange) {
  EXPECT_EQ(saturate_cast<std::int8_t>(200.0f), 127);
  EXPECT_EQ(saturate_cast<std::int8_t>(-200.0f), -128);
  EXPECT_EQ(saturate_cast<std::uint8_t>(300.0f), 255);
  EXPECT_EQ(saturate_cast<std::uint8_t>(-1.0f), 0);
  EXPECT_EQ(saturate_cast<std::int8_t>(42.0f), 42);
}

TEST(SaturateCast, FloatSpecialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(saturate_cast<std::int8_t>(inf), 127);
  EXPECT_EQ(saturate_cast<std::int8_t>(-inf), -128);
  EXPECT_EQ(saturate_cast<std::uint8_t>(inf), 255);
  // NaN maps to zero rather than invoking the UB of a bare cast.
  EXPECT_EQ(saturate_cast<std::int8_t>(nan), 0);
  EXPECT_EQ(saturate_cast<std::uint8_t>(nan), 0);
}

TEST(SaturateCast, IntToIntClamps) {
  EXPECT_EQ(saturate_cast<std::uint8_t>(-5), 0);
  EXPECT_EQ(saturate_cast<std::uint8_t>(256), 255);
  EXPECT_EQ(saturate_cast<std::int8_t>(1000), 127);
  EXPECT_EQ(saturate_cast<std::int8_t>(-1000), -128);
  EXPECT_EQ(saturate_cast<std::int8_t>(std::uint64_t{1} << 40), 127);
  EXPECT_EQ(saturate_cast<std::uint8_t>(std::int64_t{-1}), 0);
  EXPECT_EQ(saturate_cast<std::int32_t>(std::int8_t{-7}), -7);
}

TEST(TruncToU8, IsModularNotSaturating) {
  // Bit-packing relies on modular truncation: high bits are routed to the
  // next byte, so 0x1FF must become 0xFF, not clamp.
  EXPECT_EQ(trunc_to_u8(0x1FF), 0xFF);
  EXPECT_EQ(trunc_to_u8(256), 0x00);
  EXPECT_EQ(trunc_to_u8(-1), 0xFF);
  EXPECT_EQ(trunc_to_u8(0x1234), 0x34);
}

TEST(ClampToI8, IntOverload) {
  EXPECT_EQ(clamp_to_i8(0), 0);
  EXPECT_EQ(clamp_to_i8(127), 127);
  EXPECT_EQ(clamp_to_i8(128), 127);
  EXPECT_EQ(clamp_to_i8(-127), -127);
  // -128 is representable in int8 but excluded from the symmetric lattice.
  EXPECT_EQ(clamp_to_i8(-128), -127);
  EXPECT_EQ(clamp_to_i8(std::numeric_limits<std::int32_t>::min()), -127);
}

TEST(ClampToI8, FloatOverloadRoundsThenClamps) {
  EXPECT_EQ(clamp_to_i8(3.4f), 3);
  EXPECT_EQ(clamp_to_i8(-3.6f), -4);
  EXPECT_EQ(clamp_to_i8(126.6f), 127);
  EXPECT_EQ(clamp_to_i8(500.0f), 127);
  EXPECT_EQ(clamp_to_i8(-500.0f), -127);
  EXPECT_EQ(clamp_to_i8(std::numeric_limits<float>::quiet_NaN()), 0);
}

TEST(ClampToI8, RangeOverload) {
  EXPECT_EQ(clamp_to_i8(-3.0f, 0, 127), 0);
  EXPECT_EQ(clamp_to_i8(200.0f, 0, 127), 127);
  EXPECT_EQ(clamp_to_i8(64.2f, 0, 127), 64);
  // NaN lands on the in-range value closest to zero.
  EXPECT_EQ(clamp_to_i8(std::numeric_limits<float>::quiet_NaN(), 5, 100), 5);
  EXPECT_EQ(clamp_to_i8(std::numeric_limits<float>::quiet_NaN(), -100, -5),
            -5);
}

// ---- INT8 headroom boundary (Algorithm 1) -------------------------------

TEST(SymmetricHeadroom, TileMaximumQuantizesToExactly119) {
  // scale = max|x| / 119, so the element realizing the maximum must land
  // on the +-119 code exactly — that is the whole point of the headroom.
  const std::vector<float> values = {0.5f, -8.0f, 3.25f, 8.0f, -1.0f};
  const float scale = symmetric_scale_int8(values);
  EXPECT_FLOAT_EQ(scale, 8.0f / kSymmetricHeadroom);

  std::vector<std::int8_t> q(values.size());
  quantize_symmetric_int8(values, scale, q);
  EXPECT_EQ(q[1], -119);
  EXPECT_EQ(q[3], 119);
  for (const std::int8_t v : q) {
    EXPECT_GE(v, -119);
    EXPECT_LE(v, 119);
  }
}

TEST(SymmetricHeadroom, UniversalScaleOutliersClampAt127) {
  // Decode-time values quantized against an older ("universal") scale may
  // exceed the tile maximum that chose it; they must saturate at +-127,
  // never wrap.
  MatrixF tile(1, 4);
  tile(0, 0) = 8.0f;    // the value the scale was chosen for -> 119
  tile(0, 1) = 8.6f;    // slightly above: uses the 119..127 headroom
  tile(0, 2) = 80.0f;   // far outlier -> clamps to 127
  tile(0, 3) = -80.0f;  // far outlier -> clamps to -127
  const float scale = 8.0f / kSymmetricHeadroom;
  const Int8Tile out = quantize_tile_int8_with_scale(tile, scale);
  EXPECT_EQ(out.q(0, 0), 119);
  EXPECT_GT(out.q(0, 1), 119);
  EXPECT_LE(out.q(0, 1), 127);
  EXPECT_EQ(out.q(0, 2), 127);
  EXPECT_EQ(out.q(0, 3), -127);
}

// ---- progressive zero-point boundaries ----------------------------------

class ProgressiveBoundary : public ::testing::TestWithParam<BitWidth> {};

TEST_P(ProgressiveBoundary, FullRangeChannelKeepsEndpoints) {
  // A channel spanning the whole symmetric lattice [-127, 127] stresses
  // the integer scale and zero-point at their extremes: z_int = -127 and
  // s_int = round(254 / max_code) must both stay within int8.
  const BitWidth bits = GetParam();
  MatrixI8 q1(2, 3);
  for (std::size_t c = 0; c < q1.cols(); ++c) {
    q1(0, c) = -127;
    q1(1, c) = 127;
  }
  const ProgressiveBlock block = progressive_compress(q1, 0.05f, bits);
  for (const ChannelParams& ch : block.channels) {
    EXPECT_EQ(ch.z_int, -127);
    EXPECT_GE(ch.s_int, 1);
  }
  const MatrixI8 back = progressive_decompress_int8(block);
  for (std::size_t c = 0; c < q1.cols(); ++c) {
    // Code 0 decodes to z_int exactly. The top code decodes to
    // s_int * max_code + z_int; with s_int = round(gap / max_code) that
    // lands within max_code/2 of the true maximum (above it when the
    // scale rounds up — then the +-127 clamp recovers the endpoint
    // exactly, as for INT2/INT4 — below it when it rounds down, as the
    // INT3 scale 36 = round(254 / 7) does).
    EXPECT_EQ(back(0, c), -127);
    EXPECT_GE(back(1, c), 127 - max_code(bits) / 2);
    EXPECT_LE(back(1, c), 127);
  }
}

TEST_P(ProgressiveBoundary, ConstantChannelRoundTripsExactly) {
  // Zero gap -> s_int = 1, z_int = the constant; every element decodes to
  // itself regardless of bit width.
  const BitWidth bits = GetParam();
  MatrixI8 q1(4, 2);
  q1.fill(std::int8_t{-42});
  const ProgressiveBlock block = progressive_compress(q1, 1.0f, bits);
  for (const ChannelParams& ch : block.channels) {
    EXPECT_EQ(ch.s_int, 1);
    EXPECT_EQ(ch.z_int, -42);
  }
  EXPECT_EQ(progressive_decompress_int8(block), q1);
}

TEST_P(ProgressiveBoundary, DecodedValuesStayOnSymmetricLattice) {
  const BitWidth bits = GetParam();
  MatrixI8 q1(16, 8);
  Rng rng(7);
  for (std::int8_t& v : q1.flat()) {
    v = clamp_to_i8(static_cast<std::int32_t>(rng.uniform_index(255)) - 127);
  }
  const MatrixI8 back =
      progressive_decompress_int8(progressive_compress(q1, 0.1f, bits));
  for (const std::int8_t v : back.flat()) {
    EXPECT_GE(v, -127);
    EXPECT_LE(v, 127);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, ProgressiveBoundary,
                         ::testing::Values(BitWidth::kInt2, BitWidth::kInt3,
                                           BitWidth::kInt4));

// ---- empty / zero-row Matrix slicing ------------------------------------

TEST(MatrixBoundary, EmptyMatrixZeroRowSlices) {
  MatrixF empty;
  const MatrixF sliced = empty.block_rows(0, 0);
  EXPECT_EQ(sliced.rows(), 0u);
  EXPECT_TRUE(sliced.empty());
  EXPECT_THROW(empty.block_rows(0, 1), CheckError);
  EXPECT_THROW(empty.block_rows(1, 0), CheckError);
}

TEST(MatrixBoundary, ZeroRowSliceAtEveryPosition) {
  MatrixF m(3, 4, 1.5f);
  for (std::size_t begin = 0; begin <= m.rows(); ++begin) {
    const MatrixF sliced = m.block_rows(begin, 0);
    EXPECT_EQ(sliced.rows(), 0u);
    EXPECT_EQ(sliced.cols(), 4u);
  }
  EXPECT_THROW(m.block_rows(4, 0), CheckError);
}

TEST(MatrixBoundary, HugeRowCountDoesNotWrapBoundsCheck) {
  // Regression: with the check written as row_begin + n_rows <= rows_,
  // n_rows near SIZE_MAX wraps std::size_t and sneaks past the bound.
  MatrixF m(3, 4);
  const std::size_t huge = std::numeric_limits<std::size_t>::max();
  EXPECT_THROW(m.block_rows(0, huge), CheckError);
  EXPECT_THROW(m.block_rows(2, huge - 1), CheckError);
  EXPECT_THROW(m.block_rows(huge, 2), CheckError);
}

TEST(MatrixBoundary, AppendRowsHandlesEmptyOperands) {
  MatrixF m;
  MatrixF chunk(2, 3, 1.0f);
  m.append_rows(MatrixF{});  // empty onto empty: still empty, no cols fixed
  EXPECT_EQ(m.rows(), 0u);
  m.append_rows(chunk);  // empty matrix adopts the operand's column count
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.append_rows(MatrixF(0, 3));  // zero-row operand is a no-op
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_THROW(m.append_rows(MatrixF(1, 5)), CheckError);
}

// ---- TURBO_CHECK failure messages ---------------------------------------

TEST(CheckMessages, CheckCarriesExpressionAndLocation) {
  try {
    TURBO_CHECK(1 == 2);
    FAIL() << "TURBO_CHECK(false) must throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
    EXPECT_NE(what.find("numeric_invariants_test.cpp"), std::string::npos)
        << what;
  }
}

TEST(CheckMessages, CheckMsgStreamsContext) {
  try {
    const int got = 41;
    TURBO_CHECK_MSG(got == 42, "expected 42, got " << got);
    FAIL() << "TURBO_CHECK_MSG(false, ...) must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("expected 42, got 41"),
              std::string::npos)
        << e.what();
  }
}

TEST(CheckMessages, CheckFiniteRejectsNanAndInf) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(TURBO_CHECK_FINITE(inf), CheckError);
  EXPECT_THROW(TURBO_CHECK_FINITE(nan), CheckError);
  EXPECT_NO_THROW(TURBO_CHECK_FINITE(1.0f));
  try {
    TURBO_CHECK_FINITE(-inf);
    FAIL() << "TURBO_CHECK_FINITE(-inf) must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("must be finite"), std::string::npos)
        << e.what();
  }
}

// ---- corrupt serialized streams -----------------------------------------

QuantizedKvCache small_cache() {
  const std::size_t d = 8;
  QuantizedKvCache cache(d, BitWidth::kInt4, 16, 16);
  Rng rng(11);
  for (int t = 0; t < 5; ++t) {
    std::vector<float> kt(d);
    std::vector<float> vt(d);
    rng.fill_normal(kt, 0.0, 1.0);
    rng.fill_normal(vt, 0.0, 1.0);
    cache.append_token(kt, vt);
  }
  return cache;
}

TEST(CorruptStream, TruncatedStreamThrows) {
  std::vector<std::uint8_t> bytes = serialize_cache(small_cache());
  ASSERT_NO_THROW(deserialize_cache(bytes));
  for (const std::size_t keep : {bytes.size() / 2, bytes.size() - 1,
                                 std::size_t{5}, std::size_t{0}}) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<std::ptrdiff_t>(
                                                      keep));
    EXPECT_THROW(deserialize_cache(cut), CheckError) << "kept " << keep;
  }
}

TEST(CorruptStream, BadMagicAndVersionThrow) {
  const std::vector<std::uint8_t> bytes = serialize_cache(small_cache());
  std::vector<std::uint8_t> bad = bytes;
  bad[0] ^= 0xFFu;  // magic occupies bytes [0, 4)
  EXPECT_THROW(deserialize_cache(bad), CheckError);

  bad = bytes;
  bad[4] = 99;  // version occupies bytes [4, 8)
  try {
    deserialize_cache(bad);
    FAIL() << "unsupported version must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported"), std::string::npos)
        << e.what();
  }
}

TEST(CorruptStream, HostileLengthFieldThrowsInsteadOfWrapping) {
  // Overwrite the key-buffer token count with 0xFFFFFFFF. The reader must
  // hit the truncation check — a bounds check of the wrapping form
  // pos + n <= size would overflow and read out of bounds instead.
  std::vector<std::uint8_t> bytes = serialize_cache(small_cache());
  // Header: magic(4) version(4) head_dim(4) bits(1) block_tokens(4)
  // buffer_capacity(4) n_blocks(4) = 25 bytes; no blocks follow for this
  // cache, then the key buffer starts with scale(4) count(4).
  const std::size_t count_offset = 25 + 4;
  ASSERT_LT(count_offset + 4, bytes.size());
  for (std::size_t i = 0; i < 4; ++i) bytes[count_offset + i] = 0xFFu;
  EXPECT_THROW(deserialize_cache(bytes), CheckError);
}

TEST(CorruptStream, HostileHeadDimThrowsInsteadOfWrapping) {
  std::vector<std::uint8_t> bytes = serialize_cache(small_cache());
  for (std::size_t i = 0; i < 4; ++i) bytes[8 + i] = 0xFFu;  // head_dim
  EXPECT_THROW(deserialize_cache(bytes), CheckError);
}

}  // namespace
}  // namespace turbo
