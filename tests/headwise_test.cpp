#include "attention/headwise.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

TEST(HeadwiseTest, GapMeasuresFullRange) {
  MatrixF head(2, 2);
  head(0, 0) = -3.0f;
  head(0, 1) = 1.0f;
  head(1, 0) = 0.0f;
  head(1, 1) = 7.0f;
  const HeadStats s = compute_head_stats(head);
  EXPECT_FLOAT_EQ(s.gap, 10.0f);
}

TEST(HeadwiseTest, UniformChannelsHaveZeroGapStd) {
  // Every channel spans exactly [0, 1] -> identical gaps -> std 0.
  MatrixF head(2, 4);
  for (std::size_t c = 0; c < 4; ++c) {
    head(0, c) = 0.0f;
    head(1, c) = 1.0f;
  }
  const HeadStats s = compute_head_stats(head);
  EXPECT_FLOAT_EQ(s.gap_std, 0.0f);
  EXPECT_FLOAT_EQ(s.priority(), 0.0f);
}

TEST(HeadwiseTest, OutlierChannelRaisesPriority) {
  const MatrixF smooth = test::random_matrix(64, 16, 1);
  const MatrixF spiky = test::random_outlier_matrix(64, 16, 1, 10.0, 3);
  const HeadStats a = compute_head_stats(smooth);
  const HeadStats b = compute_head_stats(spiky);
  EXPECT_GT(b.priority(), a.priority());
  EXPECT_GT(b.gap, a.gap);
  EXPECT_GT(b.gap_std, a.gap_std);
}

TEST(HeadwiseTest, CombineTakesHarderTensor) {
  // v has the larger priority (3*2=6 > 1*5=5): its whole (gap, std) pair
  // is kept; entropy is worst-case across tensors.
  HeadStats k{.gap = 1.0f, .gap_std = 5.0f, .entropy = 0.1f};
  HeadStats v{.gap = 3.0f, .gap_std = 2.0f, .entropy = 0.4f};
  const HeadStats c = combine_head_stats(k, v);
  EXPECT_FLOAT_EQ(c.gap, 3.0f);
  EXPECT_FLOAT_EQ(c.gap_std, 2.0f);
  EXPECT_FLOAT_EQ(c.priority(), 6.0f);
  EXPECT_FLOAT_EQ(c.entropy, 0.4f);
}

TEST(HeadwiseTest, SelectionAssignsLowBitsToLowestPriority) {
  std::vector<HeadStats> stats(4);
  stats[0] = {.gap = 10.0f, .gap_std = 10.0f};  // priority 100
  stats[1] = {.gap = 1.0f, .gap_std = 1.0f};    // priority 1
  stats[2] = {.gap = 5.0f, .gap_std = 2.0f};    // priority 10
  stats[3] = {.gap = 2.0f, .gap_std = 1.0f};    // priority 2
  const auto bits =
      select_head_bits(stats, 2, HeadSelectionMetric::kPriority);
  EXPECT_EQ(bits[0], BitWidth::kInt4);
  EXPECT_EQ(bits[1], BitWidth::kInt2);
  EXPECT_EQ(bits[2], BitWidth::kInt4);
  EXPECT_EQ(bits[3], BitWidth::kInt2);
}

TEST(HeadwiseTest, SelectionCountsAreExact) {
  std::vector<HeadStats> stats(8);
  for (std::size_t i = 0; i < 8; ++i) {
    stats[i] = {.gap = static_cast<float>(i + 1),
                .gap_std = 1.0f,
                .entropy = static_cast<float>(8 - i)};
  }
  for (std::size_t n = 0; n <= 8; ++n) {
    const auto bits =
        select_head_bits(stats, n, HeadSelectionMetric::kMinMax);
    std::size_t low = 0;
    for (BitWidth b : bits) {
      if (b == BitWidth::kInt2) ++low;
    }
    EXPECT_EQ(low, n);
  }
}

TEST(HeadwiseTest, MetricsRankDifferently) {
  std::vector<HeadStats> stats(2);
  // Head 0: large gap, tiny variation. Head 1: small gap, huge variation.
  stats[0] = {.gap = 100.0f, .gap_std = 0.01f, .entropy = 3.0f};
  stats[1] = {.gap = 1.0f, .gap_std = 50.0f, .entropy = 0.5f};
  const auto by_gap = select_head_bits(stats, 1, HeadSelectionMetric::kMinMax);
  const auto by_var =
      select_head_bits(stats, 1, HeadSelectionMetric::kVariation);
  EXPECT_EQ(by_gap[1], BitWidth::kInt2);   // head 1 has the smaller gap
  EXPECT_EQ(by_var[0], BitWidth::kInt2);   // head 0 has the smaller std
}

TEST(HeadwiseTest, EntropyMetricUsesEntropy) {
  std::vector<HeadStats> stats(3);
  stats[0] = {.gap = 1.0f, .gap_std = 1.0f, .entropy = 2.0f};
  stats[1] = {.gap = 9.0f, .gap_std = 9.0f, .entropy = 0.5f};
  stats[2] = {.gap = 5.0f, .gap_std = 5.0f, .entropy = 1.0f};
  const auto bits =
      select_head_bits(stats, 1, HeadSelectionMetric::kEntropy);
  EXPECT_EQ(bits[1], BitWidth::kInt2);  // lowest entropy compressed first
}

TEST(HeadwiseTest, TooManyLowHeadsThrows) {
  std::vector<HeadStats> stats(2);
  EXPECT_THROW(select_head_bits(stats, 3, HeadSelectionMetric::kPriority),
               CheckError);
}

TEST(HeadwiseTest, TieBreakIsDeterministic) {
  std::vector<HeadStats> stats(4);  // all identical -> ties
  const auto a = select_head_bits(stats, 2, HeadSelectionMetric::kPriority);
  const auto b = select_head_bits(stats, 2, HeadSelectionMetric::kPriority);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[0], BitWidth::kInt2);  // stable sort keeps index order
  EXPECT_EQ(a[1], BitWidth::kInt2);
  EXPECT_EQ(a[2], BitWidth::kInt4);
}

TEST(HeadwiseTest, MetricNames) {
  EXPECT_STREQ(head_selection_metric_name(HeadSelectionMetric::kPriority),
               "priority");
  EXPECT_STREQ(head_selection_metric_name(HeadSelectionMetric::kEntropy),
               "entropy");
  EXPECT_STREQ(head_selection_metric_name(HeadSelectionMetric::kMinMax),
               "min-max");
  EXPECT_STREQ(head_selection_metric_name(HeadSelectionMetric::kVariation),
               "variation");
}

}  // namespace
}  // namespace turbo
