// Sliding-window attention across every kernel, plus window eviction.
#include <gtest/gtest.h>

#include "attention/flash.h"
#include "attention/reference.h"
#include "attention/turbo.h"
#include "common/stats.h"
#include "kernels/fused_decode.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

AttentionConfig windowed(std::size_t window, bool causal = true) {
  AttentionConfig cfg;
  cfg.window = window;
  cfg.causal = causal;
  cfg.block_rows = 16;
  cfg.block_cols = 16;
  return cfg;
}

TEST(SlidingWindowTest, HugeWindowEqualsUnlimited) {
  const MatrixF q = test::random_matrix(40, 8, 1);
  const MatrixF k = test::random_matrix(40, 8, 2);
  const MatrixF v = test::random_matrix(40, 8, 3);
  const MatrixF a = reference_attention(q, k, v, windowed(0));
  const MatrixF b = reference_attention(q, k, v, windowed(1000));
  EXPECT_EQ(a, b);
}

TEST(SlidingWindowTest, ReferenceMasksOldKeys) {
  // With window 1, each query sees only its own key: output = own value.
  const std::size_t n = 6;
  MatrixF q(n, 4, 1.0f);
  MatrixF k(n, 4, 1.0f);
  MatrixF v(n, 4);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      v(r, c) = static_cast<float>(r);
    }
  }
  const MatrixF o = reference_attention(q, k, v, windowed(1));
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_FLOAT_EQ(o(r, 0), static_cast<float>(r));
  }
}

TEST(SlidingWindowTest, FlashMatchesReference) {
  const MatrixF q = test::random_matrix(50, 16, 4);
  const MatrixF k = test::random_matrix(50, 16, 5);
  const MatrixF v = test::random_matrix(50, 16, 6);
  for (std::size_t window : {1u, 7u, 16u, 33u}) {
    AttentionConfig cfg = windowed(window);
    FlashOptions options;
    options.emulate_fp16 = false;
    const FlashResult r = flash_attention(q, k, v, cfg, options);
    const MatrixF ref = reference_attention(q, k, v, cfg);
    EXPECT_LT(max_abs_error(r.o, ref), 1e-4) << "window " << window;
  }
}

TEST(SlidingWindowTest, TurboPrefillMatchesReference) {
  const MatrixF q = test::random_matrix(64, 16, 7);
  const MatrixF k = test::random_matrix(64, 16, 8);
  const MatrixF v = test::random_matrix(64, 16, 9);
  const Sas sas;
  for (std::size_t window : {8u, 24u}) {
    const AttentionConfig cfg = windowed(window);
    const TurboPrefillResult r =
        turbo_attention_prefill(q, k, v, cfg, sas, nullptr);
    const MatrixF ref = reference_attention(q, k, v, cfg);
    EXPECT_LT(relative_error(r.o, ref), 0.05) << "window " << window;
  }
}

TEST(SlidingWindowTest, TurboDecodeWindowed) {
  const std::size_t d = 16;
  const AttentionConfig cfg = windowed(20);
  const Sas sas;
  QuantizedKvCache cache(d, BitWidth::kInt4, 16, 16);
  MatrixF k_all(0, d);
  MatrixF v_all(0, d);
  Rng rng(10);
  for (int t = 0; t < 57; ++t) {
    std::vector<float> kt(d);
    std::vector<float> vt(d);
    rng.fill_normal(kt, 0.0, 1.0);
    rng.fill_normal(vt, 0.0, 1.0);
    cache.append_token(kt, vt);
    k_all.append_row(std::span<const float>(kt));
    v_all.append_row(std::span<const float>(vt));
  }
  std::vector<float> q(d);
  rng.fill_normal(q, 0.0, 1.0);
  const auto o = turbo_attention_decode(q, cache, cfg, sas);
  // Reference: only the last 20 tokens.
  const MatrixF k_win = k_all.block_rows(37, 20);
  const MatrixF v_win = v_all.block_rows(37, 20);
  const auto ref = reference_decode(q, k_win, v_win, cfg);
  EXPECT_LT(relative_error(o, ref), 0.1);
  // And the fused kernel agrees bit-exactly with the reference kernel.
  EXPECT_EQ(o, fused_turbo_decode(q, cache, cfg, sas));
}

TEST(SlidingWindowTest, WindowIgnoresEvictedHistory) {
  // Decoding with a window must give the same result before and after
  // evicting blocks that lie entirely outside the window.
  const std::size_t d = 8;
  const AttentionConfig cfg = windowed(10);
  const Sas sas;
  QuantizedKvCache cache(d, BitWidth::kInt4, 8, 8);
  Rng rng(11);
  for (int t = 0; t < 40; ++t) {
    std::vector<float> kt(d);
    std::vector<float> vt(d);
    rng.fill_normal(kt, 0.0, 1.0);
    rng.fill_normal(vt, 0.0, 1.0);
    cache.append_token(kt, vt);
  }
  std::vector<float> q(d, 0.25f);
  const auto before = turbo_attention_decode(q, cache, cfg, sas);
  const std::size_t bytes_before = cache.memory_bytes();
  const std::size_t dropped = cache.evict_blocks_before(cfg.window);
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(cache.memory_bytes(), bytes_before);
  // Window positions are relative to the (shrunk) tail; results identical
  // because only out-of-window blocks were dropped.
  const auto after = turbo_attention_decode(q, cache, cfg, sas);
  EXPECT_EQ(before, after);
}

TEST(SlidingWindowTest, EvictKeepsEnoughTokens) {
  QuantizedKvCache cache(8, BitWidth::kInt4, 8, 8);
  Rng rng(12);
  std::vector<float> t(8);
  for (int i = 0; i < 33; ++i) {
    rng.fill_normal(t, 0.0, 1.0);
    cache.append_token(t, t);
  }
  EXPECT_EQ(cache.token_count(), 33u);
  const std::size_t dropped = cache.evict_blocks_before(10);
  EXPECT_EQ(dropped, 2u);  // blocks at positions [0,8) and [8,16)
  EXPECT_EQ(cache.token_count(), 17u);
  EXPECT_EQ(cache.evict_blocks_before(100), 0u);  // nothing to drop
}

TEST(SlidingWindowTest, NonCausalWindow) {
  // Non-causal with window: every query sees the last `window` keys.
  const MatrixF q = test::random_matrix(4, 8, 13);
  const MatrixF k = test::random_matrix(30, 8, 14);
  const MatrixF v = test::random_matrix(30, 8, 15);
  AttentionConfig cfg = windowed(5, /*causal=*/false);
  const MatrixF o = reference_attention(q, k, v, cfg);
  AttentionConfig plain = windowed(0, false);
  const MatrixF o_tail = reference_attention(q, k.block_rows(25, 5),
                                             v.block_rows(25, 5), plain);
  EXPECT_LT(max_abs_error(o, o_tail), 1e-5);
}

}  // namespace
}  // namespace turbo
