// Cross-module integration: every KvAttention method driven through the
// same prefill + decode workload, scored against the FP32 exact method.
#include <gtest/gtest.h>

#include "attention/turbo_method.h"
#include "baselines/fp16_method.h"
#include "baselines/gear.h"
#include "baselines/kivi.h"
#include "common/stats.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

struct Workload {
  MatrixF q;
  MatrixF k;
  MatrixF v;
  std::vector<std::vector<float>> decode_q;
  std::vector<std::vector<float>> decode_k;
  std::vector<std::vector<float>> decode_v;
};

Workload make_workload(std::size_t prompt, std::size_t steps, std::size_t d,
                       std::uint64_t seed) {
  Workload w;
  w.q = test::random_matrix(prompt, d, seed);
  w.k = test::random_matrix(prompt, d, seed + 1);
  w.v = test::random_matrix(prompt, d, seed + 2);
  Rng rng(seed + 3);
  for (std::size_t t = 0; t < steps; ++t) {
    std::vector<float> q(d);
    std::vector<float> k(d);
    std::vector<float> v(d);
    rng.fill_normal(q, 0.0, 1.0);
    rng.fill_normal(k, 0.0, 1.0);
    rng.fill_normal(v, 0.0, 1.0);
    w.decode_q.push_back(std::move(q));
    w.decode_k.push_back(std::move(k));
    w.decode_v.push_back(std::move(v));
  }
  return w;
}

AttentionConfig test_attention_config() {
  AttentionConfig cfg;
  cfg.block_rows = 32;
  cfg.block_cols = 32;
  return cfg;
}

// Drive a method through the workload; returns max relative decode error
// vs the exact method.
double run_and_score(KvAttention& method, KvAttention& exact,
                     const Workload& w) {
  method.prefill(w.q, w.k, w.v);
  exact.prefill(w.q, w.k, w.v);
  double worst = 0.0;
  for (std::size_t t = 0; t < w.decode_q.size(); ++t) {
    const auto o = method.decode(w.decode_q[t], w.decode_k[t], w.decode_v[t]);
    const auto ref = exact.decode(w.decode_q[t], w.decode_k[t], w.decode_v[t]);
    worst = std::max(worst, relative_error(o, ref));
  }
  return worst;
}

TurboMethodConfig turbo_config() {
  TurboMethodConfig cfg;
  cfg.attention = test_attention_config();
  cfg.buffer_capacity = 16;
  return cfg;
}

KiviConfig kivi_config() {
  KiviConfig cfg;
  cfg.attention = test_attention_config();
  cfg.group = 16;
  cfg.residual = 16;
  return cfg;
}

GearConfig gear_config() {
  GearConfig cfg;
  cfg.attention = test_attention_config();
  cfg.chunk = 16;
  cfg.residual = 16;
  return cfg;
}

TEST(MethodIntegrationTest, AllMethodsTrackExactWithinBudget) {
  const std::size_t d = 32;
  const Workload w = make_workload(96, 24, d, 100);
  ExactAttention exact_a(d, test_attention_config());
  ExactAttention exact_b(d, test_attention_config());
  ExactAttention exact_c(d, test_attention_config());
  ExactAttention exact_d(d, test_attention_config());

  Fp16FlashAttention fp16(d, test_attention_config());
  EXPECT_LT(run_and_score(fp16, exact_a, w), 0.01);

  TurboKvAttention turbo(d, turbo_config());
  EXPECT_LT(run_and_score(turbo, exact_b, w), 0.25);

  KiviAttention kivi(d, kivi_config());
  EXPECT_LT(run_and_score(kivi, exact_c, w), 0.20);

  GearAttention gear(d, gear_config());
  EXPECT_LT(run_and_score(gear, exact_d, w), 0.20);
}

TEST(MethodIntegrationTest, MemoryOrdering) {
  const std::size_t d = 64;
  const Workload w = make_workload(256, 8, d, 200);

  ExactAttention exact(d, test_attention_config());
  Fp16FlashAttention fp16(d, test_attention_config());
  TurboKvAttention turbo4(d, turbo_config());
  TurboMethodConfig t2 = turbo_config();
  t2.kv_bits = BitWidth::kInt2;
  TurboKvAttention turbo2(d, t2);
  KiviAttention kivi(d, kivi_config());
  GearAttention gear(d, gear_config());

  for (KvAttention* m : std::initializer_list<KvAttention*>{
           &exact, &fp16, &turbo4, &turbo2, &kivi, &gear}) {
    m->prefill(w.q, w.k, w.v);
    for (std::size_t t = 0; t < w.decode_q.size(); ++t) {
      m->decode(w.decode_q[t], w.decode_k[t], w.decode_v[t]);
    }
    EXPECT_EQ(m->token_count(), 264u) << m->name();
  }

  // FP32 > FP16 > {KIVI, GEAR} > Turbo-4 > Turbo-2 (Turbo has no FP16
  // residual window, so it undercuts the float-residual baselines).
  EXPECT_GT(exact.kv_cache_bytes(), fp16.kv_cache_bytes());
  EXPECT_GT(fp16.kv_cache_bytes(), kivi.kv_cache_bytes());
  EXPECT_GT(fp16.kv_cache_bytes(), gear.kv_cache_bytes());
  EXPECT_GT(kivi.kv_cache_bytes(), turbo4.kv_cache_bytes());
  EXPECT_GT(turbo4.kv_cache_bytes(), turbo2.kv_cache_bytes());

  // Paper headline: >4.4x compression vs FP16 for Turbo.
  EXPECT_GT(static_cast<double>(fp16.kv_cache_bytes()) /
                static_cast<double>(turbo4.kv_cache_bytes()),
            3.3);
}

TEST(MethodIntegrationTest, TurboAblationsRun) {
  const std::size_t d = 16;
  const Workload w = make_workload(48, 8, d, 300);

  TurboMethodConfig flashq_only = turbo_config();
  flashq_only.use_sas = false;
  TurboMethodConfig sas_only = turbo_config();
  sas_only.use_flashq = false;

  ExactAttention exact_a(d, test_attention_config());
  ExactAttention exact_b(d, test_attention_config());
  TurboKvAttention fq(d, flashq_only);
  TurboKvAttention so(d, sas_only);
  EXPECT_LT(run_and_score(fq, exact_a, w), 0.25);
  // SAS-only is nearly exact (no quantization at all).
  EXPECT_LT(run_and_score(so, exact_b, w), 0.02);
}

TEST(MethodIntegrationTest, MixedFactoryAssignsPerHeadBits) {
  TurboMethodConfig cfg = turbo_config();
  auto factory = make_turbo_mixed_factory(
      cfg, {BitWidth::kInt2, BitWidth::kInt4});
  auto h0 = factory(16);
  auto h1 = factory(16);
  const MatrixF m = test::random_matrix(32, 16, 400);
  h0->prefill(m, m, m);
  h1->prefill(m, m, m);
  EXPECT_LT(h0->kv_cache_bytes(), h1->kv_cache_bytes());
  // The assignment cycles: heads 2 and 3 repeat the 2-bit / 4-bit pattern,
  // so per-case rebuilds of the head set get identical precision layouts.
  auto h2 = factory(16);
  auto h3 = factory(16);
  h2->prefill(m, m, m);
  h3->prefill(m, m, m);
  EXPECT_EQ(h2->kv_cache_bytes(), h0->kv_cache_bytes());
  EXPECT_EQ(h3->kv_cache_bytes(), h1->kv_cache_bytes());
  EXPECT_THROW(make_turbo_mixed_factory(cfg, {}), CheckError);
}

TEST(MethodIntegrationTest, PrefillTwiceThrows) {
  const std::size_t d = 16;
  const MatrixF m = test::random_matrix(16, d, 500);
  TurboKvAttention turbo(d, turbo_config());
  turbo.prefill(m, m, m);
  EXPECT_THROW(turbo.prefill(m, m, m), CheckError);
  Fp16FlashAttention fp16(d, test_attention_config());
  fp16.prefill(m, m, m);
  EXPECT_THROW(fp16.prefill(m, m, m), CheckError);
}

}  // namespace
}  // namespace turbo
