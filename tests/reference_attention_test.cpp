#include "attention/reference.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/stats.h"
#include "softmax/softmax.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

AttentionConfig non_causal() {
  AttentionConfig cfg;
  cfg.causal = false;
  return cfg;
}

TEST(ReferenceAttentionTest, SingleKeyReturnsItsValue) {
  MatrixF q(1, 4, 1.0f);
  MatrixF k(1, 4, 1.0f);
  MatrixF v(1, 4);
  for (std::size_t c = 0; c < 4; ++c) v(0, c) = static_cast<float>(c);
  const MatrixF o = reference_attention(q, k, v, non_causal());
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(o(0, c), static_cast<float>(c));
  }
}

TEST(ReferenceAttentionTest, UniformScoresAverageValues) {
  // Orthogonal q/k give identical scores -> output = mean of values.
  MatrixF q(1, 2);
  q(0, 0) = 1.0f;
  q(0, 1) = 0.0f;
  MatrixF k(2, 2, 0.0f);
  k(0, 1) = 1.0f;  // both keys orthogonal to q
  k(1, 1) = -1.0f;
  MatrixF v(2, 2);
  v(0, 0) = 2.0f;
  v(0, 1) = 0.0f;
  v(1, 0) = 4.0f;
  v(1, 1) = 6.0f;
  const MatrixF o = reference_attention(q, k, v, non_causal());
  EXPECT_FLOAT_EQ(o(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(o(0, 1), 3.0f);
}

TEST(ReferenceAttentionTest, OutputIsConvexCombinationOfValues) {
  const MatrixF q = test::random_matrix(4, 8, 1);
  const MatrixF k = test::random_matrix(16, 8, 2);
  const MatrixF v = test::random_matrix(16, 8, 3);
  const MatrixF o = reference_attention(q, k, v, non_causal());
  // Each output coordinate lies within [min, max] of that value column.
  const auto bounds = channel_min_max(v);
  for (std::size_t r = 0; r < o.rows(); ++r) {
    for (std::size_t c = 0; c < o.cols(); ++c) {
      EXPECT_GE(o(r, c), bounds[c].min - 1e-5f);
      EXPECT_LE(o(r, c), bounds[c].max + 1e-5f);
    }
  }
}

TEST(ReferenceAttentionTest, CausalMaskingBlocksFuture) {
  // Make key 2's value huge; queries 0 and 1 must not see it.
  MatrixF q(3, 2, 1.0f);
  MatrixF k(3, 2, 1.0f);
  MatrixF v(3, 2, 1.0f);
  v(2, 0) = 1000.0f;
  AttentionConfig cfg;
  cfg.causal = true;
  const MatrixF o = reference_attention(q, k, v, cfg);
  EXPECT_FLOAT_EQ(o(0, 0), 1.0f);  // sees only key 0
  EXPECT_FLOAT_EQ(o(1, 0), 1.0f);  // keys 0,1
  EXPECT_GT(o(2, 0), 300.0f);      // sees the huge value
}

TEST(ReferenceAttentionTest, CausalAlignmentWithLongerKeys) {
  // 2 queries over 4 keys: query 0 is absolute token 2 (sees keys 0..2).
  MatrixF q(2, 2, 1.0f);
  MatrixF k(4, 2, 1.0f);
  MatrixF v(4, 2, 0.0f);
  v(3, 0) = 90.0f;
  AttentionConfig cfg;
  cfg.causal = true;
  const MatrixF o = reference_attention(q, k, v, cfg);
  EXPECT_FLOAT_EQ(o(0, 0), 0.0f);   // keys 0..2, all zero values
  EXPECT_FLOAT_EQ(o(1, 0), 22.5f);  // keys 0..3, uniform weights
}

TEST(ReferenceAttentionTest, ScaleDefaultsToInverseSqrtD) {
  const MatrixF q = test::random_matrix(2, 16, 4);
  const MatrixF k = test::random_matrix(8, 16, 5);
  const MatrixF v = test::random_matrix(8, 16, 6);
  AttentionConfig cfg = non_causal();
  const MatrixF o_default = reference_attention(q, k, v, cfg);
  cfg.scale = 0.25f;  // 1/sqrt(16)
  const MatrixF o_explicit = reference_attention(q, k, v, cfg);
  EXPECT_LT(max_abs_error(o_default, o_explicit), 1e-6);
}

TEST(ReferenceAttentionTest, LseMatchesScores) {
  const MatrixF q = test::random_matrix(3, 8, 7);
  const MatrixF k = test::random_matrix(12, 8, 8);
  const MatrixF v = test::random_matrix(12, 8, 9);
  AttentionConfig cfg = non_causal();
  std::vector<float> lse(3);
  reference_attention_with_lse(q, k, v, cfg, lse);
  const float scale = cfg.effective_scale(8);
  for (std::size_t r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 12; ++j) {
      double s = 0.0;
      for (std::size_t x = 0; x < 8; ++x) s += q(r, x) * k(j, x);
      sum += std::exp(s * scale);
    }
    EXPECT_NEAR(lse[r], std::log(sum), 1e-4);
  }
}

TEST(ReferenceAttentionTest, DecodeMatchesMatrixForm) {
  const MatrixF k = test::random_matrix(20, 8, 10);
  const MatrixF v = test::random_matrix(20, 8, 11);
  const MatrixF q = test::random_matrix(1, 8, 12);
  AttentionConfig cfg;
  const auto o_vec = reference_decode(q.row(0), k, v, cfg);
  AttentionConfig nc = cfg;
  nc.causal = false;
  const MatrixF o_mat = reference_attention(q, k, v, nc);
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_FLOAT_EQ(o_vec[c], o_mat(0, c));
  }
}

TEST(ReferenceAttentionTest, CausalWithMoreQueriesThanKeysThrows) {
  MatrixF q(4, 2, 1.0f);
  MatrixF k(2, 2, 1.0f);
  MatrixF v(2, 2, 1.0f);
  AttentionConfig cfg;
  cfg.causal = true;
  EXPECT_THROW(reference_attention(q, k, v, cfg), CheckError);
}

}  // namespace
}  // namespace turbo
