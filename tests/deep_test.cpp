#include "model/deep.h"

#include <gtest/gtest.h>

#include "attention/turbo_method.h"
#include "baselines/fp16_method.h"
#include "model/profile.h"

namespace turbo::model {
namespace {

DeepConfig small() {
  DeepConfig cfg;
  cfg.layers = 4;
  cfg.tokens = 64;
  cfg.seed = 3;
  return cfg;
}

ModelProfile small_profile() {
  ModelProfile p = llama3_8b_profile();
  p.heads = 4;
  return p;
}

TEST(DeepTest, ExactStreamHasZeroDivergence) {
  const DepthDivergence d = measure_depth_divergence(
      small_profile(), make_exact_factory({}), small());
  ASSERT_EQ(d.per_layer.size(), 4u);
  for (double e : d.per_layer) {
    EXPECT_EQ(e, 0.0);
  }
}

TEST(DeepTest, Fp16DivergenceTiny) {
  const DepthDivergence d = measure_depth_divergence(
      small_profile(), make_fp16_factory({}), small());
  for (double e : d.per_layer) {
    EXPECT_LT(e, 0.005);
  }
}

TEST(DeepTest, DivergenceBoundedNotExploding) {
  TurboMethodConfig cfg;
  cfg.kv_bits = BitWidth::kInt2;  // worst case
  const DepthDivergence d = measure_depth_divergence(
      small_profile(), make_turbo_factory(cfg), small());
  for (double e : d.per_layer) {
    EXPECT_GT(e, 0.0);
    EXPECT_LT(e, 1.0);  // residual + norm keep it contractive
  }
}

TEST(DeepTest, CoarserBitsDivergeMore) {
  TurboMethodConfig c4;
  TurboMethodConfig c2;
  c2.kv_bits = BitWidth::kInt2;
  const DepthDivergence d4 = measure_depth_divergence(
      small_profile(), make_turbo_factory(c4), small());
  const DepthDivergence d2 = measure_depth_divergence(
      small_profile(), make_turbo_factory(c2), small());
  EXPECT_LT(d4.per_layer.back(), d2.per_layer.back());
}

TEST(DeepTest, Deterministic) {
  TurboMethodConfig cfg;
  const DepthDivergence a = measure_depth_divergence(
      small_profile(), make_turbo_factory(cfg), small());
  const DepthDivergence b = measure_depth_divergence(
      small_profile(), make_turbo_factory(cfg), small());
  EXPECT_EQ(a.per_layer, b.per_layer);
}

}  // namespace
}  // namespace turbo::model
