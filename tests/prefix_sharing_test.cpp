// Prefix-sharing radix KV cache + session workloads (ctest -L prefix).
//
// The contracts under test: the radix index matches whole-page prefixes
// only and cascades erasure through subtrees; create_with_prefix attaches
// resident pages by refcount bump with zero allocation; the CoW charging
// identity sum(charged_pages) + shared_pages == used_pages survives
// fork/attach/release churn and swap adoption; a full tail buffer whose
// deferred flush hits page exhaustion fails cleanly and the SAME call
// succeeds on retry (the lazy-flush bugfix); session traces drive the
// engine's radix path (fewer prefilled tokens, lower referenced-page
// peak) while length-only traces leave every prefix counter at zero; and
// seeded session runs are bit-identical — the property CI re-checks under
// ASan+UBSan and TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <vector>

#include "kvcache/paged_cache.h"
#include "kvcache/radix_index.h"
#include "kvcache/serialization.h"
#include "quant/symmetric.h"
#include "serving/engine.h"
#include "serving/metrics.h"
#include "serving/trace.h"
#include "sim/attention_model.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

using serving::EngineConfig;
using serving::EngineResult;
using serving::Outcome;
using serving::Request;
using serving::ServingMetrics;
using serving::TraceConfig;

std::vector<std::int32_t> iota_ids(std::int32_t first, std::size_t count) {
  std::vector<std::int32_t> ids(count);
  std::iota(ids.begin(), ids.end(), first);
  return ids;
}

// --- Radix index ------------------------------------------------------------

TEST(RadixIndexTest, MatchesWholePagePrefixesOnly) {
  RadixIndex idx(4);
  EXPECT_TRUE(idx.match(iota_ids(0, 8)).empty());

  const auto ids = iota_ids(0, 8);
  const std::vector<PageId> pages = {10, 11};
  EXPECT_EQ(idx.insert(ids, pages), 2u);
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_TRUE(idx.has_page(10));
  EXPECT_TRUE(idx.has_page(11));

  const auto full = idx.match(ids);
  ASSERT_EQ(full.size(), 2u);
  EXPECT_EQ(full[0], 10u);
  EXPECT_EQ(full[1], 11u);

  // A partial tail chunk never matches: 7 tokens hit only the first page,
  // 3 tokens hit nothing.
  EXPECT_EQ(idx.match(std::span(ids.data(), 7)).size(), 1u);
  EXPECT_TRUE(idx.match(std::span(ids.data(), 3)).empty());

  // Divergence stops the walk at the last agreeing whole page.
  auto div = ids;
  div[5] = 99;
  EXPECT_EQ(idx.match(div).size(), 1u);
  div = ids;
  div[0] = 99;
  EXPECT_TRUE(idx.match(div).empty());
}

TEST(RadixIndexTest, FirstWriterWinsOnReinsert) {
  RadixIndex idx(4);
  const auto ids = iota_ids(0, 4);
  const std::vector<PageId> first = {5};
  const std::vector<PageId> second = {7};
  EXPECT_EQ(idx.insert(ids, first), 1u);
  // Re-indexing the same chunk keeps the original page: two sequences
  // that prefilled the same prefix privately must not fight over it.
  EXPECT_EQ(idx.insert(ids, second), 0u);
  const auto m = idx.match(ids);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], 5u);
  EXPECT_TRUE(idx.has_page(5));
  EXPECT_FALSE(idx.has_page(7));
}

TEST(RadixIndexTest, ErasePageCascadesThroughSubtree) {
  RadixIndex idx(4);
  const auto trunk = iota_ids(0, 12);  // chunks [0..3][4..7][8..11]
  const std::vector<PageId> trunk_pages = {1, 2, 3};
  EXPECT_EQ(idx.insert(trunk, trunk_pages), 3u);
  // A branch sharing only the first chunk.
  std::vector<std::int32_t> branch = iota_ids(0, 4);
  const auto tail = iota_ids(90, 4);
  branch.insert(branch.end(), tail.begin(), tail.end());
  const std::vector<PageId> branch_pages = {1, 7};
  EXPECT_EQ(idx.insert(branch, branch_pages), 1u);
  EXPECT_EQ(idx.size(), 4u);

  // Erasing a mid-trunk page takes its descendants with it (they would
  // be unreachable), the erased page first.
  const auto dead = idx.erase_page(2);
  ASSERT_EQ(dead.size(), 2u);
  EXPECT_EQ(dead[0], 2u);
  EXPECT_EQ(dead[1], 3u);
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.match(trunk).size(), 1u);  // only the root chunk remains
  EXPECT_EQ(idx.match(branch).size(), 2u);

  // Erasing the root chunk's page empties the whole tree.
  const auto rest = idx.erase_page(1);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0], 1u);
  EXPECT_EQ(rest[1], 7u);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_TRUE(idx.match(trunk).empty());
}

// --- Paged cache: prefix attach + CoW charging ------------------------------

class PrefixCacheTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kDim = 16;
  static constexpr std::size_t kPageTokens = 8;
  PagedKvCache cache_{kDim, BitWidth::kInt4, kPageTokens, 16};
  Rng rng_{13};

  std::vector<float> random_vec() {
    std::vector<float> v(kDim);
    rng_.fill_normal(v, 0.0, 1.0);
    return v;
  }

  PagedKvCache::SeqId seq_with_tokens(std::size_t n) {
    const auto seq = cache_.create_sequence();
    for (std::size_t t = 0; t < n; ++t) {
      EXPECT_TRUE(cache_.append_token(seq, random_vec(), random_vec()));
    }
    return seq;
  }

  // The satellite-2 identity: shared pages are charged to nobody, private
  // pages to exactly one owner, so the books always reconcile.
  void expect_reconciled(const std::vector<PagedKvCache::SeqId>& seqs) {
    std::size_t charged = 0;
    for (const auto s : seqs) charged += cache_.charged_pages(s);
    EXPECT_EQ(charged + cache_.shared_pages(), cache_.used_pages());
  }
};

TEST_F(PrefixCacheTest, AttachSharesResidentPagesWithoutAllocation) {
  const auto a = seq_with_tokens(2 * kPageTokens + 3);
  const auto ids = iota_ids(0, 2 * kPageTokens + 3);
  cache_.register_prefix(a, ids);
  // Only the two full pages are indexed — the tail buffer is private.
  EXPECT_EQ(cache_.radix().size(), 2u);

  const std::size_t pages_before = cache_.used_pages();
  const auto attach = cache_.create_with_prefix(ids);
  EXPECT_EQ(attach.matched_tokens, 2 * kPageTokens);
  EXPECT_EQ(cache_.used_pages(), pages_before);  // refcount bump, no alloc
  EXPECT_EQ(cache_.shared_pages(), 2u);
  EXPECT_EQ(cache_.token_count(attach.seq), 2 * kPageTokens);
  EXPECT_EQ(cache_.charged_pages(a), 0u);
  EXPECT_EQ(cache_.charged_pages(attach.seq), 0u);
  expect_reconciled({a, attach.seq});

  // The attached sequence diverges into its own private page.
  for (std::size_t t = 0; t < kPageTokens + 1; ++t) {
    ASSERT_TRUE(cache_.append_token(attach.seq, random_vec(), random_vec()));
  }
  EXPECT_EQ(cache_.used_pages(), pages_before + 1);
  EXPECT_EQ(cache_.charged_pages(attach.seq), 1u);
  EXPECT_EQ(cache_.shared_pages(), 2u);
  expect_reconciled({a, attach.seq});

  // Releasing the registering sequence keeps the pages alive (and
  // indexed) for the attached one.
  cache_.release_sequence(a);
  EXPECT_EQ(cache_.radix().size(), 2u);
  EXPECT_EQ(cache_.shared_pages(), 0u);
  EXPECT_EQ(cache_.charged_pages(attach.seq), 3u);
  expect_reconciled({attach.seq});

  // Once the last referent dies the pages leave the index with it: the
  // radix holds no reference of its own, so a fresh prompt re-prefills.
  cache_.release_sequence(attach.seq);
  EXPECT_EQ(cache_.used_pages(), 0u);
  EXPECT_EQ(cache_.radix().size(), 0u);
  EXPECT_EQ(cache_.create_with_prefix(ids).matched_tokens, 0u);
}

TEST_F(PrefixCacheTest, ChargingReconcilesUnderForkAttachReleaseChurn) {
  const auto root = seq_with_tokens(3 * kPageTokens + 2);
  const auto ids = iota_ids(0, 3 * kPageTokens + 2);
  cache_.register_prefix(root, ids);
  std::vector<PagedKvCache::SeqId> live = {root};
  expect_reconciled(live);

  // Attach two prefix sharers and fork one of them.
  for (int i = 0; i < 2; ++i) {
    const auto at = cache_.create_with_prefix(ids);
    EXPECT_EQ(at.matched_tokens, 3 * kPageTokens);
    live.push_back(at.seq);
    expect_reconciled(live);
  }
  live.push_back(cache_.fork_sequence(live[1]));
  expect_reconciled(live);

  // Diverge every sharer by a private page, reconciling at each step.
  for (std::size_t i = 1; i < live.size(); ++i) {
    for (std::size_t t = 0; t < kPageTokens + 1; ++t) {
      ASSERT_TRUE(cache_.append_token(live[i], random_vec(), random_vec()));
    }
    expect_reconciled(live);
  }

  // Release in mixed order (registrar first, then sharers); the identity
  // must hold at every intermediate state and end at zero pages.
  while (!live.empty()) {
    cache_.release_sequence(live.front());
    live.erase(live.begin());
    expect_reconciled(live);
  }
  EXPECT_EQ(cache_.used_pages(), 0u);
  EXPECT_EQ(cache_.shared_pages(), 0u);
  EXPECT_EQ(cache_.radix().size(), 0u);
}

TEST_F(PrefixCacheTest, AdoptedSequenceReRegistersAfterSwapRoundTrip) {
  // Swap-out/in must compose with prefix sharing: a sequence serialized,
  // released (its index entries die with it) and adopted back can
  // re-register and serve attachments again.
  const auto a = seq_with_tokens(2 * kPageTokens + 1);
  const auto ids = iota_ids(0, 2 * kPageTokens + 1);
  cache_.register_prefix(a, ids);
  const auto bytes = serialize_sequence(cache_, a);
  cache_.release_sequence(a);
  EXPECT_EQ(cache_.radix().size(), 0u);
  EXPECT_EQ(cache_.used_pages(), 0u);

  const auto adopted = deserialize_sequence(cache_, bytes);
  ASSERT_TRUE(adopted.has_value());
  EXPECT_EQ(cache_.token_count(*adopted), 2 * kPageTokens + 1);
  cache_.register_prefix(*adopted, ids);
  EXPECT_EQ(cache_.radix().size(), 2u);

  const auto attach = cache_.create_with_prefix(ids);
  EXPECT_EQ(attach.matched_tokens, 2 * kPageTokens);
  EXPECT_EQ(cache_.shared_pages(), 2u);
  expect_reconciled({*adopted, attach.seq});

  // memory_bytes must not double-count shared pages: attaching added
  // only the new sequence's (empty) tail buffers.
  const std::size_t before = cache_.memory_bytes();
  const auto again = cache_.create_with_prefix(ids);
  EXPECT_EQ(again.matched_tokens, 2 * kPageTokens);
  EXPECT_LT(cache_.memory_bytes() - before, kPageTokens * kDim);
  expect_reconciled({*adopted, attach.seq, again.seq});
}

// --- Lazy-flush bugfix: exhaustion mid-prefill is retryable -----------------

TEST(PrefillRetryTest, FullBufferFlushExhaustionFailsCleanAndRetries) {
  constexpr std::size_t kDim = 16;
  constexpr std::size_t kPageTokens = 8;
  PagedKvCache cache(kDim, BitWidth::kInt4, kPageTokens, 1);

  // A hog takes the only page.
  const auto hog = cache.create_sequence();
  const MatrixF full = test::random_matrix(kPageTokens, kDim, 1);
  ASSERT_TRUE(cache.append_prefill_block(hog, quantize_tile_int8(full),
                                         quantize_tile_int8(full)));
  ASSERT_EQ(cache.free_pages(), 0u);

  // Two ragged tiles fill the victim's tail buffer exactly; the flush is
  // deferred until the next append needs the room.
  const auto seq = cache.create_sequence();
  const MatrixF five = test::random_matrix(5, kDim, 2);
  const MatrixF three = test::random_matrix(3, kDim, 3);
  ASSERT_TRUE(cache.append_prefill_block(seq, quantize_tile_int8(five),
                                         quantize_tile_int8(five)));
  ASSERT_TRUE(cache.append_prefill_block(seq, quantize_tile_int8(three),
                                         quantize_tile_int8(three)));
  EXPECT_EQ(cache.key_buffer(seq).size(), kPageTokens);
  EXPECT_EQ(cache.token_count(seq), kPageTokens);

  // The third tile forces the deferred flush into an exhausted pool:
  // before the fix this path aborted on a consistency check; now it
  // reports failure and loses nothing.
  const MatrixF two = test::random_matrix(2, kDim, 4);
  EXPECT_FALSE(cache.append_prefill_block(seq, quantize_tile_int8(two),
                                          quantize_tile_int8(two)));
  EXPECT_EQ(cache.token_count(seq), kPageTokens);
  EXPECT_EQ(cache.key_buffer(seq).size(), kPageTokens);

  // Evicting the hog frees a page; the SAME call now succeeds — the
  // caller-side evict-and-retry contract append_token already honored.
  cache.release_sequence(hog);
  ASSERT_TRUE(cache.append_prefill_block(seq, quantize_tile_int8(two),
                                         quantize_tile_int8(two)));
  EXPECT_EQ(cache.token_count(seq), kPageTokens + 2);
  EXPECT_EQ(cache.blocks(seq).size(), 1u);
  EXPECT_EQ(cache.key_buffer(seq).size(), 2u);
}

// --- Session traces ---------------------------------------------------------

TraceConfig session_trace() {
  TraceConfig t;
  t.arrival_rate = 3.0;
  t.duration_s = 15.0;
  t.prompt_log_mean = 5.0;
  t.prompt_log_std = 0.4;
  t.gen_log_mean = 3.5;
  t.gen_log_std = 0.4;
  t.seed = 17;
  t.shared_prefix_tokens = 512;
  t.shared_prefix_fraction = 1.0;
  t.session_turns = 3;
  t.session_gap_s = 1.0;
  t.agentic_fraction = 0.4;
  return t;
}

TEST(SessionTraceTest, DefaultKnobsCarryNoTokenIds) {
  for (const Request& r : serving::generate_trace(TraceConfig{})) {
    EXPECT_TRUE(r.prompt_ids.empty());
    EXPECT_EQ(r.prefix_hit_tokens, 0u);
  }
}

TEST(SessionTraceTest, SessionModeShapesIdsAndOrdering) {
  const auto a = serving::generate_trace(session_trace());
  const auto b = serving::generate_trace(session_trace());
  ASSERT_GT(a.size(), 30u);
  ASSERT_EQ(a.size(), b.size());
  std::size_t multi_turn = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Request& r = a[i];
    // Ids always materialize in session mode and match the length.
    ASSERT_EQ(r.prompt_ids.size(), r.prompt_tokens);
    // fraction == 1.0: every prompt opens with the shared system prompt.
    ASSERT_GE(r.prompt_tokens, 512u);
    for (std::int32_t t = 0; t < 512; ++t) {
      ASSERT_EQ(r.prompt_ids[static_cast<std::size_t>(t)], t);
    }
    if (r.prompt_tokens > 512u + 48u) ++multi_turn;
    // Follow-up turns interleave with later sessions; arrivals must still
    // be non-decreasing for Engine::submit.
    if (i > 0) {
      ASSERT_GE(r.arrival_s, a[i - 1].arrival_s);
    }
    // Deterministic: ids included, not just lengths.
    ASSERT_EQ(r.prompt_ids, b[i].prompt_ids);
    ASSERT_EQ(r.arrival_s, b[i].arrival_s);
  }
  // History re-submission actually grows prompts past the shared prefix.
  EXPECT_GT(multi_turn, 0u);
}

// --- Engine: prefix attach, counters, determinism ---------------------------

EngineConfig prefix_engine() {
  EngineConfig c;
  c.device = sim::a100_pcie_40gb();
  c.geometry = sim::phi3_mini_geometry();
  c.method = sim::AttnMethod::kTurbo;
  c.attention.kv_bits = 4.0;
  return c;
}

Request ids_request(std::uint64_t id, double arrival, std::int32_t first,
                    std::size_t count, std::size_t gen) {
  Request r;
  r.id = id;
  r.arrival_s = arrival;
  r.prompt_tokens = count;
  r.max_new_tokens = gen;
  r.prompt_ids = iota_ids(first, count);
  return r;
}

const Request& by_id(const EngineResult& r, std::uint64_t id) {
  for (const Request& q : r.requests) {
    if (q.id == id) return q;
  }
  ADD_FAILURE() << "request " << id << " missing";
  return r.requests.front();
}

TEST(EnginePrefixTest, FollowUpAttachesRetainedPrefixPages) {
  // Turn 1 finishes long before turn 2 arrives, so by then its pages sit
  // at refcount zero in the retained pool — the follow-up must still
  // attach them instead of re-prefilling (page_tokens = 64: 256 prompt
  // tokens = 4 registered pages).
  const EngineConfig cfg = prefix_engine();
  std::vector<Request> trace = {ids_request(1, 0.0, 0, 256, 8),
                                ids_request(2, 5.0, 0, 320, 8)};
  const EngineResult r = run_engine(cfg, trace);
  ASSERT_EQ(r.requests.size(), 2u);
  EXPECT_EQ(by_id(r, 1).outcome, Outcome::kCompleted);
  EXPECT_EQ(by_id(r, 2).outcome, Outcome::kCompleted);
  EXPECT_EQ(by_id(r, 1).prefix_hit_tokens, 0u);
  EXPECT_EQ(by_id(r, 2).prefix_hit_tokens, 256u);
  EXPECT_EQ(r.prefix_hit_tokens, 256u);
  EXPECT_EQ(r.prefix_hit_requests, 1u);
  EXPECT_EQ(r.prefix_pages_attached, 4u);
  // Only the 64-token suffix of turn 2 ran through chunked prefill.
  EXPECT_EQ(r.prefilled_tokens, 256u + 64u);
  EXPECT_GT(r.peak_referenced_pages, 0u);

  // The metrics rollup mirrors every prefix counter (lint rule 6).
  const ServingMetrics m = summarize(r);
  EXPECT_EQ(m.prefix_hit_tokens, r.prefix_hit_tokens);
  EXPECT_EQ(m.prefix_hit_requests, r.prefix_hit_requests);
  EXPECT_EQ(m.prefix_pages_attached, r.prefix_pages_attached);
  EXPECT_EQ(m.retained_pages_reclaimed, r.retained_pages_reclaimed);
  EXPECT_EQ(m.prefilled_tokens, r.prefilled_tokens);
  EXPECT_EQ(m.peak_referenced_pages, r.peak_referenced_pages);
}

TEST(EnginePrefixTest, IdenticalResubmissionStillPrefillsAChunk) {
  // An exact duplicate prompt matches at most prompt_tokens - 1, so the
  // last page always prefills and first_token_s has a chunk to stamp:
  // 256-token duplicate => 255-token cap => 3 of 4 pages attach.
  const EngineConfig cfg = prefix_engine();
  std::vector<Request> trace = {ids_request(1, 0.0, 0, 256, 4),
                                ids_request(2, 5.0, 0, 256, 4)};
  const EngineResult r = run_engine(cfg, trace);
  const Request& dup = by_id(r, 2);
  EXPECT_EQ(dup.outcome, Outcome::kCompleted);
  EXPECT_EQ(dup.prefix_hit_tokens, 192u);
  EXPECT_GE(dup.first_token_s, 0.0);
  EXPECT_GT(dup.first_token_s, dup.prefill_start_s);
  EXPECT_EQ(r.prefilled_tokens, 256u + 64u);
}

TEST(EnginePrefixTest, LengthOnlyTraceTouchesNoPrefixMachinery) {
  TraceConfig t;
  t.arrival_rate = 4.0;
  t.duration_s = 10.0;
  t.seed = 7;
  const EngineResult r = run_engine(prefix_engine(), serving::generate_trace(t));
  EXPECT_EQ(r.prefix_hit_tokens, 0u);
  EXPECT_EQ(r.prefix_hit_requests, 0u);
  EXPECT_EQ(r.prefix_pages_attached, 0u);
  EXPECT_EQ(r.retained_pages_reclaimed, 0u);
  EXPECT_GT(r.prefilled_tokens, 0u);
  for (const Request& q : r.requests) {
    EXPECT_EQ(q.prefix_hit_tokens, 0u);
  }
}

TEST(EnginePrefixTest, SessionTracePrefillsLessAndReferencesFewerPages) {
  const std::vector<Request> trace =
      serving::generate_trace(session_trace());
  std::vector<Request> stripped = trace;
  for (Request& q : stripped) q.prompt_ids.clear();

  const EngineConfig cfg = prefix_engine();
  const EngineResult with = run_engine(cfg, trace);
  const EngineResult without = run_engine(cfg, stripped);

  EXPECT_GT(with.prefix_hit_requests, 0u);
  EXPECT_GT(with.prefix_hit_tokens, 0u);
  EXPECT_EQ(without.prefix_hit_tokens, 0u);
  // The headline: shared prefixes and re-submitted histories are served
  // from resident pages, not re-prefilled, and the referenced-page peak
  // shrinks with them.
  EXPECT_LT(with.prefilled_tokens, without.prefilled_tokens);
  EXPECT_LE(with.peak_referenced_pages, without.peak_referenced_pages);
  // Per-request attribution reconciles with the engine total.
  std::size_t sum = 0;
  for (const Request& q : with.requests) sum += q.prefix_hit_tokens;
  EXPECT_EQ(sum, with.prefix_hit_tokens);
}

TEST(EnginePrefixTest, ExhaustionReclaimsRetainedPagesLru) {
  // Squeeze the pool until fresh admissions must evict parked prefix
  // pages: the retained pool is cache, and reclaiming it (LRU) is how
  // the engine serves new work instead of rejecting it.
  EngineConfig cfg = prefix_engine();
  cfg.memory_headroom = 0.20;
  const EngineResult r =
      run_engine(cfg, serving::generate_trace(session_trace()));
  EXPECT_GT(r.retained_pages_reclaimed, 0u);
  EXPECT_FALSE(r.hit_time_limit);
}

// Order-independent digest over everything a request carries out of a
// run plus the prefix counters — two runs compare in full. CI runs this
// test in Release, ASan+UBSan and TSan, so the seeded values it pins are
// also pinned across lanes.
std::uint64_t digest(const EngineResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  auto mixd = [&](double v) { mix(std::bit_cast<std::uint64_t>(v)); };
  std::vector<Request> reqs = r.requests;
  std::sort(reqs.begin(), reqs.end(),
            [](const Request& a, const Request& b) { return a.id < b.id; });
  for (const Request& req : reqs) {
    mix(req.id);
    mixd(req.prefill_start_s);
    mixd(req.first_token_s);
    mixd(req.finish_s);
    mix(req.generated);
    mix(req.prefix_hit_tokens);
    mix(req.preemptions);
    mix(req.recomputed_tokens);
    mix(static_cast<std::uint64_t>(req.outcome));
  }
  mixd(r.makespan_s);
  mixd(r.busy_s);
  mix(r.prefix_hit_tokens);
  mix(r.prefix_hit_requests);
  mix(r.prefix_pages_attached);
  mix(r.retained_pages_reclaimed);
  mix(r.prefilled_tokens);
  mix(r.peak_referenced_pages);
  mix(static_cast<std::uint64_t>(r.hit_time_limit));
  return h;
}

TEST(EnginePrefixTest, SeededSessionRunsAreBitIdentical) {
  const std::vector<Request> trace =
      serving::generate_trace(session_trace());
  EngineConfig cfg = prefix_engine();
  cfg.memory_headroom = 0.25;  // pressure: attach, evict and reclaim paths
  const EngineResult a = run_engine(cfg, trace);
  const EngineResult b = run_engine(cfg, trace);
  EXPECT_EQ(digest(a), digest(b));
}

}  // namespace
}  // namespace turbo
