#include "kernels/fused_decode.h"

#include <gtest/gtest.h>

#include "attention/turbo.h"
#include "common/check.h"
#include "kvcache/paged_cache.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

// Build a cache with prefill blocks (of every supported width) plus a
// buffered tail, and check the fused kernel against the reference kernel.
class FusedDecodeTest : public ::testing::TestWithParam<BitWidth> {};

TEST_P(FusedDecodeTest, BitIdenticalToReference) {
  const BitWidth bits = GetParam();
  const std::size_t d = 32;
  QuantizedKvCache cache(d, bits, 64, 64);
  const MatrixF k = test::random_matrix(200, d, 1);
  const MatrixF v = test::random_matrix(200, d, 2);
  const MatrixF qp = test::random_matrix(200, d, 3);
  const AttentionConfig cfg;
  const Sas sas;
  turbo_attention_prefill(qp, k, v, cfg, sas, &cache);

  // Add buffered decode tokens (tail not a multiple of the block size).
  Rng rng(4);
  for (int t = 0; t < 13; ++t) {
    std::vector<float> kt(d);
    std::vector<float> vt(d);
    rng.fill_normal(kt, 0.0, 1.0);
    rng.fill_normal(vt, 0.0, 1.0);
    cache.append_token(kt, vt);
  }

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(d);
    rng.fill_normal(q, 0.0, 1.0);
    const auto reference = turbo_attention_decode(q, cache, cfg, sas);
    const auto fused = fused_turbo_decode(q, cache, cfg, sas);
    ASSERT_EQ(reference.size(), fused.size());
    for (std::size_t c = 0; c < d; ++c) {
      EXPECT_EQ(reference[c], fused[c])
          << "bits=" << bit_count(bits) << " trial=" << trial << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, FusedDecodeTest,
                         ::testing::Values(BitWidth::kInt2, BitWidth::kInt3,
                                           BitWidth::kInt4));

TEST(FusedDecodeTest, RaggedFinalBlock) {
  // 100 tokens at Bc=64: one full block + one 36-row block — exercises
  // non-multiple-of-8 code counts in the packed layout.
  const std::size_t d = 16;
  QuantizedKvCache cache(d, BitWidth::kInt3, 64, 64);
  const MatrixF k = test::random_matrix(100, d, 5);
  const MatrixF v = test::random_matrix(100, d, 6);
  const MatrixF qp = test::random_matrix(100, d, 7);
  const AttentionConfig cfg;
  const Sas sas;
  turbo_attention_prefill(qp, k, v, cfg, sas, &cache);
  std::vector<float> q(d, 0.3f);
  EXPECT_EQ(turbo_attention_decode(q, cache, cfg, sas),
            fused_turbo_decode(q, cache, cfg, sas));
}

TEST(FusedDecodeTest, WorksOnPagedCache) {
  const std::size_t d = 16;
  PagedKvCache paged(d, BitWidth::kInt4, 16, 8);
  const auto seq = paged.create_sequence();
  Rng rng(8);
  for (int t = 0; t < 40; ++t) {
    std::vector<float> kt(d);
    std::vector<float> vt(d);
    rng.fill_normal(kt, 0.0, 1.0);
    rng.fill_normal(vt, 0.0, 1.0);
    ASSERT_TRUE(paged.append_token(seq, kt, vt));
  }
  std::vector<float> q(d, -0.2f);
  const AttentionConfig cfg;
  const Sas sas;
  const auto reference = turbo_attention_decode(
      q, paged.blocks(seq), paged.key_buffer(seq), paged.value_buffer(seq),
      cfg, sas);
  const auto fused = fused_turbo_decode(
      q, paged.blocks(seq), paged.key_buffer(seq), paged.value_buffer(seq),
      cfg, sas);
  EXPECT_EQ(reference, fused);
}

TEST(FusedDecodeTest, EmptyCacheThrows) {
  QuantizedKvCache cache(8, BitWidth::kInt4, 64, 64);
  std::vector<float> q(8, 1.0f);
  EXPECT_THROW(fused_turbo_decode(q, cache, AttentionConfig{}, Sas{}),
               CheckError);
}

}  // namespace
}  // namespace turbo
