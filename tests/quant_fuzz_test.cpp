// Randomized cross-checks of the quantization stack against brute-force
// reference implementations (small shapes, many seeds).
#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "quant/asymmetric.h"
#include "quant/packing.h"
#include "quant/progressive.h"
#include "quant/symmetric.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

// Brute-force symmetric INT8 reference.
std::vector<std::int8_t> brute_symmetric(std::span<const float> x,
                                         float scale) {
  std::vector<std::int8_t> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    float q = std::nearbyint(x[i] / scale);
    if (q > 127.0f) q = 127.0f;
    if (q < -127.0f) q = -127.0f;
    out[i] = static_cast<std::int8_t>(q);
  }
  return out;
}

TEST(QuantFuzzTest, SymmetricMatchesBruteForce) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    std::vector<float> x(64);
    rng.fill_normal(x, rng.normal(0.0, 2.0), rng.uniform(0.1, 5.0));
    const float scale = symmetric_scale_int8(x);
    std::vector<std::int8_t> q(x.size());
    quantize_symmetric_int8(x, scale, q);
    const auto ref = brute_symmetric(x, scale);
    ASSERT_EQ(q, ref) << "seed " << seed;
  }
}

TEST(QuantFuzzTest, PackingRandomWidthsAndLengths) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const BitWidth bits =
        trial % 3 == 0 ? BitWidth::kInt2
                       : (trial % 3 == 1 ? BitWidth::kInt3 : BitWidth::kInt4);
    const std::size_t n = 1 + rng.uniform_index(300);
    std::vector<std::uint8_t> codes(n);
    for (auto& c : codes) {
      c = static_cast<std::uint8_t>(rng.uniform_index(level_count(bits)));
    }
    const auto packed = pack_codes(codes, bits);
    ASSERT_EQ(unpack_codes(packed, bits, n), codes)
        << "trial " << trial << " n " << n;
  }
}

TEST(QuantFuzzTest, ProgressiveRoundTripInvariants) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t rows = 1 + rng.uniform_index(70);
    const std::size_t cols = 1 + rng.uniform_index(40);
    const BitWidth bits =
        trial % 2 == 0 ? BitWidth::kInt2 : BitWidth::kInt4;
    MatrixI8 q1(rows, cols);
    for (auto& v : q1.flat()) {
      v = static_cast<std::int8_t>(
          static_cast<int>(rng.uniform_index(239)) - 119);
    }
    const ProgressiveBlock b = progressive_compress(q1, 0.5f, bits);
    const MatrixI8 back = progressive_decompress_int8(b);
    ASSERT_EQ(back.rows(), rows);
    ASSERT_EQ(back.cols(), cols);
    for (std::size_t c = 0; c < cols; ++c) {
      // Reconstruction stays inside the channel's [min, max] envelope
      // (expanded by half a step for rounding).
      int lo = 127;
      int hi = -127;
      for (std::size_t r = 0; r < rows; ++r) {
        lo = std::min<int>(lo, q1(r, c));
        hi = std::max<int>(hi, q1(r, c));
      }
      const int slack = (b.channels[c].s_int + 1) / 2;
      for (std::size_t r = 0; r < rows; ++r) {
        ASSERT_GE(back(r, c), lo - slack);
        ASSERT_LE(back(r, c), hi + slack);
      }
    }
  }
}

TEST(QuantFuzzTest, GroupedQuantNeverExpandsRange) {
  Rng rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t rows = 2 + rng.uniform_index(60);
    const std::size_t cols = 2 + rng.uniform_index(30);
    MatrixF m(rows, cols);
    rng.fill_normal(m.flat(), 0.0, rng.uniform(0.1, 10.0));
    const QuantAxis axis =
        trial % 2 == 0 ? QuantAxis::kChannel : QuantAxis::kToken;
    const GroupQuantized g =
        quantize_grouped(m, BitWidth::kInt4, 16, axis);
    const MatrixF back = dequantize_grouped(g);
    float lo = m.flat()[0];
    float hi = lo;
    for (float v : m.flat()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    for (float v : back.flat()) {
      // Asymmetric quantization reconstructs inside the data range.
      ASSERT_GE(v, lo - 1e-4f);
      ASSERT_LE(v, hi + 1e-4f);
    }
  }
}

TEST(QuantFuzzTest, SerializePackUnpackIdempotent) {
  // pack(unpack(pack(x))) == pack(x) for random code streams.
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const BitWidth bits = trial % 2 == 0 ? BitWidth::kInt3 : BitWidth::kInt4;
    const std::size_t n = 1 + rng.uniform_index(100);
    std::vector<std::uint8_t> codes(n);
    for (auto& c : codes) {
      c = static_cast<std::uint8_t>(rng.uniform_index(level_count(bits)));
    }
    const auto packed = pack_codes(codes, bits);
    const auto repacked = pack_codes(unpack_codes(packed, bits, n), bits);
    ASSERT_EQ(packed, repacked);
  }
}

TEST(QuantFuzzTest, AsymGroupParamsRepresentEndpoints) {
  Rng rng(31);
  for (int trial = 0; trial < 80; ++trial) {
    std::vector<float> v(4 + rng.uniform_index(60));
    rng.fill_normal(v, rng.normal(0.0, 3.0), rng.uniform(0.05, 4.0));
    for (BitWidth bits : {BitWidth::kInt2, BitWidth::kInt4}) {
      const AsymParams p = asym_params(v, bits);
      std::vector<std::uint8_t> q(v.size());
      quantize_asym(v, p, bits, q);
      std::vector<float> back(v.size());
      dequantize_asym(q, p, back);
      float lo = v[0];
      float hi = v[0];
      std::size_t lo_i = 0;
      std::size_t hi_i = 0;
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (v[i] < lo) {
          lo = v[i];
          lo_i = i;
        }
        if (v[i] > hi) {
          hi = v[i];
          hi_i = i;
        }
      }
      ASSERT_NEAR(back[lo_i], lo, 1e-3f + std::abs(lo) * 1e-5f);
      ASSERT_NEAR(back[hi_i], hi, 1e-3f + std::abs(hi) * 1e-5f);
    }
  }
}

}  // namespace
}  // namespace turbo
