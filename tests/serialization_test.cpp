#include "kvcache/serialization.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "attention/turbo.h"
#include "common/check.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

QuantizedKvCache make_cache(BitWidth bits, std::size_t tokens,
                            std::size_t buffered, std::uint64_t seed) {
  const std::size_t d = 24;
  QuantizedKvCache cache(d, bits, 64, 64);
  if (tokens > 0) {
    const MatrixF k = test::random_matrix(tokens, d, seed);
    const MatrixF v = test::random_matrix(tokens, d, seed + 1);
    const MatrixF q = test::random_matrix(tokens, d, seed + 2);
    const AttentionConfig cfg;
    const Sas sas;
    turbo_attention_prefill(q, k, v, cfg, sas, &cache);
  }
  Rng rng(seed + 3);
  for (std::size_t t = 0; t < buffered; ++t) {
    std::vector<float> kt(d);
    std::vector<float> vt(d);
    rng.fill_normal(kt, 0.0, 1.0);
    rng.fill_normal(vt, 0.0, 1.0);
    cache.append_token(kt, vt);
  }
  return cache;
}

void expect_equal_caches(const QuantizedKvCache& a,
                         const QuantizedKvCache& b) {
  ASSERT_EQ(a.token_count(), b.token_count());
  ASSERT_EQ(a.block_count(), b.block_count());
  EXPECT_EQ(a.memory_bytes(), b.memory_bytes());
  for (std::size_t j = 0; j < a.block_count(); ++j) {
    EXPECT_EQ(a.block(j).k.packed, b.block(j).k.packed);
    EXPECT_EQ(a.block(j).v.packed, b.block(j).v.packed);
    EXPECT_EQ(a.block(j).k.fp_scale, b.block(j).k.fp_scale);
  }
  // Bit-exact: decode produces identical outputs.
  std::vector<float> q(a.head_dim(), 0.37f);
  const AttentionConfig cfg;
  const Sas sas;
  EXPECT_EQ(turbo_attention_decode(q, a, cfg, sas),
            turbo_attention_decode(q, b, cfg, sas));
}

class SerializationRoundTrip : public ::testing::TestWithParam<BitWidth> {};

TEST_P(SerializationRoundTrip, BitExact) {
  const QuantizedKvCache cache = make_cache(GetParam(), 150, 13, 5);
  const auto bytes = serialize_cache(cache);
  const QuantizedKvCache back = deserialize_cache(bytes);
  expect_equal_caches(cache, back);
}

INSTANTIATE_TEST_SUITE_P(Widths, SerializationRoundTrip,
                         ::testing::Values(BitWidth::kInt2, BitWidth::kInt3,
                                           BitWidth::kInt4));

TEST(SerializationTest, BufferOnlyCache) {
  const QuantizedKvCache cache = make_cache(BitWidth::kInt4, 0, 7, 9);
  const QuantizedKvCache back = deserialize_cache(serialize_cache(cache));
  expect_equal_caches(cache, back);
}

TEST(SerializationTest, EmptyCacheRoundTrips) {
  QuantizedKvCache cache(24, BitWidth::kInt4, 64, 64);
  const QuantizedKvCache back = deserialize_cache(serialize_cache(cache));
  EXPECT_EQ(back.token_count(), 0u);
  EXPECT_EQ(back.block_count(), 0u);
}

TEST(SerializationTest, StreamSmallerThanFp16) {
  const QuantizedKvCache cache = make_cache(BitWidth::kInt4, 256, 0, 11);
  const auto bytes = serialize_cache(cache);
  EXPECT_LT(bytes.size(), 256u * 24u * 2u * 2u / 3u);
}

TEST(SerializationTest, RejectsBadMagic) {
  auto bytes = serialize_cache(make_cache(BitWidth::kInt4, 64, 0, 13));
  bytes[0] ^= 0xff;
  EXPECT_THROW(deserialize_cache(bytes), CheckError);
}

TEST(SerializationTest, RejectsWrongVersion) {
  auto bytes = serialize_cache(make_cache(BitWidth::kInt4, 64, 0, 13));
  bytes[4] = 99;
  EXPECT_THROW(deserialize_cache(bytes), CheckError);
}

TEST(SerializationTest, RejectsTruncation) {
  const auto bytes = serialize_cache(make_cache(BitWidth::kInt4, 64, 5, 13));
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                          std::size_t{9}}) {
    EXPECT_THROW(
        deserialize_cache(std::span(bytes.data(), cut)), CheckError)
        << "cut at " << cut;
  }
}

TEST(SerializationTest, RejectsTrailingGarbage) {
  auto bytes = serialize_cache(make_cache(BitWidth::kInt4, 64, 0, 13));
  bytes.push_back(0x42);
  EXPECT_THROW(deserialize_cache(bytes), CheckError);
}

TEST(SerializationTest, FileRoundTrip) {
  const QuantizedKvCache cache = make_cache(BitWidth::kInt2, 128, 9, 17);
  const std::string path = ::testing::TempDir() + "/turbo_cache.tkvc";
  save_cache(cache, path);
  const QuantizedKvCache back = load_cache(path);
  expect_equal_caches(cache, back);
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_cache("/nonexistent/path/cache.tkvc"), CheckError);
}

}  // namespace
}  // namespace turbo
