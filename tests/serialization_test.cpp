#include "kvcache/serialization.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "attention/turbo.h"
#include "common/check.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

QuantizedKvCache make_cache(BitWidth bits, std::size_t tokens,
                            std::size_t buffered, std::uint64_t seed) {
  const std::size_t d = 24;
  QuantizedKvCache cache(d, bits, 64, 64);
  if (tokens > 0) {
    const MatrixF k = test::random_matrix(tokens, d, seed);
    const MatrixF v = test::random_matrix(tokens, d, seed + 1);
    const MatrixF q = test::random_matrix(tokens, d, seed + 2);
    const AttentionConfig cfg;
    const Sas sas;
    turbo_attention_prefill(q, k, v, cfg, sas, &cache);
  }
  Rng rng(seed + 3);
  for (std::size_t t = 0; t < buffered; ++t) {
    std::vector<float> kt(d);
    std::vector<float> vt(d);
    rng.fill_normal(kt, 0.0, 1.0);
    rng.fill_normal(vt, 0.0, 1.0);
    cache.append_token(kt, vt);
  }
  return cache;
}

void expect_equal_caches(const QuantizedKvCache& a,
                         const QuantizedKvCache& b) {
  ASSERT_EQ(a.token_count(), b.token_count());
  ASSERT_EQ(a.block_count(), b.block_count());
  EXPECT_EQ(a.memory_bytes(), b.memory_bytes());
  for (std::size_t j = 0; j < a.block_count(); ++j) {
    EXPECT_EQ(a.block(j).k.packed, b.block(j).k.packed);
    EXPECT_EQ(a.block(j).v.packed, b.block(j).v.packed);
    EXPECT_EQ(a.block(j).k.fp_scale, b.block(j).k.fp_scale);
  }
  // Bit-exact: decode produces identical outputs.
  std::vector<float> q(a.head_dim(), 0.37f);
  const AttentionConfig cfg;
  const Sas sas;
  EXPECT_EQ(turbo_attention_decode(q, a, cfg, sas),
            turbo_attention_decode(q, b, cfg, sas));
}

class SerializationRoundTrip : public ::testing::TestWithParam<BitWidth> {};

TEST_P(SerializationRoundTrip, BitExact) {
  const QuantizedKvCache cache = make_cache(GetParam(), 150, 13, 5);
  const auto bytes = serialize_cache(cache);
  const QuantizedKvCache back = deserialize_cache(bytes);
  expect_equal_caches(cache, back);
}

INSTANTIATE_TEST_SUITE_P(Widths, SerializationRoundTrip,
                         ::testing::Values(BitWidth::kInt2, BitWidth::kInt3,
                                           BitWidth::kInt4));

TEST(SerializationTest, BufferOnlyCache) {
  const QuantizedKvCache cache = make_cache(BitWidth::kInt4, 0, 7, 9);
  const QuantizedKvCache back = deserialize_cache(serialize_cache(cache));
  expect_equal_caches(cache, back);
}

TEST(SerializationTest, EmptyCacheRoundTrips) {
  QuantizedKvCache cache(24, BitWidth::kInt4, 64, 64);
  const QuantizedKvCache back = deserialize_cache(serialize_cache(cache));
  EXPECT_EQ(back.token_count(), 0u);
  EXPECT_EQ(back.block_count(), 0u);
}

TEST(SerializationTest, StreamSmallerThanFp16) {
  const QuantizedKvCache cache = make_cache(BitWidth::kInt4, 256, 0, 11);
  const auto bytes = serialize_cache(cache);
  EXPECT_LT(bytes.size(), 256u * 24u * 2u * 2u / 3u);
}

TEST(SerializationTest, RejectsBadMagic) {
  auto bytes = serialize_cache(make_cache(BitWidth::kInt4, 64, 0, 13));
  bytes[0] ^= 0xff;
  EXPECT_THROW(deserialize_cache(bytes), CheckError);
}

TEST(SerializationTest, RejectsWrongVersion) {
  auto bytes = serialize_cache(make_cache(BitWidth::kInt4, 64, 0, 13));
  bytes[4] = 99;
  EXPECT_THROW(deserialize_cache(bytes), CheckError);
}

TEST(SerializationTest, RejectsTruncation) {
  const auto bytes = serialize_cache(make_cache(BitWidth::kInt4, 64, 5, 13));
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                          std::size_t{9}}) {
    EXPECT_THROW(
        deserialize_cache(std::span(bytes.data(), cut)), CheckError)
        << "cut at " << cut;
  }
}

TEST(SerializationTest, RejectsTrailingGarbage) {
  auto bytes = serialize_cache(make_cache(BitWidth::kInt4, 64, 0, 13));
  bytes.push_back(0x42);
  EXPECT_THROW(deserialize_cache(bytes), CheckError);
}

TEST(SerializationTest, PayloadCorruptionDetectedByCrc) {
  // Flip single bytes throughout the payload (past the magic/version
  // prefix): every flip must be rejected, and flips that leave the
  // structure parseable must surface as IntegrityError specifically.
  const auto clean = serialize_cache(make_cache(BitWidth::kInt4, 128, 9, 19));
  std::size_t integrity_errors = 0;
  for (std::size_t at = 8; at < clean.size(); at += 37) {
    auto bytes = clean;
    bytes[at] ^= 0x01;
    try {
      deserialize_cache(bytes);
      FAIL() << "corruption at byte " << at << " was not detected";
    } catch (const IntegrityError&) {
      ++integrity_errors;
    } catch (const CheckError&) {
      // Structural damage (e.g. a corrupted length) is also acceptable —
      // the stream never deserializes silently.
    }
  }
  EXPECT_GT(integrity_errors, 0u);
}

TEST(SerializationTest, SequenceRoundTripBitExact) {
  PagedKvCache cache(24, BitWidth::kInt4, 16, 32);
  const auto seq = cache.create_sequence();
  Rng rng(23);
  for (int t = 0; t < 16 * 2 + 5; ++t) {
    std::vector<float> k(24);
    std::vector<float> v(24);
    rng.fill_normal(k, 0.0, 1.0);
    rng.fill_normal(v, 0.0, 1.0);
    ASSERT_TRUE(cache.append_token(seq, k, v));
  }
  const auto bytes = serialize_sequence(cache, seq);

  PagedKvCache other(24, BitWidth::kInt4, 16, 32);
  const auto restored = deserialize_sequence(other, bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(other.token_count(*restored), cache.token_count(seq));
  const auto a = cache.blocks(seq);
  const auto b = other.blocks(*restored);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->k.packed, b[i]->k.packed);
    EXPECT_EQ(a[i]->v.packed, b[i]->v.packed);
    EXPECT_EQ(a[i]->k.fp_scale, b[i]->k.fp_scale);
  }
  EXPECT_EQ(other.key_buffer(*restored).tokens(),
            cache.key_buffer(seq).tokens());
  EXPECT_EQ(other.key_buffer(*restored).scale(),
            cache.key_buffer(seq).scale());
}

TEST(SerializationTest, SequenceWithSharedPagesSerializesByValue) {
  // A forked sequence shares pages with its parent; its serialized form
  // must stand alone and restore into a cache that never saw the parent.
  PagedKvCache cache(24, BitWidth::kInt4, 16, 32);
  const auto parent = cache.create_sequence();
  Rng rng(29);
  for (int t = 0; t < 16 * 2; ++t) {
    std::vector<float> k(24);
    std::vector<float> v(24);
    rng.fill_normal(k, 0.0, 1.0);
    rng.fill_normal(v, 0.0, 1.0);
    ASSERT_TRUE(cache.append_token(parent, k, v));
  }
  const auto fork = cache.fork_sequence(parent);
  ASSERT_GT(cache.shared_pages(), 0u);
  const auto bytes = serialize_sequence(cache, fork);

  PagedKvCache other(24, BitWidth::kInt4, 16, 32);
  const auto restored = deserialize_sequence(other, bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(other.token_count(*restored), cache.token_count(fork));
}

TEST(SerializationTest, SequenceStreamCorruptionRejected) {
  PagedKvCache cache(24, BitWidth::kInt4, 16, 32);
  const auto seq = cache.create_sequence();
  Rng rng(31);
  for (int t = 0; t < 16 * 3; ++t) {
    std::vector<float> k(24);
    std::vector<float> v(24);
    rng.fill_normal(k, 0.0, 1.0);
    rng.fill_normal(v, 0.0, 1.0);
    ASSERT_TRUE(cache.append_token(seq, k, v));
  }
  const auto clean = serialize_sequence(cache, seq);

  PagedKvCache other(24, BitWidth::kInt4, 16, 32);
  auto corrupt = clean;
  corrupt[corrupt.size() / 2] ^= 0x40;
  EXPECT_THROW(deserialize_sequence(other, corrupt), CheckError);
  EXPECT_EQ(other.used_pages(), 0u);  // nothing adopted

  auto truncated = clean;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(deserialize_sequence(other, truncated), CheckError);

  // Geometry mismatch is a hard error, not a checksum failure.
  PagedKvCache narrow(24, BitWidth::kInt4, 8, 32);
  EXPECT_THROW(deserialize_sequence(narrow, clean), CheckError);
}

TEST(SerializationTest, FileRoundTrip) {
  const QuantizedKvCache cache = make_cache(BitWidth::kInt2, 128, 9, 17);
  const std::string path = ::testing::TempDir() + "/turbo_cache.tkvc";
  save_cache(cache, path);
  const QuantizedKvCache back = load_cache(path);
  expect_equal_caches(cache, back);
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_cache("/nonexistent/path/cache.tkvc"), CheckError);
}

}  // namespace
}  // namespace turbo
