// Chunked-prefill scheduler suite (ctest label: serving).
//
// Covers the Sarathi-style scheduling contract in serving/engine.cpp:
//  - a long prompt arriving mid-decode cannot head-of-line block the
//    decode steps of already-running requests (their TPOT tail is bounded
//    by one chunk, not one prompt);
//  - chunking changes latency distribution only — the two modes drain the
//    same trace to identical generated-token totals and finish counts;
//  - per-request TTFT timestamps are stamped at that request's own chunk
//    boundaries, never shared across an admission round;
//  - preemption of partially-prefilled requests resumes from the prefill
//    cursor under both eviction modes;
//  - recompute accounting (Request::recomputed_tokens) is auditable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "serving/engine.h"
#include "serving/metrics.h"
#include "serving/trace.h"
#include "sim/e2e_model.h"

namespace turbo::serving {
namespace {

EngineConfig base_engine() {
  EngineConfig c;
  c.device = sim::a100_sxm_80gb();
  c.geometry = sim::phi3_medium_geometry();
  c.method = sim::AttnMethod::kTurbo;
  c.attention.kv_bits = 4.0;
  return c;
}

Request make_request(std::uint64_t id, double arrival, std::size_t prompt,
                     std::size_t gen) {
  Request r;
  r.id = id;
  r.arrival_s = arrival;
  r.prompt_tokens = prompt;
  r.max_new_tokens = gen;
  return r;
}

// Analytical cost of one monolithic prefill over `tokens` (same model the
// engine charges), for asserting timestamp gaps.
double model_prefill_cost(const EngineConfig& c, std::size_t tokens) {
  sim::InferenceConfig cfg;
  cfg.method = c.method;
  cfg.attention = c.attention;
  cfg.batch = 1;
  cfg.prompt = tokens;
  return sim::prefill_breakdown(c.device, c.geometry, cfg).total();
}

// --- Head-of-line blocking (the acceptance scenario) ----------------------
// A stream of short-generation requests is decoding when one 8k-token
// prompt arrives. Monolithic prefill stalls every in-flight generation for
// the whole prompt; chunked prefill bounds each inter-token gap by one
// chunk, so the TPOT tail of the already-running cohort must be strictly
// lower — while totals stay identical.
TEST(ChunkedPrefillTest, BoundsHeadOfLineBlockingFromLongPrompt) {
  std::vector<Request> trace;
  for (std::uint64_t i = 0; i < 16; ++i) {
    trace.push_back(make_request(i, static_cast<double>(i) * 0.05, 256,
                                 4 + (i % 8) * 4));
  }
  const double big_arrival = 0.5;
  trace.push_back(make_request(100, big_arrival, 8192, 32));

  EngineConfig chunked = base_engine();
  chunked.prefill_chunk_tokens = 512;
  EngineConfig monolithic = base_engine();
  monolithic.prefill_chunk_tokens = 0;

  const EngineResult rc = run_engine(chunked, trace);
  const EngineResult rm = run_engine(monolithic, trace);

  // Identical work drained in both modes.
  std::size_t gen_c = 0;
  std::size_t gen_m = 0;
  std::size_t fin_c = 0;
  std::size_t fin_m = 0;
  for (const Request& r : rc.requests) {
    gen_c += r.generated;
    fin_c += r.finished() ? 1 : 0;
  }
  for (const Request& r : rm.requests) {
    gen_m += r.generated;
    fin_m += r.finished() ? 1 : 0;
  }
  EXPECT_EQ(gen_c, gen_m);
  EXPECT_EQ(fin_c, fin_m);
  EXPECT_EQ(fin_c, trace.size());

  // p99 TPOT over the cohort that was already in flight when the long
  // prompt arrived.
  auto cohort_tpot_p99 = [&](const EngineResult& r) {
    std::vector<double> tpots;
    for (const Request& q : r.requests) {
      if (q.arrival_s >= big_arrival) continue;
      if (q.generated > 1) tpots.push_back(q.tpot());
    }
    std::sort(tpots.begin(), tpots.end());
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(tpots.size()))) - 1;
    return tpots[std::min(idx, tpots.size() - 1)];
  };
  const double p99_chunked = cohort_tpot_p99(rc);
  const double p99_monolithic = cohort_tpot_p99(rm);
  EXPECT_LT(p99_chunked, p99_monolithic);
}

// --- Per-request TTFT timestamps ------------------------------------------
// Two prompts admitted in the same round must not share timestamps: the
// second request's TTFT must exceed the first's by at least its own
// prefill cost (its chunks only start after the first prompt finished).
TEST(ChunkedPrefillTest, SameRoundAdmissionsReportDistinctTtfts) {
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{512}}) {
    SCOPED_TRACE("prefill_chunk_tokens = " + std::to_string(chunk));
    EngineConfig cfg = base_engine();
    cfg.prefill_chunk_tokens = chunk;
    std::vector<Request> trace;
    trace.push_back(make_request(0, 0.0, 1024, 8));
    trace.push_back(make_request(1, 0.0, 2048, 8));
    const EngineResult r = run_engine(cfg, trace);

    const Request* first = nullptr;
    const Request* second = nullptr;
    for (const Request& q : r.requests) {
      ASSERT_TRUE(q.started());
      ASSERT_TRUE(q.finished());
    }
    first = &r.requests[0];
    second = &r.requests[1];
    if (first->prefill_start_s > second->prefill_start_s) {
      std::swap(first, second);
    }
    // Distinct stamps at every boundary.
    EXPECT_LT(first->prefill_start_s, second->first_token_s);
    EXPECT_NE(first->first_token_s, second->first_token_s);
    // The second prompt's whole prefill separates the two first tokens
    // (chunk-summed costs are never below the monolithic pass).
    const double second_prefill =
        model_prefill_cost(cfg, second->prompt_tokens);
    EXPECT_GE(second->first_token_s - first->first_token_s,
              second_prefill * 0.999);
    // And the first request's TTFT no longer pays for its round-mates.
    EXPECT_LT(first->ttft(),
              model_prefill_cost(cfg, first->prompt_tokens) +
                  model_prefill_cost(cfg, second->prompt_tokens));
  }
}

// Chunking is a latency knob, not a work knob: a bursty trace drains to
// the same per-request generated counts at several chunk sizes.
TEST(ChunkedPrefillTest, TotalsInvariantAcrossChunkSizes) {
  TraceConfig t;
  t.arrival_rate = 8.0;
  t.duration_s = 20.0;
  t.prompt_log_mean = 6.5;  // median ~665 tokens: several chunks each
  t.prompt_log_std = 0.6;
  t.seed = 23;
  const auto trace = generate_trace(t);

  std::vector<std::vector<std::size_t>> per_request;
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{256},
                                  std::size_t{512}, std::size_t{2048}}) {
    EngineConfig cfg = base_engine();
    cfg.prefill_chunk_tokens = chunk;
    const EngineResult r = run_engine(cfg, trace);
    EXPECT_FALSE(r.hit_time_limit);
    std::vector<std::size_t> gens;
    for (const Request& q : r.requests) {
      EXPECT_TRUE(q.finished());
      gens.push_back(q.generated);
    }
    per_request.push_back(std::move(gens));
  }
  for (std::size_t i = 1; i < per_request.size(); ++i) {
    EXPECT_EQ(per_request[i], per_request[0]);
  }
}

// --- Preemption of partially-prefilled requests ---------------------------
// Under heavy memory pressure a long prompt's prefill cursor is evicted
// mid-prompt; both eviction modes must resume it (swap restores the
// cached chunks, recompute re-derives them) and drain the trace with
// exact accounting.
TEST(ChunkedPrefillTest, PartialPrefillPreemptionResumesFromCursor) {
  for (const PreemptMode mode :
       {PreemptMode::kSwap, PreemptMode::kRecompute}) {
    SCOPED_TRACE(mode == PreemptMode::kSwap ? "swap" : "recompute");
    EngineConfig cfg;
    cfg.device = sim::a100_pcie_40gb();
    cfg.geometry = sim::phi3_mini_geometry();
    cfg.method = sim::AttnMethod::kTurbo;
    cfg.attention.kv_bits = 3.0;
    cfg.memory_headroom = 0.2;
    cfg.preempt_mode = mode;
    cfg.prefill_chunk_tokens = 256;
    TraceConfig t;
    t.arrival_rate = 16.0;
    t.duration_s = 12.0;
    t.prompt_log_mean = 7.0;  // median ~1100 tokens: many chunks, heavy KV
    t.gen_log_mean = 5.0;
    t.seed = 5;
    const auto trace = generate_trace(t);
    const EngineResult r = run_engine(cfg, trace);
    EXPECT_FALSE(r.hit_time_limit);
    EXPECT_GT(r.preemptions, 0u);
    const ServingMetrics m = summarize(r);
    EXPECT_EQ(m.completed + m.rejected, trace.size());
    for (const Request& q : r.requests) {
      EXPECT_TRUE(q.finished());
      if (q.started()) {
        EXPECT_EQ(q.generated, q.max_new_tokens);
      }
    }
  }
}

// --- Recompute accounting -------------------------------------------------
TEST(ChunkedPrefillTest, RecomputedTokensAuditable) {
  EngineConfig cfg;
  cfg.device = sim::a100_pcie_40gb();
  cfg.geometry = sim::phi3_mini_geometry();
  cfg.method = sim::AttnMethod::kTurbo;
  cfg.attention.kv_bits = 3.0;
  cfg.memory_headroom = 0.2;
  cfg.preempt_mode = PreemptMode::kRecompute;
  TraceConfig t;
  t.arrival_rate = 24.0;
  t.duration_s = 10.0;
  t.gen_log_mean = 5.5;
  t.seed = 7;
  const auto trace = generate_trace(t);
  const EngineResult r = run_engine(cfg, trace);
  EXPECT_GT(r.preemptions, 0u);
  // Recompute-mode evictions re-derive context: the aggregate counter is
  // the sum of the per-request ones and is visible in the metrics.
  std::size_t sum = 0;
  for (const Request& q : r.requests) sum += q.recomputed_tokens;
  EXPECT_EQ(sum, r.recomputed_tokens);
  EXPECT_GT(r.recomputed_tokens, 0u);
  EXPECT_EQ(summarize(r).recomputed_tokens, r.recomputed_tokens);

  // Swap mode without faults never recomputes.
  cfg.preempt_mode = PreemptMode::kSwap;
  const EngineResult rs = run_engine(cfg, trace);
  EXPECT_EQ(rs.recomputed_tokens, 0u);
  for (const Request& q : rs.requests) EXPECT_EQ(q.recomputed_tokens, 0u);
}

// --- Chunk cost model -----------------------------------------------------
// The engine's chunk costing must reduce exactly to the monolithic model
// for a single chunk and never undercut it when split (the cached prefix
// is re-read per chunk, so splitting adds I/O and launches).
TEST(ChunkedPrefillTest, ChunkCostModelConsistent) {
  const EngineConfig c = base_engine();
  for (const auto method :
       {sim::AttnMethod::kFlashFp16, sim::AttnMethod::kKiviFlash,
        sim::AttnMethod::kGearFlash, sim::AttnMethod::kTurbo}) {
    sim::InferenceConfig cfg;
    cfg.method = method;
    cfg.attention.kv_bits = method == sim::AttnMethod::kFlashFp16 ? 16.0
                                                                  : 4.0;
    cfg.batch = 1;
    cfg.prompt = 4096;
    const double mono =
        sim::prefill_breakdown(c.device, c.geometry, cfg).total();
    cfg.prompt = 4096;
    const double one_chunk =
        sim::chunk_prefill_breakdown(c.device, c.geometry, cfg, 0).total();
    EXPECT_DOUBLE_EQ(mono, one_chunk);

    double split = 0.0;
    for (std::size_t cached = 0; cached < 4096; cached += 512) {
      cfg.prompt = 512;
      split += sim::chunk_prefill_breakdown(c.device, c.geometry, cfg,
                                            cached)
                   .total();
    }
    EXPECT_GE(split, mono);
    EXPECT_LT(split, mono * 3.0);  // ...but not absurdly more
  }
}

}  // namespace
}  // namespace turbo::serving
