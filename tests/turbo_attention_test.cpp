#include "attention/turbo.h"

#include <cmath>

#include <gtest/gtest.h>

#include "attention/reference.h"
#include "common/check.h"
#include "common/stats.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

AttentionConfig config(std::size_t br, std::size_t bc, bool causal) {
  AttentionConfig cfg;
  cfg.block_rows = br;
  cfg.block_cols = bc;
  cfg.causal = causal;
  return cfg;
}

TEST(TurboPrefillTest, CloseToReferenceNonCausal) {
  const MatrixF q = test::random_matrix(64, 32, 1);
  const MatrixF k = test::random_matrix(64, 32, 2);
  const MatrixF v = test::random_matrix(64, 32, 3);
  const AttentionConfig cfg = config(32, 32, false);
  const Sas sas;
  const TurboPrefillResult r =
      turbo_attention_prefill(q, k, v, cfg, sas, nullptr);
  const MatrixF ref = reference_attention(q, k, v, cfg);
  // INT8 matmuls + SAS: a couple of percent relative error is the budget.
  EXPECT_LT(relative_error(r.o, ref), 0.03);
}

TEST(TurboPrefillTest, CloseToReferenceCausal) {
  const MatrixF q = test::random_matrix(96, 32, 4);
  const MatrixF k = test::random_matrix(96, 32, 5);
  const MatrixF v = test::random_matrix(96, 32, 6);
  const AttentionConfig cfg = config(32, 32, true);
  const Sas sas;
  const TurboPrefillResult r =
      turbo_attention_prefill(q, k, v, cfg, sas, nullptr);
  const MatrixF ref = reference_attention(q, k, v, cfg);
  EXPECT_LT(relative_error(r.o, ref), 0.03);
}

class TurboTileSweep : public ::testing::TestWithParam<
                           std::tuple<std::size_t, std::size_t>> {};

TEST_P(TurboTileSweep, RobustAcrossBlockSizes) {
  // The Table 3 property: accuracy is insensitive to (Br, Bc).
  const auto [br, bc] = GetParam();
  const MatrixF q = test::random_matrix(100, 16, 7);
  const MatrixF k = test::random_matrix(100, 16, 8);
  const MatrixF v = test::random_matrix(100, 16, 9);
  const AttentionConfig cfg = config(br, bc, true);
  const Sas sas;
  const TurboPrefillResult r =
      turbo_attention_prefill(q, k, v, cfg, sas, nullptr);
  const MatrixF ref = reference_attention(q, k, v, cfg);
  EXPECT_LT(relative_error(r.o, ref), 0.04) << "Br=" << br << " Bc=" << bc;
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, TurboTileSweep,
    ::testing::Combine(::testing::Values(std::size_t{32}, std::size_t{64},
                                         std::size_t{128}),
                       ::testing::Values(std::size_t{32}, std::size_t{64},
                                         std::size_t{128})));

TEST(TurboPrefillTest, PopulatesCache) {
  const MatrixF q = test::random_matrix(100, 16, 10);
  const MatrixF k = test::random_matrix(100, 16, 11);
  const MatrixF v = test::random_matrix(100, 16, 12);
  const AttentionConfig cfg = config(64, 64, true);
  QuantizedKvCache cache(16, BitWidth::kInt4, 64, 64);
  const Sas sas;
  turbo_attention_prefill(q, k, v, cfg, sas, &cache);
  EXPECT_EQ(cache.token_count(), 100u);
  EXPECT_EQ(cache.block_count(), 2u);  // 64 + 36
  EXPECT_EQ(cache.block(0).tokens(), 64u);
  EXPECT_EQ(cache.block(1).tokens(), 36u);
  // Cache reconstruction stays close to the original K/V.
  EXPECT_LT(relative_error(cache.reconstruct_keys(), k), 0.13);
  EXPECT_LT(relative_error(cache.reconstruct_values(), v), 0.13);
}

TEST(TurboPrefillTest, CacheBlockSizeMismatchThrows) {
  const MatrixF q = test::random_matrix(8, 8, 13);
  QuantizedKvCache cache(8, BitWidth::kInt4, 32, 64);
  const AttentionConfig cfg = config(8, 16, false);
  const Sas sas;
  EXPECT_THROW(turbo_attention_prefill(q, q, q, cfg, sas, &cache),
               CheckError);
}

TEST(TurboDecodeTest, MatchesReferenceWithin4BitBudget) {
  const std::size_t d = 32;
  const MatrixF k = test::random_matrix(200, d, 14);
  const MatrixF v = test::random_matrix(200, d, 15);
  const MatrixF q = test::random_matrix(1, d, 16);
  const AttentionConfig cfg = config(64, 64, true);
  const Sas sas;
  QuantizedKvCache cache(d, BitWidth::kInt4, 64, 64);
  const MatrixF dummy_q = test::random_matrix(200, d, 17);
  turbo_attention_prefill(dummy_q, k, v, cfg, sas, &cache);

  const auto o = turbo_attention_decode(q.row(0), cache, cfg, sas);
  const auto ref = reference_decode(q.row(0), k, v, cfg);
  EXPECT_LT(relative_error(o, ref), 0.18);
}

TEST(TurboDecodeTest, BufferedTokensParticipate) {
  const std::size_t d = 16;
  const AttentionConfig cfg = config(64, 64, true);
  const Sas sas;
  QuantizedKvCache cache(d, BitWidth::kInt4, 64, 64);

  // No prefill: push a handful of decode tokens (stay in the buffer).
  MatrixF k(0, d);
  MatrixF v(0, d);
  Rng rng(18);
  for (int t = 0; t < 5; ++t) {
    std::vector<float> kt(d);
    std::vector<float> vt(d);
    rng.fill_normal(kt, 0.0, 1.0);
    rng.fill_normal(vt, 0.0, 1.0);
    cache.append_token(kt, vt);
    k.append_row(std::span<const float>(kt));
    v.append_row(std::span<const float>(vt));
  }
  EXPECT_EQ(cache.block_count(), 0u);  // everything buffered

  const MatrixF q = test::random_matrix(1, d, 19);
  const auto o = turbo_attention_decode(q.row(0), cache, cfg, sas);
  const auto ref = reference_decode(q.row(0), k, v, cfg);
  EXPECT_LT(relative_error(o, ref), 0.05);
}

TEST(TurboDecodeTest, EmptyCacheThrows) {
  QuantizedKvCache cache(8, BitWidth::kInt4, 64, 64);
  std::vector<float> q(8, 1.0f);
  const AttentionConfig cfg;
  const Sas sas;
  EXPECT_THROW(turbo_attention_decode(q, cache, cfg, sas), CheckError);
}

TEST(TurboDecodeTest, Int2CoarserThanInt4) {
  const std::size_t d = 32;
  const MatrixF k = test::random_matrix(128, d, 20);
  const MatrixF v = test::random_matrix(128, d, 21);
  const MatrixF qd = test::random_matrix(1, d, 22);
  const MatrixF qp = test::random_matrix(128, d, 23);
  const AttentionConfig cfg = config(64, 64, true);
  const Sas sas;

  double err[2];
  int idx = 0;
  for (BitWidth bits : {BitWidth::kInt4, BitWidth::kInt2}) {
    QuantizedKvCache cache(d, bits, 64, 64);
    turbo_attention_prefill(qp, k, v, cfg, sas, &cache);
    const auto o = turbo_attention_decode(qd.row(0), cache, cfg, sas);
    const auto ref = reference_decode(qd.row(0), k, v, cfg);
    err[idx++] = relative_error(o, ref);
  }
  EXPECT_LT(err[0], err[1]);  // INT4 more accurate than INT2
}

TEST(TurboPrefillTest, LseFiniteAndOrdered) {
  const MatrixF q = test::random_matrix(32, 16, 24);
  const MatrixF k = test::random_matrix(32, 16, 25);
  const MatrixF v = test::random_matrix(32, 16, 26);
  const AttentionConfig cfg = config(16, 16, true);
  const Sas sas;
  const TurboPrefillResult r =
      turbo_attention_prefill(q, k, v, cfg, sas, nullptr);
  std::vector<float> ref_lse(32);
  reference_attention_with_lse(q, k, v, cfg, ref_lse);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_FALSE(std::isnan(r.lse[i]));
    EXPECT_NEAR(r.lse[i], ref_lse[i], 0.15f);
  }
}

}  // namespace
}  // namespace turbo
