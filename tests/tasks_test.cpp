#include <gtest/gtest.h>

#include "attention/turbo_method.h"
#include "baselines/fp16_method.h"
#include "common/rng.h"
#include "model/profile.h"
#include "tasks/codebook.h"
#include "tasks/retrieval.h"

namespace turbo::tasks {
namespace {

TEST(CodebookTest, EmbeddingsAreUnit) {
  Codebook cb(16, 32, 1);
  for (std::size_t s = 0; s < cb.size(); ++s) {
    double norm = 0.0;
    for (float v : cb.embedding(s)) norm += v * v;
    EXPECT_NEAR(norm, 1.0, 1e-5);
  }
}

TEST(CodebookTest, NearestRecoversExactEmbedding) {
  Codebook cb(32, 24, 2);
  for (std::size_t s = 0; s < cb.size(); ++s) {
    EXPECT_EQ(cb.nearest(cb.embedding(s)), s);
  }
}

TEST(CodebookTest, NearestRobustToSmallNoise) {
  Codebook cb(32, 24, 3);
  turbo::Rng rng(4);
  for (std::size_t s = 0; s < cb.size(); ++s) {
    std::vector<float> v(cb.embedding(s).begin(), cb.embedding(s).end());
    for (float& x : v) x += static_cast<float>(rng.normal(0.0, 0.05));
    EXPECT_EQ(cb.nearest(v), s);
  }
}

TEST(CodebookTest, ScaledDistance) {
  Codebook cb(4, 8, 5);
  std::vector<float> scale(8, 2.0f);
  std::vector<float> v(8);
  for (std::size_t c = 0; c < 8; ++c) v[c] = cb.embedding(1)[c] * 2.0f;
  EXPECT_NEAR(cb.distance_sq(v, 1, scale), 0.0, 1e-6);
  EXPECT_GT(cb.distance_sq(v, 0, scale), 0.5);
}

RetrievalConfig tiny_task(std::size_t hops) {
  RetrievalConfig c;
  c.profile = model::llama3_8b_profile();
  c.profile.heads = 4;  // keep CPU cost down
  c.n_pairs = 12;
  c.hard_negatives = 2;
  c.negative_similarity = 0.75;
  c.hops = hops;
  c.filler_per_hop = 4;
  c.n_cases = 10;
  c.seed = 99;
  return c;
}

TEST(RetrievalTest, ExactMethodSolvesEasyTask) {
  const RetrievalConfig cfg = tiny_task(1);
  const TaskResult r = run_retrieval(cfg, make_exact_factory({}));
  EXPECT_GE(r.accuracy, 0.9);
  EXPECT_EQ(r.cases, 10u);
}

TEST(RetrievalTest, Fp16CloseToExact) {
  const RetrievalConfig cfg = tiny_task(2);
  const TaskResult exact = run_retrieval(cfg, make_exact_factory({}));
  const TaskResult fp16 = run_retrieval(cfg, make_fp16_factory({}));
  EXPECT_NEAR(fp16.accuracy, exact.accuracy, 0.15);
}

TEST(RetrievalTest, DeterministicAcrossRuns) {
  const RetrievalConfig cfg = tiny_task(2);
  const TaskResult a = run_retrieval(cfg, make_fp16_factory({}));
  const TaskResult b = run_retrieval(cfg, make_fp16_factory({}));
  EXPECT_EQ(a.accuracy, b.accuracy);
}

TEST(RetrievalTest, Int2WorseThanInt4) {
  RetrievalConfig cfg = tiny_task(2);
  cfg.n_cases = 16;
  TurboMethodConfig t4;
  TurboMethodConfig t2;
  t2.kv_bits = BitWidth::kInt2;
  const TaskResult r4 = run_retrieval(cfg, make_turbo_factory(t4));
  const TaskResult r2 = run_retrieval(cfg, make_turbo_factory(t2));
  EXPECT_LE(r2.accuracy, r4.accuracy + 1e-9);
  EXPECT_LT(r2.kv_bytes_per_token, r4.kv_bytes_per_token);
}

TEST(RetrievalTest, KvBytesReported) {
  const RetrievalConfig cfg = tiny_task(1);
  const TaskResult fp16 = run_retrieval(cfg, make_fp16_factory({}));
  // 2 tensors x head_dim x 2 bytes.
  EXPECT_NEAR(fp16.kv_bytes_per_token, 2.0 * 32 * 2, 1.0);
}

TEST(RetrievalTest, HeadStatsMatchProfileStructure) {
  RetrievalConfig cfg = tiny_task(1);
  cfg.profile = model::phi3_mini_profile();
  const auto stats = retrieval_head_stats(cfg);
  ASSERT_EQ(stats.size(), cfg.profile.heads);
  EXPECT_GT(stats.back().priority(), stats.front().priority());
}

TEST(RetrievalTest, ProxyPresetsConfigured) {
  const auto gsm = gsm8k_proxy(model::llama3_8b_profile());
  const auto aqua = aqua_proxy(model::llama3_8b_profile());
  const auto bbh = bbh_proxy(model::llama3_8b_profile());
  EXPECT_GT(gsm.hops, aqua.hops);
  EXPECT_EQ(bbh.hops, 1u);
  EXPECT_GT(bbh.hard_negatives, gsm.hard_negatives);
  EXPECT_NE(gsm.name, aqua.name);
}

TEST(RetrievalTest, MoreHopsHarder) {
  RetrievalConfig easy = tiny_task(1);
  RetrievalConfig hard = tiny_task(4);
  easy.query_noise = 0.3;  // make single hops fallible so compounding shows
  hard.query_noise = 0.3;
  easy.n_cases = 20;
  hard.n_cases = 20;
  const TaskResult e = run_retrieval(easy, make_fp16_factory({}));
  const TaskResult h = run_retrieval(hard, make_fp16_factory({}));
  EXPECT_LE(h.accuracy, e.accuracy + 0.1);
}

}  // namespace
}  // namespace turbo::tasks
