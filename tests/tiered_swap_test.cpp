// Tiered swap store suite (ctest label: tier).
//
// Covers the multi-tier KV swap hierarchy (serving/swap.h) at three
// levels:
//  - store mechanics: placement fastest-first, same-key overwrite byte
//    accounting, LRU demotion under capacity pressure, promotion, and
//    conservation of stored bytes across demote/promote round trips;
//  - fault tolerance: per-tier unavailability (probabilistic and
//    deterministic outage windows), retry/backoff budgets,
//    consecutive-failure blacklisting with probing re-admission after
//    cooloff, and failover to slower tiers;
//  - the engine contract: with a tier forced unavailable mid-run the
//    engine still terminally resolves every request (failover, then
//    recompute), never hangs, and never leaks parked streams (the
//    engine asserts store emptiness at exit).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/fault.h"
#include "common/rng.h"
#include "kvcache/paged_cache.h"
#include "kvcache/serialization.h"
#include "serving/engine.h"
#include "serving/metrics.h"
#include "serving/swap.h"
#include "serving/trace.h"

namespace turbo {
namespace {

using serving::SwapTier;
using serving::TieredSwapStore;
using serving::TierHealthPolicy;
using FetchStatus = TieredSwapStore::FetchStatus;

// Two-tier store with explicit capacities/bandwidths (0 = unbounded).
TieredSwapStore make_store(std::size_t host_cap, std::size_t disk_cap,
                           TierHealthPolicy health = {}) {
  return TieredSwapStore(
      {SwapTier{"host", host_cap, 100.0}, SwapTier{"disk", disk_cap, 10.0}},
      health);
}

std::vector<std::uint8_t> bytes_of(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

// ---- Placement and byte accounting ---------------------------------------

TEST(TieredStoreTest, StoreLandsInFastestTier) {
  TieredSwapStore store = make_store(0, 0);
  const auto out = store.store(1, bytes_of(100, 0xAB), 1, 0.0, nullptr);
  ASSERT_TRUE(out.stored);
  EXPECT_EQ(out.tier, 0u);
  EXPECT_EQ(out.demotions, 0u);
  EXPECT_DOUBLE_EQ(out.transfer_s, 100.0 / 100.0);  // host bandwidth
  EXPECT_EQ(store.tier_of(1), std::size_t{0});
  EXPECT_EQ(store.tier_stored_bytes(0), 100u);
  EXPECT_EQ(store.tier_stored_bytes(1), 0u);
  EXPECT_EQ(store.counters(0).stores, 1u);
}

TEST(TieredStoreTest, EmptyStoreHasZeroBytes) {
  TieredSwapStore store = make_store(0, 0);
  EXPECT_EQ(store.stored_bytes(), 0u);
  EXPECT_EQ(store.count(), 0u);
  EXPECT_FALSE(store.tier_of(7).has_value());
}

TEST(TieredStoreTest, SameKeyOverwriteConservesBytes) {
  TieredSwapStore store = make_store(0, 0);
  store.store(1, bytes_of(100, 0x01), 1, 0.0, nullptr);
  store.store(1, bytes_of(40, 0x02), 2, 0.0, nullptr);
  EXPECT_EQ(store.count(), 1u);
  EXPECT_EQ(store.stored_bytes(), 40u);
  ASSERT_NE(store.stream_of(1), nullptr);
  EXPECT_EQ((*store.stream_of(1))[0], 0x02);
}

TEST(TieredStoreTest, FetchOfMissingKeyIsFreeAndDrawless) {
  TieredSwapStore store = make_store(0, 0);
  FaultPlan plan;
  plan.seed = 7;
  plan.tiers[0].unavailable_prob = 1.0;  // would fire on any probe
  FaultInjector injector(plan);
  const auto out = store.fetch(42, 1, 0.0, &injector);
  EXPECT_EQ(out.status, FetchStatus::kMissing);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_EQ(out.failovers, 0u);
  EXPECT_DOUBLE_EQ(out.stall_s, 0.0);
  // Short-circuited before any tier probe: nothing was injected.
  EXPECT_EQ(injector.injected_tier_unavailable(), 0u);
}

TEST(TieredStoreTest, FetchIsNonConsuming) {
  TieredSwapStore store = make_store(0, 0);
  store.store(3, bytes_of(64, 0x33), 1, 0.0, nullptr);
  const auto first = store.fetch(3, 2, 0.0, nullptr);
  EXPECT_EQ(first.status, FetchStatus::kHit);
  EXPECT_TRUE(store.contains(3));  // caller erases after adoption
  const auto second = store.fetch(3, 3, 0.0, nullptr);
  EXPECT_EQ(second.status, FetchStatus::kHit);
  EXPECT_TRUE(store.erase(3));
  EXPECT_EQ(store.fetch(3, 4, 0.0, nullptr).status, FetchStatus::kMissing);
}

TEST(TieredStoreTest, CapacityPressureDemotesLruToDisk) {
  TieredSwapStore store = make_store(200, 0);  // host fits two entries
  store.store(1, bytes_of(100, 0x01), 1, 0.0, nullptr);
  store.store(2, bytes_of(100, 0x02), 2, 0.0, nullptr);
  // Touch key 1 so key 2 becomes the LRU victim.
  store.fetch(1, 3, 0.0, nullptr);
  const auto out = store.store(3, bytes_of(100, 0x03), 4, 0.0, nullptr);
  ASSERT_TRUE(out.stored);
  EXPECT_EQ(out.tier, 0u);
  EXPECT_EQ(out.demotions, 1u);
  EXPECT_EQ(store.tier_of(1), std::size_t{0});
  EXPECT_EQ(store.tier_of(2), std::size_t{1});  // cold entry demoted
  EXPECT_EQ(store.tier_of(3), std::size_t{0});
  EXPECT_EQ(store.counters(1).demotions_in, 1u);
  // Conservation: every byte is still resident somewhere.
  EXPECT_EQ(store.stored_bytes(), 300u);
  EXPECT_EQ(store.tier_stored_bytes(0), 200u);
  EXPECT_EQ(store.tier_stored_bytes(1), 100u);
  // The demotion was charged at the destination (disk) bandwidth on top
  // of the store's own host-speed transfer.
  EXPECT_DOUBLE_EQ(out.transfer_s, 100.0 / 10.0 + 100.0 / 100.0);
}

// Regression (turbo_lint rule `nondeterministic-iteration`): the LRU
// victim scan iterates an unordered_map, so an equal-last-touch tie must
// be broken by stream id, not by whatever order the stdlib's hash layout
// happens to enumerate — demotion order is part of the bit-identical
// seeded-run contract. Two equal-touch streams, room for exactly one on
// disk: the smaller stream id must be the one demoted, regardless of
// insertion order.
TEST(TieredStoreTest, EqualTouchDemotionTieBreaksByStreamId) {
  for (const bool reversed : {false, true}) {
    TieredSwapStore store = make_store(200, 100);  // disk fits one entry
    const std::uint64_t first = reversed ? 7 : 3;
    const std::uint64_t second = reversed ? 3 : 7;
    store.store(first, bytes_of(100, 0x01), 1, 0.0, nullptr);
    store.store(second, bytes_of(100, 0x02), 1, 0.0, nullptr);
    // Needs the whole host tier: demotion frees one slot (stream 3, the
    // smaller id), then stalls — stream 7 cannot fit on the full disk.
    const auto out = store.store(9, bytes_of(200, 0x03), 2, 0.0, nullptr);
    EXPECT_FALSE(out.stored) << "reversed=" << reversed;
    EXPECT_EQ(out.demotions, 1u) << "reversed=" << reversed;
    EXPECT_EQ(store.tier_of(3), std::size_t{1}) << "reversed=" << reversed;
    EXPECT_EQ(store.tier_of(7), std::size_t{0}) << "reversed=" << reversed;
  }
}

TEST(TieredStoreTest, DemotePromoteRoundTripConservesBytes) {
  TieredSwapStore store = make_store(200, 0);
  store.store(1, bytes_of(100, 0x01), 1, 0.0, nullptr);
  store.store(2, bytes_of(100, 0x02), 2, 0.0, nullptr);
  store.store(3, bytes_of(100, 0x03), 3, 0.0, nullptr);  // demotes key 1
  EXPECT_EQ(store.tier_of(1), std::size_t{1});
  // Host is full: promotion must refuse rather than demote someone else.
  double transfer = 0.0;
  EXPECT_FALSE(store.promote(1, 4, 0.0, nullptr, &transfer));
  EXPECT_DOUBLE_EQ(transfer, 0.0);
  // Free a host slot; now the promotion goes through, charged at the
  // source (disk) bandwidth, and every byte stays accounted.
  EXPECT_TRUE(store.erase(2));
  EXPECT_TRUE(store.promote(1, 5, 0.0, nullptr, &transfer));
  EXPECT_DOUBLE_EQ(transfer, 100.0 / 10.0);
  EXPECT_EQ(store.tier_of(1), std::size_t{0});
  EXPECT_EQ(store.counters(1).promotions_out, 1u);
  EXPECT_EQ(store.stored_bytes(), 200u);
  EXPECT_EQ(store.tier_stored_bytes(1), 0u);
  // Promoting an entry already in tier 0 is a free no-op.
  EXPECT_FALSE(store.promote(1, 6, 0.0, nullptr, &transfer));
}

TEST(TieredStoreTest, OverflowRefusedWhenNoTierFits) {
  TieredSwapStore store = make_store(50, 100);
  const auto out = store.store(1, bytes_of(150, 0x01), 1, 0.0, nullptr);
  EXPECT_FALSE(out.stored);
  EXPECT_EQ(store.count(), 0u);
  EXPECT_EQ(store.stored_bytes(), 0u);
  // A stream too big for host but fine for disk lands on disk directly.
  const auto disk = store.store(2, bytes_of(100, 0x02), 2, 0.0, nullptr);
  ASSERT_TRUE(disk.stored);
  EXPECT_EQ(disk.tier, 1u);
  EXPECT_DOUBLE_EQ(disk.transfer_s, 100.0 / 10.0);  // disk bandwidth
}

// ---- Fault tolerance ------------------------------------------------------

TEST(TieredStoreTest, HostOutageFailsOverToDiskOnFetch) {
  TierHealthPolicy health;
  health.retry_budget = 2;
  health.retry_backoff_s = 0.5;
  health.blacklist_after = 100;  // keep blacklisting out of this test
  TieredSwapStore store = make_store(50, 0, health);
  // Entry too big for host: parked on disk.
  store.store(1, bytes_of(100, 0x01), 1, 0.0, nullptr);
  ASSERT_EQ(store.tier_of(1), std::size_t{1});

  FaultPlan plan;
  plan.tiers[0].outage_start_s = 0.0;
  plan.tiers[0].outage_end_s = 100.0;
  FaultInjector injector(plan);
  const auto out = store.fetch(1, 2, 5.0, &injector);
  ASSERT_EQ(out.status, FetchStatus::kHit);
  EXPECT_EQ(out.tier, 1u);
  EXPECT_EQ(out.retries, 2u);               // host retried to budget...
  EXPECT_EQ(out.failovers, 1u);             // ...then failed over
  EXPECT_DOUBLE_EQ(out.stall_s, 2 * 0.5);   // backoff per failed attempt
  EXPECT_DOUBLE_EQ(out.transfer_s, 100.0 / 10.0);
  EXPECT_EQ(store.counters(0).failures, 2u);
  EXPECT_EQ(store.counters(1).hits, 1u);
}

TEST(TieredStoreTest, HolderUnavailableRetainsEntry) {
  TierHealthPolicy health;
  health.blacklist_after = 100;
  TieredSwapStore store = make_store(0, 0, health);
  store.store(1, bytes_of(100, 0x01), 1, 0.0, nullptr);
  ASSERT_EQ(store.tier_of(1), std::size_t{0});

  FaultPlan plan;
  plan.tiers[0].outage_start_s = 0.0;
  plan.tiers[0].outage_end_s = 100.0;
  FaultInjector injector(plan);
  const auto out = store.fetch(1, 2, 5.0, &injector);
  EXPECT_EQ(out.status, FetchStatus::kUnavailable);
  EXPECT_GT(out.retries, 0u);
  // The entry survives for a retry once the tier comes back.
  EXPECT_TRUE(store.contains(1));
  const auto later = store.fetch(1, 3, 200.0, &injector);  // outage over
  EXPECT_EQ(later.status, FetchStatus::kHit);
}

TEST(TieredStoreTest, ConsecutiveFailuresBlacklistThenCooloffReadmits) {
  TierHealthPolicy health;
  health.retry_budget = 1;
  health.blacklist_after = 1;  // first failure blacklists
  health.cooloff_s = 5.0;
  TieredSwapStore store = make_store(0, 0, health);
  store.store(1, bytes_of(100, 0x01), 1, 0.0, nullptr);

  FaultPlan plan;
  plan.tiers[0].outage_start_s = 0.0;
  plan.tiers[0].outage_end_s = 2.0;
  FaultInjector injector(plan);

  // Inside the outage: one failed probe blacklists the tier.
  EXPECT_EQ(store.fetch(1, 2, 1.0, &injector).status,
            FetchStatus::kUnavailable);
  EXPECT_TRUE(store.blacklisted(0, 1.0));
  EXPECT_EQ(store.counters(0).blacklists, 1u);

  // Outage is over at t=3 but the cooloff runs to t=6: the tier is
  // skipped without a probe (no stall, a failover).
  const auto skipped = store.fetch(1, 3, 3.0, &injector);
  EXPECT_EQ(skipped.status, FetchStatus::kUnavailable);
  EXPECT_EQ(skipped.retries, 0u);
  EXPECT_EQ(skipped.failovers, 1u);
  EXPECT_DOUBLE_EQ(skipped.stall_s, 0.0);

  // Past the cooloff the tier is probed again and re-admitted.
  const auto readmitted = store.fetch(1, 4, 7.0, &injector);
  EXPECT_EQ(readmitted.status, FetchStatus::kHit);
  EXPECT_FALSE(store.blacklisted(0, 7.0));
  EXPECT_EQ(store.counters(0).blacklists, 1u);
}

TEST(TieredStoreTest, PostCooloffProbeFailureReblacklistsImmediately) {
  TierHealthPolicy health;
  health.retry_budget = 1;
  health.blacklist_after = 3;
  health.cooloff_s = 5.0;
  TieredSwapStore store = make_store(0, 0, health);
  store.store(1, bytes_of(100, 0x01), 1, 0.0, nullptr);

  FaultPlan plan;
  plan.tiers[0].outage_start_s = 0.0;
  plan.tiers[0].outage_end_s = 1000.0;  // tier stays dead throughout
  FaultInjector injector(plan);

  // Three failed probes blacklist the tier (cooloff until t ~ 8).
  store.fetch(1, 2, 1.0, &injector);
  store.fetch(1, 3, 2.0, &injector);
  store.fetch(1, 4, 3.0, &injector);
  EXPECT_EQ(store.counters(0).blacklists, 1u);
  ASSERT_TRUE(store.blacklisted(0, 4.0));

  // Probing re-admission: after the cooloff a single failed probe is
  // enough to re-blacklist — the tier does not get three fresh strikes.
  const auto probe = store.fetch(1, 5, 9.0, &injector);
  EXPECT_EQ(probe.status, FetchStatus::kUnavailable);
  EXPECT_EQ(probe.retries, 1u);
  EXPECT_EQ(store.counters(0).blacklists, 2u);
  EXPECT_TRUE(store.blacklisted(0, 9.5));
}

TEST(TieredStoreTest, StoreFailsOverToDiskWhenHostUnavailable) {
  TierHealthPolicy health;
  health.blacklist_after = 100;
  TieredSwapStore store = make_store(0, 0, health);
  FaultPlan plan;
  plan.tiers[0].outage_start_s = 0.0;
  plan.tiers[0].outage_end_s = 100.0;
  FaultInjector injector(plan);
  const auto out = store.store(1, bytes_of(100, 0x01), 1, 5.0, &injector);
  ASSERT_TRUE(out.stored);
  EXPECT_EQ(out.tier, 1u);  // host down: landed on disk
  EXPECT_EQ(store.counters(0).failures, 1u);
  // With every tier down the store refuses and the caller recomputes.
  plan.tiers[1].outage_start_s = 0.0;
  plan.tiers[1].outage_end_s = 100.0;
  FaultInjector all_dead(plan);
  const auto refused = store.store(2, bytes_of(50, 0x02), 2, 5.0, &all_dead);
  EXPECT_FALSE(refused.stored);
  EXPECT_FALSE(store.contains(2));
}

TEST(TieredStoreTest, OutageWindowConsumesNoRngDraw) {
  // The deterministic outage window must not perturb the Bernoulli draw
  // sequence: an injector that answered a windowed probe and one that
  // never probed must produce identical subsequent draws.
  FaultPlan windowed;
  windowed.seed = 99;
  windowed.tiers[0].outage_start_s = 0.0;
  windowed.tiers[0].outage_end_s = 10.0;
  FaultInjector a(windowed);
  EXPECT_TRUE(a.tier_unavailable(0, 5.0));   // window hit: no draw
  EXPECT_FALSE(a.tier_unavailable(0, 50.0));  // prob 0: no draw either

  FaultPlan plain;
  plain.seed = 99;
  FaultInjector b(plain);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.corruption_offset(1 << 20), b.corruption_offset(1 << 20));
  }
}

// ---- Real byte-level tiered swap path ------------------------------------

constexpr std::size_t kDim = 16;
constexpr std::size_t kPageTokens = 8;

std::vector<float> random_vec(Rng& rng) {
  std::vector<float> v(kDim);
  rng.fill_normal(v, 0.0, 1.0);
  return v;
}

PagedKvCache::SeqId fill_sequence(PagedKvCache& cache, std::size_t tokens,
                                  std::uint64_t seed) {
  const auto seq = cache.create_sequence();
  Rng rng(seed);
  for (std::size_t t = 0; t < tokens; ++t) {
    const auto k = random_vec(rng);
    const auto v = random_vec(rng);
    TURBO_CHECK(cache.append_token(seq, k, v));
  }
  return seq;
}

TEST(TieredSwapPathTest, RoundTripRestoresSequenceBitExact) {
  PagedKvCache cache(kDim, BitWidth::kInt4, kPageTokens, 32);
  const auto seq = fill_sequence(cache, kPageTokens * 2 + 3, 9);
  std::vector<std::vector<std::uint8_t>> k_payloads;
  for (const KvBlock* b : cache.blocks(seq)) {
    k_payloads.push_back(b->k.packed);
  }
  const std::size_t tokens = cache.token_count(seq);

  TieredSwapStore store = make_store(0, 0);
  const std::size_t bytes =
      serving::swap_out(cache, seq, 77, store, 1, 0.0, nullptr, nullptr);
  EXPECT_GT(bytes, 0u);
  EXPECT_TRUE(store.contains(77));
  EXPECT_EQ(store.stored_bytes(), bytes);
  EXPECT_FALSE(cache.has_sequence(seq));
  EXPECT_EQ(cache.used_pages(), 0u);

  const auto in = serving::swap_in(cache, 77, store, 2, 0.0, nullptr);
  ASSERT_EQ(in.status, serving::SwapInStatus::kOk);
  EXPECT_FALSE(store.contains(77));  // adopted: entry erased
  EXPECT_EQ(store.stored_bytes(), 0u);
  EXPECT_EQ(cache.token_count(in.seq), tokens);
  const auto blocks_after = cache.blocks(in.seq);
  ASSERT_EQ(blocks_after.size(), k_payloads.size());
  for (std::size_t i = 0; i < blocks_after.size(); ++i) {
    EXPECT_EQ(blocks_after[i]->k.packed, k_payloads[i]);
  }
}

TEST(TieredSwapPathTest, OutOfPagesKeepsPristineEntryForRetry) {
  PagedKvCache cache(kDim, BitWidth::kInt4, kPageTokens, 4);
  const auto seq = fill_sequence(cache, kPageTokens * 3 + 1, 17);
  TieredSwapStore store = make_store(0, 0);
  serving::swap_out(cache, seq, 2, store, 1, 0.0, nullptr, nullptr);
  ASSERT_NE(store.stream_of(2), nullptr);
  const std::vector<std::uint8_t> original = *store.stream_of(2);

  // Occupy the pool, then attempt the swap-in with a live injector whose
  // probabilities are zero: the failed adoption must leave the parked
  // bytes untouched (deserialization runs on a scratch copy).
  const auto hog = fill_sequence(cache, kPageTokens * 2 + 1, 18);
  FaultPlan plan;
  plan.seed = 4;
  FaultInjector injector(plan);
  const auto blocked = serving::swap_in(cache, 2, store, 2, 0.0, &injector);
  EXPECT_EQ(blocked.status, serving::SwapInStatus::kOutOfPages);
  ASSERT_TRUE(store.contains(2));
  EXPECT_EQ(*store.stream_of(2), original);  // pristine, bit for bit

  cache.release_sequence(hog);
  const auto retry = serving::swap_in(cache, 2, store, 3, 0.0, &injector);
  ASSERT_EQ(retry.status, serving::SwapInStatus::kOk);
  EXPECT_EQ(cache.token_count(retry.seq), kPageTokens * 3 + 1);
}

TEST(TieredSwapPathTest, TierCorruptionDetectedByChecksum) {
  PagedKvCache cache(kDim, BitWidth::kInt4, kPageTokens, 32);
  const auto seq = fill_sequence(cache, kPageTokens * 2, 33);
  TieredSwapStore store = make_store(0, 0);
  serving::swap_out(cache, seq, 8, store, 1, 0.0, nullptr, nullptr);

  FaultPlan plan;
  plan.seed = 3;
  plan.tiers[0].corruption_prob = 1.0;  // the media always corrupts
  FaultInjector injector(plan);
  const std::size_t used_before = cache.used_pages();
  const auto in = serving::swap_in(cache, 8, store, 2, 0.0, &injector);
  EXPECT_EQ(in.status, serving::SwapInStatus::kChecksumMismatch);
  EXPECT_EQ(injector.injected_tier_corruptions(), 1u);
  EXPECT_FALSE(store.contains(8));  // proven corrupt: dropped
  EXPECT_EQ(cache.used_pages(), used_before);
}

// Regression for the single-tier store: a kOutOfPages swap-in must park a
// *pristine* copy back, even when a fault injector is live on the
// deserialize path. The seed is chosen (by simulating the injector's
// first draw) so the corruption probe does not fire on the first
// attempt — the stream survives untouched and must round-trip bit-exact.
TEST(HostSwapRegressionTest, OutOfPagesReparksPristineStream) {
  const double corrupt_p = 0.4;
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 64; ++s) {
    Rng probe(s);
    if (probe.uniform() >= corrupt_p) {
      seed = s;
      break;
    }
  }
  ASSERT_GT(seed, 0u);

  PagedKvCache cache(kDim, BitWidth::kInt4, kPageTokens, 4);
  const auto seq = fill_sequence(cache, kPageTokens * 3 + 1, 17);
  serving::HostSwapStore store;
  serving::swap_out(cache, seq, 2, store);
  auto parked = store.fetch(2);
  ASSERT_TRUE(parked.has_value());
  const std::vector<std::uint8_t> original = *parked;
  store.store(2, std::move(*parked));

  const auto hog = fill_sequence(cache, kPageTokens * 2 + 1, 18);
  FaultPlan plan;
  plan.seed = seed;
  plan.stream_corruption_prob = corrupt_p;
  FaultInjector injector(plan);
  const auto blocked = serving::swap_in(cache, 2, store, &injector);
  ASSERT_EQ(blocked.status, serving::SwapInStatus::kOutOfPages);
  auto reparked = store.fetch(2);
  ASSERT_TRUE(reparked.has_value());
  EXPECT_EQ(*reparked, original);  // the re-parked copy is pristine
  store.store(2, std::move(*reparked));

  cache.release_sequence(hog);
  const auto retry = serving::swap_in(cache, 2, store);
  ASSERT_EQ(retry.status, serving::SwapInStatus::kOk);
  EXPECT_EQ(cache.token_count(retry.seq), kPageTokens * 3 + 1);
}

// ---- Engine integration ---------------------------------------------------

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t engine_digest(const serving::EngineResult& r) {
  std::uint64_t h = 0;
  auto mix_d = [&](double d) { h = mix(h, std::bit_cast<std::uint64_t>(d)); };
  for (const serving::Request& q : r.requests) {
    mix_d(q.finish_s);
    h = mix(h, q.generated);
    h = mix(h, q.preemptions);
    h = mix(h, q.tier_failovers);
  }
  mix_d(r.makespan_s);
  mix_d(r.tier_retry_stall_s);
  h = mix(h, r.tier_demotions);
  h = mix(h, r.tier_promotions);
  h = mix(h, r.tier_failovers);
  h = mix(h, r.tier_blacklists);
  h = mix(h, r.swap_unavailable_recomputes);
  h = mix(h, r.swap_overflow_recomputes);
  return h;
}

std::vector<serving::Request> pressure_trace() {
  serving::TraceConfig t;
  t.arrival_rate = 24.0;
  t.duration_s = 10.0;
  t.prompt_log_mean = 5.5;
  t.prompt_log_std = 0.5;
  t.gen_log_mean = 5.5;
  t.gen_log_std = 0.5;
  t.seed = 11;
  return serving::generate_trace(t);
}

serving::EngineConfig tiered_engine(std::uint64_t fault_seed) {
  serving::EngineConfig c;
  c.device = sim::a100_pcie_40gb();
  c.geometry = sim::phi3_mini_geometry();
  c.method = sim::AttnMethod::kTurbo;
  c.attention.kv_bits = 3.0;
  c.memory_headroom = 0.25;  // small page pool: heavy preemption
  c.faults.seed = fault_seed;
  c.faults.page_alloc_failure_prob = 0.05;  // keeps the swap path hot
  c.faults.swap_spike_prob = 0.05;
  return c;
}

void expect_all_terminal(const serving::EngineResult& r) {
  EXPECT_FALSE(r.hit_time_limit);
  for (const serving::Request& q : r.requests) {
    EXPECT_NE(q.outcome, serving::Outcome::kPending);
    EXPECT_TRUE(q.finished());
  }
}

TEST(TieredEngineTest, HostOnlyAndUnboundedTwoTierAreEquivalent) {
  // With unbounded capacities and inert tier faults, the disk tier is
  // pure potential: every stream lands in and returns from the host
  // tier, so a 1-tier and a 2-tier engine must be bit-identical.
  const auto trace = pressure_trace();
  serving::EngineConfig one = tiered_engine(2);
  one.swap.tiers = 1;
  serving::EngineConfig two = tiered_engine(2);
  two.swap.tiers = 2;
  const auto a = run_engine(one, trace);
  const auto b = run_engine(two, trace);
  EXPECT_EQ(engine_digest(a), engine_digest(b));
  EXPECT_GT(a.preempted_swap, 0u);
  EXPECT_EQ(a.tier_demotions, 0u);
  EXPECT_EQ(a.swap_tiers_used, 1u);
  EXPECT_EQ(b.swap_tiers_used, 1u);  // disk never touched
}

TEST(TieredEngineTest, HostPressureDemotesToDiskAndSurfacesCounters) {
  const auto trace = pressure_trace();
  serving::EngineConfig cfg = tiered_engine(2);
  cfg.swap.host_capacity_bytes = 64ull << 20;  // 64 MB: a few streams
  const auto r = run_engine(cfg, trace);
  expect_all_terminal(r);
  EXPECT_GT(r.tier_demotions, 0u);
  EXPECT_EQ(r.swap_tiers_used, 2u);
  EXPECT_GT(r.tier_stats[1].demotions_in, 0u);
  EXPECT_EQ(r.tier_stats[1].demotions_in, r.tier_demotions);

  // Metrics must mirror every tier counter verbatim.
  const serving::ServingMetrics m = serving::summarize(r);
  EXPECT_EQ(m.tier_demotions, r.tier_demotions);
  EXPECT_EQ(m.tier_promotions, r.tier_promotions);
  EXPECT_EQ(m.tier_failovers, r.tier_failovers);
  EXPECT_EQ(m.tier_blacklists, r.tier_blacklists);
  EXPECT_EQ(m.tier_fetch_retries, r.tier_fetch_retries);
  EXPECT_EQ(m.swap_unavailable_recomputes, r.swap_unavailable_recomputes);
  EXPECT_EQ(m.swap_overflow_recomputes, r.swap_overflow_recomputes);
  EXPECT_EQ(m.swap_tiers_used, r.swap_tiers_used);
  EXPECT_EQ(m.tier_retry_stall_s, r.tier_retry_stall_s);
  EXPECT_EQ(m.tier_stats[1].demotions_in, r.tier_stats[1].demotions_in);
}

TEST(TieredEngineTest, DiskOutageMidRunStillResolvesEveryRequest) {
  // The acceptance scenario: the host tier is small enough that streams
  // routinely live on disk, and the disk dies at t=2s and never comes
  // back. The engine must fail over (host hits), then degrade to
  // recompute (unavailable / overflow), and still terminally resolve
  // every request — no hang, no leaked pages, no parked streams (the
  // engine TURBO_CHECKs store emptiness at exit).
  const auto trace = pressure_trace();
  serving::EngineConfig cfg = tiered_engine(2);
  cfg.swap.host_capacity_bytes = 64ull << 20;
  cfg.faults.tiers[1].outage_start_s = 2.0;
  cfg.faults.tiers[1].outage_end_s = 1e9;
  const auto r = run_engine(cfg, trace);
  expect_all_terminal(r);
  // The dead tier was actually exercised and the fallbacks fired.
  EXPECT_GT(r.swap_unavailable_recomputes + r.swap_overflow_recomputes, 0u);
  EXPECT_GT(r.tier_blacklists, 0u);
  EXPECT_GT(r.tier_stats[1].failures, 0u);
  // Unavailable-recomputes are not checksum recoveries.
  EXPECT_EQ(r.checksum_failures, r.recoveries);
  // Determinism: the outage window draws no RNG, so the run replays.
  const auto again = run_engine(cfg, trace);
  EXPECT_EQ(engine_digest(r), engine_digest(again));
}

TEST(TieredEngineTest, PromotionFiresWhenReadmissionIsPageBlocked) {
  // Tiny host + long outage-free run: swapped victims whose streams got
  // demoted to disk and whose re-admission is page-blocked get promoted
  // back toward host while they wait.
  const auto trace = pressure_trace();
  serving::EngineConfig cfg = tiered_engine(3);
  cfg.swap.host_capacity_bytes = 32ull << 20;
  const auto r = run_engine(cfg, trace);
  expect_all_terminal(r);
  EXPECT_GT(r.tier_demotions, 0u);
  // Promotion is opportunistic; assert the accounting is consistent
  // rather than a specific count, then check it replays bit-exact.
  EXPECT_EQ(r.tier_stats[1].promotions_out, r.tier_promotions);
  const auto again = run_engine(cfg, trace);
  EXPECT_EQ(engine_digest(r), engine_digest(again));
}

}  // namespace
}  // namespace turbo
