#include "softmax/softmax.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace turbo {
namespace {

TEST(SoftmaxTest, SumsToOne) {
  const MatrixF scores = test::random_matrix(8, 32, 1, 3.0);
  const MatrixF p = softmax_rows(scores);
  for (std::size_t r = 0; r < p.rows(); ++r) {
    float sum = 0.0f;
    for (float v : p.row(r)) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, UniformInputGivesUniformOutput) {
  MatrixF scores(1, 4, 2.0f);
  const MatrixF p = softmax_rows(scores);
  for (float v : p.row(0)) EXPECT_NEAR(v, 0.25f, 1e-6f);
}

TEST(SoftmaxTest, ShiftInvariance) {
  MatrixF a(1, 3);
  a(0, 0) = 1.0f;
  a(0, 1) = 2.0f;
  a(0, 2) = 3.0f;
  MatrixF b = a;
  for (float& v : b.flat()) v += 100.0f;
  const MatrixF pa = softmax_rows(a);
  const MatrixF pb = softmax_rows(b);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(pa(0, c), pb(0, c), 1e-6f);
  }
}

TEST(SoftmaxTest, StableForLargeMagnitudes) {
  MatrixF scores(1, 3);
  scores(0, 0) = 10000.0f;
  scores(0, 1) = 9999.0f;
  scores(0, 2) = -10000.0f;
  const MatrixF p = softmax_rows(scores);
  EXPECT_FALSE(std::isnan(p(0, 0)));
  EXPECT_GT(p(0, 0), p(0, 1));
  EXPECT_NEAR(p(0, 2), 0.0f, 1e-6f);
}

TEST(SoftmaxTest, KnownTwoElementValues) {
  MatrixF scores(1, 2);
  scores(0, 0) = 0.0f;
  scores(0, 1) = std::log(3.0f);
  const MatrixF p = softmax_rows(scores);
  EXPECT_NEAR(p(0, 0), 0.25f, 1e-6f);
  EXPECT_NEAR(p(0, 1), 0.75f, 1e-6f);
}

TEST(SoftmaxTest, LseMatchesDirectComputation) {
  const MatrixF scores = test::random_matrix(4, 16, 5, 2.0);
  std::vector<float> lse(4);
  softmax_rows_with_lse(scores, lse);
  for (std::size_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (float v : scores.row(r)) sum += std::exp(static_cast<double>(v));
    EXPECT_NEAR(lse[r], std::log(sum), 1e-4);
  }
}

TEST(SoftmaxTest, MonotonicInScores) {
  MatrixF scores(1, 3);
  scores(0, 0) = 0.1f;
  scores(0, 1) = 0.5f;
  scores(0, 2) = 0.9f;
  const MatrixF p = softmax_rows(scores);
  EXPECT_LT(p(0, 0), p(0, 1));
  EXPECT_LT(p(0, 1), p(0, 2));
}

}  // namespace
}  // namespace turbo
