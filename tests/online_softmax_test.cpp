#include "softmax/online_softmax.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "softmax/softmax.h"

namespace turbo {
namespace {

float std_exp(float x) { return std::exp(x); }

TEST(OnlineSoftmaxTest, SingleBlockMatchesExact) {
  Rng rng(1);
  std::vector<float> x(32);
  for (float& v : x) v = static_cast<float>(rng.normal(0.0, 3.0));
  std::vector<float> exact(32);
  softmax_row(x, exact);
  std::vector<float> streamed(32);
  streaming_softmax<float (*)(float)>(x, 32, std_exp, streamed);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(streamed[i], exact[i], 1e-6f);
  }
}

class OnlineSoftmaxBlockSweep
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OnlineSoftmaxBlockSweep, BlockSizeInvariant) {
  const std::size_t block = GetParam();
  Rng rng(17);
  std::vector<float> x(257);  // deliberately not a multiple of any block
  for (float& v : x) v = static_cast<float>(rng.normal(0.0, 5.0));
  std::vector<float> exact(x.size());
  softmax_row(x, exact);
  std::vector<float> streamed(x.size());
  streaming_softmax<float (*)(float)>(x, block, std_exp, streamed);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(streamed[i], exact[i], 1e-5f) << "block " << block;
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, OnlineSoftmaxBlockSweep,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{16}, std::size_t{64},
                                           std::size_t{300}));

TEST(OnlineSoftmaxTest, RunningMaxAndDenominator) {
  OnlineSoftmaxRow<float (*)(float)> state(std_exp);
  state.reset();
  std::vector<float> block1{1.0f, 3.0f};
  std::vector<float> block2{5.0f, 2.0f};
  state.absorb(std::span<float>(block1));
  EXPECT_FLOAT_EQ(state.running_max(), 3.0f);
  state.absorb(std::span<float>(block2));
  EXPECT_FLOAT_EQ(state.running_max(), 5.0f);
  // l = sum over all of exp(x - 5).
  const float expected = std::exp(-4.0f) + std::exp(-2.0f) +
                         std::exp(0.0f) + std::exp(-3.0f);
  EXPECT_NEAR(state.denominator(), expected, 1e-6f);
}

TEST(OnlineSoftmaxTest, LogSumExpMatches) {
  OnlineSoftmaxRow<float (*)(float)> state(std_exp);
  state.reset();
  std::vector<float> block{0.0f, 1.0f, 2.0f};
  state.absorb(std::span<float>(block));
  double sum = 0.0;
  for (int i = 0; i < 3; ++i) sum += std::exp(static_cast<double>(i));
  EXPECT_NEAR(state.log_sum_exp(), std::log(sum), 1e-6);
}

TEST(OnlineSoftmaxTest, AbsorbReturnsCorrectAlpha) {
  OnlineSoftmaxRow<float (*)(float)> state(std_exp);
  state.reset();
  std::vector<float> block1{2.0f};
  const float alpha1 = state.absorb(std::span<float>(block1));
  EXPECT_EQ(alpha1, 0.0f);  // first block: nothing to rescale
  std::vector<float> block2{4.0f};
  const float alpha2 = state.absorb(std::span<float>(block2));
  EXPECT_NEAR(alpha2, std::exp(-2.0f), 1e-6f);
  std::vector<float> block3{0.0f};  // lower max: no rescaling needed
  const float alpha3 = state.absorb(std::span<float>(block3));
  EXPECT_FLOAT_EQ(alpha3, 1.0f);
}

TEST(OnlineSoftmaxTest, DecreasingBlocksKeepMax) {
  OnlineSoftmaxRow<float (*)(float)> state(std_exp);
  state.reset();
  for (float start : {10.0f, 5.0f, 0.0f}) {
    std::vector<float> block{start, start - 1.0f};
    state.absorb(std::span<float>(block));
  }
  EXPECT_FLOAT_EQ(state.running_max(), 10.0f);
}

}  // namespace
}  // namespace turbo
