// Fleet serving: health-checked routing over replicated engines, outage
// drain and KV-migration failover (src/fleet/router.h).
//
// The contracts under test: a 1-replica fleet is bit-identical to the
// standalone engine; seeded fleet runs (outage windows included) are
// bit-identical run to run; killing a replica mid-run still leaves every
// request in exactly one terminal state with zero leaked pages or parked
// streams; corrupt migrations are CRC-detected and recovered by
// recompute; the failover budget bounds interconnect traffic; routing
// policies measurably shape tail latency; and the per-replica metric
// rollup reconciles with the fleet union.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/fault.h"
#include "fleet/metrics.h"
#include "fleet/router.h"
#include "serving/metrics.h"
#include "serving/swap.h"
#include "serving/trace.h"
#include "sim/attention_model.h"

namespace turbo::fleet {
namespace {

using serving::EngineConfig;
using serving::EngineResult;
using serving::Outcome;
using serving::Request;
using serving::ServiceClass;
using serving::TraceConfig;

// Mixed-class trace spread over a small fleet: 30% interactive with a
// tight TTFT SLO, 50% standard with a loose one, 20% batch.
TraceConfig fleet_trace() {
  TraceConfig t;
  t.arrival_rate = 24.0;
  t.duration_s = 15.0;
  t.prompt_log_mean = 5.5;
  t.prompt_log_std = 0.5;
  t.gen_log_mean = 5.0;
  t.gen_log_std = 0.5;
  t.seed = 29;
  t.class_mix = {0.3, 0.5, 0.2};
  t.ttft_deadline_s = {2.5, 20.0, 0.0};
  return t;
}

// Per-replica engine with a squeezed KV pool, so preemption and swap
// traffic exist for the drain path to migrate.
EngineConfig fleet_engine() {
  EngineConfig c;
  c.device = sim::a100_pcie_40gb();
  c.geometry = sim::phi3_mini_geometry();
  c.method = sim::AttnMethod::kTurbo;
  c.attention.kv_bits = 4.0;
  c.memory_headroom = 0.35;
  return c;
}

FleetConfig base_fleet(std::size_t replicas) {
  FleetConfig f;
  f.engine = fleet_engine();
  f.replicas = replicas;
  return f;
}

// Kill replica 1 for a window that starts while the trace is in full
// flight, so the drain lifts running, paused and waiting requests alike.
FleetConfig outage_fleet(std::size_t replicas) {
  FleetConfig f = base_fleet(replicas);
  f.engine.faults.replicas[1].add_outage(2.0, 8.0);
  return f;
}

std::size_t terminal_count(const serving::ServingMetrics& m) {
  return m.completed + m.rejected + m.timed_out + m.shed;
}

// Order-independent digest over everything a request carries out of the
// run, plus the fleet counters — two runs compare in full.
std::uint64_t digest(const FleetResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  auto mixd = [&](double v) { mix(std::bit_cast<std::uint64_t>(v)); };
  std::vector<Request> reqs = r.requests;
  std::sort(reqs.begin(), reqs.end(),
            [](const Request& a, const Request& b) { return a.id < b.id; });
  for (const Request& req : reqs) {
    mix(req.id);
    mixd(req.prefill_start_s);
    mixd(req.first_token_s);
    mixd(req.finish_s);
    mixd(req.kv_bits_used);
    mix(req.generated);
    mix(req.preemptions);
    mix(req.recomputed_tokens);
    mix(req.replica_failovers);
    mix(static_cast<std::uint64_t>(req.outcome));
  }
  mixd(r.makespan_s);
  mixd(r.migrated_bytes);
  mixd(r.migration_stall_s);
  mixd(r.handoff_bytes);
  mixd(r.handoff_stall_s);
  mix(r.routed);
  mix(r.replica_outages);
  mix(r.failover_drains);
  mix(r.migrations);
  mix(r.migration_corruptions);
  mix(r.migration_recomputes);
  mix(r.migration_budget_exhausted);
  mix(r.handoffs);
  mix(r.handoff_corruptions);
  mix(r.handoff_retries);
  mix(r.handoff_budget_exhausted);
  mix(r.handoff_recomputes);
  mix(r.role_fallback_prefills);
  mix(r.backpressure_deferrals);
  mix(r.affinity_hits);
  mix(r.affinity_misses);
  mix(static_cast<std::uint64_t>(r.hit_time_limit));
  return h;
}

std::uint64_t engine_digest(const EngineResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  auto mixd = [&](double v) { mix(std::bit_cast<std::uint64_t>(v)); };
  for (const Request& req : r.requests) {
    mix(req.id);
    mixd(req.prefill_start_s);
    mixd(req.first_token_s);
    mixd(req.finish_s);
    mixd(req.kv_bits_used);
    mix(req.generated);
    mix(req.preemptions);
    mix(req.recomputed_tokens);
    mix(static_cast<std::uint64_t>(req.outcome));
  }
  mixd(r.makespan_s);
  mixd(r.busy_s);
  mixd(r.swap_stall_s);
  mix(r.preemptions);
  mix(r.timed_out);
  mix(r.shed);
  mix(static_cast<std::uint64_t>(r.hit_time_limit));
  return h;
}

// --- Bit-identity -----------------------------------------------------------

// A 1-replica fleet is the standalone engine: same clock, same idle
// jumps, same fault draws, bit-identical result.
TEST(FleetIdentityTest, SingleReplicaFleetMatchesRunEngine) {
  const std::vector<Request> trace = serving::generate_trace(fleet_trace());
  const EngineConfig cfg = fleet_engine();
  const EngineResult solo = serving::run_engine(cfg, trace);
  FleetResult fleet = run_fleet(base_fleet(1), trace);
  ASSERT_EQ(fleet.replica_results.size(), 1u);
  EXPECT_EQ(engine_digest(solo), engine_digest(fleet.replica_results[0]));
  EXPECT_EQ(solo.makespan_s, fleet.makespan_s);
  EXPECT_EQ(fleet.routed, trace.size());
  EXPECT_EQ(fleet.replica_outages, 0u);
  EXPECT_EQ(fleet.migrations, 0u);
}

// Seeded fleet runs — outage window, drain, migration and all — are
// bit-identical across repeats (and, via CI, across sanitizer lanes).
TEST(FleetIdentityTest, SeededOutageRunsAreBitIdentical) {
  const std::vector<Request> trace = serving::generate_trace(fleet_trace());
  const FleetConfig cfg = outage_fleet(4);
  const std::uint64_t a = digest(run_fleet(cfg, trace));
  const std::uint64_t b = digest(run_fleet(cfg, trace));
  EXPECT_EQ(a, b);
}

// --- Outage drain and failover ---------------------------------------------

// One of four replicas dies mid-run: the fleet drains it, fails its
// requests over, and every trace request still reaches exactly one
// terminal state with nothing leaked (the router asserts zero pages and
// zero parked streams at drain internally).
TEST(FleetOutageTest, ReplicaOutageMidRunLeavesEveryRequestTerminal) {
  const std::vector<Request> trace = serving::generate_trace(fleet_trace());
  const FleetResult r = run_fleet(outage_fleet(4), trace);
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_EQ(r.replica_outages, 1u);
  EXPECT_GT(r.failover_drains, 0u);
  ASSERT_EQ(r.requests.size(), trace.size());
  for (const Request& req : r.requests) {
    EXPECT_NE(req.outcome, Outcome::kPending);
  }
  const FleetMetrics m = summarize_fleet(r);
  EXPECT_EQ(terminal_count(m.fleet), trace.size());
  EXPECT_EQ(m.fleet.unfinished, 0u);
  // The drained replica accepted work again after its window: the run
  // routed every arrival somewhere.
  EXPECT_EQ(r.routed, trace.size());
}

// Every migrated stream is corrupted in transit: the CRC layer detects
// each one and the destination recomputes — the faults cost latency,
// never a lost request.
TEST(FleetOutageTest, CorruptMigrationsAreDetectedAndRecomputed) {
  const std::vector<Request> trace = serving::generate_trace(fleet_trace());
  FleetConfig cfg = outage_fleet(4);
  cfg.engine.faults.migration_corruption_prob = 1.0;
  const FleetResult r = run_fleet(cfg, trace);
  EXPECT_GT(r.migrations, 0u);
  EXPECT_EQ(r.migration_corruptions, r.migrations);
  EXPECT_GE(r.migration_recomputes, r.migration_corruptions);
  EXPECT_FALSE(r.hit_time_limit);
  for (const Request& req : r.requests) {
    EXPECT_NE(req.outcome, Outcome::kPending);
  }
}

// A zero failover budget forbids migration outright: drained KV is
// dropped and recomputed, and not a byte crosses the interconnect.
TEST(FleetOutageTest, FailoverBudgetZeroForcesRecompute) {
  const std::vector<Request> trace = serving::generate_trace(fleet_trace());
  FleetConfig cfg = outage_fleet(4);
  cfg.failover_budget = 0;
  const FleetResult r = run_fleet(cfg, trace);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_EQ(r.migrated_bytes, 0.0);
  EXPECT_GT(r.failover_drains, 0u);
  EXPECT_GT(r.migration_budget_exhausted + r.migration_recomputes, 0u);
  for (const Request& req : r.requests) {
    EXPECT_NE(req.outcome, Outcome::kPending);
  }
  // Same outage, budget allowed: streams do migrate — the knob is live.
  const FleetResult with_budget = run_fleet(outage_fleet(4), trace);
  EXPECT_GT(with_budget.migrations, 0u);
  EXPECT_GT(with_budget.migrated_bytes, 0.0);
}

// --- Routing policy A/B -----------------------------------------------------

// Alternating huge and tiny prompts defeat round-robin (one replica
// collects every huge prompt); least-outstanding-pages reads the actual
// memory pressure and balances, cutting the TTFT tail.
TEST(FleetPolicyTest, LeastPagesBeatsRoundRobinOnSkewedPrompts) {
  std::vector<Request> trace;
  for (std::size_t i = 0; i < 24; ++i) {
    Request r;
    r.id = i;
    r.arrival_s = 0.05 * static_cast<double>(i);
    r.prompt_tokens = (i % 2 == 0) ? 6000 : 64;
    r.max_new_tokens = 32;
    r.service_class = ServiceClass::kInteractive;
    trace.push_back(r);
  }
  FleetConfig rr = base_fleet(2);
  rr.engine.memory_headroom = 0.5;
  rr.route = RoutePolicy::kRoundRobin;
  FleetConfig lop = rr;
  lop.route = RoutePolicy::kLeastOutstandingPages;
  const FleetMetrics m_rr = summarize_fleet(run_fleet(rr, trace));
  const FleetMetrics m_lop = summarize_fleet(run_fleet(lop, trace));
  EXPECT_EQ(m_rr.fleet.completed, trace.size());
  EXPECT_EQ(m_lop.fleet.completed, trace.size());
  EXPECT_LE(m_lop.fleet.ttft_p99, m_rr.fleet.ttft_p99);
}

// --- Affinity routing -------------------------------------------------------

// A request with explicit prompt ids [first_id, first_id + prompt).
Request ids_request(std::uint64_t id, double arrival, std::int32_t first_id,
                    std::size_t prompt, std::size_t gen) {
  Request r;
  r.id = id;
  r.arrival_s = arrival;
  r.prompt_tokens = prompt;
  r.max_new_tokens = gen;
  r.service_class = ServiceClass::kInteractive;
  r.prompt_ids.resize(prompt);
  for (std::size_t i = 0; i < prompt; ++i) {
    r.prompt_ids[i] = first_id + static_cast<std::int32_t>(i);
  }
  return r;
}

// Two sessions, two replicas: turn 1 of each session seeds a different
// replica's radix index (affinity miss -> least-pages); each follow-up
// turn extends its own session's prompt and must land where that history
// is resident — pure least-pages would have been indifferent.
TEST(FleetAffinityTest, FollowUpTurnLandsOnPrefixHoldingReplica) {
  std::vector<Request> trace;
  trace.push_back(ids_request(0, 0.00, 0, 1024, 16));      // A, turn 1
  trace.push_back(ids_request(1, 0.05, 50000, 1024, 16));  // B, turn 1
  trace.push_back(ids_request(2, 5.00, 0, 1536, 16));      // A, turn 2
  trace.push_back(ids_request(3, 5.05, 50000, 1536, 16));  // B, turn 2
  FleetConfig cfg = base_fleet(2);
  cfg.route = RoutePolicy::kAffinity;
  const FleetResult r = run_fleet(cfg, trace);
  EXPECT_FALSE(r.hit_time_limit);
  ASSERT_EQ(r.replica_results.size(), 2u);
  auto finished_on = [&r](std::size_t replica, std::uint64_t id) {
    for (const Request& req : r.replica_results[replica].requests) {
      if (req.id == id) return true;
    }
    return false;
  };
  EXPECT_TRUE(finished_on(0, 0));
  EXPECT_TRUE(finished_on(1, 1));
  // The follow-up turns chased their history.
  EXPECT_TRUE(finished_on(0, 2));
  EXPECT_TRUE(finished_on(1, 3));
  EXPECT_EQ(r.affinity_hits, 2u);
  EXPECT_EQ(r.affinity_misses, 2u);
  // And the landing replicas actually served the resident prefix.
  const FleetMetrics m = summarize_fleet(r);
  EXPECT_GT(m.fleet.prefix_hit_tokens, 0u);
  EXPECT_EQ(m.affinity_hits, r.affinity_hits);
  EXPECT_EQ(m.affinity_misses, r.affinity_misses);
}

// The prefix holder is inside an outage window when the follow-up turn
// arrives: affinity must fall back to a healthy replica — the dead
// target costs the cache hit, never the request.
TEST(FleetAffinityTest, FallsBackWhenPrefixHolderInOutage) {
  std::vector<Request> trace;
  trace.push_back(ids_request(0, 0.00, 0, 1024, 16));
  trace.push_back(ids_request(1, 0.05, 50000, 1024, 16));
  trace.push_back(ids_request(2, 5.00, 0, 1536, 16));  // holder is down
  FleetConfig cfg = base_fleet(2);
  cfg.route = RoutePolicy::kAffinity;
  cfg.engine.faults.replicas[0].add_outage(3.0, 30.0);
  const FleetResult r = run_fleet(cfg, trace);
  EXPECT_FALSE(r.hit_time_limit);
  for (const Request& req : r.requests) {
    EXPECT_NE(req.outcome, Outcome::kPending);
  }
  bool on_healthy = false;
  for (const Request& req : r.replica_results[1].requests) {
    if (req.id == 2) on_healthy = true;
  }
  EXPECT_TRUE(on_healthy);
}

// Generated multi-turn session workload under affinity routing: the
// per-request prefix hits roll up through the replica metrics into the
// fleet union (lint rule 6's mirroring contract, exercised end to end).
TEST(FleetAffinityTest, PrefixHitTokensRollUpIntoFleetMetrics) {
  TraceConfig t;
  t.arrival_rate = 2.0;
  t.duration_s = 10.0;
  t.seed = 23;
  t.class_mix = {1.0, 0.0, 0.0};
  t.ttft_deadline_s = {2.5, 0.0, 0.0};
  t.session_turns = 3;
  t.shared_prefix_tokens = 512;
  t.shared_prefix_fraction = 0.9;
  t.session_gap_s = 1.0;
  const std::vector<Request> trace = serving::generate_trace(t);
  FleetConfig cfg = base_fleet(3);
  cfg.route = RoutePolicy::kAffinity;
  const FleetMetrics m = summarize_fleet(run_fleet(cfg, trace));
  EXPECT_GT(m.affinity_hits, 0u);
  EXPECT_GT(m.fleet.prefix_hit_tokens, 0u);
  std::size_t per_replica = 0;
  for (const serving::ServingMetrics& rm : m.replicas) {
    per_replica += rm.prefix_hit_tokens;
  }
  EXPECT_EQ(per_replica, m.fleet.prefix_hit_tokens);
}

// --- Rollup reconciliation --------------------------------------------------

// The fleet rollup is exactly the sum of its replicas: requests count
// once (where they terminated), and every mirrored counter reconciles.
TEST(FleetMetricsTest, ReplicaRollupReconcilesWithFleetUnion) {
  const std::vector<Request> trace = serving::generate_trace(fleet_trace());
  const FleetResult r = run_fleet(outage_fleet(4), trace);
  const FleetMetrics m = summarize_fleet(r);
  ASSERT_EQ(m.replicas.size(), 4u);
  std::size_t completed = 0, timed_out = 0, shed = 0, rejected = 0;
  std::size_t preemptions = 0, swap_ins = 0, terminals = 0;
  for (const serving::ServingMetrics& rm : m.replicas) {
    completed += rm.completed;
    timed_out += rm.timed_out;
    shed += rm.shed;
    rejected += rm.rejected;
    preemptions += rm.preemptions;
    swap_ins += rm.swap_ins;
    terminals += terminal_count(rm);
  }
  EXPECT_EQ(completed, m.fleet.completed);
  EXPECT_EQ(timed_out, m.fleet.timed_out);
  EXPECT_EQ(shed, m.fleet.shed);
  EXPECT_EQ(rejected, m.fleet.rejected);
  EXPECT_EQ(preemptions, m.fleet.preemptions);
  EXPECT_EQ(swap_ins, m.fleet.swap_ins);
  EXPECT_EQ(terminals, trace.size());
  // Router counters mirror into the metrics struct (lint rule 6 contract).
  EXPECT_EQ(m.replica_count, r.replica_count);
  EXPECT_EQ(m.routed, r.routed);
  EXPECT_EQ(m.replica_outages, r.replica_outages);
  EXPECT_EQ(m.failover_drains, r.failover_drains);
  EXPECT_EQ(m.migrations, r.migrations);
  EXPECT_EQ(m.hit_time_limit, r.hit_time_limit);
}

// --- Swap-stream key namespacing (regression) -------------------------------

// Two replicas parking the same request-local id must not alias in a
// shared store namespace. Before keys were namespaced by replica id, the
// second store_phantom overwrote the first stream (count() == 1) — the
// classic cross-replica collision this guards against.
TEST(FleetStreamKeyTest, ReplicaNamespacedKeysDoNotCollide) {
  EXPECT_NE(serving::swap_stream_key(0, 7), serving::swap_stream_key(1, 7));
  EXPECT_EQ(serving::swap_stream_key(0, 7), 7u);  // replica 0: identity

  std::vector<serving::SwapTier> tiers;
  tiers.push_back({"host", 1ull << 30, 16.0 * 1024 * 1024 * 1024});
  serving::TieredSwapStore store(std::move(tiers));
  FaultPlan plan;
  FaultInjector fault(plan);
  ASSERT_TRUE(store
                  .store_phantom(serving::swap_stream_key(0, 7), 4096, 1,
                                 0.0, &fault)
                  .stored);
  ASSERT_TRUE(store
                  .store_phantom(serving::swap_stream_key(1, 7), 4096, 1,
                                 0.0, &fault)
                  .stored);
  EXPECT_EQ(store.count(), 2u);
  EXPECT_EQ(store.fetch(serving::swap_stream_key(0, 7), 2, 0.0, &fault)
                .status,
            serving::TieredSwapStore::FetchStatus::kHit);
  EXPECT_EQ(store.fetch(serving::swap_stream_key(1, 7), 2, 0.0, &fault)
                .status,
            serving::TieredSwapStore::FetchStatus::kHit);
}

}  // namespace
}  // namespace turbo::fleet
