#include "kvcache/paged_cache.h"

#include <gtest/gtest.h>

#include "attention/reference.h"
#include "attention/turbo.h"
#include "common/check.h"
#include "common/stats.h"
#include "kvcache/page_allocator.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

TEST(PageAllocatorTest, AllocateAndRelease) {
  PageAllocator alloc(4);
  EXPECT_EQ(alloc.free_pages(), 4u);
  const PageId a = alloc.allocate();
  const PageId b = alloc.allocate();
  EXPECT_NE(a, kInvalidPage);
  EXPECT_NE(a, b);
  EXPECT_TRUE(alloc.is_allocated(a));
  EXPECT_EQ(alloc.used_pages(), 2u);
  alloc.release(a);
  EXPECT_FALSE(alloc.is_allocated(a));
  EXPECT_EQ(alloc.free_pages(), 3u);
}

TEST(PageAllocatorTest, ExhaustionReturnsInvalid) {
  PageAllocator alloc(2);
  alloc.allocate();
  alloc.allocate();
  EXPECT_EQ(alloc.allocate(), kInvalidPage);
}

TEST(PageAllocatorTest, DoubleFreeThrows) {
  PageAllocator alloc(2);
  const PageId p = alloc.allocate();
  alloc.release(p);
  EXPECT_THROW(alloc.release(p), CheckError);
  EXPECT_THROW(alloc.release(99), CheckError);
}

TEST(PageAllocatorTest, ReusesReleasedPages) {
  PageAllocator alloc(1);
  const PageId a = alloc.allocate();
  alloc.release(a);
  EXPECT_EQ(alloc.allocate(), a);
}

class PagedCacheTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kDim = 16;
  static constexpr std::size_t kPageTokens = 8;
  PagedKvCache cache_{kDim, BitWidth::kInt4, kPageTokens, 16};
  Rng rng_{7};

  std::vector<float> random_vec() {
    std::vector<float> v(kDim);
    rng_.fill_normal(v, 0.0, 1.0);
    return v;
  }
};

TEST_F(PagedCacheTest, SequenceLifecycle) {
  const auto seq = cache_.create_sequence();
  EXPECT_TRUE(cache_.has_sequence(seq));
  EXPECT_EQ(cache_.token_count(seq), 0u);
  cache_.release_sequence(seq);
  EXPECT_FALSE(cache_.has_sequence(seq));
  EXPECT_THROW(cache_.token_count(seq), CheckError);
}

TEST_F(PagedCacheTest, TokensFillPages) {
  const auto seq = cache_.create_sequence();
  for (std::size_t t = 0; t < kPageTokens * 2 + 3; ++t) {
    ASSERT_TRUE(cache_.append_token(seq, random_vec(), random_vec()));
  }
  EXPECT_EQ(cache_.token_count(seq), kPageTokens * 2 + 3);
  // Lazy flush: the second page is cut only when a 17th token arrives.
  EXPECT_EQ(cache_.blocks(seq).size(), 2u);
  EXPECT_EQ(cache_.key_buffer(seq).size(), 3u);
  EXPECT_EQ(cache_.used_pages(), 2u);
}

TEST_F(PagedCacheTest, PrefillBlocksTakePages) {
  const auto seq = cache_.create_sequence();
  const MatrixF k = test::random_matrix(kPageTokens, kDim, 1);
  const MatrixF v = test::random_matrix(kPageTokens, kDim, 2);
  ASSERT_TRUE(cache_.append_prefill_block(seq, quantize_tile_int8(k),
                                          quantize_tile_int8(v)));
  EXPECT_EQ(cache_.token_count(seq), kPageTokens);
  EXPECT_EQ(cache_.used_pages(), 1u);
  // Ragged final tile goes to the buffer.
  const MatrixF k2 = test::random_matrix(3, kDim, 3);
  ASSERT_TRUE(cache_.append_prefill_block(seq, quantize_tile_int8(k2),
                                          quantize_tile_int8(k2)));
  EXPECT_EQ(cache_.token_count(seq), kPageTokens + 3);
  EXPECT_EQ(cache_.key_buffer(seq).size(), 3u);
}

TEST_F(PagedCacheTest, OutOfPagesReportedNotThrown) {
  PagedKvCache tiny(kDim, BitWidth::kInt4, 4, 1);
  const auto seq = tiny.create_sequence();
  for (int t = 0; t < 8; ++t) {
    ASSERT_TRUE(tiny.append_token(seq, random_vec(), random_vec()));
  }
  // 9th token needs a second page: rejected, nothing lost.
  EXPECT_FALSE(tiny.append_token(seq, random_vec(), random_vec()));
  EXPECT_EQ(tiny.token_count(seq), 8u);
}

TEST_F(PagedCacheTest, ForkSharesFullPagesCopyOnWrite) {
  const auto a = cache_.create_sequence();
  for (std::size_t t = 0; t < kPageTokens * 2 + 2; ++t) {
    ASSERT_TRUE(cache_.append_token(a, random_vec(), random_vec()));
  }
  const std::size_t pages_before = cache_.used_pages();
  const auto b = cache_.fork_sequence(a);
  EXPECT_EQ(cache_.used_pages(), pages_before);  // zero-copy fork
  EXPECT_EQ(cache_.shared_pages(), 2u);
  EXPECT_EQ(cache_.token_count(b), cache_.token_count(a));

  // Diverge: each fork flushes into its own private page.
  for (std::size_t t = 0; t < kPageTokens * 2; ++t) {
    ASSERT_TRUE(cache_.append_token(a, random_vec(), random_vec()));
    ASSERT_TRUE(cache_.append_token(b, random_vec(), random_vec()));
  }
  EXPECT_GT(cache_.used_pages(), pages_before);
  // The shared prefix pages remain shared.
  EXPECT_EQ(cache_.shared_pages(), 2u);

  // Releasing one fork keeps the shared pages alive for the other.
  const std::size_t a_tokens = cache_.token_count(a);
  cache_.release_sequence(b);
  EXPECT_EQ(cache_.token_count(a), a_tokens);
  EXPECT_EQ(cache_.shared_pages(), 0u);
  cache_.release_sequence(a);
  EXPECT_EQ(cache_.used_pages(), 0u);
}

TEST_F(PagedCacheTest, ForkReleaseChurnKeepsRefcountsExact) {
  // CoW accounting under churn: repeated fork -> append -> release in
  // varying orders (parent released before fork, fork before parent) must
  // keep shared-page and used-page counts exact and end at zero.
  const auto root = cache_.create_sequence();
  for (std::size_t t = 0; t < kPageTokens * 2 + 1; ++t) {
    ASSERT_TRUE(cache_.append_token(root, random_vec(), random_vec()));
  }
  EXPECT_EQ(cache_.used_pages(), 2u);

  // Two forks of the same prefix: each shared page has three referents
  // but is still counted once as "shared".
  const auto f1 = cache_.fork_sequence(root);
  const auto f2 = cache_.fork_sequence(root);
  EXPECT_EQ(cache_.used_pages(), 2u);
  EXPECT_EQ(cache_.shared_pages(), 2u);

  // Release the PARENT first: forks keep the pages alive.
  cache_.release_sequence(root);
  EXPECT_EQ(cache_.used_pages(), 2u);
  EXPECT_EQ(cache_.shared_pages(), 2u);
  EXPECT_EQ(cache_.token_count(f1), kPageTokens * 2 + 1);

  // Diverge f1 so it owns a private page on top of the shared prefix.
  for (std::size_t t = 0; t < kPageTokens; ++t) {
    ASSERT_TRUE(cache_.append_token(f1, random_vec(), random_vec()));
  }
  EXPECT_EQ(cache_.used_pages(), 3u);
  EXPECT_EQ(cache_.shared_pages(), 2u);

  // A second-generation fork of a fork shares f1's private page too.
  const auto f3 = cache_.fork_sequence(f1);
  EXPECT_EQ(cache_.shared_pages(), 3u);
  cache_.release_sequence(f3);
  EXPECT_EQ(cache_.shared_pages(), 2u);
  EXPECT_EQ(cache_.used_pages(), 3u);

  // Release the remaining forks in either order: counts reach zero with
  // no leaked or double-freed page (release would throw on double free).
  cache_.release_sequence(f2);
  EXPECT_EQ(cache_.shared_pages(), 0u);
  EXPECT_EQ(cache_.used_pages(), 3u);  // f1 still holds 2 shared + 1 private
  cache_.release_sequence(f1);
  EXPECT_EQ(cache_.used_pages(), 0u);
  EXPECT_EQ(cache_.sequence_count(), 0u);
}

TEST_F(PagedCacheTest, DecodeMatchesMonolithicCache) {
  // The paged view must produce numerically identical attention to the
  // single-sequence QuantizedKvCache given the same token stream.
  QuantizedKvCache mono(kDim, BitWidth::kInt4, kPageTokens, kPageTokens);
  const auto seq = cache_.create_sequence();
  Rng rng(42);
  for (int t = 0; t < 29; ++t) {
    std::vector<float> k(kDim);
    std::vector<float> v(kDim);
    rng.fill_normal(k, 0.0, 1.0);
    rng.fill_normal(v, 0.0, 1.0);
    ASSERT_TRUE(cache_.append_token(seq, k, v));
    mono.append_token(k, v);
  }
  std::vector<float> q(kDim, 0.4f);
  const AttentionConfig cfg;
  const Sas sas;
  const auto paged = turbo_attention_decode(
      q, cache_.blocks(seq), cache_.key_buffer(seq),
      cache_.value_buffer(seq), cfg, sas);
  const auto monolithic = turbo_attention_decode(q, mono, cfg, sas);
  // Identical pipeline except flush timing: mono flushes eagerly at 8
  // tokens, paged lazily at 9 — the ragged tail differs by one block
  // boundary, so allow only tiny drift.
  EXPECT_LT(relative_error(paged, monolithic), 0.05);
}

TEST_F(PagedCacheTest, MultiSequenceIsolation) {
  const auto a = cache_.create_sequence();
  const auto b = cache_.create_sequence();
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(cache_.append_token(a, random_vec(), random_vec()));
  }
  for (int t = 0; t < 3; ++t) {
    ASSERT_TRUE(cache_.append_token(b, random_vec(), random_vec()));
  }
  EXPECT_EQ(cache_.token_count(a), 10u);
  EXPECT_EQ(cache_.token_count(b), 3u);
  cache_.release_sequence(a);
  EXPECT_EQ(cache_.token_count(b), 3u);
}

TEST_F(PagedCacheTest, MemoryBytesTracksPagesAndBuffers) {
  const auto seq = cache_.create_sequence();
  const std::size_t empty = cache_.memory_bytes();
  for (std::size_t t = 0; t < kPageTokens + 1; ++t) {
    ASSERT_TRUE(cache_.append_token(seq, random_vec(), random_vec()));
  }
  EXPECT_GT(cache_.memory_bytes(), empty);
  // Fork adds only buffer bytes, not page bytes.
  const std::size_t before = cache_.memory_bytes();
  const auto fork = cache_.fork_sequence(seq);
  const std::size_t after = cache_.memory_bytes();
  EXPECT_LT(after - before, 2u * (kPageTokens * kDim + 2));
  cache_.release_sequence(fork);
}

}  // namespace
}  // namespace turbo
