#include "common/matrix.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  MatrixF m(3, 4, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 1.5f);
  }
  m(1, 2) = -7.0f;
  EXPECT_EQ(m(1, 2), -7.0f);
  EXPECT_EQ(m.row(1)[2], -7.0f);
}

TEST(MatrixTest, RowSpanAliasesStorage) {
  MatrixF m(2, 3, 0.0f);
  auto row = m.row(1);
  row[0] = 9.0f;
  EXPECT_EQ(m(1, 0), 9.0f);
}

TEST(MatrixTest, BlockRows) {
  MatrixF m(5, 2);
  for (std::size_t r = 0; r < 5; ++r) {
    m(r, 0) = static_cast<float>(r);
    m(r, 1) = static_cast<float>(10 * r);
  }
  const MatrixF b = m.block_rows(2, 2);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b(0, 0), 2.0f);
  EXPECT_EQ(b(1, 1), 30.0f);
}

TEST(MatrixTest, BlockRowsOutOfRangeThrows) {
  MatrixF m(3, 2);
  EXPECT_THROW(m.block_rows(2, 2), CheckError);
}

TEST(MatrixTest, AppendRowsAndRow) {
  MatrixF m(0, 3);
  std::vector<float> row{1.0f, 2.0f, 3.0f};
  m.append_row(std::span<const float>(row));
  EXPECT_EQ(m.rows(), 1u);
  MatrixF other(2, 3, 5.0f);
  m.append_rows(other);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m(2, 1), 5.0f);
}

TEST(MatrixTest, AppendMismatchedWidthThrows) {
  MatrixF m(1, 3);
  std::vector<float> row{1.0f, 2.0f};
  EXPECT_THROW(m.append_row(std::span<const float>(row)), CheckError);
}

TEST(MatrixTest, MatmulTransposedMatchesManual) {
  MatrixF a(2, 3);
  MatrixF b(2, 3);
  float x = 1.0f;
  for (float& v : a.flat()) v = x++;
  for (float& v : b.flat()) v = x++;
  // a = [1 2 3; 4 5 6], b = [7 8 9; 10 11 12]
  const MatrixF c = matmul_transposed(a, b);
  EXPECT_EQ(c(0, 0), 1 * 7 + 2 * 8 + 3 * 9);
  EXPECT_EQ(c(0, 1), 1 * 10 + 2 * 11 + 3 * 12);
  EXPECT_EQ(c(1, 0), 4 * 7 + 5 * 8 + 6 * 9);
  EXPECT_EQ(c(1, 1), 4 * 10 + 5 * 11 + 6 * 12);
}

TEST(MatrixTest, MatmulMatchesManual) {
  MatrixF a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  MatrixF b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const MatrixF c = matmul(a, b);
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(0, 1), 22);
  EXPECT_EQ(c(1, 0), 43);
  EXPECT_EQ(c(1, 1), 50);
}

TEST(MatrixTest, IntegerMatmulMatchesFloat) {
  Rng rng(7);
  MatrixI8 a(4, 8);
  MatrixI8 b(5, 8);
  for (auto& v : a.flat()) {
    v = static_cast<std::int8_t>(rng.uniform_index(255)) ;
  }
  for (auto& v : b.flat()) {
    v = static_cast<std::int8_t>(rng.uniform_index(255));
  }
  const MatrixI32 c = matmul_transposed_i8(a, b);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      std::int32_t acc = 0;
      for (std::size_t k = 0; k < 8; ++k) {
        acc += static_cast<std::int32_t>(a(i, k)) * b(j, k);
      }
      EXPECT_EQ(c(i, j), acc);
    }
  }
}

TEST(MatrixTest, IntegerMatmulNoOverflowAtMaxMagnitude) {
  // 127 * 127 * 4096 = 66 x 10^6 — must fit comfortably in int32.
  MatrixI8 a(1, 4096, 127);
  MatrixI8 b(1, 4096, 127);
  const MatrixI32 c = matmul_transposed_i8(a, b);
  EXPECT_EQ(c(0, 0), 127 * 127 * 4096);
}

TEST(MatrixTest, MatmulShapeMismatchThrows) {
  MatrixF a(2, 3);
  MatrixF b(2, 4);
  EXPECT_THROW(matmul_transposed(a, b), CheckError);
  EXPECT_THROW(matmul(a, b), CheckError);
}

}  // namespace
}  // namespace turbo
