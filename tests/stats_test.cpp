#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"

namespace turbo {
namespace {

TEST(StatsTest, MinMaxBasics) {
  std::vector<float> v{3.0f, -1.0f, 4.0f, 1.5f};
  const MinMax mm = min_max(v);
  EXPECT_EQ(mm.min, -1.0f);
  EXPECT_EQ(mm.max, 4.0f);
  EXPECT_EQ(mm.gap(), 5.0f);
}

TEST(StatsTest, MinMaxEmpty) {
  const MinMax mm = min_max({});
  EXPECT_EQ(mm.min, 0.0f);
  EXPECT_EQ(mm.max, 0.0f);
}

TEST(StatsTest, MeanAndStddev) {
  std::vector<float> v{2.0f, 4.0f, 4.0f, 4.0f, 5.0f, 5.0f, 7.0f, 9.0f};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);  // classic population-stddev example
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<float> v{1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
}

TEST(StatsTest, PercentileEmptyThrows) {
  EXPECT_THROW(percentile({}, 50), CheckError);
}

TEST(StatsTest, ErrorMetrics) {
  std::vector<float> a{1.0f, 2.0f, 3.0f};
  std::vector<float> b{1.0f, 2.0f, 5.0f};
  EXPECT_DOUBLE_EQ(mse(a, b), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(rmse(a, b), std::sqrt(4.0 / 3.0));
  EXPECT_DOUBLE_EQ(max_abs_error(a, b), 2.0);
}

TEST(StatsTest, RelativeError) {
  std::vector<float> a{2.0f, 0.0f};
  std::vector<float> b{1.0f, 0.0f};
  EXPECT_DOUBLE_EQ(relative_error(a, b), 1.0);  // ||a-b||=1, ||b||=1
  EXPECT_DOUBLE_EQ(relative_error(b, b), 0.0);
}

TEST(StatsTest, CosineSimilarity) {
  std::vector<float> a{1.0f, 0.0f};
  std::vector<float> b{0.0f, 1.0f};
  std::vector<float> c{2.0f, 0.0f};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, c), 1.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, a), 1.0);
  std::vector<float> zero{0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(cosine_similarity(zero, zero), 1.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(zero, a), 0.0);
}

TEST(StatsTest, HistogramEntropy) {
  // Uniform over two distinct values -> ln 2; constant -> 0.
  std::vector<float> bimodal{0.0f, 0.0f, 1.0f, 1.0f};
  EXPECT_NEAR(histogram_entropy(bimodal, 2), std::log(2.0), 1e-12);
  std::vector<float> constant{3.0f, 3.0f, 3.0f};
  EXPECT_DOUBLE_EQ(histogram_entropy(constant, 8), 0.0);
}

TEST(StatsTest, ChannelMinMax) {
  MatrixF m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = -5;
  m(0, 2) = 2;
  m(1, 0) = 3;
  m(1, 1) = 5;
  m(1, 2) = 2;
  const auto mm = channel_min_max(m);
  ASSERT_EQ(mm.size(), 3u);
  EXPECT_EQ(mm[0].min, 1.0f);
  EXPECT_EQ(mm[0].max, 3.0f);
  EXPECT_EQ(mm[1].gap(), 10.0f);
  EXPECT_EQ(mm[2].gap(), 0.0f);
}

TEST(StatsTest, TokenMinMax) {
  MatrixF m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = -5;
  m(0, 2) = 2;
  m(1, 0) = 3;
  m(1, 1) = 5;
  m(1, 2) = 2;
  const auto mm = token_min_max(m);
  ASSERT_EQ(mm.size(), 2u);
  EXPECT_EQ(mm[0].gap(), 7.0f);
  EXPECT_EQ(mm[1].gap(), 3.0f);
}

TEST(StatsTest, SizeMismatchThrows) {
  std::vector<float> a{1.0f};
  std::vector<float> b{1.0f, 2.0f};
  EXPECT_THROW(mse(a, b), CheckError);
  EXPECT_THROW(relative_error(a, b), CheckError);
  EXPECT_THROW(cosine_similarity(a, b), CheckError);
}

}  // namespace
}  // namespace turbo
