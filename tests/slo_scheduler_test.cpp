// SLO-aware overload control: priority classes, deadlines, shedding and
// the precision-downshift degradation ladder (serving/engine.h).
//
// The scenarios deliberately overdrive a small KV pool (Phi3-mini on a
// 40 GB PCIe card at low headroom) so admission control, preemption,
// deadline timeouts and the pressure controller all fire; the assertions
// then check the policy-level contracts: every request reaches exactly
// one terminal state, per-class counters reconcile to the totals,
// class-aware scheduling protects the interactive tier where FIFO does
// not, the ladder trades KV fidelity for fewer preemptions/timeouts, and
// everything is bit-identical per seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "serving/engine.h"
#include "serving/metrics.h"
#include "serving/trace.h"
#include "sim/attention_model.h"

namespace turbo::serving {
namespace {

// A mixed-class trace pushed well past what the pressured engine below
// can sustain: 30% interactive with a tight TTFT SLO, 50% standard with
// a loose one, 20% batch with none.
TraceConfig overload_mix_trace() {
  TraceConfig t;
  t.arrival_rate = 24.0;
  t.duration_s = 15.0;
  t.prompt_log_mean = 5.5;  // median ~245 tokens
  t.prompt_log_std = 0.5;
  t.gen_log_mean = 5.0;     // median ~150 tokens
  t.gen_log_std = 0.5;
  t.seed = 29;
  t.class_mix = {0.2, 0.5, 0.3};
  t.ttft_deadline_s = {2.5, 20.0, 0.0};
  return t;
}

// Small KV pool: Phi3-mini on the PCIe card at low headroom, so the
// overload trace above exhausts pages and the control policies engage.
// The interactive tier's guaranteed share is provisioned above its offered
// load (20% of the mix), which is what lets class-aware scheduling honor
// the interactive SLO while the pool as a whole is oversubscribed.
EngineConfig pressured_engine() {
  EngineConfig c;
  c.device = sim::a100_pcie_40gb();
  c.geometry = sim::phi3_mini_geometry();
  c.method = sim::AttnMethod::kTurbo;
  c.attention.kv_bits = 4.0;
  c.memory_headroom = 0.35;
  return c;
}

// The same machine with the pool squeezed so hard that even the
// interactive guarantee cannot absorb the burst: decode growth exhausts
// pages constantly and preemption/eviction churn is guaranteed.
EngineConfig crushed_engine() {
  EngineConfig c = pressured_engine();
  c.memory_headroom = 0.22;
  return c;
}

std::size_t terminal_count(const ServingMetrics& m) {
  return m.completed + m.rejected + m.timed_out + m.shed;
}

// Order-independent digest over everything the engine computes, so two
// runs are compared in full, not by a few summary statistics.
std::uint64_t digest(const EngineResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  auto mixd = [&](double v) { mix(std::bit_cast<std::uint64_t>(v)); };
  for (const Request& req : r.requests) {
    mix(req.id);
    mixd(req.prefill_start_s);
    mixd(req.first_token_s);
    mixd(req.finish_s);
    mixd(req.kv_bits_used);
    mix(req.generated);
    mix(req.preemptions);
    mix(req.recomputed_tokens);
    mix(static_cast<std::uint64_t>(req.outcome));
  }
  mixd(r.makespan_s);
  mixd(r.busy_s);
  mixd(r.swap_stall_s);
  mixd(r.min_kv_bits);
  mixd(r.degrade_rmse_proxy);
  mix(r.preemptions);
  mix(r.timed_out);
  mix(r.shed);
  mix(r.ladder_escalations);
  mix(r.ladder_deescalations);
  mix(r.degraded_admissions);
  mix(static_cast<std::uint64_t>(r.hit_time_limit));
  return h;
}

// --- Terminal-state accounting ---------------------------------------------

TEST(SloAccountingTest, EveryRequestReachesExactlyOneTerminalState) {
  // Deadlines, shedding, preemption and degradation all active at once:
  // the exactly-one-terminal-state invariant must still hold.
  EngineConfig cfg = pressured_engine();
  cfg.degrade.enabled = true;
  const auto trace = generate_trace(overload_mix_trace());
  const EngineResult r = run_engine(cfg, trace);
  ASSERT_FALSE(r.hit_time_limit);

  std::size_t completed = 0, rejected = 0, timed_out = 0, shed = 0;
  for (const Request& req : r.requests) {
    EXPECT_NE(req.outcome, Outcome::kPending);
    EXPECT_TRUE(req.finished());
    switch (req.outcome) {
      case Outcome::kCompleted:
        ++completed;
        EXPECT_EQ(req.generated, req.max_new_tokens);
        break;
      case Outcome::kRejected:
        ++rejected;
        EXPECT_EQ(req.generated, 0u);
        break;
      case Outcome::kTimedOut:
        ++timed_out;
        // A timed-out request never delivered its full budget — that is
        // what timing out means.
        EXPECT_LT(req.generated, req.max_new_tokens);
        break;
      case Outcome::kShed:
        ++shed;
        EXPECT_EQ(req.generated, 0u);
        EXPECT_FALSE(req.started());
        break;
      case Outcome::kPending:
        break;
    }
  }
  EXPECT_EQ(completed + rejected + timed_out + shed, trace.size());
  EXPECT_EQ(completed, trace.size() - r.rejected - r.timed_out - r.shed);
  EXPECT_EQ(rejected, r.rejected);
  EXPECT_EQ(timed_out, r.timed_out);
  EXPECT_EQ(shed, r.shed);
}

TEST(SloAccountingTest, PerClassCountersReconcileToTotals) {
  EngineConfig cfg = pressured_engine();
  cfg.degrade.enabled = true;
  const auto trace = generate_trace(overload_mix_trace());
  const ServingMetrics m = summarize(run_engine(cfg, trace));

  std::size_t requests = 0, completed = 0, rejected = 0, timed_out = 0,
              shed = 0, preemptions = 0;
  for (const ClassBreakdown& cb : m.by_class) {
    requests += cb.requests;
    completed += cb.completed;
    rejected += cb.rejected;
    timed_out += cb.timed_out;
    shed += cb.shed;
    preemptions += cb.preemptions;
    EXPECT_EQ(cb.completed + cb.rejected + cb.timed_out + cb.shed,
              cb.requests);
    EXPECT_LE(cb.deadline_met, cb.deadline_requests);
  }
  EXPECT_EQ(requests, trace.size());
  EXPECT_EQ(completed, m.completed);
  EXPECT_EQ(rejected, m.rejected);
  EXPECT_EQ(timed_out, m.timed_out);
  EXPECT_EQ(shed, m.shed);
  EXPECT_EQ(preemptions, m.preemptions);
  EXPECT_EQ(terminal_count(m), trace.size());
  EXPECT_EQ(m.unfinished, 0u);
  EXPECT_FALSE(m.hit_time_limit);
  // Every trace request carried a class from the mix; the all-standard
  // default would put everything in one bucket.
  EXPECT_GT(m.by_class[0].requests, 0u);
  EXPECT_GT(m.by_class[1].requests, 0u);
  EXPECT_GT(m.by_class[2].requests, 0u);
}

TEST(SloAccountingTest, TimeLimitTruncationIsVisibleNotClean) {
  // A run cut off by max_sim_time_s must say so: hit_time_limit set,
  // stranded requests reported as unfinished (still kPending), and the
  // terminal counters must NOT silently cover the whole trace.
  EngineConfig cfg = pressured_engine();
  cfg.max_sim_time_s = 3.0;  // far too short for the 15 s trace
  const auto trace = generate_trace(overload_mix_trace());
  const EngineResult r = run_engine(cfg, trace);
  EXPECT_TRUE(r.hit_time_limit);
  const ServingMetrics m = summarize(r);
  EXPECT_TRUE(m.hit_time_limit);
  EXPECT_GT(m.unfinished, 0u);
  EXPECT_LT(terminal_count(m), trace.size());
  EXPECT_EQ(terminal_count(m) + m.unfinished, trace.size());
  std::size_t pending = 0;
  for (const Request& req : r.requests) {
    if (req.outcome == Outcome::kPending) {
      ++pending;
      EXPECT_FALSE(req.finished());
    }
  }
  EXPECT_EQ(pending, m.unfinished);
}

TEST(SloAccountingTest, CleanRunReportsNoTruncation) {
  const auto trace = generate_trace(overload_mix_trace());
  const ServingMetrics m = summarize(run_engine(pressured_engine(), trace));
  EXPECT_FALSE(m.hit_time_limit);
  EXPECT_EQ(m.unfinished, 0u);
  EXPECT_EQ(terminal_count(m), trace.size());
}

// --- Class-aware scheduling vs FIFO ----------------------------------------

TEST(SloPolicyTest, ClassAwareProtectsInteractiveTailWhereFifoMisses) {
  // Same overload trace, deadlines carried but NOT enforced so both
  // policies run the full trace and the raw tails are comparable. FIFO
  // queues interactive requests behind batch prefills and blows the
  // interactive TTFT SLO; class-aware admission, re-admission and victim
  // selection keep the interactive p99 inside it.
  const auto trace = generate_trace(overload_mix_trace());
  const double deadline = overload_mix_trace().ttft_deadline_s[0];

  EngineConfig fifo = pressured_engine();
  fifo.policy = SchedPolicy::kFifo;
  fifo.enforce_deadlines = false;
  EngineConfig aware = pressured_engine();
  aware.policy = SchedPolicy::kClassAware;
  aware.enforce_deadlines = false;

  const ServingMetrics mf = summarize(run_engine(fifo, trace));
  const ServingMetrics ma = summarize(run_engine(aware, trace));
  ASSERT_FALSE(mf.hit_time_limit);
  ASSERT_FALSE(ma.hit_time_limit);

  const ClassBreakdown& fi = mf.by_class[0];
  const ClassBreakdown& ai = ma.by_class[0];
  ASSERT_GT(fi.requests, 10u);
  EXPECT_GT(fi.ttft_p99, deadline);   // FIFO misses the interactive SLO
  EXPECT_LE(ai.ttft_p99, deadline);   // class-aware holds it
  EXPECT_GT(ai.ttft_attainment, fi.ttft_attainment);
  EXPECT_GE(ai.ttft_attainment, 0.95);
}

TEST(SloPolicyTest, BatchPreemptedBeforeInteractive) {
  // Victim selection evicts the batch tier first: eviction events charged
  // to interactive requests must not exceed those charged to batch, and
  // interactive requests must be a strict minority of victims.
  EngineConfig cfg = crushed_engine();
  cfg.enforce_deadlines = false;
  const auto trace = generate_trace(overload_mix_trace());
  const ServingMetrics m = summarize(run_engine(cfg, trace));
  ASSERT_GT(m.preemptions, 0u);
  EXPECT_LE(m.by_class[0].preemptions, m.by_class[2].preemptions);
  EXPECT_LT(m.by_class[0].preemptions, m.preemptions / 2 + 1);
}

TEST(SloPolicyTest, FifoPolicyKeepsLegacyBehavior) {
  // On an all-standard trace with deadlines off, the FIFO policy is the
  // pre-SLO engine: every request completes or is rejected, nothing is
  // timed out, shed or degraded.
  TraceConfig t;
  t.arrival_rate = 8.0;
  t.duration_s = 15.0;
  t.prompt_log_mean = 5.5;
  t.prompt_log_std = 0.5;
  t.gen_log_mean = 4.0;
  t.gen_log_std = 0.5;
  t.seed = 7;
  const auto trace = generate_trace(t);
  EngineConfig cfg = pressured_engine();
  cfg.policy = SchedPolicy::kFifo;
  const ServingMetrics m = summarize(run_engine(cfg, trace));
  EXPECT_EQ(m.completed + m.rejected, trace.size());
  EXPECT_EQ(m.timed_out, 0u);
  EXPECT_EQ(m.shed, 0u);
  EXPECT_EQ(m.degraded_admissions, 0u);
  EXPECT_EQ(m.by_class[1].requests, trace.size());
}

TEST(SloPolicyTest, QuotasAreWorkConserving) {
  // A batch-only stream must be able to borrow the whole pool when the
  // other classes are idle: class-aware throughput stays within a few
  // percent of FIFO's on the identical trace.
  TraceConfig t = overload_mix_trace();
  t.class_mix = {0.0, 0.0, 1.0};
  t.ttft_deadline_s = {0.0, 0.0, 0.0};
  t.arrival_rate = 12.0;
  const auto trace = generate_trace(t);

  EngineConfig fifo = pressured_engine();
  fifo.policy = SchedPolicy::kFifo;
  EngineConfig aware = pressured_engine();
  aware.policy = SchedPolicy::kClassAware;

  const EngineResult rf = run_engine(fifo, trace);
  const EngineResult ra = run_engine(aware, trace);
  ASSERT_FALSE(rf.hit_time_limit);
  ASSERT_FALSE(ra.hit_time_limit);
  EXPECT_EQ(summarize(ra).completed, summarize(rf).completed);
  EXPECT_LT(ra.makespan_s, rf.makespan_s * 1.05);
}

TEST(SloPolicyTest, GuaranteedShareAdmitsInteractiveUnderBatchLoad) {
  // With the pool saturated by batch work, an interactive arrival must
  // still get in on the strength of its guaranteed share — its TTFT
  // cannot degrade to the back-of-queue FIFO position.
  TraceConfig t = overload_mix_trace();
  t.class_mix = {0.1, 0.1, 0.8};
  const auto trace = generate_trace(t);

  EngineConfig fifo = pressured_engine();
  fifo.policy = SchedPolicy::kFifo;
  fifo.enforce_deadlines = false;
  EngineConfig aware = pressured_engine();
  aware.enforce_deadlines = false;

  const ServingMetrics mf = summarize(run_engine(fifo, trace));
  const ServingMetrics ma = summarize(run_engine(aware, trace));
  ASSERT_GT(ma.by_class[0].requests, 5u);
  EXPECT_LT(ma.by_class[0].ttft_p99, mf.by_class[0].ttft_p99);
}

// --- Deadlines --------------------------------------------------------------

TEST(SloDeadlineTest, TtftDeadlineTimesOutQueuedRequest) {
  // Two monster prompts occupy the machine; a third request with a tight
  // TTFT deadline arrives behind them and cannot start in time. It must
  // be timed out at its deadline (not serviced late, not stranded), and
  // the run must still drain.
  std::vector<Request> trace(3);
  trace[0].id = 0;
  trace[0].arrival_s = 0.0;
  trace[0].prompt_tokens = 8192;
  trace[0].max_new_tokens = 256;
  trace[1] = trace[0];
  trace[1].id = 1;
  trace[2].id = 2;
  trace[2].arrival_s = 0.1;
  trace[2].prompt_tokens = 4096;
  trace[2].max_new_tokens = 64;
  trace[2].service_class = ServiceClass::kStandard;
  trace[2].ttft_deadline_s = 0.05;  // unmeetable behind two 8k prefills

  EngineConfig cfg = pressured_engine();
  cfg.max_batch = 2;  // force the third request to queue
  const EngineResult r = run_engine(cfg, trace);
  ASSERT_FALSE(r.hit_time_limit);
  EXPECT_EQ(r.timed_out, 1u);
  const Request& victim = *std::find_if(
      r.requests.begin(), r.requests.end(),
      [](const Request& q) { return q.id == 2; });
  EXPECT_EQ(victim.outcome, Outcome::kTimedOut);
  EXPECT_EQ(victim.generated, 0u);
  // Timed out when the deadline passed, not when a batch slot opened.
  EXPECT_NEAR(victim.finish_s, victim.arrival_s + victim.ttft_deadline_s,
              0.5);
  EXPECT_FALSE(victim.met_ttft_deadline());
  for (const Request& req : r.requests) {
    if (req.id != 2) {
      EXPECT_EQ(req.outcome, Outcome::kCompleted);
    }
  }
}

TEST(SloDeadlineTest, E2eDeadlineCutsOffMidDecode) {
  // A request with a generation budget far beyond its e2e deadline gets
  // cut off mid-stream: partial tokens delivered, terminal state timed
  // out, pages returned (the allocator must end the run empty —
  // otherwise the next admission would have leaked capacity).
  std::vector<Request> trace(1);
  trace[0].id = 0;
  trace[0].arrival_s = 0.0;
  trace[0].prompt_tokens = 256;
  trace[0].max_new_tokens = 8000;  // fits the pool, not the deadline
  trace[0].e2e_deadline_s = 2.0;

  const EngineResult r = run_engine(pressured_engine(), trace);
  ASSERT_FALSE(r.hit_time_limit);
  ASSERT_EQ(r.rejected, 0u);  // the budget itself fits the machine
  EXPECT_EQ(r.timed_out, 1u);
  const Request& req = r.requests[0];
  EXPECT_EQ(req.outcome, Outcome::kTimedOut);
  EXPECT_GT(req.generated, 0u);
  EXPECT_LT(req.generated, req.max_new_tokens);
  EXPECT_NEAR(req.finish_s, 2.0, 0.5);
}

TEST(SloDeadlineTest, EnforcementOffCarriesDeadlinesWithoutActingOnThem) {
  const auto trace = generate_trace(overload_mix_trace());
  EngineConfig cfg = pressured_engine();
  cfg.enforce_deadlines = false;
  const ServingMetrics m = summarize(run_engine(cfg, trace));
  EXPECT_EQ(m.timed_out, 0u);
  EXPECT_EQ(terminal_count(m), trace.size());
  // Attainment is still measured from the carried deadlines.
  EXPECT_GT(m.by_class[0].deadline_requests, 0u);
}

TEST(SloDeadlineTest, MetTtftDeadlineSemantics) {
  Request r;
  EXPECT_TRUE(r.met_ttft_deadline());  // vacuous without a deadline
  r.ttft_deadline_s = 1.0;
  EXPECT_FALSE(r.met_ttft_deadline());  // no first token yet
  r.arrival_s = 10.0;
  r.first_token_s = 10.9;
  EXPECT_TRUE(r.met_ttft_deadline());
  r.first_token_s = 11.0 + 1e-12;  // exactly on the line (within slack)
  EXPECT_TRUE(r.met_ttft_deadline());
  r.first_token_s = 11.5;
  EXPECT_FALSE(r.met_ttft_deadline());
}

// --- Degradation ladder -----------------------------------------------------

TEST(SloDegradeTest, LadderReducesPreemptionsAndTimeouts) {
  // Equal load, ladder off vs on. Downshifted KV packs more tokens per
  // page and sheds batch arrivals at the door, so the engine preempts
  // and times out strictly less; the price is recorded: degraded
  // admissions, a minimum KV precision below the configured one, and a
  // nonzero quantization-error proxy.
  const auto trace = generate_trace(overload_mix_trace());
  EngineConfig off = crushed_engine();
  EngineConfig on = crushed_engine();
  on.degrade.enabled = true;

  const EngineResult roff = run_engine(off, trace);
  const EngineResult ron = run_engine(on, trace);
  ASSERT_FALSE(roff.hit_time_limit);
  ASSERT_FALSE(ron.hit_time_limit);

  ASSERT_GT(roff.preemptions + roff.timed_out, 0u);
  EXPECT_LT(ron.preemptions, roff.preemptions);
  EXPECT_LE(ron.timed_out, roff.timed_out);
  EXPECT_LT(ron.preemptions + ron.timed_out,
            roff.preemptions + roff.timed_out);

  EXPECT_GT(ron.ladder_escalations, 0u);
  EXPECT_GT(ron.degraded_admissions, 0u);
  EXPECT_GT(ron.degraded_iterations, 0u);
  EXPECT_LT(ron.min_kv_bits, on.attention.kv_bits);
  EXPECT_DOUBLE_EQ(ron.min_kv_bits, 2.0);  // full 2-bit downshift
  EXPECT_GT(ron.degrade_rmse_proxy, 0.0);

  // Ladder off: no degradation machinery may fire.
  EXPECT_EQ(roff.ladder_escalations, 0u);
  EXPECT_EQ(roff.degraded_admissions, 0u);
  EXPECT_EQ(roff.shed, 0u);
  EXPECT_DOUBLE_EQ(roff.min_kv_bits, off.attention.kv_bits);
  EXPECT_DOUBLE_EQ(roff.degrade_rmse_proxy, 0.0);
}

TEST(SloDegradeTest, ShedsBatchNeverInteractive) {
  EngineConfig cfg = pressured_engine();
  cfg.degrade.enabled = true;
  const auto trace = generate_trace(overload_mix_trace());
  const ServingMetrics m = summarize(run_engine(cfg, trace));
  if (m.shed > 0) {
    EXPECT_EQ(m.by_class[0].shed, 0u);  // interactive is never shed
    EXPECT_GT(m.by_class[2].shed + m.by_class[1].shed, 0u);
  }
  // Interactive kept its SLO through the degraded regime.
  EXPECT_GE(m.by_class[0].ttft_attainment, 0.95);
}

TEST(SloDegradeTest, DegradedRequestsRecordTheirPrecision) {
  EngineConfig cfg = pressured_engine();
  cfg.degrade.enabled = true;
  cfg.degrade.two_bit_head_fraction = 0.5;  // the paper's 3.0-bit 2/4 mix
  const auto trace = generate_trace(overload_mix_trace());
  const EngineResult r = run_engine(cfg, trace);
  ASSERT_GT(r.degraded_admissions, 0u);
  EXPECT_DOUBLE_EQ(r.min_kv_bits, 3.0);
  std::size_t degraded = 0;
  for (const Request& req : r.requests) {
    if (req.outcome == Outcome::kRejected || req.outcome == Outcome::kShed) {
      continue;
    }
    if (!req.started()) continue;
    // Admitted requests carry the precision they were written at.
    EXPECT_TRUE(req.kv_bits_used == 4.0 || req.kv_bits_used == 3.0)
        << req.kv_bits_used;
    if (req.kv_bits_used == 3.0) ++degraded;
  }
  EXPECT_GT(degraded, 0u);
}

TEST(SloDegradeTest, LadderDeescalatesWhenPressureClears) {
  // Overload burst followed by a long quiet tail: the controller must
  // come back down (de-escalations recorded) and late admissions return
  // to full precision.
  TraceConfig burst = overload_mix_trace();
  burst.duration_s = 10.0;
  auto trace = generate_trace(burst);
  // Quiet tail: a few stragglers long after the burst.
  const double tail_start = 60.0;
  for (std::size_t i = 0; i < 5; ++i) {
    Request r;
    r.id = 100000 + i;
    r.arrival_s = tail_start + static_cast<double>(i) * 2.0;
    r.prompt_tokens = 128;
    r.max_new_tokens = 32;
    r.service_class = ServiceClass::kStandard;
    trace.push_back(r);
  }
  EngineConfig cfg = pressured_engine();
  cfg.degrade.enabled = true;
  const EngineResult r = run_engine(cfg, trace);
  ASSERT_FALSE(r.hit_time_limit);
  ASSERT_GT(r.ladder_escalations, 0u);
  EXPECT_GT(r.ladder_deescalations, 0u);
  for (const Request& req : r.requests) {
    if (req.id >= 100000) {
      EXPECT_EQ(req.outcome, Outcome::kCompleted);
      EXPECT_DOUBLE_EQ(req.kv_bits_used, cfg.attention.kv_bits);
    }
  }
}

TEST(SloDegradeTest, HeadwiseMixedBitsMapsFractionToAverage) {
  EXPECT_DOUBLE_EQ(sim::headwise_mixed_kv_bits(0.0), 4.0);
  EXPECT_DOUBLE_EQ(sim::headwise_mixed_kv_bits(0.5), 3.0);
  EXPECT_DOUBLE_EQ(sim::headwise_mixed_kv_bits(1.0), 2.0);
  EXPECT_THROW(sim::headwise_mixed_kv_bits(-0.1), CheckError);
  EXPECT_THROW(sim::headwise_mixed_kv_bits(1.1), CheckError);
}

// --- Config validation ------------------------------------------------------

TEST(SloConfigTest, RejectsInvalidPolicies) {
  const auto trace = generate_trace(overload_mix_trace());
  {
    EngineConfig cfg = pressured_engine();
    cfg.classes[0].page_share = 0.9;  // shares sum past 1
    EXPECT_THROW(run_engine(cfg, trace), CheckError);
  }
  {
    EngineConfig cfg = pressured_engine();
    cfg.classes[1].page_share = -0.1;
    EXPECT_THROW(run_engine(cfg, trace), CheckError);
  }
  {
    EngineConfig cfg = pressured_engine();
    cfg.degrade.enabled = true;
    cfg.degrade.low_watermark = 0.9;  // low >= high
    cfg.degrade.high_watermark = 0.8;
    EXPECT_THROW(run_engine(cfg, trace), CheckError);
  }
  {
    EngineConfig cfg = pressured_engine();
    cfg.degrade.enabled = true;
    cfg.degrade.two_bit_head_fraction = 1.5;  // outside [0, 1]
    EXPECT_THROW(run_engine(cfg, trace), CheckError);
  }
  {
    EngineConfig cfg = pressured_engine();
    cfg.backoff_jitter = -0.5;
    EXPECT_THROW(run_engine(cfg, trace), CheckError);
  }
}

// --- Determinism ------------------------------------------------------------

TEST(SloDeterminismTest, BitIdenticalAcrossRunsWithAllPoliciesActive) {
  EngineConfig cfg = pressured_engine();
  cfg.degrade.enabled = true;
  cfg.faults.seed = 5;
  cfg.faults.page_alloc_failure_prob = 0.02;
  cfg.faults.stream_corruption_prob = 0.05;
  const auto trace = generate_trace(overload_mix_trace());
  const EngineResult a = run_engine(cfg, trace);
  const EngineResult b = run_engine(cfg, trace);
  EXPECT_EQ(digest(a), digest(b));
}

TEST(SloDeterminismTest, JitterSeedChangesScheduleDeterministically) {
  EngineConfig cfg = crushed_engine();
  cfg.enforce_deadlines = false;
  const auto trace = generate_trace(overload_mix_trace());
  const EngineResult base = run_engine(cfg, trace);
  ASSERT_GT(base.preemptions, 0u);  // jitter only matters under eviction
  cfg.jitter_seed = 0xBEEF;
  const EngineResult other = run_engine(cfg, trace);
  const EngineResult other2 = run_engine(cfg, trace);
  EXPECT_EQ(digest(other), digest(other2));
  EXPECT_NE(digest(base), digest(other));
}

}  // namespace
}  // namespace turbo::serving
